package mfcp

import (
	"reflect"
	"testing"

	"mfcp/internal/core"
	"mfcp/internal/rng"
)

func tinyScenario(t *testing.T) *Scenario {
	t.Helper()
	s, err := NewScenario(ScenarioConfig{PoolSize: 48, FeatureDim: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPublicQuickstartFlow(t *testing.T) {
	s := tinyScenario(t)
	train, test := s.Split(0.75)

	tr := Train(s, train, TrainerConfig{Kind: KindAD, Hidden: []int{8}, PretrainEpochs: 40, Epochs: 6, RoundSize: 4})
	round := s.SampleRound(test, 4, s.Stream("demo"))
	That, Ahat := tr.Predict(round)

	var mc MatchConfig
	assign := Match(mc, That, Ahat)
	if len(assign) != 4 {
		t.Fatalf("assignment %v", assign)
	}
	ev := Evaluate(s, mc, round, assign)
	if ev.Reliability <= 0 || ev.Reliability > 1 {
		t.Fatalf("eval %+v", ev)
	}
}

func TestPublicBaselines(t *testing.T) {
	s := tinyScenario(t)
	train, test := s.Split(0.75)
	round := s.SampleRound(test, 4, s.Stream("b"))
	for _, m := range []Method{NewTAM(s, train), NewTSM(s, train, []int{8}, 30), NewOracle(s)} {
		T, A := m.Predict(round)
		if T.Rows != s.M() || A.Cols != 4 {
			t.Fatalf("%s prediction shapes", m.Name())
		}
	}
}

func TestExactMatchPublic(t *testing.T) {
	s := tinyScenario(t)
	round := []int{0, 1, 2, 3}
	T, A := s.TrueMatrices(round)
	var mc MatchConfig
	assign, cost, _ := ExactMatch(mc, T, A)
	if len(assign) != 4 || cost <= 0 {
		t.Fatalf("exact: %v %v", assign, cost)
	}
}

// TestAutoSparseRoutingBoundary pins the sparse-by-default contract: the
// documented threshold is exact (m·n at the boundary stays on the dense
// path, one task more routes sparse), and the auto route is observationally
// identical to a caller spelling out mc.TopK = AutoSparseTopK themselves.
func TestAutoSparseRoutingBoundary(t *testing.T) {
	const m = 40
	nDense := core.SparseAutoThreshold / m // m·n == threshold exactly
	nSparse := nDense + 1

	if k := core.AutoSparseTopK(m, nDense); k != 0 {
		t.Fatalf("at the boundary (m·n = %d): auto TopK = %d, want dense", m*nDense, k)
	}
	k := core.AutoSparseTopK(m, nSparse)
	if k != 32 { // min(m, 32) with m = 40
		t.Fatalf("one past the boundary: auto TopK = %d, want 32", k)
	}

	r := rng.New(61)
	T := &Matrix{Rows: m, Cols: nSparse, Data: make([]float64, m*nSparse)}
	A := &Matrix{Rows: m, Cols: nSparse, Data: make([]float64, m*nSparse)}
	for i := range T.Data {
		T.Data[i] = r.Uniform(0.2, 3)
		A.Data[i] = r.Uniform(0.7, 0.999)
	}

	auto, err := MatchChecked(MatchConfig{}, T, A)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := MatchChecked(MatchConfig{TopK: k}, T, A)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(auto, explicit) {
		t.Fatal("auto-routed Match diverged from the explicit sparse config")
	}
	for _, i := range auto {
		if i < 0 || i >= m {
			t.Fatalf("assignment out of range: %d", i)
		}
	}

	// ExactMatch above the threshold reroutes to the sparse relaxation
	// (branch and bound is Ω(M^N) there) and scores discretely. Reproduce
	// that route by hand — an explicit-TopK ExactMatch call deliberately
	// keeps the exact solver, so the hand-built pipeline is the reference.
	aAssign, aCost, aFeasible, err := ExactMatchChecked(MatchConfig{}, T, A)
	if err != nil {
		t.Fatal(err)
	}
	mc := MatchConfig{TopK: k}
	mc.FillDefaults()
	sp, res, err := mc.SolveSparseWS(T, A, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(aAssign, res.Assign) {
		t.Fatal("auto-routed ExactMatch diverged from the sparse pipeline")
	}
	if want := sp.DiscreteCostSparse(res.Assign); aCost != want {
		t.Fatalf("exact cost %v, want the discrete sparse cost %v", aCost, want)
	}
	wantFeasible := sp.DiscreteReliabilitySparse(res.Assign) >= mc.Gamma
	if aFeasible != wantFeasible {
		t.Fatalf("feasible %v, want %v", aFeasible, wantFeasible)
	}
	if aCost <= 0 {
		t.Fatalf("sparse exact cost %v", aCost)
	}
}

func TestSettingsExported(t *testing.T) {
	for _, set := range []Setting{SettingA, SettingB, SettingC} {
		if _, err := NewScenario(ScenarioConfig{Setting: set, PoolSize: 16, FeatureDim: 8, Seed: 1}); err != nil {
			t.Fatalf("setting %s: %v", set, err)
		}
	}
}

func TestRunPlatformPublic(t *testing.T) {
	rep, err := RunPlatform(PlatformConfig{
		Scenario:       ScenarioConfig{PoolSize: 40, FeatureDim: 10, Seed: 5},
		Method:         "tsm",
		Rounds:         3,
		RoundSize:      4,
		PretrainEpochs: 30,
		Hidden:         []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 3 {
		t.Fatalf("rounds %d", len(rep.Rounds))
	}
}

func TestExtensionTablesKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sweeps are slow")
	}
	cfg := ExperimentConfig{Replicates: 2, Rounds: 3, RoundSize: 4, PoolSize: 40, FeatureDim: 10, PretrainEpochs: 20, RegretEpochs: 2, Hidden: []int{8}}
	tables := ExtensionTables(cfg)
	for _, key := range []string{"X1", "X2", "X3", "X4"} {
		if tables[key] == nil || len(tables[key].Rows) == 0 {
			t.Fatalf("extension %s missing or empty", key)
		}
	}
}
