package mfcp

import (
	"testing"
)

func tinyScenario(t *testing.T) *Scenario {
	t.Helper()
	s, err := NewScenario(ScenarioConfig{PoolSize: 48, FeatureDim: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPublicQuickstartFlow(t *testing.T) {
	s := tinyScenario(t)
	train, test := s.Split(0.75)

	tr := Train(s, train, TrainerConfig{Kind: KindAD, Hidden: []int{8}, PretrainEpochs: 40, Epochs: 6, RoundSize: 4})
	round := s.SampleRound(test, 4, s.Stream("demo"))
	That, Ahat := tr.Predict(round)

	var mc MatchConfig
	assign := Match(mc, That, Ahat)
	if len(assign) != 4 {
		t.Fatalf("assignment %v", assign)
	}
	ev := Evaluate(s, mc, round, assign)
	if ev.Reliability <= 0 || ev.Reliability > 1 {
		t.Fatalf("eval %+v", ev)
	}
}

func TestPublicBaselines(t *testing.T) {
	s := tinyScenario(t)
	train, test := s.Split(0.75)
	round := s.SampleRound(test, 4, s.Stream("b"))
	for _, m := range []Method{NewTAM(s, train), NewTSM(s, train, []int{8}, 30), NewOracle(s)} {
		T, A := m.Predict(round)
		if T.Rows != s.M() || A.Cols != 4 {
			t.Fatalf("%s prediction shapes", m.Name())
		}
	}
}

func TestExactMatchPublic(t *testing.T) {
	s := tinyScenario(t)
	round := []int{0, 1, 2, 3}
	T, A := s.TrueMatrices(round)
	var mc MatchConfig
	assign, cost, _ := ExactMatch(mc, T, A)
	if len(assign) != 4 || cost <= 0 {
		t.Fatalf("exact: %v %v", assign, cost)
	}
}

func TestSettingsExported(t *testing.T) {
	for _, set := range []Setting{SettingA, SettingB, SettingC} {
		if _, err := NewScenario(ScenarioConfig{Setting: set, PoolSize: 16, FeatureDim: 8, Seed: 1}); err != nil {
			t.Fatalf("setting %s: %v", set, err)
		}
	}
}

func TestRunPlatformPublic(t *testing.T) {
	rep, err := RunPlatform(PlatformConfig{
		Scenario:       ScenarioConfig{PoolSize: 40, FeatureDim: 10, Seed: 5},
		Method:         "tsm",
		Rounds:         3,
		RoundSize:      4,
		PretrainEpochs: 30,
		Hidden:         []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 3 {
		t.Fatalf("rounds %d", len(rep.Rounds))
	}
}

func TestExtensionTablesKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sweeps are slow")
	}
	cfg := ExperimentConfig{Replicates: 2, Rounds: 3, RoundSize: 4, PoolSize: 40, FeatureDim: 10, PretrainEpochs: 20, RegretEpochs: 2, Hidden: []int{8}}
	tables := ExtensionTables(cfg)
	for _, key := range []string{"X1", "X2", "X3", "X4"} {
		if tables[key] == nil || len(tables[key].Rows) == 0 {
			t.Fatalf("extension %s missing or empty", key)
		}
	}
}
