package taskgraph

import (
	"fmt"

	"mfcp/internal/rng"
)

// Family identifies a deep-learning task family. The mix mirrors the
// paper's dataset: CV models on CIFAR-10/ImageNet (CNNs) and NLP models on
// Europarl (Transformers/RNNs), plus small MLP jobs that every shared
// cluster sees in practice.
type Family int

const (
	FamilyCNN Family = iota
	FamilyTransformer
	FamilyRNN
	FamilyMLP
	FamilyUNet
	FamilyGNN
	numFamilies
)

// NumFamilies is the number of task families.
const NumFamilies = int(numFamilies)

var familyNames = [...]string{"CNN", "Transformer", "RNN", "MLP", "UNet", "GNN"}

// String returns the family name.
func (f Family) String() string {
	if f < 0 || int(f) >= len(familyNames) {
		return fmt.Sprintf("Family(%d)", int(f))
	}
	return familyNames[f]
}

// Task is one deep-learning training job: a computation graph plus the
// training-loop hyperparameters that determine total work per epoch.
type Task struct {
	Name   string
	Family Family
	Graph  *Graph

	// BatchSize is the per-step minibatch size.
	BatchSize int
	// StepsPerEpoch is dataset-size / batch-size; together with the graph it
	// fixes the per-epoch compute (the quantity the paper's t measures).
	StepsPerEpoch int
	// Epochs is the number of training epochs the job runs for. Full-job
	// duration (epochs × epoch time) is what the reliability model sees:
	// longer jobs accumulate more failure opportunities.
	Epochs int
	// DatasetMB is the dataset's on-disk size, which drives I/O and the
	// memory-pressure component of reliability.
	DatasetMB float64
}

// Cost returns the task graph's static cost profile.
func (t *Task) Cost() GraphCost { return t.Graph.Cost() }

// EpochFLOPs returns total training FLOPs per epoch.
func (t *Task) EpochFLOPs() float64 {
	return t.Graph.Cost().TotalFLOPs * TrainFLOPsMultiplier * float64(t.StepsPerEpoch)
}

// TotalFLOPs returns training FLOPs for the whole job.
func (t *Task) TotalFLOPs() float64 {
	return t.EpochFLOPs() * float64(max(t.Epochs, 1))
}

// Generate samples a random task of the given family.
func Generate(family Family, r *rng.Source) *Task {
	switch family {
	case FamilyCNN:
		return generateCNN(r)
	case FamilyTransformer:
		return generateTransformer(r)
	case FamilyRNN:
		return generateRNN(r)
	case FamilyMLP:
		return generateMLP(r)
	case FamilyUNet:
		return generateUNet(r)
	case FamilyGNN:
		return generateGNN(r)
	default:
		// invariant: the Family enum is closed; generators never invent new values.
		panic(fmt.Sprintf("taskgraph: unknown family %d", int(family)))
	}
}

// GenerateMix samples n tasks with family proportions weights (indexed by
// Family; nil means uniform).
func GenerateMix(n int, weights []float64, r *rng.Source) []*Task {
	if weights == nil {
		weights = make([]float64, NumFamilies)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != NumFamilies {
		// invariant: callers pass one weight per Family constant.
		panic("taskgraph: GenerateMix weights length")
	}
	tasks := make([]*Task, n)
	for i := range tasks {
		tasks[i] = Generate(Family(r.Choice(weights)), r)
	}
	return tasks
}

// choice picks one of the given ints uniformly.
func choice(r *rng.Source, xs ...int) int { return xs[r.Intn(len(xs))] }

// generateCNN builds a ResNet-style CNN: conv stem, S stages of residual
// blocks with downsampling between stages, then pool + classifier head.
func generateCNN(r *rng.Source) *Task {
	g := NewGraph()
	batch := choice(r, 32, 64, 128, 256)
	// CIFAR-like (32px) or ImageNet-like (224px → modeled at reduced stem
	// resolution since the stem halves it immediately).
	imagenet := r.Bernoulli(0.4)
	spatial := 32
	steps := 50000 / batch // CIFAR-10 train split
	datasetMB := 170.0
	if imagenet {
		spatial = 56
		steps = 1281167 / batch / 10 // profile on a 10% shard, as is common
		datasetMB = 150000 / 10
	}
	width := choice(r, 16, 32, 64)
	stages := 2 + r.Intn(3)      // 2..4
	blocksPer := 1 + r.Intn(3)   // 1..3
	kernel := choice(r, 3, 3, 5) // mostly 3x3

	in := g.AddNode(Node{Kind: OpInput, Batch: batch, Spatial: spatial, Out: 3})
	prev := g.AddNode(Node{Kind: OpConv2D, Batch: batch, Spatial: spatial, In: 3, Out: width, Kernel: kernel})
	g.AddEdge(in, prev)
	chans := width
	for s := 0; s < stages; s++ {
		for b := 0; b < blocksPer; b++ {
			// residual block: conv-bn-relu-conv-bn + skip add
			c1 := g.AddNode(Node{Kind: OpConv2D, Batch: batch, Spatial: spatial, In: chans, Out: chans, Kernel: kernel})
			g.AddEdge(prev, c1)
			bn1 := g.AddNode(Node{Kind: OpBatchNorm, Batch: batch, Spatial: spatial, Out: chans})
			g.AddEdge(c1, bn1)
			a1 := g.AddNode(Node{Kind: OpReLU, Batch: batch, Spatial: spatial, Out: chans})
			g.AddEdge(bn1, a1)
			c2 := g.AddNode(Node{Kind: OpConv2D, Batch: batch, Spatial: spatial, In: chans, Out: chans, Kernel: kernel})
			g.AddEdge(a1, c2)
			bn2 := g.AddNode(Node{Kind: OpBatchNorm, Batch: batch, Spatial: spatial, Out: chans})
			g.AddEdge(c2, bn2)
			add := g.AddNode(Node{Kind: OpAdd, Batch: batch, Spatial: spatial, Out: chans})
			g.AddEdge(bn2, add)
			g.AddEdge(prev, add) // skip connection
			prev = add
		}
		if s < stages-1 {
			pool := g.AddNode(Node{Kind: OpPool, Batch: batch, Spatial: spatial, In: chans})
			g.AddEdge(prev, pool)
			spatial /= 2
			chans *= 2
			up := g.AddNode(Node{Kind: OpConv2D, Batch: batch, Spatial: spatial, In: chans / 2, Out: chans, Kernel: 1})
			g.AddEdge(pool, up)
			prev = up
		}
	}
	pool := g.AddNode(Node{Kind: OpPool, Batch: batch, Spatial: spatial, In: chans})
	g.AddEdge(prev, pool)
	classes := 10
	if imagenet {
		classes = 1000
	}
	head := g.AddNode(Node{Kind: OpDense, Batch: batch, In: chans, Out: classes})
	g.AddEdge(pool, head)
	loss := g.AddNode(Node{Kind: OpLoss, Batch: batch, Out: classes})
	g.AddEdge(head, loss)

	name := fmt.Sprintf("cnn-w%d-s%dx%d-b%d", width, stages, blocksPer, batch)
	return &Task{Name: name, Family: FamilyCNN, Graph: g, BatchSize: batch, StepsPerEpoch: steps, Epochs: choice(r, 30, 60, 90, 120), DatasetMB: datasetMB}
}

// generateTransformer builds an encoder-style Transformer (Europarl MT
// workloads): embedding, L blocks of attention + FFN with layer norms and
// residuals, projection to vocabulary.
func generateTransformer(r *rng.Source) *Task {
	g := NewGraph()
	batch := choice(r, 16, 32, 64)
	seq := choice(r, 64, 128, 256)
	dModel := choice(r, 128, 256, 512)
	heads := choice(r, 4, 8)
	layers := 2 + r.Intn(5) // 2..6
	vocab := choice(r, 8000, 16000, 32000)
	steps := 1900000 / (batch * 8) // Europarl ≈1.9M sentence pairs, chunked

	in := g.AddNode(Node{Kind: OpInput, Batch: batch, Seq: seq, Out: 1})
	emb := g.AddNode(Node{Kind: OpEmbedding, Batch: batch, Seq: seq, Vocab: vocab, Out: dModel})
	g.AddEdge(in, emb)
	prev := emb
	for l := 0; l < layers; l++ {
		ln1 := g.AddNode(Node{Kind: OpLayerNorm, Batch: batch, Seq: seq, Out: dModel})
		g.AddEdge(prev, ln1)
		attn := g.AddNode(Node{Kind: OpAttention, Batch: batch, Seq: seq, Out: dModel, Heads: heads})
		g.AddEdge(ln1, attn)
		add1 := g.AddNode(Node{Kind: OpAdd, Batch: batch, Seq: seq, Out: dModel})
		g.AddEdge(attn, add1)
		g.AddEdge(prev, add1)
		ln2 := g.AddNode(Node{Kind: OpLayerNorm, Batch: batch, Seq: seq, Out: dModel})
		g.AddEdge(add1, ln2)
		ff1 := g.AddNode(Node{Kind: OpDense, Batch: batch, Seq: seq, In: dModel, Out: 4 * dModel})
		g.AddEdge(ln2, ff1)
		act := g.AddNode(Node{Kind: OpGELU, Batch: batch, Seq: seq, Out: 4 * dModel})
		g.AddEdge(ff1, act)
		ff2 := g.AddNode(Node{Kind: OpDense, Batch: batch, Seq: seq, In: 4 * dModel, Out: dModel})
		g.AddEdge(act, ff2)
		add2 := g.AddNode(Node{Kind: OpAdd, Batch: batch, Seq: seq, Out: dModel})
		g.AddEdge(ff2, add2)
		g.AddEdge(add1, add2)
		prev = add2
	}
	proj := g.AddNode(Node{Kind: OpDense, Batch: batch, Seq: seq, In: dModel, Out: vocab})
	g.AddEdge(prev, proj)
	sm := g.AddNode(Node{Kind: OpSoftmax, Batch: batch, Seq: seq, Out: vocab})
	g.AddEdge(proj, sm)
	loss := g.AddNode(Node{Kind: OpLoss, Batch: batch, Seq: seq, Out: vocab})
	g.AddEdge(sm, loss)

	name := fmt.Sprintf("xfmr-d%d-l%d-s%d-b%d", dModel, layers, seq, batch)
	return &Task{Name: name, Family: FamilyTransformer, Graph: g, BatchSize: batch, StepsPerEpoch: steps, Epochs: choice(r, 10, 20, 30), DatasetMB: 620}
}

// generateRNN builds a stacked LSTM sequence model.
func generateRNN(r *rng.Source) *Task {
	g := NewGraph()
	batch := choice(r, 20, 32, 64)
	seq := choice(r, 35, 70, 128)
	hidden := choice(r, 200, 400, 650)
	layers := 1 + r.Intn(3) // 1..3
	vocab := choice(r, 10000, 20000)
	steps := 930000 / (batch * seq) * 10 // PTB-scale token count

	in := g.AddNode(Node{Kind: OpInput, Batch: batch, Seq: seq, Out: 1})
	emb := g.AddNode(Node{Kind: OpEmbedding, Batch: batch, Seq: seq, Vocab: vocab, Out: hidden})
	g.AddEdge(in, emb)
	prev := emb
	for l := 0; l < layers; l++ {
		rec := g.AddNode(Node{Kind: OpRecurrent, Batch: batch, Seq: seq, In: hidden, Out: hidden})
		g.AddEdge(prev, rec)
		drop := g.AddNode(Node{Kind: OpDropout, Batch: batch, Seq: seq, Out: hidden})
		g.AddEdge(rec, drop)
		prev = drop
	}
	proj := g.AddNode(Node{Kind: OpDense, Batch: batch, Seq: seq, In: hidden, Out: vocab})
	g.AddEdge(prev, proj)
	loss := g.AddNode(Node{Kind: OpLoss, Batch: batch, Seq: seq, Out: vocab})
	g.AddEdge(proj, loss)

	name := fmt.Sprintf("lstm-h%d-l%d-s%d-b%d", hidden, layers, seq, batch)
	return &Task{Name: name, Family: FamilyRNN, Graph: g, BatchSize: batch, StepsPerEpoch: steps, Epochs: choice(r, 20, 40, 60), DatasetMB: 50}
}

// generateMLP builds a plain fully connected network (tabular/recsys jobs).
func generateMLP(r *rng.Source) *Task {
	g := NewGraph()
	batch := choice(r, 128, 256, 512, 1024)
	inDim := choice(r, 64, 256, 1024)
	width := choice(r, 256, 512, 1024, 2048)
	layers := 2 + r.Intn(5) // 2..6
	steps := choice(r, 200, 1000, 5000)

	in := g.AddNode(Node{Kind: OpInput, Batch: batch, Out: inDim})
	prev := in
	cur := inDim
	for l := 0; l < layers; l++ {
		d := g.AddNode(Node{Kind: OpDense, Batch: batch, In: cur, Out: width})
		g.AddEdge(prev, d)
		a := g.AddNode(Node{Kind: OpReLU, Batch: batch, Out: width})
		g.AddEdge(d, a)
		prev = a
		cur = width
	}
	head := g.AddNode(Node{Kind: OpDense, Batch: batch, In: cur, Out: 1})
	g.AddEdge(prev, head)
	loss := g.AddNode(Node{Kind: OpLoss, Batch: batch, Out: 1})
	g.AddEdge(head, loss)

	name := fmt.Sprintf("mlp-w%d-l%d-b%d", width, layers, batch)
	return &Task{Name: name, Family: FamilyMLP, Graph: g, BatchSize: batch, StepsPerEpoch: steps, Epochs: choice(r, 20, 50, 100), DatasetMB: float64(choice(r, 1, 10, 100))}
}

// generateUNet builds a U-Net (diffusion-model training): a conv
// encoder–decoder with skip connections between matching resolutions and
// attention at the bottleneck. Conv-dominated like CNNs but with a much
// larger activation footprint (every resolution's features are kept alive
// for the skip path), which stresses memory-constrained clusters.
func generateUNet(r *rng.Source) *Task {
	g := NewGraph()
	batch := choice(r, 8, 16, 32)
	spatial := choice(r, 32, 64)
	width := choice(r, 32, 64)
	levels := 2 + r.Intn(2) // 2..3 down/up levels
	kernel := 3
	steps := choice(r, 1000, 3000, 5000)

	in := g.AddNode(Node{Kind: OpInput, Batch: batch, Spatial: spatial, Out: 3})
	prev := g.AddNode(Node{Kind: OpConv2D, Batch: batch, Spatial: spatial, In: 3, Out: width, Kernel: kernel})
	g.AddEdge(in, prev)

	// Encoder: conv + norm per level, halving resolution, doubling width.
	type levelState struct {
		node    int
		spatial int
		chans   int
	}
	var skips []levelState
	chans := width
	sp := spatial
	for l := 0; l < levels; l++ {
		c := g.AddNode(Node{Kind: OpConv2D, Batch: batch, Spatial: sp, In: chans, Out: chans, Kernel: kernel})
		g.AddEdge(prev, c)
		nrm := g.AddNode(Node{Kind: OpBatchNorm, Batch: batch, Spatial: sp, Out: chans})
		g.AddEdge(c, nrm)
		act := g.AddNode(Node{Kind: OpReLU, Batch: batch, Spatial: sp, Out: chans})
		g.AddEdge(nrm, act)
		skips = append(skips, levelState{node: act, spatial: sp, chans: chans})
		pool := g.AddNode(Node{Kind: OpPool, Batch: batch, Spatial: sp, In: chans})
		g.AddEdge(act, pool)
		sp /= 2
		down := g.AddNode(Node{Kind: OpConv2D, Batch: batch, Spatial: sp, In: chans, Out: 2 * chans, Kernel: 1})
		g.AddEdge(pool, down)
		chans *= 2
		prev = down
	}
	// Bottleneck self-attention over the flattened feature map.
	attn := g.AddNode(Node{Kind: OpAttention, Batch: batch, Seq: sp * sp, Out: chans, Heads: 4})
	g.AddEdge(prev, attn)
	prev = attn
	// Decoder: upsample (modeled as conv), concat skip, conv.
	for l := levels - 1; l >= 0; l-- {
		s := skips[l]
		sp *= 2
		up := g.AddNode(Node{Kind: OpConv2D, Batch: batch, Spatial: sp, In: chans, Out: s.chans, Kernel: 1})
		g.AddEdge(prev, up)
		cat := g.AddNode(Node{Kind: OpConcat, Batch: batch, Spatial: sp, Out: 2 * s.chans})
		g.AddEdge(up, cat)
		g.AddEdge(s.node, cat) // skip connection
		c := g.AddNode(Node{Kind: OpConv2D, Batch: batch, Spatial: sp, In: 2 * s.chans, Out: s.chans, Kernel: kernel})
		g.AddEdge(cat, c)
		chans = s.chans
		prev = c
	}
	head := g.AddNode(Node{Kind: OpConv2D, Batch: batch, Spatial: sp, In: chans, Out: 3, Kernel: 1})
	g.AddEdge(prev, head)
	loss := g.AddNode(Node{Kind: OpLoss, Batch: batch, Spatial: sp, Out: 3})
	g.AddEdge(head, loss)

	name := fmt.Sprintf("unet-w%d-l%d-s%d-b%d", width, levels, spatial, batch)
	return &Task{Name: name, Family: FamilyUNet, Graph: g, BatchSize: batch, StepsPerEpoch: steps, Epochs: choice(r, 20, 40, 80), DatasetMB: float64(choice(r, 500, 3000, 12000))}
}

// generateGNN builds a graph-neural-network training job: embedding lookups
// over a large node table (memory-bound gather), L message-passing layers
// (dense transforms of aggregated neighbour features), and a readout head.
// Its cost profile is unusually memory-class heavy, which splits clusters
// along an axis the other families barely exercise.
func generateGNN(r *rng.Source) *Task {
	g := NewGraph()
	batch := choice(r, 256, 512, 1024) // sampled subgraph nodes per step
	numNodes := choice(r, 100000, 1000000)
	hidden := choice(r, 64, 128, 256)
	layers := 2 + r.Intn(3) // 2..4
	steps := numNodes / batch

	in := g.AddNode(Node{Kind: OpInput, Batch: batch, Out: 1})
	// Node-feature gather, modeled as an embedding over the node table.
	emb := g.AddNode(Node{Kind: OpEmbedding, Batch: batch, Vocab: numNodes, Out: hidden})
	g.AddEdge(in, emb)
	prev := emb
	for l := 0; l < layers; l++ {
		// Neighbour aggregation: a memory-bound concat of gathered
		// neighbour states followed by the dense update.
		agg := g.AddNode(Node{Kind: OpConcat, Batch: batch, Out: 2 * hidden})
		g.AddEdge(prev, agg)
		upd := g.AddNode(Node{Kind: OpDense, Batch: batch, In: 2 * hidden, Out: hidden})
		g.AddEdge(agg, upd)
		nrm := g.AddNode(Node{Kind: OpLayerNorm, Batch: batch, Out: hidden})
		g.AddEdge(upd, nrm)
		act := g.AddNode(Node{Kind: OpReLU, Batch: batch, Out: hidden})
		g.AddEdge(nrm, act)
		prev = act
	}
	head := g.AddNode(Node{Kind: OpDense, Batch: batch, In: hidden, Out: choice(r, 2, 40)})
	g.AddEdge(prev, head)
	loss := g.AddNode(Node{Kind: OpLoss, Batch: batch, Out: 1})
	g.AddEdge(head, loss)

	name := fmt.Sprintf("gnn-h%d-l%d-n%dk-b%d", hidden, layers, numNodes/1000, batch)
	return &Task{Name: name, Family: FamilyGNN, Graph: g, BatchSize: batch, StepsPerEpoch: steps, Epochs: choice(r, 10, 30, 50), DatasetMB: float64(numNodes) / 1000}
}
