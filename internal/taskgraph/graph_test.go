package taskgraph

import (
	"testing"

	"mfcp/internal/rng"
)

func diamond() *Graph {
	g := NewGraph()
	a := g.AddNode(Node{Kind: OpInput, Batch: 1, Out: 4})
	b := g.AddNode(Node{Kind: OpDense, Batch: 1, In: 4, Out: 4})
	c := g.AddNode(Node{Kind: OpDense, Batch: 1, In: 4, Out: 4})
	d := g.AddNode(Node{Kind: OpAdd, Batch: 1, Out: 4})
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	return g
}

func TestTopoSortDiamond(t *testing.T) {
	g := diamond()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.Len())
	for p, id := range order {
		pos[id] = p
	}
	for from, outs := range g.Edges {
		for _, to := range outs {
			if pos[from] >= pos[to] {
				t.Fatalf("edge %d->%d violates topo order", from, to)
			}
		}
	}
}

func TestCycleDetected(t *testing.T) {
	g := diamond()
	g.AddEdge(3, 0)
	if _, err := g.TopoSort(); err != ErrCyclic {
		t.Fatalf("want ErrCyclic, got %v", err)
	}
	if err := g.Validate(); err != ErrCyclic {
		t.Fatalf("Validate: want ErrCyclic, got %v", err)
	}
}

func TestDepth(t *testing.T) {
	g := diamond()
	if d := g.Depth(); d != 3 {
		t.Fatalf("diamond depth=%d, want 3", d)
	}
}

func TestValidateCatchesOrphan(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{Kind: OpInput, Batch: 1, Out: 4})
	g.AddNode(Node{Kind: OpDense, Batch: 1, In: 4, Out: 4}) // no incoming edge
	if err := g.Validate(); err == nil {
		t.Fatal("orphan dense node passed validation")
	}
}

func TestValidateCatchesBadDims(t *testing.T) {
	g := NewGraph()
	in := g.AddNode(Node{Kind: OpInput, Batch: 1, Out: 4})
	bad := g.AddNode(Node{Kind: OpConv2D, Batch: 1, In: 4}) // missing Out/Kernel/Spatial
	g.AddEdge(in, bad)
	if err := g.Validate(); err == nil {
		t.Fatal("underdimensioned conv passed validation")
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := NewGraph().Validate(); err == nil {
		t.Fatal("empty graph passed validation")
	}
}

func TestAddEdgeBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGraph().AddEdge(0, 1)
}

func TestOpKindStrings(t *testing.T) {
	if OpConv2D.String() != "Conv2D" || OpAttention.String() != "Attention" {
		t.Fatal("op names wrong")
	}
	if OpKind(99).String() == "" {
		t.Fatal("out-of-range OpKind produced empty string")
	}
}

func TestComputeClassPartition(t *testing.T) {
	if OpConv2D.Class() != ClassTensor || OpAttention.Class() != ClassTensor {
		t.Fatal("tensor ops misclassified")
	}
	if OpReLU.Class() != ClassVector || OpLayerNorm.Class() != ClassVector {
		t.Fatal("vector ops misclassified")
	}
	if OpPool.Class() != ClassMemory || OpEmbedding.Class() != ClassMemory {
		t.Fatal("memory ops misclassified")
	}
}

func TestFLOPsScaleWithDims(t *testing.T) {
	small := Node{Kind: OpConv2D, Batch: 32, Spatial: 16, In: 16, Out: 16, Kernel: 3}
	big := small
	big.Out = 32
	if big.FLOPs() != 2*small.FLOPs() {
		t.Fatalf("conv FLOPs not linear in Cout: %v vs %v", big.FLOPs(), small.FLOPs())
	}
	attn := Node{Kind: OpAttention, Batch: 8, Seq: 64, Out: 128, Heads: 8}
	attn2 := attn
	attn2.Seq = 128
	// attention has an O(S^2) term, so doubling seq must more than double FLOPs
	if attn2.FLOPs() <= 2*attn.FLOPs() {
		t.Fatal("attention FLOPs missing quadratic seq term")
	}
}

func TestParamsIndependentOfBatch(t *testing.T) {
	n := Node{Kind: OpDense, Batch: 32, In: 100, Out: 50}
	m := n
	m.Batch = 1024
	if n.Params() != m.Params() {
		t.Fatal("Params depends on batch size")
	}
	if n.Params() != 100*50+50 {
		t.Fatalf("dense params=%v", n.Params())
	}
}

func TestGraphCostAggregates(t *testing.T) {
	g := diamond()
	c := g.Cost()
	if c.Nodes != 4 || c.Depth != 3 {
		t.Fatalf("cost nodes/depth: %+v", c)
	}
	sum := 0.0
	for _, f := range c.FLOPsByClass {
		sum += f
	}
	if sum != c.TotalFLOPs || c.TotalFLOPs <= 0 {
		t.Fatalf("class FLOPs don't sum to total: %+v", c)
	}
}

func TestGenerateAllFamiliesValid(t *testing.T) {
	r := rng.New(99)
	for f := Family(0); int(f) < NumFamilies; f++ {
		for i := 0; i < 25; i++ {
			task := Generate(f, r)
			if task.Family != f {
				t.Fatalf("family mismatch: %v", task.Family)
			}
			if err := task.Graph.Validate(); err != nil {
				t.Fatalf("%s task %d invalid: %v", f, i, err)
			}
			if task.EpochFLOPs() <= 0 {
				t.Fatalf("%s task has non-positive epoch FLOPs", f)
			}
			if task.BatchSize <= 0 || task.StepsPerEpoch <= 0 {
				t.Fatalf("%s task has bad loop params: %+v", f, task)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(FamilyTransformer, rng.New(5))
	b := Generate(FamilyTransformer, rng.New(5))
	if a.Name != b.Name || a.Graph.Len() != b.Graph.Len() {
		t.Fatalf("generation not deterministic: %s vs %s", a.Name, b.Name)
	}
}

func TestGenerateMixProportions(t *testing.T) {
	r := rng.New(123)
	weights := make([]float64, NumFamilies)
	weights[FamilyCNN] = 1
	weights[FamilyMLP] = 1
	tasks := GenerateMix(400, weights, r)
	var counts [NumFamilies]int
	for _, task := range tasks {
		counts[task.Family]++
	}
	if counts[FamilyTransformer] != 0 || counts[FamilyRNN] != 0 {
		t.Fatalf("zero-weight families generated: %v", counts)
	}
	if counts[FamilyCNN] < 120 || counts[FamilyMLP] < 120 {
		t.Fatalf("mix far from weights: %v", counts)
	}
}

func TestFamilyCostsDiffer(t *testing.T) {
	// Transformers must be tensor-heavy relative to their vector load in a
	// different proportion than CNNs — that heterogeneity is what the
	// clusters' class-specific throughputs act on.
	r := rng.New(7)
	cnn := Generate(FamilyCNN, r).Cost()
	xf := Generate(FamilyTransformer, r).Cost()
	if cnn.TotalFLOPs == 0 || xf.TotalFLOPs == 0 {
		t.Fatal("zero-cost graphs")
	}
	cnnTensorShare := cnn.FLOPsByClass[ClassTensor] / cnn.TotalFLOPs
	xfMemShare := xf.FLOPsByClass[ClassMemory] / xf.TotalFLOPs
	if cnnTensorShare < 0.5 {
		t.Fatalf("CNN should be tensor-dominated, share=%v", cnnTensorShare)
	}
	if xfMemShare <= 0 {
		t.Fatal("transformer has no memory-class work (embedding missing?)")
	}
}

func TestCountKinds(t *testing.T) {
	g := diamond()
	counts := g.CountKinds()
	if counts[OpInput] != 1 || counts[OpDense] != 2 || counts[OpAdd] != 1 {
		t.Fatalf("CountKinds=%v", counts)
	}
}

func BenchmarkGenerateCNN(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		Generate(FamilyCNN, r)
	}
}

func BenchmarkGraphCost(b *testing.B) {
	task := Generate(FamilyTransformer, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task.Graph.Cost()
	}
}
