package taskgraph

import (
	"encoding/json"
	"strings"
	"testing"

	"mfcp/internal/rng"
)

func TestTaskJSONRoundTrip(t *testing.T) {
	r := rng.New(51)
	for f := Family(0); int(f) < NumFamilies; f++ {
		orig := Generate(f, r)
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("%s: marshal: %v", f, err)
		}
		var back Task
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", f, err)
		}
		if back.Name != orig.Name || back.Family != orig.Family ||
			back.BatchSize != orig.BatchSize || back.Epochs != orig.Epochs ||
			back.StepsPerEpoch != orig.StepsPerEpoch || back.DatasetMB != orig.DatasetMB {
			t.Fatalf("%s: metadata mismatch: %+v vs %+v", f, back, orig)
		}
		if back.Graph.Len() != orig.Graph.Len() {
			t.Fatalf("%s: node count %d vs %d", f, back.Graph.Len(), orig.Graph.Len())
		}
		// Costs are a pure function of the graph: identical costs imply the
		// structure survived.
		if back.Cost() != orig.Cost() {
			t.Fatalf("%s: cost changed over round trip", f)
		}
		for i, n := range orig.Graph.Nodes {
			if back.Graph.Nodes[i] != n {
				t.Fatalf("%s: node %d differs: %+v vs %+v", f, i, back.Graph.Nodes[i], n)
			}
		}
	}
}

func TestTaskUnmarshalRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad family": `{"name":"x","family":"Quantum","graph":{"nodes":[],"edges":[]}}`,
		"bad kind":   `{"name":"x","family":"CNN","graph":{"nodes":[{"kind":"Teleport"}],"edges":[]}}`,
		"bad edge":   `{"name":"x","family":"CNN","graph":{"nodes":[{"kind":"Input","batch":1,"out":3}],"edges":[[0,5]]}}`,
		"cyclic": `{"name":"x","family":"CNN","graph":{"nodes":[{"kind":"Input","batch":1,"out":3},
			{"kind":"Dense","batch":1,"in":3,"out":3}],"edges":[[0,1],[1,0]]}}`,
	}
	for label, payload := range cases {
		var task Task
		if err := json.Unmarshal([]byte(payload), &task); err == nil {
			t.Fatalf("%s accepted", label)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	r := rng.New(52)
	task := Generate(FamilyUNet, r)
	dot := task.Graph.DOT(task.Name)
	if !strings.HasPrefix(dot, "digraph") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("malformed dot:\n%s", dot)
	}
	if !strings.Contains(dot, "Conv2D") || !strings.Contains(dot, "->") {
		t.Fatal("dot missing nodes or edges")
	}
	// Every edge endpoint must be a declared node.
	for _, n := range task.Graph.Nodes {
		_ = n
	}
	if strings.Count(dot, "->") != countEdges(task.Graph) {
		t.Fatalf("edge count mismatch")
	}
	// Deterministic output.
	if dot != task.Graph.DOT(task.Name) {
		t.Fatal("DOT not deterministic")
	}
}

func countEdges(g *Graph) int {
	n := 0
	for _, outs := range g.Edges {
		n += len(outs)
	}
	return n
}

func TestUNetProperties(t *testing.T) {
	r := rng.New(53)
	for i := 0; i < 20; i++ {
		task := Generate(FamilyUNet, r)
		if err := task.Graph.Validate(); err != nil {
			t.Fatal(err)
		}
		c := task.Cost()
		// Skip connections: at least one node has in-degree 2.
		deg := task.Graph.InDegrees()
		hasSkip := false
		for _, d := range deg {
			if d >= 2 {
				hasSkip = true
			}
		}
		if !hasSkip {
			t.Fatal("UNet lacks skip connections")
		}
		if c.FLOPsByClass[ClassTensor] < c.FLOPsByClass[ClassMemory] {
			t.Fatal("UNet should be tensor-dominated")
		}
	}
}

func TestGNNMemoryHeavy(t *testing.T) {
	r := rng.New(54)
	// GNN jobs must carry a larger memory-class share than MLPs: that axis
	// of heterogeneity is their purpose.
	var gnnShare, mlpShare float64
	for i := 0; i < 20; i++ {
		g := Generate(FamilyGNN, r).Cost()
		m := Generate(FamilyMLP, r).Cost()
		gnnShare += g.FLOPsByClass[ClassMemory] / g.TotalFLOPs
		mlpShare += m.FLOPsByClass[ClassMemory] / m.TotalFLOPs
	}
	if gnnShare <= mlpShare {
		t.Fatalf("GNN memory share %v not above MLP %v", gnnShare/20, mlpShare/20)
	}
}
