package taskgraph

// Per-operator cost estimators. The numbers follow the standard analytic
// models used by Paleo-style performance predictors: multiply-accumulate
// counts for dense ops, element counts for vector ops, and bytes moved for
// memory-bound ops. Absolute accuracy is unimportant — what matters is that
// costs scale correctly with hyperparameters so clusters with different
// per-class throughputs induce genuinely different task orderings.

// FLOPs returns the forward-pass floating point operations of the node for
// one step over its Batch.
func (n Node) FLOPs() float64 {
	b := float64(max(n.Batch, 1))
	switch n.Kind {
	case OpConv2D:
		// 2 * H*W * K^2 * Cin * Cout MACs per sample.
		hw := float64(n.Spatial * n.Spatial)
		return 2 * b * hw * float64(n.Kernel*n.Kernel) * float64(n.In) * float64(n.Out)
	case OpDense, OpMatMul:
		seq := float64(max(n.Seq, 1))
		return 2 * b * seq * float64(n.In) * float64(n.Out)
	case OpAttention:
		// QKV projections + attention matrix + value aggregation + output proj.
		s := float64(n.Seq)
		d := float64(n.Out)
		proj := 4 * 2 * b * s * d * d
		attn := 2 * 2 * b * s * s * d
		return proj + attn
	case OpRecurrent:
		// LSTM-style: 4 gates, each (In+Out)*Out MACs, per timestep.
		s := float64(n.Seq)
		return 2 * 4 * b * s * float64(n.In+n.Out) * float64(n.Out)
	case OpEmbedding:
		// Lookup is memory bound; count one op per fetched element.
		return b * float64(max(n.Seq, 1)) * float64(n.Out)
	case OpBatchNorm, OpLayerNorm:
		return 5 * b * n.elements()
	case OpReLU, OpDropout, OpAdd:
		return b * n.elements()
	case OpGELU, OpTanh, OpSoftmax:
		return 4 * b * n.elements()
	case OpPool:
		return b * float64(n.Spatial*n.Spatial) * float64(max(n.In, 1))
	case OpConcat:
		return b * n.elements()
	case OpLoss:
		return 3 * b * n.elements()
	default: // OpInput
		return 0
	}
}

// elements returns the per-sample output element count used by vector ops.
func (n Node) elements() float64 {
	e := 1.0
	if n.Spatial > 0 {
		e *= float64(n.Spatial * n.Spatial)
	}
	if n.Seq > 0 {
		e *= float64(n.Seq)
	}
	if n.Out > 0 {
		e *= float64(n.Out)
	} else if n.In > 0 {
		e *= float64(n.In)
	}
	return e
}

// Params returns the number of trainable parameters of the node.
func (n Node) Params() float64 {
	switch n.Kind {
	case OpConv2D:
		return float64(n.Kernel*n.Kernel)*float64(n.In)*float64(n.Out) + float64(n.Out)
	case OpDense, OpMatMul:
		return float64(n.In)*float64(n.Out) + float64(n.Out)
	case OpAttention:
		return 4 * float64(n.Out) * float64(n.Out)
	case OpRecurrent:
		return 4 * float64(n.In+n.Out+1) * float64(n.Out)
	case OpEmbedding:
		return float64(n.Vocab) * float64(n.Out)
	case OpBatchNorm, OpLayerNorm:
		d := float64(n.Out)
		if d == 0 {
			d = float64(n.In)
		}
		return 2 * d
	default:
		return 0
	}
}

// ActivationBytes returns the bytes of activation memory the node produces
// per step (float32 storage assumed).
func (n Node) ActivationBytes() float64 {
	return 4 * float64(max(n.Batch, 1)) * n.elements()
}

// GraphCost aggregates a graph's static cost profile.
type GraphCost struct {
	// FLOPsByClass[c] is the total forward FLOPs of ops in ComputeClass c.
	FLOPsByClass [NumComputeClasses]float64
	// TotalFLOPs is the sum over classes.
	TotalFLOPs float64
	// Params is the total trainable parameter count.
	Params float64
	// ActivationBytes is the total activation footprint per step.
	ActivationBytes float64
	// Depth is the longest path length, a proxy for non-overlappable
	// sequential dependencies (kernel-launch/serialization overhead).
	Depth int
	// Nodes is the operator count, a proxy for per-kernel overheads.
	Nodes int
}

// Cost computes the static cost profile of the graph.
func (g *Graph) Cost() GraphCost {
	var c GraphCost
	for _, n := range g.Nodes {
		f := n.FLOPs()
		c.FLOPsByClass[n.Kind.Class()] += f
		c.TotalFLOPs += f
		c.Params += n.Params()
		c.ActivationBytes += n.ActivationBytes()
	}
	c.Depth = g.Depth()
	c.Nodes = g.Len()
	return c
}

// TrainFLOPsMultiplier converts forward FLOPs to training FLOPs
// (forward + backward ≈ 3× forward, the standard rule of thumb).
const TrainFLOPsMultiplier = 3.0

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
