package taskgraph

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// jsonGraph is the wire form of a Graph.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges [][2]int   `json:"edges"`
}

type jsonNode struct {
	Kind    string `json:"kind"`
	Batch   int    `json:"batch,omitempty"`
	Spatial int    `json:"spatial,omitempty"`
	Seq     int    `json:"seq,omitempty"`
	In      int    `json:"in,omitempty"`
	Out     int    `json:"out,omitempty"`
	Kernel  int    `json:"kernel,omitempty"`
	Heads   int    `json:"heads,omitempty"`
	Vocab   int    `json:"vocab,omitempty"`
}

// jsonTask is the wire form of a Task.
type jsonTask struct {
	Name          string    `json:"name"`
	Family        string    `json:"family"`
	BatchSize     int       `json:"batch_size"`
	StepsPerEpoch int       `json:"steps_per_epoch"`
	Epochs        int       `json:"epochs"`
	DatasetMB     float64   `json:"dataset_mb"`
	Graph         jsonGraph `json:"graph"`
}

// kindByName maps operator names back to kinds for decoding.
var kindByName = func() map[string]OpKind {
	m := make(map[string]OpKind, NumOpKinds)
	for k := OpKind(0); int(k) < NumOpKinds; k++ {
		m[k.String()] = k
	}
	return m
}()

// familyByName maps family names back for decoding.
var familyByName = func() map[string]Family {
	m := make(map[string]Family, NumFamilies)
	for f := Family(0); int(f) < NumFamilies; f++ {
		m[f.String()] = f
	}
	return m
}()

// MarshalJSON implements json.Marshaler for Task.
func (t *Task) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Nodes: make([]jsonNode, t.Graph.Len())}
	for i, n := range t.Graph.Nodes {
		jg.Nodes[i] = jsonNode{
			Kind: n.Kind.String(), Batch: n.Batch, Spatial: n.Spatial, Seq: n.Seq,
			In: n.In, Out: n.Out, Kernel: n.Kernel, Heads: n.Heads, Vocab: n.Vocab,
		}
	}
	for from, outs := range t.Graph.Edges {
		for _, to := range outs {
			jg.Edges = append(jg.Edges, [2]int{from, to})
		}
	}
	return json.Marshal(jsonTask{
		Name: t.Name, Family: t.Family.String(), BatchSize: t.BatchSize,
		StepsPerEpoch: t.StepsPerEpoch, Epochs: t.Epochs, DatasetMB: t.DatasetMB,
		Graph: jg,
	})
}

// UnmarshalJSON implements json.Unmarshaler for Task, validating the decoded
// graph.
func (t *Task) UnmarshalJSON(data []byte) error {
	var jt jsonTask
	if err := json.Unmarshal(data, &jt); err != nil {
		return err
	}
	fam, ok := familyByName[jt.Family]
	if !ok {
		return fmt.Errorf("taskgraph: unknown family %q", jt.Family)
	}
	g := NewGraph()
	for _, jn := range jt.Graph.Nodes {
		kind, ok := kindByName[jn.Kind]
		if !ok {
			return fmt.Errorf("taskgraph: unknown op kind %q", jn.Kind)
		}
		g.AddNode(Node{
			Kind: kind, Batch: jn.Batch, Spatial: jn.Spatial, Seq: jn.Seq,
			In: jn.In, Out: jn.Out, Kernel: jn.Kernel, Heads: jn.Heads, Vocab: jn.Vocab,
		})
	}
	for _, e := range jt.Graph.Edges {
		if e[0] < 0 || e[0] >= g.Len() || e[1] < 0 || e[1] >= g.Len() {
			return fmt.Errorf("taskgraph: edge %v out of range", e)
		}
		g.AddEdge(e[0], e[1])
	}
	decoded := Task{
		Name: jt.Name, Family: fam, Graph: g, BatchSize: jt.BatchSize,
		StepsPerEpoch: jt.StepsPerEpoch, Epochs: jt.Epochs, DatasetMB: jt.DatasetMB,
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("taskgraph: decoded task %q invalid: %w", jt.Name, err)
	}
	*t = decoded
	return nil
}

// DOT renders the graph in Graphviz dot syntax, with nodes labeled by
// operator and principal dimensions and colored by compute class.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, style=filled];\n", sanitizeDOT(name))
	colors := map[ComputeClass]string{
		ClassTensor: "#e8f0fe",
		ClassVector: "#e6f4ea",
		ClassMemory: "#fef7e0",
	}
	for _, n := range g.Nodes {
		label := n.Kind.String()
		var dims []string
		if n.Out > 0 {
			dims = append(dims, fmt.Sprintf("out=%d", n.Out))
		}
		if n.Seq > 0 {
			dims = append(dims, fmt.Sprintf("seq=%d", n.Seq))
		}
		if n.Spatial > 0 {
			dims = append(dims, fmt.Sprintf("hw=%d", n.Spatial))
		}
		if len(dims) > 0 {
			label += "\\n" + strings.Join(dims, " ")
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", fillcolor=\"%s\"];\n", n.ID, label, colors[n.Kind.Class()])
	}
	// Deterministic edge order for stable output.
	type edge struct{ from, to int }
	var edges []edge
	for from, outs := range g.Edges {
		for _, to := range outs {
			edges = append(edges, edge{from, to})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].from != edges[b].from {
			return edges[a].from < edges[b].from
		}
		return edges[a].to < edges[b].to
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e.from, e.to)
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitizeDOT(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}
