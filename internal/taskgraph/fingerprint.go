package taskgraph

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Fingerprint returns a 128-bit FNV-1a digest of the task's full content:
// name, family, training-loop hyperparameters, and the graph's nodes (kind
// plus every dimension field) and edges. Two tasks have equal fingerprints
// exactly when a content-equal task would embed identically, so the digest
// serves as the identity key for the embedding cache (internal/embed):
// regenerating a pool from the same scenario seed yields distinct *Task
// pointers but identical fingerprints.
func (t *Task) Fingerprint() [16]byte {
	h := fnv.New128a()
	var buf [8]byte
	wInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wFloat := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	h.Write([]byte(t.Name))
	h.Write([]byte{0}) // terminate the variable-length name
	wInt(int(t.Family))
	wInt(t.BatchSize)
	wInt(t.StepsPerEpoch)
	wInt(t.Epochs)
	wFloat(t.DatasetMB)
	g := t.Graph
	wInt(g.Len())
	for _, n := range g.Nodes {
		wInt(int(n.Kind))
		wInt(n.Batch)
		wInt(n.Spatial)
		wInt(n.Seq)
		wInt(n.In)
		wInt(n.Out)
		wInt(n.Kernel)
		wInt(n.Heads)
		wInt(n.Vocab)
	}
	for from, outs := range g.Edges {
		wInt(from)
		wInt(len(outs))
		for _, to := range outs {
			wInt(to)
		}
	}
	var fp [16]byte
	copy(fp[:], h.Sum(nil))
	return fp
}
