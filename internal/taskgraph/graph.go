// Package taskgraph models deep-learning tasks as operator DAGs.
//
// The paper's platform predicts how long a training task runs on a cluster
// and how reliably it completes. Its authors profile real CV/NLP jobs on the
// Xirang platform and embed them with a GNN; we cannot access that data, so
// this package is the synthetic stand-in: it generates computation graphs
// for four task families (CNN, Transformer, RNN, MLP) with realistic
// hyperparameter ranges, and exposes per-operator FLOP / parameter / memory
// estimators. Ground-truth cluster performance (internal/cluster) and the
// feature embedding (internal/embed) are both pure functions of these
// graphs, so everything downstream exercises the same code paths the real
// platform would.
package taskgraph

import (
	"errors"
	"fmt"
)

// OpKind identifies an operator type in a computation graph.
type OpKind int

// The operator vocabulary. It intentionally covers the op classes that
// dominate training-time on real accelerators: dense linear algebra
// (Conv2D, Dense, MatMul, Attention, Recurrent), normalization, elementwise
// activations, and data movement (Pool, Embedding, Concat).
const (
	OpInput OpKind = iota
	OpConv2D
	OpDense
	OpMatMul
	OpAttention
	OpRecurrent
	OpEmbedding
	OpBatchNorm
	OpLayerNorm
	OpReLU
	OpGELU
	OpTanh
	OpSoftmax
	OpPool
	OpAdd
	OpConcat
	OpDropout
	OpLoss
	numOpKinds
)

// NumOpKinds is the size of the operator vocabulary; embeddings one-hot over it.
const NumOpKinds = int(numOpKinds)

var opNames = [...]string{
	"Input", "Conv2D", "Dense", "MatMul", "Attention", "Recurrent",
	"Embedding", "BatchNorm", "LayerNorm", "ReLU", "GELU", "Tanh",
	"Softmax", "Pool", "Add", "Concat", "Dropout", "Loss",
}

// String returns the operator name.
func (k OpKind) String() string {
	if k < 0 || int(k) >= len(opNames) {
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
	return opNames[k]
}

// ComputeClass partitions operators by which hardware resource dominates
// their runtime. Cluster profiles price each class separately, which is what
// creates the per-architecture affinities (Fig. 2 of the paper).
type ComputeClass int

const (
	// ClassTensor: dense-math ops served by matrix engines (conv, matmul, attention).
	ClassTensor ComputeClass = iota
	// ClassVector: elementwise / normalization ops bound by vector throughput.
	ClassVector
	// ClassMemory: data-movement-bound ops (pool, embedding lookups, concat).
	ClassMemory
	numComputeClasses
)

// NumComputeClasses is the number of compute classes.
const NumComputeClasses = int(numComputeClasses)

// Class returns the compute class of the operator.
func (k OpKind) Class() ComputeClass {
	switch k {
	case OpConv2D, OpDense, OpMatMul, OpAttention, OpRecurrent:
		return ClassTensor
	case OpBatchNorm, OpLayerNorm, OpReLU, OpGELU, OpTanh, OpSoftmax, OpDropout, OpAdd, OpLoss:
		return ClassVector
	default:
		return ClassMemory
	}
}

// Node is one operator instance. Dimension fields are interpreted per Kind;
// unused fields stay zero. Cost methods (flops.go) read only these fields.
type Node struct {
	ID   int
	Kind OpKind

	// Batch is the per-step batch size; Spatial the feature-map side length
	// (CNN); Seq the sequence length (NLP); In/Out channel or feature widths;
	// Kernel the convolution kernel side; Heads the attention head count;
	// Vocab the embedding vocabulary size.
	Batch, Spatial, Seq, In, Out, Kernel, Heads, Vocab int
}

// Graph is a directed acyclic computation graph. Edges[i] lists the IDs of
// the consumers of node i's output. Node IDs equal their index in Nodes.
type Graph struct {
	Nodes []Node
	Edges [][]int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode appends a node, assigns its ID, and returns the ID.
func (g *Graph) AddNode(n Node) int {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	g.Edges = append(g.Edges, nil)
	return n.ID
}

// AddEdge adds a directed edge from -> to. It panics on out-of-range IDs.
func (g *Graph) AddEdge(from, to int) {
	if from < 0 || from >= len(g.Nodes) || to < 0 || to >= len(g.Nodes) {
		// invariant: generators connect only nodes they created.
		panic(fmt.Sprintf("taskgraph: edge (%d,%d) out of range (n=%d)", from, to, len(g.Nodes)))
	}
	g.Edges[from] = append(g.Edges[from], to)
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.Nodes) }

// InDegrees returns the in-degree of every node.
func (g *Graph) InDegrees() []int {
	deg := make([]int, len(g.Nodes))
	for _, outs := range g.Edges {
		for _, to := range outs {
			deg[to]++
		}
	}
	return deg
}

// ErrCyclic is returned by TopoSort and Validate for cyclic graphs.
var ErrCyclic = errors.New("taskgraph: graph contains a cycle")

// TopoSort returns node IDs in a topological order (Kahn's algorithm), or
// ErrCyclic.
func (g *Graph) TopoSort() ([]int, error) {
	deg := g.InDegrees()
	queue := make([]int, 0, len(g.Nodes))
	for id, d := range deg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	order := make([]int, 0, len(g.Nodes))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, to := range g.Edges[id] {
			deg[to]--
			if deg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, ErrCyclic
	}
	return order, nil
}

// Depth returns the length (in nodes) of the longest path.
func (g *Graph) Depth() int {
	order, err := g.TopoSort()
	if err != nil {
		return 0
	}
	depth := make([]int, len(g.Nodes))
	maxDepth := 0
	for _, id := range order {
		if depth[id] == 0 {
			depth[id] = 1
		}
		if depth[id] > maxDepth {
			maxDepth = depth[id]
		}
		for _, to := range g.Edges[id] {
			if depth[id]+1 > depth[to] {
				depth[to] = depth[id] + 1
			}
		}
	}
	return maxDepth
}

// Validate checks structural invariants: acyclicity, a single connected
// component reachable from inputs, and per-kind dimension sanity.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return errors.New("taskgraph: empty graph")
	}
	for id, n := range g.Nodes {
		if n.ID != id {
			return fmt.Errorf("taskgraph: node %d has ID %d", id, n.ID)
		}
		if err := n.validateDims(); err != nil {
			return fmt.Errorf("taskgraph: node %d (%s): %w", id, n.Kind, err)
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	// Every non-input node must consume something.
	deg := g.InDegrees()
	for id, n := range g.Nodes {
		if n.Kind != OpInput && deg[id] == 0 {
			return fmt.Errorf("taskgraph: non-input node %d (%s) has no producers", id, n.Kind)
		}
	}
	return nil
}

func (n Node) validateDims() error {
	if n.Batch < 0 || n.In < 0 || n.Out < 0 {
		return errors.New("negative dimension")
	}
	switch n.Kind {
	case OpConv2D:
		if n.In == 0 || n.Out == 0 || n.Kernel == 0 || n.Spatial == 0 {
			return errors.New("conv requires In, Out, Kernel, Spatial")
		}
	case OpDense, OpMatMul:
		if n.In == 0 || n.Out == 0 {
			return errors.New("dense/matmul requires In and Out")
		}
	case OpAttention:
		if n.Seq == 0 || n.Out == 0 || n.Heads == 0 {
			return errors.New("attention requires Seq, Out, Heads")
		}
	case OpRecurrent:
		if n.Seq == 0 || n.In == 0 || n.Out == 0 {
			return errors.New("recurrent requires Seq, In, Out")
		}
	case OpEmbedding:
		if n.Vocab == 0 || n.Out == 0 {
			return errors.New("embedding requires Vocab and Out")
		}
	}
	return nil
}

// CountKinds returns a histogram of operator kinds, indexed by OpKind.
func (g *Graph) CountKinds() []int {
	counts := make([]int, NumOpKinds)
	for _, n := range g.Nodes {
		counts[n.Kind]++
	}
	return counts
}
