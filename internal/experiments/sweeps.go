package experiments

import (
	"fmt"

	"mfcp/internal/baselines"
	"mfcp/internal/core"
	"mfcp/internal/parallel"
	"mfcp/internal/stats"
	"mfcp/internal/workload"
)

// GradientRoutes compares the three ways of differentiating through the
// matching argmin end-to-end (extension X5): analytical KKT (AD),
// zeroth-order perturbation (FG, Algorithm 2), and backprop through the
// solver iterations (UR). All start from the identical MSE warm start.
func GradientRoutes(cfg Config) *Table {
	cfg.FillDefaults()
	specs := []MethodSpec{
		{Name: "TSM (warm start)", Build: func(bc *BuildContext) Method {
			return baselines.NewTSMFromSet(bc.S, bc.Pretrained())
		}},
	}
	for _, kind := range []core.Kind{core.AD, core.FG, core.UR} {
		kind := kind
		specs = append(specs, MethodSpec{Name: kind.String(), Build: func(bc *BuildContext) Method {
			return core.Train(bc.S, bc.Train, core.Config{
				Kind: kind, Hidden: cfg.Hidden,
				Epochs: cfg.RegretEpochs, RoundSize: cfg.RoundSize,
				Match: cfg.matchConfigFor(bc.S), Warm: bc.Pretrained(),
			})
		}})
	}
	results := RunMethods(cfg, specs)
	tbl := resultTable("X5 — gradient routes through the argmin (setting "+string(cfg.Setting)+")", results)
	tbl.Notes = append(tbl.Notes,
		"AD: implicit KKT differentiation; FG: Algorithm 2 zeroth-order; UR: unrolled solver backprop — all regret-train from the same MSE warm start")
	return tbl
}

// SampleEfficiency sweeps the number of profiled training tasks (extension
// X6): the paper motivates MFCP with the scarcity of physical profiling
// runs, so its edge over pure-MSE training should persist (or grow) as the
// training pool shrinks.
func SampleEfficiency(cfg Config, poolSizes []int) *Table {
	cfg.FillDefaults()
	if len(poolSizes) == 0 {
		poolSizes = []int{40, 80, 120, 200}
	}
	headers := []string{"Method"}
	for _, ps := range poolSizes {
		headers = append(headers, fmt.Sprintf("pool=%d", ps))
	}
	tbl := &Table{Title: "X6 — regret vs profiling-pool size (setting " + string(cfg.Setting) + ")", Headers: headers}
	rows := map[string][]string{"TSM": {"TSM"}, "MFCP-FG": {"MFCP-FG"}, "Δ (paired, p<.05?)": {"Δ (paired, p<.05?)"}}
	order := []string{"TSM", "MFCP-FG", "Δ (paired, p<.05?)"}
	for _, ps := range poolSizes {
		c := cfg
		c.PoolSize = ps
		specs := []MethodSpec{
			{Name: "TSM", Build: func(bc *BuildContext) Method {
				return baselines.NewTSMFromSet(bc.S, bc.Pretrained())
			}},
			{Name: "MFCP-FG", Build: func(bc *BuildContext) Method {
				return core.Train(bc.S, bc.Train, core.Config{
					Kind: core.FG, Hidden: c.Hidden,
					Epochs: c.RegretEpochs, RoundSize: c.RoundSize,
					Match: c.matchConfigFor(bc.S), Warm: bc.Pretrained(),
				})
			}},
		}
		perRep := runMethodsRaw(c, specs)
		tsm := perRep[0]
		fg := perRep[1]
		rows["TSM"] = append(rows["TSM"], stats.Summarize(tsm).String())
		rows["MFCP-FG"] = append(rows["MFCP-FG"], stats.Summarize(fg).String())
		cmp := stats.PairedBootstrap(fg, tsm, 4000, workload.MustNew(workload.Config{Seed: c.Seed}).Stream("boot"))
		rows["Δ (paired, p<.05?)"] = append(rows["Δ (paired, p<.05?)"],
			fmt.Sprintf("%+.3f (%v)", cmp.MeanDiff, cmp.Significant()))
	}
	for _, k := range order {
		tbl.Rows = append(tbl.Rows, rows[k])
	}
	tbl.Notes = append(tbl.Notes,
		"Δ = MFCP-FG − TSM regret, paired across replicates; negative favors MFCP")
	return tbl
}

// NoiseSensitivity sweeps measurement-noise intensity (extension X7) by
// scaling every cluster's run-to-run sigma; decision-focused training
// should degrade more gracefully than MSE fitting as labels get noisier.
func NoiseSensitivity(cfg Config, scales []float64) *Table {
	cfg.FillDefaults()
	if len(scales) == 0 {
		scales = []float64{0.5, 1, 2, 4}
	}
	headers := []string{"Method"}
	for _, sc := range scales {
		headers = append(headers, fmt.Sprintf("noise×%.1f", sc))
	}
	tbl := &Table{Title: "X7 — regret vs measurement-noise scale (setting " + string(cfg.Setting) + ")", Headers: headers}
	tsmRow := []string{"TSM"}
	fgRow := []string{"MFCP-FG"}
	for _, sc := range scales {
		c := cfg
		c.NoiseScale = sc
		specs := []MethodSpec{
			{Name: "TSM", Build: func(bc *BuildContext) Method {
				return baselines.NewTSMFromSet(bc.S, bc.Pretrained())
			}},
			{Name: "MFCP-FG", Build: func(bc *BuildContext) Method {
				return core.Train(bc.S, bc.Train, core.Config{
					Kind: core.FG, Hidden: c.Hidden,
					Epochs: c.RegretEpochs, RoundSize: c.RoundSize,
					Match: c.matchConfigFor(bc.S), Warm: bc.Pretrained(),
				})
			}},
		}
		perRep := runMethodsRaw(c, specs)
		tsmRow = append(tsmRow, stats.Summarize(perRep[0]).String())
		fgRow = append(fgRow, stats.Summarize(perRep[1]).String())
	}
	tbl.Rows = append(tbl.Rows, tsmRow, fgRow)
	tbl.Notes = append(tbl.Notes, "noise scale multiplies every cluster's lognormal run-to-run sigma")
	return tbl
}

// GammaSweep varies the reliability threshold γ (extension X8) and reports
// how the full pipeline trades makespan for reliability, per method.
func GammaSweep(cfg Config, gammas []float64) *Table {
	cfg.FillDefaults()
	if len(gammas) == 0 {
		gammas = []float64{0.7, 0.8, 0.88, 0.93}
	}
	tbl := &Table{
		Title:   "X8 — reliability threshold γ sweep (setting " + string(cfg.Setting) + ", MFCP-FG)",
		Headers: []string{"gamma", "Regret", "Reliability", "Utilization", "Makespan"},
	}
	for _, g := range gammas {
		c := cfg
		c.Match.Gamma = g
		specs := []MethodSpec{{Name: "MFCP-FG", Build: func(bc *BuildContext) Method {
			return core.Train(bc.S, bc.Train, core.Config{
				Kind: core.FG, Hidden: c.Hidden,
				Epochs: c.RegretEpochs, RoundSize: c.RoundSize,
				Match: c.matchConfigFor(bc.S), Warm: bc.Pretrained(),
			})
		}}}
		res := RunMethods(c, specs)[0]
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.2f", g),
			res.Regret.String(), res.Reliability.String(), res.Utilization.String(), res.Makespan.String(),
		})
	}
	tbl.Notes = append(tbl.Notes, "tighter γ costs makespan (and can raise regret) while lifting achieved reliability")
	return tbl
}

// runMethodsRaw trains and evaluates methods like RunMethods but returns
// the raw per-replicate regrets per method, preserving the pairing needed
// by significance tests.
func runMethodsRaw(cfg Config, specs []MethodSpec) [][]float64 {
	cfg.FillDefaults()
	perRep := parallel.Map(cfg.Replicates, func(rep int) []float64 {
		s := workload.MustNew(workload.Config{
			Setting:    cfg.Setting,
			PoolSize:   cfg.PoolSize,
			FeatureDim: cfg.FeatureDim,
			NoiseScale: cfg.NoiseScale,
			Seed:       cfg.Seed + uint64(rep)*1_000_003,
		})
		train, test := s.Split(cfg.TrainFrac)
		mc := cfg.matchConfigFor(s)
		bc := &BuildContext{S: s, Train: train, hidden: cfg.Hidden, pretrainEpochs: cfg.PretrainEpochs}
		regrets := make([]float64, len(specs))
		for mi, spec := range specs {
			method := spec.Build(bc)
			agg := EvaluateMethod(s, method, test, mc, cfg.Rounds, cfg.RoundSize, s.Stream("eval-rounds"))
			regrets[mi] = agg.Regret
		}
		return regrets
	})
	out := make([][]float64, len(specs))
	for mi := range specs {
		for _, rr := range perRep {
			out[mi] = append(out[mi], rr[mi])
		}
	}
	return out
}
