package experiments

import (
	"fmt"
	"time"

	"mfcp/internal/matching"
	"mfcp/internal/rng"
	"mfcp/internal/stats"
	"mfcp/internal/workload"
)

// SolverStudy (extension X10) benchmarks the matching solvers themselves on
// ground-truth instances: the mirror-descent pipeline (production default),
// the paper's literal Algorithm 1 (PGD + column softmax), Frank–Wolfe,
// simulated annealing, and the exact branch-and-bound optimum as the
// reference. Reported per solver: mean cost ratio to exact, feasibility
// rate, and wall-clock per instance.
func SolverStudy(cfg Config) *Table {
	cfg.FillDefaults()
	type solver struct {
		name string
		run  func(p *matching.Problem, r *rng.Source) []int
	}
	solvers := []solver{
		{"mirror descent (default)", func(p *matching.Problem, _ *rng.Source) []int {
			_, a := matching.Solve(p, matching.SolveOptions{Iters: 300})
			return a
		}},
		{"Algorithm 1 (PGD+softmax)", func(p *matching.Problem, _ *rng.Source) []int {
			X := matching.SolveRelaxed(p, matching.SolveOptions{Method: matching.MethodPGD, Iters: 300})
			return matching.Repair(p, matching.Round(X))
		}},
		{"Frank-Wolfe", func(p *matching.Problem, _ *rng.Source) []int {
			X := matching.SolveFrankWolfe(p, matching.SolveOptions{Iters: 300})
			return matching.Repair(p, matching.Round(X))
		}},
		{"simulated annealing", func(p *matching.Problem, r *rng.Source) []int {
			return matching.SolveAnneal(p, matching.AnnealOptions{}, r)
		}},
	}
	tbl := &Table{
		Title:   "X10 — matching solver comparison (setting " + string(cfg.Setting) + ", vs exact B&B)",
		Headers: []string{"Solver", "cost / exact", "feasible frac", "µs / instance"},
	}
	if cfg.RoundSize < 10 {
		// N=5 instances are too easy (the repair phase alone reaches the
		// optimum); differentiate the solvers on denser rounds.
		cfg.RoundSize = 10
	}
	const instances = 40
	// Pre-build the instance set once so every solver sees identical work.
	type instance struct {
		p *matching.Problem
		r *rng.Source
	}
	var probs []instance
	exactCost := make([]float64, 0, instances)
	feasibleRef := make([]bool, 0, instances)
	for k := 0; k < instances; k++ {
		s := workload.MustNew(workload.Config{
			Setting: cfg.Setting, PoolSize: 40, FeatureDim: 8,
			Seed: cfg.Seed + uint64(k)*7919,
		})
		_, test := s.Split(0.5)
		round := s.SampleRound(test, cfg.RoundSize, s.Stream("solver-round"))
		T, A := s.TrueMatrices(round)
		p := cfg.matchConfigFor(s).Problem(T, A)
		probs = append(probs, instance{p: p, r: s.Stream("solver-sa")})
		_, c, feas := matching.SolveExact(p)
		exactCost = append(exactCost, c)
		feasibleRef = append(feasibleRef, feas)
	}
	for _, sv := range solvers {
		var ratio, feas stats.Accumulator
		start := time.Now()
		for k, inst := range probs {
			assign := sv.run(inst.p, inst.r)
			if exactCost[k] > 0 {
				ratio.Add(inst.p.DiscreteCost(assign) / exactCost[k])
			}
			ok := inst.p.DiscreteReliability(assign) >= inst.p.Gamma
			if ok || !feasibleRef[k] {
				feas.Add(1)
			} else {
				feas.Add(0)
			}
		}
		perInstance := time.Since(start).Microseconds() / int64(len(probs))
		tbl.Rows = append(tbl.Rows, []string{
			sv.name,
			fmt.Sprintf("%.3f ± %.3f", ratio.Mean(), ratio.Std()),
			fmtF(feas.Mean()),
			fmt.Sprintf("%d", perInstance),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"cost ratio 1.000 = optimal; feasibility counted as satisfied-or-unachievable; timings include rounding+repair")
	return tbl
}
