package experiments

import (
	"fmt"
	"math"

	"mfcp/internal/cluster"
	"mfcp/internal/diffopt"
	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/rng"
	"mfcp/internal/stats"
	"mfcp/internal/workload"
)

// randomInstance builds one matching instance from a scenario round.
func randomInstance(cfg Config, seed uint64) (*workload.Scenario, *matching.Problem) {
	cfg.FillDefaults()
	s := workload.MustNew(workload.Config{
		Setting: cfg.Setting, PoolSize: cfg.PoolSize, FeatureDim: cfg.FeatureDim, Seed: seed,
	})
	_, test := s.Split(cfg.TrainFrac)
	round := s.SampleRound(test, cfg.RoundSize, s.Stream("ext-round"))
	T, A := s.TrueMatrices(round)
	mc := cfg.matchConfigFor(s)
	return s, mc.Problem(T, A)
}

// SweepBeta checks Theorem 1 empirically: the gap between the smoothed
// objective f̃ and the true max cost f shrinks as β grows, bounded by
// log(M)/β.
func SweepBeta(cfg Config) *Table {
	cfg.FillDefaults()
	betas := []float64{1, 2, 5, 10, 20, 50, 100, 500}
	tbl := &Table{
		Title:   "X1 — Theorem 1: smoothing gap f̃−f vs β",
		Headers: []string{"beta", "mean gap", "bound log(M)/beta", "within bound"},
	}
	var gapAccs []stats.Accumulator
	gapAccs = make([]stats.Accumulator, len(betas))
	m := 0
	for rep := 0; rep < cfg.Replicates; rep++ {
		_, p := randomInstance(cfg, cfg.Seed+uint64(rep)*7919)
		m = p.M()
		X := matching.SolveRelaxed(p, matching.SolveOptions{Iters: 200})
		f := p.TimeCost(X)
		for bi, beta := range betas {
			q := *p
			q.Beta = beta
			gapAccs[bi].Add(q.SmoothTimeCost(X) - f)
		}
	}
	for bi, beta := range betas {
		bound := math.Log(float64(m)) / beta
		gap := gapAccs[bi].Mean()
		tbl.Rows = append(tbl.Rows, []string{
			fmtF(beta), fmt.Sprintf("%.5f", gap), fmt.Sprintf("%.5f", bound),
			fmt.Sprintf("%v", gap <= bound+1e-9),
		})
	}
	tbl.Notes = append(tbl.Notes, "gap must shrink monotonically and stay below log(M)/β (Theorem 1)")
	return tbl
}

// SweepPerturbation checks Theorem 3 empirically: the zeroth-order gradient
// error versus the analytic gradient as Δ and S vary, including the
// bias/variance sweet spot near Δ*.
func SweepPerturbation(cfg Config) *Table {
	cfg.FillDefaults()
	deltas := []float64{0.005, 0.02, 0.05, 0.1, 0.3, 1.0}
	samples := []int{4, 16, 64}
	tbl := &Table{
		Title: "X2 — Theorem 3: zeroth-order gradient error vs Δ and S",
		Headers: append([]string{"Δ \\ S"}, func() []string {
			h := make([]string, len(samples))
			for i, s := range samples {
				h[i] = fmt.Sprintf("S=%d", s)
			}
			return h
		}()...),
	}
	_, p := randomInstance(cfg, cfg.Seed)
	p.Entropy = 0.05
	solve := func(q *matching.Problem, init *mat.Dense) *mat.Dense {
		return matching.SolveRelaxed(q, matching.SolveOptions{Iters: 1500, Tol: 1e-11, Init: init})
	}
	X := solve(p, nil)
	r := rng.New(cfg.Seed + 13)
	w := mat.NewDense(p.M(), p.N())
	for k := range w.Data {
		w.Data[k] = r.Norm()
	}
	dT, _, err := diffopt.AdjointGrads(p, X, w)
	if err != nil {
		tbl.Notes = append(tbl.Notes, "analytic gradient unavailable: "+err.Error())
		return tbl
	}
	ref := mat.Vec(dT.Data)
	refNorm := ref.Norm2()
	for _, d := range deltas {
		row := []string{fmt.Sprintf("%.3f", d)}
		for _, S := range samples {
			// average relative error over a few estimator draws
			var acc stats.Accumulator
			for rep := 0; rep < 3; rep++ {
				zT, _ := diffopt.FullVJP(p, X, w, diffopt.ZeroOrderConfig{Delta: d, Samples: S, Solve: solve},
					r.SplitIndexed("zo", rep*1000+S))
				diff := mat.Vec(zT.Data).Clone().AddScaled(-1, ref)
				acc.Add(diff.Norm2() / (refNorm + 1e-12))
			}
			row = append(row, fmt.Sprintf("%.3f", acc.Mean()))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	tbl.Notes = append(tbl.Notes,
		"relative L2 error vs analytic gradient; error is U-shaped in Δ (variance at small Δ, bias at large Δ) and shrinks with S (Theorem 3)")
	return tbl
}

// Convergence checks Theorems 4–5 empirically: the inner solver's objective
// trajectory in the convex (sequential) and non-convex (parallel) settings.
func Convergence(cfg Config) *Table {
	cfg.FillDefaults()
	iterPoints := []int{1, 5, 10, 25, 50, 100, 200, 400}
	tbl := &Table{
		Title: "X3 — Theorems 4/5: solver convergence F(X_k) − F(X_400)",
		Headers: append([]string{"setting"}, func() []string {
			h := make([]string, len(iterPoints))
			for i, k := range iterPoints {
				h[i] = fmt.Sprintf("k=%d", k)
			}
			return h
		}()...),
	}
	for _, parallelSetting := range []bool{false, true} {
		c := cfg
		c.Parallel = parallelSetting
		s, p := randomInstance(c, c.Seed+99)
		if parallelSetting {
			p.Speedups = c.speedupsFor(s)
		}
		final := matching.SolveRelaxed(p, matching.SolveOptions{Iters: 400, Tol: 0})
		fStar := p.F(final)
		row := []string{map[bool]string{false: "convex (seq)", true: "non-convex (par)"}[parallelSetting]}
		prev := math.Inf(1)
		monotone := true
		for _, k := range iterPoints {
			Xk := matching.SolveRelaxed(p, matching.SolveOptions{Iters: k, Tol: 0})
			gap := p.F(Xk) - fStar
			if gap > prev+1e-9 {
				monotone = false
			}
			prev = gap
			row = append(row, fmt.Sprintf("%.2e", gap))
		}
		if !monotone {
			row[0] += " (non-monotone!)"
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	tbl.Notes = append(tbl.Notes,
		"objective gap to the 400-iteration solution must decay toward 0 in both regimes (Theorems 4, 5)")
	return tbl
}

// SweepBarrier studies the barrier weight λ (§3.2): the trade-off between
// reliability-constraint satisfaction and makespan as λ varies. The sweep
// runs on setting C with a tightened γ — the regime where the constraint
// actually binds; in settings whose fleets are uniformly reliable every λ
// trivially satisfies γ and the sweep is flat.
func SweepBarrier(cfg Config) *Table {
	cfg.FillDefaults()
	cfg.Setting = cluster.SettingC
	if cfg.Match.Gamma < 0.9 {
		cfg.Match.Gamma = 0.9
	}
	lambdas := []float64{0.001, 0.01, 0.05, 0.2, 1.0}
	tbl := &Table{
		Title:   "X4 — barrier weight λ: feasibility vs makespan",
		Headers: []string{"lambda", "mean reliability", "feasible frac", "mean makespan"},
	}
	for _, lam := range lambdas {
		var rel, feas, mk stats.Accumulator
		for rep := 0; rep < cfg.Replicates; rep++ {
			for inst := 0; inst < 5; inst++ {
				_, p := randomInstance(cfg, cfg.Seed+uint64(rep*17+inst)*104729)
				p.Gamma = cfg.Match.Gamma
				p.Lambda = lam
				// Round WITHOUT the greedy repair: repair re-imposes γ as a
				// hard constraint, masking exactly the effect under study.
				X := matching.SolveRelaxed(p, matching.SolveOptions{Iters: 300})
				assign := matching.Round(X)
				r := p.DiscreteReliability(assign)
				rel.Add(r)
				if r >= p.Gamma {
					feas.Add(1)
				} else {
					feas.Add(0)
				}
				mk.Add(p.DiscreteCost(assign))
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.3f", lam), fmtF(rel.Mean()), fmtF(feas.Mean()), fmtF(mk.Mean()),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"larger λ buys reliability/feasibility at the cost of makespan; λ→0 approaches the unconstrained matcher")
	return tbl
}
