package experiments

import (
	"mfcp/internal/core"
	"mfcp/internal/matching"
	"mfcp/internal/metrics"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
	"mfcp/internal/stats"
	"mfcp/internal/workload"
)

// ablationRow pairs a label with the MatchConfig mutation and trainer kind
// defining that ablation.
type ablationRow struct {
	label string
	kind  core.Kind
	// mutate reshapes the matching config the METHOD trains and deploys
	// with; evaluation always scores against the unmutated true problem.
	mutate func(mc *core.MatchConfig)
}

// Ablation reproduces Table 1: the three design ablations of MFCP against
// the full method.
//
//	(1) Maximum Loss       — linear-sum time cost instead of the makespan;
//	(2) Interior-Point     — hard hinge penalty instead of the log barrier;
//	(3) Zeroth-Order       — forward-gradient estimation in the convex case
//	                         (i.e. MFCP-FG where AD is available);
//	MFCP                   — the full method (analytical differentiation).
func Ablation(cfg Config) *Table {
	cfg.FillDefaults()
	// Rows (1) and (2) train with the zeroth-order route: analytical
	// differentiation is only defined for the smoothed-makespan/log-barrier
	// objective, and row (3) separately establishes FG ≈ AD.
	rows := []ablationRow{
		{label: "(1) Maximum Loss", kind: core.FG, mutate: func(mc *core.MatchConfig) {
			mc.Objective = matching.LinearSum
		}},
		{label: "(2) Interior-Point", kind: core.FG, mutate: func(mc *core.MatchConfig) {
			mc.Barrier = matching.HardPenalty
		}},
		{label: "(3) Zero-Order Grad", kind: core.FG, mutate: func(mc *core.MatchConfig) {}},
		{label: "MFCP", kind: core.AD, mutate: func(mc *core.MatchConfig) {}},
	}
	type cell struct{ reg, rel, util []float64 }
	cells := make([]cell, len(rows))
	reps := parallel.Map(cfg.Replicates, func(rep int) []metrics.Aggregate {
		s := workload.MustNew(workload.Config{
			Setting:    cfg.Setting,
			PoolSize:   cfg.PoolSize,
			FeatureDim: cfg.FeatureDim,
			Seed:       cfg.Seed + uint64(rep)*1_000_003,
		})
		train, test := s.Split(cfg.TrainFrac)
		trueMC := cfg.matchConfigFor(s)
		bc := &BuildContext{S: s, Train: train, hidden: cfg.Hidden, pretrainEpochs: cfg.PretrainEpochs}
		aggs := make([]metrics.Aggregate, len(rows))
		for ri, row := range rows {
			methodMC := trueMC
			row.mutate(&methodMC)
			tr := core.Train(s, train, core.Config{
				Kind: row.kind, Hidden: cfg.Hidden,
				Epochs:    cfg.RegretEpochs,
				RoundSize: cfg.RoundSize, Match: methodMC,
				Warm: bc.Pretrained(),
			})
			aggs[ri] = evaluateWithMatcher(s, tr, test, methodMC, trueMC, cfg.Rounds, cfg.RoundSize,
				s.Stream("eval-ablation-"+row.label))
		}
		return aggs
	})
	for ri := range rows {
		for _, rep := range reps {
			cells[ri].reg = append(cells[ri].reg, rep[ri].Regret)
			cells[ri].rel = append(cells[ri].rel, rep[ri].Reliability)
			cells[ri].util = append(cells[ri].util, rep[ri].Utilization)
		}
	}
	tbl := &Table{
		Title:   "Table 1 — Ablation study of MFCP (setting " + string(cfg.Setting) + ")",
		Headers: []string{"Metric", "Regret", "Reliability", "Utilization"},
	}
	for ri, row := range rows {
		tbl.Rows = append(tbl.Rows, []string{
			row.label,
			stats.Summarize(cells[ri].reg).String(),
			stats.Summarize(cells[ri].rel).String(),
			stats.Summarize(cells[ri].util).String(),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"expected shape (paper): (1) worst regret/utilization; (2) lowest reliability; (3) ≈ MFCP")
	return tbl
}

// evaluateWithMatcher scores a method whose deployed matcher (methodMC) may
// differ from the ground-truth objective (trueMC) — needed by ablations
// that cripple the matching itself.
func evaluateWithMatcher(s *workload.Scenario, m Method, test []int, methodMC, trueMC core.MatchConfig, rounds, roundSize int, r *rng.Source) metrics.Aggregate {
	evals := make([]metrics.Eval, rounds)
	for k := 0; k < rounds; k++ {
		round := s.SampleRound(test, roundSize, r)
		That, Ahat := m.Predict(round)
		assign := methodMC.Solve(That, Ahat)
		trueT, trueA := s.TrueMatrices(round)
		trueProb := trueMC.Problem(trueT, trueA)
		oracle := trueMC.Solve(trueT, trueA)
		evals[k] = metrics.Evaluate(trueProb, assign, oracle)
	}
	return metrics.Mean(evals)
}
