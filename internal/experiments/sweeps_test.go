package experiments

import (
	"fmt"
	"strings"
	"testing"

	"mfcp/internal/workload"
)

func TestGradientRoutesTable(t *testing.T) {
	cfg := tinyConfig()
	tbl := GradientRoutes(cfg)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows %d (warm start + 3 routes)", len(tbl.Rows))
	}
	names := []string{}
	for _, r := range tbl.Rows {
		names = append(names, r[0])
	}
	for _, want := range []string{"TSM (warm start)", "MFCP-AD", "MFCP-FG", "MFCP-UR"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing route %q in %v", want, names)
		}
	}
}

func TestSampleEfficiencyTable(t *testing.T) {
	cfg := tinyConfig()
	tbl := SampleEfficiency(cfg, []int{32, 48})
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	if len(tbl.Rows[0]) != 3 {
		t.Fatalf("cols %d", len(tbl.Rows[0]))
	}
	// The Δ row must carry a significance annotation.
	if !strings.Contains(tbl.Rows[2][1], "(") {
		t.Fatalf("delta row lacks significance: %v", tbl.Rows[2])
	}
}

func TestNoiseSensitivityTable(t *testing.T) {
	cfg := tinyConfig()
	tbl := NoiseSensitivity(cfg, []float64{1, 3})
	if len(tbl.Rows) != 2 || len(tbl.Rows[0]) != 3 {
		t.Fatalf("shape: %v", tbl.Rows)
	}
}

func TestGammaSweepTable(t *testing.T) {
	cfg := tinyConfig()
	tbl := GammaSweep(cfg, []float64{0.7, 0.9})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "0.70" || tbl.Rows[1][0] != "0.90" {
		t.Fatalf("gamma labels: %v", tbl.Rows)
	}
}

func TestNoiseScaleChangesMeasurements(t *testing.T) {
	// The NoiseScale knob must widen the spread of measured vs true times
	// while leaving the ground truth untouched.
	base := workload.MustNew(workload.Config{PoolSize: 32, FeatureDim: 8, Seed: 9})
	noisy := workload.MustNew(workload.Config{PoolSize: 32, FeatureDim: 8, Seed: 9, NoiseScale: 5})
	spread := func(s *workload.Scenario) float64 {
		total := 0.0
		for k := range s.MeasT.Data {
			d := s.MeasT.Data[k]/s.TrueT.Data[k] - 1
			total += d * d
		}
		return total
	}
	if spread(noisy) <= 1.5*spread(base) {
		t.Fatalf("noise scale barely widened measurements: %v vs %v", spread(noisy), spread(base))
	}
}

func TestSolverStudyTable(t *testing.T) {
	cfg := tinyConfig()
	tbl := SolverStudy(cfg)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// Every solver's mean cost ratio must be parseable and ≥ ~1 (the exact
	// reference is optimal).
	for _, row := range tbl.Rows {
		var mean, std float64
		if _, err := fmt.Sscanf(row[1], "%f ± %f", &mean, &std); err != nil {
			t.Fatalf("unparseable ratio cell %q", row[1])
		}
		if mean < 0.999 {
			t.Fatalf("solver %s beat the exact optimum: %v", row[0], mean)
		}
	}
}

func TestAdaptationStudyTable(t *testing.T) {
	if testing.Short() {
		t.Skip("drift study is slow")
	}
	cfg := tinyConfig()
	tbl := AdaptationStudy(cfg)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	if len(tbl.Rows[0]) != 6 { // method + 4 windows + overall
		t.Fatalf("cols %d: %v", len(tbl.Rows[0]), tbl.Rows[0])
	}
}

func TestEmbeddingStudyTable(t *testing.T) {
	cfg := tinyConfig()
	tbl := EmbeddingStudy(cfg)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
}
