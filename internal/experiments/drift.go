package experiments

import (
	"fmt"

	"mfcp/internal/cluster"
	"mfcp/internal/platform"
	"mfcp/internal/stats"
	"mfcp/internal/workload"
)

// AdaptationStudy (extension X9) measures the value of in-the-loop
// learning when cluster performance drifts: clusters age and oscillate
// over rounds, so predictors trained on the initial profiling go stale.
// It compares a static TSM, an online-refitting TSM, and an online
// MFCP-FG on identical drifting platforms, reporting regret per window.
func AdaptationStudy(cfg Config) *Table {
	cfg.FillDefaults()
	rounds := 60
	window := 15
	methods := []struct {
		label  string
		method platform.MethodName
		online bool
	}{
		{"TSM (static)", platform.MethodTSM, false},
		{"TSM + online refit", platform.MethodTSM, true},
		{"MFCP-FG + online refit", platform.MethodMFCPFG, true},
	}
	headers := []string{"Method"}
	for w := 0; w < rounds/window; w++ {
		headers = append(headers, fmt.Sprintf("rounds %d-%d", w*window+1, (w+1)*window))
	}
	headers = append(headers, "overall")
	tbl := &Table{
		Title:   "X9 — adaptation under cluster performance drift (setting " + string(cfg.Setting) + ")",
		Headers: headers,
	}
	for _, m := range methods {
		// windows[w] accumulates regret over replicates.
		windows := make([]stats.Accumulator, rounds/window)
		var overall stats.Accumulator
		for rep := 0; rep < cfg.Replicates; rep++ {
			base := platform.Config{
				Scenario: workload.Config{
					Setting:    cfg.Setting,
					PoolSize:   cfg.PoolSize,
					FeatureDim: cfg.FeatureDim,
					Seed:       cfg.Seed + uint64(rep)*1_000_003,
				},
				Method:         m.method,
				Rounds:         rounds,
				RoundSize:      cfg.RoundSize,
				TrainFrac:      cfg.TrainFrac,
				PretrainEpochs: cfg.PretrainEpochs,
				RegretEpochs:   cfg.RegretEpochs,
				Hidden:         cfg.Hidden,
				Match:          cfg.Match,
			}
			base.Drift = cluster.DefaultDrifts(3)
			var regrets []float64
			if m.online {
				rep, err := platform.RunOnline(platform.OnlineConfig{
					Config: base, RefitEvery: 5, RefitEpochs: 20,
				})
				if err != nil {
					tbl.Notes = append(tbl.Notes, "error: "+err.Error())
					continue
				}
				for _, r := range rep.Rounds {
					regrets = append(regrets, r.Eval.Regret)
				}
			} else {
				rep, err := platform.Run(base)
				if err != nil {
					tbl.Notes = append(tbl.Notes, "error: "+err.Error())
					continue
				}
				for _, r := range rep.Rounds {
					regrets = append(regrets, r.Eval.Regret)
				}
			}
			for k, v := range regrets {
				windows[k/window].Add(v)
				overall.Add(v)
			}
		}
		row := []string{m.label}
		for w := range windows {
			row = append(row, fmtF(windows[w].Mean()))
		}
		row = append(row, fmtF(overall.Mean()))
		tbl.Rows = append(tbl.Rows, row)
	}
	tbl.Notes = append(tbl.Notes,
		"clusters age linearly / oscillate per cluster.DefaultDrifts; static predictors go stale while refitting tracks the drift")
	return tbl
}
