package experiments

// DefaultScalingSizes are Fig. 5's task counts per round.
var DefaultScalingSizes = []int{5, 10, 15, 20, 25}

// Scaling reproduces Fig. 5: Regret and Cluster Utilization versus the
// number of tasks per round, under setting A. It returns two tables (one
// per metric) whose columns are the task counts.
func Scaling(cfg Config, sizes []int) (regret, utilization *Table) {
	cfg.FillDefaults()
	sizes, results := ScalingResults(cfg, sizes)
	regret, utilization = tablesFromScaling(string(cfg.Setting), sizes, results)
	regret.Notes = append(regret.Notes,
		"expected shape (paper): roughly linear growth in N; MFCP variants lowest at every N")
	utilization.Notes = append(utilization.Notes,
		"expected shape (paper): utilization rises with N for all methods; MFCP highest, TAM lowest")
	return regret, utilization
}
