package experiments

import (
	"strings"
	"testing"

	"mfcp/internal/baselines"
	"mfcp/internal/workload"
)

// tinyConfig keeps experiment tests fast: small pools and budgets.
func tinyConfig() Config {
	return Config{
		Replicates: 2, Rounds: 4, RoundSize: 4,
		PoolSize: 48, FeatureDim: 12,
		PretrainEpochs: 40, RegretEpochs: 6,
		Hidden: []int{8},
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"xxxx", "y"}},
		Notes:   []string{"hello"},
	}
	s := tbl.String()
	if !strings.Contains(s, "== demo ==") || !strings.Contains(s, "xxxx") || !strings.Contains(s, "note: hello") {
		t.Fatalf("render:\n%s", s)
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") || !strings.Contains(csv, "xxxx,y") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestCSVEscaping(t *testing.T) {
	tbl := &Table{Headers: []string{"h"}, Rows: [][]string{{`va"l,ue`}}}
	if !strings.Contains(tbl.CSV(), `"va""l,ue"`) {
		t.Fatalf("csv escaping: %s", tbl.CSV())
	}
}

func TestRunMethodsPairedAndDeterministic(t *testing.T) {
	cfg := tinyConfig()
	specs := []MethodSpec{
		{Name: "TAM", Build: func(bc *BuildContext) Method { return baselines.NewTAM(bc.S, bc.Train) }},
		{Name: "Oracle", Build: func(bc *BuildContext) Method { return baselines.NewOracle(bc.S) }},
	}
	r1 := RunMethods(cfg, specs)
	r2 := RunMethods(cfg, specs)
	if len(r1) != 2 {
		t.Fatalf("results %d", len(r1))
	}
	for i := range r1 {
		if r1[i].Regret.Mean != r2[i].Regret.Mean {
			t.Fatal("RunMethods not deterministic")
		}
	}
	// The oracle predicts the truth: its matchings equal the reference
	// matchings, so regret must be ~0; TAM must be worse.
	oracle := r1[1]
	if oracle.Regret.Mean > 1e-9 {
		t.Fatalf("oracle regret %v", oracle.Regret.Mean)
	}
	if r1[0].Regret.Mean <= oracle.Regret.Mean {
		t.Fatalf("TAM (%v) not worse than oracle (%v)", r1[0].Regret.Mean, oracle.Regret.Mean)
	}
}

func TestBuildContextSharesPretrain(t *testing.T) {
	s := workload.MustNew(workload.Config{PoolSize: 40, FeatureDim: 12, Seed: 3})
	train, _ := s.Split(0.75)
	bc := &BuildContext{S: s, Train: train, hidden: []int{8}, pretrainEpochs: 20}
	a := bc.Pretrained()
	b := bc.Pretrained()
	if a != b {
		t.Fatal("Pretrained not cached")
	}
}

func TestStandardSpecsComposition(t *testing.T) {
	cfg := tinyConfig()
	withAD := StandardSpecs(cfg, true)
	names := []string{}
	for _, s := range withAD {
		names = append(names, s.Name)
	}
	want := []string{"TAM", "TSM", "UCB", "MFCP-AD", "MFCP-FG"}
	if len(names) != len(want) {
		t.Fatalf("specs %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("specs %v", names)
		}
	}
	withoutAD := StandardSpecs(cfg, false)
	if len(withoutAD) != 4 {
		t.Fatalf("no-AD specs %d", len(withoutAD))
	}
	for _, s := range withoutAD {
		if s.Name == "MFCP-AD" {
			t.Fatal("MFCP-AD present in non-convex spec set")
		}
	}
}

func TestAblationProducesFourRows(t *testing.T) {
	cfg := tinyConfig()
	tbl := Ablation(cfg)
	if len(tbl.Rows) != 4 {
		t.Fatalf("ablation rows %d", len(tbl.Rows))
	}
	if tbl.Rows[3][0] != "MFCP" {
		t.Fatalf("last row %v", tbl.Rows[3])
	}
}

func TestScalingTables(t *testing.T) {
	cfg := tinyConfig()
	reg, util := Scaling(cfg, []int{3, 5})
	if len(reg.Headers) != 3 || len(util.Headers) != 3 {
		t.Fatalf("headers: %v", reg.Headers)
	}
	if len(reg.Rows) != 5 {
		t.Fatalf("rows %d (want 5 methods)", len(reg.Rows))
	}
}

func TestParallelExecutionTable(t *testing.T) {
	cfg := tinyConfig()
	tbl := ParallelExecution(cfg)
	if len(tbl.Rows) != 4 {
		t.Fatalf("parallel rows %d (want 4 methods, no AD)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[0] == "MFCP-AD" {
			t.Fatal("MFCP-AD in parallel table")
		}
	}
}

func TestSweepBetaWithinBound(t *testing.T) {
	cfg := tinyConfig()
	tbl := SweepBeta(cfg)
	if len(tbl.Rows) == 0 {
		t.Fatal("empty beta sweep")
	}
	for _, row := range tbl.Rows {
		if row[3] != "true" {
			t.Fatalf("beta=%s gap outside Theorem 1 bound: %v", row[0], row)
		}
	}
}

func TestConvergenceDecays(t *testing.T) {
	cfg := tinyConfig()
	tbl := Convergence(cfg)
	if len(tbl.Rows) != 2 {
		t.Fatalf("convergence rows %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if strings.Contains(row[0], "non-monotone") {
			t.Fatalf("solver trajectory non-monotone: %v", row)
		}
	}
}

func TestSweepBarrierMonotoneReliability(t *testing.T) {
	cfg := tinyConfig()
	tbl := SweepBarrier(cfg)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// Reliability at the largest λ must be at least that at the smallest.
	first := tbl.Rows[0][1]
	last := tbl.Rows[len(tbl.Rows)-1][1]
	if last < first {
		t.Fatalf("reliability not improved by larger λ: %s -> %s", first, last)
	}
}

func TestSweepPerturbationRuns(t *testing.T) {
	cfg := tinyConfig()
	tbl := SweepPerturbation(cfg)
	if len(tbl.Rows) == 0 {
		t.Fatalf("perturbation sweep empty: %v", tbl.Notes)
	}
}
