package experiments

import (
	"fmt"

	"mfcp/internal/plot"
)

// RegretChart renders a method comparison's regret column as a horizontal
// bar chart (a Fig. 4 panel).
func RegretChart(title string, results []MethodResult) string {
	labels := make([]string, len(results))
	values := make([]float64, len(results))
	for i, r := range results {
		labels[i] = r.Name
		values[i] = r.Regret.Mean
	}
	return plot.HBar(title+" — regret (lower is better)", labels, values, 40)
}

// UtilizationChart renders the utilization column as a bar chart.
func UtilizationChart(title string, results []MethodResult) string {
	labels := make([]string, len(results))
	values := make([]float64, len(results))
	for i, r := range results {
		labels[i] = r.Name
		values[i] = r.Utilization.Mean
	}
	return plot.HBar(title+" — utilization (higher is better)", labels, values, 40)
}

// ScalingResults computes the raw per-size method results behind Fig. 5.
func ScalingResults(cfg Config, sizes []int) ([]int, [][]MethodResult) {
	cfg.FillDefaults()
	if len(sizes) == 0 {
		sizes = DefaultScalingSizes
	}
	results := make([][]MethodResult, len(sizes))
	for ni, n := range sizes {
		c := cfg
		c.RoundSize = n
		results[ni] = RunMethods(c, StandardSpecs(c, true))
	}
	return sizes, results
}

// ScalingCharts renders Fig. 5 as two ASCII line charts (regret and
// utilization versus round size) from precomputed results.
func ScalingCharts(sizes []int, results [][]MethodResult) (regret, utilization string) {
	if len(results) == 0 {
		return "(no data)\n", "(no data)\n"
	}
	x := make([]float64, len(sizes))
	for i, n := range sizes {
		x[i] = float64(n)
	}
	numMethods := len(results[0])
	regSeries := make([]plot.Series, numMethods)
	utilSeries := make([]plot.Series, numMethods)
	for mi := 0; mi < numMethods; mi++ {
		regSeries[mi] = plot.Series{Name: results[0][mi].Name}
		utilSeries[mi] = plot.Series{Name: results[0][mi].Name}
		for ni := range sizes {
			regSeries[mi].Y = append(regSeries[mi].Y, results[ni][mi].Regret.Mean)
			utilSeries[mi].Y = append(utilSeries[mi].Y, results[ni][mi].Utilization.Mean)
		}
	}
	regret = plot.Line("Fig. 5a — regret vs tasks per round", x, regSeries, 50, 12)
	utilization = plot.Line("Fig. 5b — utilization vs tasks per round", x, utilSeries, 50, 12)
	return regret, utilization
}

// tablesFromScaling converts raw scaling results into the Fig. 5 tables.
func tablesFromScaling(setting string, sizes []int, results [][]MethodResult) (regret, utilization *Table) {
	headers := []string{"Method"}
	for _, n := range sizes {
		headers = append(headers, fmt.Sprintf("N=%d", n))
	}
	regret = &Table{Title: "Fig. 5a — Regret vs task count (setting " + setting + ")", Headers: headers}
	utilization = &Table{Title: "Fig. 5b — Utilization vs task count (setting " + setting + ")", Headers: headers}
	numMethods := len(results[0])
	for mi := 0; mi < numMethods; mi++ {
		regRow := []string{results[0][mi].Name}
		utilRow := []string{results[0][mi].Name}
		for ni := range sizes {
			r := results[ni][mi]
			regRow = append(regRow, r.Regret.String())
			utilRow = append(utilRow, r.Utilization.String())
		}
		regret.Rows = append(regret.Rows, regRow)
		utilization.Rows = append(utilization.Rows, utilRow)
	}
	return regret, utilization
}
