// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) plus the extension studies listed in DESIGN.md. Each
// experiment builds scenarios, trains all methods on identical data,
// evaluates them through one shared matching pipeline, and renders a
// paper-style table of mean ± std cells over replicates.
package experiments

import (
	"fmt"

	"mfcp/internal/baselines"
	"mfcp/internal/cluster"
	"mfcp/internal/core"
	"mfcp/internal/mat"
	"mfcp/internal/metrics"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
	"mfcp/internal/stats"
	"mfcp/internal/workload"
)

// Method is anything that predicts performance matrices for a round of
// tasks. All baselines and MFCP trainers satisfy it.
type Method interface {
	Name() string
	Predict(round []int) (T, A *mat.Dense)
}

// BuildContext carries the per-replicate state a method builder needs: the
// scenario, the training indices, and a lazily shared MSE-pretrained
// predictor set. Sharing the pretrain between TSM and the MFCP variants
// makes the comparison paired: every regret difference is attributable to
// the end-to-end phase, not to initialization luck.
type BuildContext struct {
	S     *workload.Scenario
	Train []int

	hidden         []int
	pretrainEpochs int
	shared         *core.PredictorSet
}

// Pretrained returns the replicate's shared MSE-trained predictor set,
// training it on first use.
func (bc *BuildContext) Pretrained() *core.PredictorSet {
	if bc.shared == nil {
		stream := bc.S.Stream("shared-pretrain")
		bc.shared = core.NewPredictorSet(bc.S.M(), bc.S.Features.Cols, bc.hidden, stream.Split("init"))
		core.PretrainMSE(bc.shared, bc.S, bc.Train, bc.pretrainEpochs, stream.Split("train"))
	}
	return bc.shared
}

// MethodSpec names a method and knows how to build it on a replicate.
type MethodSpec struct {
	Name  string
	Build func(bc *BuildContext) Method
}

// Config holds the knobs shared by every experiment.
type Config struct {
	// Setting selects the fleet (default A).
	Setting cluster.Setting
	// Replicates is the number of independent repetitions behind each
	// mean ± std cell (default 5).
	Replicates int
	// Rounds is the number of evaluation rounds per replicate (default 20).
	Rounds int
	// RoundSize is N, the tasks per round (default 5).
	RoundSize int
	// PoolSize and FeatureDim shape the scenario (defaults 120, 16).
	PoolSize   int
	FeatureDim int
	// TrainFrac splits the pool (default 0.75).
	TrainFrac float64
	// Seed drives everything (default 1).
	Seed uint64
	// Match configures the shared downstream matching problem.
	Match core.MatchConfig
	// PretrainEpochs and RegretEpochs budget predictor training
	// (defaults 200, 240).
	PretrainEpochs int
	RegretEpochs   int
	// Hidden is the predictor architecture shared by all learned methods.
	Hidden []int
	// Parallel switches the evaluation (and MFCP training) to the
	// resource-sharing scheduler of §3.4, using each fleet profile's ζ.
	Parallel bool
	// NoiseScale multiplies cluster measurement noise (0 = unchanged);
	// used by the noise-sensitivity sweep.
	NoiseScale float64
}

// FillDefaults populates zero fields.
func (c *Config) FillDefaults() {
	if c.Setting == "" {
		c.Setting = cluster.SettingA
	}
	if c.Replicates == 0 {
		c.Replicates = 5
	}
	if c.Rounds == 0 {
		c.Rounds = 20
	}
	if c.RoundSize == 0 {
		c.RoundSize = 5
	}
	if c.PoolSize == 0 {
		c.PoolSize = 120
	}
	if c.FeatureDim == 0 {
		c.FeatureDim = 16
	}
	if c.TrainFrac == 0 {
		c.TrainFrac = 0.75
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PretrainEpochs == 0 {
		c.PretrainEpochs = 200
	}
	if c.RegretEpochs == 0 {
		c.RegretEpochs = 240
	}
	if c.Hidden == nil {
		c.Hidden = []int{16}
	}
	c.Match.FillDefaults()
}

// speedupsFor returns the fleet's ζ curves when the parallel setting is on.
func (c *Config) speedupsFor(s *workload.Scenario) []cluster.SpeedupCurve {
	if !c.Parallel {
		return nil
	}
	out := make([]cluster.SpeedupCurve, len(s.Fleet))
	for i, p := range s.Fleet {
		out[i] = p.Speedup
	}
	return out
}

// matchConfigFor finalizes the match config for a concrete scenario.
func (c *Config) matchConfigFor(s *workload.Scenario) core.MatchConfig {
	mc := c.Match
	mc.Speedups = c.speedupsFor(s)
	return mc
}

// MethodResult aggregates one method's metrics across replicates.
type MethodResult struct {
	Name        string
	Regret      stats.Summary
	Reliability stats.Summary
	Utilization stats.Summary
	Makespan    stats.Summary
}

// EvaluateMethod scores a trained method on `rounds` random test rounds:
// predict → shared matcher → metrics against the ground-truth oracle.
func EvaluateMethod(s *workload.Scenario, m Method, test []int, mc core.MatchConfig, rounds, roundSize int, r *rng.Source) metrics.Aggregate {
	evals := make([]metrics.Eval, rounds)
	for k := 0; k < rounds; k++ {
		round := s.SampleRound(test, roundSize, r)
		That, Ahat := m.Predict(round)
		assign := mc.Solve(That, Ahat)
		trueT, trueA := s.TrueMatrices(round)
		trueProb := mc.Problem(trueT, trueA)
		// Equation (6) compares against the matching the SAME algorithm
		// produces under true values, not an idealized exact oracle.
		oracle := mc.Solve(trueT, trueA)
		evals[k] = metrics.Evaluate(trueProb, assign, oracle)
	}
	return metrics.Mean(evals)
}

// RunMethods trains and evaluates the given methods on `Replicates`
// independent scenarios (in parallel) and aggregates per-method summaries.
// Within a replicate every method shares the scenario, the train/test
// split, and the evaluation rounds, so comparisons are paired.
func RunMethods(cfg Config, specs []MethodSpec) []MethodResult {
	cfg.FillDefaults()
	type repResult struct{ agg []metrics.Aggregate }
	reps := parallel.Map(cfg.Replicates, func(rep int) repResult {
		s := workload.MustNew(workload.Config{
			Setting:    cfg.Setting,
			PoolSize:   cfg.PoolSize,
			FeatureDim: cfg.FeatureDim,
			NoiseScale: cfg.NoiseScale,
			Seed:       cfg.Seed + uint64(rep)*1_000_003,
		})
		train, test := s.Split(cfg.TrainFrac)
		mc := cfg.matchConfigFor(s)
		bc := &BuildContext{S: s, Train: train, hidden: cfg.Hidden, pretrainEpochs: cfg.PretrainEpochs}
		aggs := make([]metrics.Aggregate, len(specs))
		for mi, spec := range specs {
			method := spec.Build(bc)
			// Every method scores on the same evaluation rounds (the
			// stream name is method-independent), pairing the comparison.
			evalStream := s.Stream("eval-rounds")
			aggs[mi] = EvaluateMethod(s, method, test, mc, cfg.Rounds, cfg.RoundSize, evalStream)
		}
		return repResult{agg: aggs}
	})
	out := make([]MethodResult, len(specs))
	for mi, spec := range specs {
		var reg, rel, util, mks []float64
		for _, rr := range reps {
			a := rr.agg[mi]
			reg = append(reg, a.Regret)
			rel = append(rel, a.Reliability)
			util = append(util, a.Utilization)
			mks = append(mks, a.Makespan)
		}
		out[mi] = MethodResult{
			Name:        spec.Name,
			Regret:      stats.Summarize(reg),
			Reliability: stats.Summarize(rel),
			Utilization: stats.Summarize(util),
			Makespan:    stats.Summarize(mks),
		}
	}
	return out
}

// StandardSpecs returns the paper's five methods (§4.1.2) wired to cfg's
// budgets. includeAD drops MFCP-AD for non-convex settings (Table 2).
func StandardSpecs(cfg Config, includeAD bool) []MethodSpec {
	cfg.FillDefaults()
	mfcpConfig := func(bc *BuildContext, kind core.Kind) core.Config {
		return core.Config{
			Kind: kind, Hidden: cfg.Hidden,
			Epochs:    cfg.RegretEpochs,
			RoundSize: cfg.RoundSize,
			Match:     cfg.matchConfigFor(bc.S),
			Warm:      bc.Pretrained(),
		}
	}
	specs := []MethodSpec{
		{Name: "TAM", Build: func(bc *BuildContext) Method {
			return baselines.NewTAM(bc.S, bc.Train)
		}},
		{Name: "TSM", Build: func(bc *BuildContext) Method {
			return baselines.NewTSMFromSet(bc.S, bc.Pretrained())
		}},
		{Name: "UCB", Build: func(bc *BuildContext) Method {
			return baselines.NewUCB(bc.S, bc.Train, baselines.UCBConfig{Hidden: cfg.Hidden, Epochs: cfg.PretrainEpochs})
		}},
	}
	if includeAD {
		specs = append(specs, MethodSpec{Name: "MFCP-AD", Build: func(bc *BuildContext) Method {
			return core.Train(bc.S, bc.Train, mfcpConfig(bc, core.AD))
		}})
	}
	specs = append(specs, MethodSpec{Name: "MFCP-FG", Build: func(bc *BuildContext) Method {
		return core.Train(bc.S, bc.Train, mfcpConfig(bc, core.FG))
	}})
	return specs
}

// resultTable renders MethodResults as a three-metric table.
func resultTable(title string, results []MethodResult) *Table {
	t := &Table{Title: title, Headers: []string{"Method", "Regret", "Reliability", "Utilization"}}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{r.Name, r.Regret.String(), r.Reliability.String(), r.Utilization.String()})
	}
	return t
}

// fmtF renders a float cell.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// MatchConfigForTest exposes the per-scenario match configuration to
// external probes and tests.
func MatchConfigForTest(cfg Config, s *workload.Scenario) core.MatchConfig {
	cfg.FillDefaults()
	return cfg.matchConfigFor(s)
}
