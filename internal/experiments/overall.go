package experiments

import (
	"mfcp/internal/cluster"
)

// Overall reproduces Fig. 4: Regret / Reliability / Utilization for the
// five methods under cluster settings A, B, and C. It returns one table per
// setting.
func Overall(cfg Config) []*Table {
	cfg.FillDefaults()
	var tables []*Table
	for _, setting := range []cluster.Setting{cluster.SettingA, cluster.SettingB, cluster.SettingC} {
		c := cfg
		c.Setting = setting
		results := RunMethods(c, StandardSpecs(c, true))
		tbl := resultTable("Fig. 4 — Overall performance, setting "+string(setting), results)
		tbl.Notes = append(tbl.Notes,
			"expected shape (paper): MFCP-AD ≈ MFCP-FG < UCB < TSM < TAM on regret; MFCP highest utilization")
		tables = append(tables, tbl)
	}
	return tables
}
