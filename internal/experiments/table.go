package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, column headers, and
// string cells. String() aligns columns for terminal output; CSV() emits a
// machine-readable form.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes holds free-form commentary printed under the table (expected
	// shape versus the paper, caveats).
	Notes []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders headers and rows as comma-separated values (cells containing
// commas are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
