package experiments

import (
	"mfcp/internal/baselines"
	"mfcp/internal/core"
	"mfcp/internal/metrics"
	"mfcp/internal/parallel"
	"mfcp/internal/stats"
	"mfcp/internal/workload"
)

// EmbeddingStudy (extension X11) ablates the feature front-end: the
// message-passing (GNN-style) embedder versus a structure-blind embedder
// exposing only whole-graph cost statistics. Both front-ends drive TSM and
// MFCP-FG on otherwise identical scenarios, quantifying how much of the
// downstream matching quality is owed to graph-aware features — the
// paper's (inherited) assumption that a GNN embedding front-end is worth
// having.
func EmbeddingStudy(cfg Config) *Table {
	cfg.FillDefaults()
	type variant struct {
		label string
		stats bool
	}
	variants := []variant{
		{"message-passing embedder", false},
		{"stats-only embedder", true},
	}
	tbl := &Table{
		Title:   "X11 — embedding front-end ablation (setting " + string(cfg.Setting) + ")",
		Headers: []string{"Front-end", "TSM regret", "MFCP-FG regret", "MFCP-FG utilization"},
	}
	for _, v := range variants {
		type repOut struct{ tsm, fg, util float64 }
		reps := parallel.Map(cfg.Replicates, func(rep int) repOut {
			s := workload.MustNew(workload.Config{
				Setting:       cfg.Setting,
				PoolSize:      cfg.PoolSize,
				FeatureDim:    cfg.FeatureDim,
				StatsEmbedder: v.stats,
				Seed:          cfg.Seed + uint64(rep)*1_000_003,
			})
			train, test := s.Split(cfg.TrainFrac)
			mc := cfg.matchConfigFor(s)
			bc := &BuildContext{S: s, Train: train, hidden: cfg.Hidden, pretrainEpochs: cfg.PretrainEpochs}
			tsm := baselines.NewTSMFromSet(s, bc.Pretrained())
			fg := core.Train(s, train, core.Config{
				Kind: core.FG, Hidden: cfg.Hidden,
				Epochs: cfg.RegretEpochs, RoundSize: cfg.RoundSize,
				Match: mc, Warm: bc.Pretrained(),
			})
			var aggT, aggF metrics.Aggregate
			aggT = EvaluateMethod(s, tsm, test, mc, cfg.Rounds, cfg.RoundSize, s.Stream("eval-rounds"))
			aggF = EvaluateMethod(s, fg, test, mc, cfg.Rounds, cfg.RoundSize, s.Stream("eval-rounds"))
			return repOut{tsm: aggT.Regret, fg: aggF.Regret, util: aggF.Utilization}
		})
		var tsmR, fgR, utilR []float64
		for _, r := range reps {
			tsmR = append(tsmR, r.tsm)
			fgR = append(fgR, r.fg)
			utilR = append(utilR, r.util)
		}
		tbl.Rows = append(tbl.Rows, []string{
			v.label,
			stats.Summarize(tsmR).String(),
			stats.Summarize(fgR).String(),
			stats.Summarize(utilR).String(),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"the stats-only front-end discards all graph structure; the regret difference between rows is what graph-aware features buy downstream")
	return tbl
}
