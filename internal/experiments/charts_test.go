package experiments

import (
	"strings"
	"testing"

	"mfcp/internal/stats"
)

func fakeResults() []MethodResult {
	return []MethodResult{
		{Name: "TAM", Regret: stats.Summarize([]float64{0.4, 0.5}), Utilization: stats.Summarize([]float64{0.5, 0.5})},
		{Name: "MFCP", Regret: stats.Summarize([]float64{0.1, 0.1}), Utilization: stats.Summarize([]float64{0.6, 0.6})},
	}
}

func TestRegretChartRenders(t *testing.T) {
	out := RegretChart("demo", fakeResults())
	if !strings.Contains(out, "TAM") || !strings.Contains(out, "MFCP") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "lower is better") {
		t.Fatal("orientation note missing")
	}
}

func TestUtilizationChartRenders(t *testing.T) {
	out := UtilizationChart("demo", fakeResults())
	if !strings.Contains(out, "higher is better") {
		t.Fatal("orientation note missing")
	}
}

func TestScalingChartsFromResults(t *testing.T) {
	sizes := []int{5, 10}
	results := [][]MethodResult{fakeResults(), fakeResults()}
	reg, util := ScalingCharts(sizes, results)
	for _, chart := range []string{reg, util} {
		if !strings.Contains(chart, "TAM") || !strings.Contains(chart, "MFCP") {
			t.Fatalf("legend missing:\n%s", chart)
		}
	}
	// Degenerate input must not panic.
	r, u := ScalingCharts(nil, nil)
	if !strings.Contains(r, "no data") || !strings.Contains(u, "no data") {
		t.Fatal("empty charts")
	}
}

func TestTablesFromScalingShape(t *testing.T) {
	sizes := []int{5, 10}
	results := [][]MethodResult{fakeResults(), fakeResults()}
	reg, util := tablesFromScaling("A", sizes, results)
	if len(reg.Rows) != 2 || len(util.Rows) != 2 {
		t.Fatalf("rows: %d / %d", len(reg.Rows), len(util.Rows))
	}
	if len(reg.Headers) != 3 {
		t.Fatalf("headers: %v", reg.Headers)
	}
}
