package experiments

// ParallelExecution reproduces Table 2: the resource-sharing setting of
// §3.4, where each cluster's ζ curve (exponential decay 1 → ~0.6)
// accelerates co-located tasks and the matching objective becomes
// non-convex. MFCP-AD is excluded (its KKT route requires convexity);
// TAM, TSM, UCB, and MFCP-FG compete.
func ParallelExecution(cfg Config) *Table {
	cfg.FillDefaults()
	cfg.Parallel = true
	if cfg.RoundSize < 10 {
		// The paper's parallel experiment uses a heavier round so
		// co-location effects actually bite.
		cfg.RoundSize = 10
	}
	results := RunMethods(cfg, StandardSpecs(cfg, false))
	tbl := resultTable("Table 2 — Parallel task execution (setting "+string(cfg.Setting)+")", results)
	tbl.Notes = append(tbl.Notes,
		"expected shape (paper): MFCP-FG lowest regret (−25.7% vs TSM, −18.5% vs UCB) and highest utilization")
	return tbl
}
