package platform

import (
	"testing"

	"mfcp/internal/workload"
)

func tinyCfg(method MethodName) Config {
	return Config{
		Scenario:       workload.Config{PoolSize: 48, FeatureDim: 12, Seed: 11},
		Method:         method,
		Rounds:         6,
		RoundSize:      4,
		PretrainEpochs: 40,
		RegretEpochs:   4,
		Hidden:         []int{8},
	}
}

func TestRunTSM(t *testing.T) {
	rep, err := Run(tinyCfg(MethodTSM))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "TSM" || len(rep.Rounds) != 6 {
		t.Fatalf("report: method=%s rounds=%d", rep.Method, len(rep.Rounds))
	}
	for _, r := range rep.Rounds {
		if len(r.Assignment) != 4 || len(r.TaskIdx) != 4 {
			t.Fatalf("round %d shapes", r.Round)
		}
		if r.Execution.Makespan <= 0 {
			t.Fatalf("round %d zero makespan", r.Round)
		}
	}
	if rep.MeanUtilization <= 0 || rep.MeanUtilization > 1 {
		t.Fatalf("utilization %v", rep.MeanUtilization)
	}
	if rep.MeanSuccessRate <= 0 || rep.MeanSuccessRate > 1 {
		t.Fatalf("success rate %v", rep.MeanSuccessRate)
	}
	if rep.TotalBusySeconds <= 0 || rep.TotalMakespanSeconds <= 0 {
		t.Fatal("no simulated time accounted")
	}
}

func TestRunMFCPFGParallel(t *testing.T) {
	cfg := tinyCfg(MethodMFCPFG)
	cfg.Parallel = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "MFCP-FG" {
		t.Fatalf("method %s", rep.Method)
	}
}

func TestRunADRejectsParallel(t *testing.T) {
	cfg := tinyCfg(MethodMFCPAD)
	cfg.Parallel = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("MFCP-AD accepted the non-convex setting")
	}
}

func TestRunUnknownMethod(t *testing.T) {
	cfg := tinyCfg("bogus")
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(tinyCfg(MethodTAM))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyCfg(MethodTAM))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanRegret != b.MeanRegret || a.TotalBusySeconds != b.TotalBusySeconds {
		t.Fatal("platform run not deterministic")
	}
}

func TestAllMethodsRun(t *testing.T) {
	for _, m := range []MethodName{MethodTAM, MethodTSM, MethodUCB, MethodMFCPAD, MethodMFCPFG} {
		if _, err := Run(tinyCfg(m)); err != nil {
			t.Fatalf("method %s: %v", m, err)
		}
	}
}
