// Session: the resumable online-serving state machine behind RunOnline and
// the HTTP match server (internal/server). A Session owns a serving engine
// plus the refit-window machinery around it — the lock-free observation
// ring, the replay buffer, the double-buffered predictor trainee, and
// periodic checkpoints — and exposes two ways to feed it rounds:
//
//   - sampleNext: draw compositions from the scenario's round stream, the
//     simulator path RunOnlineCtx drives;
//   - ServeComposed: serve externally composed rounds (task pool indices
//     chosen by a caller), the entry point the network serving layer uses
//     to run coalesced multi-tenant batches through the same screen+solve
//     machinery.
//
// Both paths share every byte of the window loop — sweep, in-order reduce,
// ring drain, refit, checkpoint — so a sequential replay of the sampled
// compositions through ServeComposed reproduces the RunOnline trajectory
// bit for bit (internal/server's TestReplayMatchesRunOnline).
//
// A Session is owned by a single goroutine: every method must be called
// from one goroutine at a time (the engine shards internally; refits may
// train in the background via AsyncRefit but their joins stay inside the
// session's methods).
package platform

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"mfcp/internal/core"
	"mfcp/internal/mfcperr"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
)

// Session is the online serving loop's state between rounds. Construct
// with NewSession, feed rounds with ServeComposed (or let RunOnlineCtx
// drive it from the scenario's round stream), and Finish to obtain the
// aggregated report.
type Session struct {
	e           *engine
	cfg         OnlineConfig
	configHash  uint64
	refitStream *rng.Source
	rep         *OnlineReport

	// buffer is the replay buffer refits train on; drained is the ring
	// drain scratch reused across window boundaries.
	buffer  []Observation
	drained []Observation
	// spare double-buffers backend versions across refits: the published
	// backend serves rounds while spare is the next refit's trainee.
	spare   core.Backend
	refitWG sync.WaitGroup

	// results is the sweep scratch (reused across calls; reduce copies
	// rounds into the report); times is its parallel trace scratch.
	results []RoundReport
	times   []RoundTrace

	// windowSum/windowN accumulate the in-progress window's regret for the
	// learning curve.
	windowSum float64
	windowN   int

	lastDropped uint64
	droppedBase uint64
	served      int
	finished    bool
}

// NewSession builds the scenario, trains (or restores) the method, and
// wires the online serving state. Only predictor-backed methods (tsm,
// mfcp-*) can refit and therefore serve a Session. The context governs
// method training only; serving is synchronous.
func NewSession(ctx context.Context, cfg OnlineConfig) (*Session, error) {
	cfg.fillDefaults()
	configHash := onlineFingerprint(&cfg)
	start := 0
	if ck := cfg.Resume; ck != nil {
		if ck.ConfigHash != configHash {
			return nil, mfcperr.Wrap(mfcperr.ErrBadConfig, "platform: checkpoint fingerprint %016x does not match this configuration (%016x)", ck.ConfigHash, configHash)
		}
		// Serve from the saved weights without re-running training. A
		// mid-window checkpoint (a drained match server's) resumes with the
		// refit cadence still anchored at multiples of RefitEvery: the next
		// refit fires when the absolute round count reaches the boundary.
		// MLP checkpoints carry their weights in the legacy Set slot; other
		// backend families use the named Backend slot, and the slot must
		// agree with the configured family (the fingerprint covers the
		// backend name, so a mismatch here is a corrupt or hand-edited file).
		switch {
		case ck.Set != nil:
			if cfg.Backend != "" && cfg.Backend != core.BackendMLP {
				return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "platform: checkpoint carries MLP weights but the configuration serves backend %q", cfg.Backend)
			}
			cfg.WarmStart = ck.Set
		case ck.Backend != nil:
			if ck.Backend.BackendName() != cfg.Backend {
				return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "platform: checkpoint carries backend %q but the configuration serves %q", ck.Backend.BackendName(), cfg.Backend)
			}
			cfg.warmBackend = ck.Backend
		default:
			return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "platform: checkpoint carries no predictor")
		}
		start = ck.Round
	}
	e, err := newEngine(ctx, cfg.Config)
	if err != nil {
		return nil, err
	}
	if e.snap == nil {
		return nil, fmt.Errorf("platform: method %q has no refittable predictors", cfg.Method)
	}
	// Size the ring so one window's observations always fit: drops inside a
	// window would depend on shard timing and break determinism. Composed
	// rounds may carry up to MaxRoundTasks tasks each, so the ring is sized
	// for the larger of the sampled and composed regimes. The BufferCap trim
	// at the drain keeps the documented oldest-drop semantics.
	ringCap := cfg.BufferCap
	maxTasks := cfg.RoundSize
	if cfg.MaxRoundTasks > maxTasks {
		maxTasks = cfg.MaxRoundTasks
	}
	if w := cfg.RefitEvery * maxTasks; w > ringCap {
		ringCap = w
	}
	e.obs = parallel.NewRing[Observation](ringCap)

	s := &Session{
		e:           e,
		cfg:         cfg,
		configHash:  configHash,
		refitStream: e.s.Stream("platform-refit"),
		rep:         &OnlineReport{Report: Report{Method: e.method.Name() + "+online"}},
		served:      start,
	}
	if cfg.Resume != nil {
		s.buffer, s.droppedBase, err = restoreCheckpoint(e, s.refitStream, s.rep, cfg.Resume)
		if err != nil {
			return nil, err
		}
	}
	s.spare = (*e.snap.Load()).Snapshot(nil)
	s.results = make([]RoundReport, cfg.RefitEvery)
	s.times = make([]RoundTrace, cfg.RefitEvery)
	return s, nil
}

// SetTraceHook registers fn to receive one RoundTrace per served round on
// the serial reduce path, in round order (the HTTP serving layer uses this
// to build its /debug/traces ring). Owner-goroutine only: set it before
// serving begins, never concurrently with ServeComposed. Overrides any
// Config.TraceHook.
func (s *Session) SetTraceHook(fn func(RoundTrace)) { s.e.traceHook = fn }

// RoundSize returns the configured tasks-per-round of the sampled path.
func (s *Session) RoundSize() int { return s.cfg.RoundSize }

// M returns the fleet size (clusters tasks can be assigned to).
func (s *Session) M() int { return s.e.s.M() }

// PoolLen returns the task pool size; composed rounds index into it.
func (s *Session) PoolLen() int { return s.e.s.PoolLen() }

// Served returns the absolute round count served so far (including rounds
// restored from a resumed checkpoint).
func (s *Session) Served() int { return s.served }

// Refits returns the number of predictor refits published so far.
func (s *Session) Refits() int { return s.rep.Refits }

// Method returns the serving method's name.
func (s *Session) Method() string { return s.e.method.Name() }

// Backend returns the serving backend family's registry name ("mlp",
// "ensemble", "table"). The nil guard is defensive: NewSession requires a
// refittable (backend-carrying) method, so today the snapshot is always
// populated.
func (s *Session) Backend() string {
	if be := s.e.currentBackend(); be != nil {
		return be.BackendName()
	}
	return ""
}

// RingDepth returns the number of observations pending in the ingest ring.
// Owner-goroutine only (ring length is consumer-owned).
func (s *Session) RingDepth() int { return s.e.obs.Len() }

// RingCap returns the ingest ring's capacity.
func (s *Session) RingCap() int { return s.e.obs.Cap() }

// sampleNext draws the next n round compositions from the scenario's round
// stream (the simulator path; ServeComposed never touches the stream).
func (s *Session) sampleNext(n int) [][]int {
	ssp := s.e.met.sample.Start()
	rounds := s.e.sampleRounds(n)
	ssp.End()
	return rounds
}

// ServeComposed serves externally composed allocation rounds: each round is
// a non-empty slice of task pool indices (0 ≤ idx < PoolLen), and rounds
// may differ in size (a coalesced multi-tenant batch is one large round).
// Rounds are swept in order, reduced into the session report, and refits
// fire at exactly the same absolute round boundaries the sampled path uses
// — every RefitEvery-th round — so a replay of sampled compositions is
// bit-identical to RunOnline.
//
// The returned reports alias the per-round state also appended to the
// session report (treat as read-only). On error the failed sweep's rounds
// are dropped whole — the session report stays a valid prefix, the round
// cursor does not advance, and the session remains serviceable; partial
// observations a failed sweep pushed are discarded so they can never leak
// into a later refit.
func (s *Session) ServeComposed(rounds [][]int) ([]RoundReport, error) {
	if s.finished {
		return nil, mfcperr.Wrap(mfcperr.ErrBadConfig, "platform: session already finished")
	}
	for _, round := range rounds {
		if err := s.validateRound(round); err != nil {
			return nil, err
		}
	}
	return s.serve(rounds)
}

// validateRound checks one composed round's shape against the pool.
func (s *Session) validateRound(round []int) error {
	if len(round) == 0 {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "platform: empty round")
	}
	if max := s.cfg.MaxRoundTasks; max > 0 && len(round) > max {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "platform: round of %d tasks exceeds MaxRoundTasks %d", len(round), max)
	}
	n := s.e.s.PoolLen()
	for _, idx := range round {
		if idx < 0 || idx >= n {
			return mfcperr.Wrap(mfcperr.ErrBadShape, "platform: task index %d outside pool [0,%d)", idx, n)
		}
	}
	return nil
}

// serve is the window loop shared by the sampled and composed paths: sweep
// chunks that never cross a refit-window boundary, reduce in round order,
// and run the boundary work (drain, refit, checkpoint) whenever the served
// count reaches a multiple of RefitEvery.
func (s *Session) serve(rounds [][]int) ([]RoundReport, error) {
	out := make([]RoundReport, 0, len(rounds))
	for off := 0; off < len(rounds); {
		room := s.cfg.RefitEvery - s.served%s.cfg.RefitEvery
		n := len(rounds) - off
		if n > room {
			n = room
		}
		chunk := rounds[off : off+n]
		if cap(s.results) < n {
			s.results = make([]RoundReport, n)
			s.times = make([]RoundTrace, n)
		}
		window := s.results[:n]
		times := s.times[:n]
		v0 := s.e.snap.Version()
		if err := s.e.sweep(s.served, chunk, s.e.currentBackend(), window, times); err != nil {
			s.discardRing()
			return out, err
		}
		s.e.met.observeSnapshot(v0, s.e.snap.Version())
		rsp := s.e.met.reduce.Start()
		for i := range window {
			reduce(&s.rep.Report, &window[i])
			s.e.met.observeReduced(&window[i])
			if s.e.traceHook != nil {
				s.e.traceHook(times[i])
			}
			s.windowSum += window[i].Eval.Regret
			s.windowN++
		}
		rsp.End()
		k0 := s.served
		s.served += n
		out = append(out, window...)
		if h := testWindowHook; h != nil {
			h(s.e, k0)
		}
		if s.served%s.cfg.RefitEvery == 0 {
			if err := s.refitBoundary(); err != nil {
				return out, err
			}
		}
		off += n
	}
	return out, nil
}

// refitBoundary runs the window-boundary work: join the in-flight refit so
// predictor versions and the replay buffer are ours to touch again, drain
// the ring in canonical (Round, Slot) order into the replay buffer, launch
// the next refit (inline or in the background), and save a periodic
// checkpoint when the cadence says so.
func (s *Session) refitBoundary() error {
	s.refitWG.Wait()
	e := s.e
	s.drainIntoBuffer()

	cur := *e.snap.Load()
	trainee := s.spare
	stream := s.refitStream.SplitIndexed("refit", s.rep.Refits)
	replay := s.buffer // immutable until the next refitWG.Wait()
	e.met.refitPending.Set(1)
	doRefit := func() {
		sp := e.met.refit.Start()
		cur.Snapshot(trainee)
		if h := testRefitHook; h != nil {
			h()
		}
		trainee.Refit(e.s, e.train, toFeedback(replay), s.cfg.RefitEpochs, stream)
		// Publish through a freshly boxed interface value: readers may still
		// hold the previous box, which must therefore never be rewritten.
		boxed := new(core.Backend)
		*boxed = trainee
		e.snap.Swap(boxed)
		sp.End()
		e.met.refits.Inc()
		e.met.backendRefits.Inc()
		e.met.snapVersion.Set(float64(e.snap.Version()))
		e.met.refitPending.Set(0)
	}
	if s.cfg.AsyncRefit {
		s.refitWG.Add(1)
		go func() {
			defer s.refitWG.Done()
			doRefit()
		}()
	} else {
		doRefit()
	}
	s.spare = cur

	s.rep.Refits++
	s.rep.WindowRegret = append(s.rep.WindowRegret, s.windowSum/float64(s.windowN))
	s.windowSum, s.windowN = 0, 0

	if s.rep.Refits%s.cfg.CheckpointEvery == 0 {
		if err := s.Checkpoint(); err != nil {
			return &ckSaveError{err}
		}
	}
	return nil
}

// drainIntoBuffer drains the ring in canonical (Round, Slot) order into
// the replay buffer with the documented oldest-drop trim. Must run with no
// refit in flight (the buffer is the refit's training set) and no sweep in
// flight (Len/Drain are consumer-owned).
func (s *Session) drainIntoBuffer() {
	e := s.e
	e.met.ringDepth.Set(float64(e.obs.Len()))
	s.drained = e.obs.Drain(s.drained[:0])
	e.met.ringIngested.Add(uint64(len(s.drained)))
	if d := e.obs.Dropped(); d != s.lastDropped {
		e.met.ringDropped.Add(d - s.lastDropped)
		s.lastDropped = d
	}
	drained := s.drained
	sort.Slice(drained, func(a, b int) bool {
		if drained[a].Round != drained[b].Round {
			return drained[a].Round < drained[b].Round
		}
		return drained[a].Slot < drained[b].Slot
	})
	s.buffer = append(s.buffer, drained...)
	if len(s.buffer) > s.cfg.BufferCap {
		s.buffer = s.buffer[len(s.buffer)-s.cfg.BufferCap:]
	}
}

// discardRing throws away observations a failed sweep pushed for rounds
// that were dropped whole: they belong to no served round and must never
// reach a refit. Observations from earlier successfully served rounds that
// happened to still be in the ring (a mid-window server session) are
// pushed back — their rounds are in the report, so their signal belongs to
// the next refit. The drain re-sorts, so re-push order is irrelevant.
func (s *Session) discardRing() {
	s.drained = s.e.obs.Drain(s.drained[:0])
	for _, ob := range s.drained {
		if ob.Round < s.served {
			s.e.obs.Push(ob)
		}
	}
}

// Checkpoint joins any in-flight refit and atomically saves the resumable
// state to the configured CheckpointPath (no-op when unset). A checkpoint
// taken mid-window — a drained match server's — first drains the ring into
// the replay buffer so no observed execution is lost; the in-progress
// window's learning-curve accumulator is the one piece of state a
// mid-window resume does not carry (its WindowRegret entry then covers
// only the post-resume rounds).
func (s *Session) Checkpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	s.refitWG.Wait()
	if s.served%s.cfg.RefitEvery != 0 {
		s.drainIntoBuffer()
	}
	drops := s.droppedBase + s.e.obs.Dropped()
	ck := captureCheckpoint(s.e, s.refitStream, s.rep, s.served, s.configHash, s.buffer, drops)
	return core.SaveCheckpoint(s.cfg.CheckpointPath, ck)
}

// Finish joins any in-flight refit, folds the final ring accounting into
// the report, normalizes the aggregate means over the served prefix, and
// returns the report. The session cannot serve afterwards; Finish is
// idempotent.
func (s *Session) Finish() *OnlineReport {
	if s.finished {
		return s.rep
	}
	s.finished = true
	s.refitWG.Wait()
	// Final drain accounting: a tail window's observations never met a
	// refit, but their ring drops still belong in the report.
	if d := s.e.obs.Dropped(); d != s.lastDropped {
		s.e.met.ringDropped.Add(d - s.lastDropped)
		s.lastDropped = d
	}
	s.rep.RingDropped = s.droppedBase + s.e.obs.Dropped()
	finalize(&s.rep.Report, s.served)
	return s.rep
}

// ckSaveError marks a checkpoint-save failure so drivers can distinguish
// it from a serving-path failure (the report's Stopped field stays empty
// for save failures, matching the historical RunOnline contract).
type ckSaveError struct{ err error }

func (e *ckSaveError) Error() string { return "platform: checkpoint save: " + e.err.Error() }
func (e *ckSaveError) Unwrap() error { return e.err }
