package platform

import (
	"fmt"
	"math"

	"mfcp/internal/cluster"
	"mfcp/internal/mat"
	"mfcp/internal/nn"
	"mfcp/internal/workload"
)

// OnboardingPoint reports prediction quality for one profiling budget when
// a new cluster joins the platform.
type OnboardingPoint struct {
	// Samples is the number of profiled tasks.
	Samples int
	// TimeRMSE is the root mean squared error of the new cluster's time
	// predictor on held-out tasks (normalized units).
	TimeRMSE float64
	// RelMAE is the mean absolute reliability prediction error.
	RelMAE float64
	// OrderingAccuracy is the fraction of held-out tasks for which the
	// predictor correctly ranks the new cluster against the incumbent
	// fleet's best time — the decision-relevant quantity for matching.
	OrderingAccuracy float64
}

// OnboardingStudy simulates a new third-party cluster joining the platform:
// it is profiled on progressively larger task budgets, a fresh predictor
// pair is trained per budget, and the returned curve shows how quickly the
// platform's view of the newcomer becomes matching-grade. This is the
// paper's motivating scenario — "the platform needs to evaluate the
// performance of running various deep learning tasks on these clusters" —
// made quantitative.
func OnboardingStudy(s *workload.Scenario, newcomer *cluster.Profile, sampleSizes []int, hidden []int, epochs int) ([]OnboardingPoint, error) {
	if err := newcomer.Validate(); err != nil {
		return nil, err
	}
	if len(sampleSizes) == 0 {
		sampleSizes = []int{8, 16, 32, 64}
	}
	if hidden == nil {
		hidden = []int{16}
	}
	if epochs == 0 {
		epochs = 200
	}
	root := s.Stream("onboarding")
	perm := root.Split("perm").Perm(s.PoolLen())
	maxBudget := sampleSizes[len(sampleSizes)-1]
	if maxBudget >= s.PoolLen() {
		return nil, fmt.Errorf("platform: onboarding budget %d exceeds pool %d", maxBudget, s.PoolLen())
	}
	holdout := perm[maxBudget:]

	// Profile the newcomer on the full candidate prefix once; budgets nest.
	measT := mat.NewVec(maxBudget)
	measA := mat.NewVec(maxBudget)
	measStream := root.Split("measure")
	for k := 0; k < maxBudget; k++ {
		task := s.Pool[perm[k]]
		t, a := newcomer.Measure(task, 20, measStream)
		measT[k] = t / s.TimeScale
		measA[k] = a
	}

	// Ground truth on the holdout, including the incumbent fleet's best
	// time per task (for the ordering metric).
	trueT := mat.NewVec(len(holdout))
	trueA := mat.NewVec(len(holdout))
	bestIncumbent := mat.NewVec(len(holdout))
	for k, j := range holdout {
		task := s.Pool[j]
		trueT[k] = newcomer.TrueTime(task) / s.TimeScale
		trueA[k] = newcomer.TrueReliability(task)
		best := s.TrueT.At(0, j)
		for i := 1; i < s.M(); i++ {
			if v := s.TrueT.At(i, j); v < best {
				best = v
			}
		}
		bestIncumbent[k] = best
	}
	Xhold := s.FeaturesOf(holdout)

	var out []OnboardingPoint
	for _, budget := range sampleSizes {
		if budget > maxBudget {
			return nil, fmt.Errorf("platform: sample sizes must be ascending (got %d after %d)", budget, maxBudget)
		}
		X := s.FeaturesOf(perm[:budget])
		trainStream := root.SplitIndexed("train", budget)
		timeNet := nn.NewMLP(append(append([]int{s.Features.Cols}, hidden...), 1), nn.ReLU, nn.Softplus, trainStream.Split("tinit"))
		relNet := nn.NewMLP(append(append([]int{s.Features.Cols}, hidden...), 1), nn.ReLU, nn.Sigmoid, trainStream.Split("rinit"))
		cfg := nn.TrainMSEConfig{Epochs: epochs, BatchSize: 8}
		nn.TrainMSE(timeNet, X, measT[:budget], cfg, trainStream.Split("ttrain"))
		cfg.Optimizer = nil
		nn.TrainMSE(relNet, X, measA[:budget], nn.TrainMSEConfig{Epochs: epochs, BatchSize: 8}, trainStream.Split("rtrain"))

		predT := timeNet.PredictBatch(Xhold, nil)
		predA := relNet.PredictBatch(Xhold, nil)
		var sse, absErr float64
		correct := 0
		for k := range holdout {
			dt := predT.At(k, 0) - trueT[k]
			sse += dt * dt
			da := predA.At(k, 0) - trueA[k]
			if da < 0 {
				da = -da
			}
			absErr += da
			predFaster := predT.At(k, 0) < bestIncumbent[k]
			trulyFaster := trueT[k] < bestIncumbent[k]
			if predFaster == trulyFaster {
				correct++
			}
		}
		n := float64(len(holdout))
		out = append(out, OnboardingPoint{
			Samples:          budget,
			TimeRMSE:         sqrt(sse / n),
			RelMAE:           absErr / n,
			OrderingAccuracy: float64(correct) / n,
		})
	}
	return out, nil
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
