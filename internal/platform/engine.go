// The concurrent serving engine. The platform loop of §5 (Xirang) serves
// continuously: sample a task batch, predict, match, execute, learn. This
// file turns that loop into the snapshot-and-shard structure production
// inference stacks use:
//
//   - Rounds are pre-sampled serially (the round stream is consumed in
//     round order, so the batch compositions are identical at any worker
//     count), then evaluated across parallel.Workers() shards. Every
//     per-round random draw comes from a stream split by round index, and
//     every shard works out of its own arena-pooled scratch, so a round's
//     result is a pure function of (round index, predictor version).
//   - The reduction runs serially in round order, which makes the full
//     trajectory — assignments, regret series, refit outcomes — bit-
//     identical to the serial path regardless of worker count
//     (TestRunOnlineWorkerCountInvariance).
//   - Predictors are served through a parallel.Snapshot holder: refits
//     train a private deep-copy and publish it atomically, so matching
//     never blocks on training and a round always sees one consistent
//     predictor version (engine_test.go interleaves a slow refit with live
//     rounds to pin this down).
//   - Sparse batches (mc.TopK > 0) run as a two-stage pipeline: a serial
//     screener predicts and screens round t+1 while the solver pool works
//     round t's hierarchical cell solves, with a slot pool double-buffering
//     the screen workspaces between the stages (sweepSparse). The screener
//     is the only reader/writer of the incremental-screening reference, so
//     reuse decisions form one serial chain and the trajectory stays
//     bit-identical at any worker count.
package platform

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mfcp/internal/core"
	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/metrics"
	"mfcp/internal/mfcperr"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
	"mfcp/internal/sched"
	"mfcp/internal/taskgraph"
	"mfcp/internal/workload"
)

// engine is the serving core shared by Run, RunOnline, and the exported
// Engine. It owns the trained method, the predictor snapshot holder, and
// the round/execution random streams.
type engine struct {
	cfg    Config
	s      *workload.Scenario
	train  []int
	live   []int
	method Predictor
	// snap publishes the backend version rounds serve against; nil for
	// methods without a refittable backend (tam, ucb, oracle), which serve
	// through method.Predict instead. The boxed interface value a publish
	// installs is never mutated after Swap — refits train a private
	// Snapshot and box it fresh — so a Load is always one consistent
	// predictor version.
	snap *parallel.Snapshot[core.Backend]
	// obs, when non-nil, receives one Observation per executed (cluster,
	// task) pair — pushed lock-free by the shards, drained by the refit
	// loop. Nil outside online serving.
	obs  *parallel.Ring[Observation]
	mc   core.MatchConfig
	mode sched.Mode
	// autoSparse records that mc.TopK was chosen by AutoSparseTopK rather
	// than configured — surfaced per round (RoundReport.AutoSparse) and as a
	// telemetry counter so operators can see the routing decision.
	autoSparse bool
	// met holds the pre-bound serving instruments (all nil — and therefore
	// no-ops — when cfg.Telemetry is nil).
	met engineMetrics
	// traceHook, when non-nil, receives each round's RoundTrace on the
	// serial reduce path (Config.TraceHook / Session.SetTraceHook). The
	// shards fill per-round trace slots regardless; only delivery is gated,
	// so enabling tracing changes no code path that touches the trajectory.
	traceHook func(RoundTrace)

	roundStream *rng.Source
	execStream  *rng.Source

	// Warm-start state (mc.WarmStart): the shard serving a batch's last
	// round captures its relaxed iterate into warmNext; warmPrepare swaps
	// it into warmCur at the next batch boundary, where it seeds every
	// solve of that batch read-only. The capture is keyed to the predictor
	// version it was solved against (warmVer) and discarded when a refit
	// publishes a new version — a warm iterate from stale predictions is
	// not a useful prior for the retrained landscape.
	warmCur, warmNext *mat.Dense
	warmValid         bool
	warmVer           uint64
	warmStamp         uint64

	// Incremental-screening state (mc.ScreenStaleTol > 0): the reference
	// carries the previous screen's candidate sets and source predictions.
	// Only the pipeline's serial screener touches it, and screenPrepare
	// invalidates it whenever the predictor version moves — the same
	// version-keyed rule the warm-start capture uses. screenSlots is the
	// pipeline's slot pool: each in-flight round owns one slot
	// (predict scratch + screen workspace) until its solve completes.
	screenRef   *matching.ScreenRef
	screenVer   uint64
	screenSlots []*screenSlot
}

// newEngine builds the scenario, trains the configured method, and wires
// the serving state. cfg must already have defaults filled. The context
// governs method training: canceling it aborts a long pretrain/regret phase
// and surfaces as an mfcperr.ErrCanceled-wrapped error.
func newEngine(ctx context.Context, cfg Config) (*engine, error) {
	s, err := workload.New(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	train, live, err := s.SplitChecked(cfg.TrainFrac)
	if err != nil {
		return nil, err
	}
	if cfg.RoundSize > len(live) {
		return nil, mfcperr.Wrap(mfcperr.ErrInfeasible, "platform: round size %d exceeds the %d live-traffic tasks", cfg.RoundSize, len(live))
	}
	method, err := buildMethod(ctx, cfg, s, train)
	if err != nil {
		return nil, err
	}
	mc := cfg.Match
	autoSparse := false
	if !mc.Sparse() {
		// Sparse-by-default routing (ROADMAP item 2): production-dimension
		// serving auto-selects the screened path once the dense pair count
		// crosses the documented threshold. Explicit TopK always wins.
		if k := core.AutoSparseTopK(s.M(), cfg.RoundSize); k > 0 {
			mc.TopK = k
			autoSparse = true
		}
	}
	if cfg.Parallel && mc.Speedups == nil {
		for _, p := range s.Fleet {
			mc.Speedups = append(mc.Speedups, p.Speedup)
		}
	}
	mode := sched.Sequential
	if cfg.Parallel {
		mode = sched.Parallel
	}
	be := backendOf(method)
	backendLabel := "none"
	if be != nil {
		backendLabel = be.BackendName()
	}
	if mc.RiskAversion > 0 {
		if _, ok := be.(core.UncertaintyBackend); !ok {
			return nil, mfcperr.Wrap(mfcperr.ErrBadConfig,
				"platform: RiskAversion %g requires an uncertainty-quantifying backend; method %q serves %q", mc.RiskAversion, cfg.Method, backendLabel)
		}
	}
	e := &engine{
		cfg: cfg, s: s, train: train, live: live, method: method,
		mc: mc, mode: mode, autoSparse: autoSparse,
		met:         newEngineMetrics(cfg.Telemetry, backendLabel),
		traceHook:   cfg.TraceHook,
		roundStream: s.Stream("platform-rounds"),
		execStream:  s.Stream("platform-exec"),
		warmCur:     new(mat.Dense), warmNext: new(mat.Dense),
	}
	if be != nil {
		e.snap = parallel.NewSnapshot(&be)
	}
	return e, nil
}

// currentBackend returns the backend version rounds should serve against,
// or nil for methods without one.
func (e *engine) currentBackend() core.Backend {
	if e.snap == nil {
		return nil
	}
	return *e.snap.Load()
}

// predictInto runs the serving-side prediction for one round through the
// published backend: features gather, then the zero-alloc batched forward —
// risk-shifted through the UncertaintyBackend path when RiskAversion is
// positive (newEngine already rejected that configuration for backends that
// cannot quantify spread).
func (e *engine) predictInto(be core.Backend, round []int, z *mat.Dense, w core.BackendWorkspace, that, ahat *mat.Dense) {
	Z := e.s.FeaturesInto(round, z)
	if ub, ok := be.(core.UncertaintyBackend); ok && e.mc.RiskAversion > 0 {
		ub.PredictRiskInto(Z, w, e.mc.RiskAversion, that, ahat)
		return
	}
	be.PredictInto(Z, w, that, ahat)
}

// sampleRounds draws the next n round compositions from the round stream,
// serially and in round order — the only stream consumed sequentially, so
// it must stay out of the shards.
func (e *engine) sampleRounds(n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		out[i] = e.s.SampleRound(e.live, e.cfg.RoundSize, e.roundStream)
	}
	return out
}

// shardScratch is one shard's private workspace: NN forward tapes, the
// predicted and ground-truth matrices, the matching solver workspace, and
// the task-pointer gather buffer. Shards draw it from the arena at the
// start of a chunk and return it after, so at most Workers() live at once.
type shardScratch struct {
	// bw is the backend prediction workspace, lazily created for the
	// backend family this scratch last served (bwFor). The arena is shared
	// across engines, so a pooled scratch can meet a different family; a
	// name mismatch rebuilds the workspace, and within a family the
	// workspace itself adapts to shape.
	bw           core.BackendWorkspace
	bwFor        string
	z            *mat.Dense
	that, ahat   *mat.Dense
	trueT, trueA *mat.Dense
	ws           *matching.Workspace
	// hw and sparseInit serve the production-dimension path (mc.TopK > 0):
	// the hierarchical solve's per-cell workspaces and the CSR-order
	// warm-start gather buffer.
	hw         *matching.HierWorkspace
	sparseInit []float64
	tasks      []*taskgraph.Task
}

var scratchArena = parallel.NewArena(func() *shardScratch {
	return &shardScratch{
		z:    new(mat.Dense),
		that: new(mat.Dense), ahat: new(mat.Dense),
		trueT: new(mat.Dense), trueA: new(mat.Dense),
	}
})

// workspace returns the scratch's prediction workspace for be, rebuilding
// it only when the scratch last served a different backend family.
func (sc *shardScratch) workspace(be core.Backend) core.BackendWorkspace {
	if sc.bw == nil || sc.bwFor != be.BackendName() {
		sc.bw = be.NewWorkspace()
		sc.bwFor = be.BackendName()
	}
	return sc.bw
}

// evalRound evaluates allocation round k: predict with the given snapshot
// (or the method's own path when set is nil), match, score against ground
// truth, and execute on the simulated fleet. All randomness comes from
// streams split by k, and all scratch is shard-private, so the result does
// not depend on which shard runs it or when.
//
// warm, when non-nil, is the batch's shared warm-start iterate (dense M×N,
// read-only during the sweep). capture marks the batch's last round: that
// shard — and only that shard — writes its relaxed solution into
// e.warmNext for the next batch to promote.
// Phase durations are measured with explicit clock reads rather than obs
// spans: the same measurement feeds both the phase histogram and the
// round's trace slot (trc), which the reduce path hands to the trace hook.
func (e *engine) evalRound(k int, round []int, be core.Backend, sc *shardScratch, warm *mat.Dense, capture bool, trc *RoundTrace) RoundReport {
	t0 := time.Now()
	var That, Ahat *mat.Dense
	if be != nil {
		e.predictInto(be, round, sc.z, sc.workspace(be), sc.that, sc.ahat)
		That, Ahat = sc.that, sc.ahat
	} else {
		That, Ahat = e.method.Predict(round)
	}
	dPredict := time.Since(t0)
	e.met.predict.Observe(dPredict)
	if sc.ws == nil {
		sc.ws = matching.NewWorkspace(That.Rows, That.Cols)
	}
	s0 := time.Now()
	assign, repInfo := e.mc.SolveWSInfoInit(That, Ahat, sc.ws, warm)
	// The oracle solve in finishRound reuses sc.ws, so capture the
	// predictive solve's convergence record (and, on the batch's last
	// round, the relaxed iterate itself) before it is clobbered.
	solveInfo := sc.ws.Info
	if capture {
		e.warmNext.Reshape(That.Rows, That.Cols).CopyFrom(sc.ws.X)
	}
	dSolve := time.Since(s0)
	e.met.solve.Observe(dSolve)
	rr := e.finishRound(k, round, assign, repInfo, solveInfo, warm != nil, sc, trc)
	d := time.Since(t0)
	e.met.round.Observe(d)
	e.met.routeSecDense.Observe(d.Seconds())
	trc.Round, trc.Tasks = k, len(round)
	trc.PredictNs = dPredict.Nanoseconds()
	trc.SolveNs = dSolve.Nanoseconds()
	trc.RoundNs = d.Nanoseconds()
	return rr
}

// finishRound is the ground-truth half of a round, shared by the dense and
// sparse paths: score the assignment against the oracle on true matrices,
// execute on the simulated fleet, and push partial feedback. All
// randomness comes from streams split by k, so it is shard-agnostic.
func (e *engine) finishRound(k int, round []int, assign []int, repInfo matching.RepairInfo, solveInfo matching.SolveInfo, warmed bool, sc *shardScratch, trc *RoundTrace) RoundReport {
	e.s.TrueMatricesInto(round, sc.trueT, sc.trueA)
	applyDrift(sc.trueT, e.cfg.Drift, k)
	trueProb := e.mc.Problem(sc.trueT, sc.trueA)
	if sc.ws == nil {
		sc.ws = matching.NewWorkspace(sc.trueT.Rows, sc.trueT.Cols)
	}
	oracle := e.mc.SolveWS(sc.trueT, sc.trueA, sc.ws)
	e.met.observeSolve(solveInfo, repInfo)
	ev := metrics.Evaluate(trueProb, assign, oracle)

	if cap(sc.tasks) < len(round) {
		sc.tasks = make([]*taskgraph.Task, len(round))
	}
	tasks := sc.tasks[:len(round)]
	for i, j := range round {
		tasks[i] = e.s.Pool[j]
	}
	x0 := time.Now()
	exec := sched.Execute(e.s.Fleet, tasks, assign, e.mode, e.execStream.SplitIndexed("round", k))
	scaleExecution(&exec, assign, e.cfg.Drift, k)
	dExec := time.Since(x0)
	e.met.exec.Observe(dExec)
	trc.ExecNs = dExec.Nanoseconds()

	if e.obs != nil {
		// Partial feedback: the realized standalone duration of each
		// (assigned cluster, task) pair, normalized like training labels.
		// Shards push concurrently; the drain re-sorts by (Round, Slot) so
		// training order is independent of shard completion order.
		i0 := time.Now()
		for j, i := range assign {
			e.obs.Push(Observation{
				Cluster: i, TaskIdx: round[j], Round: k, Slot: j,
				TimeNorm:  exec.TaskSeconds[j] / e.s.TimeScale,
				Succeeded: exec.Success[j],
			})
		}
		dIngest := time.Since(i0)
		e.met.ingest.Observe(dIngest)
		trc.IngestNs = dIngest.Nanoseconds()
	}
	return RoundReport{
		Round: k, TaskIdx: round, Assignment: assign, Eval: ev, Execution: exec,
		SolveIters: solveInfo.Iters, WarmStarted: warmed,
	}
}

// screenSlot is one in-flight sparse round's private stage-1 state: the
// prediction scratch and the screen workspace whose arrays the screened
// problem aliases. The slot travels with the round from the screener to a
// solver and returns to the pool only after the solve no longer needs the
// problem, which is what makes reusing the workspace safe while other
// rounds are still in flight.
type screenSlot struct {
	bw         core.BackendWorkspace
	bwFor      string
	z          *mat.Dense
	that, ahat *mat.Dense
	ws         *matching.ScreenWorkspace
}

// workspace returns the slot's prediction workspace for be, rebuilding it
// only on a backend-family change (slots are engine-owned, so in practice
// this builds once and then stays warm).
func (sl *screenSlot) workspace(be core.Backend) core.BackendWorkspace {
	if sl.bw == nil || sl.bwFor != be.BackendName() {
		sl.bw = be.NewWorkspace()
		sl.bwFor = be.BackendName()
	}
	return sl.bw
}

// screenSlotAt returns (lazily building) the i-th pooled slot.
func (e *engine) screenSlotAt(i int) *screenSlot {
	for len(e.screenSlots) <= i {
		e.screenSlots = append(e.screenSlots, &screenSlot{
			z: new(mat.Dense), that: new(mat.Dense), ahat: new(mat.Dense),
			ws: matching.NewScreenWorkspace(),
		})
	}
	return e.screenSlots[i]
}

// screenPrepare rotates the incremental-screening state at a batch
// boundary: it returns the reference the batch's screens should carry
// (nil when ScreenStaleTol is off), invalidating it first if the
// predictor version moved since the reference was refreshed — candidate
// sets chosen from a retired predictor's predictions are not within-tol
// evidence about the new one. Runs serially between sweeps.
func (e *engine) screenPrepare() *matching.ScreenRef {
	if e.mc.ScreenStaleTol <= 0 {
		return nil
	}
	if e.screenRef == nil {
		e.screenRef = matching.NewScreenRef()
	}
	if v := e.snapVersionNow(); v != e.screenVer {
		e.screenRef.Invalidate()
		e.screenVer = v
	}
	return e.screenRef
}

// screenRound is the pipeline's stage 1, run serially in round order by
// the screener goroutine: predict round k into the slot's scratch and
// screen the predictions down to candidate lists, incrementally against
// ref when incremental screening is on. The returned problem aliases the
// slot's workspace.
func (e *engine) screenRound(k int, round []int, be core.Backend, ref *matching.ScreenRef, slot *screenSlot, trc *RoundTrace) (*matching.SparseProblem, int, error) {
	p0 := time.Now()
	var That, Ahat *mat.Dense
	if be != nil {
		e.predictInto(be, round, slot.z, slot.workspace(be), slot.that, slot.ahat)
		That, Ahat = slot.that, slot.ahat
	} else {
		That, Ahat = e.method.Predict(round)
	}
	dPredict := time.Since(p0)
	e.met.predict.Observe(dPredict)
	s0 := time.Now()
	sp, reused, err := e.mc.ScreenIncrementalWS(That, Ahat, ref, slot.ws)
	dScreen := time.Since(s0)
	e.met.screen.Observe(dScreen)
	// The screener fills its trace fields before the round crosses the
	// pipeline channel; the channel send orders them before the solver's
	// writes to the same slot.
	trc.PredictNs = dPredict.Nanoseconds()
	trc.ScreenNs = dScreen.Nanoseconds()
	if err != nil {
		return nil, 0, err
	}
	e.met.observeScreen(reused, len(round)-reused)
	return sp, reused, nil
}

// solveScreenedRound is the pipeline's stage 2, run by the solver pool:
// hierarchical cell solve → reconcile → repair on an already-screened
// problem, then the shared ground-truth half. A warm dense iterate is
// gathered into the problem's CSR entry order; entries outside last
// round's candidate sets start at zero and are handled by the solver's
// init normalization.
func (e *engine) solveScreenedRound(k int, round []int, sp *matching.SparseProblem, reused int, sc *shardScratch, warm *mat.Dense, capture bool, trc *RoundTrace) RoundReport {
	t0 := time.Now()
	if sc.hw == nil {
		sc.hw = matching.NewHierWorkspace()
	}
	var init []float64
	if warm != nil {
		if cap(sc.sparseInit) < sp.NNZ() {
			sc.sparseInit = make([]float64, sp.NNZ())
		}
		init = sc.sparseInit[:sp.NNZ()]
		for i := 0; i < sp.Mdim; i++ {
			wrow := warm.Row(i)
			for en := sp.RowStart[i]; en < sp.RowStart[i+1]; en++ {
				init[en] = wrow[sp.ColIdx[en]]
			}
		}
	}
	c0 := time.Now()
	res := matching.SolveHierarchical(sp, matching.HierOptions{
		Cells:  e.mc.Cells,
		Solve:  matching.SolveOptions{Iters: e.mc.SolveIters, Tol: e.mc.SolveTol},
		Init:   init,
		Repair: true,
	}, sc.hw)
	dSolve := time.Since(c0)
	e.met.cellSolve.Observe(dSolve)
	e.met.observeSparse(sp.NNZ(), sp.M()*sp.N(), res.Reconcile)
	e.met.observeHierTimings(res.Timings)
	if capture {
		// Scatter the relaxed CSR iterate back to the dense warm carrier;
		// pairs pruned this round stay zero.
		e.warmNext.Reshape(sp.Mdim, sp.Ndim).Fill(0)
		for i := 0; i < sp.Mdim; i++ {
			wrow := e.warmNext.Row(i)
			for en := sp.RowStart[i]; en < sp.RowStart[i+1]; en++ {
				wrow[sp.ColIdx[en]] = res.X[en]
			}
		}
	}
	rr := e.finishRound(k, round, res.Assign, res.RepairInfo, res.Info, warm != nil, sc, trc)
	rr.ScreenReused = reused
	rr.Sparse = true
	rr.AutoSparse = e.autoSparse
	// The solver's span starts after the screen handoff, so the round's
	// compute total adds the screener-stage durations back in; pipeline
	// queue wait between the stages is deliberately excluded.
	d := time.Since(t0)
	e.met.round.Observe(d)
	if e.autoSparse {
		e.met.routeSecAuto.Observe(d.Seconds())
	} else {
		e.met.routeSecSparse.Observe(d.Seconds())
	}
	trc.Round, trc.Tasks = k, len(round)
	trc.Sparse, trc.AutoSparse = true, e.autoSparse
	trc.SolveNs = dSolve.Nanoseconds()
	trc.RoundNs = d.Nanoseconds() + trc.PredictNs + trc.ScreenNs
	return rr
}

// sweep evaluates rounds k0, k0+1, ... against one predictor snapshot
// across parallel.Workers() shards. Results land in out by round offset —
// the deterministic in-order reduction happens at the caller. Batches are
// the warm-start unit: the previous batch's captured iterate seeds this
// one, and the shard drawing the last round captures for the next. Sparse
// configurations route through the staged pipeline (sweepSparse), whose
// screen stage can reject malformed predictions with a typed error.
// times must have the same length as out: each round's shard fills its
// trace slot (phase timings), which the caller's serial reduce hands to
// the trace hook in round order.
func (e *engine) sweep(k0 int, rounds [][]int, be core.Backend, out []RoundReport, times []RoundTrace) error {
	if e.mc.Sparse() {
		return e.sweepSparse(k0, rounds, be, out, times)
	}
	warm, captureIdx := e.warmPrepare(len(rounds))
	parallel.ForChunked(len(rounds), 1, func(lo, hi int) {
		sc := scratchArena.Get()
		defer scratchArena.Put(sc)
		for i := lo; i < hi; i++ {
			times[i] = RoundTrace{}
			out[i] = e.evalRound(k0+i, rounds[i], be, sc, warm, i == captureIdx, &times[i])
		}
	})
	e.warmCommit(len(rounds))
	return nil
}

// sweepSparse runs one sparse batch as a two-stage pipeline. A single
// screener goroutine predicts and screens rounds serially in round order
// — serial so incremental-screening reuse decisions chain
// deterministically — while parallel.Workers() solver goroutines consume
// screened rounds and run the cell solves, ground-truth scoring, and
// execution. Each in-flight round holds a pooled slot whose workspace
// backs its screened problem; the solver recycles the slot once done, so
// at most depth rounds are in flight and round t+1's screen overlaps
// round t's solve. Results still land in out by round offset and the
// caller reduces in round order, so the trajectory is bit-identical at
// any worker count.
func (e *engine) sweepSparse(k0 int, rounds [][]int, be core.Backend, out []RoundReport, times []RoundTrace) error {
	n := len(rounds)
	if n == 0 {
		return nil
	}
	warm, captureIdx := e.warmPrepare(n)
	ref := e.screenPrepare()
	workers := parallel.Workers()
	depth := workers + 1
	if depth > n {
		depth = n
	}
	free := make(chan *screenSlot, depth)
	for i := 0; i < depth; i++ {
		free <- e.screenSlotAt(i)
	}
	type screened struct {
		idx    int
		sp     *matching.SparseProblem
		slot   *screenSlot
		reused int
	}
	ch := make(chan screened, depth)
	var screenErr error
	go func() {
		// screenErr is written before close(ch); the main goroutine reads
		// it only after the solvers' WaitGroup drains, so the channel close
		// orders the write before the read.
		defer close(ch)
		for i := 0; i < n; i++ {
			slot := <-free
			times[i] = RoundTrace{}
			sp, reused, err := e.screenRound(k0+i, rounds[i], be, ref, slot, &times[i])
			if err != nil {
				screenErr = fmt.Errorf("platform: screen round %d: %w", k0+i, err)
				return
			}
			ch <- screened{idx: i, sp: sp, slot: slot, reused: reused}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := scratchArena.Get()
			defer scratchArena.Put(sc)
			for it := range ch {
				out[it.idx] = e.solveScreenedRound(k0+it.idx, rounds[it.idx], it.sp, it.reused, sc, warm, it.idx == captureIdx, &times[it.idx])
				free <- it.slot
			}
		}()
	}
	wg.Wait()
	if screenErr != nil {
		return screenErr
	}
	e.warmCommit(n)
	return nil
}

// warmPrepare rotates the warm double-buffer at a batch boundary: the
// previous batch's capture (warmNext) becomes this batch's read-only seed
// (warmCur), freeing warmNext as this batch's capture target. It returns
// the seed — nil when warm-starting is off, nothing has been captured yet,
// or the capture predates the predictor version this batch serves — and
// the round offset that must capture (always the batch's last round).
// Runs serially between sweeps, so the swap never races a shard.
func (e *engine) warmPrepare(n int) (*mat.Dense, int) {
	if !e.mc.WarmStart || n == 0 {
		return nil, -1
	}
	e.warmCur, e.warmNext = e.warmNext, e.warmCur
	e.warmStamp = e.snapVersionNow()
	var warm *mat.Dense
	if e.warmValid && e.warmVer == e.warmStamp {
		warm = e.warmCur
	}
	return warm, n - 1
}

// warmCommit records that the just-finished sweep captured a fresh iterate
// into warmNext, stamped with the predictor version it was solved against.
func (e *engine) warmCommit(n int) {
	if !e.mc.WarmStart || n == 0 {
		return
	}
	e.warmValid = true
	e.warmVer = e.warmStamp
}

// snapVersionNow reads the published predictor version (0 for methods
// without a snapshot holder, whose predictions never change).
func (e *engine) snapVersionNow() uint64 {
	if e.snap == nil {
		return 0
	}
	return e.snap.Version()
}

// reduce folds one round into the report. Called serially in round order.
func reduce(rep *Report, rr *RoundReport) {
	rep.Rounds = append(rep.Rounds, *rr)
	rep.MeanRegret += rr.Eval.Regret
	rep.MeanReliability += rr.Eval.Reliability
	rep.MeanUtilization += rr.Eval.Utilization
	rep.MeanSuccessRate += rr.Execution.SuccessRate
	for _, b := range rr.Execution.Busy {
		rep.TotalBusySeconds += b
	}
	rep.TotalMakespanSeconds += rr.Execution.Makespan
}

// finalize converts the reduction's running sums into means over n rounds.
func finalize(rep *Report, n int) {
	if n == 0 {
		return
	}
	f := float64(n)
	rep.MeanRegret /= f
	rep.MeanReliability /= f
	rep.MeanUtilization /= f
	rep.MeanSuccessRate /= f
}

// serveCtx serves n rounds starting at k0 with cooperative cancellation: it
// slices the run into batches of a few rounds per worker, checks the context
// between batches, and returns the number of rounds actually served. A batch
// in flight always drains completely — shards finish and reduce in round
// order — so the partial report is a valid prefix of the full trajectory.
func (e *engine) serveCtx(ctx context.Context, rep *Report, k0, n int) (int, error) {
	// The batch size is a fixed constant, deliberately NOT a function of
	// parallel.Workers(): batches are the warm-start carry unit, so their
	// boundaries must fall at the same round indices at every worker count
	// to keep trajectories worker-invariant.
	const batch = 32
	done := 0
	for done < n {
		if ctx.Err() != nil {
			return done, mfcperr.Canceled("platform.serve", context.Cause(ctx))
		}
		b := batch
		if done+b > n {
			b = n - done
		}
		if err := e.serve(rep, k0+done, b); err != nil {
			return done, err
		}
		done += b
	}
	return done, nil
}

// serve runs one batch of rounds starting at round index k0 and folds them
// into rep (means not yet normalized). On a screen error the whole batch
// is dropped — no partial rounds are reduced — and rep remains the valid
// prefix served before this batch.
func (e *engine) serve(rep *Report, k0, n int) error {
	ssp := e.met.sample.Start()
	rounds := e.sampleRounds(n)
	ssp.End()
	results := make([]RoundReport, n)
	times := make([]RoundTrace, n)
	var v0 uint64
	if e.snap != nil {
		v0 = e.snap.Version()
	}
	if err := e.sweep(k0, rounds, e.currentBackend(), results, times); err != nil {
		return err
	}
	if e.snap != nil {
		e.met.observeSnapshot(v0, e.snap.Version())
	}
	rsp := e.met.reduce.Start()
	for i := range results {
		reduce(rep, &results[i])
		e.met.observeReduced(&results[i])
		if e.traceHook != nil {
			e.traceHook(times[i])
		}
	}
	rsp.End()
	return nil
}

// Engine is the reusable serving loop, exported for throughput benchmarks
// and long-running drivers: construction pays for scenario build and
// method training once; each ServeRounds call then streams fresh rounds
// through the sharded pipeline. Not safe for concurrent ServeRounds calls
// — the engine shards internally.
type Engine struct {
	e      *engine
	served int
}

// NewEngine builds a scenario and trains the configured method, returning
// an engine ready to serve rounds.
func NewEngine(cfg Config) (*Engine, error) {
	cfg.fillDefaults()
	e, err := newEngine(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{e: e}, nil
}

// RoundSize returns the number of tasks per served round.
func (en *Engine) RoundSize() int { return en.e.cfg.RoundSize }

// ServeRounds serves the next n allocation rounds and returns their
// aggregated report. Round indices continue across calls, so repeated
// calls consume fresh traffic from the same streams. A screen-stage error
// (malformed predictions reaching the sparse path) drops the batch and
// leaves the round cursor unadvanced.
func (en *Engine) ServeRounds(n int) (*Report, error) {
	rep := &Report{Method: en.e.method.Name()}
	if err := en.e.serve(rep, en.served, n); err != nil {
		return nil, err
	}
	en.served += n
	finalize(rep, n)
	return rep, nil
}
