// Checkpoint/resume for the online serving loop. A checkpoint is captured
// at a window boundary — after the window's refit has published and the
// ingest ring has drained — which is the one program point where the whole
// online state is reachable from a handful of values: the round stream
// position, the published predictor weights, the replay buffer, and the
// report accumulators. Restoring exactly those values and re-entering the
// window loop reproduces the uninterrupted trajectory bit for bit
// (TestRunOnlineResumeBitIdentical).
package platform

import (
	"fmt"
	"hash/fnv"

	"mfcp/internal/binenc"
	"mfcp/internal/core"
	"mfcp/internal/mfcperr"
	"mfcp/internal/rng"
)

// Stream and gauge names used in platform checkpoints.
const (
	ckStreamRounds = "platform-rounds"
	ckStreamExec   = "platform-exec"
	ckStreamRefit  = "platform-refit"
	ckGaugeEMAReg  = "ema_regret"
	ckGaugeEMARel  = "ema_reliability"
	ckGaugeEMAInit = "ema_init"
)

// onlineExtraVersion versions the platform-owned Extra payload inside a
// core.Checkpoint (report accumulators, learning curve, replay buffer).
const onlineExtraVersion = 1

// maxExtraEntries bounds decoded collection counts in the Extra payload.
const maxExtraEntries = 1 << 24

// onlineFingerprint hashes every configuration field that shapes the online
// trajectory. Rounds is deliberately excluded so a resume may extend the
// horizon; everything else must match for a checkpoint to be resumable.
// Called after fillDefaults, so explicit defaults and zero values hash
// identically.
func onlineFingerprint(cfg *OnlineConfig) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "scenario=%v/%d/%d/%v/%d/%g/%t/%d",
		cfg.Scenario.Setting, cfg.Scenario.PoolSize, cfg.Scenario.FeatureDim,
		cfg.Scenario.FamilyWeights, cfg.Scenario.MeasureTrials, cfg.Scenario.NoiseScale,
		cfg.Scenario.StatsEmbedder, cfg.Scenario.Seed)
	fmt.Fprintf(h, "|method=%s|roundsize=%d|parallel=%t|drift=%v|trainfrac=%g|pretrain=%d|regret=%d|hidden=%v",
		cfg.Method, cfg.RoundSize, cfg.Parallel, cfg.Drift, cfg.TrainFrac,
		cfg.PretrainEpochs, cfg.RegretEpochs, cfg.Hidden)
	fmt.Fprintf(h, "|match=%g/%g/%g/%g/%d/%d/%d/%d",
		cfg.Match.Gamma, cfg.Match.Beta, cfg.Match.Lambda, cfg.Match.Entropy,
		cfg.Match.Norm, cfg.Match.Objective, cfg.Match.Barrier, cfg.Match.SolveIters)
	fmt.Fprintf(h, "|refitevery=%d|refitepochs=%d|buffercap=%d|async=%t",
		cfg.RefitEvery, cfg.RefitEpochs, cfg.BufferCap, cfg.AsyncRefit)
	// The backend family and risk shift shape every prediction; hash them
	// only when they deviate from the legacy configuration so fingerprints
	// of pre-backend checkpoints keep resuming.
	if cfg.Backend != "" && cfg.Backend != core.BackendMLP {
		fmt.Fprintf(h, "|backend=%s", cfg.Backend)
	}
	if cfg.Match.RiskAversion != 0 {
		fmt.Fprintf(h, "|risk=%g", cfg.Match.RiskAversion)
	}
	return h.Sum64()
}

// appendOnlineExtra encodes the platform-owned resume state: the report's
// running sums, the learning curve, the ring-drop base, and the replay
// buffer in canonical (Round, Slot) order.
func appendOnlineExtra(buf []byte, rep *OnlineReport, buffer []Observation, droppedBase uint64) []byte {
	buf = binenc.AppendU8(buf, onlineExtraVersion)
	buf = binenc.AppendF64(buf, rep.MeanRegret)
	buf = binenc.AppendF64(buf, rep.MeanReliability)
	buf = binenc.AppendF64(buf, rep.MeanUtilization)
	buf = binenc.AppendF64(buf, rep.MeanSuccessRate)
	buf = binenc.AppendF64(buf, rep.TotalBusySeconds)
	buf = binenc.AppendF64(buf, rep.TotalMakespanSeconds)
	buf = binenc.AppendF64s(buf, rep.WindowRegret)
	buf = binenc.AppendU64(buf, droppedBase)
	buf = binenc.AppendU32(buf, uint32(len(buffer)))
	for _, ob := range buffer {
		buf = binenc.AppendI64(buf, int64(ob.Cluster))
		buf = binenc.AppendI64(buf, int64(ob.TaskIdx))
		buf = binenc.AppendI64(buf, int64(ob.Round))
		buf = binenc.AppendI64(buf, int64(ob.Slot))
		buf = binenc.AppendF64(buf, ob.TimeNorm)
		if ob.Succeeded {
			buf = binenc.AppendU8(buf, 1)
		} else {
			buf = binenc.AppendU8(buf, 0)
		}
	}
	return buf
}

// parseOnlineExtra decodes appendOnlineExtra's payload into rep (sums and
// learning curve) and returns the replay buffer and ring-drop base.
func parseOnlineExtra(extra []byte, rep *OnlineReport) (buffer []Observation, droppedBase uint64, err error) {
	r := binenc.NewReader(extra)
	if v := r.U8(); r.Err() == nil && v != onlineExtraVersion {
		return nil, 0, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "platform: online extra version %d, want %d", v, onlineExtraVersion)
	}
	rep.MeanRegret = r.F64()
	rep.MeanReliability = r.F64()
	rep.MeanUtilization = r.F64()
	rep.MeanSuccessRate = r.F64()
	rep.TotalBusySeconds = r.F64()
	rep.TotalMakespanSeconds = r.F64()
	rep.WindowRegret = r.F64s()
	droppedBase = r.U64()
	n := int(r.U32())
	if r.Err() != nil {
		return nil, 0, r.Err()
	}
	if n < 0 || n > maxExtraEntries {
		return nil, 0, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "platform: replay buffer of %d observations", n)
	}
	buffer = make([]Observation, n)
	for i := range buffer {
		buffer[i].Cluster = int(r.I64())
		buffer[i].TaskIdx = int(r.I64())
		buffer[i].Round = int(r.I64())
		buffer[i].Slot = int(r.I64())
		buffer[i].TimeNorm = r.F64()
		buffer[i].Succeeded = r.U8() != 0
	}
	return buffer, droppedBase, r.Err()
}

// captureCheckpoint assembles the resumable state at a window boundary.
// nextRound is the first round index the resumed run will serve. The
// caller must have joined any in-flight refit: the published snapshot is
// read here and becomes the resumed run's serving set.
func captureCheckpoint(e *engine, refitStream *rng.Source, rep *OnlineReport, nextRound int, configHash uint64, buffer []Observation, droppedBase uint64) *core.Checkpoint {
	ck := &core.Checkpoint{
		Round:      nextRound,
		Refits:     rep.Refits,
		ConfigHash: configHash,
		Streams: []core.StreamState{
			{Name: ckStreamRounds, State: e.roundStream.State()},
			{Name: ckStreamExec, State: e.execStream.State()},
			{Name: ckStreamRefit, State: refitStream.State()},
		},
		Gauges: []core.GaugeState{
			{Name: ckGaugeEMAReg, Value: e.met.emaRegret},
			{Name: ckGaugeEMARel, Value: e.met.emaRel},
			{Name: ckGaugeEMAInit, Value: b2f(e.met.emaInit)},
		},
	}
	// MLP weights go to the legacy Set slot — the checkpoint v1 wire form —
	// so files from the serving fleet stay resumable by older readers; other
	// families snapshot into the named backend slot.
	if be := *e.snap.Load(); be != nil {
		if mb, ok := be.(*core.MLPBackend); ok {
			ck.Set = mb.Set().Clone()
		} else {
			ck.Backend = be.Snapshot(nil)
		}
	}
	ck.Extra = appendOnlineExtra(nil, rep, buffer, droppedBase)
	return ck
}

// restoreCheckpoint applies a loaded checkpoint to a freshly built engine
// and report, returning the replay buffer and ring-drop base. The engine
// must have been constructed with cfg.WarmStart = ck.Set so the published
// snapshot already holds the saved weights.
func restoreCheckpoint(e *engine, refitStream *rng.Source, rep *OnlineReport, ck *core.Checkpoint) (buffer []Observation, droppedBase uint64, err error) {
	if st, ok := ck.Stream(ckStreamRounds); ok {
		e.roundStream.SetState(st)
	} else {
		return nil, 0, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "platform: checkpoint lacks the %s stream", ckStreamRounds)
	}
	if st, ok := ck.Stream(ckStreamExec); ok {
		e.execStream.SetState(st)
	}
	if st, ok := ck.Stream(ckStreamRefit); ok {
		refitStream.SetState(st)
	}
	if v, ok := ck.Gauge(ckGaugeEMAReg); ok {
		e.met.emaRegret = v
	}
	if v, ok := ck.Gauge(ckGaugeEMARel); ok {
		e.met.emaRel = v
	}
	if v, ok := ck.Gauge(ckGaugeEMAInit); ok {
		e.met.emaInit = v != 0
	}
	rep.Refits = ck.Refits
	rep.ResumedAt = ck.Round
	buffer, droppedBase, err = parseOnlineExtra(ck.Extra, rep)
	if err != nil {
		return nil, 0, err
	}
	return buffer, droppedBase, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
