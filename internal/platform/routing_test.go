package platform

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mfcp/internal/obs"
)

// TestRoundReportSparseRouting pins the routing visibility contract: dense
// rounds report Sparse=false, explicitly sparse rounds report Sparse=true
// with AutoSparse=false (the operator chose TopK), and the routing counters
// land in the Prometheus export.
func TestRoundReportSparseRouting(t *testing.T) {
	dense := tinyCfg(MethodTSM)
	dense.Telemetry = obs.NewRegistry()
	rep, err := Run(dense)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range rep.Rounds {
		if rr.Sparse || rr.AutoSparse {
			t.Fatalf("round %d on the dense path reported Sparse=%v AutoSparse=%v", rr.Round, rr.Sparse, rr.AutoSparse)
		}
	}
	assertSeries(t, dense.Telemetry, map[string]string{
		`mfcp_rounds_by_route_total{route="dense"}`:      "6",
		`mfcp_rounds_by_route_total{route="sparse"}`:     "0",
		`mfcp_rounds_by_route_total{route="autosparse"}`: "0",
	})

	sparse := tinyCfg(MethodTSM)
	sparse.Match.TopK = 2
	sparse.Telemetry = obs.NewRegistry()
	rep, err = Run(sparse)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range rep.Rounds {
		if !rr.Sparse {
			t.Fatalf("round %d with TopK=2 did not report Sparse", rr.Round)
		}
		if rr.AutoSparse {
			t.Fatalf("round %d reported AutoSparse for an explicit TopK", rr.Round)
		}
	}
	assertSeries(t, sparse.Telemetry, map[string]string{
		`mfcp_rounds_by_route_total{route="dense"}`:      "0",
		`mfcp_rounds_by_route_total{route="sparse"}`:     "6",
		`mfcp_rounds_by_route_total{route="autosparse"}`: "0",
	})
}

// TestAutoSparseRoutingSurfaced pins that when the engine's auto-routing
// picks TopK (rather than the operator), the rounds carry AutoSparse and
// the dedicated counter moves. The stock test scenario is far below the
// auto-routing threshold, so the test flips the engine's recorded decision
// directly — the propagation from flag to report to counter is what's
// under test; the threshold rule itself is pinned in core.
func TestAutoSparseRoutingSurfaced(t *testing.T) {
	cfg := tinyCfg(MethodTSM)
	cfg.Match.TopK = 2
	cfg.Telemetry = obs.NewRegistry()
	cfg.fillDefaults()
	e, err := newEngine(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.autoSparse {
		t.Fatal("explicit TopK must not be recorded as auto-routed")
	}
	e.autoSparse = true // as if AutoSparseTopK had chosen the sparse path
	rep := &Report{Method: e.method.Name()}
	if err := e.serve(rep, 0, cfg.Rounds); err != nil {
		t.Fatal(err)
	}
	for _, rr := range rep.Rounds {
		if !rr.Sparse || !rr.AutoSparse {
			t.Fatalf("round %d Sparse=%v AutoSparse=%v, want both", rr.Round, rr.Sparse, rr.AutoSparse)
		}
	}
	// Routes are disjoint: auto-selected sparse rounds count only under
	// "autosparse", so the family still sums to rounds served.
	assertSeries(t, cfg.Telemetry, map[string]string{
		`mfcp_rounds_by_route_total{route="dense"}`:      "0",
		`mfcp_rounds_by_route_total{route="sparse"}`:     "0",
		`mfcp_rounds_by_route_total{route="autosparse"}`: "6",
	})
}

// assertSeries checks that each metric appears in the Prometheus export
// with the exact expected value.
func assertSeries(t *testing.T, reg *obs.Registry, want map[string]string) {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for name, val := range want {
		line := name + " " + val
		if !strings.Contains(buf.String(), line) {
			t.Fatalf("export missing %q:\n%s", line, buf.String())
		}
	}
}
