package platform

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"mfcp/internal/parallel"
)

func onlineTiny(method MethodName) OnlineConfig {
	cfg := OnlineConfig{Config: tinyCfg(method), RefitEvery: 3, RefitEpochs: 5}
	cfg.Rounds = 9
	return cfg
}

// mustRunOnlineAt runs RunOnline pinned to w workers.
func mustRunOnlineAt(t *testing.T, cfg OnlineConfig, w int) *OnlineReport {
	t.Helper()
	defer parallel.SetWorkers(parallel.SetWorkers(w))
	rep, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// sameTrajectory asserts two reports are bit-identical: every round's task
// batch, assignment, evaluation, and execution, plus all aggregates.
func sameTrajectory(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("%s: round counts %d vs %d", label, len(a.Rounds), len(b.Rounds))
	}
	for k := range a.Rounds {
		if !reflect.DeepEqual(a.Rounds[k], b.Rounds[k]) {
			t.Fatalf("%s: round %d diverged:\n%+v\nvs\n%+v", label, k, a.Rounds[k], b.Rounds[k])
		}
	}
	if a.MeanRegret != b.MeanRegret || a.MeanReliability != b.MeanReliability ||
		a.MeanUtilization != b.MeanUtilization || a.MeanSuccessRate != b.MeanSuccessRate ||
		a.TotalBusySeconds != b.TotalBusySeconds || a.TotalMakespanSeconds != b.TotalMakespanSeconds {
		t.Fatalf("%s: aggregate means diverged", label)
	}
}

func TestRunWorkerCountInvariance(t *testing.T) {
	cfg := tinyCfg(MethodTSM)
	cfg.Rounds = 8
	base := mustRunAt(t, cfg, 1)
	for _, w := range []int{2, 8} {
		sameTrajectory(t, "workers=8/2 vs 1", base, mustRunAt(t, cfg, w))
	}
}

func mustRunAt(t *testing.T, cfg Config, w int) *Report {
	t.Helper()
	defer parallel.SetWorkers(parallel.SetWorkers(w))
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRunOnlineWorkerCountInvariance pins the engine's core promise: the
// full online trajectory — assignments, regret series, refit outcomes — is
// bit-identical at 1, 2, and 8 workers, and across repeated runs at the
// same seed.
func TestRunOnlineWorkerCountInvariance(t *testing.T) {
	cfg := onlineTiny(MethodTSM)
	base := mustRunOnlineAt(t, cfg, 1)
	again := mustRunOnlineAt(t, cfg, 1)
	sameTrajectory(t, "serial repeat", &base.Report, &again.Report)

	for _, w := range []int{2, 8} {
		rep := mustRunOnlineAt(t, cfg, w)
		sameTrajectory(t, "sharded vs serial", &base.Report, &rep.Report)
		if rep.Refits != base.Refits {
			t.Fatalf("workers=%d: refits %d vs %d", w, rep.Refits, base.Refits)
		}
		if !reflect.DeepEqual(rep.WindowRegret, base.WindowRegret) {
			t.Fatalf("workers=%d: learning curve diverged: %v vs %v", w, rep.WindowRegret, base.WindowRegret)
		}
	}
}

// TestRunOnlinePipelinedSparseInvariance extends the invariance contract to
// the pipelined sparse path: screening for round t+1 overlapped with round
// t's hierarchical cell solves, incremental screening reusing candidate
// sets across rounds, and refits invalidating the screen reference — the
// whole trajectory must still be bit-identical at 1, 2, and 8 workers.
func TestRunOnlinePipelinedSparseInvariance(t *testing.T) {
	cfg := onlineTiny(MethodTSM)
	cfg.Match.TopK = 2
	cfg.Match.Cells = 2
	cfg.Match.WarmStart = true
	cfg.Match.ScreenStaleTol = 0.5 // loose: consecutive rounds mostly reuse

	base := mustRunOnlineAt(t, cfg, 1)
	reused := 0
	for _, rr := range base.Rounds {
		reused += rr.ScreenReused
	}
	if reused == 0 {
		t.Fatal("incremental screening never reused a candidate set; the tolerance path is dead")
	}
	for _, w := range []int{2, 8} {
		rep := mustRunOnlineAt(t, cfg, w)
		sameTrajectory(t, "pipelined sparse", &base.Report, &rep.Report)
	}

	// A vanishing tolerance must reproduce the exact (tol = 0) trajectory:
	// reused sets revalue at current predictions, so only set membership —
	// which cannot move inside 1e-12 — distinguishes the two runs.
	// ScreenReused differs by construction, so compare outcomes, not reports.
	tight := cfg
	tight.Match.ScreenStaleTol = 1e-12
	exact := cfg
	exact.Match.ScreenStaleTol = 0
	a, b := mustRunOnlineAt(t, tight, 2), mustRunOnlineAt(t, exact, 2)
	for k := range a.Rounds {
		if a.Rounds[k].Eval != b.Rounds[k].Eval ||
			!reflect.DeepEqual(a.Rounds[k].Assignment, b.Rounds[k].Assignment) {
			t.Fatalf("round %d: tol=1e-12 diverged from the exact screen", k)
		}
	}
}

// TestAsyncRefitDoesNotBlockServing holds the first refit open on its
// background goroutine and asserts the next window of rounds is served
// while the refit is still in flight (against the old predictor snapshot,
// which by construction is the only version published at that point).
func TestAsyncRefitDoesNotBlockServing(t *testing.T) {
	cfg := onlineTiny(MethodTSM)
	cfg.AsyncRefit = true

	firstRefitEntered := make(chan struct{})
	refitRelease := make(chan struct{})
	var once sync.Once
	testRefitHook = func() {
		once.Do(func() {
			close(firstRefitEntered)
			<-refitRelease
		})
	}
	windowServed := make(chan int, 8)
	testWindowHook = func(_ *engine, k0 int) { windowServed <- k0 }
	defer func() { testRefitHook, testWindowHook = nil, nil }()

	done := make(chan *OnlineReport, 1)
	go func() {
		rep, err := RunOnline(cfg)
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()

	waitFor := func(what string, ch <-chan int) int {
		select {
		case v := <-ch:
			return v
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
			return -1
		}
	}
	if k0 := waitFor("first window", windowServed); k0 != 0 {
		t.Fatalf("first window at k0=%d", k0)
	}
	select {
	case <-firstRefitEntered:
	case <-time.After(30 * time.Second):
		t.Fatal("first refit never started")
	}
	// The refit is now held open. Serving must not block on it: the second
	// window has to complete while the refit goroutine is still inside the
	// hook.
	if k0 := waitFor("second window during open refit", windowServed); k0 != cfg.RefitEvery {
		t.Fatalf("second window at k0=%d, want %d", k0, cfg.RefitEvery)
	}
	close(refitRelease)

	var rep *OnlineReport
	select {
	case rep = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("run never finished after releasing the refit")
	}
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Refits != 3 || len(rep.Rounds) != cfg.Rounds {
		t.Fatalf("refits=%d rounds=%d", rep.Refits, len(rep.Rounds))
	}
}

// TestAsyncRefitStructure checks async mode end to end without hooks: every
// refit lands, and the learning curve has one entry per full window.
func TestAsyncRefitStructure(t *testing.T) {
	cfg := onlineTiny(MethodTSM)
	cfg.AsyncRefit = true
	rep, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refits != 3 || len(rep.WindowRegret) != 3 || len(rep.Rounds) != 9 {
		t.Fatalf("refits=%d windows=%d rounds=%d", rep.Refits, len(rep.WindowRegret), len(rep.Rounds))
	}
}

func TestEngineServeRoundsMatchesRun(t *testing.T) {
	cfg := tinyCfg(MethodTSM)
	cfg.Rounds = 6
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	en, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if en.RoundSize() != cfg.RoundSize {
		t.Fatalf("round size %d", en.RoundSize())
	}
	// Two ServeRounds calls must continue the same streams: concatenated
	// they reproduce one six-round Run exactly.
	a, err := en.ServeRounds(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := en.ServeRounds(4)
	if err != nil {
		t.Fatal(err)
	}
	got := append(append([]RoundReport{}, a.Rounds...), b.Rounds...)
	for k := range want.Rounds {
		if !reflect.DeepEqual(want.Rounds[k], got[k]) {
			t.Fatalf("round %d diverged between Run and ServeRounds", k)
		}
	}
}
