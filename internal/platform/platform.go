// Package platform simulates the computing resource exchange platform
// end-to-end: profile third-party clusters, train a prediction method,
// then run allocation rounds — sample incoming tasks, predict, match,
// execute on the (simulated) fleet with real failure draws — while
// accounting regret, utilization, and task success.
//
// This is the system the paper's introduction motivates; the experiment
// harness measures methods in isolation, while this package strings the
// whole loop together the way an operator would run it.
package platform

import (
	"context"
	"errors"
	"fmt"

	"mfcp/internal/baselines"
	"mfcp/internal/cluster"
	"mfcp/internal/core"
	"mfcp/internal/mat"
	"mfcp/internal/metrics"
	"mfcp/internal/mfcperr"
	"mfcp/internal/obs"
	"mfcp/internal/sched"
	"mfcp/internal/workload"
)

// Predictor is the prediction interface the platform drives (satisfied by
// every baseline and MFCP trainer).
type Predictor interface {
	Name() string
	Predict(round []int) (T, A *mat.Dense)
}

// MethodName selects the prediction method for a platform run.
type MethodName string

// Supported methods.
const (
	MethodTAM    MethodName = "tam"
	MethodTSM    MethodName = "tsm"
	MethodUCB    MethodName = "ucb"
	MethodMFCPAD MethodName = "mfcp-ad"
	MethodMFCPFG MethodName = "mfcp-fg"
)

// Config parameterizes a platform simulation.
type Config struct {
	// Scenario builds the fleet, pool, and measurements.
	Scenario workload.Config
	// Method selects the predictor (default mfcp-fg).
	Method MethodName
	// Backend selects the predictor backend family serving rounds: "mlp"
	// (the default — the paper's per-cluster MLP pair), "ensemble"
	// (bootstrap ensembles with calibrated spread; required for
	// Match.RiskAversion > 0), or "table" (quantized linear models for the
	// cheap-inference regime). Non-MLP backends pair with Method tsm — they
	// are supervised predictors, not regret-descent trainers — and any
	// other combination is rejected.
	Backend string
	// Match configures the matcher.
	Match core.MatchConfig
	// Rounds is the number of allocation rounds to simulate (default 50).
	Rounds int
	// RoundSize is tasks per round (default 5).
	RoundSize int
	// Parallel selects the resource-sharing scheduler of §3.4.
	Parallel bool
	// Drift optionally assigns each cluster a slow performance drift over
	// rounds (len = fleet size); execution times and the per-round ground
	// truth both scale by the drift factor. nil = static clusters.
	Drift []cluster.Drift
	// TrainFrac splits profiling tasks from live-traffic tasks (default 0.75).
	TrainFrac float64
	// PretrainEpochs and RegretEpochs budget training (defaults 200, 120).
	PretrainEpochs int
	RegretEpochs   int
	// Hidden is the predictor architecture (default [16]).
	Hidden []int
	// WarmStart, when non-nil, skips method training entirely and serves
	// from a clone of the given predictor set (checkpoint resume uses this
	// to restore saved weights without re-running pretrain/regret descent).
	// Only predictor-backed methods (tsm, mfcp-*) support it.
	WarmStart *core.PredictorSet
	// Telemetry optionally receives the run's instruments: per-phase round
	// timings, solver convergence, ring/refit health, rolling quality (see
	// DESIGN.md "Observability"). Nil disables recording; the served
	// trajectory is bit-identical either way.
	Telemetry *obs.Registry
	// warmBackend, when non-nil, skips backend training and serves from a
	// snapshot of the given backend (checkpoint resume for non-MLP
	// backends; NewSession wires it from Checkpoint.Backend).
	warmBackend core.Backend
	// TraceHook, when non-nil, receives one RoundTrace per served round on
	// the serial reduce path, in round order. Timings are captured with
	// plain clock reads on the shards and never enter RoundReport, so the
	// served trajectory is bit-identical with tracing on or off
	// (TestTelemetryDoesNotPerturbTrajectory). The hook runs synchronously
	// inside the serving call; keep it cheap and do not call back into the
	// engine.
	TraceHook func(RoundTrace)
}

func (c *Config) fillDefaults() {
	if c.Method == "" {
		c.Method = MethodMFCPFG
	}
	if c.Backend == "" {
		c.Backend = core.BackendMLP
	}
	if c.Rounds == 0 {
		c.Rounds = 50
	}
	if c.RoundSize == 0 {
		c.RoundSize = 5
	}
	if c.TrainFrac == 0 {
		c.TrainFrac = 0.75
	}
	if c.PretrainEpochs == 0 {
		c.PretrainEpochs = 200
	}
	if c.RegretEpochs == 0 {
		c.RegretEpochs = 120
	}
	if c.Hidden == nil {
		c.Hidden = []int{16}
	}
	c.Match.FillDefaults()
}

// RoundReport records one executed allocation round.
type RoundReport struct {
	Round      int
	TaskIdx    []int
	Assignment []int
	// Regret, Reliability, Utilization score the matching against the
	// ground-truth cost matrices (normalized units).
	Eval metrics.Eval
	// Execution is the simulated run: wall-clock seconds, failures.
	Execution sched.Result
	// SolveIters is the predictive relaxed solve's iteration count
	// (Workspace.Info.Iters — the serving-side solve only, not the oracle).
	SolveIters int
	// WarmStarted reports whether that solve was seeded from a previous
	// round's relaxed iterate (MatchConfig.WarmStart).
	WarmStarted bool
	// ScreenReused counts tasks whose candidate sets were carried over by
	// incremental screening (MatchConfig.ScreenStaleTol); 0 on the dense
	// path and on full re-screens.
	ScreenReused int
	// Sparse reports which matching path solved this round: false for the
	// dense mirror-descent solve, true for the screened sparse pipeline.
	// AutoSparse additionally marks sparse rounds whose TopK was selected by
	// the AutoSparseTopK routing rule rather than configured explicitly.
	Sparse     bool
	AutoSparse bool
}

// RoundTrace is one served round's phase-timing record, delivered through
// Config.TraceHook (and, via Session.SetTraceHook, to the HTTP serving
// layer's /debug/traces ring). It is deliberately separate from
// RoundReport: reports are part of the deterministic trajectory and are
// compared bit for bit across worker counts, while wall-clock timings are
// inherently run-dependent.
type RoundTrace struct {
	// Round and Tasks identify the round; Sparse/AutoSparse mirror the
	// report's routing flags.
	Round      int
	Tasks      int
	Sparse     bool
	AutoSparse bool
	// Phase durations in nanoseconds. ScreenNs is nonzero only on the
	// sparse path; IngestNs only when observations are being collected
	// (online serving). SolveNs is the predictive solve (dense mirror
	// descent or the hierarchical cell solve). RoundNs spans the round's
	// full compute on its shard, excluding pipeline queue waits.
	PredictNs int64
	ScreenNs  int64
	SolveNs   int64
	ExecNs    int64
	IngestNs  int64
	RoundNs   int64
}

// Report aggregates a full simulation.
type Report struct {
	Method string
	Rounds []RoundReport
	// Means across rounds.
	MeanRegret      float64
	MeanReliability float64
	MeanUtilization float64
	MeanSuccessRate float64
	// TotalBusySeconds and TotalMakespanSeconds aggregate simulated time.
	TotalBusySeconds     float64
	TotalMakespanSeconds float64
	// Stopped is non-empty when the run ended early: "canceled" for a
	// context cancellation, "error" for a serving-path failure (e.g. a
	// screen-stage rejection). The report then covers only the rounds
	// served before the interruption, with means normalized over that
	// prefix.
	Stopped string
}

// Run executes a full platform simulation on the sharded serving engine
// (engine.go): rounds are sampled serially, evaluated across
// parallel.Workers() shards, and reduced in round order, so the report is
// bit-identical at any worker count.
func Run(cfg Config) (*Report, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with cooperative cancellation. Canceling the context aborts
// method training at its next phase boundary, or — once serving — drains
// the in-flight batch of rounds in round order and returns the partial
// report (Stopped = "canceled", means normalized over the served prefix)
// alongside an mfcperr.ErrCanceled-wrapped error.
func RunCtx(ctx context.Context, cfg Config) (*Report, error) {
	cfg.fillDefaults()
	e, err := newEngine(ctx, cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Method: e.method.Name()}
	served, err := e.serveCtx(ctx, rep, 0, cfg.Rounds)
	finalize(rep, served)
	if err != nil {
		if errors.Is(err, mfcperr.ErrCanceled) {
			rep.Stopped = "canceled"
		} else {
			rep.Stopped = "error"
		}
		return rep, err
	}
	return rep, nil
}

// buildMethod constructs the requested predictor. The context bounds
// training; a WarmStart set skips training entirely.
func buildMethod(ctx context.Context, cfg Config, s *workload.Scenario, train []int) (Predictor, error) {
	mc := cfg.Match
	// Incremental screening is a serving-engine feature; training solves
	// every instance from scratch. Stripping it here also keeps a
	// tol-with-auto-routed-TopK serving config (TopK set by newEngine, not
	// the user) from tripping the trainer's TopK>0 requirement.
	mc.ScreenStaleTol = 0
	if cfg.Parallel {
		for _, p := range s.Fleet {
			mc.Speedups = append(mc.Speedups, p.Speedup)
		}
	}
	if cfg.Backend != core.BackendMLP {
		if cfg.Method != MethodTSM {
			return nil, mfcperr.Wrap(mfcperr.ErrBadConfig, "platform: backend %q serves supervised predictions and requires method %q (got %q)", cfg.Backend, MethodTSM, cfg.Method)
		}
		if cfg.WarmStart != nil {
			return nil, mfcperr.Wrap(mfcperr.ErrBadConfig, "platform: backend %q cannot warm-start from a predictor set", cfg.Backend)
		}
		if cfg.warmBackend != nil {
			if err := cfg.warmBackend.Validate(s.M(), s.Features.Cols); err != nil {
				return nil, err
			}
			return &backendMethod{s: s, be: cfg.warmBackend.Snapshot(nil)}, nil
		}
		stream := s.Stream("backend-" + cfg.Backend)
		be, err := core.NewBackend(cfg.Backend, s.M(), s.Features.Cols, cfg.Hidden, stream.Split("init"))
		if err != nil {
			return nil, err
		}
		if err := be.Pretrain(ctx, s, train, cfg.PretrainEpochs, stream.Split("train")); err != nil {
			return nil, err
		}
		return &backendMethod{s: s, be: be}, nil
	}
	if cfg.WarmStart != nil {
		if err := cfg.WarmStart.Validate(s.M(), s.Features.Cols); err != nil {
			return nil, err
		}
		switch cfg.Method {
		case MethodTSM:
			return baselines.NewTSMFromSet(s, cfg.WarmStart.Clone()), nil
		case MethodMFCPAD, MethodMFCPFG:
			kind := core.AD
			if cfg.Method == MethodMFCPFG {
				kind = core.FG
			}
			return core.NewTrainerFromSet(s, cfg.WarmStart, core.Config{
				Kind: kind, Hidden: cfg.Hidden,
				RoundSize: cfg.RoundSize, Match: mc,
				Telemetry: cfg.Telemetry,
			}), nil
		default:
			return nil, mfcperr.Wrap(mfcperr.ErrBadConfig, "platform: method %q cannot warm-start from a predictor set", cfg.Method)
		}
	}
	switch cfg.Method {
	case MethodTAM:
		return baselines.NewTAM(s, train), nil
	case MethodTSM:
		return baselines.NewTSMCtx(ctx, s, train, cfg.Hidden, cfg.PretrainEpochs)
	case MethodUCB:
		return baselines.NewUCB(s, train, baselines.UCBConfig{Hidden: cfg.Hidden, Epochs: cfg.PretrainEpochs}), nil
	case MethodMFCPAD, MethodMFCPFG:
		kind := core.AD
		if cfg.Method == MethodMFCPFG {
			kind = core.FG
		}
		if cfg.Parallel && kind == core.AD {
			return nil, fmt.Errorf("platform: MFCP-AD requires the sequential (convex) setting; use mfcp-fg with -parallel")
		}
		return core.TrainCtx(ctx, s, train, core.Config{
			Kind: kind, Hidden: cfg.Hidden,
			PretrainEpochs: cfg.PretrainEpochs, Epochs: cfg.RegretEpochs,
			RoundSize: cfg.RoundSize, Match: mc,
			Telemetry: cfg.Telemetry,
		})
	default:
		return nil, fmt.Errorf("platform: unknown method %q", cfg.Method)
	}
}

// backendMethod adapts a pluggable core.Backend to the Predictor interface
// the platform drives. The serving engine predicts through the published
// snapshot (backendOf unwraps be), so Predict here is the cold path —
// harness-style one-shot evaluation — and allocates per call.
type backendMethod struct {
	s  *workload.Scenario
	be core.Backend
}

// Name labels reports with the supervised method and its backend family.
func (m *backendMethod) Name() string { return "TSM+" + m.be.BackendName() }

// Predict implements Predictor.
func (m *backendMethod) Predict(round []int) (T, A *mat.Dense) {
	Z := m.s.FeaturesOf(round)
	T, A = new(mat.Dense), new(mat.Dense)
	m.be.PredictInto(Z, m.be.NewWorkspace(), T, A)
	return T, A
}

// applyDrift scales row i of the true time matrix by cluster i's drift
// factor at the given round. nil drift is the identity.
func applyDrift(T *mat.Dense, drift []cluster.Drift, round int) {
	if drift == nil {
		return
	}
	for i := 0; i < T.Rows && i < len(drift); i++ {
		if f := drift[i].Factor(round); f != 1 {
			T.Row(i).Scale(f)
		}
	}
}

// scaleExecution applies the drift factors to a realized execution: busy
// times, per-task durations, and the derived makespan/utilization.
func scaleExecution(exec *sched.Result, assign []int, drift []cluster.Drift, round int) {
	if drift == nil {
		return
	}
	for j, i := range assign {
		if i < len(drift) {
			exec.TaskSeconds[j] *= drift[i].Factor(round)
		}
	}
	exec.Makespan = 0
	sum := 0.0
	for i := range exec.Busy {
		if i < len(drift) {
			exec.Busy[i] *= drift[i].Factor(round)
		}
		if exec.Busy[i] > exec.Makespan {
			exec.Makespan = exec.Busy[i]
		}
		sum += exec.Busy[i]
	}
	if exec.Makespan > 0 {
		exec.Utilization = sum / (float64(len(exec.Busy)) * exec.Makespan)
	}
}
