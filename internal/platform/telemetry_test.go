package platform

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mfcp/internal/matching"
	"mfcp/internal/metrics"
	"mfcp/internal/obs"
)

// TestTelemetryDoesNotPerturbTrajectory pins the observability contract:
// attaching a registry — labeled families included — and a trace hook
// changes nothing about the served trajectory, at any worker count. It also
// pins the hook's delivery contract: one RoundTrace per round, in round
// order, on the serial reduce path.
func TestTelemetryDoesNotPerturbTrajectory(t *testing.T) {
	base := mustRunOnlineAt(t, onlineTiny(MethodTSM), 1)
	for _, w := range []int{1, 2, 8} {
		cfg := onlineTiny(MethodTSM)
		cfg.Telemetry = obs.NewRegistry()
		var traces []RoundTrace
		cfg.TraceHook = func(tr RoundTrace) { traces = append(traces, tr) }
		rep := mustRunOnlineAt(t, cfg, w)
		sameTrajectory(t, "telemetry+tracing on vs off", &base.Report, &rep.Report)
		if len(traces) != len(rep.Rounds) {
			t.Fatalf("workers=%d: hook saw %d rounds, served %d", w, len(traces), len(rep.Rounds))
		}
		for i, tr := range traces {
			if tr.Round != i {
				t.Fatalf("workers=%d: trace %d carries round %d — hook must fire in round order", w, i, tr.Round)
			}
			if tr.Tasks != len(rep.Rounds[i].TaskIdx) {
				t.Fatalf("workers=%d round %d: trace tasks %d != report %d", w, i, tr.Tasks, len(rep.Rounds[i].TaskIdx))
			}
			if tr.PredictNs <= 0 || tr.SolveNs <= 0 || tr.ExecNs <= 0 || tr.RoundNs <= 0 {
				t.Fatalf("workers=%d round %d: zero phase timing: %+v", w, i, tr)
			}
		}
	}
}

// TestSparseTraceCarriesScreenPhase runs the screened pipeline with a trace
// hook and asserts the screener-stage timings survive the channel handoff
// to the solver pool.
func TestSparseTraceCarriesScreenPhase(t *testing.T) {
	cfg := tinyCfg(MethodTSM)
	cfg.Match.TopK = 2
	var traces []RoundTrace
	cfg.TraceHook = func(tr RoundTrace) { traces = append(traces, tr) }
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != len(rep.Rounds) {
		t.Fatalf("hook saw %d rounds, served %d", len(traces), len(rep.Rounds))
	}
	for i, tr := range traces {
		if !tr.Sparse || tr.AutoSparse {
			t.Fatalf("round %d: Sparse=%v AutoSparse=%v, want sparse explicit", i, tr.Sparse, tr.AutoSparse)
		}
		if tr.PredictNs <= 0 || tr.ScreenNs <= 0 || tr.SolveNs <= 0 {
			t.Fatalf("round %d: missing sparse phase timings: %+v", i, tr)
		}
		if tr.RoundNs < tr.PredictNs+tr.ScreenNs {
			t.Fatalf("round %d: RoundNs %d excludes the screener stage (predict %d + screen %d)",
				i, tr.RoundNs, tr.PredictNs, tr.ScreenNs)
		}
	}
}

// TestRingOverflowSurfaced injects more observations than the ingest ring
// holds and asserts the overflow reaches both the report and the registry —
// the bug this PR fixes was Dropped() having no consumer at all.
func TestRingOverflowSurfaced(t *testing.T) {
	cfg := onlineTiny(MethodTSM)
	cfg.Telemetry = obs.NewRegistry()
	testWindowHook = func(e *engine, k0 int) {
		if k0 != 0 {
			return
		}
		// Overfill the ring with synthetic late-round observations; the real
		// window's pushes already consumed part of the capacity.
		for i := 0; i < e.obs.Cap()+7; i++ {
			e.obs.Push(Observation{Cluster: 0, TaskIdx: 0, Round: 1000 + i, TimeNorm: 0.5, Succeeded: true})
		}
	}
	defer func() { testWindowHook = nil }()

	rep, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RingDropped == 0 {
		t.Fatal("OnlineReport.RingDropped = 0 after overfilling the ring")
	}
	var buf bytes.Buffer
	if err := cfg.Telemetry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mfcp_ring_dropped_total") ||
		strings.Contains(buf.String(), "mfcp_ring_dropped_total 0\n") {
		t.Fatalf("registry did not surface the drops:\n%s", buf.String())
	}
}

// TestEngineExportsSeries runs a small online simulation with telemetry and
// asserts every advertised series family shows up in the export.
func TestEngineExportsSeries(t *testing.T) {
	cfg := onlineTiny(MethodTSM)
	cfg.Telemetry = obs.NewRegistry()
	rep, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refits == 0 {
		t.Fatal("no refits; the telemetry run is not exercising the loop")
	}
	var buf bytes.Buffer
	if err := cfg.Telemetry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"mfcp_rounds_served_total 9",
		"mfcp_tasks_served_total 36",
		"mfcp_round_seconds_count 9",
		"mfcp_phase_sample_seconds_count",
		"mfcp_phase_predict_seconds_count 9",
		"mfcp_phase_solve_seconds_count 9",
		"mfcp_phase_exec_seconds_count 9",
		"mfcp_phase_ingest_seconds_count 9",
		"mfcp_phase_reduce_seconds_count",
		"mfcp_refit_seconds_count 3",
		"mfcp_refits_total 3",
		"mfcp_solver_solves_total 9",
		"mfcp_solver_iterations_count 9",
		"mfcp_repair_moves_count 9",
		"mfcp_repair_cost_delta_count 9",
		"mfcp_ring_dropped_total 0",
		"mfcp_ring_ingested_total",
		"mfcp_ring_depth",
		"mfcp_snapshot_version 3",
		"mfcp_snapshot_lag",
		"mfcp_rolling_regret",
		"mfcp_rolling_reliability",
		"mfcp_embed_cache_hits_total",
		"mfcp_embed_cache_misses_total",
		`mfcp_rounds_by_route_total{route="dense"} 9`,
		`mfcp_rounds_by_route_total{route="sparse"} 0`,
		`mfcp_rounds_by_route_total{route="autosparse"} 0`,
		`mfcp_route_round_seconds_count{route="dense"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full export:\n%s", out)
	}
}

// TestTrainerExportsSeries checks the training-side instruments land when a
// regret-trained method runs with telemetry attached.
func TestTrainerExportsSeries(t *testing.T) {
	cfg := tinyCfg(MethodMFCPFG)
	cfg.Telemetry = obs.NewRegistry()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Telemetry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"mfcp_train_pretrain_seconds_count 1",
		"mfcp_train_epoch_seconds_count 4",
		"mfcp_train_epochs_total 4",
		"mfcp_train_regret",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q in:\n%s", want, out)
		}
	}
}

// TestTelemetryRecordingZeroAllocs pins the hot-path contract at the engine
// layer: everything evalRound and the reduce path record per round stays off
// the heap.
func TestTelemetryRecordingZeroAllocs(t *testing.T) {
	met := newEngineMetrics(obs.NewRegistry(), "mlp")
	si := matching.SolveInfo{Iters: 40, Converged: true, FinalDelta: 1e-7}
	ri := matching.RepairInfo{FeasMoves: 1, Moves: 2, Swaps: 1, CostBefore: 3, CostAfter: 2.5}
	rr := RoundReport{TaskIdx: []int{1, 2, 3}, Eval: metrics.Eval{Regret: 0.1, Reliability: 0.9}}
	if n := testing.AllocsPerRun(1000, func() {
		met.predict.Observe(time.Microsecond)
		met.round.Observe(time.Millisecond)
		met.routeSecDense.Observe(0.001)
		met.observeSolve(si, ri)
		met.observeReduced(&rr)
		met.observeSnapshot(1, 2)
	}); n != 0 {
		t.Fatalf("telemetry recording allocated %v objects/op, want 0", n)
	}

	// Disabled telemetry must be equally silent.
	off := newEngineMetrics(nil, "none")
	if n := testing.AllocsPerRun(1000, func() {
		off.round.Observe(time.Millisecond)
		off.routeSecDense.Observe(0.001)
		off.observeSolve(si, ri)
		off.observeReduced(&rr)
	}); n != 0 {
		t.Fatalf("disabled telemetry allocated %v objects/op, want 0", n)
	}
}
