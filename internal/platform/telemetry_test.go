package platform

import (
	"bytes"
	"strings"
	"testing"

	"mfcp/internal/matching"
	"mfcp/internal/metrics"
	"mfcp/internal/obs"
)

// TestTelemetryDoesNotPerturbTrajectory pins the observability contract:
// attaching a registry changes nothing about the served trajectory, at any
// worker count.
func TestTelemetryDoesNotPerturbTrajectory(t *testing.T) {
	base := mustRunOnlineAt(t, onlineTiny(MethodTSM), 1)
	for _, w := range []int{1, 2, 8} {
		cfg := onlineTiny(MethodTSM)
		cfg.Telemetry = obs.NewRegistry()
		rep := mustRunOnlineAt(t, cfg, w)
		sameTrajectory(t, "telemetry on vs off", &base.Report, &rep.Report)
	}
}

// TestRingOverflowSurfaced injects more observations than the ingest ring
// holds and asserts the overflow reaches both the report and the registry —
// the bug this PR fixes was Dropped() having no consumer at all.
func TestRingOverflowSurfaced(t *testing.T) {
	cfg := onlineTiny(MethodTSM)
	cfg.Telemetry = obs.NewRegistry()
	testWindowHook = func(e *engine, k0 int) {
		if k0 != 0 {
			return
		}
		// Overfill the ring with synthetic late-round observations; the real
		// window's pushes already consumed part of the capacity.
		for i := 0; i < e.obs.Cap()+7; i++ {
			e.obs.Push(Observation{Cluster: 0, TaskIdx: 0, Round: 1000 + i, TimeNorm: 0.5, Succeeded: true})
		}
	}
	defer func() { testWindowHook = nil }()

	rep, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RingDropped == 0 {
		t.Fatal("OnlineReport.RingDropped = 0 after overfilling the ring")
	}
	var buf bytes.Buffer
	if err := cfg.Telemetry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mfcp_ring_dropped_total") ||
		strings.Contains(buf.String(), "mfcp_ring_dropped_total 0\n") {
		t.Fatalf("registry did not surface the drops:\n%s", buf.String())
	}
}

// TestEngineExportsSeries runs a small online simulation with telemetry and
// asserts every advertised series family shows up in the export.
func TestEngineExportsSeries(t *testing.T) {
	cfg := onlineTiny(MethodTSM)
	cfg.Telemetry = obs.NewRegistry()
	rep, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refits == 0 {
		t.Fatal("no refits; the telemetry run is not exercising the loop")
	}
	var buf bytes.Buffer
	if err := cfg.Telemetry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"mfcp_rounds_served_total 9",
		"mfcp_tasks_served_total 36",
		"mfcp_round_seconds_count 9",
		"mfcp_phase_sample_seconds_count",
		"mfcp_phase_predict_seconds_count 9",
		"mfcp_phase_solve_seconds_count 9",
		"mfcp_phase_exec_seconds_count 9",
		"mfcp_phase_ingest_seconds_count 9",
		"mfcp_phase_reduce_seconds_count",
		"mfcp_refit_seconds_count 3",
		"mfcp_refits_total 3",
		"mfcp_solver_solves_total 9",
		"mfcp_solver_iterations_count 9",
		"mfcp_repair_moves_count 9",
		"mfcp_repair_cost_delta_count 9",
		"mfcp_ring_dropped_total 0",
		"mfcp_ring_ingested_total",
		"mfcp_ring_depth",
		"mfcp_snapshot_version 3",
		"mfcp_snapshot_lag",
		"mfcp_rolling_regret",
		"mfcp_rolling_reliability",
		"mfcp_embed_cache_hits_total",
		"mfcp_embed_cache_misses_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full export:\n%s", out)
	}
}

// TestTrainerExportsSeries checks the training-side instruments land when a
// regret-trained method runs with telemetry attached.
func TestTrainerExportsSeries(t *testing.T) {
	cfg := tinyCfg(MethodMFCPFG)
	cfg.Telemetry = obs.NewRegistry()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Telemetry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"mfcp_train_pretrain_seconds_count 1",
		"mfcp_train_epoch_seconds_count 4",
		"mfcp_train_epochs_total 4",
		"mfcp_train_regret",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q in:\n%s", want, out)
		}
	}
}

// TestTelemetryRecordingZeroAllocs pins the hot-path contract at the engine
// layer: everything evalRound and the reduce path record per round stays off
// the heap.
func TestTelemetryRecordingZeroAllocs(t *testing.T) {
	met := newEngineMetrics(obs.NewRegistry())
	si := matching.SolveInfo{Iters: 40, Converged: true, FinalDelta: 1e-7}
	ri := matching.RepairInfo{FeasMoves: 1, Moves: 2, Swaps: 1, CostBefore: 3, CostAfter: 2.5}
	rr := RoundReport{TaskIdx: []int{1, 2, 3}, Eval: metrics.Eval{Regret: 0.1, Reliability: 0.9}}
	if n := testing.AllocsPerRun(1000, func() {
		rsp := met.round.Start()
		psp := met.predict.Start()
		psp.End()
		met.observeSolve(si, ri)
		met.observeReduced(&rr)
		met.observeSnapshot(1, 2)
		rsp.End()
	}); n != 0 {
		t.Fatalf("telemetry recording allocated %v objects/op, want 0", n)
	}

	// Disabled telemetry must be equally silent.
	off := newEngineMetrics(nil)
	if n := testing.AllocsPerRun(1000, func() {
		rsp := off.round.Start()
		off.observeSolve(si, ri)
		off.observeReduced(&rr)
		rsp.End()
	}); n != 0 {
		t.Fatalf("disabled telemetry allocated %v objects/op, want 0", n)
	}
}
