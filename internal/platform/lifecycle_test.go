package platform

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"mfcp/internal/core"
	"mfcp/internal/mfcperr"
	"mfcp/internal/parallel"
)

func onlineCkCfg(path string) OnlineConfig {
	cfg := OnlineConfig{Config: tinyCfg(MethodTSM), RefitEvery: 3, RefitEpochs: 5}
	cfg.Rounds = 12
	cfg.CheckpointPath = path
	return cfg
}

// TestRunOnlineResumeBitIdentical is the acceptance test for checkpoint
// resume: a run canceled at a window boundary and resumed from its
// checkpoint must retrace the uninterrupted run's trajectory bit for bit —
// per-round assignments, executions, learning curve, and final aggregates —
// at several worker counts.
func TestRunOnlineResumeBitIdentical(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			defer parallel.SetWorkers(parallel.SetWorkers(w))
			path := filepath.Join(t.TempDir(), "online.ckpt")

			full, err := RunOnline(onlineCkCfg(""))
			if err != nil {
				t.Fatal(err)
			}

			// Interrupt after the window starting at round 3 completes: the
			// loop observes the cancellation at the next boundary, so the
			// partial run covers rounds 0..5 and two refits.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			testWindowHook = func(e *engine, k0 int) {
				if k0 == 3 {
					cancel()
				}
			}
			partial, err := RunOnlineCtx(ctx, onlineCkCfg(path))
			testWindowHook = nil
			if !errors.Is(err, mfcperr.ErrCanceled) {
				t.Fatalf("want ErrCanceled, got %v", err)
			}
			if partial == nil || partial.Stopped != "canceled" {
				t.Fatalf("partial report: %+v", partial)
			}
			if len(partial.Rounds) != 6 || partial.Refits != 2 {
				t.Fatalf("partial served %d rounds, %d refits", len(partial.Rounds), partial.Refits)
			}
			if !reflect.DeepEqual(partial.Rounds, full.Rounds[:6]) {
				t.Fatal("partial trajectory is not a prefix of the full one")
			}

			ck, err := core.LoadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if ck.Round != 6 || ck.Refits != 2 {
				t.Fatalf("checkpoint at round %d, %d refits", ck.Round, ck.Refits)
			}

			rcfg := onlineCkCfg("")
			rcfg.Resume = ck
			resumed, err := RunOnline(rcfg)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.ResumedAt != 6 {
				t.Fatalf("ResumedAt %d", resumed.ResumedAt)
			}
			if len(resumed.Rounds) != 6 {
				t.Fatalf("resumed served %d rounds", len(resumed.Rounds))
			}
			if !reflect.DeepEqual(resumed.Rounds, full.Rounds[6:]) {
				t.Fatal("resumed trajectory diverged from the uninterrupted run")
			}
			if !reflect.DeepEqual(resumed.WindowRegret, full.WindowRegret) {
				t.Fatalf("learning curves differ: %v vs %v", resumed.WindowRegret, full.WindowRegret)
			}
			if resumed.Refits != full.Refits {
				t.Fatalf("refits %d vs %d", resumed.Refits, full.Refits)
			}
			if resumed.MeanRegret != full.MeanRegret ||
				resumed.MeanReliability != full.MeanReliability ||
				resumed.MeanUtilization != full.MeanUtilization ||
				resumed.MeanSuccessRate != full.MeanSuccessRate ||
				resumed.TotalBusySeconds != full.TotalBusySeconds ||
				resumed.TotalMakespanSeconds != full.TotalMakespanSeconds {
				t.Fatal("aggregate metrics diverged across the resume")
			}
		})
	}
}

func TestRunOnlineResumeExtendsHorizon(t *testing.T) {
	path := filepath.Join(t.TempDir(), "online.ckpt")
	cfg := onlineCkCfg(path)
	cfg.Rounds = 3 // one full window, checkpointed at round 3
	if _, err := RunOnline(cfg); err != nil {
		t.Fatal(err)
	}
	ck, err := core.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Round != 3 {
		t.Fatalf("checkpoint round %d", ck.Round)
	}
	// Rounds is excluded from the fingerprint, so the resume may extend it.
	ext := onlineCkCfg("")
	ext.Rounds = 9
	ext.Resume = ck
	rep, err := RunOnline(ext)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 6 || rep.ResumedAt != 3 {
		t.Fatalf("extended run served %d rounds from %d", len(rep.Rounds), rep.ResumedAt)
	}
}

func TestRunOnlineResumeRejectsMismatchedConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "online.ckpt")
	cfg := onlineCkCfg(path)
	cfg.Rounds = 3
	if _, err := RunOnline(cfg); err != nil {
		t.Fatal(err)
	}
	ck, err := core.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := onlineCkCfg("")
	bad.RefitEpochs = 7 // trajectory-shaping field differs
	bad.Resume = ck
	if _, err := RunOnline(bad); !errors.Is(err, mfcperr.ErrBadConfig) {
		t.Fatalf("mismatched config accepted: %v", err)
	}
	// A checkpoint stripped of its predictor set is corrupt, not resumable.
	ck.Set = nil
	good := onlineCkCfg("")
	good.Resume = ck
	if _, err := RunOnline(good); !errors.Is(err, mfcperr.ErrCorruptCheckpoint) {
		t.Fatalf("set-less checkpoint accepted: %v", err)
	}
}

// TestRunOnlineCancelAsyncNoLeak cancels a run with background refits and
// checks the async refit goroutine is joined before RunOnlineCtx returns
// (run under -race, this also exercises the snapshot handoff).
func TestRunOnlineCancelAsyncNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := OnlineConfig{Config: tinyCfg(MethodTSM), RefitEvery: 2, RefitEpochs: 5, AsyncRefit: true}
	cfg.Rounds = 10
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testWindowHook = func(e *engine, k0 int) {
		if k0 == 4 {
			cancel()
		}
	}
	defer func() { testWindowHook = nil }()
	rep, err := RunOnlineCtx(ctx, cfg)
	if !errors.Is(err, mfcperr.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if rep.Stopped != "canceled" || len(rep.Rounds) != 6 {
		t.Fatalf("partial report: stopped=%q rounds=%d", rep.Stopped, len(rep.Rounds))
	}
	// The worker pool's transient goroutines drain on their own; the refit
	// goroutine must already be gone. Poll briefly to let the scheduler
	// retire finished goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

func TestRunCtxCanceledDuringTraining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, tinyCfg(MethodTSM)); !errors.Is(err, mfcperr.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestRunOnlinePeriodicCheckpointCadence(t *testing.T) {
	// CheckpointEvery=2 over 4 windows saves after refits 2 and 4, so the
	// file left on disk is the round-12 snapshot.
	path := filepath.Join(t.TempDir(), "online.ckpt")
	cfg := onlineCkCfg(path)
	cfg.CheckpointEvery = 2
	if _, err := RunOnline(cfg); err != nil {
		t.Fatal(err)
	}
	ck, err := core.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Round != 12 || ck.Refits != 4 {
		t.Fatalf("last periodic checkpoint at round %d, %d refits", ck.Round, ck.Refits)
	}
}
