package platform

import (
	"bytes"
	"strings"
	"testing"

	"mfcp/internal/obs"
	"mfcp/internal/parallel"
)

// serveIters serves `calls` single-round batches on one engine and returns
// (total predictive-solve iterations, warm-started round count). One round
// per ServeRounds call makes every batch after the first eligible for a
// warm seed when mc.WarmStart is on.
func serveIters(t *testing.T, warm bool, calls int) (int, int) {
	t.Helper()
	cfg := tinyCfg(MethodTSM)
	cfg.Match.WarmStart = warm
	// Loosen the early-stop tolerance so cold solves converge inside the
	// iteration budget — the savings are measured in iterations-to-
	// convergence, which requires convergence to actually trigger.
	cfg.Match.SolveTol = 1e-4
	cfg.Match.SolveIters = 2000
	en, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	iters, warmed := 0, 0
	for c := 0; c < calls; c++ {
		rep, err := en.ServeRounds(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, rr := range rep.Rounds {
			iters += rr.SolveIters
			if rr.WarmStarted {
				warmed++
			}
		}
	}
	return iters, warmed
}

// TestWarmStartSavesIterations is the headline acceptance check: seeding
// consecutive rounds' solves with the previous relaxed iterate converges
// in measurably fewer mirror-descent iterations than cold uniform starts,
// observed through Workspace.Info (surfaced as RoundReport.SolveIters and
// the mfcp_solver_iters_warm gauge).
func TestWarmStartSavesIterations(t *testing.T) {
	const calls = 24
	coldIters, coldWarmed := serveIters(t, false, calls)
	warmIters, warmWarmed := serveIters(t, true, calls)
	if coldWarmed != 0 {
		t.Fatalf("cold run reported %d warm-started rounds", coldWarmed)
	}
	// Every batch after the first seeds from its predecessor's capture.
	if want := calls - 1; warmWarmed != want {
		t.Fatalf("warm run warm-started %d rounds, want %d", warmWarmed, want)
	}
	if warmIters >= coldIters {
		t.Fatalf("warm starts did not save iterations: warm %d vs cold %d", warmIters, coldIters)
	}
}

// TestWarmStartWorkerCountInvariance pins that the warm-start trajectory —
// including which rounds were seeded and how fast they converged — does
// not depend on the worker count. This is why the serveCtx batch size is a
// fixed constant rather than a multiple of parallel.Workers().
func TestWarmStartWorkerCountInvariance(t *testing.T) {
	cfg := tinyCfg(MethodTSM)
	cfg.Rounds = 40 // spans two serveCtx batches: the second is warm-seeded
	cfg.Match.WarmStart = true
	base := mustRunAt(t, cfg, 1)
	warmed := 0
	for _, rr := range base.Rounds {
		if rr.WarmStarted {
			warmed++
		}
	}
	if warmed != 40-32 {
		t.Fatalf("warm-started rounds = %d, want the second batch's %d", warmed, 40-32)
	}
	for _, w := range []int{2, 8} {
		sameTrajectory(t, "warm workers", base, mustRunAt(t, cfg, w))
	}
}

// TestSparseEngineWorkerCountInvariance serves through the full
// production-dimension pipeline — screening, hierarchical cell solve,
// sparse repair, warm starts — and asserts the trajectory is bit-identical
// at any worker count and structurally sound.
func TestSparseEngineWorkerCountInvariance(t *testing.T) {
	cfg := tinyCfg(MethodTSM)
	cfg.Rounds = 12
	cfg.Match.TopK = 2
	cfg.Match.Cells = 2
	cfg.Match.WarmStart = true
	base := mustRunAt(t, cfg, 1)
	if len(base.Rounds) != 12 {
		t.Fatalf("rounds %d", len(base.Rounds))
	}
	for _, rr := range base.Rounds {
		if len(rr.Assignment) != cfg.RoundSize {
			t.Fatalf("round %d assignment shape %d", rr.Round, len(rr.Assignment))
		}
		if rr.SolveIters <= 0 {
			t.Fatalf("round %d recorded no solver iterations", rr.Round)
		}
	}
	for _, w := range []int{2, 8} {
		sameTrajectory(t, "sparse workers", base, mustRunAt(t, cfg, w))
	}
}

// TestOnlineWarmInvalidatedByRefit pins the invalidation rule: a capture
// taken against one predictor version must not seed solves against the
// next. With RefitEvery == window == batch, every window after the first
// starts right after a refit published a new version, so no round is ever
// warm-started — the warm path degrades to cold rather than seeding from
// stale predictions.
func TestOnlineWarmInvalidatedByRefit(t *testing.T) {
	cfg := onlineTiny(MethodTSM)
	cfg.Match.WarmStart = true
	rep := mustRunOnlineAt(t, cfg, 2)
	for _, rr := range rep.Rounds {
		if rr.WarmStarted {
			t.Fatalf("round %d warm-started across a refit boundary", rr.Round)
		}
	}
	// The trajectory must equal the non-warm online run exactly: every
	// batch was invalidated, so WarmStart on/off is indistinguishable.
	plain := mustRunOnlineAt(t, onlineTiny(MethodTSM), 2)
	for k := range plain.Rounds {
		if plain.Rounds[k].Eval != rep.Rounds[k].Eval {
			t.Fatalf("round %d diverged from the cold trajectory", k)
		}
	}
}

// TestWarmGaugeExported asserts the iteration gauges and counters land in
// the Prometheus export when warm rounds are served.
func TestWarmGaugeExported(t *testing.T) {
	cfg := tinyCfg(MethodTSM)
	cfg.Rounds = 40
	cfg.Match.WarmStart = true
	cfg.Match.TopK = 2
	cfg.Telemetry = obs.NewRegistry()
	defer parallel.SetWorkers(parallel.SetWorkers(2))
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Telemetry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, series := range []string{
		"mfcp_solver_iters_warm", "mfcp_solver_iters_cold",
		"mfcp_warm_rounds_total", "mfcp_prune_survivors_total",
		"mfcp_prune_candidates_total",
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("export missing %s:\n%s", series, out)
		}
	}
	if strings.Contains(out, "mfcp_warm_rounds_total 0\n") {
		t.Fatal("no warm rounds recorded despite WarmStart")
	}
	if strings.Contains(out, "mfcp_prune_survivors_total 0\n") {
		t.Fatal("no pruning survivors recorded despite TopK")
	}
}
