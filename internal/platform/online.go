package platform

import (
	"fmt"

	"mfcp/internal/baselines"
	"mfcp/internal/core"
	"mfcp/internal/mat"
	"mfcp/internal/metrics"
	"mfcp/internal/nn"
	"mfcp/internal/rng"
	"mfcp/internal/sched"
	"mfcp/internal/workload"
)

// Observation is one realized (cluster, task) execution the platform can
// learn from: the noisy wall-clock it actually saw and whether the task
// completed. Online learning is partial-feedback — only assigned pairs are
// observed.
type Observation struct {
	Cluster int
	TaskIdx int
	// TimeNorm is the realized execution time in the scenario's normalized
	// units.
	TimeNorm float64
	// Succeeded reports task completion.
	Succeeded bool
}

// OnlineConfig extends a platform run with periodic predictor refitting
// from live observations.
type OnlineConfig struct {
	Config
	// RefitEvery triggers a fine-tune after this many rounds (default 10).
	RefitEvery int
	// RefitEpochs is the MSE fine-tune budget per refit (default 30).
	RefitEpochs int
	// BufferCap bounds the observation buffer; oldest observations are
	// dropped first (default 512).
	BufferCap int
}

func (c *OnlineConfig) fillDefaults() {
	c.Config.fillDefaults()
	if c.RefitEvery == 0 {
		c.RefitEvery = 10
	}
	if c.RefitEpochs == 0 {
		c.RefitEpochs = 30
	}
	if c.BufferCap == 0 {
		c.BufferCap = 512
	}
}

// OnlineReport extends Report with refit accounting and a learning curve.
type OnlineReport struct {
	Report
	// Refits counts fine-tune events.
	Refits int
	// WindowRegret holds the mean regret of each RefitEvery-round window,
	// the platform's learning curve.
	WindowRegret []float64
}

// RunOnline simulates the platform with in-the-loop learning: each executed
// round contributes (feature, realized time, success) observations for the
// pairs it actually ran, and every RefitEvery rounds the predictors
// fine-tune on the buffered observations. Only predictor-backed methods
// (tsm, mfcp-*) support refitting; others return an error.
func RunOnline(cfg OnlineConfig) (*OnlineReport, error) {
	cfg.fillDefaults()
	s, err := workload.New(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	train, live := s.Split(cfg.TrainFrac)
	method, err := buildMethod(cfg.Config, s, train)
	if err != nil {
		return nil, err
	}
	set := predictorSetOf(method)
	if set == nil {
		return nil, fmt.Errorf("platform: method %q has no refittable predictors", cfg.Method)
	}
	mc := cfg.Match
	if cfg.Parallel && mc.Speedups == nil {
		for _, p := range s.Fleet {
			mc.Speedups = append(mc.Speedups, p.Speedup)
		}
	}
	mode := sched.Sequential
	if cfg.Parallel {
		mode = sched.Parallel
	}

	roundStream := s.Stream("platform-rounds")
	execStream := s.Stream("platform-exec")
	refitStream := s.Stream("platform-refit")
	rep := &OnlineReport{Report: Report{Method: method.Name() + "+online"}}
	var buffer []Observation
	windowSum, windowN := 0.0, 0

	for k := 0; k < cfg.Rounds; k++ {
		round := s.SampleRound(live, cfg.RoundSize, roundStream)
		That, Ahat := set.Predict(s.FeaturesOf(round))
		assign := mc.Solve(That, Ahat)

		trueT, trueA := s.TrueMatrices(round)
		applyDrift(trueT, cfg.Drift, k)
		trueProb := mc.Problem(trueT, trueA)
		oracle := mc.Solve(trueT, trueA)
		ev := metrics.Evaluate(trueProb, assign, oracle)
		exec := sched.Execute(s.Fleet, gatherTasks(s, round), assign, mode, execStream.SplitIndexed("round", k))
		scaleExecution(&exec, assign, cfg.Drift, k)

		// Collect partial-feedback observations: the realized standalone
		// duration of each (assigned cluster, task) pair, normalized like
		// the training labels.
		for j, i := range assign {
			buffer = append(buffer, Observation{
				Cluster:   i,
				TaskIdx:   round[j],
				TimeNorm:  exec.TaskSeconds[j] / s.TimeScale,
				Succeeded: exec.Success[j],
			})
		}
		if len(buffer) > cfg.BufferCap {
			buffer = buffer[len(buffer)-cfg.BufferCap:]
		}

		rep.Rounds = append(rep.Rounds, RoundReport{Round: k, TaskIdx: round, Assignment: assign, Eval: ev, Execution: exec})
		rep.MeanRegret += ev.Regret
		rep.MeanReliability += ev.Reliability
		rep.MeanUtilization += ev.Utilization
		rep.MeanSuccessRate += exec.SuccessRate
		for _, b := range exec.Busy {
			rep.TotalBusySeconds += b
		}
		rep.TotalMakespanSeconds += exec.Makespan
		windowSum += ev.Regret
		windowN++

		if (k+1)%cfg.RefitEvery == 0 {
			refit(set, s, train, buffer, cfg.RefitEpochs, refitStream.SplitIndexed("refit", rep.Refits))
			rep.Refits++
			rep.WindowRegret = append(rep.WindowRegret, windowSum/float64(windowN))
			windowSum, windowN = 0, 0
		}
	}
	n := float64(cfg.Rounds)
	rep.MeanRegret /= n
	rep.MeanReliability /= n
	rep.MeanUtilization /= n
	rep.MeanSuccessRate /= n
	return rep, nil
}

// predictorSetOf extracts the refittable predictor set from a method, or
// nil when the method has none (TAM, UCB, Oracle).
func predictorSetOf(m Predictor) *core.PredictorSet {
	switch v := m.(type) {
	case *core.Trainer:
		return v.Set
	case *baselines.TSM:
		return v.PredictorSet()
	default:
		return nil
	}
}

// refit fine-tunes each cluster's predictors on its buffered observations
// MIXED with the original profiling labels (experience replay). Fine-tuning
// on the small partial-feedback buffer alone catastrophically forgets tasks
// outside it; replay anchors the update. Live observations are weighted by
// duplication so fresh (possibly drifted) signal still dominates where it
// exists. Time targets are realized normalized durations; reliability
// targets the 0/1 completion indicator (whose MSE minimizer is the
// Bernoulli mean).
func refit(set *core.PredictorSet, s *workload.Scenario, train []int, buffer []Observation, epochs int, r *rng.Source) {
	m := set.M()
	perCluster := make([][]Observation, m)
	for _, ob := range buffer {
		perCluster[ob.Cluster] = append(perCluster[ob.Cluster], ob)
	}
	const liveWeight = 3 // each live observation counts as this many rows
	for i := 0; i < m; i++ {
		obs := perCluster[i]
		if len(obs) < 4 {
			continue // too little signal to fine-tune on
		}
		// Estimate the cluster's current speed factor from paired
		// live-vs-profiled durations of the same tasks (recent half of the
		// buffer). Replay targets are rescaled by it, so the anchor tracks
		// regime changes instead of fighting them.
		fHat := 0.0
		cnt := 0
		for _, ob := range obs[len(obs)/2:] {
			if base := s.MeasT.At(i, ob.TaskIdx); base > 1e-9 {
				fHat += ob.TimeNorm / base
				cnt++
			}
		}
		if cnt > 0 {
			fHat /= float64(cnt)
		} else {
			fHat = 1
		}
		rows := len(train) + liveWeight*len(obs)
		X := mat.NewDense(rows, s.Features.Cols)
		tTargets := mat.NewVec(rows)
		aTargets := mat.NewVec(rows)
		// Replay: the original profiling measurements, drift-corrected.
		for k, j := range train {
			copy(X.Row(k), s.Features.Row(j))
			tTargets[k] = s.MeasT.At(i, j) * fHat
			aTargets[k] = s.MeasA.At(i, j)
		}
		// Live observations, duplicated for weight.
		at := len(train)
		for _, ob := range obs {
			for d := 0; d < liveWeight; d++ {
				copy(X.Row(at), s.Features.Row(ob.TaskIdx))
				tTargets[at] = ob.TimeNorm
				if ob.Succeeded {
					aTargets[at] = 1
				}
				at++
			}
		}
		timeCfg := nn.TrainMSEConfig{Epochs: epochs, BatchSize: 16, Optimizer: nn.NewAdam(5e-4)}
		nn.TrainMSE(set.Preds[i].Time, X, tTargets, timeCfg, r.SplitIndexed("time", i))
		relCfg := nn.TrainMSEConfig{Epochs: epochs, BatchSize: 16, Optimizer: nn.NewAdam(5e-4)}
		nn.TrainMSE(set.Preds[i].Rel, X, aTargets, relCfg, r.SplitIndexed("rel", i))
	}
}
