package platform

import (
	"context"
	"errors"
	"fmt"

	"mfcp/internal/baselines"
	"mfcp/internal/core"
	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
	"mfcp/internal/nn"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
	"mfcp/internal/workload"
)

// Observation is one realized (cluster, task) execution the platform can
// learn from: the noisy wall-clock it actually saw and whether the task
// completed. Online learning is partial-feedback — only assigned pairs are
// observed.
type Observation struct {
	Cluster int
	TaskIdx int
	// Round and Slot locate the observation in the trajectory: the
	// allocation round that produced it and its task position within that
	// round. Shards publish observations concurrently, so the refit drain
	// sorts by (Round, Slot) to restore the canonical serial order.
	Round int
	Slot  int
	// TimeNorm is the realized execution time in the scenario's normalized
	// units.
	TimeNorm float64
	// Succeeded reports task completion.
	Succeeded bool
}

// OnlineConfig extends a platform run with periodic predictor refitting
// from live observations.
type OnlineConfig struct {
	Config
	// RefitEvery triggers a fine-tune after this many rounds (default 10).
	RefitEvery int
	// RefitEpochs is the MSE fine-tune budget per refit (default 30).
	RefitEpochs int
	// BufferCap bounds the observation buffer; oldest observations are
	// dropped first (default 512).
	BufferCap int
	// AsyncRefit trains each refit on a background goroutine against a
	// private predictor copy and publishes it atomically when done; serving
	// rounds keep matching against the previous snapshot in the meantime.
	// The default (false) joins each refit before the next window, which
	// reproduces the serial trajectory bit-for-bit.
	AsyncRefit bool
	// CheckpointPath, when non-empty, periodically saves a resumable
	// checkpoint there (atomically, via temp file + rename): every
	// CheckpointEvery windows and again when the run is canceled.
	CheckpointPath string
	// CheckpointEvery is the periodic-save cadence in refit windows
	// (default 1 — after every refit). Ignored without CheckpointPath.
	// Saving joins an in-flight async refit so the checkpoint always holds
	// a post-refit snapshot.
	CheckpointEvery int
	// Resume, when non-nil, restores a previous run's state (round
	// position, RNG streams, predictor weights, replay buffer, report
	// accumulators) and continues serving from Checkpoint.Round. The
	// configuration must fingerprint-match the run that saved it (Rounds
	// may differ, so a resume can extend the horizon). Callers normally
	// also leave WarmStart nil: RunOnline wires the checkpoint's predictor
	// set in itself.
	Resume *core.Checkpoint
	// MaxRoundTasks bounds the size of externally composed rounds
	// (Session.ServeComposed) and sizes the observation ring so a full
	// window of maximal rounds never drops (default RoundSize). It does not
	// shape sampled-round trajectories and is not part of the checkpoint
	// fingerprint.
	MaxRoundTasks int
}

func (c *OnlineConfig) fillDefaults() {
	c.Config.fillDefaults()
	if c.RefitEvery == 0 {
		c.RefitEvery = 10
	}
	if c.RefitEpochs == 0 {
		c.RefitEpochs = 30
	}
	if c.BufferCap == 0 {
		c.BufferCap = 512
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1
	}
	if c.MaxRoundTasks == 0 {
		c.MaxRoundTasks = c.RoundSize
	}
}

// OnlineReport extends Report with refit accounting and a learning curve.
type OnlineReport struct {
	Report
	// Refits counts fine-tune events.
	Refits int
	// WindowRegret holds the mean regret of each RefitEvery-round window,
	// the platform's learning curve.
	WindowRegret []float64
	// RingDropped counts observations the ingest ring rejected because it
	// was full — learning signal the refits never saw. The ring is sized so
	// this stays 0 in a healthy run (see the ringCap sizing in RunOnline);
	// nonzero means ingest outpaced the refit drain. Resumed runs carry the
	// saved run's drop count forward.
	RingDropped uint64
	// ResumedAt is the round index this run restarted from (0 for a fresh
	// run). Rounds holds only the post-resume trajectory; the aggregate
	// means cover the whole run, restored sums included.
	ResumedAt int
}

// testRefitHook, when non-nil, runs at the start of every refit (before
// training) on the refit's goroutine. Tests use it to hold a refit open and
// observe rounds serving against the old snapshot. testWindowHook, when
// non-nil, runs after each window of rounds has been served and reduced; it
// receives the engine so overflow tests can inject synthetic observations
// into the ingest ring.
var (
	testRefitHook  func()
	testWindowHook func(e *engine, k0 int)
)

// RunOnline simulates the platform with in-the-loop learning: each executed
// round contributes (feature, realized time, success) observations for the
// pairs it actually ran, and every RefitEvery rounds the predictors
// fine-tune on the buffered observations. Only predictor-backed methods
// (tsm, mfcp-*) support refitting; others return an error.
//
// The loop runs window-at-a-time on the sharded engine: each RefitEvery
// window of rounds is evaluated concurrently against one predictor
// snapshot, shards push observations into a lock-free ring, and the refit
// at the window boundary drains the ring, trains a private copy of the
// predictors, and publishes it atomically (inline by default, in the
// background with AsyncRefit). The synchronous trajectory is bit-identical
// at any worker count.
func RunOnline(cfg OnlineConfig) (*OnlineReport, error) {
	return RunOnlineCtx(context.Background(), cfg)
}

// RunOnlineCtx is RunOnline with cooperative cancellation and
// checkpoint/resume. Cancellation is observed at window boundaries: the
// in-flight window's shards drain in round order, the pending refit is
// joined so the last consistent snapshot is published, a final checkpoint
// is saved (when CheckpointPath is set), and the partial report — every
// round served so far, means normalized over that prefix, Stopped =
// "canceled" — returns alongside an mfcperr.ErrCanceled-wrapped error.
func RunOnlineCtx(ctx context.Context, cfg OnlineConfig) (*OnlineReport, error) {
	sess, err := NewSession(ctx, cfg)
	if err != nil {
		return nil, err
	}
	cfg = sess.cfg // defaults filled by NewSession

	canceled := false
	for sess.served < cfg.Rounds {
		if ctx.Err() != nil {
			canceled = true
			break
		}
		// One refit window at a time (a resumed mid-window session first
		// serves the partial window up to the boundary). Session.serve runs
		// the boundary work — drain, refit, periodic checkpoint — whenever
		// the served count crosses a multiple of RefitEvery; a tail shorter
		// than a window never refits.
		n := cfg.RefitEvery - sess.served%cfg.RefitEvery
		if sess.served+n > cfg.Rounds {
			n = cfg.Rounds - sess.served
		}
		if _, err := sess.serve(sess.sampleNext(n)); err != nil {
			var cks *ckSaveError
			rep := sess.Finish()
			if !errors.As(err, &cks) {
				// The failed window was dropped whole; the report stays the
				// valid prefix of fully served windows.
				rep.Stopped = "error"
			}
			return rep, err
		}
	}
	if canceled {
		// The last completed window is a valid resume point; persist it (with
		// the report's raw running sums, before finalize turns them into
		// means) so a signal-interrupted run loses at most the in-flight
		// window.
		saveErr := sess.Checkpoint()
		rep := sess.Finish()
		rep.Stopped = "canceled"
		if saveErr != nil {
			return rep, fmt.Errorf("platform: final checkpoint: %w", saveErr)
		}
		return rep, mfcperr.Canceled("platform.RunOnline", context.Cause(ctx))
	}
	return sess.Finish(), nil
}

// predictorSetOf extracts the refittable predictor set from a method, or
// nil when the method has none (TAM, UCB, Oracle).
func predictorSetOf(m Predictor) *core.PredictorSet {
	switch v := m.(type) {
	case *core.Trainer:
		return v.Set
	case *baselines.TSM:
		return v.PredictorSet()
	default:
		return nil
	}
}

// refit fine-tunes each cluster's predictors on its buffered observations
// MIXED with the original profiling labels (experience replay). Fine-tuning
// on the small partial-feedback buffer alone catastrophically forgets tasks
// outside it; replay anchors the update. Live observations are weighted by
// duplication so fresh (possibly drifted) signal still dominates where it
// exists. Time targets are realized normalized durations; reliability
// targets the 0/1 completion indicator (whose MSE minimizer is the
// Bernoulli mean).
//
// Clusters are independent given their rng streams (SplitIndexed by cluster
// index), so the per-cluster fine-tunes run across parallel.Workers()
// shards without changing the result.
func refit(set *core.PredictorSet, s *workload.Scenario, train []int, buffer []Observation, epochs int, r *rng.Source) {
	m := set.M()
	perCluster := make([][]Observation, m)
	for _, ob := range buffer {
		perCluster[ob.Cluster] = append(perCluster[ob.Cluster], ob)
	}
	const liveWeight = 3 // each live observation counts as this many rows
	parallel.ForChunked(m, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			refitCluster(set, s, train, perCluster[i], i, liveWeight, epochs, r)
		}
	})
}

// refitCluster fine-tunes cluster i's time and reliability networks.
func refitCluster(set *core.PredictorSet, s *workload.Scenario, train []int, obs []Observation, i, liveWeight, epochs int, r *rng.Source) {
	if len(obs) < 4 {
		return // too little signal to fine-tune on
	}
	// Estimate the cluster's current speed factor from paired
	// live-vs-profiled durations of the same tasks (recent half of the
	// buffer). Replay targets are rescaled by it, so the anchor tracks
	// regime changes instead of fighting them.
	fHat := 0.0
	cnt := 0
	for _, ob := range obs[len(obs)/2:] {
		if base := s.MeasT.At(i, ob.TaskIdx); base > 1e-9 {
			fHat += ob.TimeNorm / base
			cnt++
		}
	}
	if cnt > 0 {
		fHat /= float64(cnt)
	} else {
		fHat = 1
	}
	rows := len(train) + liveWeight*len(obs)
	X := mat.NewDense(rows, s.Features.Cols)
	tTargets := mat.NewVec(rows)
	aTargets := mat.NewVec(rows)
	// Replay: the original profiling measurements, drift-corrected.
	for k, j := range train {
		copy(X.Row(k), s.Features.Row(j))
		tTargets[k] = s.MeasT.At(i, j) * fHat
		aTargets[k] = s.MeasA.At(i, j)
	}
	// Live observations, duplicated for weight.
	at := len(train)
	for _, ob := range obs {
		for d := 0; d < liveWeight; d++ {
			copy(X.Row(at), s.Features.Row(ob.TaskIdx))
			tTargets[at] = ob.TimeNorm
			if ob.Succeeded {
				aTargets[at] = 1
			}
			at++
		}
	}
	timeCfg := nn.TrainMSEConfig{Epochs: epochs, BatchSize: 16, Optimizer: nn.NewAdam(5e-4)}
	nn.TrainMSE(set.Preds[i].Time, X, tTargets, timeCfg, r.SplitIndexed("time", i))
	relCfg := nn.TrainMSEConfig{Epochs: epochs, BatchSize: 16, Optimizer: nn.NewAdam(5e-4)}
	nn.TrainMSE(set.Preds[i].Rel, X, aTargets, relCfg, r.SplitIndexed("rel", i))
}
