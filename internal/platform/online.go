package platform

import (
	"context"
	"errors"
	"fmt"

	"mfcp/internal/baselines"
	"mfcp/internal/core"
	"mfcp/internal/mfcperr"
)

// Observation is one realized (cluster, task) execution the platform can
// learn from: the noisy wall-clock it actually saw and whether the task
// completed. Online learning is partial-feedback — only assigned pairs are
// observed.
type Observation struct {
	Cluster int
	TaskIdx int
	// Round and Slot locate the observation in the trajectory: the
	// allocation round that produced it and its task position within that
	// round. Shards publish observations concurrently, so the refit drain
	// sorts by (Round, Slot) to restore the canonical serial order.
	Round int
	Slot  int
	// TimeNorm is the realized execution time in the scenario's normalized
	// units.
	TimeNorm float64
	// Succeeded reports task completion.
	Succeeded bool
}

// OnlineConfig extends a platform run with periodic predictor refitting
// from live observations.
type OnlineConfig struct {
	Config
	// RefitEvery triggers a fine-tune after this many rounds (default 10).
	RefitEvery int
	// RefitEpochs is the MSE fine-tune budget per refit (default 30).
	RefitEpochs int
	// BufferCap bounds the observation buffer; oldest observations are
	// dropped first (default 512).
	BufferCap int
	// AsyncRefit trains each refit on a background goroutine against a
	// private predictor copy and publishes it atomically when done; serving
	// rounds keep matching against the previous snapshot in the meantime.
	// The default (false) joins each refit before the next window, which
	// reproduces the serial trajectory bit-for-bit.
	AsyncRefit bool
	// CheckpointPath, when non-empty, periodically saves a resumable
	// checkpoint there (atomically, via temp file + rename): every
	// CheckpointEvery windows and again when the run is canceled.
	CheckpointPath string
	// CheckpointEvery is the periodic-save cadence in refit windows
	// (default 1 — after every refit). Ignored without CheckpointPath.
	// Saving joins an in-flight async refit so the checkpoint always holds
	// a post-refit snapshot.
	CheckpointEvery int
	// Resume, when non-nil, restores a previous run's state (round
	// position, RNG streams, predictor weights, replay buffer, report
	// accumulators) and continues serving from Checkpoint.Round. The
	// configuration must fingerprint-match the run that saved it (Rounds
	// may differ, so a resume can extend the horizon). Callers normally
	// also leave WarmStart nil: RunOnline wires the checkpoint's predictor
	// set in itself.
	Resume *core.Checkpoint
	// MaxRoundTasks bounds the size of externally composed rounds
	// (Session.ServeComposed) and sizes the observation ring so a full
	// window of maximal rounds never drops (default RoundSize). It does not
	// shape sampled-round trajectories and is not part of the checkpoint
	// fingerprint.
	MaxRoundTasks int
}

func (c *OnlineConfig) fillDefaults() {
	c.Config.fillDefaults()
	if c.RefitEvery == 0 {
		c.RefitEvery = 10
	}
	if c.RefitEpochs == 0 {
		c.RefitEpochs = 30
	}
	if c.BufferCap == 0 {
		c.BufferCap = 512
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1
	}
	if c.MaxRoundTasks == 0 {
		c.MaxRoundTasks = c.RoundSize
	}
}

// OnlineReport extends Report with refit accounting and a learning curve.
type OnlineReport struct {
	Report
	// Refits counts fine-tune events.
	Refits int
	// WindowRegret holds the mean regret of each RefitEvery-round window,
	// the platform's learning curve.
	WindowRegret []float64
	// RingDropped counts observations the ingest ring rejected because it
	// was full — learning signal the refits never saw. The ring is sized so
	// this stays 0 in a healthy run (see the ringCap sizing in RunOnline);
	// nonzero means ingest outpaced the refit drain. Resumed runs carry the
	// saved run's drop count forward.
	RingDropped uint64
	// ResumedAt is the round index this run restarted from (0 for a fresh
	// run). Rounds holds only the post-resume trajectory; the aggregate
	// means cover the whole run, restored sums included.
	ResumedAt int
}

// testRefitHook, when non-nil, runs at the start of every refit (before
// training) on the refit's goroutine. Tests use it to hold a refit open and
// observe rounds serving against the old snapshot. testWindowHook, when
// non-nil, runs after each window of rounds has been served and reduced; it
// receives the engine so overflow tests can inject synthetic observations
// into the ingest ring.
var (
	testRefitHook  func()
	testWindowHook func(e *engine, k0 int)
)

// RunOnline simulates the platform with in-the-loop learning: each executed
// round contributes (feature, realized time, success) observations for the
// pairs it actually ran, and every RefitEvery rounds the predictors
// fine-tune on the buffered observations. Only predictor-backed methods
// (tsm, mfcp-*) support refitting; others return an error.
//
// The loop runs window-at-a-time on the sharded engine: each RefitEvery
// window of rounds is evaluated concurrently against one predictor
// snapshot, shards push observations into a lock-free ring, and the refit
// at the window boundary drains the ring, trains a private copy of the
// predictors, and publishes it atomically (inline by default, in the
// background with AsyncRefit). The synchronous trajectory is bit-identical
// at any worker count.
func RunOnline(cfg OnlineConfig) (*OnlineReport, error) {
	return RunOnlineCtx(context.Background(), cfg)
}

// RunOnlineCtx is RunOnline with cooperative cancellation and
// checkpoint/resume. Cancellation is observed at window boundaries: the
// in-flight window's shards drain in round order, the pending refit is
// joined so the last consistent snapshot is published, a final checkpoint
// is saved (when CheckpointPath is set), and the partial report — every
// round served so far, means normalized over that prefix, Stopped =
// "canceled" — returns alongside an mfcperr.ErrCanceled-wrapped error.
func RunOnlineCtx(ctx context.Context, cfg OnlineConfig) (*OnlineReport, error) {
	sess, err := NewSession(ctx, cfg)
	if err != nil {
		return nil, err
	}
	cfg = sess.cfg // defaults filled by NewSession

	canceled := false
	for sess.served < cfg.Rounds {
		if ctx.Err() != nil {
			canceled = true
			break
		}
		// One refit window at a time (a resumed mid-window session first
		// serves the partial window up to the boundary). Session.serve runs
		// the boundary work — drain, refit, periodic checkpoint — whenever
		// the served count crosses a multiple of RefitEvery; a tail shorter
		// than a window never refits.
		n := cfg.RefitEvery - sess.served%cfg.RefitEvery
		if sess.served+n > cfg.Rounds {
			n = cfg.Rounds - sess.served
		}
		if _, err := sess.serve(sess.sampleNext(n)); err != nil {
			var cks *ckSaveError
			rep := sess.Finish()
			if !errors.As(err, &cks) {
				// The failed window was dropped whole; the report stays the
				// valid prefix of fully served windows.
				rep.Stopped = "error"
			}
			return rep, err
		}
	}
	if canceled {
		// The last completed window is a valid resume point; persist it (with
		// the report's raw running sums, before finalize turns them into
		// means) so a signal-interrupted run loses at most the in-flight
		// window.
		saveErr := sess.Checkpoint()
		rep := sess.Finish()
		rep.Stopped = "canceled"
		if saveErr != nil {
			return rep, fmt.Errorf("platform: final checkpoint: %w", saveErr)
		}
		return rep, mfcperr.Canceled("platform.RunOnline", context.Cause(ctx))
	}
	return sess.Finish(), nil
}

// backendOf extracts the refittable serving backend from a method, or nil
// when the method has none (TAM, UCB, Oracle). Trainer- and TSM-owned
// predictor sets are wrapped in place — mutations through either handle
// stay visible — so the engine's snapshot publishing serves the exact
// weights the method trained.
func backendOf(m Predictor) core.Backend {
	switch v := m.(type) {
	case *core.Trainer:
		return core.WrapMLPBackend(v.Set)
	case *baselines.TSM:
		return core.WrapMLPBackend(v.PredictorSet())
	case *backendMethod:
		return v.be
	default:
		return nil
	}
}

// toFeedback projects drained observations (already in canonical (Round,
// Slot) order) onto the backend-facing feedback records, preserving order —
// refit implementations weight the recent suffix, so order is contract.
func toFeedback(obs []Observation) []core.Feedback {
	fb := make([]core.Feedback, len(obs))
	for i, ob := range obs {
		fb[i] = core.Feedback{Cluster: ob.Cluster, TaskIdx: ob.TaskIdx, TimeNorm: ob.TimeNorm, Succeeded: ob.Succeeded}
	}
	return fb
}
