package platform

import (
	"testing"

	"mfcp/internal/cluster"
	"mfcp/internal/taskgraph"
	"mfcp/internal/workload"
)

func TestRunOnlineTSM(t *testing.T) {
	cfg := OnlineConfig{
		Config:      tinyCfg(MethodTSM),
		RefitEvery:  3,
		RefitEpochs: 10,
	}
	cfg.Rounds = 9
	rep, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refits != 3 {
		t.Fatalf("refits %d, want 3", rep.Refits)
	}
	if len(rep.WindowRegret) != 3 {
		t.Fatalf("windows %d", len(rep.WindowRegret))
	}
	if rep.Method != "TSM+online" {
		t.Fatalf("method %s", rep.Method)
	}
	if len(rep.Rounds) != 9 {
		t.Fatalf("rounds %d", len(rep.Rounds))
	}
}

func TestRunOnlineRefitChangesPredictions(t *testing.T) {
	// Same configuration with refitting disabled (RefitEvery > Rounds) must
	// produce different later-round assignments than with refitting on —
	// otherwise the refit is a no-op.
	base := OnlineConfig{Config: tinyCfg(MethodTSM), RefitEvery: 100, RefitEpochs: 30}
	base.Rounds = 14
	off, err := RunOnline(base)
	if err != nil {
		t.Fatal(err)
	}
	on := OnlineConfig{Config: tinyCfg(MethodTSM), RefitEvery: 2, RefitEpochs: 30}
	on.Rounds = 14
	onRep, err := RunOnline(on)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for k := range off.Rounds {
		for j := range off.Rounds[k].Assignment {
			if off.Rounds[k].Assignment[j] != onRep.Rounds[k].Assignment[j] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("refitting never changed any assignment")
	}
}

func TestRunOnlineRejectsNonRefittable(t *testing.T) {
	cfg := OnlineConfig{Config: tinyCfg(MethodTAM)}
	if _, err := RunOnline(cfg); err == nil {
		t.Fatal("TAM accepted for online refitting")
	}
}

func TestRunOnlineDeterministic(t *testing.T) {
	cfg := OnlineConfig{Config: tinyCfg(MethodTSM), RefitEvery: 3, RefitEpochs: 5}
	cfg.Rounds = 6
	a, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanRegret != b.MeanRegret || a.Refits != b.Refits {
		t.Fatal("online run not deterministic")
	}
}

func TestOnboardingStudy(t *testing.T) {
	s := workload.MustNew(workload.Config{PoolSize: 100, FeatureDim: 12, Seed: 21})
	newcomer := cluster.Inventory()[4] // ent-cpu, not in setting A
	points, err := OnboardingStudy(s, newcomer, []int{8, 24, 60}, []int{8}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points %d", len(points))
	}
	for i, p := range points {
		if p.TimeRMSE < 0 || p.RelMAE < 0 || p.RelMAE > 1 {
			t.Fatalf("point %d out of range: %+v", i, p)
		}
		if p.OrderingAccuracy < 0 || p.OrderingAccuracy > 1 {
			t.Fatalf("ordering accuracy %v", p.OrderingAccuracy)
		}
	}
	// More profiling budget should (weakly) reduce time RMSE from the
	// smallest to the largest budget. Allow slack for noise but catch
	// inverted learning curves.
	if points[2].TimeRMSE > points[0].TimeRMSE*1.5 {
		t.Fatalf("learning curve inverted: %v -> %v", points[0].TimeRMSE, points[2].TimeRMSE)
	}
}

func TestOnboardingStudyValidation(t *testing.T) {
	s := workload.MustNew(workload.Config{PoolSize: 30, FeatureDim: 10, Seed: 22})
	newcomer := cluster.Inventory()[0]
	if _, err := OnboardingStudy(s, newcomer, []int{64}, nil, 10); err == nil {
		t.Fatal("budget beyond pool accepted")
	}
	bad := &cluster.Profile{Name: "broken"}
	if _, err := OnboardingStudy(s, bad, nil, nil, 10); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestTaskSecondsExposedBySched(t *testing.T) {
	// Observations feed from sched.Result.TaskSeconds; sanity-check the
	// plumbing end to end via a platform run.
	cfg := tinyCfg(MethodTSM)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rounds {
		for j := range r.TaskIdx {
			if r.Execution.TaskSeconds[j] <= 0 {
				t.Fatalf("round %d task %d has no duration", r.Round, j)
			}
		}
	}
	_ = taskgraph.NumFamilies
}

func TestDriftChangesOutcomes(t *testing.T) {
	base := tinyCfg(MethodTSM)
	base.Rounds = 8
	still, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	drifted := base
	drifted.Drift = cluster.DefaultDrifts(3)
	moving, err := Run(drifted)
	if err != nil {
		t.Fatal(err)
	}
	if still.TotalBusySeconds == moving.TotalBusySeconds {
		t.Fatal("drift had no effect on execution accounting")
	}
	// Drift factors scale TaskSeconds consistently with Busy.
	for k, r := range moving.Rounds {
		sum := 0.0
		for _, d := range r.Execution.TaskSeconds {
			sum += d
		}
		busy := 0.0
		for _, b := range r.Execution.Busy {
			busy += b
		}
		if sum <= 0 || busy <= 0 {
			t.Fatalf("round %d lost time accounting", k)
		}
	}
}

func TestOnlineUnderDriftRuns(t *testing.T) {
	cfg := OnlineConfig{Config: tinyCfg(MethodTSM), RefitEvery: 3, RefitEpochs: 5}
	cfg.Rounds = 9
	cfg.Drift = cluster.DefaultDrifts(3)
	rep, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refits != 3 {
		t.Fatalf("refits %d", rep.Refits)
	}
}
