package platform

import (
	"mfcp/internal/embed"
	"mfcp/internal/matching"
	"mfcp/internal/obs"
)

// engineMetrics are the serving engine's pre-bound instruments. They are
// bound once at engine construction so per-round recording is a handful of
// atomic ops; with no registry configured every instrument is nil and
// recording is a no-op (the obs package's nil-instrument contract), which
// keeps the engine code unconditional.
//
// Everything recorded here is pure observation — no instrument feeds back
// into sampling, matching, or training — so the served trajectory is
// bit-identical with telemetry on or off, at any worker count
// (TestTelemetryDoesNotPerturbTrajectory).
type engineMetrics struct {
	// Round throughput and per-round latency (recorded on the shards).
	rounds *obs.Counter
	tasks  *obs.Counter
	round  *obs.Timer

	// Per-phase spans through the serving loop. sample and reduce run
	// serially; predict/solve/exec/ingest run on the shards.
	sample  *obs.Timer
	predict *obs.Timer
	solve   *obs.Timer
	exec    *obs.Timer
	ingest  *obs.Timer
	reduce  *obs.Timer
	refit   *obs.Timer

	// Matching solver convergence (the serving-side predictive solve only;
	// the oracle solve is evaluation bookkeeping, not serving work).
	solverIters     *obs.Histogram
	solverSolves    *obs.Counter
	solverConverged *obs.Counter
	repairMoves     *obs.Histogram
	repairDelta     *obs.Histogram

	// Observation ring health, recorded at the window boundary by the
	// consumer (ring Dropped/Len are consumer-owned).
	ringDropped  *obs.Counter
	ringIngested *obs.Counter
	ringDepth    *obs.Gauge

	// Refit accounting: completions, in-flight count (0 or 1 — refits are
	// serialized), and the published-version watermark plus how many
	// versions behind the just-swept window served.
	refits       *obs.Counter
	refitPending *obs.Gauge
	snapVersion  *obs.Gauge
	snapLag      *obs.Gauge

	// Per-backend serving accounting: rounds and refits labeled by the
	// backend family this engine serves ("mlp", "ensemble", "table", or
	// "none" for methods without a published backend). Pre-bound children,
	// one label value per engine, so fleet dashboards can break serving
	// volume down by predictor family.
	backendRounds *obs.Counter
	backendRefits *obs.Counter

	// Production-dimension sparse path (MatchConfig.TopK > 0): screening
	// and cell-solve spans plus pruning-survivor and reconcile accounting.
	// Recorded on the shards; every op is atomic.
	screen      *obs.Timer
	cellSolve   *obs.Timer
	pruneKept   *obs.Counter
	pruneTotal  *obs.Counter
	reconMoves  *obs.Histogram
	reconInfeas *obs.Counter
	// Incremental-screening accounting (recorded by the serial screener)
	// and the hierarchical solve's reconcile/repair phase durations
	// (recorded by the solver pool from HierResult.Timings — these phases
	// nest inside the cellsolve span, so they get plain histograms rather
	// than Tracer spans).
	screenReused *obs.Counter
	screenFresh  *obs.Counter
	reconcileSec *obs.Histogram
	repairSec    *obs.Histogram
	// Dense/sparse routing visibility: which path each round actually took.
	// Pre-bound children of the labeled route family; the three routes are
	// disjoint (an auto-selected sparse round counts only under
	// "autosparse"), so the family sums to rounds served. Counters update
	// on the serial reduce path; the per-route latency children are
	// observed on the shards.
	routeDense     *obs.Counter
	routeSparse    *obs.Counter
	routeAuto      *obs.Counter
	routeSecDense  *obs.Histogram
	routeSecSparse *obs.Histogram
	routeSecAuto   *obs.Histogram

	// Warm-start effectiveness: how many solves were seeded, and the
	// rolling iteration counts of warm vs cold solves (the iterations-saved
	// signal). Updated on the serial reduce path.
	warmRounds *obs.Counter
	itersWarm  *obs.Gauge
	itersCold  *obs.Gauge
	emaItersW  float64
	emaItersC  float64
	emaWInit   bool
	emaCInit   bool

	// Rolling serving quality, EWMA over the serial reduce path.
	rollRegret      *obs.Gauge
	rollReliability *obs.Gauge
	emaRegret       float64
	emaRel          float64
	emaInit         bool
}

// ewmaAlpha is the rolling-quality smoothing weight: ~20-round memory.
const ewmaAlpha = 0.05

func newEngineMetrics(reg *obs.Registry, backend string) engineMetrics {
	embed.RegisterMetrics(reg)
	tr := obs.NewTracer(reg, "mfcp_phase")
	routes := reg.CounterVec("mfcp_rounds_by_route_total",
		"rounds served by matching route (dense, sparse, autosparse are disjoint)", "route")
	routeSec := reg.HistogramVec("mfcp_route_round_seconds",
		"end-to-end round latency on its shard by matching route", "route", obs.LatencyBuckets)
	backendRounds := reg.CounterVec("mfcp_backend_rounds_total",
		"rounds served, labeled by predictor backend family", "backend")
	backendRefits := reg.CounterVec("mfcp_backend_refits_total",
		"predictor refits published, labeled by backend family", "backend")
	return engineMetrics{
		rounds: reg.Counter("mfcp_rounds_served_total", "allocation rounds served"),
		tasks:  reg.Counter("mfcp_tasks_served_total", "tasks allocated across all rounds"),
		round: obs.NewTimer(reg.Histogram("mfcp_round_seconds",
			"end-to-end latency of one allocation round on its shard", obs.LatencyBuckets)),

		sample:  tr.Phase("sample"),
		predict: tr.Phase("predict"),
		solve:   tr.Phase("solve"),
		exec:    tr.Phase("exec"),
		ingest:  tr.Phase("ingest"),
		reduce:  tr.Phase("reduce"),
		refit: obs.NewTimer(reg.Histogram("mfcp_refit_seconds",
			"latency of one predictor refit (drain excluded)", obs.LatencyBuckets)),

		solverIters: reg.Histogram("mfcp_solver_iterations",
			"mirror-descent iterations to convergence per predictive solve",
			obs.ExpBuckets(1, 2, 10)),
		solverSolves:    reg.Counter("mfcp_solver_solves_total", "predictive relaxed solves"),
		solverConverged: reg.Counter("mfcp_solver_converged_total", "predictive solves that hit tolerance before the iteration budget"),
		repairMoves: reg.Histogram("mfcp_repair_moves",
			"feasibility + improvement moves per repair pass", obs.LinearBuckets(0, 2, 12)),
		repairDelta: reg.Histogram("mfcp_repair_cost_delta",
			"cost improvement achieved by the repair pass", obs.ExpBuckets(1e-3, 4, 10)),

		screen:    tr.Phase("screen"),
		cellSolve: tr.Phase("cellsolve"),
		pruneKept: reg.Counter("mfcp_prune_survivors_total",
			"(cluster, task) candidate pairs surviving top-k screening"),
		pruneTotal: reg.Counter("mfcp_prune_candidates_total",
			"dense (cluster, task) pairs considered by screening"),
		reconMoves: reg.Histogram("mfcp_reconcile_moves",
			"task reassignments per capacity-reconcile pass", obs.LinearBuckets(0, 2, 12)),
		reconInfeas: reg.Counter("mfcp_reconcile_infeasible_total",
			"reconcile passes that proved the overflow unresolvable (Hall violation)"),
		screenReused: reg.Counter("mfcp_screen_reused_total",
			"tasks whose candidate sets were carried over by incremental screening"),
		screenFresh: reg.Counter("mfcp_screen_rescreened_total",
			"tasks screened from scratch (full top-k selection)"),
		reconcileSec: reg.Histogram("mfcp_phase_reconcile_seconds",
			"duration of the capacity-reconcile phase in seconds", obs.LatencyBuckets),
		repairSec: reg.Histogram("mfcp_phase_repair_seconds",
			"duration of the sparse repair phase in seconds", obs.LatencyBuckets),
		routeDense:     routes.With("dense"),
		routeSparse:    routes.With("sparse"),
		routeAuto:      routes.With("autosparse"),
		routeSecDense:  routeSec.With("dense"),
		routeSecSparse: routeSec.With("sparse"),
		routeSecAuto:   routeSec.With("autosparse"),

		warmRounds: reg.Counter("mfcp_warm_rounds_total",
			"predictive solves seeded from a previous round's relaxed iterate"),
		itersWarm: reg.Gauge("mfcp_solver_iters_warm",
			"EWMA of solver iterations for warm-started solves"),
		itersCold: reg.Gauge("mfcp_solver_iters_cold",
			"EWMA of solver iterations for cold-started solves"),

		ringDropped:  reg.Counter("mfcp_ring_dropped_total", "observations dropped by the full ingest ring"),
		ringIngested: reg.Counter("mfcp_ring_ingested_total", "observations drained into the replay buffer"),
		ringDepth:    reg.Gauge("mfcp_ring_depth", "observations pending in the ingest ring at the last window boundary"),

		backendRounds: backendRounds.With(backend),
		backendRefits: backendRefits.With(backend),

		refits:       reg.Counter("mfcp_refits_total", "predictor refits published"),
		refitPending: reg.Gauge("mfcp_refit_inflight", "refits currently training (0 or 1)"),
		snapVersion:  reg.Gauge("mfcp_snapshot_version", "published predictor snapshot version"),
		snapLag:      reg.Gauge("mfcp_snapshot_lag", "predictor versions published while the last window was being served"),

		rollRegret:      reg.Gauge("mfcp_rolling_regret", "EWMA of per-round regret"),
		rollReliability: reg.Gauge("mfcp_rolling_reliability", "EWMA of per-round reliability"),
	}
}

// observeSolve records one predictive solve's convergence and repair work.
// Called concurrently from the shards; every instrument op is atomic.
func (m *engineMetrics) observeSolve(si matching.SolveInfo, ri matching.RepairInfo) {
	m.solverSolves.Inc()
	if si.Converged {
		m.solverConverged.Inc()
	}
	m.solverIters.Observe(float64(si.Iters))
	m.repairMoves.Observe(float64(ri.FeasMoves + ri.Moves + ri.Swaps))
	m.repairDelta.Observe(ri.CostBefore - ri.CostAfter)
}

// observeSparse records one round's screening and reconcile accounting.
// Called concurrently from the shards; every instrument op is atomic.
func (m *engineMetrics) observeSparse(nnz, dense int, ri matching.ReconcileInfo) {
	m.pruneKept.Add(uint64(nnz))
	m.pruneTotal.Add(uint64(dense))
	m.reconMoves.Observe(float64(ri.Moved))
	if !ri.Feasible {
		m.reconInfeas.Inc()
	}
}

// observeScreen records one round's incremental-screening split. Called
// by the pipeline's serial screener.
func (m *engineMetrics) observeScreen(reused, fresh int) {
	m.screenReused.Add(uint64(reused))
	m.screenFresh.Add(uint64(fresh))
}

// observeHierTimings records the hierarchical solve's reconcile/repair
// phase durations. Called concurrently from the solver pool.
func (m *engineMetrics) observeHierTimings(t matching.HierTimings) {
	m.reconcileSec.Observe(float64(t.ReconcileNs) / 1e9)
	m.repairSec.Observe(float64(t.RepairNs) / 1e9)
}

// observeReduced folds one round into the throughput counters and rolling
// quality gauges. Called serially, in round order, from the reduce path.
func (m *engineMetrics) observeReduced(rr *RoundReport) {
	m.rounds.Inc()
	m.backendRounds.Inc()
	m.tasks.Add(uint64(len(rr.TaskIdx)))
	switch {
	case rr.Sparse && rr.AutoSparse:
		m.routeAuto.Inc()
	case rr.Sparse:
		m.routeSparse.Inc()
	default:
		m.routeDense.Inc()
	}
	if rr.WarmStarted {
		m.warmRounds.Inc()
		if !m.emaWInit {
			m.emaItersW, m.emaWInit = float64(rr.SolveIters), true
		} else {
			m.emaItersW += ewmaAlpha * (float64(rr.SolveIters) - m.emaItersW)
		}
		m.itersWarm.Set(m.emaItersW)
	} else {
		if !m.emaCInit {
			m.emaItersC, m.emaCInit = float64(rr.SolveIters), true
		} else {
			m.emaItersC += ewmaAlpha * (float64(rr.SolveIters) - m.emaItersC)
		}
		m.itersCold.Set(m.emaItersC)
	}
	if !m.emaInit {
		m.emaRegret, m.emaRel = rr.Eval.Regret, rr.Eval.Reliability
		m.emaInit = true
	} else {
		m.emaRegret += ewmaAlpha * (rr.Eval.Regret - m.emaRegret)
		m.emaRel += ewmaAlpha * (rr.Eval.Reliability - m.emaRel)
	}
	m.rollRegret.Set(m.emaRegret)
	m.rollReliability.Set(m.emaRel)
}

// observeSnapshot records the published-version watermark after a sweep and
// how many versions were published while that sweep was in flight (v0 is
// the version read when the sweep's serving set was loaded).
func (m *engineMetrics) observeSnapshot(v0, v1 uint64) {
	m.snapVersion.Set(float64(v1))
	m.snapLag.Set(float64(v1 - v0))
}
