// Package binenc is the little-endian, length-prefixed binary codec the
// checkpoint layer is built on (stdlib-only, in the spirit of
// taskgraph/serialize.go's hand-rolled wire forms). Writers are plain
// append-style functions so encoders compose without intermediate buffers;
// the Reader carries a sticky error so decoders read a whole record and
// check once at the end — a truncated or oversized field surfaces as an
// mfcperr.ErrCorruptCheckpoint-wrapped error, never a panic or a silent
// garbage value.
package binenc

import (
	"encoding/binary"
	"math"

	"mfcp/internal/mfcperr"
)

// maxLen bounds any single length prefix a Reader will accept (1 GiB of
// float64s is far beyond any real checkpoint); it converts a corrupt
// length field into a clean decode error instead of an OOM attempt.
const maxLen = 1 << 27

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU32 appends a little-endian uint32.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendU64 appends a little-endian uint64.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendI64 appends an int64 as its two's-complement uint64 image.
func AppendI64(b []byte, v int64) []byte { return AppendU64(b, uint64(v)) }

// AppendF64 appends a float64 as its IEEE-754 bit image.
func AppendF64(b []byte, v float64) []byte { return AppendU64(b, math.Float64bits(v)) }

// AppendBytes appends a u32 length prefix followed by the raw bytes.
func AppendBytes(b, p []byte) []byte {
	b = AppendU32(b, uint32(len(p)))
	return append(b, p...)
}

// AppendString appends a u32 length prefix followed by the string bytes.
func AppendString(b []byte, s string) []byte {
	b = AppendU32(b, uint32(len(s)))
	return append(b, s...)
}

// AppendF64s appends a u32 count prefix followed by the raw float64 images.
func AppendF64s(b []byte, v []float64) []byte {
	b = AppendU32(b, uint32(len(v)))
	for _, x := range v {
		b = AppendF64(b, x)
	}
	return b
}

// Reader decodes a byte slice written with the Append functions. The first
// failure (underflow, oversized length prefix) sticks: every subsequent
// read returns the zero value and Err reports the failure, so decoders can
// read an entire record linearly and validate once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf for decoding. The Reader does not copy buf; byte
// slices returned by Bytes alias it.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "truncated %s at offset %d", what, r.off)
	}
}

func (r *Reader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.fail(what)
		return nil
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	return p
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	p := r.take(1, "u8")
	if p == nil {
		return 0
	}
	return p[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4, "u32")
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8, "u64")
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// length reads and bounds-checks a u32 length prefix.
func (r *Reader) length(what string) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n > maxLen || n > r.Len() {
		r.fail(what + " length")
		return 0
	}
	return n
}

// Bytes reads a u32-length-prefixed byte slice (aliasing the input buffer).
func (r *Reader) Bytes() []byte {
	n := r.length("bytes")
	return r.take(n, "bytes")
}

// String reads a u32-length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// F64s reads a u32-count-prefixed float64 slice.
func (r *Reader) F64s() []float64 {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	if n > maxLen/8 || n*8 > r.Len() {
		r.fail("f64s length")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}
