package binenc

import (
	"errors"
	"math"
	"testing"

	"mfcp/internal/mfcperr"
)

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU8(b, 7)
	b = AppendU32(b, 0xDEADBEEF)
	b = AppendU64(b, 1<<63|42)
	b = AppendI64(b, -17)
	b = AppendF64(b, math.Pi)
	b = AppendF64(b, math.Inf(-1))
	b = AppendString(b, "platform-rounds")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendF64s(b, []float64{0, -0.5, math.MaxFloat64})

	r := NewReader(b)
	if v := r.U8(); v != 7 {
		t.Fatalf("u8 %d", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Fatalf("u32 %x", v)
	}
	if v := r.U64(); v != 1<<63|42 {
		t.Fatalf("u64 %x", v)
	}
	if v := r.I64(); v != -17 {
		t.Fatalf("i64 %d", v)
	}
	if v := r.F64(); v != math.Pi {
		t.Fatalf("f64 %v", v)
	}
	if v := r.F64(); !math.IsInf(v, -1) {
		t.Fatalf("f64 inf %v", v)
	}
	if v := r.String(); v != "platform-rounds" {
		t.Fatalf("string %q", v)
	}
	if v := r.Bytes(); len(v) != 3 || v[2] != 3 {
		t.Fatalf("bytes %v", v)
	}
	fs := r.F64s()
	if len(fs) != 3 || fs[1] != -0.5 || fs[2] != math.MaxFloat64 {
		t.Fatalf("f64s %v", fs)
	}
	if r.Err() != nil || r.Len() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Len())
	}
}

func TestTruncation(t *testing.T) {
	b := AppendU64(nil, 99)
	r := NewReader(b[:5])
	_ = r.U64()
	if !errors.Is(r.Err(), mfcperr.ErrCorruptCheckpoint) {
		t.Fatalf("truncated read err = %v", r.Err())
	}
	// Sticky: later reads keep failing and return zero values.
	if v := r.U32(); v != 0 {
		t.Fatalf("read after failure returned %d", v)
	}
}

func TestOversizedLength(t *testing.T) {
	// A length prefix claiming more data than exists must fail cleanly.
	b := AppendU32(nil, 1<<30)
	r := NewReader(b)
	if s := r.String(); s != "" {
		t.Fatalf("oversized string %q", s)
	}
	if !errors.Is(r.Err(), mfcperr.ErrCorruptCheckpoint) {
		t.Fatalf("err = %v", r.Err())
	}

	r = NewReader(AppendU32(nil, 1<<30))
	if fs := r.F64s(); fs != nil {
		t.Fatalf("oversized f64s %v", fs)
	}
	if !errors.Is(r.Err(), mfcperr.ErrCorruptCheckpoint) {
		t.Fatalf("err = %v", r.Err())
	}
}
