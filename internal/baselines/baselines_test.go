package baselines

import (
	"math"
	"testing"

	"mfcp/internal/cluster"
	"mfcp/internal/workload"
)

func testScenario(seed uint64) *workload.Scenario {
	return workload.MustNew(workload.Config{
		Setting: cluster.SettingA, PoolSize: 60, FeatureDim: 12, Seed: seed,
	})
}

func TestTAMConstantPredictions(t *testing.T) {
	s := testScenario(1)
	train, test := s.Split(0.75)
	tam := NewTAM(s, train)
	if tam.Name() != "TAM" {
		t.Fatal("name")
	}
	round := test[:5]
	T, A := tam.Predict(round)
	for i := 0; i < s.M(); i++ {
		for j := 1; j < 5; j++ {
			if T.At(i, j) != T.At(i, 0) || A.At(i, j) != A.At(i, 0) {
				t.Fatal("TAM predictions vary by task")
			}
		}
	}
	// The constants are the training means.
	tv, _ := s.LabelVectors(0, train)
	want := tv.Sum() / float64(len(tv))
	if math.Abs(T.At(0, 0)-want) > 1e-12 {
		t.Fatalf("TAM mean %v want %v", T.At(0, 0), want)
	}
}

func TestTSMBeatsTAMOnPredictionError(t *testing.T) {
	s := testScenario(2)
	train, test := s.Split(0.75)
	tam := NewTAM(s, train)
	tsm := NewTSM(s, train, []int{16}, 200)
	if tsm.Name() != "TSM" {
		t.Fatal("name")
	}
	round := test
	trueT, _ := s.TrueMatrices(round)
	mseOf := func(T interface{ At(int, int) float64 }) float64 {
		sum := 0.0
		for i := 0; i < s.M(); i++ {
			for j := range round {
				d := T.At(i, j) - trueT.At(i, j)
				sum += d * d
			}
		}
		return sum
	}
	Ttam, _ := tam.Predict(round)
	Ttsm, _ := tsm.Predict(round)
	if mseOf(Ttsm) >= mseOf(Ttam) {
		t.Fatalf("TSM prediction error %v not better than TAM %v", mseOf(Ttsm), mseOf(Ttam))
	}
}

func TestUCBPredictionsOptimistic(t *testing.T) {
	s := testScenario(3)
	train, test := s.Split(0.75)
	ucb := NewUCB(s, train, UCBConfig{Members: 3, Epochs: 80})
	if ucb.Name() != "UCB" {
		t.Fatal("name")
	}
	round := test[:6]
	T, A := ucb.Predict(round)
	for k := range T.Data {
		if T.Data[k] < 1e-4 || math.IsNaN(T.Data[k]) {
			t.Fatalf("UCB time %v out of range", T.Data[k])
		}
		if A.Data[k] <= 0 || A.Data[k] > 0.999 {
			t.Fatalf("UCB reliability %v out of range", A.Data[k])
		}
	}
	// More optimism (larger alpha) ⇒ weakly smaller times, larger reliabilities.
	ucb.Alpha = 3
	T3, A3 := ucb.Predict(round)
	for k := range T.Data {
		if T3.Data[k] > T.Data[k]+1e-12 {
			t.Fatal("larger alpha increased a predicted time")
		}
		if A3.Data[k] < A.Data[k]-1e-12 {
			t.Fatal("larger alpha decreased a predicted reliability")
		}
	}
}

func TestOraclePredictsTruth(t *testing.T) {
	s := testScenario(4)
	o := NewOracle(s)
	round := []int{3, 7, 11}
	T, A := o.Predict(round)
	wantT, wantA := s.TrueMatrices(round)
	if !T.Equal(wantT, 0) || !A.Equal(wantA, 0) {
		t.Fatal("oracle does not return ground truth")
	}
	if o.Name() != "Oracle" {
		t.Fatal("name")
	}
}

func TestBaselinesDeterministic(t *testing.T) {
	build := func() float64 {
		s := testScenario(5)
		train, test := s.Split(0.75)
		tsm := NewTSM(s, train, []int{8}, 60)
		T, _ := tsm.Predict(test[:4])
		return T.At(0, 0) + T.At(2, 3)
	}
	if build() != build() {
		t.Fatal("TSM training not deterministic")
	}
}
