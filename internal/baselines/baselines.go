// Package baselines implements the paper's comparison methods (§4.1.2):
//
//   - TAM (Task-Agnostic Matching): ignores task variation, predicting each
//     cluster's training-set average time and reliability for every task.
//   - TSM (Two-Stage Method): cluster-specific MSE-trained predictors,
//     then matching on the predictions — the conventional
//     predict-then-optimize pipeline MFCP argues against.
//   - UCB: bootstrap-ensemble predictors whose confidence bounds enter the
//     matcher optimistically, making the matching robust to prediction
//     error without modeling the downstream objective.
//
// Every method exposes Name and Predict(round) → (T̂, Â); the experiment
// harness feeds all methods through the identical matching pipeline so
// differences in the tables are attributable to prediction quality alone.
package baselines

import (
	"context"

	"mfcp/internal/core"
	"mfcp/internal/mat"
	"mfcp/internal/workload"
)

// TAM predicts per-cluster constants: the mean measured time and
// reliability over the training tasks.
type TAM struct {
	s    *workload.Scenario
	tAvg mat.Vec
	aAvg mat.Vec
}

// NewTAM fits the task-agnostic baseline.
func NewTAM(s *workload.Scenario, train []int) *TAM {
	m := s.M()
	b := &TAM{s: s, tAvg: mat.NewVec(m), aAvg: mat.NewVec(m)}
	for i := 0; i < m; i++ {
		tv, av := s.LabelVectors(i, train)
		b.tAvg[i] = tv.Sum() / float64(len(tv))
		b.aAvg[i] = av.Sum() / float64(len(av))
	}
	return b
}

// Name implements the method interface.
func (b *TAM) Name() string { return "TAM" }

// Predict returns constant rows regardless of the round's tasks.
func (b *TAM) Predict(round []int) (T, A *mat.Dense) {
	m, n := b.s.M(), len(round)
	T = mat.NewDense(m, n)
	A = mat.NewDense(m, n)
	for i := 0; i < m; i++ {
		T.Row(i).Fill(b.tAvg[i])
		A.Row(i).Fill(b.aAvg[i])
	}
	return T, A
}

// TSM is the two-stage method: per-cluster MSE-trained predictors
// (equation 1) feeding the matcher.
type TSM struct {
	s   *workload.Scenario
	set *core.PredictorSet
}

// NewTSM trains the two-stage baseline. hidden and epochs match the MFCP
// pretrain so the comparison isolates the training objective.
func NewTSM(s *workload.Scenario, train []int, hidden []int, epochs int) *TSM {
	b, err := NewTSMCtx(context.Background(), s, train, hidden, epochs)
	if err != nil {
		// invariant: a background context never cancels, and the MSE
		// pretrain has no other failure mode.
		panic(err)
	}
	return b
}

// NewTSMCtx is NewTSM with cooperative cancellation of the MSE pretrain.
// On cancellation the partially trained baseline is returned alongside an
// mfcperr.ErrCanceled-wrapped error.
func NewTSMCtx(ctx context.Context, s *workload.Scenario, train []int, hidden []int, epochs int) (*TSM, error) {
	stream := s.Stream("tsm")
	set := core.NewPredictorSet(s.M(), s.Features.Cols, hidden, stream.Split("init"))
	err := core.PretrainMSECtx(ctx, set, s, train, epochs, stream.Split("train"))
	return &TSM{s: s, set: set}, err
}

// NewTSMFromSet wraps an already-trained predictor set as the two-stage
// baseline. The experiment harness uses this to hand TSM and the MFCP
// variants the identical MSE warm start, pairing the comparison.
func NewTSMFromSet(s *workload.Scenario, set *core.PredictorSet) *TSM {
	return &TSM{s: s, set: set}
}

// Name implements the method interface.
func (b *TSM) Name() string { return "TSM" }

// PredictorSet exposes the underlying predictors, e.g. for the platform's
// online refitting.
func (b *TSM) PredictorSet() *core.PredictorSet { return b.set }

// Predict implements the method interface.
func (b *TSM) Predict(round []int) (T, A *mat.Dense) {
	return b.set.Predict(b.s.FeaturesOf(round))
}

// UCB predicts optimistic confidence bounds from bootstrap ensembles:
// t̂ − α·σ_t (a fast cluster is given the benefit of the doubt) and
// â + α·σ_a. The ensemble machinery lives in core.EnsembleBackend; UCB is
// the risk-seeking view over it — risk −α with calibration disabled (unit
// spread scales) reproduces the historical bounds bit for bit.
type UCB struct {
	s     *workload.Scenario
	be    *core.EnsembleBackend
	Alpha float64
}

// UCBConfig parameterizes the UCB baseline.
type UCBConfig struct {
	Hidden  []int
	Epochs  int
	Members int     // ensemble size (default 5)
	Alpha   float64 // confidence multiplier (default 1)
}

// NewUCB trains the UCB baseline.
func NewUCB(s *workload.Scenario, train []int, cfg UCBConfig) *UCB {
	if cfg.Members == 0 {
		cfg.Members = 5
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 1
	}
	if cfg.Hidden == nil {
		cfg.Hidden = []int{16}
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 200
	}
	be := core.NewEnsembleBackend(s.M(), s.Features.Cols, cfg.Hidden, cfg.Members, false)
	if err := be.Pretrain(context.Background(), s, train, cfg.Epochs, s.Stream("ucb")); err != nil {
		// invariant: a background context never cancels, and the MSE
		// pretrain has no other failure mode.
		panic(err)
	}
	return &UCB{s: s, be: be, Alpha: cfg.Alpha}
}

// Backend exposes the underlying ensemble backend, e.g. for serving the
// same uncertainty machinery through the platform.
func (b *UCB) Backend() *core.EnsembleBackend { return b.be }

// Name implements the method interface.
func (b *UCB) Name() string { return "UCB" }

// Predict returns the optimistic confidence-bound matrices: the backend's
// risk-shifted forward with risk −α. A fresh workspace per call keeps
// Predict safe for concurrent use (engine shards call backend-less methods
// directly).
func (b *UCB) Predict(round []int) (T, A *mat.Dense) {
	Z := b.s.FeaturesOf(round)
	m, n := b.s.M(), len(round)
	T = mat.NewDense(m, n)
	A = mat.NewDense(m, n)
	b.be.PredictRiskInto(Z, b.be.NewWorkspace(), -b.Alpha, T, A)
	return T, A
}

// Oracle predicts the hidden ground truth exactly — an upper bound used by
// diagnostics and examples (not a paper baseline).
type Oracle struct{ s *workload.Scenario }

// NewOracle returns the ground-truth method.
func NewOracle(s *workload.Scenario) *Oracle { return &Oracle{s: s} }

// Name implements the method interface.
func (b *Oracle) Name() string { return "Oracle" }

// Predict returns the true matrices.
func (b *Oracle) Predict(round []int) (T, A *mat.Dense) { return b.s.TrueMatrices(round) }
