// Package mfcperr defines the repository's error taxonomy: a small set of
// sentinel errors that every layer wraps with context via fmt.Errorf and %w,
// so callers branch on errors.Is instead of string matching.
//
// The division of labor with panic (see DESIGN.md §7): anything reachable
// from user-supplied input — configs, external matrices, checkpoint files,
// CLI flags, context cancellation — returns one of these wrapped sentinels.
// panic() is reserved for internal invariants (hot-path shape checks between
// components that size buffers for each other, impossible enum values) and
// every remaining panic site is marked with an `// invariant:` comment and
// allowlisted by the CI panic lint.
package mfcperr

import (
	"errors"
	"fmt"
)

// Sentinel errors. Wrap them with Wrap (or fmt.Errorf + %w) at the point of
// detection; test with errors.Is at the point of handling.
var (
	// ErrBadShape reports externally supplied matrices or vectors whose
	// dimensions do not fit together (ragged rows, T/A mismatch, feature
	// rows vs task count).
	ErrBadShape = errors.New("bad shape")

	// ErrBadConfig reports a configuration field outside its valid domain
	// (a reliability threshold outside (0,1], a non-positive pool size, a
	// split fraction outside (0,1), a resume checkpoint written by a
	// different configuration).
	ErrBadConfig = errors.New("bad config")

	// ErrInfeasible reports a well-formed problem that cannot be served:
	// a round size larger than the candidate pool, a matching instance
	// whose reliability constraint no assignment satisfies.
	ErrInfeasible = errors.New("infeasible")

	// ErrNotConverged reports an iterative procedure that exhausted its
	// budget or hit a singular system: KKT factorization failure at a
	// boundary optimum, a solver that never reached tolerance when the
	// caller demanded convergence.
	ErrNotConverged = errors.New("not converged")

	// ErrCanceled reports cooperative shutdown through a context. Partial
	// results returned alongside an ErrCanceled-wrapped error are valid:
	// a canceled trainer holds the last consistent weights, a canceled
	// platform run holds the trajectory prefix it served.
	ErrCanceled = errors.New("canceled")

	// ErrCorruptCheckpoint reports a checkpoint file that failed decoding:
	// bad magic, unsupported version, CRC mismatch, truncation, or values
	// outside their domain (an unknown activation, a zero layer width).
	ErrCorruptCheckpoint = errors.New("corrupt checkpoint")
)

// Wrap annotates a sentinel with formatted detail while keeping it visible
// to errors.Is: Wrap(ErrBadShape, "T is %dx%d but A is %dx%d", ...).
func Wrap(sentinel error, format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), sentinel)
}

// Canceled wraps ErrCanceled with the operation that was interrupted and
// the context cause (context.Cause(ctx)), when one is available.
func Canceled(op string, cause error) error {
	if cause == nil {
		return fmt.Errorf("%s: %w", op, ErrCanceled)
	}
	return fmt.Errorf("%s: %w: %v", op, ErrCanceled, cause)
}
