package mfcperr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestWrapPreservesSentinel(t *testing.T) {
	err := Wrap(ErrBadShape, "T is %dx%d but A is %dx%d", 3, 4, 3, 5)
	if !errors.Is(err, ErrBadShape) {
		t.Fatalf("wrapped error lost its sentinel: %v", err)
	}
	if errors.Is(err, ErrBadConfig) {
		t.Fatalf("wrapped error matches the wrong sentinel: %v", err)
	}
	if !strings.Contains(err.Error(), "3x4") {
		t.Fatalf("detail lost: %v", err)
	}
}

func TestCanceled(t *testing.T) {
	err := Canceled("core: train", nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Canceled lost ErrCanceled: %v", err)
	}

	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errors.New("operator hit ctrl-c"))
	err = Canceled("platform: serve", context.Cause(ctx))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Canceled with cause lost ErrCanceled: %v", err)
	}
	if !strings.Contains(err.Error(), "ctrl-c") {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestDoubleWrap(t *testing.T) {
	inner := Wrap(ErrCorruptCheckpoint, "crc mismatch")
	outer := fmt.Errorf("loading %q: %w", "run.ckpt", inner)
	if !errors.Is(outer, ErrCorruptCheckpoint) {
		t.Fatalf("double wrap lost sentinel: %v", outer)
	}
}
