package diffopt

import (
	"testing"

	"mfcp/internal/mat"
	"mfcp/internal/rng"
)

// TestZeroOrderEstimatorsDeterministic re-runs each estimator with an
// identical rng source and requires bit-identical gradients. This pins two
// properties of the workspace rewrite: per-worker pooled buffers never leak
// state between samples, and the sample reduction happens in a fixed order
// regardless of worker scheduling.
func TestZeroOrderEstimatorsDeterministic(t *testing.T) {
	r := rng.New(99)
	p := testProblem(r, 3, 8)
	X := preciseSolve(p, nil)
	w := mat.NewDense(3, 8)
	r.NormVec(w.Data)
	cfg := ZeroOrderConfig{Samples: 12}

	dT1, dA1 := RowVJP(p, X, w, 1, cfg, r.Split("det"))
	dT2, dA2 := RowVJP(p, X, w, 1, cfg, r.Split("det"))
	if !dT1.Equal(dT2, 0) || !dA1.Equal(dA2, 0) {
		t.Fatal("RowVJP is not deterministic for a fixed rng source")
	}

	fT1, fA1 := FullVJP(p, X, w, cfg, r.Split("detfull"))
	fT2, fA2 := FullVJP(p, X, w, cfg, r.Split("detfull"))
	if !fT1.Equal(fT2, 0) || !fA1.Equal(fA2, 0) {
		t.Fatal("FullVJP is not deterministic for a fixed rng source")
	}

	sT1, sA1 := SPSAVJP(p, X, w, cfg, r.Split("detspsa"))
	sT2, sA2 := SPSAVJP(p, X, w, cfg, r.Split("detspsa"))
	if !sT1.Equal(sT2, 0) || !sA1.Equal(sA2, 0) {
		t.Fatal("SPSAVJP is not deterministic for a fixed rng source")
	}
}

// TestPerturbationLeavesProblemUntouched guards the in-place shadow
// perturbation: the caller's T and A matrices must be bit-identical after
// an estimator runs.
func TestPerturbationLeavesProblemUntouched(t *testing.T) {
	r := rng.New(123)
	p := testProblem(r, 4, 6)
	X := preciseSolve(p, nil)
	w := mat.NewDense(4, 6).Fill(1)
	Tcopy := p.T.Clone()
	Acopy := p.A.Clone()
	RowVJP(p, X, w, 2, ZeroOrderConfig{Samples: 6}, r.Split("a"))
	FullVJP(p, X, w, ZeroOrderConfig{Samples: 6}, r.Split("b"))
	SPSAVJP(p, X, w, ZeroOrderConfig{Samples: 6}, r.Split("c"))
	if !p.T.Equal(Tcopy, 0) || !p.A.Equal(Acopy, 0) {
		t.Fatal("estimator mutated the caller's cost matrices")
	}
}
