package diffopt

import (
	"mfcp/internal/mat"
	"mfcp/internal/matching"
)

// linearization caches the quantities needed for Hessian-vector and
// cross-derivative products of the convex sequential objective F at a
// point X: the log-sum-exp weights, the reliability margin, and the
// barrier's first/second derivatives there. Unlike the KKT path, it is
// valid anywhere in the simplex (including the barrier's linear-extension
// region), which backprop-through-the-solver needs since early iterates
// can be infeasible.
type linearization struct {
	p    *matching.Problem
	X    *mat.Dense
	pw   mat.Vec // softmax weights of the loads
	u    float64 // reliability margin
	bg   float64 // d(barrier)/du
	b2   float64 // d²(barrier)/du²
	c    float64 // normalization constant of g
	beta float64
	rho  float64
}

// linearize evaluates the shared state at X. Only the convex sequential
// objective (SmoothMakespan, no speedups) is supported.
func linearize(p *matching.Problem, X *mat.Dense) (*linearization, error) {
	if !p.IsConvex() || p.Objective != matching.SmoothMakespan {
		return nil, ErrNotConvex
	}
	loads := p.Loads(X, nil)
	l := &linearization{
		p: p, X: X,
		pw:   mat.SoftmaxWeights(loads, p.Beta, nil),
		u:    p.ReliabilityMargin(X),
		c:    p.NormConst(),
		beta: p.Beta,
		rho:  p.Entropy,
	}
	l.bg, l.b2 = p.BarrierDeriv(l.u)
	return l, nil
}

// HessVec computes (∇²_XX F)·v into dst (allocating when nil):
//
//	(Hv)_ij = β·pw_i·t_ij·[(t_i·v_i) − Σ_k pw_k (t_k·v_k)]
//	        + b2·c²·a_ij·⟨A, v⟩ + (ρ/x_ij)·v_ij.
func (l *linearization) HessVec(v, dst *mat.Dense) *mat.Dense {
	m, n := l.p.M(), l.p.N()
	if dst == nil {
		dst = mat.NewDense(m, n)
	}
	// Per-cluster contractions t_i·v_i and the pw-weighted total.
	tv := mat.NewVec(m)
	wsum := 0.0
	av := 0.0
	for i := 0; i < m; i++ {
		tv[i] = l.p.T.Row(i).Dot(v.Row(i))
		wsum += l.pw[i] * tv[i]
		av += l.p.A.Row(i).Dot(v.Row(i))
	}
	barCoef := l.b2 * l.c * l.c * av
	for i := 0; i < m; i++ {
		ti := l.p.T.Row(i)
		ai := l.p.A.Row(i)
		xi := l.X.Row(i)
		vi := v.Row(i)
		drow := dst.Row(i)
		lse := l.beta * l.pw[i] * (tv[i] - wsum)
		for j := 0; j < n; j++ {
			out := lse*ti[j] + barCoef*ai[j]
			if l.rho > 0 {
				x := xi[j]
				if x < 1e-9 {
					x = 1e-9
				}
				out += l.rho / x * vi[j]
			}
			drow[j] = out
		}
	}
	return dst
}

// CrossTVec computes (∇²_XT F)ᵀ·y into dst (allocating when nil) — the
// contraction dL/dT given an adjoint y on X:
//
//	(Bᵀy)_kl = β·pw_k·x_kl·(r_k − R) + pw_k·y_kl,  r_i = y_i·t_i, R = Σ pw_i r_i.
func (l *linearization) CrossTVec(y, dst *mat.Dense) *mat.Dense {
	m, n := l.p.M(), l.p.N()
	if dst == nil {
		dst = mat.NewDense(m, n)
	}
	r := mat.NewVec(m)
	R := 0.0
	for i := 0; i < m; i++ {
		r[i] = y.Row(i).Dot(l.p.T.Row(i))
		R += l.pw[i] * r[i]
	}
	for k := 0; k < m; k++ {
		xk := l.X.Row(k)
		yk := y.Row(k)
		drow := dst.Row(k)
		coef := l.beta * l.pw[k] * (r[k] - R)
		for j := 0; j < n; j++ {
			drow[j] = coef*xk[j] + l.pw[k]*yk[j]
		}
	}
	return dst
}

// CrossAVec computes (∇²_XA F)ᵀ·y into dst (allocating when nil):
//
//	(Bᵀy)_kl = bg·c·y_kl + b2·c²·x_kl·⟨A, y⟩.
func (l *linearization) CrossAVec(y, dst *mat.Dense) *mat.Dense {
	m, n := l.p.M(), l.p.N()
	if dst == nil {
		dst = mat.NewDense(m, n)
	}
	q := 0.0
	for i := 0; i < m; i++ {
		q += y.Row(i).Dot(l.p.A.Row(i))
	}
	coef := l.b2 * l.c * l.c * q
	for k := 0; k < m; k++ {
		xk := l.X.Row(k)
		yk := y.Row(k)
		drow := dst.Row(k)
		for j := 0; j < n; j++ {
			drow[j] = l.bg*l.c*yk[j] + coef*xk[j]
		}
	}
	return dst
}
