package diffopt

import (
	"math"
	"testing"

	"mfcp/internal/cluster"
	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/rng"
)

// testProblem builds a small strictly-feasible convex instance with the
// entropy regularizer enabled (MFCP-AD's domain).
func testProblem(r *rng.Source, m, n int) *matching.Problem {
	T := mat.NewDense(m, n)
	A := mat.NewDense(m, n)
	for k := range T.Data {
		T.Data[k] = r.Uniform(0.3, 2.5)
		A.Data[k] = r.Uniform(0.85, 0.99)
	}
	p := matching.NewProblem(T, A)
	p.Gamma = 0.8
	p.Beta = 6
	p.Lambda = 0.05
	p.Entropy = 0.05
	return p
}

// preciseSolve converges the relaxed problem tightly so finite differences
// of the argmin map are clean.
func preciseSolve(p *matching.Problem, init *mat.Dense) *mat.Dense {
	return matching.SolveRelaxed(p, matching.SolveOptions{Iters: 4000, Tol: 1e-12, Init: init})
}

// lossAt computes L(θ) = ⟨w, X*(θ)⟩ for perturbed matrices.
func lossAt(p *matching.Problem, w *mat.Dense) float64 {
	X := preciseSolve(p, nil)
	return dot(w, X)
}

func TestAdjointGradsMatchFiniteDiffT(t *testing.T) {
	r := rng.New(1)
	p := testProblem(r, 3, 4)
	X := preciseSolve(p, nil)
	w := mat.NewDense(3, 4)
	for k := range w.Data {
		w.Data[k] = r.Norm()
	}
	dT, _, err := AdjointGrads(p, X, w)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-4
	for _, k := range []int{0, 3, 5, 7, 11} {
		orig := p.T.Data[k]
		p.T.Data[k] = orig + h
		up := lossAt(p, w)
		p.T.Data[k] = orig - h
		down := lossAt(p, w)
		p.T.Data[k] = orig
		fd := (up - down) / (2 * h)
		if math.Abs(fd-dT.Data[k]) > 2e-2*(1+math.Abs(fd)) {
			t.Fatalf("dL/dT[%d]: adjoint %v, fd %v", k, dT.Data[k], fd)
		}
	}
}

func TestAdjointGradsMatchFiniteDiffA(t *testing.T) {
	r := rng.New(2)
	p := testProblem(r, 3, 4)
	X := preciseSolve(p, nil)
	w := mat.NewDense(3, 4)
	for k := range w.Data {
		w.Data[k] = r.Norm()
	}
	_, dA, err := AdjointGrads(p, X, w)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-4
	for _, k := range []int{1, 4, 6, 9} {
		orig := p.A.Data[k]
		p.A.Data[k] = orig + h
		up := lossAt(p, w)
		p.A.Data[k] = orig - h
		down := lossAt(p, w)
		p.A.Data[k] = orig
		fd := (up - down) / (2 * h)
		if math.Abs(fd-dA.Data[k]) > 2e-2*(1+math.Abs(fd)) {
			t.Fatalf("dL/dA[%d]: adjoint %v, fd %v", k, dA.Data[k], fd)
		}
	}
}

func TestAdjointNonZeroReliabilityGradient(t *testing.T) {
	// The whole point of the interior-point reformulation (§3.2): the
	// gradient w.r.t. Â must NOT vanish when the constraint is satisfied.
	r := rng.New(3)
	p := testProblem(r, 3, 5)
	X := preciseSolve(p, nil)
	if p.ReliabilityMargin(X) <= 0 {
		t.Fatal("test instance unexpectedly infeasible")
	}
	// Note w must not be constant: columns of X conserve mass, so a uniform
	// w has exactly zero directional sensitivity to any parameter.
	w := mat.NewDense(3, 5)
	for k := range w.Data {
		w.Data[k] = r.Norm()
	}
	_, dA, err := AdjointGrads(p, X, w)
	if err != nil {
		t.Fatal(err)
	}
	if dA.MaxAbs() < 1e-8 {
		t.Fatalf("reliability gradient vanished: %v", dA.MaxAbs())
	}
}

func TestJacobiansMatchAdjoint(t *testing.T) {
	// The adjoint form must equal wᵀ·J for the full Jacobians.
	r := rng.New(4)
	p := testProblem(r, 2, 3)
	X := preciseSolve(p, nil)
	w := mat.NewDense(2, 3)
	for k := range w.Data {
		w.Data[k] = r.Norm()
	}
	dT, dA, err := AdjointGrads(p, X, w)
	if err != nil {
		t.Fatal(err)
	}
	JT, JA, err := Jacobians(p, X)
	if err != nil {
		t.Fatal(err)
	}
	mn := 6
	for col := 0; col < mn; col++ {
		sT, sA := 0.0, 0.0
		for row := 0; row < mn; row++ {
			sT += w.Data[row] * JT.At(row, col)
			sA += w.Data[row] * JA.At(row, col)
		}
		if math.Abs(sT-dT.Data[col]) > 1e-8 {
			t.Fatalf("T col %d: jacobian %v adjoint %v", col, sT, dT.Data[col])
		}
		if math.Abs(sA-dA.Data[col]) > 1e-8 {
			t.Fatalf("A col %d: jacobian %v adjoint %v", col, sA, dA.Data[col])
		}
	}
}

func TestJacobianColumnsSumToZero(t *testing.T) {
	// Each column of X lives on a simplex: perturbing any parameter moves
	// mass within columns, so per-column entries of dX/dθ must sum to 0.
	r := rng.New(5)
	p := testProblem(r, 3, 3)
	X := preciseSolve(p, nil)
	JT, JA, err := Jacobians(p, X)
	if err != nil {
		t.Fatal(err)
	}
	n := p.N()
	for col := 0; col < 9; col++ {
		for j := 0; j < n; j++ {
			sT, sA := 0.0, 0.0
			for i := 0; i < p.M(); i++ {
				sT += JT.At(i*n+j, col)
				sA += JA.At(i*n+j, col)
			}
			if math.Abs(sT) > 1e-8 || math.Abs(sA) > 1e-8 {
				t.Fatalf("column mass not conserved: sT=%v sA=%v", sT, sA)
			}
		}
	}
}

func TestADRequiresEntropyAndConvexity(t *testing.T) {
	r := rng.New(6)
	p := testProblem(r, 2, 2)
	X := preciseSolve(p, nil)
	w := mat.NewDense(2, 2).Fill(1)

	noEntropy := *p
	noEntropy.Entropy = 0
	if _, _, err := AdjointGrads(&noEntropy, X, w); err == nil {
		t.Fatal("AD accepted zero entropy")
	}

	parallel := *p
	parallel.Speedups = []cluster.SpeedupCurve{cluster.DefaultSpeedup(), cluster.DefaultSpeedup()}
	if _, _, err := AdjointGrads(&parallel, X, w); err != ErrNotConvex {
		t.Fatal("AD accepted non-convex problem")
	}

	linear := *p
	linear.Objective = matching.LinearSum
	if _, _, err := AdjointGrads(&linear, X, w); err != ErrNotConvex {
		t.Fatal("AD accepted linear-sum objective")
	}
}

func TestZerothOrderRowVJPMatchesAdjoint(t *testing.T) {
	// In the convex setting the zeroth-order estimate must agree with the
	// analytic gradient up to sampling noise (Theorem 3's bound).
	r := rng.New(7)
	p := testProblem(r, 3, 4)
	X := preciseSolve(p, nil)
	w := mat.NewDense(3, 4)
	for k := range w.Data {
		w.Data[k] = r.Norm()
	}
	dT, dA, err := AdjointGrads(p, X, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ZeroOrderConfig{Delta: 0.02, Samples: 600, Solve: func(q *matching.Problem, init *mat.Dense) *mat.Dense {
		return matching.SolveRelaxed(q, matching.SolveOptions{Iters: 800, Tol: 1e-10, Init: init})
	}}
	row := 1
	zT, zA := RowVJP(p, X, w, row, cfg, r.Split("zo"))
	// Compare direction and magnitude loosely: cosine similarity > 0.9.
	cos := func(a, b mat.Vec) float64 {
		na, nb := a.Norm2(), b.Norm2()
		if na == 0 || nb == 0 {
			return 0
		}
		return a.Dot(b) / (na * nb)
	}
	if c := cos(zT, dT.Row(row)); c < 0.9 {
		t.Fatalf("zeroth-order dT cosine %v\nzo=%v\nad=%v", c, zT, dT.Row(row))
	}
	if c := cos(zA, dA.Row(row)); c < 0.85 {
		t.Fatalf("zeroth-order dA cosine %v\nzo=%v\nad=%v", c, zA, dA.Row(row))
	}
}

func TestZerothOrderVarianceShrinksWithSamples(t *testing.T) {
	r := rng.New(8)
	p := testProblem(r, 3, 3)
	X := preciseSolve(p, nil)
	w := mat.NewDense(3, 3).Fill(1)
	spread := func(samples int) float64 {
		var acc float64
		var est []mat.Vec
		for rep := 0; rep < 6; rep++ {
			zT, _ := RowVJP(p, X, w, 0, ZeroOrderConfig{Delta: 0.05, Samples: samples}, r.SplitIndexed("rep", rep*1000+samples))
			est = append(est, zT)
		}
		// mean pairwise distance
		cnt := 0
		for i := range est {
			for j := i + 1; j < len(est); j++ {
				d := est[i].Clone().AddScaled(-1, est[j]).Norm2()
				acc += d
				cnt++
			}
		}
		return acc / float64(cnt)
	}
	small := spread(4)
	large := spread(64)
	if large > small {
		t.Fatalf("spread did not shrink with samples: S=4 %v vs S=64 %v", small, large)
	}
}

func TestZerothOrderWorksOnNonConvex(t *testing.T) {
	// The parallel-execution setting: AD refuses, FG must still produce a
	// finite, non-trivial gradient.
	r := rng.New(9)
	p := testProblem(r, 3, 5)
	p.Speedups = []cluster.SpeedupCurve{
		cluster.DefaultSpeedup(), {Floor: 0.7, Rate: 0.4}, cluster.DefaultSpeedup(),
	}
	X := preciseSolve(p, nil)
	w := mat.NewDense(3, 5)
	for k := range w.Data {
		w.Data[k] = r.Norm()
	}
	zT, zA := RowVJP(p, X, w, 2, ZeroOrderConfig{Delta: 0.05, Samples: 32}, r.Split("zo"))
	for _, v := range append(zT.Clone(), zA...) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite zeroth-order gradient: %v %v", zT, zA)
		}
	}
	if zT.NormInf() == 0 {
		t.Fatal("time gradient identically zero")
	}
}

func TestFullVJPShapes(t *testing.T) {
	r := rng.New(10)
	p := testProblem(r, 3, 4)
	X := preciseSolve(p, nil)
	w := mat.NewDense(3, 4).Fill(1)
	dT, dA := FullVJP(p, X, w, ZeroOrderConfig{Samples: 8}, r.Split("full"))
	if dT.Rows != 3 || dT.Cols != 4 || dA.Rows != 3 || dA.Cols != 4 {
		t.Fatal("FullVJP shape mismatch")
	}
}

func TestOptimalDelta(t *testing.T) {
	d := OptimalDelta(1, 10, 16)
	want := math.Sqrt(math.Sqrt(2.0 / (100 * 16)))
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("OptimalDelta=%v want %v", d, want)
	}
	if OptimalDelta(0, 10, 16) != 0.05 {
		t.Fatal("degenerate OptimalDelta should fall back to default")
	}
	// Larger S → smaller optimal Δ (variance shrinks, take less bias).
	if OptimalDelta(1, 10, 64) >= OptimalDelta(1, 10, 4) {
		t.Fatal("OptimalDelta not decreasing in S")
	}
}

func TestBoundaryDetection(t *testing.T) {
	// Construct an instance whose optimum pins the reliability margin near
	// zero: γ barely achievable.
	T := mat.FromRows([][]float64{{1, 1}, {1, 1}})
	A := mat.FromRows([][]float64{{0.849, 0.849}, {0.8495, 0.8495}})
	p := matching.NewProblem(T, A)
	p.Gamma = 0.8493
	p.Entropy = 0.05
	X := preciseSolve(p, nil)
	w := mat.NewDense(2, 2).Fill(1)
	if _, _, err := AdjointGrads(p, X, w); err == nil {
		// Not necessarily ErrBoundary (the barrier may keep u above the
		// threshold), but if it succeeds the margin must be genuinely safe.
		if u := p.ReliabilityMargin(X); u < 1e-6 {
			t.Fatalf("AD accepted boundary margin %v", u)
		}
	}
}

func BenchmarkAdjointGrads3x10(b *testing.B) {
	r := rng.New(1)
	p := testProblem(r, 3, 10)
	X := preciseSolve(p, nil)
	w := mat.NewDense(3, 10).Fill(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := AdjointGrads(p, X, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRowVJP3x10S8(b *testing.B) {
	r := rng.New(1)
	p := testProblem(r, 3, 10)
	X := preciseSolve(p, nil)
	w := mat.NewDense(3, 10).Fill(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RowVJP(p, X, w, 0, ZeroOrderConfig{Samples: 8}, r.SplitIndexed("b", i))
	}
}
