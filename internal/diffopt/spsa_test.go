package diffopt

import (
	"math"
	"testing"

	"mfcp/internal/cluster"
	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/rng"
)

func TestSPSADirectionMatchesAdjoint(t *testing.T) {
	r := rng.New(71)
	p := testProblem(r, 3, 4)
	X := preciseSolve(p, nil)
	w := mat.NewDense(3, 4)
	r.NormVec(w.Data)
	dTa, dAa, err := AdjointGrads(p, X, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ZeroOrderConfig{Delta: 0.02, Samples: 800, Solve: func(q *matching.Problem, init *mat.Dense) *mat.Dense {
		return matching.SolveRelaxed(q, matching.SolveOptions{Iters: 800, Tol: 1e-10, Init: init})
	}}
	dTs, dAs := SPSAVJP(p, X, w, cfg, r.Split("spsa"))
	cos := func(a, b mat.Vec) float64 {
		return a.Dot(b) / (a.Norm2()*b.Norm2() + 1e-300)
	}
	if c := cos(mat.Vec(dTs.Data), mat.Vec(dTa.Data)); c < 0.85 {
		t.Fatalf("SPSA dT cosine %v", c)
	}
	if c := cos(mat.Vec(dAs.Data), mat.Vec(dAa.Data)); c < 0.75 {
		t.Fatalf("SPSA dA cosine %v", c)
	}
}

func TestSPSAFiniteOnNonConvex(t *testing.T) {
	r := rng.New(72)
	p := testProblem(r, 3, 5)
	p.Speedups = nonConvexSpeedups(3)
	X := preciseSolve(p, nil)
	w := mat.NewDense(3, 5)
	r.NormVec(w.Data)
	dT, dA := SPSAVJP(p, X, w, ZeroOrderConfig{Samples: 16}, r.Split("spsa"))
	for k := range dT.Data {
		if math.IsNaN(dT.Data[k]) || math.IsNaN(dA.Data[k]) {
			t.Fatal("NaN in SPSA gradient")
		}
	}
	if dT.MaxAbs() == 0 {
		t.Fatal("SPSA time gradient identically zero")
	}
}

func TestRademacherEntries(t *testing.T) {
	r := rng.New(73)
	d := rademacherVec(r, mat.NewVec(64))
	plus, minus := 0, 0
	for _, v := range d {
		switch v {
		case 1:
			plus++
		case -1:
			minus++
		default:
			t.Fatalf("non-Rademacher entry %v", v)
		}
	}
	if plus == 0 || minus == 0 {
		t.Fatal("degenerate Rademacher draw")
	}
}

// nonConvexSpeedups builds default ζ curves for m clusters (test helper).
func nonConvexSpeedups(m int) []cluster.SpeedupCurve {
	out := make([]cluster.SpeedupCurve, m)
	for i := range out {
		out[i] = cluster.DefaultSpeedup()
	}
	return out
}
