package diffopt

import (
	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/mfcperr"
)

// UnrollConfig parameterizes backpropagation through the solver.
type UnrollConfig struct {
	// Iters is the number of mirror-descent steps to unroll (default 120).
	Iters int
	// LR is the step size η (default 0.5, matching the solver default).
	LR float64
}

func (c *UnrollConfig) fillDefaults() {
	if c.Iters == 0 {
		c.Iters = 120
	}
	if c.LR == 0 {
		c.LR = 0.5
	}
}

// Validate rejects unroll parameters outside their admissible ranges (it
// accepts the zero values fillDefaults later replaces).
func (c *UnrollConfig) Validate() error {
	if c.Iters < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "diffopt: unroll Iters %d must be non-negative", c.Iters)
	}
	if c.LR < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "diffopt: unroll LR %g must be non-negative", c.LR)
	}
	return nil
}

// UnrolledGrads computes dL/dT̂ and dL/dÂ by differentiating through the
// mirror-descent iterations themselves (Domke-style "unrolling") rather
// than through the optimality conditions. Given w = ∂L/∂X_K at the final
// iterate, it replays the forward trajectory
//
//	X_k = colsoftmax(Y_k),   Y_{k+1} = Y_k − η·∇_X F(X_k, T̂, Â),
//
// and backpropagates with the closed-form Hessian- and cross-derivative
// products of hvp.go. It returns the final iterate alongside the gradients.
//
// Compared to AdjointGrads (implicit differentiation at the converged
// optimum) unrolling needs no KKT solve, tolerates non-converged or
// boundary trajectories, and differentiates exactly the computation the
// solver performs — at the cost of O(K) Hessian products and storing K
// iterates. It shares the convex-sequential-objective restriction.
func UnrolledGrads(p *matching.Problem, w *mat.Dense, cfg UnrollConfig) (X, dT, dA *mat.Dense, err error) {
	return UnrolledGradsFunc(p, func(*mat.Dense) *mat.Dense { return w }, cfg)
}

// UnrolledGradsFunc is UnrolledGrads with the loss gradient supplied as a
// function of the final iterate — needed when ∂L/∂X itself depends on where
// the trajectory lands (as the regret loss does).
func UnrolledGradsFunc(p *matching.Problem, wAt func(X *mat.Dense) *mat.Dense, cfg UnrollConfig) (X, dT, dA *mat.Dense, err error) {
	cfg.fillDefaults()
	if !p.IsConvex() || p.Objective != matching.SmoothMakespan {
		return nil, nil, nil, ErrNotConvex
	}
	m, n := p.M(), p.N()

	// Forward pass, storing every iterate. One workspace supplies the
	// gradient scratch for all K steps.
	Y := mat.NewDense(m, n) // zero logits = uniform columns
	iterates := make([]*mat.Dense, cfg.Iters+1)
	grad := mat.NewDense(m, n)
	ws := matching.NewWorkspace(m, n)
	for k := 0; k <= cfg.Iters; k++ {
		Xk := colSoftmax(Y, nil)
		iterates[k] = Xk
		if k == cfg.Iters {
			break
		}
		p.GradXWS(Xk, grad, ws)
		Y.AddScaled(-cfg.LR, grad)
	}
	X = iterates[cfg.Iters]

	// Backward pass.
	dT = mat.NewDense(m, n)
	dA = mat.NewDense(m, n)
	// dL/dY at step K: softmax-Jacobian product with w at the final iterate.
	dY := softmaxJVP(X, wAt(X), nil)
	hv := mat.NewDense(m, n)
	sv := mat.NewDense(m, n)
	cross := mat.NewDense(m, n)
	for k := cfg.Iters - 1; k >= 0; k-- {
		Xk := iterates[k]
		l, lerr := linearize(p, Xk)
		if lerr != nil {
			return nil, nil, nil, lerr
		}
		// Parameter gradients: dL/dθ += −η · B_θ(X_k)ᵀ · dY.
		l.CrossTVec(dY, cross)
		dT.AddScaled(-cfg.LR, cross)
		l.CrossAVec(dY, cross)
		dA.AddScaled(-cfg.LR, cross)
		// State gradient: dY ← dY − η · S(X_k) · H(X_k) · dY.
		l.HessVec(dY, hv)
		softmaxJVP(Xk, hv, sv)
		dY.AddScaled(-cfg.LR, sv)
	}
	return X, dT, dA, nil
}

// colSoftmax writes the column-wise softmax of logits into dst
// (allocating when nil).
func colSoftmax(logits, dst *mat.Dense) *mat.Dense {
	if dst == nil {
		dst = mat.NewDense(logits.Rows, logits.Cols)
	}
	col := mat.NewVec(logits.Rows)
	sm := mat.NewVec(logits.Rows)
	for j := 0; j < logits.Cols; j++ {
		for i := 0; i < logits.Rows; i++ {
			col[i] = logits.At(i, j)
		}
		col.Softmax(1, sm)
		for i := 0; i < logits.Rows; i++ {
			dst.Set(i, j, sm[i])
		}
	}
	return dst
}

// softmaxJVP computes, column by column, S(x)·v where S = diag(x) − x xᵀ is
// the softmax Jacobian (symmetric, so this is also Sᵀ·v). dst is allocated
// when nil; v and dst may not alias.
func softmaxJVP(X, v, dst *mat.Dense) *mat.Dense {
	if dst == nil {
		dst = mat.NewDense(X.Rows, X.Cols)
	}
	for j := 0; j < X.Cols; j++ {
		dot := 0.0
		for i := 0; i < X.Rows; i++ {
			dot += X.At(i, j) * v.At(i, j)
		}
		for i := 0; i < X.Rows; i++ {
			x := X.At(i, j)
			dst.Set(i, j, x*(v.At(i, j)-dot))
		}
	}
	return dst
}
