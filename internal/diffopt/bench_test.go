package diffopt

import (
	"testing"

	"mfcp/internal/mat"
	"mfcp/internal/rng"
)

// Micro-benchmarks for the zeroth-order gradient estimators. Every sample
// pays two full relaxed matching solves, so these inherit the solver's
// allocation behavior; BENCH_matching.json records before/after numbers for
// the workspace rewrite. Reproduce with
//
//	go test ./internal/diffopt -run '^$' -bench 'RowVJP|FullVJP' -benchmem

// BenchmarkRowVJP measures Algorithm 2's per-row estimator (S=8 samples,
// 2·S inner solves) on a 3×10 instance.
func BenchmarkRowVJP(b *testing.B) {
	r := rng.New(3)
	p := testProblem(r, 3, 10)
	X := preciseSolve(p, nil)
	w := mat.NewDense(3, 10).Fill(1)
	cfg := ZeroOrderConfig{Samples: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RowVJP(p, X, w, 0, cfg, r.SplitIndexed("bench", i))
	}
}

// BenchmarkFullVJP measures the batched full-matrix estimator the default
// (RowWise=false) trainer uses.
func BenchmarkFullVJP(b *testing.B) {
	r := rng.New(3)
	p := testProblem(r, 3, 10)
	X := preciseSolve(p, nil)
	w := mat.NewDense(3, 10).Fill(1)
	cfg := ZeroOrderConfig{Samples: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FullVJP(p, X, w, cfg, r.SplitIndexed("bench", i))
	}
}
