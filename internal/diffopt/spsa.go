package diffopt

import (
	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
)

// SPSAVJP estimates dL/dT̂ and dL/dÂ by simultaneous perturbation
// stochastic approximation (Spall, 1992): instead of Algorithm 2's
// one-sided Gaussian probes, each sample draws a Rademacher (±1) direction
// and uses a CENTRAL difference,
//
//	ĝ = [L(θ + Δ·δ) − L(θ − Δ·δ)] / (2Δ) · δ,
//
// which cancels the first-order bias (O(Δ²) instead of O(Δ)) at the same
// two-solves-per-sample cost as Algorithm 2's paired T/A probes. T and A
// are perturbed jointly in one draw, so S samples need 2S matching solves
// for gradients of BOTH matrices — half of Algorithm 2's 4S(+) budget.
//
// Provided as an alternative estimator for the gradient-route studies; the
// trainers default to the paper's Algorithm 2.
func SPSAVJP(p *matching.Problem, X, w *mat.Dense, cfg ZeroOrderConfig, r *rng.Source) (dT, dA *mat.Dense) {
	cfg.fillDefaults()
	m, n := p.M(), p.N()
	type sample struct{ dT, dA *mat.Dense }
	grads := parallel.Map(cfg.Samples, func(s int) sample {
		sr := r.SplitIndexed("spsa", s)
		dirT := rademacher(sr, m, n)
		dirA := rademacher(sr, m, n)

		plus := p.WithPrediction(
			p.T.Clone().AddScaled(cfg.Delta, dirT),
			perturbedA(p.A, dirA, cfg.Delta),
		)
		minus := p.WithPrediction(
			p.T.Clone().AddScaled(-cfg.Delta, dirT),
			perturbedA(p.A, dirA, -cfg.Delta),
		)
		Xp := cfg.Solve(plus, X)
		Xm := cfg.Solve(minus, X)
		g := (dot(w, Xp) - dot(w, Xm)) / (2 * cfg.Delta)
		return sample{dT: dirT.Scale(g), dA: dirA.Scale(g)}
	})
	dT = mat.NewDense(m, n)
	dA = mat.NewDense(m, n)
	inv := 1 / float64(cfg.Samples)
	for _, g := range grads {
		dT.AddScaled(inv, g.dT)
		dA.AddScaled(inv, g.dA)
	}
	return dT, dA
}

// rademacher fills a matrix with independent ±1 entries.
func rademacher(r *rng.Source, m, n int) *mat.Dense {
	out := mat.NewDense(m, n)
	for k := range out.Data {
		if r.Bernoulli(0.5) {
			out.Data[k] = 1
		} else {
			out.Data[k] = -1
		}
	}
	return out
}
