package diffopt

import (
	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
)

// SPSAVJP estimates dL/dT̂ and dL/dÂ by simultaneous perturbation
// stochastic approximation (Spall, 1992): instead of Algorithm 2's
// one-sided Gaussian probes, each sample draws a Rademacher (±1) direction
// and uses a CENTRAL difference,
//
//	ĝ = [L(θ + Δ·δ) − L(θ − Δ·δ)] / (2Δ) · δ,
//
// which cancels the first-order bias (O(Δ²) instead of O(Δ)) at the same
// two-solves-per-sample cost as Algorithm 2's paired T/A probes. T and A
// are perturbed jointly in one draw, so S samples need 2S matching solves
// for gradients of BOTH matrices — half of Algorithm 2's 4S(+) budget.
//
// Provided as an alternative estimator for the gradient-route studies; the
// trainers default to the paper's Algorithm 2. Like RowVJP/FullVJP it
// perturbs into pooled per-worker shadow matrices, solves in pooled
// workspaces, and reduces sample contributions in sample order.
func SPSAVJP(p *matching.Problem, X, w *mat.Dense, cfg ZeroOrderConfig, r *rng.Source) (dT, dA *mat.Dense) {
	cfg.fillDefaults()
	m, n := p.M(), p.N()
	dirT := mat.NewDense(cfg.Samples, m*n)
	dirA := mat.NewDense(cfg.Samples, m*n)
	g := make([]float64, cfg.Samples)
	parallel.ForChunked(cfg.Samples, 1, func(lo, hi int) {
		zw := zoArena.Get()
		defer zoArena.Put(zw)
		for s := lo; s < hi; s++ {
			sr := r.SplitIndexed("spsa", s)
			vT := rademacherVec(sr, dirT.Row(s))
			vA := rademacherVec(sr, dirA.Row(s))
			zw.ws.Reset(m, n)

			stage := func(delta float64) *matching.Problem {
				zw.ws.TShadow.CopyFrom(p.T)
				mat.Vec(zw.ws.TShadow.Data).AddScaled(delta, vT)
				zw.ws.AShadow.CopyFrom(p.A)
				mat.Vec(zw.ws.AShadow.Data).AddScaled(delta, vA)
				clampUnit(zw.ws.AShadow.Data)
				zw.probT = *p
				zw.probT.T = zw.ws.TShadow
				zw.probT.A = zw.ws.AShadow
				return &zw.probT
			}
			lp := dot(w, cfg.SolveWS(stage(cfg.Delta), X, zw.ws))
			lm := dot(w, cfg.SolveWS(stage(-cfg.Delta), X, zw.ws))
			g[s] = (lp - lm) / (2 * cfg.Delta)
		}
	})
	dT = mat.NewDense(m, n)
	dA = mat.NewDense(m, n)
	inv := 1 / float64(cfg.Samples)
	for s := 0; s < cfg.Samples; s++ {
		mat.Vec(dT.Data).AddScaled(inv, dirT.Row(s).Scale(g[s]))
		mat.Vec(dA.Data).AddScaled(inv, dirA.Row(s).Scale(g[s]))
	}
	return dT, dA
}

// rademacherVec fills dst with independent ±1 entries and returns it.
func rademacherVec(r *rng.Source, dst mat.Vec) mat.Vec {
	for k := range dst {
		if r.Bernoulli(0.5) {
			dst[k] = 1
		} else {
			dst[k] = -1
		}
	}
	return dst
}
