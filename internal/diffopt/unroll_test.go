package diffopt

import (
	"math"
	"testing"

	"mfcp/internal/cluster"
	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/rng"
)

func TestColSoftmaxColumnsSumToOne(t *testing.T) {
	r := rng.New(31)
	logits := mat.NewDense(3, 5)
	r.NormVec(logits.Data)
	X := colSoftmax(logits, nil)
	for j := 0; j < 5; j++ {
		sum := 0.0
		for i := 0; i < 3; i++ {
			v := X.At(i, j)
			if v <= 0 || v >= 1 {
				t.Fatalf("softmax value %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("column %d sum %v", j, sum)
		}
	}
}

func TestSoftmaxJVPMatchesFiniteDiff(t *testing.T) {
	r := rng.New(32)
	logits := mat.NewDense(3, 2)
	r.NormVec(logits.Data)
	v := mat.NewDense(3, 2)
	r.NormVec(v.Data)
	X := colSoftmax(logits, nil)
	analytic := softmaxJVP(X, v, nil)
	// finite-difference d⟨v, softmax(Y)⟩/dY
	const h = 1e-6
	for k := range logits.Data {
		orig := logits.Data[k]
		logits.Data[k] = orig + h
		up := dot(v, colSoftmax(logits, nil))
		logits.Data[k] = orig - h
		down := dot(v, colSoftmax(logits, nil))
		logits.Data[k] = orig
		fd := (up - down) / (2 * h)
		if math.Abs(fd-analytic.Data[k]) > 1e-6 {
			t.Fatalf("JVP[%d]: analytic %v fd %v", k, analytic.Data[k], fd)
		}
	}
}

func TestHessVecMatchesFiniteDiffOfGrad(t *testing.T) {
	r := rng.New(33)
	p := testProblem(r, 3, 4)
	X := preciseSolve(p, nil)
	l, err := linearize(p, X)
	if err != nil {
		t.Fatal(err)
	}
	v := mat.NewDense(3, 4)
	r.NormVec(v.Data)
	analytic := l.HessVec(v, nil)
	// FD: (∇F(X + hv) − ∇F(X − hv)) / 2h
	const h = 1e-6
	up := p.GradX(X.Clone().AddScaled(h, v), nil)
	down := p.GradX(X.Clone().AddScaled(-h, v), nil)
	for k := range analytic.Data {
		fd := (up.Data[k] - down.Data[k]) / (2 * h)
		if math.Abs(fd-analytic.Data[k]) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("HessVec[%d]: analytic %v fd %v", k, analytic.Data[k], fd)
		}
	}
}

func TestCrossVecsMatchAdjointContractions(t *testing.T) {
	// CrossTVec/CrossAVec must reproduce the contractions inside
	// AdjointGrads: for the same adjoint y, AdjointGrads returns
	// −CrossVec(y_solved); here we verify the raw products against the
	// explicit Jacobians' transpose action.
	r := rng.New(34)
	p := testProblem(r, 2, 3)
	X := preciseSolve(p, nil)
	l, err := linearize(p, X)
	if err != nil {
		t.Fatal(err)
	}
	y := mat.NewDense(2, 3)
	r.NormVec(y.Data)
	gotT := l.CrossTVec(y, nil)
	gotA := l.CrossAVec(y, nil)
	// Explicit B via finite differences of ∇_X F in T and A.
	const h = 1e-6
	for k := range p.T.Data {
		orig := p.T.Data[k]
		p.T.Data[k] = orig + h
		up := p.GradX(X, nil)
		p.T.Data[k] = orig - h
		down := p.GradX(X, nil)
		p.T.Data[k] = orig
		want := 0.0
		for idx := range y.Data {
			want += y.Data[idx] * (up.Data[idx] - down.Data[idx]) / (2 * h)
		}
		if math.Abs(want-gotT.Data[k]) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("CrossTVec[%d]: got %v want %v", k, gotT.Data[k], want)
		}
	}
	for k := range p.A.Data {
		orig := p.A.Data[k]
		p.A.Data[k] = orig + h
		up := p.GradX(X, nil)
		p.A.Data[k] = orig - h
		down := p.GradX(X, nil)
		p.A.Data[k] = orig
		want := 0.0
		for idx := range y.Data {
			want += y.Data[idx] * (up.Data[idx] - down.Data[idx]) / (2 * h)
		}
		if math.Abs(want-gotA.Data[k]) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("CrossAVec[%d]: got %v want %v", k, gotA.Data[k], want)
		}
	}
}

func TestUnrolledGradsMatchFiniteDiff(t *testing.T) {
	// The unrolled gradient differentiates the K-step solver output
	// exactly, so it must match finite differences of that same K-step map
	// tightly — no convergence slack needed.
	r := rng.New(35)
	p := testProblem(r, 3, 4)
	w := mat.NewDense(3, 4)
	r.NormVec(w.Data)
	cfg := UnrollConfig{Iters: 60, LR: 0.4}
	_, dT, dA, err := UnrolledGrads(p, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lossAt := func() float64 {
		X, _, _, err := UnrolledGrads(p, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return dot(w, X)
	}
	const h = 1e-5
	for _, k := range []int{0, 3, 7, 11} {
		orig := p.T.Data[k]
		p.T.Data[k] = orig + h
		up := lossAt()
		p.T.Data[k] = orig - h
		down := lossAt()
		p.T.Data[k] = orig
		fd := (up - down) / (2 * h)
		if math.Abs(fd-dT.Data[k]) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("unrolled dT[%d]: analytic %v fd %v", k, dT.Data[k], fd)
		}
	}
	for _, k := range []int{1, 5, 9} {
		orig := p.A.Data[k]
		p.A.Data[k] = orig + h
		up := lossAt()
		p.A.Data[k] = orig - h
		down := lossAt()
		p.A.Data[k] = orig
		fd := (up - down) / (2 * h)
		if math.Abs(fd-dA.Data[k]) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("unrolled dA[%d]: analytic %v fd %v", k, dA.Data[k], fd)
		}
	}
}

func TestUnrolledAgreesWithAdjointWhenConverged(t *testing.T) {
	// With enough iterations the unrolled gradient approximates the
	// implicit (KKT) gradient at the optimum.
	r := rng.New(36)
	p := testProblem(r, 3, 4)
	w := mat.NewDense(3, 4)
	r.NormVec(w.Data)
	X, dTu, dAu, err := UnrolledGrads(p, w, UnrollConfig{Iters: 3000, LR: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	dTa, dAa, err := AdjointGrads(p, X, w)
	if err != nil {
		t.Fatal(err)
	}
	cos := func(a, b mat.Vec) float64 {
		return a.Dot(b) / (a.Norm2()*b.Norm2() + 1e-300)
	}
	if c := cos(mat.Vec(dTu.Data), mat.Vec(dTa.Data)); c < 0.98 {
		t.Fatalf("unrolled/adjoint dT cosine %v", c)
	}
	if c := cos(mat.Vec(dAu.Data), mat.Vec(dAa.Data)); c < 0.95 {
		t.Fatalf("unrolled/adjoint dA cosine %v", c)
	}
}

func TestUnrolledMatchesSolverIterate(t *testing.T) {
	// The forward trajectory inside UnrolledGrads must land where the
	// production mirror solver lands for the same budget/step size.
	r := rng.New(37)
	p := testProblem(r, 3, 5)
	w := mat.NewDense(3, 5).Fill(1)
	X, _, _, err := UnrolledGrads(p, w, UnrollConfig{Iters: 200, LR: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	Xs := matching.SolveRelaxed(p, matching.SolveOptions{Iters: 200, LR: 0.5, Tol: 0})
	if !X.Equal(Xs, 1e-6) {
		t.Fatalf("unrolled forward differs from solver:\n%v\nvs\n%v", X, Xs)
	}
}

func TestUnrolledRejectsNonConvex(t *testing.T) {
	r := rng.New(38)
	p := testProblem(r, 2, 2)
	p.Speedups = []cluster.SpeedupCurve{cluster.DefaultSpeedup(), cluster.DefaultSpeedup()}
	w := mat.NewDense(2, 2).Fill(1)
	if _, _, _, err := UnrolledGrads(p, w, UnrollConfig{}); err != ErrNotConvex {
		t.Fatalf("want ErrNotConvex, got %v", err)
	}
}

func BenchmarkUnrolledGrads3x10(b *testing.B) {
	r := rng.New(1)
	p := testProblem(r, 3, 10)
	w := mat.NewDense(3, 10).Fill(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := UnrolledGrads(p, w, UnrollConfig{Iters: 120}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEntropyHessianIsSPD(t *testing.T) {
	// The entropy regularizer exists to make the reduced Hessian positive
	// definite; certify it with a Cholesky factorization of the explicit
	// Hessian assembled from HessVec columns.
	r := rng.New(39)
	p := testProblem(r, 2, 3)
	X := preciseSolve(p, nil)
	l, err := linearize(p, X)
	if err != nil {
		t.Fatal(err)
	}
	mn := 6
	H := mat.NewDense(mn, mn)
	basis := mat.NewDense(2, 3)
	col := mat.NewDense(2, 3)
	for k := 0; k < mn; k++ {
		basis.Fill(0)
		basis.Data[k] = 1
		l.HessVec(basis, col)
		for row := 0; row < mn; row++ {
			H.Set(row, k, col.Data[row])
		}
	}
	// Symmetry first (Cholesky reads only the lower triangle).
	if !H.Equal(H.T(), 1e-8) {
		t.Fatal("Hessian not symmetric")
	}
	if !mat.IsSPD(H) {
		t.Fatalf("entropy-regularized Hessian not SPD:\n%v", H)
	}
	// Without entropy the Hessian is only PSD (low rank): it must fail the
	// strict SPD check.
	q := *p
	q.Entropy = 0
	lq, err := linearize(&q, X)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < mn; k++ {
		basis.Fill(0)
		basis.Data[k] = 1
		lq.HessVec(basis, col)
		for row := 0; row < mn; row++ {
			H.Set(row, k, col.Data[row])
		}
	}
	if mat.IsSPD(H) {
		t.Fatal("rank-deficient Hessian unexpectedly SPD")
	}
}
