// Package diffopt differentiates the matching argmin with respect to the
// predicted cost matrices — the core technical machinery of MFCP (§3.3–3.4).
//
// Two routes are provided, matching the paper's two variants:
//
//   - Analytical differentiation (MFCP-AD): for the convex sequential
//     setting, the total differential of the stationarity system (eq. 15)
//     yields dX*/dT̂ and dX*/dÂ. We implement the adjoint (vector–Jacobian)
//     form — one symmetric KKT solve per backward pass — plus full Jacobians
//     for analysis and tests.
//
//   - Zeroth-order forward gradients (MFCP-FG, Algorithm 2): Gaussian
//     perturbations of the predicted row, re-solving the matching, and
//     averaging directional differences. Works for the non-convex parallel
//     setting where no closed form exists.
//
// All derivative code is validated against finite differences of the actual
// solver output in the package tests.
package diffopt

import (
	"errors"
	"fmt"

	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/mfcperr"
)

// ErrNotConvex is returned when analytical differentiation is requested for
// a problem outside its domain (parallel speedups, linear-sum objective, or
// hard penalty). It wraps mfcperr.ErrBadConfig: the request, not the math,
// is at fault.
var ErrNotConvex = fmt.Errorf("diffopt: analytical differentiation requires the convex sequential setting with a log barrier: %w", mfcperr.ErrBadConfig)

// ErrBoundary is returned when the optimum sits too close to the constraint
// boundary for the implicit function theorem to apply. It wraps
// mfcperr.ErrNotConverged: trainers treat it like any other skipped-epoch
// gradient failure.
var ErrBoundary = fmt.Errorf("diffopt: optimum too close to reliability boundary for implicit differentiation: %w", mfcperr.ErrNotConverged)

// adCompatible checks the problem is in MFCP-AD's domain.
func adCompatible(p *matching.Problem) error {
	if !p.IsConvex() || p.Objective != matching.SmoothMakespan || p.Barrier != matching.LogBarrier {
		return ErrNotConvex
	}
	if p.Entropy <= 0 {
		return errors.New("diffopt: analytical differentiation needs Entropy > 0 for a nonsingular KKT system (see matching.Problem.Entropy)")
	}
	return nil
}

// kktState caches the quantities shared by the Hessian blocks at X.
type kktState struct {
	m, n  int
	pw    mat.Vec // softmax weights of the loads
	u     float64 // reliability margin g(X, A)
	c     float64 // normalization constant in g
	X     *mat.Dense
	probT *mat.Dense
	probA *mat.Dense
	rho   float64
}

func newKKTState(p *matching.Problem, X *mat.Dense) (*kktState, error) {
	if err := adCompatible(p); err != nil {
		return nil, err
	}
	loads := p.Loads(X, nil)
	st := &kktState{
		m: p.M(), n: p.N(),
		pw:    mat.SoftmaxWeights(loads, p.Beta, nil),
		u:     p.ReliabilityMargin(X),
		X:     X,
		probT: p.T,
		probA: p.A,
		rho:   p.Entropy,
	}
	switch p.Norm {
	case matching.NormPerClusterTask:
		st.c = 1 / float64(st.m*st.n)
	default:
		st.c = 1 / float64(st.n)
	}
	if st.u < 1e-6 {
		return nil, ErrBoundary
	}
	return st, nil
}

// assembleKKT builds the symmetric reduced KKT matrix
//
//	K = [ ∇²_XX F   Dᵀ ]
//	    [ D         0  ]
//
// with D the N×MN column-sum (equality constraint) Jacobian, box
// constraints disregarded per §3.3 of the paper.
func (st *kktState) assembleKKT(beta, lambda float64) *mat.Dense {
	mn := st.m * st.n
	dim := mn + st.n
	K := mat.NewDense(dim, dim)
	bar := lambda * st.c * st.c / (st.u * st.u)
	for i := 0; i < st.m; i++ {
		ti := st.probT.Row(i)
		ai := st.probA.Row(i)
		for k := 0; k < st.m; k++ {
			tk := st.probT.Row(k)
			ak := st.probA.Row(k)
			// β·pw_i(δ_ik − pw_k) coefficient of t_i t_kᵀ.
			coef := -beta * st.pw[i] * st.pw[k]
			if i == k {
				coef += beta * st.pw[i]
			}
			for j := 0; j < st.n; j++ {
				row := K.Row(i*st.n + j)
				base := k * st.n
				for l := 0; l < st.n; l++ {
					row[base+l] += coef*ti[j]*tk[l] + bar*ai[j]*ak[l]
				}
			}
		}
		// Entropy diagonal ρ/x.
		for j := 0; j < st.n; j++ {
			x := st.X.At(i, j)
			if x < 1e-9 {
				x = 1e-9
			}
			K.Add(i*st.n+j, i*st.n+j, st.rho/x)
		}
	}
	// Equality blocks: D and Dᵀ.
	for j := 0; j < st.n; j++ {
		for i := 0; i < st.m; i++ {
			K.Set(mn+j, i*st.n+j, 1)
			K.Set(i*st.n+j, mn+j, 1)
		}
	}
	return K
}

// AdjointGrads computes dL/dT̂ and dL/dÂ given w = ∂L/∂X* at the relaxed
// optimum X* of p — the right-to-left gradient decomposition of equation
// (7), middle factor. It performs one KKT factorization and two cheap
// contraction passes.
func AdjointGrads(p *matching.Problem, X, w *mat.Dense) (dT, dA *mat.Dense, err error) {
	st, err := newKKTState(p, X)
	if err != nil {
		return nil, nil, err
	}
	mn := st.m * st.n
	K := st.assembleKKT(p.Beta, p.Lambda)
	rhs := mat.NewVec(mn + st.n)
	copy(rhs[:mn], w.Data)
	f, err := mat.Factorize(K)
	if err != nil {
		return nil, nil, fmt.Errorf("diffopt: KKT factorization: %v: %w", err, mfcperr.ErrNotConverged)
	}
	yFull, err := f.Solve(rhs, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("diffopt: KKT solve: %v: %w", err, mfcperr.ErrNotConverged)
	}
	y := mat.NewDense(st.m, st.n)
	copy(y.Data, yFull[:mn])

	// dL/dT_kl = −[ β·pw_k·x_kl·(r_k − R) + pw_k·y_kl ]
	// with r_i = Σ_j y_ij t_ij and R = Σ_i pw_i r_i.
	dT = mat.NewDense(st.m, st.n)
	r := mat.NewVec(st.m)
	for i := 0; i < st.m; i++ {
		r[i] = y.Row(i).Dot(st.probT.Row(i))
	}
	R := 0.0
	for i := 0; i < st.m; i++ {
		R += st.pw[i] * r[i]
	}
	for k := 0; k < st.m; k++ {
		xk := st.X.Row(k)
		yk := y.Row(k)
		drow := dT.Row(k)
		for l := 0; l < st.n; l++ {
			drow[l] = -(p.Beta*st.pw[k]*xk[l]*(r[k]-R) + st.pw[k]*yk[l])
		}
	}

	// dL/dA_kl = −[ −(λc/u)·y_kl + (λc²/u²)·q·x_kl ], q = Σ y ⊙ A.
	dA = mat.NewDense(st.m, st.n)
	q := 0.0
	for i := 0; i < st.m; i++ {
		q += y.Row(i).Dot(st.probA.Row(i))
	}
	lcu := p.Lambda * st.c / st.u
	lc2u2 := p.Lambda * st.c * st.c / (st.u * st.u)
	for k := 0; k < st.m; k++ {
		xk := st.X.Row(k)
		yk := y.Row(k)
		drow := dA.Row(k)
		for l := 0; l < st.n; l++ {
			drow[l] = -(-lcu*yk[l] + lc2u2*q*xk[l])
		}
	}
	return dT, dA, nil
}

// Jacobians computes the full Jacobians dX*/dT̂ and dX*/dÂ as (MN)×(MN)
// matrices (row index: vec(X) entry; column index: vec(T) or vec(A) entry).
// Intended for analysis and tests; training uses AdjointGrads.
func Jacobians(p *matching.Problem, X *mat.Dense) (JT, JA *mat.Dense, err error) {
	st, err := newKKTState(p, X)
	if err != nil {
		return nil, nil, err
	}
	mn := st.m * st.n
	K := st.assembleKKT(p.Beta, p.Lambda)
	f, err := mat.Factorize(K)
	if err != nil {
		return nil, nil, err
	}
	JT = mat.NewDense(mn, mn)
	JA = mat.NewDense(mn, mn)
	rhs := mat.NewVec(mn + st.n)
	sol := mat.NewVec(mn + st.n)
	// For each parameter θ_kl, rhs = −B[:, (kl)]; solve K·[dX;dν] = rhs.
	for k := 0; k < st.m; k++ {
		for l := 0; l < st.n; l++ {
			col := k*st.n + l
			// B_T column: ∂²F/∂x_ij∂t_kl = β pw_i (δ_ik − pw_k) x_kl t_ij + pw_i δ_ik δ_jl.
			rhs.Fill(0)
			xkl := st.X.At(k, l)
			for i := 0; i < st.m; i++ {
				coef := -p.Beta * st.pw[i] * st.pw[k]
				if i == k {
					coef += p.Beta * st.pw[i]
				}
				ti := st.probT.Row(i)
				for j := 0; j < st.n; j++ {
					v := coef * xkl * ti[j]
					if i == k && j == l {
						v += st.pw[i]
					}
					rhs[i*st.n+j] = -v
				}
			}
			if _, err := f.Solve(rhs, sol); err != nil {
				return nil, nil, err
			}
			for idx := 0; idx < mn; idx++ {
				JT.Set(idx, col, sol[idx])
			}
			// B_A column: ∂²F/∂x_ij∂a_kl = −(λc/u) δ_ik δ_jl + (λc²/u²) a_ij x_kl.
			rhs.Fill(0)
			lcu := p.Lambda * st.c / st.u
			lc2u2 := p.Lambda * st.c * st.c / (st.u * st.u)
			for i := 0; i < st.m; i++ {
				ai := st.probA.Row(i)
				for j := 0; j < st.n; j++ {
					v := lc2u2 * ai[j] * xkl
					if i == k && j == l {
						v -= lcu
					}
					rhs[i*st.n+j] = -v
				}
			}
			if _, err := f.Solve(rhs, sol); err != nil {
				return nil, nil, err
			}
			for idx := 0; idx < mn; idx++ {
				JA.Set(idx, col, sol[idx])
			}
		}
	}
	return JT, JA, nil
}
