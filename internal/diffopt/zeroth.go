package diffopt

import (
	"math"

	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/mfcperr"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
)

// SolveFn computes the relaxed matching optimum for a problem, optionally
// warm-started from init (which implementations must not mutate).
type SolveFn func(p *matching.Problem, init *mat.Dense) *mat.Dense

// SolveWSFn is SolveFn with a caller-supplied solver workspace; the result
// may alias ws and is only valid until the workspace's next use. The
// estimators below call it once per zeroth-order sample, immediately
// contract the result, and discard it — exactly the lifetime the workspace
// contract requires.
type SolveWSFn func(p *matching.Problem, init *mat.Dense, ws *matching.Workspace) *mat.Dense

// DefaultSolve is the standard inner solver used during gradient
// estimation: mirror descent with a warm start and a moderate budget.
func DefaultSolve(p *matching.Problem, init *mat.Dense) *mat.Dense {
	return matching.SolveRelaxed(p, matching.SolveOptions{Iters: 150, Init: init})
}

// DefaultSolveWS is DefaultSolve running allocation-free in ws.
func DefaultSolveWS(p *matching.Problem, init *mat.Dense, ws *matching.Workspace) *mat.Dense {
	return matching.SolveRelaxedWS(p, matching.SolveOptions{Iters: 150, Init: init}, ws)
}

// ZeroOrderConfig parameterizes Algorithm 2's estimator.
type ZeroOrderConfig struct {
	// Delta is the perturbation size Δ (default 0.05).
	Delta float64
	// Samples is the sampling count S (default 8).
	Samples int
	// Solve is the inner solver (default DefaultSolve). Prefer SolveWS:
	// a plain Solve cannot use the per-worker workspace and costs the
	// solver's full allocation overhead per sample.
	Solve SolveFn
	// SolveWS is the workspace-aware inner solver (default DefaultSolveWS,
	// or a wrapper around Solve when only Solve is set).
	SolveWS SolveWSFn
}

func (c *ZeroOrderConfig) fillDefaults() {
	if c.Delta == 0 {
		c.Delta = 0.05
	}
	if c.Samples == 0 {
		c.Samples = 8
	}
	if c.SolveWS == nil {
		if c.Solve != nil {
			// A custom plain solver wins over the workspace default so
			// existing call sites keep their exact solver behavior.
			solve := c.Solve
			c.SolveWS = func(p *matching.Problem, init *mat.Dense, _ *matching.Workspace) *mat.Dense {
				return solve(p, init)
			}
		} else {
			c.SolveWS = DefaultSolveWS
		}
	}
	if c.Solve == nil {
		c.Solve = DefaultSolve
	}
}

// Validate rejects estimator parameters outside their admissible ranges
// (it accepts the zero values fillDefaults later replaces).
func (c *ZeroOrderConfig) Validate() error {
	if c.Delta < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "diffopt: zeroth-order Delta %g must be non-negative", c.Delta)
	}
	if c.Samples < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "diffopt: zeroth-order Samples %d must be non-negative", c.Samples)
	}
	return nil
}

// OptimalDelta returns the bias/variance-balancing perturbation size of
// Theorem 3, Δ* = (2σ²_F / (β²·S))^{1/4}.
func OptimalDelta(sigmaF, beta float64, samples int) float64 {
	if sigmaF <= 0 || beta <= 0 || samples <= 0 {
		return 0.05
	}
	v := 2 * sigmaF * sigmaF / (beta * beta * float64(samples))
	return math.Sqrt(math.Sqrt(v))
}

// zoWorkspace is the per-worker scratch one zeroth-order sample needs: a
// solver workspace (whose TShadow/AShadow double as the perturbed-matrix
// staging buffers) plus Problem shells whose cost matrices point at the
// shadows. Workers check these out of zoArena, so buffers are reused
// across samples and across estimator calls instead of being cloned per
// sample.
type zoWorkspace struct {
	ws    *matching.Workspace
	probT matching.Problem
	probA matching.Problem
}

var zoArena = parallel.NewArena(func() *zoWorkspace {
	return &zoWorkspace{ws: matching.NewWorkspace(0, 0)}
})

// perturbedT stages p with its T matrix replaced by T + delta·(row-sparse
// or dense) perturbation already written into zw.ws.TShadow.
func (zw *zoWorkspace) problemWithShadows(p *matching.Problem, timeSide bool) *matching.Problem {
	if timeSide {
		zw.probT = *p
		zw.probT.T = zw.ws.TShadow
		return &zw.probT
	}
	zw.probA = *p
	zw.probA.A = zw.ws.AShadow
	return &zw.probA
}

// RowVJP estimates dL/dt̂_i and dL/dâ_i for one cluster row i by the
// forward-gradient method of Algorithm 2: S Gaussian directions, each
// requiring two extra matching solves (perturbed T̂ row, perturbed Â row).
//
// p carries the predicted matrices (T̂, Â); X is the unperturbed relaxed
// optimum X*(T̂, Â); w = ∂L/∂X*. Samples run in parallel with streams split
// deterministically from r; each worker solves in a pooled workspace and
// perturbs into its shadow matrices, so no T/A clones or solver buffers are
// allocated per sample. Sample contributions are reduced serially in sample
// order, keeping the estimate bit-deterministic for a given r.
func RowVJP(p *matching.Problem, X, w *mat.Dense, row int, cfg ZeroOrderConfig, r *rng.Source) (dTi, dAi mat.Vec) {
	cfg.fillDefaults()
	m, n := p.M(), p.N()
	// Base inner product ⟨w, X⟩ cancels in the difference; precompute the
	// perturbed-minus-base contraction per sample.
	base := dot(w, X)
	// Per-sample direction rows and scalar contractions, filled by the
	// workers into disjoint slots.
	dirT := mat.NewDense(cfg.Samples, n)
	dirA := mat.NewDense(cfg.Samples, n)
	gT := make([]float64, cfg.Samples)
	gA := make([]float64, cfg.Samples)
	parallel.ForChunked(cfg.Samples, 1, func(lo, hi int) {
		zw := zoArena.Get()
		defer zoArena.Put(zw)
		for s := lo; s < hi; s++ {
			sr := r.SplitIndexed("zo", s)
			vT := mat.Vec(sr.NormVec(dirT.Row(s)))
			vA := mat.Vec(sr.NormVec(dirA.Row(s)))
			zw.ws.Reset(m, n)

			// Perturb the time row in the shadow.
			zw.ws.TShadow.CopyFrom(p.T)
			zw.ws.TShadow.Row(row).AddScaled(cfg.Delta, vT)
			XT := cfg.SolveWS(zw.problemWithShadows(p, true), X, zw.ws)
			gT[s] = (dot(w, XT) - base) / cfg.Delta

			// Perturb the reliability row in the shadow.
			zw.ws.AShadow.CopyFrom(p.A)
			zw.ws.AShadow.Row(row).AddScaled(cfg.Delta, vA)
			clampUnit(zw.ws.AShadow.Row(row))
			XA := cfg.SolveWS(zw.problemWithShadows(p, false), X, zw.ws)
			gA[s] = (dot(w, XA) - base) / cfg.Delta
		}
	})
	dTi = mat.NewVec(n)
	dAi = mat.NewVec(n)
	inv := 1 / float64(cfg.Samples)
	for s := 0; s < cfg.Samples; s++ {
		dTi.AddScaled(inv, dirT.Row(s).Scale(gT[s]))
		dAi.AddScaled(inv, dirA.Row(s).Scale(gA[s]))
	}
	return dTi, dAi
}

// FullVJP estimates dL/dT̂ and dL/dÂ for the entire matrices by perturbing
// all entries at once (the natural extension of Algorithm 2 when every
// cluster's predictor trains simultaneously). Like RowVJP it perturbs into
// pooled per-worker shadows, solves in pooled workspaces, and reduces in
// sample order.
func FullVJP(p *matching.Problem, X, w *mat.Dense, cfg ZeroOrderConfig, r *rng.Source) (dT, dA *mat.Dense) {
	cfg.fillDefaults()
	m, n := p.M(), p.N()
	base := dot(w, X)
	// One direction row of length m·n per sample and side.
	dirT := mat.NewDense(cfg.Samples, m*n)
	dirA := mat.NewDense(cfg.Samples, m*n)
	gT := make([]float64, cfg.Samples)
	gA := make([]float64, cfg.Samples)
	parallel.ForChunked(cfg.Samples, 1, func(lo, hi int) {
		zw := zoArena.Get()
		defer zoArena.Put(zw)
		for s := lo; s < hi; s++ {
			sr := r.SplitIndexed("zofull", s)
			vT := mat.Vec(sr.NormVec(dirT.Row(s)))
			vA := mat.Vec(sr.NormVec(dirA.Row(s)))
			zw.ws.Reset(m, n)

			zw.ws.TShadow.CopyFrom(p.T)
			mat.Vec(zw.ws.TShadow.Data).AddScaled(cfg.Delta, vT)
			XT := cfg.SolveWS(zw.problemWithShadows(p, true), X, zw.ws)
			gT[s] = (dot(w, XT) - base) / cfg.Delta

			zw.ws.AShadow.CopyFrom(p.A)
			mat.Vec(zw.ws.AShadow.Data).AddScaled(cfg.Delta, vA)
			clampUnit(zw.ws.AShadow.Data)
			XA := cfg.SolveWS(zw.problemWithShadows(p, false), X, zw.ws)
			gA[s] = (dot(w, XA) - base) / cfg.Delta
		}
	})
	dT = mat.NewDense(m, n)
	dA = mat.NewDense(m, n)
	inv := 1 / float64(cfg.Samples)
	for s := 0; s < cfg.Samples; s++ {
		mat.Vec(dT.Data).AddScaled(inv, dirT.Row(s).Scale(gT[s]))
		mat.Vec(dA.Data).AddScaled(inv, dirA.Row(s).Scale(gA[s]))
	}
	return dT, dA
}

func clampUnit(xs []float64) {
	for i, v := range xs {
		if v < 0 {
			xs[i] = 0
		} else if v > 1 {
			xs[i] = 1
		}
	}
}

// dot is the Frobenius inner product of equally shaped matrices.
func dot(a, b *mat.Dense) float64 {
	s := 0.0
	for k := range a.Data {
		s += a.Data[k] * b.Data[k]
	}
	return s
}
