package diffopt

import (
	"math"

	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
)

// SolveFn computes the relaxed matching optimum for a problem, optionally
// warm-started from init (which implementations must not mutate).
type SolveFn func(p *matching.Problem, init *mat.Dense) *mat.Dense

// DefaultSolve is the standard inner solver used during gradient
// estimation: mirror descent with a warm start and a moderate budget.
func DefaultSolve(p *matching.Problem, init *mat.Dense) *mat.Dense {
	return matching.SolveRelaxed(p, matching.SolveOptions{Iters: 150, Init: init})
}

// ZeroOrderConfig parameterizes Algorithm 2's estimator.
type ZeroOrderConfig struct {
	// Delta is the perturbation size Δ (default 0.05).
	Delta float64
	// Samples is the sampling count S (default 8).
	Samples int
	// Solve is the inner solver (default DefaultSolve).
	Solve SolveFn
}

func (c *ZeroOrderConfig) fillDefaults() {
	if c.Delta == 0 {
		c.Delta = 0.05
	}
	if c.Samples == 0 {
		c.Samples = 8
	}
	if c.Solve == nil {
		c.Solve = DefaultSolve
	}
}

// OptimalDelta returns the bias/variance-balancing perturbation size of
// Theorem 3, Δ* = (2σ²_F / (β²·S))^{1/4}.
func OptimalDelta(sigmaF, beta float64, samples int) float64 {
	if sigmaF <= 0 || beta <= 0 || samples <= 0 {
		return 0.05
	}
	v := 2 * sigmaF * sigmaF / (beta * beta * float64(samples))
	return math.Sqrt(math.Sqrt(v))
}

// RowVJP estimates dL/dt̂_i and dL/dâ_i for one cluster row i by the
// forward-gradient method of Algorithm 2: S Gaussian directions, each
// requiring two extra matching solves (perturbed T̂ row, perturbed Â row).
//
// p carries the predicted matrices (T̂, Â); X is the unperturbed relaxed
// optimum X*(T̂, Â); w = ∂L/∂X*. Samples run in parallel with streams split
// deterministically from r.
func RowVJP(p *matching.Problem, X, w *mat.Dense, row int, cfg ZeroOrderConfig, r *rng.Source) (dTi, dAi mat.Vec) {
	cfg.fillDefaults()
	n := p.N()
	type sampleGrad struct{ dT, dA mat.Vec }
	// Base inner product ⟨w, X⟩ cancels in the difference; precompute the
	// perturbed-minus-base contraction per sample.
	base := dot(w, X)
	grads := parallel.Map(cfg.Samples, func(s int) sampleGrad {
		sr := r.SplitIndexed("zo", s)
		vT := mat.Vec(sr.NormVec(make([]float64, n)))
		vA := mat.Vec(sr.NormVec(make([]float64, n)))

		// Perturb the time row.
		pT := perturbRow(p, row, vT, cfg.Delta, true)
		XT := cfg.Solve(pT, X)
		gT := (dot(w, XT) - base) / cfg.Delta

		// Perturb the reliability row.
		pA := perturbRow(p, row, vA, cfg.Delta, false)
		XA := cfg.Solve(pA, X)
		gA := (dot(w, XA) - base) / cfg.Delta

		out := sampleGrad{dT: mat.NewVec(n), dA: mat.NewVec(n)}
		out.dT.AddScaled(gT, vT)
		out.dA.AddScaled(gA, vA)
		return out
	})
	dTi = mat.NewVec(n)
	dAi = mat.NewVec(n)
	inv := 1 / float64(cfg.Samples)
	for _, g := range grads {
		dTi.AddScaled(inv, g.dT)
		dAi.AddScaled(inv, g.dA)
	}
	return dTi, dAi
}

// FullVJP estimates dL/dT̂ and dL/dÂ for the entire matrices by perturbing
// all entries at once (the natural extension of Algorithm 2 when every
// cluster's predictor trains simultaneously).
func FullVJP(p *matching.Problem, X, w *mat.Dense, cfg ZeroOrderConfig, r *rng.Source) (dT, dA *mat.Dense) {
	cfg.fillDefaults()
	m, n := p.M(), p.N()
	base := dot(w, X)
	type sampleGrad struct{ dT, dA *mat.Dense }
	grads := parallel.Map(cfg.Samples, func(s int) sampleGrad {
		sr := r.SplitIndexed("zofull", s)
		vT := mat.NewDense(m, n)
		vA := mat.NewDense(m, n)
		sr.NormVec(vT.Data)
		sr.NormVec(vA.Data)

		pT := p.WithPrediction(p.T.Clone().AddScaled(cfg.Delta, vT), nil)
		XT := cfg.Solve(pT, X)
		gT := (dot(w, XT) - base) / cfg.Delta

		pA := p.WithPrediction(nil, perturbedA(p.A, vA, cfg.Delta))
		XA := cfg.Solve(pA, X)
		gA := (dot(w, XA) - base) / cfg.Delta

		return sampleGrad{dT: vT.Scale(gT), dA: vA.Scale(gA)}
	})
	dT = mat.NewDense(m, n)
	dA = mat.NewDense(m, n)
	inv := 1 / float64(cfg.Samples)
	for _, g := range grads {
		dT.AddScaled(inv, g.dT)
		dA.AddScaled(inv, g.dA)
	}
	return dT, dA
}

// perturbRow returns a problem whose T (isTime) or A row is p's plus
// delta·v, leaving the other matrix shared.
func perturbRow(p *matching.Problem, row int, v mat.Vec, delta float64, isTime bool) *matching.Problem {
	if isTime {
		T := p.T.Clone()
		T.Row(row).AddScaled(delta, v)
		return p.WithPrediction(T, nil)
	}
	A := p.A.Clone()
	A.Row(row).AddScaled(delta, v)
	clampUnit(A.Row(row))
	return p.WithPrediction(nil, A)
}

// perturbedA returns A + delta·V with entries clamped to [0, 1]; negative
// or >1 reliabilities would put the barrier outside its domain.
func perturbedA(A, V *mat.Dense, delta float64) *mat.Dense {
	out := A.Clone().AddScaled(delta, V)
	clampUnit(out.Data)
	return out
}

func clampUnit(xs []float64) {
	for i, v := range xs {
		if v < 0 {
			xs[i] = 0
		} else if v > 1 {
			xs[i] = 1
		}
	}
}

// dot is the Frobenius inner product of equally shaped matrices.
func dot(a, b *mat.Dense) float64 {
	s := 0.0
	for k := range a.Data {
		s += a.Data[k] * b.Data[k]
	}
	return s
}
