// Package plot renders small ASCII charts — line plots for figure-style
// series (regret vs N) and horizontal bar charts for method comparisons —
// so the experiment harness can emit figures, not just tables, on a plain
// terminal.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line in a line plot.
type Series struct {
	Name string
	Y    []float64
}

// seriesMarks are the glyphs assigned to successive series.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%'}

// Line renders series over shared x values as an ASCII chart of the given
// plot-area size (sensible minimums enforced). Points are marked per
// series; a legend and axis ranges are printed around the grid.
func Line(title string, x []float64, series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(x) == 0 || len(series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	// Ranges.
	xmin, xmax := minMax(x)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		lo, hi := minMax(s.Y)
		ymin = math.Min(ymin, lo)
		ymax = math.Max(ymax, hi)
	}
	if math.IsInf(ymin, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i, xv := range x {
			if i >= len(s.Y) {
				break
			}
			yv := s.Y[i]
			if math.IsNaN(yv) || math.IsInf(yv, 0) {
				continue
			}
			col := int(math.Round((xv - xmin) / (xmax - xmin) * float64(width-1)))
			row := height - 1 - int(math.Round((yv-ymin)/(ymax-ymin)*float64(height-1)))
			if grid[row][col] == ' ' || grid[row][col] == mark {
				grid[row][col] = mark
			} else {
				grid[row][col] = '&' // overlapping series
			}
		}
	}
	yLabelW := 9
	for r, rowBytes := range grid {
		yv := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%*.3f |%s|\n", yLabelW, yv, string(rowBytes))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", yLabelW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.3g%*.3g\n", strings.Repeat(" ", yLabelW), width/2, xmin, width-width/2, xmax)
	// Legend.
	b.WriteString(strings.Repeat(" ", yLabelW+2))
	for si, s := range series {
		if si > 0 {
			b.WriteString("   ")
		}
		fmt.Fprintf(&b, "%c %s", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	b.WriteString("  (& = overlap)\n")
	return b.String()
}

// HBar renders labeled values as a horizontal bar chart scaled to width.
// Negative values extend left of the baseline.
func HBar(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(labels) != len(values) || len(labels) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	labelW := 0
	maxAbs := 0.0
	for i, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
		if a := math.Abs(values[i]); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	for i, l := range labels {
		n := int(math.Round(math.Abs(values[i]) / maxAbs * float64(width)))
		bar := strings.Repeat("█", n)
		if values[i] < 0 {
			fmt.Fprintf(&b, "%-*s %8.3f -%s\n", labelW, l, values[i], bar)
		} else {
			fmt.Fprintf(&b, "%-*s %8.3f |%s\n", labelW, l, values[i], bar)
		}
	}
	return b.String()
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}
