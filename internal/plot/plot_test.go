package plot

import (
	"strings"
	"testing"
)

func TestLineBasics(t *testing.T) {
	out := Line("demo", []float64{1, 2, 3}, []Series{
		{Name: "a", Y: []float64{0, 1, 2}},
		{Name: "b", Y: []float64{2, 1, 0}},
	}, 30, 8)
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("missing data marks")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
}

func TestLineEmpty(t *testing.T) {
	if out := Line("x", nil, nil, 30, 8); !strings.Contains(out, "(no data)") {
		t.Fatalf("empty plot: %s", out)
	}
}

func TestLineConstantSeries(t *testing.T) {
	out := Line("flat", []float64{0, 1}, []Series{{Name: "c", Y: []float64{5, 5}}}, 25, 6)
	if !strings.Contains(out, "c") {
		t.Fatal("flat series dropped")
	}
}

func TestLineOverlapMarked(t *testing.T) {
	out := Line("", []float64{0, 1}, []Series{
		{Name: "a", Y: []float64{1, 2}},
		{Name: "b", Y: []float64{1, 3}},
	}, 30, 8)
	if !strings.Contains(out, "&") {
		t.Fatalf("overlapping points not flagged:\n%s", out)
	}
}

func TestHBar(t *testing.T) {
	out := HBar("bars", []string{"TAM", "MFCP"}, []float64{0.4, 0.1}, 20)
	if !strings.Contains(out, "TAM") || !strings.Contains(out, "MFCP") {
		t.Fatal("labels missing")
	}
	// TAM's bar must be longer than MFCP's.
	var tamLen, mfcpLen int
	for _, line := range strings.Split(out, "\n") {
		n := strings.Count(line, "█")
		if strings.HasPrefix(line, "TAM") {
			tamLen = n
		}
		if strings.HasPrefix(line, "MFCP") {
			mfcpLen = n
		}
	}
	if tamLen <= mfcpLen {
		t.Fatalf("bar lengths: TAM=%d MFCP=%d\n%s", tamLen, mfcpLen, out)
	}
}

func TestHBarNegative(t *testing.T) {
	out := HBar("", []string{"neg"}, []float64{-0.5}, 10)
	if !strings.Contains(out, "-█") {
		t.Fatalf("negative bar direction missing:\n%s", out)
	}
}

func TestHBarDegenerate(t *testing.T) {
	if out := HBar("t", []string{"a"}, nil, 10); !strings.Contains(out, "(no data)") {
		t.Fatal("mismatched input accepted")
	}
	out := HBar("t", []string{"a"}, []float64{0}, 10)
	if !strings.Contains(out, "a") {
		t.Fatal("all-zero bars crashed")
	}
}
