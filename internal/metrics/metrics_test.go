package metrics

import (
	"math"
	"testing"

	"mfcp/internal/mat"
	"mfcp/internal/matching"
)

func prob() *matching.Problem {
	T := mat.FromRows([][]float64{{1, 2, 1}, {2, 1, 2}})
	A := mat.FromRows([][]float64{{0.9, 0.9, 0.9}, {0.8, 0.95, 0.8}})
	p := matching.NewProblem(T, A)
	p.Gamma = 0.85
	return p
}

func TestUtilizationBalanced(t *testing.T) {
	if u := Utilization(mat.Vec{2, 2, 2}); math.Abs(u-1) > 1e-12 {
		t.Fatalf("balanced utilization %v", u)
	}
	if u := Utilization(mat.Vec{3, 0, 0}); math.Abs(u-1.0/3) > 1e-12 {
		t.Fatalf("skewed utilization %v", u)
	}
	if Utilization(nil) != 0 || Utilization(mat.Vec{0, 0}) != 0 {
		t.Fatal("degenerate utilization not 0")
	}
}

func TestEvaluateOracleZeroRegret(t *testing.T) {
	p := prob()
	oracle := matching.BestAssignment(p)
	e := Evaluate(p, oracle, oracle)
	if e.Regret != 0 {
		t.Fatalf("oracle regret %v", e.Regret)
	}
	if e.Makespan != e.OracleMakespan {
		t.Fatal("oracle makespans differ")
	}
}

func TestEvaluateWorseAssignmentPositiveRegret(t *testing.T) {
	p := prob()
	oracle := matching.BestAssignment(p)
	bad := []int{0, 0, 0} // pile everything on cluster 0
	e := Evaluate(p, bad, oracle)
	if e.Regret <= 0 {
		t.Fatalf("bad assignment regret %v", e.Regret)
	}
	// regret = (cost − oracle)/N exactly
	want := (p.DiscreteCost(bad) - p.DiscreteCost(oracle)) / 3
	if math.Abs(e.Regret-want) > 1e-12 {
		t.Fatalf("regret %v want %v", e.Regret, want)
	}
}

func TestEvaluateFeasibility(t *testing.T) {
	p := prob()
	oracle := matching.BestAssignment(p)
	feasible := []int{0, 1, 0} // rel = (0.9+0.95+0.9)/3 ≈ 0.9167 ≥ 0.85
	if e := Evaluate(p, feasible, oracle); !e.Feasible {
		t.Fatalf("feasible assignment flagged infeasible: rel=%v", e.Reliability)
	}
	infeasible := []int{1, 0, 1} // rel = (0.8+0.9+0.8)/3 ≈ 0.833 < 0.85
	if e := Evaluate(p, infeasible, oracle); e.Feasible {
		t.Fatalf("infeasible assignment flagged feasible: rel=%v", e.Reliability)
	}
}

func TestMeanAggregate(t *testing.T) {
	evals := []Eval{
		{Regret: 1, Reliability: 0.8, Utilization: 0.5, Makespan: 2, Feasible: true},
		{Regret: 3, Reliability: 0.9, Utilization: 0.7, Makespan: 4, Feasible: false},
	}
	a := Mean(evals)
	if a.N != 2 || a.Regret != 2 || math.Abs(a.Reliability-0.85) > 1e-12 ||
		math.Abs(a.Utilization-0.6) > 1e-12 || a.Makespan != 3 || a.FeasibleFrac != 0.5 {
		t.Fatalf("aggregate wrong: %+v", a)
	}
	if empty := Mean(nil); empty.N != 0 || empty.Regret != 0 {
		t.Fatal("empty aggregate not zero")
	}
}
