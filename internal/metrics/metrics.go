// Package metrics computes the paper's three evaluation metrics — matching
// regret (eq. 6), reliability, and cluster utilization — from discrete
// assignments evaluated against ground-truth cost matrices.
package metrics

import (
	"mfcp/internal/mat"
	"mfcp/internal/matching"
)

// Eval is one assignment's scorecard under ground truth.
type Eval struct {
	// Regret is (f(X̂, T) − f(X*, T)) / N: the per-task makespan excess of
	// the prediction-driven matching over the oracle matching (eq. 6).
	Regret float64
	// Reliability is the mean true success probability of the assignment.
	Reliability float64
	// Utilization is Σ loads / (M · makespan) under ground-truth times.
	Utilization float64
	// Makespan is f(X̂, T): the ground-truth cost of the assignment.
	Makespan float64
	// OracleMakespan is f(X*, T).
	OracleMakespan float64
	// Feasible reports whether the assignment meets the reliability
	// threshold γ under ground truth.
	Feasible bool
}

// Utilization computes Σ loads / (M · max) for a load vector; 0 when idle.
func Utilization(loads mat.Vec) float64 {
	if len(loads) == 0 {
		return 0
	}
	maxLoad, _ := loads.Max()
	if maxLoad <= 0 {
		return 0
	}
	return loads.Sum() / (float64(len(loads)) * maxLoad)
}

// Evaluate scores assign against the ground-truth problem trueProb, with
// oracle as the reference matching (typically matching.BestAssignment of
// trueProb).
func Evaluate(trueProb *matching.Problem, assign, oracle []int) Eval {
	n := float64(trueProb.N())
	cost := trueProb.DiscreteCost(assign)
	oracleCost := trueProb.DiscreteCost(oracle)
	loads := trueProb.DiscreteLoads(assign)
	rel := trueProb.DiscreteReliability(assign)
	return Eval{
		Regret:         (cost - oracleCost) / n,
		Reliability:    rel,
		Utilization:    Utilization(loads),
		Makespan:       cost,
		OracleMakespan: oracleCost,
		Feasible:       rel >= trueProb.Gamma,
	}
}

// Aggregate summarizes a batch of Evals component-wise into means.
type Aggregate struct {
	Regret, Reliability, Utilization, Makespan float64
	FeasibleFrac                               float64
	N                                          int
}

// Mean folds evals into component means.
func Mean(evals []Eval) Aggregate {
	var a Aggregate
	if len(evals) == 0 {
		return a
	}
	for _, e := range evals {
		a.Regret += e.Regret
		a.Reliability += e.Reliability
		a.Utilization += e.Utilization
		a.Makespan += e.Makespan
		if e.Feasible {
			a.FeasibleFrac++
		}
	}
	k := float64(len(evals))
	a.Regret /= k
	a.Reliability /= k
	a.Utilization /= k
	a.Makespan /= k
	a.FeasibleFrac /= k
	a.N = len(evals)
	return a
}
