package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the live telemetry surface:
//
//	/metrics        Prometheus text exposition of reg
//	/debug/vars     expvar JSON (includes runtime memstats)
//	/debug/pprof/*  the standard pprof profiles (heap, profile, trace, …)
//
// The pprof routes are wired explicitly onto a private mux, so serving this
// handler does not depend on http.DefaultServeMux.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "mfcp telemetry\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	srv *http.Server
	lis net.Listener
}

// Serve binds addr (host:port; port 0 picks a free one) and serves the
// telemetry handler on a background goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{srv: &http.Server{Handler: Handler(reg)}, lis: lis}
	go func() { _ = s.srv.Serve(lis) }()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close shuts the endpoint down immediately.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown drains in-flight scrapes before closing: the listener stops
// accepting at once, active requests run to completion (or until ctx
// expires), then the server closes. Signal handlers use it so a final
// /metrics scrape racing the shutdown still gets a complete response.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
