// Request-scoped tracing: a fixed-capacity lock-free ring of the most
// recent request traces, exported as JSON at /debug/traces. Metrics answer
// "how is the system doing"; the trace ring answers "why was THIS request
// slow" — each entry carries the request's queue wait and the per-phase
// engine timings of the round that served it.
package obs

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// RequestTrace is one served request's timing record. Phase fields are the
// engine timings of the (possibly coalesced) round that carried the
// request; QueueNs is the request's own wait from admission to the round
// starting; TotalNs its full admission-to-answer span.
type RequestTrace struct {
	ID        uint64 `json:"id"`
	Tenant    string `json:"tenant"`
	Tasks     int    `json:"tasks"`
	Round     int    `json:"round"`
	Coalesced int    `json:"coalesced"`
	Start     int64  `json:"start_unix_ns"`
	QueueNs   int64  `json:"queue_ns"`
	PredictNs int64  `json:"predict_ns"`
	ScreenNs  int64  `json:"screen_ns"`
	SolveNs   int64  `json:"solve_ns"`
	ExecNs    int64  `json:"exec_ns"`
	IngestNs  int64  `json:"ingest_ns"`
	TotalNs   int64  `json:"total_ns"`
	Status    string `json:"status"`
}

// TraceRing keeps the last Cap() traces. Put is lock-free — a ticket from
// an atomic counter picks the slot, and the trace is published as one
// atomic pointer store — so the serving path never contends with readers.
// Snapshot reads the slots without stopping writers; under a concurrent
// wrap it can observe an entry newer than its position implies, which is
// fine for a debugging surface. A nil *TraceRing is a no-op, matching the
// package's nil-instrument contract.
type TraceRing struct {
	slots []atomic.Pointer[RequestTrace]
	next  atomic.Uint64
}

// NewTraceRing returns a ring holding the last capacity traces (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{slots: make([]atomic.Pointer[RequestTrace], capacity)}
}

// Put records one trace, evicting the oldest once the ring is full. Safe
// from any goroutine; no-op on nil.
func (r *TraceRing) Put(t RequestTrace) {
	if r == nil {
		return
	}
	idx := r.next.Add(1) - 1
	r.slots[idx%uint64(len(r.slots))].Store(&t)
}

// Cap returns the ring capacity (0 on nil).
func (r *TraceRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Snapshot appends the ring's current traces to buf, oldest first, and
// returns the result. Nil ring returns buf unchanged.
func (r *TraceRing) Snapshot(buf []RequestTrace) []RequestTrace {
	if r == nil {
		return buf
	}
	n := r.next.Load()
	c := uint64(len(r.slots))
	start := uint64(0)
	if n > c {
		start = n - c
	}
	for i := start; i < n; i++ {
		if tp := r.slots[i%c].Load(); tp != nil {
			buf = append(buf, *tp)
		}
	}
	return buf
}

// traceDump is the /debug/traces response envelope.
type traceDump struct {
	Capacity int            `json:"capacity"`
	Count    int            `json:"count"`
	Traces   []RequestTrace `json:"traces"`
}

// TraceHandler serves ring as JSON: {"capacity", "count", "traces"} with
// traces oldest first. A `?slow=DURATION` query (time.ParseDuration
// syntax, e.g. ?slow=50ms) keeps only traces whose total span is at least
// that long.
func TraceHandler(ring *TraceRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var slow time.Duration
		if q := req.URL.Query().Get("slow"); q != "" {
			d, err := time.ParseDuration(q)
			if err != nil {
				http.Error(w, "bad slow threshold: "+err.Error(), http.StatusBadRequest)
				return
			}
			slow = d
		}
		traces := ring.Snapshot(nil)
		if slow > 0 {
			kept := traces[:0]
			for _, t := range traces {
				if t.TotalNs >= slow.Nanoseconds() {
					kept = append(kept, t)
				}
			}
			traces = kept
		}
		if traces == nil {
			traces = []RequestTrace{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(traceDump{
			Capacity: ring.Cap(), Count: len(traces), Traces: traces,
		})
	})
}
