package obs

import "time"

// Tracer mints per-phase timers under a common metric prefix: Phase("solve")
// on a tracer with prefix "mfcp_phase" backs spans with the histogram
// "mfcp_phase_solve_seconds". Serving code builds its tracer once at
// construction and keeps the returned *Timer values pre-bound, so opening a
// span on the hot path is a time.Now call and closing it one histogram
// observation — no lookups, no allocations.
type Tracer struct {
	reg    *Registry
	prefix string
}

// NewTracer returns a tracer registering phase histograms on reg under
// prefix. A nil reg yields nil timers (spans become no-ops).
func NewTracer(reg *Registry, prefix string) *Tracer {
	return &Tracer{reg: reg, prefix: prefix}
}

// Phase registers (or rebinds) the timer for one named phase.
func (t *Tracer) Phase(name string) *Timer {
	return NewTimer(t.reg.Histogram(t.prefix+"_"+name+"_seconds",
		"duration of the "+name+" phase in seconds", LatencyBuckets))
}

// Timer records durations into a histogram of seconds. A nil *Timer is a
// no-op whose Start does not even read the clock.
type Timer struct {
	h *Histogram
}

// NewTimer wraps h; a nil histogram yields a nil (no-op) timer.
func NewTimer(h *Histogram) *Timer {
	if h == nil {
		return nil
	}
	return &Timer{h: h}
}

// Observe records an already-measured duration. Serving code that reads
// the clock itself — because the same measurement also feeds a trace
// record — uses this instead of Start/End so one time.Now pair serves
// both consumers.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(d.Seconds())
}

// Start opens a span. The returned Span is a value — it lives on the
// caller's stack, so span tracing allocates nothing.
func (t *Timer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{h: t.h, start: time.Now()}
}

// Span is one in-flight timed section. The zero Span is a no-op.
type Span struct {
	h     *Histogram
	start time.Time
}

// End closes the span, recording the elapsed seconds.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Seconds())
}
