// Package obs is the platform's telemetry substrate: a metrics registry of
// atomic counters, gauges, and fixed-bucket histograms, lightweight span
// tracing for phase timings, and text exporters (Prometheus exposition
// format plus a human-readable summary). It is stdlib-only and designed
// around one contract:
//
//	recording on a hot path is a few atomic operations and ZERO heap
//	allocations; snapshotting/exporting never locks writers out.
//
// The registry's mutex guards only the instrument *list* (registration and
// export iterate it); the instruments themselves are plain atomics that
// writers hit lock-free. Exports therefore read values that are each
// individually consistent but not collectively a point-in-time cut — the
// standard trade metrics systems make.
//
// Optional telemetry gates through nil instruments rather than branches at
// every call site: every recording method is a no-op on a nil receiver, and
// a nil *Registry hands out nil instruments. A subsystem can thus pre-bind
// its instruments once at construction ("registering" against a possibly
// nil registry) and record unconditionally; with telemetry disabled each
// record call costs one predictable nil check.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n. Safe from any goroutine; no-op on nil.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as atomic bits. The
// zero value is ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe from any goroutine; no-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge (CAS loop; lock-free).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
