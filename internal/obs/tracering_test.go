package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestTraceRingWrap(t *testing.T) {
	r := NewTraceRing(4)
	for i := 1; i <= 6; i++ {
		r.Put(RequestTrace{ID: uint64(i), TotalNs: int64(i) * 1000})
	}
	got := r.Snapshot(nil)
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(got))
	}
	for i, tr := range got {
		if want := uint64(i + 3); tr.ID != want {
			t.Fatalf("slot %d id = %d, want %d (oldest-first, oldest two evicted)", i, tr.ID, want)
		}
	}

	// Nil ring: no-ops all around.
	var nr *TraceRing
	nr.Put(RequestTrace{})
	if nr.Cap() != 0 || nr.Snapshot(nil) != nil {
		t.Fatal("nil ring must be inert")
	}
}

func TestTraceRingConcurrentPut(t *testing.T) {
	r := NewTraceRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Put(RequestTrace{ID: uint64(g*1000 + i)})
				r.Snapshot(nil)
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Snapshot(nil)); got != 8 {
		t.Fatalf("full ring snapshot len = %d, want 8", got)
	}
}

func TestTraceHandler(t *testing.T) {
	r := NewTraceRing(8)
	r.Put(RequestTrace{ID: 1, Tenant: "a", TotalNs: int64(2e6)})
	r.Put(RequestTrace{ID: 2, Tenant: "b", TotalNs: int64(90e6)})
	h := TraceHandler(r)

	get := func(url string) traceDump {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d: %s", url, rec.Code, rec.Body.String())
		}
		var d traceDump
		if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
			t.Fatalf("bad JSON from %s: %v", url, err)
		}
		return d
	}

	d := get("/debug/traces")
	if d.Capacity != 8 || d.Count != 2 || len(d.Traces) != 2 {
		t.Fatalf("dump = cap %d count %d len %d, want 8/2/2", d.Capacity, d.Count, len(d.Traces))
	}
	if d.Traces[0].ID != 1 || d.Traces[1].ID != 2 {
		t.Fatal("traces must come back oldest first")
	}

	d = get("/debug/traces?slow=50ms")
	if d.Count != 1 || d.Traces[0].Tenant != "b" {
		t.Fatalf("slow filter kept %d traces (want the 90ms one): %+v", d.Count, d.Traces)
	}

	d = get("/debug/traces?slow=10m")
	if d.Count != 0 || d.Traces == nil {
		t.Fatalf("over-threshold filter: count %d traces %v, want empty non-nil", d.Count, d.Traces)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?slow=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad slow= value returned %d, want 400", rec.Code)
	}
}
