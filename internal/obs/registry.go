package obs

import (
	"fmt"
	"sync"
)

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindCounterVec
	kindGaugeVec
	kindHistogramVec
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc, kindCounterVec:
		return "counter"
	case kindGauge, kindGaugeFunc, kindGaugeVec:
		return "gauge"
	default:
		return "histogram"
	}
}

// instrument is one registered metric: exactly one of the typed fields is
// set according to kind. label is set only for the vec kinds.
type instrument struct {
	name, help string
	kind       kind
	label      string
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	cfn        func() uint64
	gfn        func() float64
	cvec       *CounterVec
	gvec       *GaugeVec
	hvec       *HistogramVec
}

// Registry holds named instruments in registration order. Registration is
// idempotent — asking for an existing name returns the existing instrument,
// so subsystems constructed repeatedly (tests, benchmark engines) can bind
// against a shared registry without bookkeeping. Asking for an existing
// name with a different instrument kind panics: that is a wiring bug, not a
// runtime condition.
//
// A nil *Registry is valid everywhere and hands out nil instruments, whose
// recording methods are no-ops — the mechanism by which telemetry is
// disabled without branching at call sites.
type Registry struct {
	mu     sync.Mutex
	order  []*instrument
	byName map[string]*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*instrument)}
}

// register returns the existing instrument for name (checking the kind) or
// records and returns the given one.
func (r *Registry) register(in *instrument) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[in.name]; ok {
		if prev.kind != in.kind {
			// invariant: a metric name keeps one kind for the process lifetime.
			panic(fmt.Sprintf("obs: %q registered as %s, requested as %s", in.name, prev.kind, in.kind))
		}
		if prev.label != in.label {
			// invariant: a labeled family keeps one label name for the process lifetime.
			panic(fmt.Sprintf("obs: %q registered with label %q, requested with %q", in.name, prev.label, in.label))
		}
		if prevBounds, reqBounds := prev.histBounds(), in.histBounds(); !sameBounds(prevBounds, reqBounds) {
			// invariant: a histogram name keeps one bucket layout for the process lifetime.
			panic(fmt.Sprintf("obs: %q registered with bounds %v, requested with %v", in.name, prevBounds, reqBounds))
		}
		return prev
	}
	r.byName[in.name] = in
	r.order = append(r.order, in)
	return in
}

// histBounds returns the bucket bounds an instrument carries (nil for
// non-histogram kinds), for the re-registration mismatch check.
func (in *instrument) histBounds() []float64 {
	switch in.kind {
	case kindHistogram:
		return in.hist.bounds
	case kindHistogramVec:
		return in.hvec.bounds
	}
	return nil
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(&instrument{name: name, help: help, kind: kindCounter, counter: &Counter{}}).counter
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(&instrument{name: name, help: help, kind: kindGauge, gauge: &Gauge{}}).gauge
}

// Histogram registers (or returns the existing) histogram under name with
// the given bucket upper bounds. Bounds are fixed at first registration;
// a later call with different bounds panics like a kind mismatch does —
// two subsystems disagreeing about a bucket layout is a wiring bug, and
// silently keeping the first layout would misattribute the second
// caller's observations.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(&instrument{name: name, help: help, kind: kindHistogram, hist: newHistogram(bounds)}).hist
}

// CounterFunc registers a counter whose value is computed by f at export
// time — for mirroring counters maintained elsewhere (e.g. the embedding
// cache's process-wide atomics). f must be safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, f func() uint64) {
	if r == nil {
		return
	}
	r.register(&instrument{name: name, help: help, kind: kindCounterFunc, cfn: f})
}

// GaugeFunc registers a gauge computed by f at export time. f must be safe
// to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	if r == nil {
		return
	}
	r.register(&instrument{name: name, help: help, kind: kindGaugeFunc, gfn: f})
}

// instruments copies the instrument list so export can iterate without
// holding the registration lock (instrument values are read atomically).
func (r *Registry) instruments() []*instrument {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*instrument(nil), r.order...)
}
