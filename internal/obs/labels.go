// Labeled instrument families. A family is one metric name plus one label
// dimension; With(value) returns an ordinary *Counter/*Gauge/*Histogram
// child, so everything the flat instruments guarantee — lock-free atomic
// recording, zero-allocation hot paths, the nil no-op contract — carries
// over unchanged: serving code binds its children once at construction and
// records through them exactly as it records through flat instruments.
//
// Cardinality is bounded per family: once a family holds MaxChildren
// distinct label values, every unseen value maps to the shared
// OverflowLabel child instead of minting a new series. The cap is a
// protection against label values that arrive from the network (tenant
// names), where an adversarial or buggy client could otherwise mint
// unbounded series and grow the registry without limit.
package obs

import (
	"sort"
	"sync"
)

// DefaultMaxChildren is the per-family child cap: the 33rd distinct label
// value (and every one after it) folds into the OverflowLabel child.
const DefaultMaxChildren = 32

// OverflowLabel is the label value under which past-cap values are pooled.
const OverflowLabel = "other"

// vec is the machinery shared by the three family kinds: a label-value →
// child map under an RWMutex. The hot path (With on a known value) is one
// read-locked map lookup — no allocation — and pre-binding the child makes
// even that disappear from recording paths.
type vec[T any] struct {
	label    string
	max      int
	newChild func() *T

	mu       sync.RWMutex
	children map[string]*T
}

func newVec[T any](label string, newChild func() *T) *vec[T] {
	return &vec[T]{
		label: label, max: DefaultMaxChildren, newChild: newChild,
		children: make(map[string]*T),
	}
}

// with returns the child for value, minting it on first use and folding
// past-cap values into the OverflowLabel child.
func (v *vec[T]) with(value string) *T {
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c
	}
	if len(v.children) >= v.max {
		value = OverflowLabel
		if c, ok := v.children[value]; ok {
			return c
		}
	}
	c = v.newChild()
	v.children[value] = c
	return c
}

// snapshot returns the children sorted by label value, for export. Taken
// under the read lock; child values are still read atomically afterwards.
func (v *vec[T]) snapshot() (values []string, children []*T) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	values = make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	sort.Strings(values)
	children = make([]*T, len(values))
	for i, val := range values {
		children[i] = v.children[val]
	}
	return values, children
}

// CounterVec is a family of counters keyed by one label. A nil *CounterVec
// hands out nil children, whose methods are no-ops — the same contract as
// a nil Registry.
type CounterVec struct {
	v *vec[Counter]
}

// With returns the counter child for the given label value. Children are
// stable: With on the same value always returns the same *Counter, so
// callers pre-bind hot children once.
func (c *CounterVec) With(value string) *Counter {
	if c == nil {
		return nil
	}
	return c.v.with(value)
}

// GaugeVec is a family of gauges keyed by one label; nil is a no-op.
type GaugeVec struct {
	v *vec[Gauge]
}

// With returns the gauge child for the given label value.
func (g *GaugeVec) With(value string) *Gauge {
	if g == nil {
		return nil
	}
	return g.v.with(value)
}

// HistogramVec is a family of histograms keyed by one label; every child
// shares the family's bucket bounds. nil is a no-op.
type HistogramVec struct {
	v      *vec[Histogram]
	bounds []float64
}

// With returns the histogram child for the given label value.
func (h *HistogramVec) With(value string) *Histogram {
	if h == nil {
		return nil
	}
	return h.v.with(value)
}

// CounterVec registers (or returns the existing) counter family under name
// with the given label name. Re-registering with a different label name
// panics — like a kind mismatch, that is a wiring bug.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	cv := &CounterVec{v: newVec(label, func() *Counter { return &Counter{} })}
	return r.register(&instrument{name: name, help: help, kind: kindCounterVec, label: label, cvec: cv}).cvec
}

// GaugeVec registers (or returns the existing) gauge family under name.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	gv := &GaugeVec{v: newVec(label, func() *Gauge { return &Gauge{} })}
	return r.register(&instrument{name: name, help: help, kind: kindGaugeVec, label: label, gvec: gv}).gvec
}

// HistogramVec registers (or returns the existing) histogram family under
// name; every child observes into the given bucket bounds. Like the flat
// Histogram, re-registering with different bounds panics.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	b := append([]float64(nil), bounds...)
	hv := &HistogramVec{bounds: b, v: newVec(label, func() *Histogram { return newHistogram(b) })}
	return r.register(&instrument{name: name, help: help, kind: kindHistogramVec, label: label, hvec: hv}).hvec
}
