package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered instrument in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, plain samples for
// counters and gauges, and the cumulative _bucket/_sum/_count triplet for
// histograms. Writers are never blocked — values are read atomically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, in := range r.instruments() {
		if in.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", in.name, in.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", in.name, in.kind); err != nil {
			return err
		}
		var err error
		switch in.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", in.name, in.counter.Value())
		case kindCounterFunc:
			_, err = fmt.Fprintf(w, "%s %d\n", in.name, in.cfn())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", in.name, fmtFloat(in.gauge.Value()))
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", in.name, fmtFloat(in.gfn()))
		case kindHistogram:
			err = writeHistogram(w, in.name, "", in.hist.View())
		case kindCounterVec:
			values, children := in.cvec.v.snapshot()
			for i, val := range values {
				if _, err = fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", in.name, in.label, escapeLabel(val), children[i].Value()); err != nil {
					break
				}
			}
		case kindGaugeVec:
			values, children := in.gvec.v.snapshot()
			for i, val := range values {
				if _, err = fmt.Fprintf(w, "%s{%s=\"%s\"} %s\n", in.name, in.label, escapeLabel(val), fmtFloat(children[i].Value())); err != nil {
					break
				}
			}
		case kindHistogramVec:
			values, children := in.hvec.v.snapshot()
			for i, val := range values {
				// The family label leads every sample's label set, with `le`
				// last — one consistent key order per series name, which the
				// exposition lint (scripts/promtext_lint.sh) checks.
				if err = writeHistogram(w, in.name, in.label+"=\""+escapeLabel(val)+"\"", children[i].View()); err != nil {
					break
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// escapeLabel escapes a label value for the text exposition format:
// backslash, double quote, and newline are the three characters the format
// defines escapes for.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 2)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// writeHistogram writes one histogram's _bucket/_sum/_count triplet.
// labels, when non-empty, is an already-escaped `name="value"` pair that
// prefixes each bucket's `le` and labels the sum/count series.
func writeHistogram(w io.Writer, name, labels string, v HistView) error {
	lsep := ""
	if labels != "" {
		lsep = labels + ","
	}
	cum := uint64(0)
	for i, bound := range v.Bounds {
		cum += v.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, lsep, fmtFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += v.Counts[len(v.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, lsep, cum); err != nil {
		return err
	}
	sumSuffix, countSuffix := "", ""
	if labels != "" {
		sumSuffix, countSuffix = "{"+labels+"}", "{"+labels+"}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, sumSuffix, fmtFloat(v.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, countSuffix, v.Count)
	return err
}

func fmtFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WriteSummary writes a one-shot human-readable digest: counters and gauges
// with their values, histograms with count, mean, and p50/p90/p99 quantile
// estimates. This is what platformsim prints on exit and what mfcpbench
// reports after a benchmark run.
func (r *Registry) WriteSummary(w io.Writer) error {
	for _, in := range r.instruments() {
		var err error
		switch in.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "  %-44s %d\n", in.name, in.counter.Value())
		case kindCounterFunc:
			_, err = fmt.Fprintf(w, "  %-44s %d\n", in.name, in.cfn())
		case kindGauge:
			_, err = fmt.Fprintf(w, "  %-44s %s\n", in.name, fmtFloat(in.gauge.Value()))
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "  %-44s %s\n", in.name, fmtFloat(in.gfn()))
		case kindHistogram:
			err = summarizeHistogram(w, in.name, in.hist.View())
		case kindCounterVec:
			values, children := in.cvec.v.snapshot()
			for i, val := range values {
				if _, err = fmt.Fprintf(w, "  %-44s %d\n", seriesName(in.name, in.label, val), children[i].Value()); err != nil {
					break
				}
			}
		case kindGaugeVec:
			values, children := in.gvec.v.snapshot()
			for i, val := range values {
				if _, err = fmt.Fprintf(w, "  %-44s %s\n", seriesName(in.name, in.label, val), fmtFloat(children[i].Value())); err != nil {
					break
				}
			}
		case kindHistogramVec:
			values, children := in.hvec.v.snapshot()
			for i, val := range values {
				if err = summarizeHistogram(w, seriesName(in.name, in.label, val), children[i].View()); err != nil {
					break
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func seriesName(name, label, value string) string {
	return name + "{" + label + "=\"" + escapeLabel(value) + "\"}"
}

func summarizeHistogram(w io.Writer, name string, v HistView) error {
	if v.Count == 0 {
		_, err := fmt.Fprintf(w, "  %-44s count=0\n", name)
		return err
	}
	_, err := fmt.Fprintf(w, "  %-44s count=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g\n",
		name, v.Count, v.Mean(), v.Quantile(0.5), v.Quantile(0.9), v.Quantile(0.99))
	return err
}
