package obs

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus writes every registered instrument in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, plain samples for
// counters and gauges, and the cumulative _bucket/_sum/_count triplet for
// histograms. Writers are never blocked — values are read atomically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, in := range r.instruments() {
		if in.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", in.name, in.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", in.name, in.kind); err != nil {
			return err
		}
		var err error
		switch in.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", in.name, in.counter.Value())
		case kindCounterFunc:
			_, err = fmt.Fprintf(w, "%s %d\n", in.name, in.cfn())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", in.name, fmtFloat(in.gauge.Value()))
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", in.name, fmtFloat(in.gfn()))
		case kindHistogram:
			err = writeHistogram(w, in.name, in.hist.View())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, v HistView) error {
	cum := uint64(0)
	for i, bound := range v.Bounds {
		cum += v.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += v.Counts[len(v.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(v.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, v.Count)
	return err
}

func fmtFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WriteSummary writes a one-shot human-readable digest: counters and gauges
// with their values, histograms with count, mean, and p50/p90/p99 quantile
// estimates. This is what platformsim prints on exit and what mfcpbench
// reports after a benchmark run.
func (r *Registry) WriteSummary(w io.Writer) error {
	for _, in := range r.instruments() {
		var err error
		switch in.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "  %-44s %d\n", in.name, in.counter.Value())
		case kindCounterFunc:
			_, err = fmt.Fprintf(w, "  %-44s %d\n", in.name, in.cfn())
		case kindGauge:
			_, err = fmt.Fprintf(w, "  %-44s %s\n", in.name, fmtFloat(in.gauge.Value()))
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "  %-44s %s\n", in.name, fmtFloat(in.gfn()))
		case kindHistogram:
			v := in.hist.View()
			if v.Count == 0 {
				_, err = fmt.Fprintf(w, "  %-44s count=0\n", in.name)
				break
			}
			_, err = fmt.Fprintf(w, "  %-44s count=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g\n",
				in.name, v.Count, v.Mean(), v.Quantile(0.5), v.Quantile(0.9), v.Quantile(0.99))
		}
		if err != nil {
			return err
		}
	}
	return nil
}
