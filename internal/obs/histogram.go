package obs

import (
	"math"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets with inclusive upper
// bounds (Prometheus `le` semantics) plus an implicit +Inf overflow bucket,
// and tracks the running sum and count. Observe is lock-free: one inlined
// binary search plus three atomic updates, zero allocations
// (TestInstrumentsZeroAllocs). Quantiles are estimated from the bucket
// counts at export time — see HistView.Quantile for the accuracy contract.
type Histogram struct {
	bounds []float64       // immutable, strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// newHistogram builds a histogram over the given bucket upper bounds, which
// must be strictly increasing and non-empty.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		// invariant: bucket bounds are package-level literals, fixed at startup.
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			// invariant: bucket bounds are package-level literals, fixed at startup.
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records v. Safe from any goroutine; no-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v; the search is written out
	// inline so the hot path cannot allocate a closure.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistView is a point-in-time copy of a histogram's buckets, used for
// quantile estimation and export. Counts[i] covers (Bounds[i-1], Bounds[i]];
// the final entry is the +Inf overflow bucket.
type HistView struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// View snapshots the histogram without blocking writers. Bucket counts are
// read individually, so a view taken under concurrent writes may be off by
// in-flight observations; it is never torn within one counter.
func (h *Histogram) View() HistView {
	if h == nil {
		return HistView{}
	}
	v := HistView{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		v.Counts[i] = h.counts[i].Load()
	}
	return v
}

// Mean returns the mean observed value (NaN when empty).
func (v *HistView) Mean() float64 {
	if v.Count == 0 {
		return math.NaN()
	}
	return v.Sum / float64(v.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket containing the target rank, assuming values spread
// uniformly inside a bucket. The estimate is therefore within one bucket
// width of the true sample quantile for non-negative data
// (TestHistogramQuantileAccuracy pins this against sorted references). A
// rank landing in the +Inf overflow bucket returns the largest finite
// bound; an empty view returns NaN.
func (v *HistView) Quantile(q float64) float64 {
	if v.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(v.Count)
	cum := 0.0
	for i, c := range v.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(v.Bounds) {
			return v.Bounds[len(v.Bounds)-1]
		}
		upper := v.Bounds[i]
		lower := 0.0
		if i > 0 {
			lower = v.Bounds[i-1]
		} else if upper <= 0 {
			// Bucket 0 with a non-positive bound has no natural lower
			// edge; report the bound itself rather than inventing one.
			return upper
		}
		return lower + (rank-prev)/float64(c)*(upper-lower)
	}
	return v.Bounds[len(v.Bounds)-1]
}

// ExpBuckets returns n bucket bounds growing geometrically from start by
// factor: start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		// invariant: bucket-shape arguments are literals at every call site.
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bucket bounds from start in steps of width.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		// invariant: bucket-shape arguments are literals at every call site.
		panic("obs: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// LatencyBuckets spans 1µs to ~8.4s in powers of two — wide enough for
// everything from a single mirror-descent solve to a full refit.
var LatencyBuckets = ExpBuckets(1e-6, 2, 24)
