package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestLabeledFamilies(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("lbl_requests_total", "requests by tenant", "tenant")
	gv := reg.GaugeVec("lbl_pending", "pending by tenant", "tenant")
	hv := reg.HistogramVec("lbl_seconds", "latency by tenant", "tenant", LatencyBuckets)

	if cv.With("a") != cv.With("a") {
		t.Fatal("With must return a stable child per label value")
	}
	cv.With("a").Add(3)
	cv.With("b").Inc()
	gv.With("a").Set(2.5)
	hv.With("a").Observe(0.004)
	if got := cv.With("a").Value(); got != 3 {
		t.Fatalf("child value = %d, want 3", got)
	}

	// Re-registration is idempotent and returns the same family.
	if reg.CounterVec("lbl_requests_total", "", "tenant").With("a").Value() != 3 {
		t.Fatal("re-registration returned a different family")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lbl_requests_total counter",
		`lbl_requests_total{tenant="a"} 3`,
		`lbl_requests_total{tenant="b"} 1`,
		`lbl_pending{tenant="a"} 2.5`,
		"# TYPE lbl_seconds histogram",
		`lbl_seconds_bucket{tenant="a",le="+Inf"} 1`,
		`lbl_seconds_sum{tenant="a"}`,
		`lbl_seconds_count{tenant="a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q in:\n%s", want, out)
		}
	}
	// Children export sorted by label value.
	if strings.Index(out, `tenant="a"} 3`) > strings.Index(out, `tenant="b"} 1`) {
		t.Error("counter children not sorted by label value")
	}

	// Nil families (disabled telemetry) hand out nil no-op children.
	var ncv *CounterVec
	var ngv *GaugeVec
	var nhv *HistogramVec
	ncv.With("x").Inc()
	ngv.With("x").Set(1)
	nhv.With("x").Observe(1)
	var nilReg *Registry
	nilReg.CounterVec("x", "", "l").With("y").Inc()
}

func TestLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("esc_total", "", "tenant")
	cv.With(`we"ird\ten` + "\n" + `ant`).Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{tenant="we\"ird\\ten\nant"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped export missing %q in:\n%s", want, sb.String())
	}
}

// TestLabelOverflowBucket pins the cardinality cap: past DefaultMaxChildren
// distinct values, every unseen value lands in the shared "other" child,
// while already-minted children keep their own series.
func TestLabelOverflowBucket(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("cap_total", "", "tenant")
	for i := 0; i < DefaultMaxChildren; i++ {
		cv.With(string(rune('A' + i))).Inc()
	}
	first := cv.With("A")
	over1 := cv.With("zz-over-1")
	over2 := cv.With("zz-over-2")
	if over1 != over2 || over1 != cv.With(OverflowLabel) {
		t.Fatal("past-cap values must share the overflow child")
	}
	over1.Inc()
	over2.Inc()
	if got := cv.With(OverflowLabel).Value(); got != 2 {
		t.Fatalf("overflow child = %d, want 2", got)
	}
	first.Inc()
	if got := cv.With("A").Value(); got != 2 {
		t.Fatalf("pre-cap child lost its series: %d, want 2", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "cap_total{"); n != DefaultMaxChildren+1 {
		t.Fatalf("family exports %d series, want cap+overflow = %d", n, DefaultMaxChildren+1)
	}
	if !strings.Contains(out, `cap_total{tenant="other"} 2`) {
		t.Fatalf("overflow series missing in:\n%s", out)
	}
}

// TestLabeledMismatchPanics: label renames and histogram bucket changes are
// wiring bugs and must panic like kind mismatches do.
func TestLabeledMismatchPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	reg := NewRegistry()
	reg.CounterVec("mm_total", "", "tenant")
	reg.Histogram("mm_seconds", "", LatencyBuckets)
	reg.HistogramVec("mm_vec_seconds", "", "route", LatencyBuckets)
	mustPanic("label rename", func() { reg.CounterVec("mm_total", "", "route") })
	mustPanic("kind clash with vec", func() { reg.Counter("mm_total", "") })
	// Satellite regression: Registry.Histogram used to silently reuse the
	// original buckets on a bounds mismatch.
	mustPanic("histogram bounds", func() { reg.Histogram("mm_seconds", "", ExpBuckets(1, 2, 4)) })
	mustPanic("histogram vec bounds", func() { reg.HistogramVec("mm_vec_seconds", "", "route", ExpBuckets(1, 2, 4)) })
	// Same bounds re-register stays idempotent.
	if reg.Histogram("mm_seconds", "", LatencyBuckets) == nil {
		t.Fatal("same-bounds re-registration must succeed")
	}
}

// TestLabeledZeroAllocs pins the hot-path contract: recording through a
// pre-bound labeled child, and even the With lookup for an existing value,
// allocate nothing.
func TestLabeledZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("lbl_alloc_total", "", "tenant")
	hv := reg.HistogramVec("lbl_alloc_seconds", "", "tenant", LatencyBuckets)
	c := cv.With("hot")
	h := hv.With("hot")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(0.002)
	}); n != 0 {
		t.Fatalf("pre-bound labeled recording allocated %v objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		cv.With("hot").Inc()
	}); n != 0 {
		t.Fatalf("With on an existing value allocated %v objects/op, want 0", n)
	}
	var ncv *CounterVec
	if n := testing.AllocsPerRun(1000, func() {
		ncv.With("hot").Inc()
	}); n != 0 {
		t.Fatalf("disabled labeled recording allocated %v objects/op, want 0", n)
	}
}

// TestLabeledConcurrentHammer drives concurrent With + child recording
// (and a concurrent exporter) under -race, then checks exact totals.
func TestLabeledConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("hammer_total", "", "tenant")
	hv := reg.HistogramVec("hammer_seconds", "", "tenant", LatencyBuckets)
	tenants := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tn := tenants[(g+i)%len(tenants)]
				cv.With(tn).Inc()
				hv.With(tn).Observe(0.001)
			}
		}(g)
	}
	// Export concurrently with the writers: snapshots must never tear or
	// block recording.
	stop := make(chan struct{})
	exporterDone := make(chan struct{})
	go func() {
		defer close(exporterDone)
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				_ = reg.WritePrometheus(&sb)
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-exporterDone

	var total uint64
	for _, tn := range tenants {
		total += cv.With(tn).Value()
	}
	if want := uint64(goroutines * perG); total != want {
		t.Fatalf("counter total = %d, want %d", total, want)
	}
	var hcount uint64
	for _, tn := range tenants {
		hcount += hv.With(tn).Count()
	}
	if want := uint64(goroutines * perG); hcount != want {
		t.Fatalf("histogram count = %d, want %d", hcount, want)
	}
}
