package obs

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"

	"mfcp/internal/parallel"
	"mfcp/internal/rng"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d", c.Value())
	}
	if again := reg.Counter("c_total", "a counter"); again != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := reg.Gauge("g", "a gauge")
	g.Set(-2.5)
	g.Add(1.25)
	if g.Value() != -1.25 {
		t.Fatalf("gauge %v", g.Value())
	}
	// Nil instruments and a nil registry are silent no-ops.
	var nilReg *Registry
	nilReg.Counter("x", "").Add(3)
	nilReg.Gauge("y", "").Set(1)
	nilReg.Histogram("z", "", LatencyBuckets).Observe(1)
	NewTracer(nilReg, "p").Phase("q").Start().End()
}

func TestRegistryKindClashPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind clash")
		}
	}()
	reg.Gauge("m", "")
}

// bucketWidth returns the width of the bucket that holds v.
func bucketWidth(bounds []float64, v float64) float64 {
	i := sort.SearchFloat64s(bounds, v)
	if i >= len(bounds) {
		i = len(bounds) - 1
	}
	lower := 0.0
	if i > 0 {
		lower = bounds[i-1]
	}
	return bounds[i] - lower
}

// TestHistogramQuantileAccuracy pins the interpolation estimate against the
// exact sample quantile of a sorted reference on several random
// distributions: the error must stay within one bucket width.
func TestHistogramQuantileAccuracy(t *testing.T) {
	r := rng.New(7)
	cases := []struct {
		name   string
		gen    func() float64
		bounds []float64
	}{
		{"uniform", func() float64 { return r.Float64() }, LinearBuckets(0.05, 0.05, 20)},
		{"exponential", func() float64 { return r.Exp(3) }, ExpBuckets(0.001, 1.5, 28)},
		{"lognormal-latency", func() float64 { return r.LogNormal(-6, 1) }, LatencyBuckets},
	}
	const n = 20000
	for _, tc := range cases {
		h := newHistogram(tc.bounds)
		samples := make([]float64, n)
		for i := range samples {
			v := tc.gen()
			samples[i] = v
			h.Observe(v)
		}
		sort.Float64s(samples)
		v := h.View()
		if v.Count != n {
			t.Fatalf("%s: count %d", tc.name, v.Count)
		}
		if math.Abs(v.Sum-sum(samples)) > 1e-9*math.Abs(sum(samples)) {
			t.Fatalf("%s: sum %v vs %v", tc.name, v.Sum, sum(samples))
		}
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			ref := samples[int(q*float64(n-1))]
			est := v.Quantile(q)
			tol := bucketWidth(tc.bounds, ref) + 1e-12
			if math.Abs(est-ref) > tol {
				t.Errorf("%s: q=%.2f est=%v ref=%v (tol %v)", tc.name, q, est, ref, tol)
			}
		}
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestHistogramEdgeCases(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	var empty HistView = h.View()
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	h.Observe(100) // overflow bucket
	h.Observe(0.5)
	v := h.View()
	if v.Counts[0] != 1 || v.Counts[3] != 1 {
		t.Fatalf("bucket placement: %v", v.Counts)
	}
	if got := v.Quantile(1); got != 4 {
		t.Fatalf("overflow quantile clamps to top bound, got %v", got)
	}
}

// TestRegistryConcurrentHammer drives counters, gauges, and histograms from
// parallel.Workers() goroutines while a snapshot loop exports continuously;
// run under -race (ci.sh does) this pins the lock-free recording contract.
// Values are 1.0 so the float sum is exact regardless of accumulation order.
func TestRegistryConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hammer_total", "")
	g := reg.Gauge("hammer_gauge", "")
	h := reg.Histogram("hammer_seconds", "", LatencyBuckets)

	workers := parallel.Workers()
	if workers < 4 {
		workers = 4
	}
	const perG = 20000
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.WritePrometheus(io.Discard)
				_ = reg.WriteSummary(io.Discard)
				v := h.View()
				_ = v.Quantile(0.9)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(1.0)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	want := uint64(workers * perG)
	if c.Value() != want {
		t.Fatalf("counter %d, want %d", c.Value(), want)
	}
	v := h.View()
	if v.Count != want || v.Sum != float64(want) {
		t.Fatalf("histogram count=%d sum=%v, want %d", v.Count, v.Sum, want)
	}
}

// TestInstrumentsZeroAllocs pins the hot-path contract: recording into any
// instrument — including opening and closing a span — allocates nothing.
func TestInstrumentsZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("alloc_total", "")
	g := reg.Gauge("alloc_gauge", "")
	h := reg.Histogram("alloc_seconds", "", LatencyBuckets)
	tm := NewTimer(h)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		g.Add(0.25)
		h.Observe(0.003)
		sp := tm.Start()
		sp.End()
	}); n != 0 {
		t.Fatalf("recording allocated %v objects/op, want 0", n)
	}
	// Disabled telemetry (nil instruments) must also stay allocation-free.
	var nc *Counter
	var nt *Timer
	if n := testing.AllocsPerRun(1000, func() {
		nc.Inc()
		sp := nt.Start()
		sp.End()
	}); n != 0 {
		t.Fatalf("disabled recording allocated %v objects/op, want 0", n)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("req_total", "requests").Add(7)
	reg.Gauge("temp", "temperature").Set(36.6)
	reg.Histogram("lat_seconds", "latency", []float64{0.1, 1}).Observe(0.5)
	reg.CounterFunc("fn_total", "from func", func() uint64 { return 9 })
	reg.GaugeFunc("fn_gauge", "from func", func() float64 { return 2.5 })

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE req_total counter", "req_total 7",
		"# TYPE temp gauge", "temp 36.6",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 0`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 0.5", "lat_seconds_count 1",
		"fn_total 9", "fn_gauge 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := reg.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "req_total") || !strings.Contains(buf.String(), "count=1") {
		t.Errorf("summary malformed:\n%s", buf.String())
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("smoke_total", "").Add(3)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "smoke_total 3") {
		t.Fatalf("/metrics missing series:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Fatal("/debug/vars missing memstats")
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Fatal("/debug/pprof/ index malformed")
	}
}
