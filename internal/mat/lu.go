package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P·A = L·U, where L is
// unit lower triangular and U upper triangular, packed into lu.
type LU struct {
	lu    *Dense
	pivot []int // row i of the factorization came from row pivot[i] of A
	signs int   // parity of the permutation, for Det
}

// Factorize computes the LU factorization of the square matrix a (which is
// not modified). It returns ErrSingular if a pivot underflows.
func Factorize(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: Factorize of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	for i := range pivot {
		pivot[i] = i
	}
	signs := 1
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest |entry| in column k at/below k.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				maxAbs, p = a, i
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			pivot[k], pivot[p] = pivot[p], pivot[k]
			signs = -signs
		}
		pivInv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			l := lu.At(i, k) * pivInv
			lu.Set(i, k, l)
			if l == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= l * rk[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, signs: signs}, nil
}

// Solve solves A·x = b for one right-hand side, writing into dst
// (allocating when nil).
func (f *LU) Solve(b Vec, dst Vec) (Vec, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("mat: LU.Solve rhs length %d, want %d", len(b), n)
	}
	if dst == nil {
		dst = NewVec(n)
	}
	// Apply permutation: y = P·b.
	for i := 0; i < n; i++ {
		dst[i] = b[f.pivot[i]]
	}
	// Forward substitution (L is unit lower triangular).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		sum := dst[i]
		for j := 0; j < i; j++ {
			sum -= row[j] * dst[j]
		}
		dst[i] = sum
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		sum := dst[i]
		for j := i + 1; j < n; j++ {
			sum -= row[j] * dst[j]
		}
		d := row[i]
		if d == 0 {
			return nil, ErrSingular
		}
		dst[i] = sum / d
	}
	return dst, nil
}

// SolveMat solves A·X = B column-by-column, returning a new matrix.
func (f *LU) SolveMat(b *Dense) (*Dense, error) {
	if b.Rows != f.lu.Rows {
		return nil, fmt.Errorf("mat: LU.SolveMat rhs rows %d, want %d", b.Rows, f.lu.Rows)
	}
	out := NewDense(b.Rows, b.Cols)
	col := NewVec(b.Rows)
	res := NewVec(b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		if _, err := f.Solve(col, res); err != nil {
			return nil, err
		}
		out.SetCol(j, res)
	}
	return out, nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	det := float64(f.signs)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		det *= f.lu.At(i, i)
	}
	return det
}

// Solve is a convenience that factorizes a and solves a·x = b.
func Solve(a *Dense, b Vec) (Vec, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b, nil)
}

// Inverse returns a⁻¹, or ErrSingular.
func Inverse(a *Dense) (*Dense, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMat(Eye(a.Rows))
}

// SolveSym solves the (symmetric, possibly indefinite) KKT-style system via
// plain LU with partial pivoting. A dedicated LDLᵀ would halve the work, but
// the systems here are small (MN+N ≲ a few hundred) and LU keeps one code
// path; the name documents intent at call sites.
func SolveSym(a *Dense, b Vec) (Vec, error) { return Solve(a, b) }
