package mat

import (
	"fmt"
	"sync"

	"mfcp/internal/parallel"
)

// This file implements the dense matrix-product kernels. All entry points
// share one contract:
//
//   - dst is allocated when nil and returned; otherwise its shape must match
//     and it must not alias an operand (checked, panics).
//   - Accumulation over the contraction index runs in increasing order for
//     every output element, in every path (scalar, blocked, parallel), so
//     results are bit-identical across paths and matrix sizes.
//
// Small products use a branch-free scalar kernel with register accumulators
// (one store per output element — no zero-fill-then-accumulate pass). Large
// products go through a BLIS-style blocked GEMM: panels of a and b are
// packed into contiguous, zero-padded buffers and consumed by a 4×2
// register-tile micro-kernel. (A 4×4 tile needs 16 accumulators plus operand
// temps — more than the 16 vector registers — and the resulting spills cost
// more than the extra reuse buys; 4×2 keeps every accumulator in a register.) Packing buffers are pooled, so steady-state
// calls do not allocate. The row-block loop fans out via internal/parallel
// with whole row blocks as the grain (the previous kernel dispatched one
// closure per row).

const (
	// gemmMR×gemmNR is the micro-kernel register tile.
	gemmMR = 4
	gemmNR = 2
	// gemmKC and gemmNC bound the packed panel of b (gemmKC×gemmNC ≈ 256 KiB,
	// sized for L2); gemmMC bounds the packed block of a (gemmMC×gemmKC).
	gemmKC = 256
	gemmNC = 128
	gemmMC = 128
	// smallGemmFlops is the multiply-accumulate count below which packing
	// overhead beats its cache benefit and the scalar kernel wins.
	smallGemmFlops = 24 * 24 * 24
	// parallelGemmThreshold is the multiply-accumulate count above which the
	// row-block loop fans out across goroutines.
	parallelGemmThreshold = 128 * 128 * 128
)

// gemmBuf holds the packing scratch for one in-flight blocked GEMM.
type gemmBuf struct{ a, b []float64 }

var gemmPool = sync.Pool{New: func() any { return new(gemmBuf) }}

func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func checkMulDst(a, b, dst *Dense, rows, cols int, name string) *Dense {
	if dst == nil {
		dst = NewDense(rows, cols)
	}
	if dst.Rows != rows || dst.Cols != cols {
		// invariant: kernels size dst from the operands via workspaces.
		panic(fmt.Sprintf("mat: %s dst shape %dx%d, want %dx%d", name, dst.Rows, dst.Cols, rows, cols))
	}
	if dst == a || dst == b {
		panic(fmt.Sprintf("mat: %s dst must not alias an operand", name))
	}
	return dst
}

// Mul computes dst = a · b. dst is allocated when nil; it must not alias a
// or b.
func Mul(a, b, dst *Dense) *Dense {
	if a.Cols != b.Rows {
		// invariant: operand shapes are fixed by the network/solver wiring.
		panic(fmt.Sprintf("mat: Mul dim mismatch %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst = checkMulDst(a, b, dst, a.Rows, b.Cols, "Mul")
	gemmNN(a, b, dst, false)
	return dst
}

// MulAdd computes dst += a · b. dst must be preallocated (it carries the
// accumulator) and must not alias a or b.
func MulAdd(a, b, dst *Dense) *Dense {
	if a.Cols != b.Rows {
		// invariant: operand shapes are fixed by the network/solver wiring.
		panic(fmt.Sprintf("mat: MulAdd dim mismatch %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		panic("mat: MulAdd needs a preallocated dst")
	}
	dst = checkMulDst(a, b, dst, a.Rows, b.Cols, "MulAdd")
	gemmNN(a, b, dst, true)
	return dst
}

// MulT computes dst = a · bᵀ without materializing the transpose: dst(i,j)
// is the dot product of row i of a and row j of b. It is the forward-pass
// kernel (X · Wᵀ). dst is allocated when nil.
func MulT(a, b, dst *Dense) *Dense {
	if a.Cols != b.Cols {
		// invariant: operand shapes are fixed by the network/solver wiring.
		panic(fmt.Sprintf("mat: MulT dim mismatch %dx%d by (%dx%d)^T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst = checkMulDst(a, b, dst, a.Rows, b.Rows, "MulT")
	gemmNT(a, b, dst, false)
	return dst
}

// MulTAdd computes dst += a · bᵀ. dst must be preallocated.
func MulTAdd(a, b, dst *Dense) *Dense {
	if a.Cols != b.Cols {
		// invariant: operand shapes are fixed by the network/solver wiring.
		panic(fmt.Sprintf("mat: MulTAdd dim mismatch %dx%d by (%dx%d)^T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		panic("mat: MulTAdd needs a preallocated dst")
	}
	dst = checkMulDst(a, b, dst, a.Rows, b.Rows, "MulTAdd")
	gemmNT(a, b, dst, true)
	return dst
}

// MulAT computes dst = aᵀ · b without materializing the transpose: dst(i,j)
// = Σ_p a(p,i)·b(p,j). dst is allocated when nil.
func MulAT(a, b, dst *Dense) *Dense {
	if a.Rows != b.Rows {
		// invariant: operand shapes are fixed by the network/solver wiring.
		panic(fmt.Sprintf("mat: MulAT dim mismatch (%dx%d)^T by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst = checkMulDst(a, b, dst, a.Cols, b.Cols, "MulAT")
	dst.Fill(0)
	gemmTN(a, b, dst)
	return dst
}

// MulATAdd computes dst += aᵀ · b — the backward-pass weight-gradient
// kernel (deltaᵀ · input accumulated into dW). dst must be preallocated.
func MulATAdd(a, b, dst *Dense) *Dense {
	if a.Rows != b.Rows {
		// invariant: operand shapes are fixed by the network/solver wiring.
		panic(fmt.Sprintf("mat: MulATAdd dim mismatch (%dx%d)^T by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		panic("mat: MulATAdd needs a preallocated dst")
	}
	dst = checkMulDst(a, b, dst, a.Cols, b.Cols, "MulATAdd")
	gemmTN(a, b, dst)
	return dst
}

// gemmNN dispatches dst (+)= a·b between the scalar and blocked paths.
func gemmNN(a, b, dst *Dense, add bool) {
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !add {
			dst.Fill(0)
		}
		return
	}
	work := m * k * n
	if work < smallGemmFlops {
		gemmSmallNN(a, b, dst, add, 0, m)
		return
	}
	if work >= parallelGemmThreshold && m >= 2*gemmMR && parallel.Workers() > 1 {
		// Whole row blocks are the parallel grain: each task packs its own
		// block of a and runs the full panel loop over it, so no goroutine
		// ever touches another's output rows and the per-task work is
		// thousands of fused loop iterations, not one row.
		grain := gemmMC
		for m/grain > parallel.Workers()*4 {
			grain *= 2
		}
		parallel.ForChunked(m, grain, func(lo, hi int) {
			gemmBlockedNN(a, b, dst, add, lo, hi)
		})
		return
	}
	gemmBlockedNN(a, b, dst, add, 0, m)
}

// gemmSmallNN is the scalar fallback: register accumulators, one store per
// output element, no zero test on a's elements, k accumulated in order.
func gemmSmallNN(a, b, dst *Dense, add bool, i0, i1 int) {
	k, n := a.Cols, b.Cols
	bd := b.Data
	for i := i0; i < i1; i++ {
		arow := a.Data[i*k : i*k+k]
		drow := dst.Data[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var s0, s1, s2, s3 float64
			bi := j
			for p := 0; p < k; p++ {
				av := arow[p]
				s0 += av * bd[bi]
				s1 += av * bd[bi+1]
				s2 += av * bd[bi+2]
				s3 += av * bd[bi+3]
				bi += n
			}
			if add {
				drow[j] += s0
				drow[j+1] += s1
				drow[j+2] += s2
				drow[j+3] += s3
			} else {
				drow[j] = s0
				drow[j+1] = s1
				drow[j+2] = s2
				drow[j+3] = s3
			}
		}
		for ; j < n; j++ {
			var s float64
			bi := j
			for p := 0; p < k; p++ {
				s += arow[p] * bd[bi]
				bi += n
			}
			if add {
				drow[j] += s
			} else {
				drow[j] = s
			}
		}
	}
}

// gemmBlockedNN runs the packed blocked GEMM over dst rows [i0, i1).
func gemmBlockedNN(a, b, dst *Dense, add bool, i0, i1 int) {
	k, n := a.Cols, b.Cols
	buf := gemmPool.Get().(*gemmBuf)
	defer gemmPool.Put(buf)

	for jc := 0; jc < n; jc += gemmNC {
		ncb := min(gemmNC, n-jc)
		jGroups := (ncb + gemmNR - 1) / gemmNR
		for pc := 0; pc < k; pc += gemmKC {
			kcb := min(gemmKC, k-pc)
			// First k-block initializes dst (unless accumulating); later
			// blocks always accumulate, preserving k order per element.
			acc := add || pc > 0
			buf.b = grow(buf.b, jGroups*gemmNR*kcb)
			packB(b, pc, kcb, jc, ncb, buf.b)
			for ic := i0; ic < i1; ic += gemmMC {
				mcb := min(gemmMC, i1-ic)
				iGroups := (mcb + gemmMR - 1) / gemmMR
				buf.a = grow(buf.a, iGroups*gemmMR*kcb)
				packA(a, ic, mcb, pc, kcb, buf.a)
				for jg := 0; jg < jGroups; jg++ {
					bp := buf.b[jg*gemmNR*kcb : (jg+1)*gemmNR*kcb]
					nrem := min(gemmNR, ncb-jg*gemmNR)
					for ig := 0; ig < iGroups; ig++ {
						ap := buf.a[ig*gemmMR*kcb : (ig+1)*gemmMR*kcb]
						mrem := min(gemmMR, mcb-ig*gemmMR)
						kernel4x2(kcb, ap, bp, dst, ic+ig*gemmMR, jc+jg*gemmNR, mrem, nrem, acc)
					}
				}
			}
		}
	}
}

// packA copies the block a[ic:ic+mcb, pc:pc+kcb] into ap, grouped in strips
// of gemmMR rows stored column-major within the strip (ap[g][p*MR+r]), with
// zero padding for partial strips.
func packA(a *Dense, ic, mcb, pc, kcb int, ap []float64) {
	k := a.Cols
	for g := 0; g*gemmMR < mcb; g++ {
		dstOff := g * gemmMR * kcb
		rows := min(gemmMR, mcb-g*gemmMR)
		for r := 0; r < rows; r++ {
			src := a.Data[(ic+g*gemmMR+r)*k+pc:]
			for p := 0; p < kcb; p++ {
				ap[dstOff+p*gemmMR+r] = src[p]
			}
		}
		for r := rows; r < gemmMR; r++ {
			for p := 0; p < kcb; p++ {
				ap[dstOff+p*gemmMR+r] = 0
			}
		}
	}
}

// packB copies the panel b[pc:pc+kcb, jc:jc+ncb] into bp, grouped in strips
// of gemmNR columns stored row-major within the strip (bp[g][p*NR+c]), with
// zero padding for partial strips.
func packB(b *Dense, pc, kcb, jc, ncb int, bp []float64) {
	n := b.Cols
	for g := 0; g*gemmNR < ncb; g++ {
		dstOff := g * gemmNR * kcb
		cols := min(gemmNR, ncb-g*gemmNR)
		for p := 0; p < kcb; p++ {
			src := b.Data[(pc+p)*n+jc+g*gemmNR:]
			off := dstOff + p*gemmNR
			for c := 0; c < cols; c++ {
				bp[off+c] = src[c]
			}
			for c := cols; c < gemmNR; c++ {
				bp[off+c] = 0
			}
		}
	}
}

// kernel4x2 computes the (mrem×nrem ≤ 4×2) tile of dst at (i0, j0),
// accumulating ap·bp over kc packed terms in 8 register accumulators and
// touching dst once per element (one load when accumulating, one store).
// The 8 accumulators plus the 6 operand temps stay inside the 16 vector
// registers, so the hot loop runs spill-free.
//
// When add is set the accumulators are seeded FROM dst rather than summed
// into it afterwards: fl(...fl(dst + a·b) + a·b...) continues the same
// rounding chain a single unblocked pass would produce, so splitting k into
// panels (pc loop) leaves results bit-identical to the scalar kernel instead
// of merely close.
func kernel4x2(kc int, ap, bp []float64, dst *Dense, i0, j0, mrem, nrem int, add bool) {
	var tile [gemmMR][gemmNR]float64
	ld := dst.Cols
	if add {
		for r := 0; r < mrem; r++ {
			drow := dst.Data[(i0+r)*ld+j0 : (i0+r)*ld+j0+nrem]
			for c := range drow {
				tile[r][c] = drow[c]
			}
		}
	}
	c00, c01 := tile[0][0], tile[0][1]
	c10, c11 := tile[1][0], tile[1][1]
	c20, c21 := tile[2][0], tile[2][1]
	c30, c31 := tile[3][0], tile[3][1]
	ap = ap[:gemmMR*kc]
	bp = bp[:gemmNR*kc]
	// Slice-advance iteration: the loop condition doubles as the bounds
	// check for the constant indices, so the body runs check-free. Plain
	// mul-add, not math.FMA: under the baseline GOAMD64 level each FMA
	// carries a hardware-feature branch with a function-call fallback, and
	// that potential call makes the compiler spill every accumulator around
	// every FMA. Separate mul+add also keeps the rounding — and therefore
	// the results — bit-identical to the scalar fallback and to the
	// pre-blocked kernel.
	for len(ap) >= 4 && len(bp) >= 2 {
		b0, b1 := bp[0], bp[1]
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[4:]
		bp = bp[2:]
	}
	tile[0] = [gemmNR]float64{c00, c01}
	tile[1] = [gemmNR]float64{c10, c11}
	tile[2] = [gemmNR]float64{c20, c21}
	tile[3] = [gemmNR]float64{c30, c31}
	for r := 0; r < mrem; r++ {
		drow := dst.Data[(i0+r)*ld+j0 : (i0+r)*ld+j0+nrem]
		for c := range drow {
			drow[c] = tile[r][c]
		}
	}
}

// gemmNT computes dst (+)= a·bᵀ. Both operands stream contiguously over the
// contraction index, so no packing is needed: a 2×2 register tile of dot
// products is enough to saturate the load ports.
func gemmNT(a, b, dst *Dense, add bool) {
	m, k, n := a.Rows, a.Cols, b.Rows
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !add {
			dst.Fill(0)
		}
		return
	}
	if m*k*n >= parallelGemmThreshold && m >= 4 && parallel.Workers() > 1 {
		grain := max(gemmMC, m/(parallel.Workers()*4))
		parallel.ForChunked(m, grain, func(lo, hi int) {
			gemmNTRange(a, b, dst, add, lo, hi)
		})
		return
	}
	gemmNTRange(a, b, dst, add, 0, m)
}

func gemmNTRange(a, b, dst *Dense, add bool, i0, i1 int) {
	k, n := a.Cols, b.Rows
	ld := dst.Cols
	i := i0
	for ; i+2 <= i1; i += 2 {
		arow0 := a.Data[i*k : i*k+k]
		arow1 := a.Data[(i+1)*k : (i+1)*k+k]
		drow0 := dst.Data[i*ld : i*ld+n]
		drow1 := dst.Data[(i+1)*ld : (i+1)*ld+n]
		j := 0
		for ; j+2 <= n; j += 2 {
			brow0 := b.Data[j*k : j*k+k]
			brow1 := b.Data[(j+1)*k : (j+1)*k+k]
			var s00, s01, s10, s11 float64
			for p := 0; p < k; p++ {
				a0, a1 := arow0[p], arow1[p]
				b0, b1 := brow0[p], brow1[p]
				s00 += a0 * b0
				s01 += a0 * b1
				s10 += a1 * b0
				s11 += a1 * b1
			}
			if add {
				drow0[j] += s00
				drow0[j+1] += s01
				drow1[j] += s10
				drow1[j+1] += s11
			} else {
				drow0[j] = s00
				drow0[j+1] = s01
				drow1[j] = s10
				drow1[j+1] = s11
			}
		}
		for ; j < n; j++ {
			brow := b.Data[j*k : j*k+k]
			var s0, s1 float64
			for p := 0; p < k; p++ {
				bv := brow[p]
				s0 += arow0[p] * bv
				s1 += arow1[p] * bv
			}
			if add {
				drow0[j] += s0
				drow1[j] += s1
			} else {
				drow0[j] = s0
				drow1[j] = s1
			}
		}
	}
	for ; i < i1; i++ {
		arow := a.Data[i*k : i*k+k]
		drow := dst.Data[i*ld : i*ld+n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : j*k+k]
			var s float64
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			if add {
				drow[j] += s
			} else {
				drow[j] = s
			}
		}
	}
}

// gemmTN accumulates dst += aᵀ·b by streaming rank-1 updates: for each row p
// of a and b, dst.Row(i) += a(p,i)·b.Row(p). The contraction index p runs in
// increasing order for every element. Callers zero dst first for the
// non-accumulating form. The backward weight gradient (deltaᵀ·input) is
// dominated by this kernel; its matrices are small, so it stays serial.
func gemmTN(a, b, dst *Dense) {
	k, m, n := a.Rows, a.Cols, b.Cols
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : p*m+m]
		brow := b.Data[p*n : p*n+n]
		for i, av := range arow {
			drow := dst.Data[i*n : i*n+n]
			j := 0
			for ; j+4 <= n; j += 4 {
				drow[j] += av * brow[j]
				drow[j+1] += av * brow[j+1]
				drow[j+2] += av * brow[j+2]
				drow[j+3] += av * brow[j+3]
			}
			for ; j < n; j++ {
				drow[j] += av * brow[j]
			}
		}
	}
}
