package mat

import (
	"errors"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot: the matrix is not (numerically) symmetric positive
// definite.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ.
type Cholesky struct {
	l *Dense
}

// FactorizeCholesky computes the Cholesky factorization of the symmetric
// positive definite matrix a (only the lower triangle is read; a is not
// modified). Roughly half the work of LU, and failure doubles as a cheap
// SPD certificate — which is how the diffopt tests verify Hessian positive
// definiteness under the entropy regularizer.
func FactorizeCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("mat: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve solves A·x = b via the factorization, writing into dst
// (allocating when nil).
func (c *Cholesky) Solve(b Vec, dst Vec) (Vec, error) {
	n := c.l.Rows
	if len(b) != n {
		return nil, errors.New("mat: Cholesky.Solve rhs length mismatch")
	}
	if dst == nil {
		dst = NewVec(n)
	}
	// Forward substitution: L·y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * dst[k]
		}
		dst[i] = s / row[i]
	}
	// Back substitution: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * dst[k]
		}
		dst[i] = s / c.l.At(i, i)
	}
	return dst, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// LogDet returns log det(A) = 2·Σ log L_ii, numerically stable for the
// near-singular systems the barrier produces.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.l.Rows; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}

// IsSPD reports whether a factorizes, i.e. is numerically symmetric
// positive definite.
func IsSPD(a *Dense) bool {
	_, err := FactorizeCholesky(a)
	return err == nil
}
