package mat

import (
	"math"
	"testing"

	"mfcp/internal/rng"
)

// naiveMul is the reference product: plain triple loop, contraction index in
// increasing order, no blocking, no skips. Every Mul* variant is checked
// against it.
func naiveMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for p := 0; p < a.Cols; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func maxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var d float64
	for i := range a.Data {
		d = math.Max(d, math.Abs(a.Data[i]-b.Data[i]))
	}
	return d
}

// TestGemmPropertyRandomShapes drives the full dispatcher — scalar fallback,
// blocked kernel with partial edge tiles, and the k-panel accumulation — over
// random shapes and checks every variant against the naive reference at
// 1e-12. Shapes are drawn to straddle smallGemmFlops so both paths run.
func TestGemmPropertyRandomShapes(t *testing.T) {
	r := rng.New(99)
	const cases = 60
	const tol = 1e-12
	for c := 0; c < cases; c++ {
		m := 1 + r.Intn(70)
		k := 1 + r.Intn(70)
		n := 1 + r.Intn(70)
		a := randomDense(r, m, k)
		b := randomDense(r, k, n)
		want := naiveMul(a, b)

		if d := maxAbsDiff(Mul(a, b, nil), want); d > tol {
			t.Fatalf("case %d (%dx%dx%d): Mul off by %g", c, m, k, n, d)
		}

		// MulAdd seeded with a known base.
		base := randomDense(r, m, n)
		got := base.Clone()
		MulAdd(a, b, got)
		wantAdd := base.Clone()
		wantAdd.AddScaled(1, want)
		if d := maxAbsDiff(got, wantAdd); d > tol {
			t.Fatalf("case %d (%dx%dx%d): MulAdd off by %g", c, m, k, n, d)
		}

		// MulT against reference built from the explicit transpose.
		bt := b.T() // n×k; MulT(a, bt) must equal a·b
		if d := maxAbsDiff(MulT(a, bt, nil), want); d > tol {
			t.Fatalf("case %d (%dx%dx%d): MulT off by %g", c, m, k, n, d)
		}
		got = base.Clone()
		MulTAdd(a, bt, got)
		if d := maxAbsDiff(got, wantAdd); d > tol {
			t.Fatalf("case %d (%dx%dx%d): MulTAdd off by %g", c, m, k, n, d)
		}

		// MulAT against reference built from the explicit transpose.
		at := a.T() // k×m; MulAT(at, b) must equal a·b
		if d := maxAbsDiff(MulAT(at, b, nil), want); d > tol {
			t.Fatalf("case %d (%dx%dx%d): MulAT off by %g", c, m, k, n, d)
		}
		got = base.Clone()
		MulATAdd(at, b, got)
		if d := maxAbsDiff(got, wantAdd); d > tol {
			t.Fatalf("case %d (%dx%dx%d): MulATAdd off by %g", c, m, k, n, d)
		}
	}
}

// TestGemmBlockedBitIdenticalToScalar pins the stronger property the blocked
// kernel is designed for: because every path accumulates the contraction
// index in increasing order with plain mul-add, blocked and scalar results
// are bit-identical, not merely close.
func TestGemmBlockedBitIdenticalToScalar(t *testing.T) {
	r := rng.New(7)
	for _, dims := range [][3]int{{64, 64, 64}, {37, 129, 65}, {130, 257, 3}, {5, 300, 67}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randomDense(r, m, k)
		b := randomDense(r, k, n)
		blocked := NewDense(m, n)
		gemmBlockedNN(a, b, blocked, false, 0, m)
		scalar := NewDense(m, n)
		gemmSmallNN(a, b, scalar, false, 0, m)
		for i := range blocked.Data {
			if blocked.Data[i] != scalar.Data[i] {
				t.Fatalf("%dx%dx%d: blocked differs from scalar at flat index %d: %v vs %v",
					m, k, n, i, blocked.Data[i], scalar.Data[i])
			}
		}
	}
}

// TestGemmKernelPadding hits shapes that leave partial MR/NR strips in the
// packed panels, where zero padding must not leak into the output.
func TestGemmKernelPadding(t *testing.T) {
	r := rng.New(21)
	for _, dims := range [][3]int{{25, 25, 25}, {26, 31, 29}, {129, 5, 131}, {4, 26, 1}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randomDense(r, m, k)
		b := randomDense(r, k, n)
		if d := maxAbsDiff(Mul(a, b, nil), naiveMul(a, b)); d > 1e-12 {
			t.Fatalf("%dx%dx%d: padding leak, off by %g", m, k, n, d)
		}
	}
}

func TestGemmZeroDimensions(t *testing.T) {
	for _, dims := range [][3]int{{0, 3, 4}, {3, 0, 4}, {3, 4, 0}, {0, 0, 0}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := NewDense(m, k)
		b := NewDense(k, n)
		got := Mul(a, b, nil)
		if got.Rows != m || got.Cols != n {
			t.Fatalf("Mul %dx%dx%d: got shape %dx%d", m, k, n, got.Rows, got.Cols)
		}
		for _, v := range got.Data {
			if v != 0 {
				t.Fatalf("Mul %dx%dx%d: nonzero output", m, k, n)
			}
		}
		// k == 0 must zero a non-nil dst (empty sum), not leave stale data.
		dst := NewDense(m, n).Fill(7)
		Mul(a, b, dst)
		for _, v := range dst.Data {
			if v != 0 {
				t.Fatalf("Mul %dx%dx%d: stale dst not zeroed", m, k, n)
			}
		}
		// ...while MulAdd must leave dst untouched (+= empty sum).
		dst.Fill(7)
		MulAdd(a, b, dst)
		for _, v := range dst.Data {
			if v != 7 {
				t.Fatalf("MulAdd %dx%dx%d: dst disturbed", m, k, n)
			}
		}
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestGemmPanics(t *testing.T) {
	a := NewDense(4, 5)
	b := NewDense(5, 6)
	sq := NewDense(4, 4)
	mustPanic(t, "Mul dim mismatch", func() { Mul(a, sq, nil) })
	mustPanic(t, "Mul dst shape", func() { Mul(a, b, NewDense(4, 5)) })
	mustPanic(t, "Mul dst aliases a", func() { Mul(sq, sq.Clone(), sq) })
	mustPanic(t, "MulAdd nil dst", func() { MulAdd(a, b, nil) })
	mustPanic(t, "MulTAdd nil dst", func() { MulTAdd(a, NewDense(6, 5), nil) })
	mustPanic(t, "MulATAdd nil dst", func() { MulATAdd(NewDense(5, 4), b, nil) })
	mustPanic(t, "MulT dim mismatch", func() { MulT(a, b, nil) })
	mustPanic(t, "MulAT dim mismatch", func() { MulAT(a, NewDense(4, 6), NewDense(5, 5)) })
	mustPanic(t, "MulT dst aliases b", func() {
		c := NewDense(4, 5)
		MulT(a, c, c)
	})
}

// TestMulVecAgainstReference checks MulVec/MulVecT on random sizes against a
// plain scalar loop.
func TestMulVecAgainstReference(t *testing.T) {
	r := rng.New(31)
	for c := 0; c < 20; c++ {
		rows := 1 + r.Intn(40)
		cols := 1 + r.Intn(40)
		m := randomDense(r, rows, cols)
		x := Vec(r.NormVec(make([]float64, cols)))
		y := Vec(r.NormVec(make([]float64, rows)))

		want := make(Vec, rows)
		for i := 0; i < rows; i++ {
			var s float64
			for j := 0; j < cols; j++ {
				s += m.At(i, j) * x[j]
			}
			want[i] = s
		}
		if !m.MulVec(x, nil).Equal(want, 1e-12) {
			t.Fatalf("case %d: MulVec mismatch", c)
		}

		wantT := make(Vec, cols)
		for j := 0; j < cols; j++ {
			var s float64
			for i := 0; i < rows; i++ {
				s += m.At(i, j) * y[i]
			}
			wantT[j] = s
		}
		if !m.MulVecT(y, nil).Equal(wantT, 1e-12) {
			t.Fatalf("case %d: MulVecT mismatch", c)
		}
	}
}

// BenchmarkMulSmall16 exercises the scalar fallback on the MLP-sized tiny
// product (16×16×16) that dominates per-sample predictor evaluation.
func BenchmarkMulSmall16(b *testing.B) {
	r := rng.New(1)
	x := randomDense(r, 16, 16)
	y := randomDense(r, 16, 16)
	dst := NewDense(16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y, dst)
	}
}

// BenchmarkMulT64 measures the transpose-free forward kernel (X · Wᵀ).
func BenchmarkMulT64(b *testing.B) {
	r := rng.New(1)
	x := randomDense(r, 64, 64)
	y := randomDense(r, 64, 64)
	dst := NewDense(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulT(x, y, dst)
	}
}
