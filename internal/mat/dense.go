package mat

import (
	"fmt"
	"math"
	"strings"

	"mfcp/internal/mfcperr"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense returns a zeroed Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		// invariant: internal callers size matrices from validated shapes;
		// external inputs go through NewDenseChecked.
		panic("mat: NewDense with negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseChecked is NewDense for externally supplied dimensions: it returns
// an mfcperr.ErrBadShape-wrapped error instead of panicking.
func NewDenseChecked(rows, cols int) (*Dense, error) {
	if rows < 0 || cols < 0 {
		return nil, mfcperr.Wrap(mfcperr.ErrBadShape, "mat: NewDense %dx%d", rows, cols)
	}
	return NewDense(rows, cols), nil
}

// FromRows builds a matrix from row slices (which are copied). All rows must
// have equal length.
func FromRows(rows [][]float64) *Dense {
	m, err := FromRowsChecked(rows)
	if err != nil {
		// invariant: internal callers construct from rectangular literals;
		// external data goes through FromRowsChecked.
		panic(err)
	}
	return m
}

// FromRowsChecked is FromRows for externally supplied data: ragged rows
// return an mfcperr.ErrBadShape-wrapped error instead of panicking.
func FromRowsChecked(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, mfcperr.Wrap(mfcperr.ErrBadShape, "mat: FromRows row %d has %d columns, want %d", i, len(r), m.Cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

// Add adds v to element (i, j).
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		// invariant: indices are produced by loops over this matrix's own dims.
		panic(fmt.Sprintf("mat: index (%d,%d) out of bounds for %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns row i as a Vec sharing the matrix's storage.
func (m *Dense) Row(i int) Vec {
	if i < 0 || i >= m.Rows {
		// invariant: indices are produced by loops over this matrix's own dims.
		panic(fmt.Sprintf("mat: row %d out of bounds for %dx%d", i, m.Rows, m.Cols))
	}
	return Vec(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// Col copies column j into a new Vec.
func (m *Dense) Col(j int) Vec {
	if j < 0 || j >= m.Cols {
		// invariant: indices are produced by loops over this matrix's own dims.
		panic(fmt.Sprintf("mat: col %d out of bounds for %dx%d", j, m.Rows, m.Cols))
	}
	out := NewVec(m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetCol writes v into column j.
func (m *Dense) SetCol(j int, v Vec) {
	if len(v) != m.Rows {
		// invariant: column vectors are sized from this matrix's dims.
		panic("mat: SetCol length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// Reshape reconfigures m in place to rows×cols, reusing the backing array
// when it has capacity and reallocating otherwise. It returns m. Element
// values are preserved only when the total size is unchanged; otherwise the
// contents are unspecified and callers must overwrite them. Workspaces use
// this to recycle scratch matrices across differently sized problems.
func (m *Dense) Reshape(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		// invariant: reshape targets come from validated shapes.
		panic("mat: Reshape with negative dimension")
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	return m
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src's contents into m. Shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		// invariant: copies occur between same-shape clones.
		panic("mat: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// Fill sets every element to c and returns m.
func (m *Dense) Fill(c float64) *Dense {
	for i := range m.Data {
		m.Data[i] = c
	}
	return m
}

// Scale multiplies every element by alpha in place and returns m.
func (m *Dense) Scale(alpha float64) *Dense {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
	return m
}

// AddScaled computes m += alpha*b in place. Shapes must match.
func (m *Dense) AddScaled(alpha float64, b *Dense) *Dense {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		// invariant: accumulation pairs are allocated with one shape.
		panic("mat: AddScaled shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += alpha * b.Data[i]
	}
	return m
}

// T returns a newly allocated transpose.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// Equal reports element-wise equality within tol.
func (m *Dense) Equal(b *Dense, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute element (0 for empty matrices).
func (m *Dense) MaxAbs() float64 {
	return Vec(m.Data).NormInf()
}

// FrobeniusNorm returns the Frobenius norm.
func (m *Dense) FrobeniusNorm() float64 {
	return Vec(m.Data).Norm2()
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%9.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MulVec computes dst = m · x (allocating dst when nil) and returns dst.
func (m *Dense) MulVec(x Vec, dst Vec) Vec {
	if len(x) != m.Cols {
		// invariant: vector lengths are sized from this matrix's dims.
		panic(fmt.Sprintf("mat: MulVec dim mismatch: %dx%d by %d", m.Rows, m.Cols, len(x)))
	}
	if dst == nil {
		dst = NewVec(m.Rows)
	}
	if len(dst) != m.Rows {
		// invariant: vector lengths are sized from this matrix's dims.
		panic("mat: MulVec dst length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Row(i).Dot(x)
	}
	return dst
}

// MulVecT computes dst = mᵀ · x (allocating dst when nil) and returns dst.
func (m *Dense) MulVecT(x Vec, dst Vec) Vec {
	if len(x) != m.Rows {
		// invariant: vector lengths are sized from this matrix's dims.
		panic(fmt.Sprintf("mat: MulVecT dim mismatch: %dx%d^T by %d", m.Rows, m.Cols, len(x)))
	}
	if dst == nil {
		dst = NewVec(m.Cols)
	}
	if len(dst) != m.Cols {
		// invariant: vector lengths are sized from this matrix's dims.
		panic("mat: MulVecT dst length mismatch")
	}
	dst.Fill(0)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			dst[j] += xi * v
		}
	}
	return dst
}

// OuterProduct computes dst += alpha · u vᵀ (allocating dst when nil).
func OuterProduct(alpha float64, u, v Vec, dst *Dense) *Dense {
	if dst == nil {
		dst = NewDense(len(u), len(v))
	}
	if dst.Rows != len(u) || dst.Cols != len(v) {
		// invariant: factors are sized by the caller from matching dims.
		panic("mat: OuterProduct shape mismatch")
	}
	for i, ui := range u {
		if ui == 0 {
			continue
		}
		row := dst.Row(i)
		c := alpha * ui
		for j, vj := range v {
			row[j] += c * vj
		}
	}
	return dst
}
