// Package mat implements the dense linear algebra kernels the repository is
// built on: vectors, row-major matrices, BLAS-like level-1/2/3 operations
// (with goroutine-parallel GEMM), LU factorization with partial pivoting,
// and the softmax/log-sum-exp helpers the matching optimizer needs.
//
// Everything is float64 and row-major. The API follows the stdlib style:
// receivers are mutated in place where that is the natural contract
// (e.g. AddScaled), and functions that allocate say so.
package mat

import (
	"fmt"
	"math"
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Fill sets every element to c and returns v.
func (v Vec) Fill(c float64) Vec {
	for i := range v {
		v[i] = c
	}
	return v
}

// Dot returns the inner product of v and w. It panics on length mismatch.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		// invariant: vectors in a pair are allocated together.
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	sum := 0.0
	for i, x := range v {
		sum += x * w[i]
	}
	return sum
}

// AddScaled computes v += alpha*w in place (BLAS axpy) and returns v.
func (v Vec) AddScaled(alpha float64, w Vec) Vec {
	if len(v) != len(w) {
		// invariant: vectors in a pair are allocated together.
		panic(fmt.Sprintf("mat: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
	return v
}

// Scale computes v *= alpha in place and returns v.
func (v Vec) Scale(alpha float64) Vec {
	for i := range v {
		v[i] *= alpha
	}
	return v
}

// Sum returns the sum of all elements.
func (v Vec) Sum() float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum
}

// Norm2 returns the Euclidean norm, guarding against overflow.
func (v Vec) Norm2() float64 {
	scale, ssq := 0.0, 1.0
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute element (0 for an empty vector).
func (v Vec) NormInf() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Max returns the maximum element and its index. It panics on an empty vector.
func (v Vec) Max() (float64, int) {
	if len(v) == 0 {
		// invariant: callers reduce non-empty slices.
		panic("mat: Max of empty vector")
	}
	best, at := v[0], 0
	for i, x := range v {
		if x > best {
			best, at = x, i
		}
	}
	return best, at
}

// Min returns the minimum element and its index. It panics on an empty vector.
func (v Vec) Min() (float64, int) {
	if len(v) == 0 {
		// invariant: callers reduce non-empty slices.
		panic("mat: Min of empty vector")
	}
	best, at := v[0], 0
	for i, x := range v {
		if x < best {
			best, at = x, i
		}
	}
	return best, at
}

// Equal reports whether v and w have the same length and elements within tol.
func (v Vec) Equal(w Vec, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// Softmax writes softmax(v / temp) into dst (allocating if dst is nil) and
// returns it. It is numerically stable (subtracts the max). temp must be > 0.
func (v Vec) Softmax(temp float64, dst Vec) Vec {
	if temp <= 0 {
		// invariant: temperatures are positive solver constants.
		panic("mat: Softmax with non-positive temperature")
	}
	if dst == nil {
		dst = NewVec(len(v))
	}
	if len(dst) != len(v) {
		// invariant: dst is allocated to match the input.
		panic("mat: Softmax dst length mismatch")
	}
	if len(v) == 0 {
		return dst
	}
	m, _ := v.Max()
	sum := 0.0
	for i, x := range v {
		e := math.Exp((x - m) / temp)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// LogSumExp returns (1/beta) * log(sum_i exp(beta*v_i)), computed stably.
// As beta grows it converges to max(v) from above.
func LogSumExp(v Vec, beta float64) float64 {
	if len(v) == 0 {
		// invariant: callers reduce non-empty slices.
		panic("mat: LogSumExp of empty vector")
	}
	if beta <= 0 {
		panic("mat: LogSumExp with non-positive beta")
	}
	m, _ := v.Max()
	sum := 0.0
	for _, x := range v {
		sum += math.Exp(beta * (x - m))
	}
	return m + math.Log(sum)/beta
}

// SoftmaxWeights writes the softmax weights p_i = exp(beta*v_i)/sum into dst
// (allocating if nil); these are the gradient weights of LogSumExp.
func SoftmaxWeights(v Vec, beta float64, dst Vec) Vec {
	if dst == nil {
		dst = NewVec(len(v))
	}
	m, _ := v.Max()
	sum := 0.0
	for i, x := range v {
		e := math.Exp(beta * (x - m))
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}
