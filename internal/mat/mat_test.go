package mat

import (
	"math"
	"testing"
	"testing/quick"

	"mfcp/internal/rng"
)

func randomDense(r *rng.Source, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Normal(0, 1)
	}
	return m
}

func TestVecDotAndAxpy(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if v.Dot(w) != 32 {
		t.Fatalf("dot=%v", v.Dot(w))
	}
	v.AddScaled(2, w)
	if !v.Equal(Vec{9, 12, 15}, 1e-12) {
		t.Fatalf("axpy=%v", v)
	}
}

func TestVecDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Vec{1}.Dot(Vec{1, 2})
}

func TestNorm2Stable(t *testing.T) {
	v := Vec{3e150, 4e150}
	if got := v.Norm2(); math.IsInf(got, 0) || math.Abs(got-5e150) > 1e137 {
		t.Fatalf("Norm2 overflowed: %v", got)
	}
	if (Vec{}).Norm2() != 0 {
		t.Fatal("empty Norm2 != 0")
	}
}

func TestMaxMin(t *testing.T) {
	v := Vec{2, -1, 7, 7, 0}
	if m, i := v.Max(); m != 7 || i != 2 {
		t.Fatalf("Max=%v,%d", m, i)
	}
	if m, i := v.Min(); m != -1 || i != 1 {
		t.Fatalf("Min=%v,%d", m, i)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	r := rng.New(1)
	check := func(seed uint32) bool {
		s := r.SplitIndexed("softmax", int(seed%1000))
		n := s.Intn(10) + 1
		v := Vec(s.NormVec(make([]float64, n))).Scale(10)
		p := v.Softmax(1, nil)
		sum := 0.0
		for _, x := range p {
			if x < 0 || x > 1 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-10 {
			return false
		}
		// argmax is preserved
		_, wantIdx := v.Max()
		_, gotIdx := p.Max()
		return wantIdx == gotIdx
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxTemperature(t *testing.T) {
	v := Vec{1, 2, 3}
	cold := v.Softmax(0.01, nil)
	if cold[2] < 0.999 {
		t.Fatalf("cold softmax not peaked: %v", cold)
	}
	hot := v.Softmax(1000, nil)
	for _, x := range hot {
		if math.Abs(x-1.0/3) > 1e-3 {
			t.Fatalf("hot softmax not uniform: %v", hot)
		}
	}
}

func TestLogSumExpBoundsMax(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(8) + 1
		v := Vec(r.NormVec(make([]float64, n))).Scale(5)
		m, _ := v.Max()
		for _, beta := range []float64{0.5, 2, 10, 100} {
			lse := LogSumExp(v, beta)
			if lse < m-1e-12 {
				t.Fatalf("LSE %v below max %v at beta=%v", lse, m, beta)
			}
			if lse > m+math.Log(float64(n))/beta+1e-12 {
				t.Fatalf("LSE %v above max+log(n)/beta at beta=%v", lse, beta)
			}
		}
		// Convergence: beta=1e4 should be within 1e-3 of the max.
		if d := LogSumExp(v, 1e4) - m; d > 1e-3 {
			t.Fatalf("LSE did not converge to max: gap %v", d)
		}
	}
}

func TestSoftmaxWeightsSumToOne(t *testing.T) {
	v := Vec{1, 5, 2}
	p := SoftmaxWeights(v, 3, nil)
	sum := 0.0
	for _, x := range p {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum %v", sum)
	}
	if p[1] <= p[0] || p[1] <= p[2] {
		t.Fatalf("weights not ordered with values: %v", p)
	}
}

func TestDenseAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.At(1, 2) != 6 {
		t.Fatal("At wrong")
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatal("Set wrong")
	}
	m.Add(0, 1, 1)
	if m.At(0, 1) != 10 {
		t.Fatal("Add wrong")
	}
	if !m.Col(0).Equal(Vec{1, 4}, 0) {
		t.Fatalf("Col=%v", m.Col(0))
	}
	m.SetCol(2, Vec{7, 8})
	if m.At(0, 2) != 7 || m.At(1, 2) != 8 {
		t.Fatal("SetCol wrong")
	}
}

func TestRowSharesStorage(t *testing.T) {
	m := NewDense(2, 2)
	m.Row(1)[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row does not alias storage")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 || mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatalf("T wrong: %v", mt)
	}
	if !m.T().T().Equal(m, 0) {
		t.Fatal("double transpose differs")
	}
}

func TestMulAgainstHand(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b, nil)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !c.Equal(want, 1e-12) {
		t.Fatalf("Mul wrong:\n%v", c)
	}
}

func TestMulIdentity(t *testing.T) {
	r := rng.New(3)
	a := randomDense(r, 17, 17)
	if !Mul(a, Eye(17), nil).Equal(a, 1e-12) || !Mul(Eye(17), a, nil).Equal(a, 1e-12) {
		t.Fatal("identity multiplication changed matrix")
	}
}

func TestMulParallelMatchesSerial(t *testing.T) {
	// A matrix large enough to trigger the parallel path must give the same
	// result as the small-path algorithm on the same data.
	r := rng.New(4)
	a := randomDense(r, 80, 70)
	b := randomDense(r, 70, 90)
	big := Mul(a, b, nil)
	// compute serially by hand
	want := NewDense(80, 90)
	for i := 0; i < 80; i++ {
		for j := 0; j < 90; j++ {
			s := 0.0
			for k := 0; k < 70; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	if !big.Equal(want, 1e-9) {
		t.Fatal("parallel Mul differs from serial reference")
	}
}

func TestMulVecAndT(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if !m.MulVec(Vec{1, 1, 1}, nil).Equal(Vec{6, 15}, 1e-12) {
		t.Fatal("MulVec wrong")
	}
	if !m.MulVecT(Vec{1, 1}, nil).Equal(Vec{5, 7, 9}, 1e-12) {
		t.Fatal("MulVecT wrong")
	}
}

func TestMulVecTMatchesTransposeMul(t *testing.T) {
	r := rng.New(5)
	m := randomDense(r, 13, 7)
	x := Vec(r.NormVec(make([]float64, 13)))
	a := m.MulVecT(x, nil)
	b := m.T().MulVec(x, nil)
	if !a.Equal(b, 1e-10) {
		t.Fatal("MulVecT != T().MulVec")
	}
}

func TestOuterProduct(t *testing.T) {
	d := OuterProduct(2, Vec{1, 2}, Vec{3, 4, 5}, nil)
	want := FromRows([][]float64{{6, 8, 10}, {12, 16, 20}})
	if !d.Equal(want, 1e-12) {
		t.Fatalf("outer product wrong:\n%v", d)
	}
	// accumulate
	OuterProduct(1, Vec{1, 0}, Vec{1, 1, 1}, d)
	if d.At(0, 0) != 7 || d.At(1, 0) != 12 {
		t.Fatal("OuterProduct accumulation wrong")
	}
}

func TestLUSolveRoundTrip(t *testing.T) {
	r := rng.New(6)
	check := func(seed uint32) bool {
		s := r.SplitIndexed("lu", int(seed%500))
		n := s.Intn(12) + 1
		a := randomDense(s, n, n)
		// diagonal boost keeps matrices comfortably nonsingular
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		x := Vec(s.NormVec(make([]float64, n)))
		b := a.MulVec(x, nil)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return got.Equal(x, 1e-7)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factorize(a); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := Factorize(NewDense(2, 3)); err == nil {
		t.Fatal("non-square Factorize did not error")
	}
}

func TestLUPivotingHandlesZeroDiagonal(t *testing.T) {
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, Vec{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(Vec{3, 2}, 1e-12) {
		t.Fatalf("pivoted solve wrong: %v", x)
	}
}

func TestDet(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 3}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-6) > 1e-12 {
		t.Fatalf("det=%v", f.Det())
	}
	// Permutation parity: swapping rows flips the sign.
	b := FromRows([][]float64{{0, 3}, {2, 0}})
	f2, err := Factorize(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f2.Det()+6) > 1e-12 {
		t.Fatalf("det with pivot=%v", f2.Det())
	}
}

func TestInverse(t *testing.T) {
	r := rng.New(8)
	a := randomDense(r, 9, 9)
	for i := 0; i < 9; i++ {
		a.Add(i, i, 9)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(a, inv, nil).Equal(Eye(9), 1e-8) {
		t.Fatal("A·A⁻¹ != I")
	}
}

func TestSolveMatMultipleRHS(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	b := FromRows([][]float64{{1, 0}, {0, 1}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveMat(b)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(a, x, nil).Equal(b, 1e-10) {
		t.Fatal("SolveMat residual too large")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulAliasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a := NewDense(4, 4)
	Mul(a, a, a)
}

func BenchmarkMul64(b *testing.B) {
	r := rng.New(1)
	x := randomDense(r, 64, 64)
	y := randomDense(r, 64, 64)
	dst := NewDense(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y, dst)
	}
}

func BenchmarkMul256Parallel(b *testing.B) {
	r := rng.New(1)
	x := randomDense(r, 256, 256)
	y := randomDense(r, 256, 256)
	dst := NewDense(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y, dst)
	}
}

func BenchmarkLUSolve64(b *testing.B) {
	r := rng.New(1)
	a := randomDense(r, 64, 64)
	for i := 0; i < 64; i++ {
		a.Add(i, i, 64)
	}
	rhs := Vec(r.NormVec(make([]float64, 64)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
