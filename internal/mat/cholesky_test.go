package mat

import (
	"math"
	"testing"

	"mfcp/internal/rng"
)

// randomSPD builds A = BᵀB + n·I, guaranteed SPD.
func randomSPD(r *rng.Source, n int) *Dense {
	b := randomDense(r, n, n)
	a := Mul(b.T(), b, nil)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestCholeskyReconstructs(t *testing.T) {
	r := rng.New(91)
	for _, n := range []int{1, 3, 8, 15} {
		a := randomSPD(r, n)
		c, err := FactorizeCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		l := c.L()
		if !Mul(l, l.T(), nil).Equal(a, 1e-8) {
			t.Fatalf("n=%d: L·Lᵀ != A", n)
		}
		// Factor is lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("upper triangle non-zero at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	r := rng.New(92)
	a := randomSPD(r, 9)
	x := Vec(r.NormVec(make([]float64, 9)))
	b := a.MulVec(x, nil)
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Solve(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(x, 1e-7) {
		t.Fatalf("solve wrong:\n%v\nvs\n%v", got, x)
	}
	// Agreement with the LU path.
	lu, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(lu, 1e-7) {
		t.Fatal("Cholesky and LU disagree")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := FactorizeCholesky(a); err != ErrNotSPD {
		t.Fatalf("want ErrNotSPD, got %v", err)
	}
	if IsSPD(a) {
		t.Fatal("indefinite matrix reported SPD")
	}
	if !IsSPD(Eye(4)) {
		t.Fatal("identity not SPD")
	}
	if _, err := FactorizeCholesky(NewDense(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.LogDet(); math.Abs(got-math.Log(36)) > 1e-12 {
		t.Fatalf("LogDet=%v want log(36)=%v", got, math.Log(36))
	}
}

func BenchmarkCholesky64(b *testing.B) {
	a := randomSPD(rng.New(1), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FactorizeCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}
