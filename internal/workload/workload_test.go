package workload

import (
	"math"
	"testing"

	"mfcp/internal/cluster"
)

func small(seed uint64) *Scenario {
	return MustNew(Config{Setting: cluster.SettingA, PoolSize: 40, FeatureDim: 12, Seed: seed})
}

func TestScenarioDeterministic(t *testing.T) {
	a := small(5)
	b := small(5)
	if !a.TrueT.Equal(b.TrueT, 0) || !a.MeasT.Equal(b.MeasT, 0) || !a.Features.Equal(b.Features, 0) {
		t.Fatal("same-seed scenarios differ")
	}
	if a.TimeScale != b.TimeScale {
		t.Fatal("time scale differs")
	}
}

func TestScenarioSeedMatters(t *testing.T) {
	a := small(5)
	b := small(6)
	if a.MeasT.Equal(b.MeasT, 1e-12) {
		t.Fatal("different seeds produced identical measurements")
	}
}

func TestShapesAndNormalization(t *testing.T) {
	s := small(7)
	if s.M() != 3 || s.PoolLen() != 40 {
		t.Fatalf("M=%d pool=%d", s.M(), s.PoolLen())
	}
	if s.TrueT.Rows != 3 || s.TrueT.Cols != 40 {
		t.Fatalf("TrueT shape %dx%d", s.TrueT.Rows, s.TrueT.Cols)
	}
	// Normalized true times must average to 1 by construction.
	sum := 0.0
	for _, v := range s.TrueT.Data {
		if v <= 0 {
			t.Fatalf("non-positive normalized time %v", v)
		}
		sum += v
	}
	if mean := sum / float64(len(s.TrueT.Data)); math.Abs(mean-1) > 1e-9 {
		t.Fatalf("normalized mean %v, want 1", mean)
	}
	for _, v := range s.TrueA.Data {
		if v < 0 || v > 1 {
			t.Fatalf("reliability %v out of range", v)
		}
	}
}

func TestMeasurementsNoisyButCorrelated(t *testing.T) {
	s := small(9)
	// Measured and true times should differ (noise) but correlate strongly.
	var sumTrue, sumMeas, sumTT, sumMM, sumTM float64
	n := float64(len(s.TrueT.Data))
	identical := true
	for k := range s.TrueT.Data {
		tv, mv := math.Log(s.TrueT.Data[k]), math.Log(s.MeasT.Data[k])
		if tv != mv {
			identical = false
		}
		sumTrue += tv
		sumMeas += mv
		sumTT += tv * tv
		sumMM += mv * mv
		sumTM += tv * mv
	}
	if identical {
		t.Fatal("measurements carry no noise")
	}
	cov := sumTM/n - sumTrue*sumMeas/n/n
	vt := sumTT/n - sumTrue*sumTrue/n/n
	vm := sumMM/n - sumMeas*sumMeas/n/n
	if corr := cov / math.Sqrt(vt*vm); corr < 0.95 {
		t.Fatalf("log-time correlation %v too low", corr)
	}
}

func TestSplitPartitions(t *testing.T) {
	s := small(11)
	train, test := s.Split(0.75)
	if len(train)+len(test) != s.PoolLen() {
		t.Fatalf("split sizes %d+%d != %d", len(train), len(test), s.PoolLen())
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
	// Same seed → same split.
	train2, _ := small(11).Split(0.75)
	for k := range train {
		if train[k] != train2[k] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestSplitPanicsOnBadFrac(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	small(1).Split(1.5)
}

func TestSampleRound(t *testing.T) {
	s := small(13)
	train, _ := s.Split(0.75)
	r := s.Stream("round")
	idx := s.SampleRound(train, 5, r)
	if len(idx) != 5 {
		t.Fatalf("round size %d", len(idx))
	}
	inTrain := map[int]bool{}
	for _, i := range train {
		inTrain[i] = true
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if !inTrain[i] {
			t.Fatalf("round drew index %d outside candidate set", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d within round", i)
		}
		seen[i] = true
	}
}

func TestGatherConsistency(t *testing.T) {
	s := small(15)
	idx := []int{3, 0, 7}
	T, A := s.TrueMatrices(idx)
	for k, j := range idx {
		for i := 0; i < s.M(); i++ {
			if T.At(i, k) != s.TrueT.At(i, j) || A.At(i, k) != s.TrueA.At(i, j) {
				t.Fatal("gather misaligned")
			}
		}
	}
	X := s.FeaturesOf(idx)
	if X.Rows != 3 || !X.Row(1).Equal(s.Features.Row(0), 0) {
		t.Fatal("FeaturesOf misaligned")
	}
	tv, av := s.LabelVectors(1, idx)
	MT, MA := s.MeasuredMatrices(idx)
	for k := range idx {
		if tv[k] != MT.At(1, k) || av[k] != MA.At(1, k) {
			t.Fatal("LabelVectors disagree with MeasuredMatrices")
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := MustNew(Config{Seed: 1})
	if s.PoolLen() != 160 || s.Features.Cols != 16 || s.M() != 3 {
		t.Fatalf("defaults not applied: pool=%d dim=%d M=%d", s.PoolLen(), s.Features.Cols, s.M())
	}
}
