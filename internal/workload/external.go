package workload

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
	"mfcp/internal/rng"
)

// FromData builds a matrices-only Scenario from externally supplied
// measurements — the adoption path for operators with real profiling data
// instead of the simulator. features is N×d (one row per task), measT and
// measA are M×N measured execution times (any consistent unit) and
// reliabilities.
//
// Times are normalized to mean 1 internally (TimeScale returns to the
// original unit). Since no simulator stands behind the data, the hidden
// "ground truth" is taken to BE the measurements: evaluation against
// TrueMatrices then measures decision quality w.r.t. the best available
// knowledge. Fleet and Pool are nil — simulator-backed features
// (platform runs, onboarding, drift) are unavailable on external data.
func FromData(features, measT, measA *mat.Dense, seed uint64) (*Scenario, error) {
	if measT.Rows != measA.Rows || measT.Cols != measA.Cols {
		return nil, mfcperr.Wrap(mfcperr.ErrBadShape, "workload: T is %dx%d but A is %dx%d", measT.Rows, measT.Cols, measA.Rows, measA.Cols)
	}
	if features.Rows != measT.Cols {
		return nil, mfcperr.Wrap(mfcperr.ErrBadShape, "workload: %d feature rows for %d tasks", features.Rows, measT.Cols)
	}
	total := 0.0
	for _, v := range measT.Data {
		if v <= 0 {
			return nil, mfcperr.Wrap(mfcperr.ErrBadShape, "workload: non-positive measured time %v", v)
		}
		total += v
	}
	for _, v := range measA.Data {
		if v < 0 || v > 1 {
			return nil, mfcperr.Wrap(mfcperr.ErrBadShape, "workload: reliability %v outside [0,1]", v)
		}
	}
	scale := total / float64(len(measT.Data))
	s := &Scenario{
		Features:  features.Clone(),
		TimeScale: scale,
		MeasT:     measT.Clone().Scale(1 / scale),
		MeasA:     measA.Clone(),
		root:      rng.New(seed),
	}
	s.TrueT = s.MeasT.Clone()
	s.TrueA = s.MeasA.Clone()
	return s, nil
}

// LoadCSV reads a dataset in cmd/datagen's layout — features.csv and
// performance.csv under dir — and builds a matrices-only Scenario via
// FromData. It uses the measured columns; the true_* columns, when the
// data came from the simulator, are ignored (an external dataset would not
// have them).
func LoadCSV(dir string, seed uint64) (*Scenario, error) {
	features, err := loadFeaturesCSV(filepath.Join(dir, "features.csv"))
	if err != nil {
		return nil, err
	}
	measT, measA, err := loadPerformanceCSV(filepath.Join(dir, "performance.csv"), features.Rows)
	if err != nil {
		return nil, err
	}
	return FromData(features, measT, measA, seed)
}

// loadFeaturesCSV parses "task,f0,f1,..." rows.
func loadFeaturesCSV(path string) (*mat.Dense, error) {
	rows, err := readCSV(path)
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("workload: %s has no data rows", path)
	}
	dim := len(rows[0]) - 1
	out := mat.NewDense(len(rows)-1, dim)
	for i, row := range rows[1:] {
		if len(row) != dim+1 {
			return nil, fmt.Errorf("workload: %s row %d has %d fields, want %d", path, i+1, len(row), dim+1)
		}
		idx, err := strconv.Atoi(row[0])
		if err != nil || idx < 0 || idx >= out.Rows {
			return nil, fmt.Errorf("workload: %s row %d has bad task index %q", path, i+1, row[0])
		}
		for d := 0; d < dim; d++ {
			v, err := strconv.ParseFloat(row[d+1], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: %s row %d field %d: %w", path, i+1, d+1, err)
			}
			out.Set(idx, d, v)
		}
	}
	return out, nil
}

// loadPerformanceCSV parses datagen's per-(cluster,task) rows, returning
// M×N measured time and reliability matrices.
func loadPerformanceCSV(path string, numTasks int) (T, A *mat.Dense, err error) {
	rows, err := readCSV(path)
	if err != nil {
		return nil, nil, err
	}
	if len(rows) < 2 {
		return nil, nil, fmt.Errorf("workload: %s has no data rows", path)
	}
	header := rows[0]
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		return -1
	}
	cCluster, cTask := col("cluster"), col("task")
	cT, cA := col("meas_time_norm"), col("meas_reliability")
	if cCluster < 0 || cTask < 0 || cT < 0 || cA < 0 {
		return nil, nil, fmt.Errorf("workload: %s missing required columns", path)
	}
	maxCluster := -1
	type cell struct{ t, a float64 }
	entries := map[[2]int]cell{}
	for i, row := range rows[1:] {
		ci, err1 := strconv.Atoi(row[cCluster])
		tj, err2 := strconv.Atoi(row[cTask])
		tv, err3 := strconv.ParseFloat(row[cT], 64)
		av, err4 := strconv.ParseFloat(row[cA], 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, nil, fmt.Errorf("workload: %s row %d unparseable", path, i+1)
		}
		if tj < 0 || tj >= numTasks {
			return nil, nil, fmt.Errorf("workload: %s row %d task %d out of range", path, i+1, tj)
		}
		if ci > maxCluster {
			maxCluster = ci
		}
		entries[[2]int{ci, tj}] = cell{tv, av}
	}
	m := maxCluster + 1
	if m <= 0 {
		return nil, nil, fmt.Errorf("workload: %s has no clusters", path)
	}
	T = mat.NewDense(m, numTasks)
	A = mat.NewDense(m, numTasks)
	for i := 0; i < m; i++ {
		for j := 0; j < numTasks; j++ {
			c, ok := entries[[2]int{i, j}]
			if !ok {
				return nil, nil, fmt.Errorf("workload: %s missing cluster %d task %d", path, i, j)
			}
			T.Set(i, j, c.t)
			A.Set(i, j, c.a)
		}
	}
	return T, A, nil
}

// readCSV reads a simple comma-separated file (no quoting — datagen emits
// none) into rows of fields.
func readCSV(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		rows = append(rows, strings.Split(line, ","))
	}
	return rows, sc.Err()
}
