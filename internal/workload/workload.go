// Package workload assembles the learning problem the platform faces: a
// pool of deep-learning tasks, their feature embeddings, and per-cluster
// performance measurements (noisy profiling runs) alongside the hidden
// ground truth used for evaluation.
//
// A Scenario is the single source of truth for one experimental setup —
// fleet, task pool, features, and the time normalization scale. All
// downstream components (predictors, matchers, baselines, the experiment
// harness) consume matrices produced here, never the cluster internals.
package workload

import (
	"fmt"

	"mfcp/internal/cluster"
	"mfcp/internal/embed"
	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
	"mfcp/internal/rng"
	"mfcp/internal/taskgraph"
)

// Config parameterizes scenario construction.
type Config struct {
	// Setting selects the cluster fleet (A, B, or C).
	Setting cluster.Setting
	// PoolSize is the number of tasks in the pool (default 160).
	PoolSize int
	// FeatureDim is the embedding dimension (default 16).
	FeatureDim int
	// FamilyWeights biases the task family mix (nil = uniform).
	FamilyWeights []float64
	// MeasureTrials is the number of profiling repetitions behind each
	// reliability observation (default 20).
	MeasureTrials int
	// NoiseScale multiplies every cluster's run-to-run noise sigma
	// (0 or 1 = unchanged); the noise-sensitivity study sweeps it.
	NoiseScale float64
	// StatsEmbedder replaces the message-passing embedder with the
	// structure-blind global-statistics embedder (the embedding-ablation
	// study's weak baseline).
	StatsEmbedder bool
	// Seed drives every random choice in the scenario.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.Setting == "" {
		c.Setting = cluster.SettingA
	}
	if c.PoolSize == 0 {
		c.PoolSize = 160
	}
	if c.FeatureDim == 0 {
		c.FeatureDim = 16
	}
	if c.MeasureTrials == 0 {
		c.MeasureTrials = 20
	}
}

// Validate rejects configurations outside their admissible ranges. New
// calls it after fillDefaults, so scenario construction fails fast with an
// mfcperr.ErrBadConfig-wrapped error instead of generating a degenerate
// pool.
func (c *Config) Validate() error {
	if c.PoolSize < 1 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "workload: PoolSize %d must be at least 1", c.PoolSize)
	}
	if c.FeatureDim < 1 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "workload: FeatureDim %d must be at least 1", c.FeatureDim)
	}
	if c.MeasureTrials < 1 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "workload: MeasureTrials %d must be at least 1", c.MeasureTrials)
	}
	if c.NoiseScale < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "workload: NoiseScale %g must be non-negative", c.NoiseScale)
	}
	if c.FamilyWeights != nil {
		if len(c.FamilyWeights) != taskgraph.NumFamilies {
			return mfcperr.Wrap(mfcperr.ErrBadConfig, "workload: %d family weights for %d families", len(c.FamilyWeights), taskgraph.NumFamilies)
		}
		pos := false
		for _, w := range c.FamilyWeights {
			if w < 0 {
				return mfcperr.Wrap(mfcperr.ErrBadConfig, "workload: negative family weight %g", w)
			}
			if w > 0 {
				pos = true
			}
		}
		if !pos {
			return mfcperr.Wrap(mfcperr.ErrBadConfig, "workload: family weights are all zero")
		}
	}
	return nil
}

// TaskEmbedder maps tasks to fixed-length feature vectors; both the
// message-passing embedder and the stats-only baseline satisfy it.
type TaskEmbedder interface {
	Embed(t *taskgraph.Task) mat.Vec
	EmbedAll(tasks []*taskgraph.Task) *mat.Dense
}

// Scenario is one fully materialized experimental environment.
type Scenario struct {
	Fleet    []*cluster.Profile
	Embedder TaskEmbedder
	Pool     []*taskgraph.Task
	// Features holds one embedding row per pool task (PoolSize × FeatureDim).
	Features *mat.Dense
	// TimeScale normalizes raw seconds so matching costs are O(1); it is
	// the mean true execution time over (pool × fleet).
	TimeScale float64
	// TrueT and TrueA are the hidden ground truth: TrueT.At(i, j) is the
	// normalized true time of pool task j on fleet cluster i, TrueA the
	// true reliability. Only the evaluator may read these.
	TrueT *mat.Dense
	TrueA *mat.Dense
	// MeasT and MeasA are the platform's noisy profiling observations with
	// the same layout; predictors train on these.
	MeasT *mat.Dense
	MeasA *mat.Dense

	root *rng.Source
}

// New builds a Scenario from the config. Construction is deterministic in
// cfg.Seed.
func New(cfg Config) (*Scenario, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fleet, err := cluster.Fleet(cfg.Setting)
	if err != nil {
		return nil, err
	}
	if cfg.NoiseScale > 0 && cfg.NoiseScale != 1 {
		for _, p := range fleet {
			p.NoiseSigma *= cfg.NoiseScale
		}
	}
	root := rng.New(cfg.Seed)
	s := &Scenario{Fleet: fleet, root: root}
	if cfg.StatsEmbedder {
		s.Embedder = embed.NewStats(cfg.FeatureDim)
	} else {
		s.Embedder = embed.New(cfg.FeatureDim, root.Split("embedder").Uint64())
	}
	s.Pool = taskgraph.GenerateMix(cfg.PoolSize, cfg.FamilyWeights, root.Split("pool"))
	s.Features = s.Embedder.EmbedAll(s.Pool)

	m, n := len(fleet), len(s.Pool)
	s.TrueT = mat.NewDense(m, n)
	s.TrueA = mat.NewDense(m, n)
	s.MeasT = mat.NewDense(m, n)
	s.MeasA = mat.NewDense(m, n)
	measRng := root.Split("measure")
	total := 0.0
	for i, p := range fleet {
		cr := measRng.SplitIndexed("cluster", i)
		for j, task := range s.Pool {
			tt := p.TrueTime(task)
			s.TrueT.Set(i, j, tt)
			s.TrueA.Set(i, j, p.TrueReliability(task))
			mt, ma := p.Measure(task, cfg.MeasureTrials, cr)
			s.MeasT.Set(i, j, mt)
			s.MeasA.Set(i, j, ma)
			total += tt
		}
	}
	s.TimeScale = total / float64(m*n)
	if s.TimeScale <= 0 {
		return nil, fmt.Errorf("workload: degenerate time scale %v", s.TimeScale)
	}
	s.TrueT.Scale(1 / s.TimeScale)
	s.MeasT.Scale(1 / s.TimeScale)
	return s, nil
}

// MustNew is New but panics on error; for tests and examples.
func MustNew(cfg Config) *Scenario {
	s, err := New(cfg)
	if err != nil {
		// invariant: Must helpers serve literal configs in tests and examples.
		panic(err)
	}
	return s
}

// M returns the cluster count: the fleet size for simulated scenarios, the
// measurement-matrix height for external (FromData/LoadCSV) ones.
func (s *Scenario) M() int {
	if len(s.Fleet) > 0 {
		return len(s.Fleet)
	}
	if s.MeasT != nil {
		return s.MeasT.Rows
	}
	return 0
}

// PoolLen returns the task count: the pool size for simulated scenarios,
// the feature-matrix height for external ones.
func (s *Scenario) PoolLen() int {
	if len(s.Pool) > 0 {
		return len(s.Pool)
	}
	if s.Features != nil {
		return s.Features.Rows
	}
	return 0
}

// Split partitions the pool into train and test index sets. frac is the
// training fraction; the shuffle is drawn from the scenario's "split"
// stream so it is reproducible.
func (s *Scenario) Split(frac float64) (train, test []int) {
	train, test, err := s.SplitChecked(frac)
	if err != nil {
		// invariant: internal callers pass validated fractions; external
		// fractions go through SplitChecked.
		panic(err)
	}
	return train, test
}

// SplitChecked is Split for externally supplied fractions: anything outside
// (0,1) returns an mfcperr.ErrBadConfig-wrapped error instead of panicking.
func (s *Scenario) SplitChecked(frac float64) (train, test []int, err error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, mfcperr.Wrap(mfcperr.ErrBadConfig, "workload: split fraction %g outside (0,1)", frac)
	}
	perm := s.root.Split("split").Perm(s.PoolLen())
	cut := int(frac * float64(len(perm)))
	if cut < 1 {
		cut = 1
	}
	if cut >= len(perm) {
		cut = len(perm) - 1
	}
	return perm[:cut], perm[cut:], nil
}

// SampleRound draws n pool indices (with replacement across rounds, without
// within a round) from the given index set, simulating one allocation
// round's incoming task batch. r may be any stream; experiments use
// per-replicate streams.
func (s *Scenario) SampleRound(from []int, n int, r *rng.Source) []int {
	if n > len(from) {
		// invariant: trainers and the serving engine validate round size
		// against the candidate set before sampling (ErrInfeasible at the
		// boundary), so an oversized round here is an internal bug.
		panic(fmt.Sprintf("workload: round of %d from %d candidates", n, len(from)))
	}
	perm := r.Perm(len(from))
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = from[perm[i]]
	}
	return out
}

// FeaturesOf gathers the feature rows of the given pool indices into an
// len(idx)×FeatureDim matrix.
func (s *Scenario) FeaturesOf(idx []int) *mat.Dense {
	out := mat.NewDense(len(idx), s.Features.Cols)
	for k, j := range idx {
		copy(out.Row(k), s.Features.Row(j))
	}
	return out
}

// FeaturesInto is FeaturesOf with a caller-owned destination (reshaped in
// place and returned), so per-round serving shards gather features without
// allocating. dst must not alias s.Features.
func (s *Scenario) FeaturesInto(idx []int, dst *mat.Dense) *mat.Dense {
	dst.Reshape(len(idx), s.Features.Cols)
	for k, j := range idx {
		copy(dst.Row(k), s.Features.Row(j))
	}
	return dst
}

// gather copies columns idx of src (M × pool) into an M × len(idx) matrix.
func (s *Scenario) gather(src *mat.Dense, idx []int) *mat.Dense {
	out := mat.NewDense(src.Rows, len(idx))
	for i := 0; i < src.Rows; i++ {
		row := src.Row(i)
		orow := out.Row(i)
		for k, j := range idx {
			orow[k] = row[j]
		}
	}
	return out
}

// TrueMatrices returns the ground-truth (T, A) for the given pool indices,
// shaped M × len(idx) as the matcher expects.
func (s *Scenario) TrueMatrices(idx []int) (T, A *mat.Dense) {
	return s.gather(s.TrueT, idx), s.gather(s.TrueA, idx)
}

// TrueMatricesInto is TrueMatrices into caller-owned destinations (reshaped
// in place). Serving shards reuse the same two matrices every round; the
// copies are theirs to mutate (e.g. drift application) without touching the
// scenario's ground truth.
func (s *Scenario) TrueMatricesInto(idx []int, T, A *mat.Dense) {
	s.gatherInto(s.TrueT, idx, T)
	s.gatherInto(s.TrueA, idx, A)
}

// gatherInto copies columns idx of src (M × pool) into dst, reshaped to
// M × len(idx).
func (s *Scenario) gatherInto(src *mat.Dense, idx []int, dst *mat.Dense) {
	dst.Reshape(src.Rows, len(idx))
	for i := 0; i < src.Rows; i++ {
		row := src.Row(i)
		orow := dst.Row(i)
		for k, j := range idx {
			orow[k] = row[j]
		}
	}
}

// MeasuredMatrices returns the noisy profiling observations (T, A) for the
// given pool indices, shaped M × len(idx).
func (s *Scenario) MeasuredMatrices(idx []int) (T, A *mat.Dense) {
	return s.gather(s.MeasT, idx), s.gather(s.MeasA, idx)
}

// LabelVectors returns cluster i's measured labels over the given pool
// indices: times (normalized) and reliabilities, as prediction targets.
func (s *Scenario) LabelVectors(i int, idx []int) (t, a mat.Vec) {
	t = mat.NewVec(len(idx))
	a = mat.NewVec(len(idx))
	for k, j := range idx {
		t[k] = s.MeasT.At(i, j)
		a[k] = s.MeasA.At(i, j)
	}
	return t, a
}

// Stream derives a named random stream from the scenario seed, for
// components (trainers, evaluators) that need reproducible randomness.
func (s *Scenario) Stream(name string) *rng.Source { return s.root.Split(name) }
