package workload

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mfcp/internal/mat"
)

func tinyData() (*mat.Dense, *mat.Dense, *mat.Dense) {
	features := mat.FromRows([][]float64{
		{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}, {0.7, 0.8},
	})
	measT := mat.FromRows([][]float64{
		{10, 20, 30, 40},
		{40, 30, 20, 10},
	})
	measA := mat.FromRows([][]float64{
		{0.9, 0.8, 0.95, 0.85},
		{0.7, 0.99, 0.88, 0.92},
	})
	return features, measT, measA
}

func TestFromDataNormalizes(t *testing.T) {
	features, measT, measA := tinyData()
	s, err := FromData(features, measT, measA, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != 2 {
		t.Fatalf("M=%d", s.M())
	}
	if math.Abs(s.TimeScale-25) > 1e-12 {
		t.Fatalf("TimeScale=%v want 25", s.TimeScale)
	}
	// Normalized times mean 1; truth == measurements for external data.
	sum := 0.0
	for _, v := range s.MeasT.Data {
		sum += v
	}
	if math.Abs(sum/8-1) > 1e-12 {
		t.Fatalf("normalized mean %v", sum/8)
	}
	if !s.TrueT.Equal(s.MeasT, 0) || !s.TrueA.Equal(s.MeasA, 0) {
		t.Fatal("external truth must equal measurements")
	}
	// Inputs must not be aliased: mutating the scenario leaves them intact.
	s.MeasT.Set(0, 0, 999)
	if measT.At(0, 0) != 10 {
		t.Fatal("FromData aliased its input")
	}
}

func TestFromDataValidates(t *testing.T) {
	features, measT, measA := tinyData()
	if _, err := FromData(features, measT, mat.NewDense(3, 4).Fill(0.5), 1); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := FromData(mat.NewDense(3, 2), measT, measA, 1); err == nil {
		t.Fatal("feature-count mismatch accepted")
	}
	bad := measT.Clone()
	bad.Set(0, 0, -1)
	if _, err := FromData(features, bad, measA, 1); err == nil {
		t.Fatal("negative time accepted")
	}
	badA := measA.Clone()
	badA.Set(0, 0, 1.5)
	if _, err := FromData(features, measT, badA, 1); err == nil {
		t.Fatal("reliability > 1 accepted")
	}
}

func TestFromDataSupportsTrainingFlow(t *testing.T) {
	features, measT, measA := tinyData()
	s, err := FromData(features, measT, measA, 7)
	if err != nil {
		t.Fatal(err)
	}
	train, test := s.Split(0.5)
	if len(train)+len(test) != 4 {
		t.Fatal("split broken on external data")
	}
	X := s.FeaturesOf(train)
	if X.Cols != 2 {
		t.Fatal("features misread")
	}
	tv, av := s.LabelVectors(1, train)
	if len(tv) != len(train) || len(av) != len(train) {
		t.Fatal("labels misread")
	}
}

func TestLoadCSVRoundTrip(t *testing.T) {
	// Write a dataset in datagen's format and load it back.
	dir := t.TempDir()
	featuresCSV := "task,f0,f1\n0,0.1,0.2\n1,0.3,0.4\n2,0.5,0.6\n"
	perfCSV := "cluster,cluster_name,task,true_time_norm,meas_time_norm,true_reliability,meas_reliability\n" +
		"0,alpha,0,1.0,1.1,0.9,0.88\n0,alpha,1,2.0,2.2,0.9,0.91\n0,alpha,2,3.0,2.9,0.9,0.90\n" +
		"1,beta,0,3.0,3.1,0.8,0.79\n1,beta,1,2.0,1.9,0.8,0.81\n1,beta,2,1.0,1.2,0.8,0.80\n"
	if err := os.WriteFile(filepath.Join(dir, "features.csv"), []byte(featuresCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "performance.csv"), []byte(perfCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadCSV(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != 2 || s.PoolLen() != 3 || s.Features.Rows != 3 {
		t.Fatalf("loaded shapes: M=%d features=%d", s.M(), s.Features.Rows)
	}
	// Normalization preserves ratios: cluster 0 task 1 has twice the time
	// of task 0.
	if math.Abs(s.MeasT.At(0, 1)/s.MeasT.At(0, 0)-2) > 1e-9 {
		t.Fatalf("ratio lost: %v vs %v", s.MeasT.At(0, 1), s.MeasT.At(0, 0))
	}
	if s.MeasA.At(1, 2) != 0.80 {
		t.Fatalf("reliability misloaded: %v", s.MeasA.At(1, 2))
	}
}

func TestLoadCSVErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCSV(dir, 1); err == nil {
		t.Fatal("missing files accepted")
	}
	os.WriteFile(filepath.Join(dir, "features.csv"), []byte("task,f0\n0,0.5\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "performance.csv"), []byte("cluster,task\n0,0\n"), 0o644)
	if _, err := LoadCSV(dir, 1); err == nil {
		t.Fatal("missing columns accepted")
	}
	// Missing (cluster, task) cell.
	os.WriteFile(filepath.Join(dir, "performance.csv"),
		[]byte("cluster,cluster_name,task,true_time_norm,meas_time_norm,true_reliability,meas_reliability\n0,a,0,1,1,0.9,0.9\n1,b,0,1,1,0.9,0.9\n0,a,1,1,1,0.9,0.9\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "features.csv"), []byte("task,f0\n0,0.5\n1,0.6\n"), 0o644)
	if _, err := LoadCSV(dir, 1); err == nil {
		t.Fatal("incomplete matrix accepted")
	}
}

func TestDatagenLoadCSVEndToEnd(t *testing.T) {
	// Build a simulated scenario, export it exactly as cmd/datagen does,
	// re-load it as external data, and check the measured matrices agree.
	src := MustNew(Config{PoolSize: 12, FeatureDim: 6, Seed: 31})
	dir := t.TempDir()
	var fb, pb []byte
	{
		var b []byte
		b = append(b, []byte("task")...)
		for d := 0; d < src.Features.Cols; d++ {
			b = append(b, []byte(fmt.Sprintf(",f%d", d))...)
		}
		b = append(b, '\n')
		for j := 0; j < src.Features.Rows; j++ {
			b = append(b, []byte(fmt.Sprintf("%d", j))...)
			for _, v := range src.Features.Row(j) {
				b = append(b, []byte(fmt.Sprintf(",%.6f", v))...)
			}
			b = append(b, '\n')
		}
		fb = b
	}
	{
		b := []byte("cluster,cluster_name,task,true_time_norm,meas_time_norm,true_reliability,meas_reliability\n")
		for i, p := range src.Fleet {
			for j := 0; j < src.PoolLen(); j++ {
				b = append(b, []byte(fmt.Sprintf("%d,%s,%d,%.6f,%.6f,%.4f,%.4f\n",
					i, p.Name, j, src.TrueT.At(i, j), src.MeasT.At(i, j), src.TrueA.At(i, j), src.MeasA.At(i, j)))...)
			}
		}
		pb = b
	}
	os.WriteFile(filepath.Join(dir, "features.csv"), fb, 0o644)
	os.WriteFile(filepath.Join(dir, "performance.csv"), pb, 0o644)
	loaded, err := LoadCSV(dir, 31)
	if err != nil {
		t.Fatal(err)
	}
	// The loader renormalizes, so compare shape and ratio structure.
	if loaded.M() != src.M() || loaded.Features.Rows != src.PoolLen() {
		t.Fatal("round-trip shapes differ")
	}
	// %.6f truncation bounds the achievable precision; compare ratios with
	// a relative tolerance.
	r0 := src.MeasT.At(0, 1) / src.MeasT.At(0, 0)
	r1 := loaded.MeasT.At(0, 1) / loaded.MeasT.At(0, 0)
	if math.Abs(r0-r1) > 1e-2*math.Abs(r0) {
		t.Fatalf("time ratios differ after round trip: %v vs %v", r0, r1)
	}
}
