// Package core implements the paper's contribution: MFCP, the
// Matching-Focused Cluster Performance Predictor (§3).
//
// A PredictorSet holds, per cluster, an execution-time network m_ω and a
// reliability network m_φ over frozen task features. The Trainer first
// warm-starts them with conventional MSE fitting (the two-stage baseline's
// entire training), then performs the end-to-end regret-descent phase of
// Fig. 3: forward through prediction and relaxed matching, regret loss
// against the measured ground truth, and backward through the matching
// argmin by either analytical KKT differentiation (MFCP-AD, §3.3) or the
// zeroth-order forward-gradient method of Algorithm 2 (MFCP-FG, §3.4).
package core

import (
	"mfcp/internal/mat"
	"mfcp/internal/nn"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
)

// Predictor couples one cluster's two performance networks.
type Predictor struct {
	// Time predicts normalized execution time; softplus head keeps it
	// positive.
	Time *nn.MLP
	// Rel predicts completion probability; sigmoid head bounds it to (0,1).
	Rel *nn.MLP
}

// PredictorSet holds cluster-specific predictors for a fleet of M clusters,
// as the paper prescribes (m_ω_i, m_φ_i per cluster i).
type PredictorSet struct {
	Preds []*Predictor
}

// NewPredictorSet builds M predictors over inDim-dimensional features with
// the given hidden layer widths; initialization streams derive from r.
func NewPredictorSet(m, inDim int, hidden []int, r *rng.Source) *PredictorSet {
	dims := append([]int{inDim}, hidden...)
	dims = append(dims, 1)
	set := &PredictorSet{Preds: make([]*Predictor, m)}
	for i := 0; i < m; i++ {
		cr := r.SplitIndexed("cluster", i)
		set.Preds[i] = &Predictor{
			Time: nn.NewMLP(dims, nn.ReLU, nn.Softplus, cr.Split("time")),
			Rel:  nn.NewMLP(dims, nn.ReLU, nn.Sigmoid, cr.Split("rel")),
		}
	}
	return set
}

// M returns the number of clusters covered.
func (ps *PredictorSet) M() int { return len(ps.Preds) }

// Predict maps task features Z (N × d) to predicted matrices T̂, Â
// (each M × N).
func (ps *PredictorSet) Predict(Z *mat.Dense) (That, Ahat *mat.Dense) {
	m, n := ps.M(), Z.Rows
	That = mat.NewDense(m, n)
	Ahat = mat.NewDense(m, n)
	parallel.ForChunked(m, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tOut := ps.Preds[i].Time.PredictBatch(Z, nil)
			aOut := ps.Preds[i].Rel.PredictBatch(Z, nil)
			for j := 0; j < n; j++ {
				That.Set(i, j, tOut.At(j, 0))
				Ahat.Set(i, j, aOut.At(j, 0))
			}
		}
	})
	return That, Ahat
}

// tapes holds per-cluster forward tapes for one round, ready for backprop.
// A tapes value is a reusable workspace: ensure sizes it once and forward
// recycles the per-cluster nn.Tape buffers across epochs.
type tapes struct {
	time []*nn.Tape
	rel  []*nn.Tape
}

// ensure allocates the per-cluster tape slots on first use.
func (tp *tapes) ensure(m int) {
	if len(tp.time) == m {
		return
	}
	tp.time = make([]*nn.Tape, m)
	tp.rel = make([]*nn.Tape, m)
	for i := 0; i < m; i++ {
		tp.time[i] = nn.NewTape()
		tp.rel[i] = nn.NewTape()
	}
}

// forward runs all predictors over Z, recording intermediates on tp's tapes
// and assembling T̂, Â into That/Ahat (both reshaped in place, so a caller
// that keeps the workspace pays no steady-state allocations).
func (ps *PredictorSet) forward(Z *mat.Dense, tp *tapes, That, Ahat *mat.Dense) {
	m, n := ps.M(), Z.Rows
	tp.ensure(m)
	That.Reshape(m, n)
	Ahat.Reshape(m, n)
	parallel.ForChunked(m, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ps.Preds[i].Time.ForwardTape(Z, tp.time[i])
			ps.Preds[i].Rel.ForwardTape(Z, tp.rel[i])
			tOut := tp.time[i].Out()
			aOut := tp.rel[i].Out()
			for j := 0; j < n; j++ {
				That.Set(i, j, tOut.At(j, 0))
				Ahat.Set(i, j, aOut.At(j, 0))
			}
		}
	})
}

// Clone deep-copies the set (used to snapshot the pretrained state).
func (ps *PredictorSet) Clone() *PredictorSet {
	out := &PredictorSet{Preds: make([]*Predictor, len(ps.Preds))}
	for i, p := range ps.Preds {
		out.Preds[i] = &Predictor{Time: p.Time.Clone(), Rel: p.Rel.Clone()}
	}
	return out
}

// Snapshot deep-copies the set into the provided target, reusing its weight
// buffers, and returns it; a nil target allocates a fresh clone. This is
// the cheap serving-side snapshot primitive: the platform engine keeps a
// spare set per refit slot and snapshots into it instead of cloning 2M
// networks every time. The target must have been built with the same
// architecture (any prior Clone/Snapshot of this set qualifies).
func (ps *PredictorSet) Snapshot(into *PredictorSet) *PredictorSet {
	if into == nil {
		return ps.Clone()
	}
	if len(into.Preds) != len(ps.Preds) {
		// invariant: snapshot targets are prior Clones of this set.
		panic("core: Snapshot into a set of different fleet size")
	}
	for i, p := range ps.Preds {
		into.Preds[i].Time.CopyFrom(p.Time)
		into.Preds[i].Rel.CopyFrom(p.Rel)
	}
	return into
}

// PredictWorkspace owns the per-goroutine forward state for PredictInto:
// one tape per (cluster, head) network, plus the pre-bound chunk closure
// and its in-flight arguments. Hoisting the closure here is what makes the
// hot forward allocation-free — a closure literal at the ForChunked call
// site would escape and cost one heap object every round. Distinct
// workspaces make concurrent predictions over one shared (immutable)
// PredictorSet safe; the platform's round shards each hold one.
type PredictWorkspace struct {
	tp tapes

	// Chunk-body arguments, valid only inside a PredictInto call; runf is
	// the method value bound on first use (binding per call would allocate).
	ps         *PredictorSet
	z          *mat.Dense
	that, ahat *mat.Dense
	runf       func(lo, hi int)
}

// run is the ForChunked body of PredictInto: forward both heads of
// clusters [lo, hi) over the in-flight batch and scatter the outputs.
func (w *PredictWorkspace) run(lo, hi int) {
	ps, Z, That, Ahat := w.ps, w.z, w.that, w.ahat
	n := Z.Rows
	for i := lo; i < hi; i++ {
		ps.Preds[i].Time.ForwardTape(Z, w.tp.time[i])
		ps.Preds[i].Rel.ForwardTape(Z, w.tp.rel[i])
		tOut := w.tp.time[i].Out()
		aOut := w.tp.rel[i].Out()
		for j := 0; j < n; j++ {
			That.Set(i, j, tOut.At(j, 0))
			Ahat.Set(i, j, aOut.At(j, 0))
		}
	}
}

// PredictInto is Predict with caller-owned scratch: it runs every
// predictor over Z through w's tapes and assembles T̂, Â into That/Ahat
// (reshaped in place). After the workspace has warmed to the batch shape
// the call performs no steady-state allocations. Safe concurrently with
// other PredictInto/Predict calls on the same set as long as each caller
// owns its workspace and destination matrices and nobody is training the
// set (serving always predicts on a published snapshot, never the training
// copy).
func (ps *PredictorSet) PredictInto(Z *mat.Dense, w *PredictWorkspace, That, Ahat *mat.Dense) {
	m, n := ps.M(), Z.Rows
	w.tp.ensure(m)
	That.Reshape(m, n)
	Ahat.Reshape(m, n)
	if w.runf == nil {
		w.runf = w.run
	}
	w.ps, w.z, w.that, w.ahat = ps, Z, That, Ahat
	parallel.ForChunked(m, 1, w.runf)
	w.ps, w.z, w.that, w.ahat = nil, nil, nil, nil
}
