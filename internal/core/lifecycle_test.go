package core

import (
	"context"
	"errors"
	"testing"

	"mfcp/internal/diffopt"
	"mfcp/internal/mfcperr"
)

func TestTrainCtxBackgroundMatchesTrain(t *testing.T) {
	cfg := Config{Kind: AD, PretrainEpochs: 40, Epochs: 6, RoundSize: 4}
	s := testScenario(31)
	train, _ := s.Split(0.75)
	want := Train(s, train, cfg)
	got, err := TrainCtx(context.Background(), s, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stopped != "" {
		t.Fatalf("uncanceled run stopped in %q", got.Stopped)
	}
	for i := range want.History {
		if want.History[i] != got.History[i] {
			t.Fatalf("history diverged at epoch %d", i)
		}
	}
}

func TestTrainCtxCanceledDuringPretrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := testScenario(32)
	train, _ := s.Split(0.75)
	tr, err := TrainCtx(ctx, s, train, Config{Kind: AD, PretrainEpochs: 40, Epochs: 4, RoundSize: 4})
	if !errors.Is(err, mfcperr.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if tr == nil || tr.Set == nil {
		t.Fatal("canceled train returned no partial trainer")
	}
	if tr.Stopped != "pretrain" {
		t.Fatalf("stopped phase %q", tr.Stopped)
	}
	// The partial trainer must still predict (initialized networks).
	T, A := tr.Predict([]int{0, 1, 2})
	if T.Rows != s.M() || A.Cols != 3 {
		t.Fatal("partial trainer cannot predict")
	}
}

func TestTrainCtxCanceledDuringRegret(t *testing.T) {
	// A warm start skips the pretrain phase, so a pre-canceled context lands
	// deterministically on the first regret epoch's boundary check.
	s := testScenario(33)
	train, _ := s.Split(0.75)
	warm := NewPredictorSet(s.M(), s.Features.Cols, []int{8}, s.Stream("warm"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr, err := TrainCtx(ctx, s, train, Config{Kind: AD, Epochs: 10, RoundSize: 4, Warm: warm})
	if !errors.Is(err, mfcperr.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if tr.Stopped != "regret" {
		t.Fatalf("stopped phase %q", tr.Stopped)
	}
	if len(tr.History) != 0 {
		t.Fatalf("canceled before any epoch but history has %d entries", len(tr.History))
	}
	if tr.Set == nil {
		t.Fatal("no partial weights")
	}
}

func TestTrainCtxValidatesConfig(t *testing.T) {
	s := testScenario(34)
	train, _ := s.Split(0.75)
	bad := []Config{
		{Kind: AD, Hidden: []int{0}},
		{Kind: AD, Epochs: -1},
		{Kind: AD, PretrainEpochs: -1},
		{Kind: AD, LR: -0.1},
		{Kind: AD, GradClip: -1},
		{Kind: AD, Match: MatchConfig{Gamma: 2}},
		{Kind: AD, Match: MatchConfig{Beta: -3}},
		{Kind: FG, ZO: diffopt.ZeroOrderConfig{Delta: -1}},
		{Kind: FG, ZO: diffopt.ZeroOrderConfig{Samples: -2}},
	}
	for i, cfg := range bad {
		if _, err := TrainCtx(context.Background(), s, train, cfg); !errors.Is(err, mfcperr.ErrBadConfig) {
			t.Fatalf("config %d accepted: %v", i, err)
		}
	}
}

func TestTrainCtxInfeasibleRound(t *testing.T) {
	s := testScenario(35)
	if _, err := TrainCtx(context.Background(), s, []int{0, 1}, Config{Kind: AD, RoundSize: 5}); !errors.Is(err, mfcperr.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestPretrainMSECtxCanceled(t *testing.T) {
	s := testScenario(36)
	train, _ := s.Split(0.75)
	set := NewPredictorSet(s.M(), s.Features.Cols, []int{8}, s.Stream("init"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := PretrainMSECtx(ctx, set, s, train, 50, s.Stream("pre"))
	if !errors.Is(err, mfcperr.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}
