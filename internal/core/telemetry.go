package core

import "mfcp/internal/obs"

// trainerMetrics are the training-loop instruments, pre-bound at the start
// of Train so the per-epoch recording cost is a handful of atomic ops. With
// no registry configured every field is nil and recording is a no-op (the
// obs package's nil-instrument contract), so the training loop carries the
// instrumentation unconditionally.
type trainerMetrics struct {
	pretrain *obs.Timer
	epoch    *obs.Timer

	epochs      *obs.Counter
	skipped     *obs.Counter
	trainRegret *obs.Gauge
	valRegret   *obs.Gauge
}

func newTrainerMetrics(reg *obs.Registry) trainerMetrics {
	tr := obs.NewTracer(reg, "mfcp_train")
	return trainerMetrics{
		pretrain: tr.Phase("pretrain"),
		epoch:    tr.Phase("epoch"),
		epochs: reg.Counter("mfcp_train_epochs_total",
			"end-to-end regret-descent epochs completed"),
		skipped: reg.Counter("mfcp_train_skipped_epochs_total",
			"epochs skipped because the matching gradient was unavailable"),
		trainRegret: reg.Gauge("mfcp_train_regret",
			"discrete training regret of the most recent epoch's round"),
		valRegret: reg.Gauge("mfcp_train_val_regret",
			"best held-out validation regret seen so far"),
	}
}
