package core

import (
	"sync"
	"testing"

	"mfcp/internal/mat"
	"mfcp/internal/rng"
)

func TestSnapshotIndependence(t *testing.T) {
	r := rng.New(11)
	set := NewPredictorSet(3, 12, []int{8}, r)
	s := testScenario(12)
	Z := s.FeaturesOf([]int{0, 1, 2, 3})

	snap := set.Snapshot(nil)
	t1, a1 := set.Predict(Z)
	t2, a2 := snap.Predict(Z)
	if !t1.Equal(t2, 0) || !a1.Equal(a2, 0) {
		t.Fatal("snapshot predicts differently from its source")
	}

	// Mutate the source as a refit would; the snapshot must be unaffected.
	for _, p := range set.Preds {
		p.Time.W[0].Scale(2)
		p.Rel.B[0][0] += 1
	}
	t3, _ := snap.Predict(Z)
	if !t2.Equal(t3, 0) {
		t.Fatal("mutating the source changed the snapshot")
	}

	// Snapshot into a reused target re-syncs it with zero fresh networks.
	set.Snapshot(snap)
	t4, _ := snap.Predict(Z)
	t5, _ := set.Predict(Z)
	if !t4.Equal(t5, 0) {
		t.Fatal("Snapshot(into) did not re-sync the target")
	}
}

func TestSnapshotIntoRejectsMismatch(t *testing.T) {
	r := rng.New(13)
	set := NewPredictorSet(3, 12, []int{8}, r.Split("a"))
	other := NewPredictorSet(2, 12, []int{8}, r.Split("b"))
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot accepted a target with a different fleet size")
		}
	}()
	set.Snapshot(other)
}

func TestPredictIntoMatchesPredictConcurrently(t *testing.T) {
	r := rng.New(14)
	set := NewPredictorSet(3, 12, []int{8}, r)
	s := testScenario(15)
	Z := s.FeaturesOf([]int{2, 4, 6, 8, 10})
	wantT, wantA := set.Predict(Z)

	// Many goroutines predicting over one shared immutable set, each with
	// its own workspace, must all reproduce Predict bit-for-bit (this is
	// the serving engine's shard access pattern; run under -race it also
	// proves the sharing is sound).
	const shards = 8
	var wg sync.WaitGroup
	errs := make(chan string, shards)
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pw PredictWorkspace
			That, Ahat := new(mat.Dense), new(mat.Dense)
			for rep := 0; rep < 20; rep++ {
				set.PredictInto(Z, &pw, That, Ahat)
				if !That.Equal(wantT, 0) || !Ahat.Equal(wantA, 0) {
					errs <- "PredictInto diverged from Predict"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
