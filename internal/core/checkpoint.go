package core

import (
	"hash/crc32"
	"os"
	"path/filepath"

	"mfcp/internal/binenc"
	"mfcp/internal/mfcperr"
	"mfcp/internal/nn"
)

// Checkpoint file layout (DESIGN.md §7):
//
//	magic "MFCPCKPT" | u8 version | u32 crc32(payload) | u64 len(payload) | payload
//
// The payload is a binenc record: round/refit counters, the config
// fingerprint, named RNG stream states, named float gauges, the published
// predictor (a tag byte selects none / the legacy PredictorSet slot / a
// named pluggable backend), and an owner-defined Extra blob (the platform
// layer stores its replay buffer and report accumulators there). Everything
// is little-endian and length-prefixed, so a truncated or bit-flipped file
// surfaces as mfcperr.ErrCorruptCheckpoint at load, never as a bad resume.
//
// Version history: v1 framed the predictor as a hasSet byte (0/1) followed
// by an optional PredictorSet. v2 reinterprets that byte as a tag and adds
// tag 2 — a registry name string followed by the backend's AppendBackend
// encoding — so non-MLP backends checkpoint without touching the legacy
// layout. Tags 0 and 1 are wire-identical to v1, so the decoder accepts
// both versions and old files resume unchanged.
const (
	checkpointMagic      = "MFCPCKPT"
	checkpointVersion    = 2
	checkpointMinVersion = 1
)

// Predictor slot tags (the byte that was hasSet in checkpoint v1).
const (
	ckptPredNone    = 0 // no predictor state
	ckptPredSet     = 1 // legacy PredictorSet (the MLP reference backend)
	ckptPredBackend = 2 // registry name + Backend.AppendBackend payload
)

// maxCheckpointEntries bounds the named-collection counts a decoder will
// accept; past it the length field is corruption, not data.
const maxCheckpointEntries = 1 << 16

// StreamState is one named RNG stream's xoshiro256** state.
type StreamState struct {
	Name  string
	State [4]uint64
}

// GaugeState is one named float gauge (EWMA telemetry, drift trackers, ...)
// carried across a resume so monitoring curves stay continuous.
type GaugeState struct {
	Name  string
	Value float64
}

// Checkpoint is a resumable snapshot of a run: where it was (Round, Refits),
// what it was configured as (ConfigHash, checked on resume), the exact RNG
// positions and predictor weights needed to continue bit-identically, and an
// owner-defined Extra payload.
type Checkpoint struct {
	// Round is the next round index to serve (online) or 0 for a pure
	// training checkpoint.
	Round int
	// Refits counts completed predictor refits at checkpoint time.
	Refits int
	// ConfigHash fingerprints the generating configuration; LoadCheckpoint
	// callers compare it against their own config's hash before resuming.
	ConfigHash uint64
	// Streams holds the live RNG stream states by name.
	Streams []StreamState
	// Gauges holds named float state (EWMA telemetry etc.) by name.
	Gauges []GaugeState
	// Set is the published predictor set (nil for methods without one). The
	// MLP reference backend checkpoints here — the v1 wire slot — so files
	// written before backends existed resume bit-identically.
	Set *PredictorSet
	// Backend is the published predictor for non-MLP backend families (nil
	// otherwise). At most one of Set and Backend is non-nil; encoding
	// prefers Set when both are.
	Backend Backend
	// Extra is an owner-defined binary payload (the platform engine stores
	// its replay buffer, report accumulators, and window state here).
	Extra []byte
}

// Stream returns the named stream state, if present.
func (c *Checkpoint) Stream(name string) ([4]uint64, bool) {
	for _, s := range c.Streams {
		if s.Name == name {
			return s.State, true
		}
	}
	return [4]uint64{}, false
}

// Gauge returns the named gauge value, if present.
func (c *Checkpoint) Gauge(name string) (float64, bool) {
	for _, g := range c.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Validate checks the set fits a scenario with m clusters and
// inDim-dimensional features; checkpoint resume calls it before serving
// restored weights against a freshly built scenario.
func (ps *PredictorSet) Validate(m, inDim int) error {
	if len(ps.Preds) != m {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "core: predictor set covers %d clusters, scenario has %d", len(ps.Preds), m)
	}
	for i, p := range ps.Preds {
		if p == nil || p.Time == nil || p.Rel == nil {
			return mfcperr.Wrap(mfcperr.ErrBadShape, "core: predictor %d is incomplete", i)
		}
		if p.Time.Dims[0] != inDim || p.Rel.Dims[0] != inDim {
			return mfcperr.Wrap(mfcperr.ErrBadShape, "core: predictor %d expects %d/%d-dim features, scenario has %d", i, p.Time.Dims[0], p.Rel.Dims[0], inDim)
		}
	}
	return nil
}

// AppendBinary appends the set's binary encoding to buf: the cluster count,
// then each predictor's Time and Rel networks via the nn codec.
func (ps *PredictorSet) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendU32(buf, uint32(len(ps.Preds)))
	for _, p := range ps.Preds {
		buf = p.Time.AppendBinary(buf)
		buf = p.Rel.AppendBinary(buf)
	}
	return buf
}

// ReadPredictorSet decodes a PredictorSet written by AppendBinary. The
// decoded set predicts bit-identically to the encoded one.
func ReadPredictorSet(r *binenc.Reader) (*PredictorSet, error) {
	m := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if m < 0 || m > maxCheckpointEntries {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: predictor set with %d clusters", m)
	}
	set := &PredictorSet{Preds: make([]*Predictor, m)}
	for i := 0; i < m; i++ {
		tm, err := nn.ReadMLP(r)
		if err != nil {
			return nil, err
		}
		rel, err := nn.ReadMLP(r)
		if err != nil {
			return nil, err
		}
		set.Preds[i] = &Predictor{Time: tm, Rel: rel}
	}
	return set, nil
}

// EncodeCheckpoint serializes c into the framed file format described above.
func EncodeCheckpoint(c *Checkpoint) []byte {
	var p []byte
	p = binenc.AppendI64(p, int64(c.Round))
	p = binenc.AppendI64(p, int64(c.Refits))
	p = binenc.AppendU64(p, c.ConfigHash)
	p = binenc.AppendU32(p, uint32(len(c.Streams)))
	for _, s := range c.Streams {
		p = binenc.AppendString(p, s.Name)
		for _, w := range s.State {
			p = binenc.AppendU64(p, w)
		}
	}
	p = binenc.AppendU32(p, uint32(len(c.Gauges)))
	for _, g := range c.Gauges {
		p = binenc.AppendString(p, g.Name)
		p = binenc.AppendF64(p, g.Value)
	}
	switch {
	case c.Set != nil:
		p = binenc.AppendU8(p, ckptPredSet)
		p = c.Set.AppendBinary(p)
	case c.Backend != nil:
		p = binenc.AppendU8(p, ckptPredBackend)
		p = binenc.AppendString(p, c.Backend.BackendName())
		p = c.Backend.AppendBackend(p)
	default:
		p = binenc.AppendU8(p, ckptPredNone)
	}
	p = binenc.AppendBytes(p, c.Extra)

	buf := make([]byte, 0, len(checkpointMagic)+1+4+8+len(p))
	buf = append(buf, checkpointMagic...)
	buf = binenc.AppendU8(buf, checkpointVersion)
	buf = binenc.AppendU32(buf, crc32.ChecksumIEEE(p))
	buf = binenc.AppendU64(buf, uint64(len(p)))
	return append(buf, p...)
}

// DecodeCheckpoint parses a framed checkpoint, validating magic, version,
// length, and CRC before touching the payload. Any violation returns an
// mfcperr.ErrCorruptCheckpoint-wrapped error.
func DecodeCheckpoint(buf []byte) (*Checkpoint, error) {
	head := len(checkpointMagic) + 1 + 4 + 8
	if len(buf) < head {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: checkpoint shorter than header (%d bytes)", len(buf))
	}
	if string(buf[:len(checkpointMagic)]) != checkpointMagic {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: bad checkpoint magic %q", buf[:len(checkpointMagic)])
	}
	hr := binenc.NewReader(buf[len(checkpointMagic):])
	ver := hr.U8()
	sum := hr.U32()
	plen := hr.U64()
	if ver < checkpointMinVersion || ver > checkpointVersion {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: checkpoint version %d, want %d..%d", ver, checkpointMinVersion, checkpointVersion)
	}
	payload := buf[head:]
	if uint64(len(payload)) != plen {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: checkpoint payload %d bytes, header says %d", len(payload), plen)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: checkpoint CRC %08x, want %08x", got, sum)
	}

	r := binenc.NewReader(payload)
	c := &Checkpoint{
		Round:      int(r.I64()),
		Refits:     int(r.I64()),
		ConfigHash: r.U64(),
	}
	ns := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if ns < 0 || ns > maxCheckpointEntries {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: checkpoint with %d streams", ns)
	}
	c.Streams = make([]StreamState, ns)
	for i := range c.Streams {
		c.Streams[i].Name = r.String()
		for w := range c.Streams[i].State {
			c.Streams[i].State[w] = r.U64()
		}
	}
	ng := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if ng < 0 || ng > maxCheckpointEntries {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: checkpoint with %d gauges", ng)
	}
	c.Gauges = make([]GaugeState, ng)
	for i := range c.Gauges {
		c.Gauges[i].Name = r.String()
		c.Gauges[i].Value = r.F64()
	}
	switch tag := r.U8(); {
	case r.Err() != nil || tag == ckptPredNone:
	case tag == ckptPredSet:
		set, err := ReadPredictorSet(r)
		if err != nil {
			return nil, err
		}
		c.Set = set
	case tag == ckptPredBackend && ver >= 2:
		name := r.String()
		if r.Err() != nil {
			return nil, r.Err()
		}
		be, err := DecodeBackend(name, r)
		if err != nil {
			return nil, err
		}
		c.Backend = be
	default:
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: checkpoint v%d predictor tag %d", ver, tag)
	}
	// Extra aliases payload; copy so the checkpoint owns its memory.
	c.Extra = append([]byte(nil), r.Bytes()...)
	if r.Err() != nil {
		return nil, r.Err()
	}
	return c, nil
}

// SaveCheckpoint atomically writes c to path: the bytes land in a temp file
// in the same directory which is then renamed over path, so a crash or
// signal mid-write never leaves a torn checkpoint behind.
func SaveCheckpoint(path string, c *Checkpoint) error {
	buf := EncodeCheckpoint(c)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file written by
// SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(buf)
}
