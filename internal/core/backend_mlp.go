package core

import (
	"context"

	"mfcp/internal/binenc"
	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
	"mfcp/internal/nn"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
	"mfcp/internal/workload"
)

// BackendMLP names the reference backend: the paper's per-cluster MLP pair.
const BackendMLP = "mlp"

// mlpBackendCodecVersion versions MLPBackend.AppendBackend's wire form.
const mlpBackendCodecVersion = 1

func init() {
	RegisterBackend(BackendMLP,
		func(m, inDim int, hidden []int, r *rng.Source) Backend {
			return WrapMLPBackend(NewPredictorSet(m, inDim, hidden, r))
		},
		decodeMLPBackend)
}

// MLPBackend adapts PredictorSet — the paper's per-cluster (time,
// reliability) MLP pair — to the Backend interface. It is a zero-cost
// wrapper: PredictInto routes through the identical forward code serving
// used before the interface existed, so trajectories are bit-identical.
type MLPBackend struct {
	set *PredictorSet
}

// WrapMLPBackend wraps an existing predictor set without copying it. The
// platform uses this to expose trainer- and baseline-owned sets through the
// backend interface; mutations through either handle are visible to both.
func WrapMLPBackend(set *PredictorSet) *MLPBackend { return &MLPBackend{set: set} }

// Set returns the wrapped predictor set (the legacy checkpoint field and
// the MFCP trainer both want the concrete type).
func (b *MLPBackend) Set() *PredictorSet { return b.set }

// BackendName implements Backend.
func (b *MLPBackend) BackendName() string { return BackendMLP }

// M implements Backend.
func (b *MLPBackend) M() int { return b.set.M() }

// InDim implements Backend.
func (b *MLPBackend) InDim() int {
	if len(b.set.Preds) == 0 {
		return 0
	}
	return b.set.Preds[0].Time.Dims[0]
}

// NewWorkspace implements Backend.
func (b *MLPBackend) NewWorkspace() BackendWorkspace { return &PredictWorkspace{} }

// PredictInto implements Backend: PredictorSet.PredictInto through the
// caller's tapes, allocation-free once the workspace has warmed.
func (b *MLPBackend) PredictInto(Z *mat.Dense, w BackendWorkspace, That, Ahat *mat.Dense) {
	b.set.PredictInto(Z, w.(*PredictWorkspace), That, Ahat)
}

// Snapshot implements Backend, delegating to PredictorSet.Snapshot (weight
// buffers of the target are reused; nil allocates a fresh clone).
func (b *MLPBackend) Snapshot(into Backend) Backend {
	if into == nil {
		return &MLPBackend{set: b.set.Clone()}
	}
	t := into.(*MLPBackend)
	b.set.Snapshot(t.set)
	return t
}

// Validate implements Backend.
func (b *MLPBackend) Validate(m, inDim int) error { return b.set.Validate(m, inDim) }

// Pretrain implements Backend: plain MSE fitting of all 2M networks
// (equation 1, the two-stage baseline's entire learning).
func (b *MLPBackend) Pretrain(ctx context.Context, s *workload.Scenario, train []int, epochs int, r *rng.Source) error {
	return PretrainMSECtx(ctx, b.set, s, train, epochs, r)
}

// Refit implements Backend: each cluster's networks fine-tune on its live
// observations MIXED with the original profiling labels (experience
// replay). Fine-tuning on the small partial-feedback buffer alone
// catastrophically forgets tasks outside it; replay anchors the update.
// Live observations are weighted by duplication so fresh (possibly
// drifted) signal still dominates where it exists. Time targets are
// realized normalized durations; reliability targets the 0/1 completion
// indicator (whose MSE minimizer is the Bernoulli mean).
//
// Clusters are independent given their rng streams (SplitIndexed by
// cluster index), so the per-cluster fine-tunes run across
// parallel.Workers() shards without changing the result.
func (b *MLPBackend) Refit(s *workload.Scenario, train []int, live []Feedback, epochs int, r *rng.Source) {
	m := b.set.M()
	perCluster := make([][]Feedback, m)
	for _, ob := range live {
		perCluster[ob.Cluster] = append(perCluster[ob.Cluster], ob)
	}
	const liveWeight = 3 // each live observation counts as this many rows
	parallel.ForChunked(m, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			refitMLPCluster(b.set, s, train, perCluster[i], i, liveWeight, epochs, r)
		}
	})
}

// refitMLPCluster fine-tunes cluster i's time and reliability networks.
func refitMLPCluster(set *PredictorSet, s *workload.Scenario, train []int, obs []Feedback, i, liveWeight, epochs int, r *rng.Source) {
	if len(obs) < 4 {
		return // too little signal to fine-tune on
	}
	X, tTargets, aTargets := refitRows(s, train, obs, i, liveWeight)
	timeCfg := nn.TrainMSEConfig{Epochs: epochs, BatchSize: 16, Optimizer: nn.NewAdam(5e-4)}
	nn.TrainMSE(set.Preds[i].Time, X, tTargets, timeCfg, r.SplitIndexed("time", i))
	relCfg := nn.TrainMSEConfig{Epochs: epochs, BatchSize: 16, Optimizer: nn.NewAdam(5e-4)}
	nn.TrainMSE(set.Preds[i].Rel, X, aTargets, relCfg, r.SplitIndexed("rel", i))
}

// AppendBackend implements Backend: a codec version byte followed by the
// PredictorSet encoding (checkpoint files carry MLP weights in the legacy
// Set slot instead, so old resumes keep working; this form backs the
// generic backend slot and the conformance round-trip).
func (b *MLPBackend) AppendBackend(buf []byte) []byte {
	buf = binenc.AppendU8(buf, mlpBackendCodecVersion)
	return b.set.AppendBinary(buf)
}

func decodeMLPBackend(r *binenc.Reader) (Backend, error) {
	if v := r.U8(); r.Err() == nil && v != mlpBackendCodecVersion {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: mlp backend codec version %d, want %d", v, mlpBackendCodecVersion)
	}
	set, err := ReadPredictorSet(r)
	if err != nil {
		return nil, err
	}
	return WrapMLPBackend(set), nil
}
