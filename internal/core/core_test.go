package core

import (
	"math"
	"testing"

	"mfcp/internal/cluster"
	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/nn"
	"mfcp/internal/rng"
	"mfcp/internal/workload"
)

func testScenario(seed uint64) *workload.Scenario {
	return workload.MustNew(workload.Config{
		Setting: cluster.SettingA, PoolSize: 60, FeatureDim: 12, Seed: seed,
	})
}

func TestPredictorSetShapes(t *testing.T) {
	r := rng.New(1)
	set := NewPredictorSet(3, 12, []int{8}, r)
	if set.M() != 3 {
		t.Fatalf("M=%d", set.M())
	}
	s := testScenario(2)
	Z := s.FeaturesOf([]int{0, 1, 2, 3, 4})
	T, A := set.Predict(Z)
	if T.Rows != 3 || T.Cols != 5 || A.Rows != 3 || A.Cols != 5 {
		t.Fatal("prediction shapes wrong")
	}
	for k := range T.Data {
		if T.Data[k] < 0 {
			t.Fatal("negative time prediction despite softplus head")
		}
		if A.Data[k] < 0 || A.Data[k] > 1 {
			t.Fatal("reliability prediction outside (0,1)")
		}
	}
}

func TestForwardMatchesPredict(t *testing.T) {
	r := rng.New(3)
	set := NewPredictorSet(3, 12, []int{8}, r)
	s := testScenario(4)
	Z := s.FeaturesOf([]int{1, 5, 9})
	T1, A1 := set.Predict(Z)
	var tp tapes
	T2, A2 := new(mat.Dense), new(mat.Dense)
	set.forward(Z, &tp, T2, A2)
	if !T1.Equal(T2, 1e-12) || !A1.Equal(A2, 1e-12) {
		t.Fatal("forward and Predict disagree")
	}
	// A second pass through the same workspace must reproduce the result.
	set.forward(Z, &tp, T2, A2)
	if !T1.Equal(T2, 0) {
		t.Fatal("forward not stable across workspace reuse")
	}
}

func TestPretrainReducesMSE(t *testing.T) {
	s := testScenario(5)
	train, _ := s.Split(0.75)
	set := NewPredictorSet(s.M(), s.Features.Cols, []int{16}, s.Stream("init"))
	Z := s.FeaturesOf(train)
	mseOf := func() float64 {
		total := 0.0
		for i := 0; i < s.M(); i++ {
			tv, _ := s.LabelVectors(i, train)
			total += nn.MSE(set.Preds[i].Time.PredictBatch(Z, nil), tv)
		}
		return total
	}
	before := mseOf()
	PretrainMSE(set, s, train, 150, s.Stream("pre"))
	after := mseOf()
	if after > before*0.5 {
		t.Fatalf("pretrain barely helped: %v -> %v", before, after)
	}
}

func TestTrainADRunsAndImproves(t *testing.T) {
	s := testScenario(6)
	train, _ := s.Split(0.75)
	cfg := Config{Kind: AD, PretrainEpochs: 100, Epochs: 30, RoundSize: 5}
	tr := Train(s, train, cfg)
	if len(tr.History) != 30 {
		t.Fatalf("history length %d", len(tr.History))
	}
	if tr.SkippedEpochs > 15 {
		t.Fatalf("AD skipped %d/30 epochs", tr.SkippedEpochs)
	}
	// Late-phase training regret should not exceed early-phase on average.
	early := mean(tr.History[:10])
	late := mean(tr.History[len(tr.History)-10:])
	if late > early*1.5+0.05 {
		t.Fatalf("training regret diverged: early %v late %v", early, late)
	}
	T, A := tr.Predict([]int{0, 1, 2, 3, 4})
	if T.Rows != s.M() || A.Cols != 5 {
		t.Fatal("Predict shapes wrong")
	}
}

func TestTrainFGRuns(t *testing.T) {
	s := testScenario(7)
	train, _ := s.Split(0.75)
	cfg := Config{Kind: FG, PretrainEpochs: 80, Epochs: 10, RoundSize: 4}
	cfg.ZO.Samples = 4
	tr := Train(s, train, cfg)
	if tr.Name() != "MFCP-FG" {
		t.Fatalf("name %q", tr.Name())
	}
	if len(tr.History) != 10 {
		t.Fatalf("history %d", len(tr.History))
	}
	for _, h := range tr.History {
		if math.IsNaN(h) || math.IsInf(h, 0) {
			t.Fatalf("non-finite training regret %v", h)
		}
	}
}

func TestTrainFGParallelSetting(t *testing.T) {
	s := testScenario(8)
	train, _ := s.Split(0.75)
	speedups := make([]cluster.SpeedupCurve, s.M())
	for i, p := range s.Fleet {
		speedups[i] = p.Speedup
	}
	cfg := Config{Kind: FG, PretrainEpochs: 60, Epochs: 6, RoundSize: 5}
	cfg.Match.Speedups = speedups
	cfg.ZO.Samples = 4
	tr := Train(s, train, cfg)
	if tr.SkippedEpochs != 0 {
		t.Fatalf("FG skipped %d epochs in parallel setting", tr.SkippedEpochs)
	}
}

func TestTrainDeterministic(t *testing.T) {
	run := func() []float64 {
		s := testScenario(9)
		train, _ := s.Split(0.75)
		cfg := Config{Kind: AD, PretrainEpochs: 40, Epochs: 8, RoundSize: 4}
		return Train(s, train, cfg).History
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training not deterministic at epoch %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMatchConfigDefaults(t *testing.T) {
	var mc MatchConfig
	mc.FillDefaults()
	if mc.Gamma != 0.8 || mc.Beta != 10 || mc.Lambda != 0.05 || mc.Entropy != 0 || mc.SolveIters != 200 {
		t.Fatalf("defaults: %+v", mc)
	}
}

func TestMatchConfigSolveFeasible(t *testing.T) {
	s := testScenario(10)
	var mc MatchConfig
	mc.FillDefaults()
	mc.Gamma = 0.8
	round := []int{0, 1, 2, 3, 4}
	T, A := s.TrueMatrices(round)
	assign := mc.Solve(T, A)
	if len(assign) != 5 {
		t.Fatalf("assignment length %d", len(assign))
	}
	p := mc.Problem(T, A)
	if p.Entropy != 0 {
		t.Fatal("MatchConfig.Problem must not enable entropy")
	}
	for _, a := range assign {
		if a < 0 || a >= s.M() {
			t.Fatalf("assignment out of range: %v", assign)
		}
	}
}

func TestKindString(t *testing.T) {
	if AD.String() != "MFCP-AD" || FG.String() != "MFCP-FG" {
		t.Fatal("kind names wrong")
	}
}

func TestTrainZeroEpochsEqualsPretrainOnly(t *testing.T) {
	// Epochs: -1 is not representable; use PretrainEpochs only by setting
	// Epochs to the minimum and checking the pretrained snapshot predicts
	// identically to a TSM-style pipeline with the same streams.
	s := testScenario(11)
	train, _ := s.Split(0.75)
	set := NewPredictorSet(s.M(), s.Features.Cols, []int{16}, s.Stream("mfcp-MFCP-AD").Split("init"))
	PretrainMSE(set, s, train, 50, s.Stream("mfcp-MFCP-AD").Split("pretrain"))
	cfg := Config{Kind: AD, PretrainEpochs: 50, Epochs: 1, RoundSize: 4}
	tr := Train(s, train, cfg)
	// After exactly one alternating epoch only the time nets moved; the
	// reliability nets must still match the pretrained snapshot.
	round := []int{0, 1, 2}
	_, wantA := set.Predict(s.FeaturesOf(round))
	_, gotA := tr.Predict(round)
	if !wantA.Equal(gotA, 1e-9) {
		t.Fatal("reliability nets changed during a time-only epoch")
	}
}

func TestSolvePipelineSharedAcrossMethods(t *testing.T) {
	// Two MatchConfigs with identical fields must produce identical
	// assignments for the same inputs (determinism of the solver).
	s := testScenario(12)
	round := []int{0, 1, 2, 3, 4, 5}
	T, A := s.MeasuredMatrices(round)
	var mc MatchConfig
	mc.FillDefaults()
	a1 := mc.Solve(T, A)
	a2 := mc.Solve(T, A)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("matching not deterministic")
		}
	}
	_ = matching.AssignmentMatrix(a1, s.M())
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
