package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
	"mfcp/internal/rng"
)

func sampleCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	set := NewPredictorSet(3, 12, []int{8, 4}, rng.New(77))
	return &Checkpoint{
		Round:      42,
		Refits:     7,
		ConfigHash: 0xdeadbeefcafe,
		Streams: []StreamState{
			{Name: "rounds", State: [4]uint64{1, 2, 3, 4}},
			{Name: "exec", State: [4]uint64{5, 6, 7, 8}},
		},
		Gauges: []GaugeState{
			{Name: "ema_regret", Value: 0.125},
			{Name: "ema_init", Value: 1},
		},
		Set:   set,
		Extra: []byte{9, 8, 7, 6, 5},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := sampleCheckpoint(t)
	got, err := DecodeCheckpoint(EncodeCheckpoint(ck))
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != ck.Round || got.Refits != ck.Refits || got.ConfigHash != ck.ConfigHash {
		t.Fatalf("counters: %+v", got)
	}
	if len(got.Streams) != 2 || got.Streams[0] != ck.Streams[0] || got.Streams[1] != ck.Streams[1] {
		t.Fatalf("streams: %+v", got.Streams)
	}
	if len(got.Gauges) != 2 || got.Gauges[0] != ck.Gauges[0] || got.Gauges[1] != ck.Gauges[1] {
		t.Fatalf("gauges: %+v", got.Gauges)
	}
	if string(got.Extra) != string(ck.Extra) {
		t.Fatalf("extra: %v", got.Extra)
	}

	// The decoded predictor set must predict bit-identically, both through
	// Predict and through the workspace path the serving engine uses.
	s := testScenario(78)
	Z := s.FeaturesOf([]int{0, 3, 7, 11})
	wantT, wantA := ck.Set.Predict(Z)
	gotT, gotA := got.Set.Predict(Z)
	if !wantT.Equal(gotT, 0) || !wantA.Equal(gotA, 0) {
		t.Fatal("decoded set predicts differently")
	}
	var ws PredictWorkspace
	wsT, wsA := new(mat.Dense), new(mat.Dense)
	got.Set.PredictInto(Z, &ws, wsT, wsA)
	if !wantT.Equal(wsT, 0) || !wantA.Equal(wsA, 0) {
		t.Fatal("decoded set's PredictInto diverges")
	}
}

func TestCheckpointNilSet(t *testing.T) {
	ck := &Checkpoint{Round: 1}
	got, err := DecodeCheckpoint(EncodeCheckpoint(ck))
	if err != nil {
		t.Fatal(err)
	}
	if got.Set != nil {
		t.Fatal("nil set round-tripped as non-nil")
	}
}

func TestCheckpointLookups(t *testing.T) {
	ck := sampleCheckpoint(t)
	if st, ok := ck.Stream("exec"); !ok || st != [4]uint64{5, 6, 7, 8} {
		t.Fatalf("stream lookup: %v %v", st, ok)
	}
	if _, ok := ck.Stream("missing"); ok {
		t.Fatal("missing stream found")
	}
	if v, ok := ck.Gauge("ema_regret"); !ok || v != 0.125 {
		t.Fatalf("gauge lookup: %v %v", v, ok)
	}
	if _, ok := ck.Gauge("missing"); ok {
		t.Fatal("missing gauge found")
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	buf := EncodeCheckpoint(sampleCheckpoint(t))

	// Bad magic.
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xff
	if _, err := DecodeCheckpoint(bad); !errors.Is(err, mfcperr.ErrCorruptCheckpoint) {
		t.Fatalf("bad magic: %v", err)
	}
	// Unknown version.
	bad = append([]byte(nil), buf...)
	bad[len(checkpointMagic)] = 99
	if _, err := DecodeCheckpoint(bad); !errors.Is(err, mfcperr.ErrCorruptCheckpoint) {
		t.Fatalf("bad version: %v", err)
	}
	// A flipped payload bit must fail the CRC.
	bad = append([]byte(nil), buf...)
	bad[len(bad)/2] ^= 0x10
	if _, err := DecodeCheckpoint(bad); !errors.Is(err, mfcperr.ErrCorruptCheckpoint) {
		t.Fatalf("flipped payload byte: %v", err)
	}
	// Truncations at every boundary class: inside the header, inside the
	// payload, and just one byte short.
	for _, cut := range []int{0, 5, len(buf) / 3, len(buf) - 1} {
		if _, err := DecodeCheckpoint(buf[:cut]); !errors.Is(err, mfcperr.ErrCorruptCheckpoint) {
			t.Fatalf("truncation at %d: %v", cut, err)
		}
	}
}

func TestSaveLoadCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	ck := sampleCheckpoint(t)
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	// The write is atomic via temp+rename: no stray temp files remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.ckpt" {
		t.Fatalf("directory entries: %v", entries)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != ck.Round || got.ConfigHash != ck.ConfigHash {
		t.Fatalf("loaded checkpoint: %+v", got)
	}
	// Overwriting an existing checkpoint must succeed (periodic saves reuse
	// one path).
	ck.Round = 43
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err = LoadCheckpoint(path)
	if err != nil || got.Round != 43 {
		t.Fatalf("overwrite: %v round=%d", err, got.Round)
	}
}

func TestPredictorSetValidate(t *testing.T) {
	set := NewPredictorSet(3, 12, []int{8}, rng.New(5))
	if err := set.Validate(3, 12); err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(4, 12); !errors.Is(err, mfcperr.ErrBadShape) {
		t.Fatalf("cluster mismatch: %v", err)
	}
	if err := set.Validate(3, 10); !errors.Is(err, mfcperr.ErrBadShape) {
		t.Fatalf("feature mismatch: %v", err)
	}
	set.Preds[1] = nil
	if err := set.Validate(3, 12); !errors.Is(err, mfcperr.ErrBadShape) {
		t.Fatalf("nil predictor: %v", err)
	}
}
