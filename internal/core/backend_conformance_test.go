package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"mfcp/internal/binenc"
	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
	"mfcp/internal/workload"
)

// The backend conformance suite: every registered family (BackendNames
// walks the registry, so new families are covered the day they register)
// must honor the Backend contract — shape discipline, deterministic
// forwards, zero-alloc PredictInto, snapshot independence, and a
// corruption-safe codec.

// conformanceBackend constructs and pretrains one family on s. Hidden and
// epochs stay tiny: the suite pins contracts, not accuracy.
func conformanceBackend(t *testing.T, name string, s *workload.Scenario, train []int) Backend {
	t.Helper()
	be, err := NewBackend(name, s.M(), s.Features.Cols, []int{6}, rng.New(41))
	if err != nil {
		t.Fatalf("NewBackend(%q): %v", name, err)
	}
	if err := be.Pretrain(context.Background(), s, train, 3, rng.New(42)); err != nil {
		t.Fatalf("Pretrain(%q): %v", name, err)
	}
	return be
}

func predictPair(be Backend, Z *mat.Dense) (*mat.Dense, *mat.Dense) {
	T, A := new(mat.Dense), new(mat.Dense)
	be.PredictInto(Z, be.NewWorkspace(), T, A)
	return T, A
}

func sameDense(t *testing.T, what string, got, want *mat.Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for k := range want.Data {
		if got.Data[k] != want.Data[k] {
			t.Fatalf("%s: entry %d = %v, want %v (not bit-identical)", what, k, got.Data[k], want.Data[k])
		}
	}
}

func TestBackendConformanceRegistry(t *testing.T) {
	names := BackendNames()
	if len(names) < 3 {
		t.Fatalf("registry has %v, want at least mlp+ensemble+table", names)
	}
	for _, want := range []string{BackendMLP, BackendEnsemble, BackendTable} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("registry %v missing %q", names, want)
		}
	}
	if _, err := NewBackend("no-such-family", 3, 4, nil, rng.New(1)); !errors.Is(err, mfcperr.ErrBadConfig) {
		t.Fatalf("unknown backend construction err = %v, want ErrBadConfig", err)
	}
	if _, err := DecodeBackend("no-such-family", binenc.NewReader(nil)); !errors.Is(err, mfcperr.ErrCorruptCheckpoint) {
		t.Fatalf("unknown backend decode err = %v, want ErrCorruptCheckpoint", err)
	}
}

func TestBackendConformanceShapesAndDeterminism(t *testing.T) {
	s := testScenario(77)
	train, test := s.Split(0.75)
	Z := s.FeaturesOf(test[:7])
	for _, name := range BackendNames() {
		t.Run(name, func(t *testing.T) {
			be := conformanceBackend(t, name, s, train)
			if be.BackendName() != name {
				t.Fatalf("BackendName %q under registry key %q", be.BackendName(), name)
			}
			if be.M() != s.M() || be.InDim() != s.Features.Cols {
				t.Fatalf("arch (%d, %d), want (%d, %d)", be.M(), be.InDim(), s.M(), s.Features.Cols)
			}
			if err := be.Validate(s.M(), s.Features.Cols); err != nil {
				t.Fatalf("Validate on own arch: %v", err)
			}
			if err := be.Validate(s.M()+1, s.Features.Cols); !errors.Is(err, mfcperr.ErrBadShape) {
				t.Fatalf("Validate wrong M err = %v, want ErrBadShape", err)
			}
			if err := be.Validate(s.M(), s.Features.Cols+1); !errors.Is(err, mfcperr.ErrBadShape) {
				t.Fatalf("Validate wrong InDim err = %v, want ErrBadShape", err)
			}

			T, A := predictPair(be, Z)
			if T.Rows != s.M() || T.Cols != 7 || A.Rows != s.M() || A.Cols != 7 {
				t.Fatalf("prediction shapes %dx%d / %dx%d, want %dx7", T.Rows, T.Cols, A.Rows, A.Cols, s.M())
			}
			for k := range T.Data {
				if math.IsNaN(T.Data[k]) || math.IsInf(T.Data[k], 0) || T.Data[k] < 0 {
					t.Fatalf("time prediction %v out of range", T.Data[k])
				}
				if !(A.Data[k] >= 0 && A.Data[k] <= 1) {
					t.Fatalf("reliability prediction %v outside [0,1]", A.Data[k])
				}
			}

			// Deterministic forward: a second pass, fresh workspace and a
			// reused one, both bit-identical.
			T2, A2 := predictPair(be, Z)
			sameDense(t, "fresh-workspace repeat T", T2, T)
			sameDense(t, "fresh-workspace repeat A", A2, A)
			w := be.NewWorkspace()
			be.PredictInto(Z, w, T2, A2)
			be.PredictInto(Z, w, T2, A2)
			sameDense(t, "warm-workspace repeat T", T2, T)
			sameDense(t, "warm-workspace repeat A", A2, A)
		})
	}
}

// TestBackendConformancePredictIntoZeroAlloc pins the zero-alloc rule:
// after the workspace has warmed to the batch shape, PredictInto touches
// the heap zero times. Workers are pinned to 1 so the measurement sees the
// forward itself rather than the parallel harness's goroutine scheduling.
func TestBackendConformancePredictIntoZeroAlloc(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	s := testScenario(78)
	train, test := s.Split(0.75)
	Z := s.FeaturesOf(test[:6])
	T, A := new(mat.Dense), new(mat.Dense)
	for _, name := range BackendNames() {
		t.Run(name, func(t *testing.T) {
			be := conformanceBackend(t, name, s, train)
			w := be.NewWorkspace()
			be.PredictInto(Z, w, T, A) // warm tapes and bind the chunk closure
			if n := testing.AllocsPerRun(100, func() { be.PredictInto(Z, w, T, A) }); n != 0 {
				t.Fatalf("PredictInto allocated %v objects/op after warmup, want 0", n)
			}
		})
	}
}

// TestBackendConformanceSnapshot pins the RCU snapshot semantics: a
// nil-target snapshot is an independent bit-identical copy, an into-target
// snapshot refreshes a prior copy in place, and mutating the original
// never leaks into a snapshot taken before the mutation.
func TestBackendConformanceSnapshot(t *testing.T) {
	s := testScenario(79)
	train, test := s.Split(0.75)
	Z := s.FeaturesOf(test[:5])
	for _, name := range BackendNames() {
		t.Run(name, func(t *testing.T) {
			be := conformanceBackend(t, name, s, train)
			T, A := predictPair(be, Z)

			snap := be.Snapshot(nil)
			if snap == be {
				t.Fatal("Snapshot(nil) returned the receiver, not a copy")
			}
			sT, sA := predictPair(snap, Z)
			sameDense(t, "snapshot T", sT, T)
			sameDense(t, "snapshot A", sA, A)

			// Refit the original; the pre-refit snapshot must not move.
			fb := []Feedback{}
			for _, j := range train[:4] {
				fb = append(fb, Feedback{Cluster: 0, TaskIdx: j, TimeNorm: 0.5, Succeeded: true},
					Feedback{Cluster: 1, TaskIdx: j, TimeNorm: 0.7, Succeeded: j%2 == 0})
			}
			be.Refit(s, train, fb, 2, rng.New(43))
			sT2, sA2 := predictPair(snap, Z)
			sameDense(t, "snapshot T after refit of original", sT2, sT)
			sameDense(t, "snapshot A after refit of original", sA2, sA)

			// Snapshot into the prior copy: it converges back to the
			// (now refitted) original.
			refreshed := be.Snapshot(snap)
			rT, rA := predictPair(refreshed, Z)
			bT, bA := predictPair(be, Z)
			sameDense(t, "into-snapshot T", rT, bT)
			sameDense(t, "into-snapshot A", rA, bA)
		})
	}
}

// TestBackendConformanceCodec pins the checkpoint codec: encode → decode
// reproduces bit-identical predictions and a byte-identical re-encoding,
// both raw (AppendBackend/DecodeBackend) and through the checkpoint v2
// predictor slot; truncated or tampered bytes surface
// ErrCorruptCheckpoint, never a panic or a silently wrong model.
func TestBackendConformanceCodec(t *testing.T) {
	s := testScenario(80)
	train, test := s.Split(0.75)
	Z := s.FeaturesOf(test[:5])
	for _, name := range BackendNames() {
		t.Run(name, func(t *testing.T) {
			be := conformanceBackend(t, name, s, train)
			T, A := predictPair(be, Z)

			buf := be.AppendBackend(nil)
			r := binenc.NewReader(buf)
			dec, err := DecodeBackend(name, r)
			if err != nil {
				t.Fatalf("DecodeBackend: %v", err)
			}
			if r.Err() != nil || r.Len() != 0 {
				t.Fatalf("decode left err=%v remaining=%d", r.Err(), r.Len())
			}
			dT, dA := predictPair(dec, Z)
			sameDense(t, "decoded T", dT, T)
			sameDense(t, "decoded A", dA, A)
			if !bytes.Equal(dec.AppendBackend(nil), buf) {
				t.Fatal("re-encoding the decoded backend is not byte-identical")
			}

			// Through the checkpoint predictor slot.
			ck := &Checkpoint{Round: 5, Refits: 2, ConfigHash: 99, Backend: be}
			blob := EncodeCheckpoint(ck)
			ck2, err := DecodeCheckpoint(blob)
			if err != nil {
				t.Fatalf("DecodeCheckpoint: %v", err)
			}
			if ck2.Backend == nil || ck2.Set != nil {
				if name == BackendMLP {
					// The MLP family rides the legacy Set slot by design
					// (captureCheckpoint); the raw-codec path above still
					// covers its AppendBackend.
					if ck2.Backend != nil {
						t.Fatal("mlp backend checkpoint filled both predictor slots")
					}
				} else {
					t.Fatalf("checkpoint predictor slots: Set=%v Backend=%v", ck2.Set != nil, ck2.Backend != nil)
				}
			}
			if ck2.Backend != nil {
				cT, cA := predictPair(ck2.Backend, Z)
				sameDense(t, "checkpointed T", cT, T)
				sameDense(t, "checkpointed A", cA, A)
			}

			// Corruption: version byte flipped.
			bad := append([]byte(nil), buf...)
			bad[0] ^= 0xff
			if _, err := DecodeBackend(name, binenc.NewReader(bad)); !errors.Is(err, mfcperr.ErrCorruptCheckpoint) {
				t.Fatalf("version-flipped decode err = %v, want ErrCorruptCheckpoint", err)
			}
			// Corruption: truncations at several depths.
			for _, cut := range []int{0, 1, len(buf) / 2, len(buf) - 3} {
				if _, err := DecodeBackend(name, binenc.NewReader(buf[:cut])); !errors.Is(err, mfcperr.ErrCorruptCheckpoint) {
					t.Fatalf("truncated-to-%d decode err = %v, want ErrCorruptCheckpoint", cut, err)
				}
			}
		})
	}
}

// TestBackendConformanceRefitDeterministic pins that Refit is a pure
// function of (state, feedback, stream): two identical snapshots refit
// with identical feedback and streams stay bit-identical.
func TestBackendConformanceRefitDeterministic(t *testing.T) {
	s := testScenario(81)
	train, test := s.Split(0.75)
	Z := s.FeaturesOf(test[:5])
	fb := []Feedback{
		{Cluster: 0, TaskIdx: train[0], TimeNorm: 0.4, Succeeded: true},
		{Cluster: 1, TaskIdx: train[1], TimeNorm: 0.9, Succeeded: false},
		{Cluster: 2, TaskIdx: train[2], TimeNorm: 0.6, Succeeded: true},
	}
	for _, name := range BackendNames() {
		t.Run(name, func(t *testing.T) {
			be := conformanceBackend(t, name, s, train)
			a, b := be.Snapshot(nil), be.Snapshot(nil)
			a.Refit(s, train, fb, 2, rng.New(44))
			b.Refit(s, train, fb, 2, rng.New(44))
			aT, aA := predictPair(a, Z)
			bT, bA := predictPair(b, Z)
			sameDense(t, "refit T", bT, aT)
			sameDense(t, "refit A", bA, aA)
		})
	}
}
