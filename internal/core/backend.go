package core

import (
	"context"
	"sort"

	"mfcp/internal/binenc"
	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
	"mfcp/internal/rng"
	"mfcp/internal/workload"
)

// Feedback is one realized execution observation routed into Backend.Refit:
// which cluster ran which pool task, the normalized time it took, and
// whether it completed. The platform's observation ring drains into slices
// of these at refit boundaries (order matters: refit implementations may
// weight the recent suffix more heavily, so callers pass observations in
// arrival order).
type Feedback struct {
	Cluster   int
	TaskIdx   int
	TimeNorm  float64
	Succeeded bool
}

// BackendWorkspace is the opaque per-goroutine scratch a Backend's
// PredictInto runs through. Each concurrent caller owns one workspace
// (obtained from the same backend family via NewWorkspace); workspaces are
// shape-adaptive, so one instance serves rounds of varying size without
// reallocating once warmed. Workspaces are interchangeable between
// snapshots of the same backend family but not across families.
type BackendWorkspace interface{}

// Backend is a pluggable predictor family behind the serving stack: per-
// cluster (time, reliability) models with a zero-alloc batched forward,
// training hooks, RCU snapshot support, and a versioned binary codec. The
// per-cluster MLP pair (the paper's predictor) is the reference
// implementation; bootstrap ensembles and quantized linear tables are the
// other in-tree families. The engine holds the published Backend in a
// parallel.Snapshot and every shard predicts against the version it Loads,
// so implementations must be safe for concurrent PredictInto calls as long
// as each caller owns its workspace and nobody trains the published value
// (refits train a private snapshot and publish it whole).
type Backend interface {
	// BackendName is the registry key ("mlp", "ensemble", "table").
	BackendName() string
	// M is the number of clusters covered.
	M() int
	// InDim is the task-feature dimensionality the models expect.
	InDim() int
	// NewWorkspace allocates a private workspace for PredictInto callers.
	NewWorkspace() BackendWorkspace
	// PredictInto maps task features Z (N × d) to predicted matrices T̂, Â
	// (both reshaped in place to M × N) through w. After the workspace has
	// warmed to the batch shape the call must perform no steady-state
	// allocations — the conformance suite pins this with AllocsPerRun.
	PredictInto(Z *mat.Dense, w BackendWorkspace, That, Ahat *mat.Dense)
	// Snapshot deep-copies the backend into the provided target (which must
	// be a prior Snapshot/construction of the same family and architecture),
	// reusing its buffers, and returns it; a nil target allocates a fresh
	// copy. This is the RCU publish primitive: the serving session keeps one
	// spare per refit slot and alternates snapshots through it.
	Snapshot(into Backend) Backend
	// Validate checks the backend fits a scenario with m clusters and
	// inDim-dimensional features (checkpoint resume calls it before serving
	// restored weights).
	Validate(m, inDim int) error
	// Pretrain fits the backend to the measured labels over the training
	// indices (the conventional supervised warm start). Streams derived
	// from r fully determine the result; ctx cancels cooperatively with an
	// mfcperr.ErrCanceled-wrapped error.
	Pretrain(ctx context.Context, s *workload.Scenario, train []int, epochs int, r *rng.Source) error
	// Refit updates the backend from the training replay plus live
	// feedback (the online loop's partial-feedback adaptation). It runs on
	// a private snapshot, never the published value.
	Refit(s *workload.Scenario, train []int, live []Feedback, epochs int, r *rng.Source)
	// AppendBackend appends the backend's versioned binary encoding to buf;
	// DecodeBackend(BackendName(), ...) restores a bit-identical predictor.
	AppendBackend(buf []byte) []byte
}

// UncertaintyBackend is a Backend that also quantifies predictive spread,
// enabling risk-aware serving: PredictRiskInto shifts each prediction by
// risk standard deviations in the pessimistic direction (execution time up,
// reliability down), so a positive MatchConfig.RiskAversion makes the
// matcher optimize a lower confidence bound on performance. A negative risk
// is the optimistic (UCB) direction; zero is the calibrated mean.
type UncertaintyBackend interface {
	Backend
	PredictRiskInto(Z *mat.Dense, w BackendWorkspace, risk float64, That, Ahat *mat.Dense)
}

// BackendFactory constructs an untrained backend for m clusters over
// inDim-dimensional features; hidden is the model-size knob (hidden layer
// widths for network families, ignored by closed-form ones) and r seeds
// any initialization randomness.
type BackendFactory func(m, inDim int, hidden []int, r *rng.Source) Backend

// BackendDecoder restores a backend from its AppendBackend encoding.
// Corruption must surface as an mfcperr.ErrCorruptCheckpoint-wrapped error.
type BackendDecoder func(r *binenc.Reader) (Backend, error)

type backendEntry struct {
	factory BackendFactory
	decoder BackendDecoder
}

var backendRegistry = map[string]backendEntry{}

// RegisterBackend adds a backend family to the registry. In-tree families
// register from init; registration is not synchronized, so external
// registrations must happen before any serving starts.
func RegisterBackend(name string, factory BackendFactory, decoder BackendDecoder) {
	if _, dup := backendRegistry[name]; dup {
		// invariant: backend names are package-level constants registered
		// once from init.
		panic("core: duplicate backend registration " + name)
	}
	backendRegistry[name] = backendEntry{factory: factory, decoder: decoder}
}

// NewBackend constructs a registered backend family by name. Unknown names
// return an mfcperr.ErrBadConfig-wrapped error listing the registry.
func NewBackend(name string, m, inDim int, hidden []int, r *rng.Source) (Backend, error) {
	e, ok := backendRegistry[name]
	if !ok {
		return nil, mfcperr.Wrap(mfcperr.ErrBadConfig, "core: unknown backend %q (have %v)", name, BackendNames())
	}
	return e.factory(m, inDim, hidden, r), nil
}

// DecodeBackend restores a backend encoded by AppendBackend under the given
// registry name. An unregistered name in a checkpoint is corruption from
// the decoder's point of view.
func DecodeBackend(name string, r *binenc.Reader) (Backend, error) {
	e, ok := backendRegistry[name]
	if !ok {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: checkpoint names unknown backend %q", name)
	}
	return e.decoder(r)
}

// refitRows assembles cluster i's refit dataset: the training replay
// (profiling measurements, rescaled by a live-vs-profiled speed factor
// estimated from the recent half of the observations so the anchor tracks
// regime changes instead of fighting them) followed by the live
// observations duplicated liveWeight times each. Time targets are realized
// normalized durations; reliability targets the 0/1 completion indicator
// (whose MSE minimizer is the Bernoulli mean). Shared by every in-tree
// backend's Refit so the replay semantics stay uniform across families.
func refitRows(s *workload.Scenario, train []int, obs []Feedback, i, liveWeight int) (X *mat.Dense, tTargets, aTargets mat.Vec) {
	fHat := 0.0
	cnt := 0
	for _, ob := range obs[len(obs)/2:] {
		if base := s.MeasT.At(i, ob.TaskIdx); base > 1e-9 {
			fHat += ob.TimeNorm / base
			cnt++
		}
	}
	if cnt > 0 {
		fHat /= float64(cnt)
	} else {
		fHat = 1
	}
	rows := len(train) + liveWeight*len(obs)
	X = mat.NewDense(rows, s.Features.Cols)
	tTargets = mat.NewVec(rows)
	aTargets = mat.NewVec(rows)
	// Replay: the original profiling measurements, drift-corrected.
	for k, j := range train {
		copy(X.Row(k), s.Features.Row(j))
		tTargets[k] = s.MeasT.At(i, j) * fHat
		aTargets[k] = s.MeasA.At(i, j)
	}
	// Live observations, duplicated for weight.
	at := len(train)
	for _, ob := range obs {
		for d := 0; d < liveWeight; d++ {
			copy(X.Row(at), s.Features.Row(ob.TaskIdx))
			tTargets[at] = ob.TimeNorm
			if ob.Succeeded {
				aTargets[at] = 1
			}
			at++
		}
	}
	return X, tTargets, aTargets
}

// BackendNames lists the registered backend families, sorted.
func BackendNames() []string {
	names := make([]string, 0, len(backendRegistry))
	for name := range backendRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
