package core

import (
	"context"
	"math"

	"mfcp/internal/binenc"
	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
	"mfcp/internal/nn"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
	"mfcp/internal/workload"
)

// BackendEnsemble names the bootstrap-ensemble backend: per-cluster bags of
// networks trained on bootstrap resamples, emitting a calibrated mean and
// spread per prediction. The UCB baseline's confidence machinery,
// generalized into a serving feature.
const BackendEnsemble = "ensemble"

// ensembleBackendCodecVersion versions EnsembleBackend.AppendBackend.
const ensembleBackendCodecVersion = 1

// defaultEnsembleMembers is the bag size the registry factory uses (the UCB
// baseline's default).
const defaultEnsembleMembers = 5

func init() {
	RegisterBackend(BackendEnsemble,
		func(m, inDim int, hidden []int, r *rng.Source) Backend {
			return NewEnsembleBackend(m, inDim, hidden, defaultEnsembleMembers, true)
		},
		decodeEnsembleBackend)
}

// EnsembleBackend predicts with per-cluster bootstrap ensembles (one bag
// for execution time, one for reliability). Beyond the point predictions
// the other backends offer, it quantifies spread: PredictRiskInto shifts
// every entry risk calibrated standard deviations in the pessimistic
// direction, which is how MatchConfig.RiskAversion reaches the solvers.
// Member initialization and bootstrap resamples derive from the pretrain
// stream, so the backend is exactly as deterministic as the MLP reference.
type EnsembleBackend struct {
	m, inDim, members int
	hidden            []int
	tEns, aEns        []*nn.Ensemble
	// tCal/aCal scale each cluster's raw bootstrap spread so the mean
	// predicted σ matches the mean absolute residual on the training split
	// (a variance-scaling calibration). 1 until Pretrain runs with
	// calibration enabled; the UCB baseline keeps them at 1 to preserve its
	// pinned optimistic-bound behavior.
	tCal, aCal []float64
	calibrate  bool
}

// NewEnsembleBackend builds an untrained ensemble backend; Pretrain
// constructs and fits the member networks (prediction before Pretrain is
// invalid). calibrate enables the post-pretrain spread calibration — the
// serving configuration; the UCB baseline disables it.
func NewEnsembleBackend(m, inDim int, hidden []int, members int, calibrate bool) *EnsembleBackend {
	if members < 1 {
		members = defaultEnsembleMembers
	}
	if hidden == nil {
		hidden = []int{16}
	}
	b := &EnsembleBackend{
		m: m, inDim: inDim, members: members,
		hidden:    append([]int(nil), hidden...),
		tEns:      make([]*nn.Ensemble, m),
		aEns:      make([]*nn.Ensemble, m),
		tCal:      make([]float64, m),
		aCal:      make([]float64, m),
		calibrate: calibrate,
	}
	for i := 0; i < m; i++ {
		b.tCal[i] = 1
		b.aCal[i] = 1
	}
	return b
}

// BackendName implements Backend.
func (b *EnsembleBackend) BackendName() string { return BackendEnsemble }

// M implements Backend.
func (b *EnsembleBackend) M() int { return b.m }

// InDim implements Backend.
func (b *EnsembleBackend) InDim() int { return b.inDim }

// Members returns the per-head bag size.
func (b *EnsembleBackend) Members() int { return b.members }

// TimeEnsemble exposes cluster i's execution-time bag (the UCB baseline
// predicts straight off the raw ensembles).
func (b *EnsembleBackend) TimeEnsemble(i int) *nn.Ensemble { return b.tEns[i] }

// RelEnsemble exposes cluster i's reliability bag.
func (b *EnsembleBackend) RelEnsemble(i int) *nn.Ensemble { return b.aEns[i] }

// ensembleWorkspace carries one warm forward tape per (cluster, head,
// member) network plus the member-output pointers hoisted out of the row
// loop. Tapes adapt to the batch shape, so a warmed workspace serves any
// round size allocation-free; ensure re-sizes the tape grid when the
// workspace meets a backend of a different architecture (pooled scratch can
// travel between engines), which is the only allocating path after warmup.
type ensembleWorkspace struct {
	t, a       [][]*nn.Tape
	tOut, aOut [][]*mat.Dense

	// Chunk-body arguments, valid only inside a PredictRiskInto call; runf
	// is the method value bound once in NewWorkspace so the hot forward
	// passes no escaping closure literal to ForChunked (that would cost one
	// heap object per round — PredictInto is AllocsPerRun-pinned at zero).
	be         *EnsembleBackend
	z          *mat.Dense
	that, ahat *mat.Dense
	risk       float64
	runf       func(lo, hi int)
}

func (w *ensembleWorkspace) ensure(m, members int) {
	if len(w.t) == m && (m == 0 || len(w.t[0]) == members) {
		return
	}
	w.t = make([][]*nn.Tape, m)
	w.a = make([][]*nn.Tape, m)
	w.tOut = make([][]*mat.Dense, m)
	w.aOut = make([][]*mat.Dense, m)
	for i := 0; i < m; i++ {
		w.t[i] = make([]*nn.Tape, members)
		w.a[i] = make([]*nn.Tape, members)
		w.tOut[i] = make([]*mat.Dense, members)
		w.aOut[i] = make([]*mat.Dense, members)
		for k := 0; k < members; k++ {
			w.t[i][k] = nn.NewTape()
			w.a[i][k] = nn.NewTape()
		}
	}
}

// NewWorkspace implements Backend.
func (b *EnsembleBackend) NewWorkspace() BackendWorkspace {
	w := &ensembleWorkspace{}
	w.ensure(b.m, b.members)
	return w
}

// PredictInto implements Backend: the calibrated ensemble means (risk 0).
func (b *EnsembleBackend) PredictInto(Z *mat.Dense, w BackendWorkspace, That, Ahat *mat.Dense) {
	b.PredictRiskInto(Z, w, 0, That, Ahat)
}

// PredictRiskInto implements UncertaintyBackend. Each entry is the
// ensemble mean shifted risk calibrated standard deviations in the
// pessimistic direction — T̂ = μ_T + κ·σ_T, Â = μ_A − κ·σ_A — so a
// positive risk makes the downstream matcher optimize a lower confidence
// bound on performance. Negative risk is the optimistic (UCB) direction:
// with calibration off and risk = −α the outputs are bit-identical to the
// UCB baseline's confidence bounds. Times are floored at 1e-4 and
// reliabilities capped at 0.999 (matching the UCB clamps); the
// reliability floor of 1e-4 applies only on the pessimistic side, keeping
// the optimistic path's pinned behavior exact.
func (b *EnsembleBackend) PredictRiskInto(Z *mat.Dense, w BackendWorkspace, risk float64, That, Ahat *mat.Dense) {
	ws := w.(*ensembleWorkspace)
	ws.ensure(b.m, b.members)
	m, n := b.m, Z.Rows
	That.Reshape(m, n)
	Ahat.Reshape(m, n)
	if ws.runf == nil {
		ws.runf = ws.run
	}
	ws.be, ws.z, ws.that, ws.ahat, ws.risk = b, Z, That, Ahat, risk
	parallel.ForChunked(m, 1, ws.runf)
	ws.be, ws.z, ws.that, ws.ahat = nil, nil, nil, nil
}

// run is the ForChunked body of PredictRiskInto for clusters [lo, hi).
func (ws *ensembleWorkspace) run(lo, hi int) {
	b, Z, That, Ahat, risk := ws.be, ws.z, ws.that, ws.ahat, ws.risk
	n := Z.Rows
	k := float64(b.members)
	for i := lo; i < hi; i++ {
		tm, am := b.tEns[i].Members, b.aEns[i].Members
		b.tEns[i].ForwardMembers(Z, ws.t[i])
		b.aEns[i].ForwardMembers(Z, ws.a[i])
		for c := range tm {
			ws.tOut[i][c] = ws.t[i][c].Out()
			ws.aOut[i][c] = ws.a[i][c].Out()
		}
		tCal, aCal := b.tCal[i], b.aCal[i]
		for j := 0; j < n; j++ {
			// Mean/std accumulation in member order, mirroring
			// nn.Ensemble.Predict exactly (bit-identity with the UCB
			// baseline depends on it).
			s, ss := 0.0, 0.0
			for c := range tm {
				v := ws.tOut[i][c].At(j, 0)
				s += v
				ss += v * v
			}
			mu := s / k
			va := ss/k - mu*mu
			if va < 0 {
				va = 0
			}
			tv := mu + risk*(tCal*math.Sqrt(va))
			if tv < 1e-4 {
				tv = 1e-4
			}
			s, ss = 0.0, 0.0
			for c := range am {
				v := ws.aOut[i][c].At(j, 0)
				s += v
				ss += v * v
			}
			mu = s / k
			va = ss/k - mu*mu
			if va < 0 {
				va = 0
			}
			av := mu - risk*(aCal*math.Sqrt(va))
			if av > 0.999 {
				av = 0.999
			}
			if risk > 0 && av < 1e-4 {
				av = 1e-4
			}
			That.Set(i, j, tv)
			Ahat.Set(i, j, av)
		}
	}
}

// Snapshot implements Backend: member networks deep-copy (reusing the
// target's weight buffers when provided), calibration scalars copy by
// value.
func (b *EnsembleBackend) Snapshot(into Backend) Backend {
	var t *EnsembleBackend
	if into == nil {
		t = NewEnsembleBackend(b.m, b.inDim, b.hidden, b.members, b.calibrate)
		for i := 0; i < b.m; i++ {
			t.tEns[i] = cloneEnsemble(b.tEns[i])
			t.aEns[i] = cloneEnsemble(b.aEns[i])
		}
	} else {
		t = into.(*EnsembleBackend)
		if t.m != b.m || t.members != b.members {
			// invariant: snapshot targets are prior Snapshots of this backend.
			panic("core: ensemble Snapshot into a different architecture")
		}
		for i := 0; i < b.m; i++ {
			copyEnsemble(t.tEns[i], b.tEns[i])
			copyEnsemble(t.aEns[i], b.aEns[i])
		}
	}
	copy(t.tCal, b.tCal)
	copy(t.aCal, b.aCal)
	return t
}

func cloneEnsemble(e *nn.Ensemble) *nn.Ensemble {
	if e == nil {
		return nil
	}
	out := &nn.Ensemble{Members: make([]*nn.MLP, len(e.Members))}
	for i, net := range e.Members {
		out.Members[i] = net.Clone()
	}
	return out
}

func copyEnsemble(dst, src *nn.Ensemble) {
	for i, net := range src.Members {
		dst.Members[i].CopyFrom(net)
	}
}

// Validate implements Backend.
func (b *EnsembleBackend) Validate(m, inDim int) error {
	if b.m != m {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "core: ensemble backend covers %d clusters, scenario has %d", b.m, m)
	}
	if b.inDim != inDim {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "core: ensemble backend expects %d-dim features, scenario has %d", b.inDim, inDim)
	}
	for i := 0; i < b.m; i++ {
		if b.tEns[i] == nil || b.aEns[i] == nil || len(b.tEns[i].Members) != b.members || len(b.aEns[i].Members) != b.members {
			return mfcperr.Wrap(mfcperr.ErrBadShape, "core: ensemble backend cluster %d is untrained or incomplete", i)
		}
	}
	return nil
}

// Pretrain implements Backend: per cluster and head, bootstrap ensembles
// trained exactly as the UCB baseline trains its (same stream splits, so
// the baseline's refactor onto this backend is bit-identical), followed —
// when calibration is on — by the deterministic spread calibration pass.
func (b *EnsembleBackend) Pretrain(ctx context.Context, s *workload.Scenario, train []int, epochs int, r *rng.Source) error {
	Z := s.FeaturesOf(train)
	dims := append([]int{s.Features.Cols}, b.hidden...)
	dims = append(dims, 1)
	trainCfg := nn.TrainMSEConfig{Epochs: epochs, BatchSize: 16}
	m := b.m
	parallel.ForChunked(2*m, 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			if ctx.Err() != nil {
				return
			}
			i := k / 2
			tv, av := s.LabelVectors(i, train)
			if k%2 == 0 {
				b.tEns[i] = nn.TrainEnsemble(b.members, dims, nn.ReLU, nn.Softplus, Z, tv, trainCfg, r.SplitIndexed("time", i))
			} else {
				b.aEns[i] = nn.TrainEnsemble(b.members, dims, nn.ReLU, nn.Sigmoid, Z, av, trainCfg, r.SplitIndexed("rel", i))
			}
		}
	})
	if ctx.Err() != nil {
		return mfcperr.Canceled("core.EnsembleBackend.Pretrain", context.Cause(ctx))
	}
	if b.calibrate {
		b.calibrateSpread(s, train, Z)
	}
	return nil
}

// calibrateSpread fits the per-cluster, per-head spread scales on the
// training split: mean |residual| over mean raw σ, so the reported spread
// is in the units of actual error instead of raw bootstrap disagreement.
// Deterministic (consumes no rng); degenerate spreads (σ̄ ≈ 0) keep scale 1.
func (b *EnsembleBackend) calibrateSpread(s *workload.Scenario, train []int, Z *mat.Dense) {
	parallel.ForChunked(b.m, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tv, av := s.LabelVectors(i, train)
			b.tCal[i] = spreadScale(b.tEns[i], Z, tv)
			b.aCal[i] = spreadScale(b.aEns[i], Z, av)
		}
	})
}

func spreadScale(e *nn.Ensemble, Z *mat.Dense, y mat.Vec) float64 {
	mu, sd := e.Predict(Z)
	resid, spread := 0.0, 0.0
	for j := range y {
		resid += math.Abs(y[j] - mu[j])
		spread += sd[j]
	}
	if spread <= 1e-12*float64(len(y)) || len(y) == 0 {
		return 1
	}
	return resid / spread
}

// Refit implements Backend: every member of an observed cluster's bags
// fine-tunes on an independent bootstrap resample of the replay+live rows
// (the same drift-corrected row construction as the MLP backend), keeping
// the bag's diversity while tracking the live regime. Per-member streams
// split deterministically from r, so the refit is worker-count invariant
// and safe to run on an async snapshot.
func (b *EnsembleBackend) Refit(s *workload.Scenario, train []int, live []Feedback, epochs int, r *rng.Source) {
	perCluster := make([][]Feedback, b.m)
	for _, ob := range live {
		perCluster[ob.Cluster] = append(perCluster[ob.Cluster], ob)
	}
	const liveWeight = 3
	parallel.ForChunked(b.m, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			obs := perCluster[i]
			if len(obs) < 4 {
				continue // too little signal to fine-tune on
			}
			X, tTargets, aTargets := refitRows(s, train, obs, i, liveWeight)
			refitEnsemble(b.tEns[i], X, tTargets, epochs, r.SplitIndexed("time", i))
			refitEnsemble(b.aEns[i], X, aTargets, epochs, r.SplitIndexed("rel", i))
		}
	})
}

func refitEnsemble(e *nn.Ensemble, X *mat.Dense, y mat.Vec, epochs int, r *rng.Source) {
	n := X.Rows
	XB := mat.NewDense(n, X.Cols)
	YB := mat.NewVec(n)
	for m, net := range e.Members {
		mr := r.SplitIndexed("member", m)
		br := mr.Split("bootstrap")
		for j := 0; j < n; j++ {
			s := br.Intn(n)
			copy(XB.Row(j), X.Row(s))
			YB[j] = y[s]
		}
		cfg := nn.TrainMSEConfig{Epochs: epochs, BatchSize: 16, Optimizer: nn.NewAdam(5e-4)}
		nn.TrainMSE(net, XB, YB, cfg, mr.Split("train"))
	}
}

// AppendBackend implements Backend.
func (b *EnsembleBackend) AppendBackend(buf []byte) []byte {
	buf = binenc.AppendU8(buf, ensembleBackendCodecVersion)
	buf = binenc.AppendU32(buf, uint32(b.m))
	buf = binenc.AppendU32(buf, uint32(b.inDim))
	buf = binenc.AppendU32(buf, uint32(b.members))
	buf = binenc.AppendU32(buf, uint32(len(b.hidden)))
	for _, h := range b.hidden {
		buf = binenc.AppendU32(buf, uint32(h))
	}
	for i := 0; i < b.m; i++ {
		for _, net := range b.tEns[i].Members {
			buf = net.AppendBinary(buf)
		}
		for _, net := range b.aEns[i].Members {
			buf = net.AppendBinary(buf)
		}
	}
	buf = binenc.AppendF64s(buf, b.tCal)
	buf = binenc.AppendF64s(buf, b.aCal)
	return buf
}

func decodeEnsembleBackend(r *binenc.Reader) (Backend, error) {
	if v := r.U8(); r.Err() == nil && v != ensembleBackendCodecVersion {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: ensemble backend codec version %d, want %d", v, ensembleBackendCodecVersion)
	}
	m := int(r.U32())
	inDim := int(r.U32())
	members := int(r.U32())
	nh := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if m < 0 || m > maxCheckpointEntries || members < 1 || members > maxCheckpointEntries || nh < 0 || nh > 64 {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: ensemble backend with %d clusters, %d members, %d hidden layers", m, members, nh)
	}
	hidden := make([]int, nh)
	for k := range hidden {
		hidden[k] = int(r.U32())
	}
	b := NewEnsembleBackend(m, inDim, hidden, members, true)
	for i := 0; i < m; i++ {
		b.tEns[i] = &nn.Ensemble{Members: make([]*nn.MLP, members)}
		b.aEns[i] = &nn.Ensemble{Members: make([]*nn.MLP, members)}
		for c := 0; c < members; c++ {
			net, err := nn.ReadMLP(r)
			if err != nil {
				return nil, err
			}
			b.tEns[i].Members[c] = net
		}
		for c := 0; c < members; c++ {
			net, err := nn.ReadMLP(r)
			if err != nil {
				return nil, err
			}
			b.aEns[i].Members[c] = net
		}
	}
	tCal := r.F64s()
	aCal := r.F64s()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if len(tCal) != m || len(aCal) != m {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: ensemble backend calibration length %d/%d, want %d", len(tCal), len(aCal), m)
	}
	copy(b.tCal, tCal)
	copy(b.aCal, aCal)
	return b, nil
}
