package core

import (
	"context"
	"math"

	"mfcp/internal/cluster"
	"mfcp/internal/diffopt"
	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/mfcperr"
	"mfcp/internal/nn"
	"mfcp/internal/obs"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
	"mfcp/internal/workload"
)

// Kind selects the gradient route through the matching argmin.
type Kind int

const (
	// AD is MFCP with analytical differentiation via the KKT system
	// (convex sequential setting only).
	AD Kind = iota
	// FG is MFCP with zeroth-order forward gradients (Algorithm 2); it
	// also covers the non-convex parallel setting.
	FG
	// UR is MFCP with unrolled differentiation — backpropagation through
	// the mirror-descent iterations themselves. Not a paper variant; an
	// extension used by the gradient-route ablation (DESIGN.md X5).
	UR
)

// String names the trainer kind as the paper does.
func (k Kind) String() string {
	switch k {
	case AD:
		return "MFCP-AD"
	case UR:
		return "MFCP-UR"
	default:
		return "MFCP-FG"
	}
}

// MatchConfig bundles the matching hyperparameters shared by training and
// evaluation so every method optimizes the identical downstream problem.
type MatchConfig struct {
	// Gamma is the reliability threshold γ (default 0.8).
	Gamma float64
	// Beta is the LSE smoothing β (default 10).
	Beta float64
	// Lambda is the barrier weight λ (default 0.05).
	Lambda float64
	// Entropy is the regularizer ρ used while differentiating. Zero means
	// "pick per gradient route": 0.02 for AD/UR, 0.08 for convex FG, 0.15
	// for non-convex FG.
	Entropy float64
	// Norm selects the reliability normalization (default NormPerTask).
	Norm matching.NormKind
	// Objective selects the time cost function (default SmoothMakespan;
	// LinearSum reproduces ablation row 1).
	Objective matching.ObjectiveKind
	// Barrier selects the constraint treatment (default LogBarrier;
	// HardPenalty reproduces ablation row 2).
	Barrier matching.BarrierKind
	// Speedups enables the parallel-execution setting when non-nil.
	Speedups []cluster.SpeedupCurve
	// SolveIters budgets the inner solver (default 200).
	SolveIters int
	// SolveTol is the relaxed solver's early-stop tolerance on
	// ‖X_{k+1} − X_k‖∞ (default 0 = the solver's own 1e-7). Serving loops
	// loosen it so convergence — and therefore the warm-start iteration
	// savings — lands inside the SolveIters budget.
	SolveTol float64

	// TopK enables the production-dimension sparse matching path when
	// positive: predictor screening keeps each task's TopK
	// fastest-predicted clusters (plus its best-reliability cluster) and
	// the solve walks candidate lists instead of dense rows. Zero keeps
	// the dense path. TopK ≥ M degenerates to the dense solution exactly
	// (bit-for-bit; see matching.PruneTopK).
	TopK int
	// Cells partitions clusters into that many cells solved in parallel
	// with cross-cell capacity reconciliation (hierarchical solve;
	// meaningful with TopK > 0). Zero or one solves the pruned problem in
	// one piece.
	Cells int
	// WarmStart makes the serving engine carry each round's relaxed
	// solution into the next round's solve as the initial iterate. Online
	// assignments drift slowly, so warm solves converge in measurably
	// fewer iterations (surfaced via Workspace.Info and the
	// mfcp_solver_iters_warm gauge). Training and one-shot solves ignore
	// it.
	WarmStart bool
	// RiskAversion shifts serving-time predictions by this many calibrated
	// standard deviations in the pessimistic direction (execution time up,
	// reliability down) before the matcher sees them, so the solve optimizes
	// a lower confidence bound on performance instead of the mean. Zero —
	// the default — serves the calibrated mean. A positive value requires a
	// backend that quantifies uncertainty (core.UncertaintyBackend, e.g. the
	// bootstrap ensemble); the engine rejects the combination otherwise.
	// Training ignores it.
	RiskAversion float64
	// ScreenStaleTol enables incremental screening in the serving engine
	// (requires TopK > 0): a round slot's candidate set is carried over
	// from the previous screen when neither of its predicted columns moved
	// by more than this ∞-norm tolerance since the set was selected. Zero
	// — the default — re-screens every task exactly. The carried reference
	// is invalidated whenever a refit publishes a new predictor version
	// (the same rule warm starts use), and entry values are always the
	// current predictions — only set membership tolerates staleness, so a
	// dropped cluster can beat the worst kept one by at most 2·tol.
	// Training ignores it.
	ScreenStaleTol float64
}

// FillDefaults populates zero fields with the defaults above.
func (mc *MatchConfig) FillDefaults() {
	if mc.Gamma == 0 {
		mc.Gamma = 0.8
	}
	if mc.Beta == 0 {
		mc.Beta = 10
	}
	if mc.Lambda == 0 {
		mc.Lambda = 0.05
	}
	// Entropy is deliberately NOT defaulted here: it is a training-time
	// regularizer whose right value depends on the gradient route and the
	// convexity regime, so Config.fillDefaults owns it (kind-aware).
	if mc.SolveIters == 0 {
		mc.SolveIters = 200
	}
}

// Validate rejects hyperparameters outside their admissible ranges. It runs
// after FillDefaults, so zero values for defaulted fields never reach it.
func (mc *MatchConfig) Validate() error {
	if mc.Gamma <= 0 || mc.Gamma > 1 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Gamma %g outside (0,1]", mc.Gamma)
	}
	if mc.Beta <= 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Beta %g must be positive", mc.Beta)
	}
	if mc.Lambda < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Lambda %g must be non-negative", mc.Lambda)
	}
	if mc.Entropy < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Entropy %g must be non-negative", mc.Entropy)
	}
	if mc.SolveIters < 1 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: SolveIters %d must be at least 1", mc.SolveIters)
	}
	if mc.SolveTol < 0 || math.IsInf(mc.SolveTol, 0) || math.IsNaN(mc.SolveTol) {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: SolveTol %g must be finite and non-negative", mc.SolveTol)
	}
	if mc.TopK < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: TopK %d must be non-negative", mc.TopK)
	}
	if mc.Cells < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Cells %d must be non-negative", mc.Cells)
	}
	if mc.Cells > 1 && mc.TopK == 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Cells %d requires the sparse path (TopK > 0)", mc.Cells)
	}
	if mc.ScreenStaleTol < 0 || math.IsInf(mc.ScreenStaleTol, 0) || math.IsNaN(mc.ScreenStaleTol) {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: ScreenStaleTol %g must be finite and non-negative", mc.ScreenStaleTol)
	}
	if mc.ScreenStaleTol > 0 && mc.TopK == 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: ScreenStaleTol %g requires the sparse path (TopK > 0)", mc.ScreenStaleTol)
	}
	if mc.RiskAversion < 0 || math.IsInf(mc.RiskAversion, 0) || math.IsNaN(mc.RiskAversion) {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: RiskAversion %g must be finite and non-negative", mc.RiskAversion)
	}
	return nil
}

// Sparse reports whether the production-dimension sparse path is enabled.
func (mc MatchConfig) Sparse() bool { return mc.TopK > 0 }

// Problem builds a matching problem over (T, A) with this configuration.
// Entropy is NOT applied here; trainers opt in explicitly.
func (mc MatchConfig) Problem(T, A *mat.Dense) *matching.Problem {
	p := matching.NewProblem(T, A)
	p.Gamma = mc.Gamma
	p.Beta = mc.Beta
	p.Lambda = mc.Lambda
	p.Norm = mc.Norm
	p.Objective = mc.Objective
	p.Barrier = mc.Barrier
	p.Speedups = mc.Speedups
	return p
}

// Solve runs the standard pipeline on a problem built from (T, A): relaxed
// solve, round, repair. All methods in the evaluation share this matcher.
func (mc MatchConfig) Solve(T, A *mat.Dense) []int {
	return mc.SolveWS(T, A, nil)
}

// SolveWS is Solve with a caller-owned matching workspace, so a serving
// loop that keeps one workspace per shard pays no solver allocations per
// round. The returned assignment is freshly allocated (it outlives the
// workspace); the relaxed iterate stays in ws and is invalidated by the
// workspace's next use. A nil ws allocates fresh buffers, exactly like
// Solve.
func (mc MatchConfig) SolveWS(T, A *mat.Dense, ws *matching.Workspace) []int {
	assign, _ := mc.SolveWSInfo(T, A, ws)
	return assign
}

// SolveWSInfo is SolveWS plus the repair telemetry record. The relaxed
// solver's own convergence record lands in ws.Info (when ws is non-nil);
// read both before the workspace's next solve.
func (mc MatchConfig) SolveWSInfo(T, A *mat.Dense, ws *matching.Workspace) ([]int, matching.RepairInfo) {
	return mc.SolveWSInfoInit(T, A, ws, nil)
}

// SolveWSInfoInit is SolveWSInfo with an optional warm-start iterate: a
// non-nil init (e.g. the previous round's relaxed solution) seeds the
// solver instead of the uniform start. The engine's warm-start path; a nil
// init is exactly SolveWSInfo.
func (mc MatchConfig) SolveWSInfoInit(T, A *mat.Dense, ws *matching.Workspace, init *mat.Dense) ([]int, matching.RepairInfo) {
	p := mc.Problem(T, A)
	X := matching.SolveRelaxedWS(p, matching.SolveOptions{Iters: mc.SolveIters, Tol: mc.SolveTol, Init: init}, ws)
	return matching.RepairWithInfo(p, matching.Round(X))
}

// ProblemChecked is Problem for externally supplied matrices: shape
// mismatches return an mfcperr.ErrBadShape-wrapped error instead of
// panicking. The facade's input-reachable entry points route through it.
func (mc MatchConfig) ProblemChecked(T, A *mat.Dense) (*matching.Problem, error) {
	p, err := matching.NewProblemChecked(T, A)
	if err != nil {
		return nil, err
	}
	p.Gamma = mc.Gamma
	p.Beta = mc.Beta
	p.Lambda = mc.Lambda
	p.Norm = mc.Norm
	p.Objective = mc.Objective
	p.Barrier = mc.Barrier
	p.Speedups = mc.Speedups
	return p, nil
}

// Screen prunes predicted matrices (T̂, Â) — typically filled by
// PredictorSet.PredictInto — down to the TopK candidate clusters per task,
// the screening stage of the production-dimension pipeline. The predictors
// themselves are the ranking function: screening costs one pass over the
// already-computed predictions, no extra inference.
func (mc MatchConfig) Screen(T, A *mat.Dense) (*matching.SparseProblem, error) {
	if mc.TopK < 1 {
		return nil, mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Screen requires TopK > 0, have %d", mc.TopK)
	}
	p, err := mc.ProblemChecked(T, A)
	if err != nil {
		return nil, err
	}
	return matching.PruneTopKChecked(p, mc.TopK)
}

// ScreenWS is Screen through a reusable matching.ScreenWorkspace: the
// selection shards across parallel.Workers() and allocates nothing once
// the workspace is warmed, producing a bit-identical problem to Screen.
// The result aliases the workspace (valid until its next use).
func (mc MatchConfig) ScreenWS(T, A *mat.Dense, ws *matching.ScreenWorkspace) (*matching.SparseProblem, error) {
	sp, _, err := mc.ScreenIncrementalWS(T, A, nil, ws)
	return sp, err
}

// ScreenIncrementalWS is ScreenWS carrying the previous screen in ref:
// with ScreenStaleTol > 0 and a valid reference, tasks whose predictions
// stayed within the tolerance reuse their reference candidate sets
// (revalued at the current predictions) instead of re-screening. reused
// reports how many tasks took that path; it is 0 whenever the call
// degrades to the exact full screen (nil or invalidated ref, or
// ScreenStaleTol == 0). See matching.PruneTopKIncrementalWS for the
// staleness contract.
func (mc MatchConfig) ScreenIncrementalWS(T, A *mat.Dense, ref *matching.ScreenRef, ws *matching.ScreenWorkspace) (*matching.SparseProblem, int, error) {
	if mc.TopK < 1 {
		return nil, 0, mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Screen requires TopK > 0, have %d", mc.TopK)
	}
	p, err := mc.ProblemChecked(T, A)
	if err != nil {
		return nil, 0, err
	}
	return matching.PruneTopKIncrementalWS(p, mc.TopK, mc.ScreenStaleTol, ref, ws)
}

// SparseAutoThreshold is the dense-pair count (M·N) above which the
// one-shot entry points (mfcp.Match/ExactMatch) and the platform engine
// route through the sparse screening path by default. 2^18 pairs ≈ a
// 2 MB dense iterate — comfortably dense territory below it, and past it
// screening costs less than the dense solve it avoids.
const SparseAutoThreshold = 1 << 18

// AutoSparseTopK returns the TopK an auto-routed sparse solve should use
// for an m-cluster, n-task instance: 0 (stay dense) when m·n is at or
// under SparseAutoThreshold, otherwise min(m, 32) — wide enough that
// screening rarely bites quality, narrow enough to keep the candidate
// lists flat.
func AutoSparseTopK(m, n int) int {
	if m <= 0 || n <= 0 || m*n <= SparseAutoThreshold {
		return 0
	}
	if m < 32 {
		return m
	}
	return 32
}

// SolveSparseWS runs the production-dimension pipeline on predicted
// matrices: screen → (hierarchical) cell solve → capacity reconcile →
// bounded sparse repair. init optionally warm-starts the relaxed solve in
// the sparse problem's CSR entry order (see matching.SolveHierarchical);
// hw carries the per-cell workspaces across rounds. The HierResult exposes
// the relaxed iterate (the next round's warm-start carrier), convergence
// info, and reconcile/repair accounting.
func (mc MatchConfig) SolveSparseWS(T, A *mat.Dense, hw *matching.HierWorkspace, init []float64) (*matching.SparseProblem, matching.HierResult, error) {
	sp, err := mc.Screen(T, A)
	if err != nil {
		return nil, matching.HierResult{}, err
	}
	res := matching.SolveHierarchical(sp, matching.HierOptions{
		Cells:  mc.Cells,
		Solve:  matching.SolveOptions{Iters: mc.SolveIters, Tol: mc.SolveTol},
		Init:   init,
		Repair: true,
	}, hw)
	return sp, res, nil
}

// Config parameterizes MFCP training.
type Config struct {
	// Kind selects MFCP-AD or MFCP-FG.
	Kind Kind
	// Hidden is the predictor hidden architecture (default [16]).
	Hidden []int
	// PretrainEpochs is the MSE warm-start budget (default 200; this phase
	// alone is exactly the two-stage baseline's training).
	PretrainEpochs int
	// Epochs is the end-to-end regret-descent budget (default 240).
	Epochs int
	// RoundSize is the number of tasks per simulated allocation round
	// (default 5, the paper's headline configuration).
	RoundSize int
	// LR is the regret-phase Adam learning rate (default 3e-3, tuned on validation scenarios).
	LR float64
	// GradClip bounds per-epoch predictor gradients (default 1).
	GradClip float64
	// Match configures the downstream matching problem.
	Match MatchConfig
	// ZO configures Algorithm 2's estimator (FG only).
	ZO diffopt.ZeroOrderConfig
	// Unroll configures backprop-through-the-solver (UR only).
	Unroll diffopt.UnrollConfig
	// RowWise follows Algorithm 2 literally: when training cluster i, the
	// other rows of T̂, Â are replaced by measured values (default true for
	// FG). When false, all rows stay predicted and FullVJP is used.
	RowWise *bool
	// Alternate fixes φ while stepping ω and vice versa, per §3.3
	// (default true).
	Alternate *bool
	// MSEAnchor is the weight μ of an auxiliary MSE term kept alongside the
	// regret loss during the end-to-end phase (default 0.05). Pure regret
	// descent lets a flexible predictor distort its outputs arbitrarily as
	// long as training-round decisions stay right, which generalizes poorly;
	// the anchor realizes the paper's Fig. 2 intuition — REWEIGHT errors
	// toward decision-relevant tasks rather than abandon accuracy. Set
	// negative to disable entirely.
	MSEAnchor float64
	// ValRounds is the number of held-out validation rounds used for early
	// stopping of the regret phase (default 8; 0 keeps the default, set
	// negative to disable early stopping). Validation rounds draw from a
	// task subset disjoint from the regret-training rounds, so the early
	// stop measures transfer, not memorization.
	ValRounds int
	// CheckEvery is the early-stopping cadence in epochs (default 5).
	CheckEvery int
	// ValFrac is the fraction of training tasks reserved for validation
	// rounds (default 0.25).
	ValFrac float64
	// Warm optionally seeds the predictors from an existing set (cloned,
	// never mutated), skipping the MSE pretrain. This lets experiments
	// start MFCP from exactly the two-stage baseline's weights so the
	// comparison isolates the regret-descent phase.
	Warm *PredictorSet
	// Telemetry optionally receives training instruments (phase timers,
	// epoch counters, rolling regret gauges). Nil disables recording; the
	// training trajectory is identical either way.
	Telemetry *obs.Registry
}

func boolPtr(b bool) *bool { return &b }

func (c *Config) fillDefaults() {
	if c.Hidden == nil {
		c.Hidden = []int{16}
	}
	if c.PretrainEpochs == 0 {
		c.PretrainEpochs = 200
	}
	if c.Epochs == 0 {
		c.Epochs = 240
	}
	if c.RoundSize == 0 {
		c.RoundSize = 5
	}
	if c.LR == 0 {
		c.LR = 3e-3
	}
	if c.MSEAnchor == 0 {
		c.MSEAnchor = 0.05
	}
	if c.ValRounds == 0 {
		c.ValRounds = 8
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 5
	}
	if c.ValFrac == 0 {
		c.ValFrac = 0.25
	}
	if c.GradClip == 0 {
		c.GradClip = 1
	}
	if c.Kind == FG {
		// Zeroth-order defaults tuned on validation scenarios: a larger
		// perturbation (Δ=0.3) with a stronger entropy smoothing (ρ=0.08)
		// lets each Gaussian probe cross assignment-vertex plateaus, turning
		// the estimator into a smoothed perturbed-optimizer gradient (cf.
		// Berthet et al. 2020). Theorem 3's Δ* = (2σ²_F/β²S)^{1/4} lands in
		// the same range for the observed σ_F. The non-convex parallel
		// setting benefits from even heavier smoothing (its landscape has
		// packing/spreading local optima the probes must see across).
		nonConvex := false
		for _, sp := range c.Match.Speedups {
			if !sp.IsTrivial() {
				nonConvex = true
			}
		}
		if c.ZO.Delta == 0 {
			if nonConvex {
				c.ZO.Delta = 0.5
			} else {
				c.ZO.Delta = 0.3
			}
		}
		if c.ZO.Samples == 0 {
			c.ZO.Samples = 16
		}
		if c.Match.Entropy == 0 {
			if nonConvex {
				c.Match.Entropy = 0.15
			} else {
				c.Match.Entropy = 0.08
			}
		}
	}
	c.Match.FillDefaults()
	if c.Match.Entropy == 0 {
		// AD and UR need a positive entropy for a nonsingular system; the
		// FG branch above already chose its own value.
		c.Match.Entropy = 0.02
	}
	if c.RowWise == nil {
		// Algorithm 2 as printed perturbs one cluster row at a time with
		// the other rows pinned to measured values. Perturbing the full
		// predicted matrices (the natural batch extension when every
		// cluster's predictors train together) measured consistently lower
		// test regret, so it is the default; set RowWise for the literal
		// per-row scheme.
		c.RowWise = boolPtr(false)
	}
	if c.Alternate == nil {
		c.Alternate = boolPtr(true)
	}
}

// Validate rejects configurations outside their admissible ranges. Like
// MatchConfig.Validate it runs after fillDefaults; TrainCtx calls both, so
// any bad value reaches the caller as an mfcperr.ErrBadConfig error instead
// of corrupting a run.
func (c *Config) Validate() error {
	for _, h := range c.Hidden {
		if h < 1 {
			return mfcperr.Wrap(mfcperr.ErrBadConfig, "core: hidden layer width %d must be at least 1", h)
		}
	}
	if c.PretrainEpochs < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "core: PretrainEpochs %d must be non-negative", c.PretrainEpochs)
	}
	if c.Epochs < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "core: Epochs %d must be non-negative", c.Epochs)
	}
	if c.RoundSize < 1 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "core: RoundSize %d must be at least 1", c.RoundSize)
	}
	if c.LR <= 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "core: LR %g must be positive", c.LR)
	}
	if c.GradClip <= 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "core: GradClip %g must be positive", c.GradClip)
	}
	if c.Kind == FG {
		if err := c.ZO.Validate(); err != nil {
			return err
		}
	}
	return c.Match.Validate()
}

// Trainer is a trained MFCP model: per-cluster predictors plus the matching
// configuration they were optimized against.
type Trainer struct {
	Cfg  Config
	Set  *PredictorSet
	Scen *workload.Scenario
	// History records the training regret (discrete, against measured
	// ground truth) per end-to-end epoch.
	History []float64
	// SkippedEpochs counts epochs whose gradient was unavailable (KKT
	// boundary/singularity); they are reported, not hidden.
	SkippedEpochs int
	// ValRegret is the best validation regret achieved (when early
	// stopping is enabled).
	ValRegret float64
	// Stopped names the phase a canceled TrainCtx run was interrupted in
	// ("pretrain" or "regret"); empty for runs that completed normally.
	// A stopped trainer is still valid: its Set holds the best weights
	// reached before cancellation.
	Stopped string

	name string
	// ws and wsOracle are the reusable matching workspaces for the
	// per-epoch relaxed solves (prediction-driven and oracle/row-wise
	// respectively — two, because the prediction optimum X lives in ws
	// while the oracle solve runs). The round dimensions repeat every
	// epoch, so the buffers are allocated once per training run.
	ws       *matching.Workspace
	wsOracle *matching.Workspace
	// NN workspaces for the regret phase, mirroring the matching ones: the
	// per-cluster forward tapes, predicted matrices, per-cluster backprop
	// state, and the MSE-anchor scratch are all allocated once and reshaped
	// per epoch.
	tp               tapes
	that, ahat       *mat.Dense
	dOut             []*mat.Dense
	gTime, gRel      []*nn.Grads
	anchorT, anchorA *mat.Dense
	// wBuf and wiBuf hold ∂L/∂X gradients (the loss seed for the implicit
	// differentiation); one for the prediction-driven optimum, one reused
	// across the row-wise solves. tmix and amix stage the measured-with-one-
	// predicted-row matrices Algorithm 2's row-wise estimator solves against.
	wBuf, wiBuf *mat.Dense
	tmix, amix  *mat.Dense
}

// Name identifies the method in experiment tables.
func (tr *Trainer) Name() string { return tr.name }

// Predict returns (T̂, Â) for the given pool indices.
func (tr *Trainer) Predict(round []int) (T, A *mat.Dense) {
	return tr.Set.Predict(tr.Scen.FeaturesOf(round))
}

// Train runs the full MFCP pipeline on the scenario's training indices and
// returns the trained model. It is TrainCtx without cancellation; use
// TrainCtx to get error returns instead of panics on a bad configuration.
func Train(s *workload.Scenario, train []int, cfg Config) *Trainer {
	tr, err := TrainCtx(context.Background(), s, train, cfg)
	if err != nil {
		// invariant: a background context never cancels, so the only errors
		// here are configuration mistakes by internal callers.
		panic(err)
	}
	return tr
}

// NewTrainerFromSet wraps an existing predictor set (cloned, never mutated)
// as a ready-to-serve Trainer without running any training. Checkpoint
// resume uses it to restore MFCP methods from saved weights.
func NewTrainerFromSet(s *workload.Scenario, set *PredictorSet, cfg Config) *Trainer {
	cfg.fillDefaults()
	return &Trainer{Cfg: cfg, Set: set.Clone(), Scen: s, name: cfg.Kind.String()}
}

// TrainCtx is Train with validation and cooperative cancellation. The
// context is checked at phase boundaries: per network during the MSE warm
// start and per epoch during regret descent, so cancellation never tears a
// half-applied optimizer step. On cancellation it still runs the normal
// validation-restore finalization and returns the partial trainer — with
// Stopped naming the interrupted phase — alongside an
// mfcperr.ErrCanceled-wrapped error.
func TrainCtx(ctx context.Context, s *workload.Scenario, train []int, cfg Config) (*Trainer, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(train) < cfg.RoundSize {
		return nil, mfcperr.Wrap(mfcperr.ErrInfeasible, "core: %d training tasks cannot fill a round of %d", len(train), cfg.RoundSize)
	}
	tr := &Trainer{Cfg: cfg, Scen: s, name: cfg.Kind.String()}
	stream := s.Stream("mfcp-" + cfg.Kind.String())
	met := newTrainerMetrics(cfg.Telemetry)

	// Phase 1: MSE warm start (identical to the two-stage baseline), or a
	// caller-provided warm set.
	if cfg.Warm != nil {
		tr.Set = cfg.Warm.Clone()
	} else {
		tr.Set = NewPredictorSet(s.M(), s.Features.Cols, cfg.Hidden, stream.Split("init"))
		sp := met.pretrain.Start()
		err := PretrainMSECtx(ctx, tr.Set, s, train, cfg.PretrainEpochs, stream.Split("pretrain"))
		sp.End()
		if err != nil {
			tr.Stopped = "pretrain"
			return tr, err
		}
	}

	// Phase 2: end-to-end regret descent.
	timeOpts := make([]nn.Optimizer, s.M())
	relOpts := make([]nn.Optimizer, s.M())
	for i := range timeOpts {
		timeOpts[i] = nn.NewAdam(cfg.LR)
		relOpts[i] = nn.NewAdam(cfg.LR)
	}
	roundStream := stream.Split("rounds")
	gradStream := stream.Split("grads")

	// Per-cluster regret-phase workspaces (tapes live in tr.tp, sized on
	// first forward; the backprop state is sized here).
	tr.that, tr.ahat = new(mat.Dense), new(mat.Dense)
	tr.anchorT, tr.anchorA = new(mat.Dense), new(mat.Dense)
	tr.dOut = make([]*mat.Dense, s.M())
	tr.gTime = make([]*nn.Grads, s.M())
	tr.gRel = make([]*nn.Grads, s.M())
	for i := 0; i < s.M(); i++ {
		tr.dOut[i] = new(mat.Dense)
		tr.gTime[i] = tr.Set.Preds[i].Time.NewGrads()
		tr.gRel[i] = tr.Set.Preds[i].Rel.NewGrads()
	}

	// Early stopping: validation rounds drawn from a task subset the
	// regret descent never trains on; the best-scoring snapshot wins.
	fitIdx := train
	var valRounds [][]int
	if cfg.ValRounds > 0 {
		valStream := stream.Split("validation")
		perm := valStream.Perm(len(train))
		cut := int(float64(len(train)) * (1 - cfg.ValFrac))
		if cut < cfg.RoundSize {
			cut = min(cfg.RoundSize, len(train))
		}
		fitIdx = make([]int, 0, cut)
		valIdx := make([]int, 0, len(train)-cut)
		for k, pi := range perm {
			if k < cut {
				fitIdx = append(fitIdx, train[pi])
			} else {
				valIdx = append(valIdx, train[pi])
			}
		}
		if len(valIdx) < cfg.RoundSize {
			valIdx = train // degenerate split; fall back to shared tasks
		}
		for v := 0; v < cfg.ValRounds; v++ {
			valRounds = append(valRounds, s.SampleRound(valIdx, cfg.RoundSize, valStream))
		}
	}
	bestVal := tr.validationRegret(valRounds)
	bestSet := tr.Set.Clone()

	canceled := false
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if ctx.Err() != nil {
			canceled = true
			break
		}
		sp := met.epoch.Start()
		round := s.SampleRound(fitIdx, cfg.RoundSize, roundStream)
		Z := s.FeaturesOf(round)
		Tm, Am := s.MeasuredMatrices(round)
		trueProb := cfg.Match.Problem(Tm, Am)

		tr.Set.forward(Z, &tr.tp, tr.that, tr.ahat)
		That, Ahat := tr.that, tr.ahat
		dT, dA, trainRegret, err := tr.matchingGrads(trueProb, That, Ahat, Tm, Am, gradStream.SplitIndexed("epoch", epoch))
		tr.History = append(tr.History, trainRegret)
		met.epochs.Inc()
		met.trainRegret.Set(trainRegret)
		if err != nil {
			tr.SkippedEpochs++
			met.skipped.Inc()
			sp.End()
			continue
		}
		if cfg.MSEAnchor > 0 {
			// Auxiliary MSE gradient keeps predictions anchored to the
			// measurements while the regret term reweights them. The
			// residuals build in reusable scratch instead of cloning.
			n := float64(len(round))
			scale := cfg.MSEAnchor * 2 / n
			tr.anchorT.Reshape(That.Rows, That.Cols).CopyFrom(That)
			dT.AddScaled(scale, tr.anchorT.AddScaled(-1, Tm))
			tr.anchorA.Reshape(Ahat.Rows, Ahat.Cols).CopyFrom(Ahat)
			dA.AddScaled(scale, tr.anchorA.AddScaled(-1, Am))
		}

		updateTime := true
		updateRel := true
		if *cfg.Alternate {
			updateTime = epoch%2 == 0
			updateRel = !updateTime
		}
		n := len(round)
		parallel.ForChunked(s.M(), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dOut := tr.dOut[i].Reshape(n, 1)
				if updateTime {
					for j := 0; j < n; j++ {
						dOut.Set(j, 0, dT.At(i, j))
					}
					g := tr.gTime[i]
					g.Zero()
					tr.Set.Preds[i].Time.Backward(tr.tp.time[i], dOut, g)
					nn.ClipGrads(g, cfg.GradClip)
					timeOpts[i].Step(tr.Set.Preds[i].Time, g)
				}
				if updateRel {
					for j := 0; j < n; j++ {
						dOut.Set(j, 0, dA.At(i, j))
					}
					g := tr.gRel[i]
					g.Zero()
					tr.Set.Preds[i].Rel.Backward(tr.tp.rel[i], dOut, g)
					nn.ClipGrads(g, cfg.GradClip)
					relOpts[i].Step(tr.Set.Preds[i].Rel, g)
				}
			}
		})

		if len(valRounds) > 0 && (epoch+1)%cfg.CheckEvery == 0 {
			if v := tr.validationRegret(valRounds); v < bestVal {
				bestVal = v
				bestSet = tr.Set.Clone()
			}
			met.valRegret.Set(bestVal)
		}
		sp.End()
	}
	if len(valRounds) > 0 {
		// Final check, then restore the best snapshot seen. This runs on
		// cancellation too, so a canceled run still hands back its best
		// validated weights rather than whatever epoch it stopped in.
		if v := tr.validationRegret(valRounds); v < bestVal {
			bestVal = v
			bestSet = tr.Set.Clone()
		}
		tr.Set = bestSet
		tr.ValRegret = bestVal
		met.valRegret.Set(bestVal)
	}
	if canceled {
		tr.Stopped = "regret"
		return tr, mfcperr.Canceled("core.Train", context.Cause(ctx))
	}
	return tr, nil
}

// validationRegret scores the current predictors on the held-out rounds:
// mean discrete regret against the measured ground truth. Rounds are
// independent (each builds its own problems and workspaces), so they
// evaluate in parallel; the final reduction sums in round order, keeping the
// result deterministic regardless of worker count.
func (tr *Trainer) validationRegret(valRounds [][]int) float64 {
	if len(valRounds) == 0 {
		return 0
	}
	perRound := parallel.Map(len(valRounds), func(k int) float64 {
		round := valRounds[k]
		Z := tr.Scen.FeaturesOf(round)
		Tm, Am := tr.Scen.MeasuredMatrices(round)
		trueProb := tr.Cfg.Match.Problem(Tm, Am)
		That, Ahat := tr.Set.Predict(Z)
		assign := tr.Cfg.Match.Solve(That, Ahat)
		_, oracle := matching.Solve(trueProb, matching.SolveOptions{Iters: tr.Cfg.Match.SolveIters})
		return (trueProb.DiscreteCost(assign) - trueProb.DiscreteCost(oracle)) / float64(len(round))
	})
	total := 0.0
	for _, v := range perRound {
		total += v
	}
	return total / float64(len(valRounds))
}

// matchingGrads computes dL/dT̂ and dL/dÂ for one training round, plus the
// round's discrete training regret. The loss is equation (12)'s upper
// level: L = (1/N)·(F(X*(T̂,Â); T, A) − F(X*(T,A); T, A)); only the first
// term depends on the predictors, and ∂L/∂X* = (1/N)·∇_X F_true evaluated
// at the prediction-driven optimum.
func (tr *Trainer) matchingGrads(trueProb *matching.Problem, That, Ahat, Tm, Am *mat.Dense, r *rng.Source) (dT, dA *mat.Dense, trainRegret float64, err error) {
	cfg := tr.Cfg
	invN := 1 / float64(That.Cols)
	if tr.ws == nil {
		tr.ws = matching.NewWorkspace(That.Rows, That.Cols)
		tr.wsOracle = matching.NewWorkspace(That.Rows, That.Cols)
		tr.wBuf = new(mat.Dense)
		tr.wiBuf = new(mat.Dense)
		tr.tmix = new(mat.Dense)
		tr.amix = new(mat.Dense)
	}

	// Prediction-driven optimum with the entropy regularizer active so the
	// argmin is differentiable (see matching.Problem.Entropy). X lives in
	// tr.ws until the end of this call; the oracle and row-wise solves
	// below use tr.wsOracle so they cannot clobber it.
	predProb := cfg.Match.Problem(That, Ahat)
	predProb.Entropy = cfg.Match.Entropy
	X := matching.SolveRelaxedWS(predProb, matching.SolveOptions{Iters: cfg.Match.SolveIters}, tr.ws)

	// Loss gradient w.r.t. the matching: (1/N)·∇_X F under true values.
	// tr.ws was just reset by the solve above, so its loads/weights scratch
	// is sized for the round and free to reuse here.
	w := trueProb.GradXWS(X, tr.wBuf.Reshape(That.Rows, That.Cols), tr.ws)
	w.Scale(invN)

	// Training regret for the history curve (discrete, vs measured truth),
	// with the oracle produced by the same matching pipeline (eq. 6).
	predAssign := matching.Repair(predProb, matching.Round(X))
	Xo := matching.SolveRelaxedWS(trueProb, matching.SolveOptions{Iters: cfg.Match.SolveIters}, tr.wsOracle)
	oracle := matching.Repair(trueProb, matching.Round(Xo))
	trainRegret = (trueProb.DiscreteCost(predAssign) - trueProb.DiscreteCost(oracle)) * invN

	switch cfg.Kind {
	case AD:
		dT, dA, err = diffopt.AdjointGrads(predProb, X, w)
		if err != nil {
			return nil, nil, trainRegret, err
		}
	case UR:
		ur := cfg.Unroll
		if ur.Iters == 0 {
			ur.Iters = cfg.Match.SolveIters
		}
		// The adjoint seed is the regret-loss gradient at the trajectory's
		// own final iterate, not at the separately solved X.
		_, dT, dA, err = diffopt.UnrolledGradsFunc(predProb, func(Xk *mat.Dense) *mat.Dense {
			wk := trueProb.GradX(Xk, nil)
			wk.Scale(invN)
			return wk
		}, ur)
		if err != nil {
			return nil, nil, trainRegret, err
		}
	default: // FG
		if *cfg.RowWise {
			// Algorithm 2 literally: when training cluster i's predictors,
			// the other rows carry measured values (lines 3 and 7).
			m, n := That.Rows, That.Cols
			dT = mat.NewDense(m, n)
			dA = mat.NewDense(m, n)
			Tmix := tr.tmix.Reshape(m, n)
			Amix := tr.amix.Reshape(m, n)
			for i := 0; i < m; i++ {
				Tmix.CopyFrom(Tm)
				copy(Tmix.Row(i), That.Row(i))
				Amix.CopyFrom(Am)
				copy(Amix.Row(i), Ahat.Row(i))
				rowProb := cfg.Match.Problem(Tmix, Amix)
				rowProb.Entropy = cfg.Match.Entropy
				Xi := matching.SolveRelaxedWS(rowProb, matching.SolveOptions{Iters: cfg.Match.SolveIters}, tr.wsOracle)
				wi := trueProb.GradXWS(Xi, tr.wiBuf.Reshape(m, n), tr.wsOracle)
				wi.Scale(invN)
				dTi, dAi := diffopt.RowVJP(rowProb, Xi, wi, i, cfg.ZO, r.SplitIndexed("row", i))
				copy(dT.Row(i), dTi)
				copy(dA.Row(i), dAi)
			}
		} else {
			dT, dA = diffopt.FullVJP(predProb, X, w, cfg.ZO, r.Split("full"))
		}
	}
	return dT, dA, trainRegret, nil
}

// PretrainMSE fits every predictor in the set to the measured labels over
// the training indices by plain MSE — equation (1), the entirety of the
// two-stage baseline's learning. All 2M networks train in parallel.
func PretrainMSE(set *PredictorSet, s *workload.Scenario, train []int, epochs int, r *rng.Source) {
	// A background context never cancels, so the error is always nil.
	_ = PretrainMSECtx(context.Background(), set, s, train, epochs, r)
}

// PretrainMSECtx is PretrainMSE with cooperative cancellation, checked
// between networks: each of the 2M networks either trains fully or not at
// all, so a canceled warm start leaves no half-trained network behind.
// Untrained networks keep their initialization. Returns an
// mfcperr.ErrCanceled-wrapped error when interrupted.
func PretrainMSECtx(ctx context.Context, set *PredictorSet, s *workload.Scenario, train []int, epochs int, r *rng.Source) error {
	if epochs <= 0 {
		return nil
	}
	Z := s.FeaturesOf(train)
	m := set.M()
	parallel.ForChunked(2*m, 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			if ctx.Err() != nil {
				return
			}
			i := k / 2
			tv, av := s.LabelVectors(i, train)
			cfg := nn.TrainMSEConfig{Epochs: epochs, BatchSize: 16}
			if k%2 == 0 {
				nn.TrainMSE(set.Preds[i].Time, Z, tv, cfg, r.SplitIndexed("time", i))
			} else {
				nn.TrainMSE(set.Preds[i].Rel, Z, av, cfg, r.SplitIndexed("rel", i))
			}
		}
	})
	if ctx.Err() != nil {
		return mfcperr.Canceled("core.PretrainMSE", context.Cause(ctx))
	}
	return nil
}
