package core

import (
	"context"
	"math"

	"mfcp/internal/binenc"
	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
	"mfcp/internal/workload"
)

// BackendTable names the quantized low-cost inference backend: per-cluster
// ridge-fit linear models with int8-quantized weights. Inference is one
// dequantize-and-accumulate pass per (cluster, task) — orders of magnitude
// cheaper than an MLP forward — which is the point for the 1000×100k scale
// regime where prediction cost rivals the solve.
const BackendTable = "table"

// tableBackendCodecVersion versions TableBackend.AppendBackend.
const tableBackendCodecVersion = 1

// tableRidge is the ridge regularizer λ of the closed-form fit; it keeps
// the normal equations positive definite on collinear features.
const tableRidge = 1e-3

func init() {
	RegisterBackend(BackendTable,
		func(m, inDim int, hidden []int, r *rng.Source) Backend {
			return NewTableBackend(m, inDim)
		},
		decodeTableBackend)
}

// quantLinear is one int8-quantized affine model: ŷ = scale·Σ q_k·z_k + bias.
// Weights quantize symmetrically to [-127, 127] with a per-model scale; the
// bias stays float64 (one scalar per model costs nothing and preserves the
// intercept exactly).
type quantLinear struct {
	q     []int8
	scale float64
	bias  float64
}

func (ql *quantLinear) eval(z []float64) float64 {
	acc := 0.0
	for k, w := range ql.q {
		acc += float64(w) * z[k]
	}
	return ql.scale*acc + ql.bias
}

// quantize fits the int8 representation of weights w (bias separate).
func (ql *quantLinear) quantize(w []float64, bias float64) {
	if len(ql.q) != len(w) {
		ql.q = make([]int8, len(w))
	}
	maxAbs := 0.0
	for _, v := range w {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	ql.bias = bias
	if maxAbs == 0 {
		ql.scale = 0
		for k := range ql.q {
			ql.q[k] = 0
		}
		return
	}
	ql.scale = maxAbs / 127
	for k, v := range w {
		qv := math.Round(v / ql.scale)
		if qv > 127 {
			qv = 127
		} else if qv < -127 {
			qv = -127
		}
		ql.q[k] = int8(qv)
	}
}

// TableBackend predicts with per-cluster quantized linear models fit in
// closed form (ridge normal equations via Cholesky). Construction, fitting,
// and refitting are fully deterministic and consume no rng; prediction is
// trivially allocation-free. Accuracy trails the MLP backend — it is the
// cheap-inference point on the cost/quality curve, not a replacement.
type TableBackend struct {
	m, inDim int
	t, a     []quantLinear
}

// NewTableBackend builds an unfitted table backend (all-zero models;
// Pretrain fits them).
func NewTableBackend(m, inDim int) *TableBackend {
	b := &TableBackend{m: m, inDim: inDim, t: make([]quantLinear, m), a: make([]quantLinear, m)}
	for i := 0; i < m; i++ {
		b.t[i].q = make([]int8, inDim)
		b.a[i].q = make([]int8, inDim)
	}
	return b
}

// BackendName implements Backend.
func (b *TableBackend) BackendName() string { return BackendTable }

// M implements Backend.
func (b *TableBackend) M() int { return b.m }

// InDim implements Backend.
func (b *TableBackend) InDim() int { return b.inDim }

// tableWorkspace holds no forward scratch — table inference needs none —
// only the pre-bound ForChunked closure and its in-flight arguments, so
// PredictInto passes no escaping closure literal (it is AllocsPerRun-pinned
// at zero).
type tableWorkspace struct {
	be         *TableBackend
	z          *mat.Dense
	that, ahat *mat.Dense
	runf       func(lo, hi int)
}

// NewWorkspace implements Backend.
func (b *TableBackend) NewWorkspace() BackendWorkspace { return &tableWorkspace{} }

// PredictInto implements Backend: one dequantize-accumulate pass per
// (cluster, task), outputs clamped to the admissible ranges (time ≥ 1e-4,
// reliability in [1e-4, 0.999]) so the matcher never sees a degenerate
// linear extrapolation.
func (b *TableBackend) PredictInto(Z *mat.Dense, w BackendWorkspace, That, Ahat *mat.Dense) {
	ws := w.(*tableWorkspace)
	m, n := b.m, Z.Rows
	That.Reshape(m, n)
	Ahat.Reshape(m, n)
	if ws.runf == nil {
		ws.runf = ws.run
	}
	ws.be, ws.z, ws.that, ws.ahat = b, Z, That, Ahat
	parallel.ForChunked(m, 1, ws.runf)
	ws.be, ws.z, ws.that, ws.ahat = nil, nil, nil, nil
}

// run is the ForChunked body of PredictInto for clusters [lo, hi).
func (ws *tableWorkspace) run(lo, hi int) {
	b, Z, That, Ahat := ws.be, ws.z, ws.that, ws.ahat
	n := Z.Rows
	for i := lo; i < hi; i++ {
		tq, aq := &b.t[i], &b.a[i]
		for j := 0; j < n; j++ {
			z := Z.Row(j)
			tv := tq.eval(z)
			if tv < 1e-4 {
				tv = 1e-4
			}
			av := aq.eval(z)
			if av < 1e-4 {
				av = 1e-4
			} else if av > 0.999 {
				av = 0.999
			}
			That.Set(i, j, tv)
			Ahat.Set(i, j, av)
		}
	}
}

// Snapshot implements Backend.
func (b *TableBackend) Snapshot(into Backend) Backend {
	var t *TableBackend
	if into == nil {
		t = NewTableBackend(b.m, b.inDim)
	} else {
		t = into.(*TableBackend)
		if t.m != b.m || t.inDim != b.inDim {
			// invariant: snapshot targets are prior Snapshots of this backend.
			panic("core: table Snapshot into a different architecture")
		}
	}
	for i := 0; i < b.m; i++ {
		copy(t.t[i].q, b.t[i].q)
		t.t[i].scale, t.t[i].bias = b.t[i].scale, b.t[i].bias
		copy(t.a[i].q, b.a[i].q)
		t.a[i].scale, t.a[i].bias = b.a[i].scale, b.a[i].bias
	}
	return t
}

// Validate implements Backend.
func (b *TableBackend) Validate(m, inDim int) error {
	if b.m != m {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "core: table backend covers %d clusters, scenario has %d", b.m, m)
	}
	if b.inDim != inDim {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "core: table backend expects %d-dim features, scenario has %d", b.inDim, inDim)
	}
	return nil
}

// Pretrain implements Backend: closed-form ridge fits per cluster and head
// (epochs and r are unused — there is no iterative phase and no
// randomness).
func (b *TableBackend) Pretrain(ctx context.Context, s *workload.Scenario, train []int, epochs int, r *rng.Source) error {
	Z := s.FeaturesOf(train)
	parallel.ForChunked(b.m, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				return
			}
			tv, av := s.LabelVectors(i, train)
			fitQuantLinear(&b.t[i], Z, tv)
			fitQuantLinear(&b.a[i], Z, av)
		}
	})
	if ctx.Err() != nil {
		return mfcperr.Canceled("core.TableBackend.Pretrain", context.Cause(ctx))
	}
	return nil
}

// Refit implements Backend: the model refits in closed form on the same
// drift-corrected replay+live rows the network backends fine-tune on.
// Closed-form refits are idempotent and rng-free, so the async refit path
// is trivially deterministic for this family.
func (b *TableBackend) Refit(s *workload.Scenario, train []int, live []Feedback, epochs int, r *rng.Source) {
	perCluster := make([][]Feedback, b.m)
	for _, ob := range live {
		perCluster[ob.Cluster] = append(perCluster[ob.Cluster], ob)
	}
	const liveWeight = 3
	parallel.ForChunked(b.m, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			obs := perCluster[i]
			if len(obs) < 4 {
				continue // too little signal to refit on
			}
			X, tTargets, aTargets := refitRows(s, train, obs, i, liveWeight)
			fitQuantLinear(&b.t[i], X, tTargets)
			fitQuantLinear(&b.a[i], X, aTargets)
		}
	})
}

// fitQuantLinear solves the ridge normal equations (X'X + λI)w = X'y with
// an appended bias column, then quantizes the weights. A Cholesky failure
// (pathologically scaled features) degrades to the constant mean predictor
// instead of erroring: a table that predicts the average is still a valid
// — if uninformative — model.
func fitQuantLinear(ql *quantLinear, X *mat.Dense, y mat.Vec) {
	n, d := X.Rows, X.Cols
	g := mat.NewDense(d+1, d+1)
	rhs := mat.NewVec(d + 1)
	for r := 0; r < n; r++ {
		z := X.Row(r)
		for a := 0; a < d; a++ {
			za := z[a]
			row := g.Row(a)
			for c := a; c < d; c++ {
				row[c] += za * z[c]
			}
			row[d] += za
			rhs[a] += za * y[r]
		}
		g.Set(d, d, g.At(d, d)+1)
		rhs[d] += y[r]
	}
	// Mirror the upper triangle and add the ridge (bias unpenalized beyond
	// a vanishing term that keeps the factorization strictly PD).
	for a := 0; a < d; a++ {
		for c := a + 1; c < d; c++ {
			g.Set(c, a, g.At(a, c))
		}
		g.Set(a, a, g.At(a, a)+tableRidge)
	}
	g.Set(d, d, g.At(d, d)+1e-9)
	ch, err := mat.FactorizeCholesky(g)
	if err != nil {
		fallbackMean(ql, y)
		return
	}
	w, err := ch.Solve(rhs, nil)
	if err != nil {
		fallbackMean(ql, y)
		return
	}
	ql.quantize(w[:d], w[d])
}

func fallbackMean(ql *quantLinear, y mat.Vec) {
	mean := 0.0
	if len(y) > 0 {
		mean = y.Sum() / float64(len(y))
	}
	zeros := make([]float64, len(ql.q))
	ql.quantize(zeros, mean)
}

// AppendBackend implements Backend.
func (b *TableBackend) AppendBackend(buf []byte) []byte {
	buf = binenc.AppendU8(buf, tableBackendCodecVersion)
	buf = binenc.AppendU32(buf, uint32(b.m))
	buf = binenc.AppendU32(buf, uint32(b.inDim))
	appendQL := func(ql *quantLinear) {
		buf = binenc.AppendF64(buf, ql.scale)
		buf = binenc.AppendF64(buf, ql.bias)
		raw := make([]byte, len(ql.q))
		for k, v := range ql.q {
			raw[k] = byte(v)
		}
		buf = binenc.AppendBytes(buf, raw)
	}
	for i := 0; i < b.m; i++ {
		appendQL(&b.t[i])
		appendQL(&b.a[i])
	}
	return buf
}

func decodeTableBackend(r *binenc.Reader) (Backend, error) {
	if v := r.U8(); r.Err() == nil && v != tableBackendCodecVersion {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: table backend codec version %d, want %d", v, tableBackendCodecVersion)
	}
	m := int(r.U32())
	inDim := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if m < 0 || m > maxCheckpointEntries || inDim < 0 || inDim > maxCheckpointEntries {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: table backend with %d clusters, %d features", m, inDim)
	}
	b := NewTableBackend(m, inDim)
	readQL := func(ql *quantLinear) error {
		ql.scale = r.F64()
		ql.bias = r.F64()
		raw := r.Bytes()
		if r.Err() != nil {
			return r.Err()
		}
		if len(raw) != inDim {
			return mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "core: table backend row of %d weights, want %d", len(raw), inDim)
		}
		for k, v := range raw {
			ql.q[k] = int8(v)
		}
		return nil
	}
	for i := 0; i < m; i++ {
		if err := readQL(&b.t[i]); err != nil {
			return nil, err
		}
		if err := readQL(&b.a[i]); err != nil {
			return nil, err
		}
	}
	return b, nil
}
