package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 257, 10000} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForChunkedDisjointCover(t *testing.T) {
	check := func(rawN uint16, rawGrain uint8) bool {
		n := int(rawN % 5000)
		grain := int(rawGrain%64) + 1
		hits := make([]int32, n)
		ForChunked(n, grain, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Fatalf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMapOrdered(t *testing.T) {
	out := Map(1000, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d]=%d", i, v)
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("Do skipped a thunk: %d %d %d", a, b, c)
	}
}

func TestSingleWorkerFallback(t *testing.T) {
	defer SetWorkers(SetWorkers(1))
	sum := 0
	// With one worker the body runs serially, so unsynchronized writes are safe.
	For(1000, func(i int) { sum += i })
	if sum != 999*1000/2 {
		t.Fatalf("serial fallback sum %d", sum)
	}
}

func TestZeroAndNegativeN(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-5, func(int) { called = true })
	ForChunked(-1, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for non-positive n")
	}
}

// TestWorkersTracksGOMAXPROCS pins the satellite fix for Workers being
// captured once at package init: the count must follow runtime.GOMAXPROCS
// changes at call time, honor SetWorkers overrides, and never drop below 1.
func TestWorkersTracksGOMAXPROCS(t *testing.T) {
	defer SetWorkers(SetWorkers(0)) // make sure no override leaks in or out
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers()=%d after GOMAXPROCS(3)", got)
	}
	runtime.GOMAXPROCS(1)
	if got := Workers(); got != 1 {
		t.Fatalf("Workers()=%d after GOMAXPROCS(1)", got)
	}

	if prev := SetWorkers(7); prev != 0 {
		t.Fatalf("previous override %d, want 0", prev)
	}
	if got := Workers(); got != 7 {
		t.Fatalf("Workers()=%d with override 7", got)
	}
	// Negative pins are clamped away: the override is cleared, and the
	// GOMAXPROCS fallback is itself clamped to >= 1.
	if prev := SetWorkers(-4); prev != 7 {
		t.Fatalf("previous override %d, want 7", prev)
	}
	if got := Workers(); got < 1 {
		t.Fatalf("Workers()=%d, must be >= 1", got)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(4096, func(int) {})
	}
}
