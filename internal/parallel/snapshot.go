package parallel

import "sync/atomic"

// Snapshot is an atomic publication point for immutable values: a writer
// prepares a fresh value off to the side (a deep clone it then mutates
// freely) and Publishes it in one atomic store; readers Load whichever
// version is current and keep using it for as long as they like. This is
// the classic read-copy-update shape serving systems use to swap models
// under live traffic — readers never block on a writer, and every reader
// sees exactly one consistent version, never a half-updated one.
//
// The contract that makes it safe: once a value has been Published it is
// immutable. The writer must stop mutating a value at Publish time and
// prepare the next version on a different object (platform refits train on
// a private PredictorSet clone and publish it when training converges).
type Snapshot[T any] struct {
	p atomic.Pointer[T]
	v atomic.Uint64
}

// NewSnapshot returns a holder whose current version is v (which may be
// nil; readers must then cope with a nil Load until the first Publish).
func NewSnapshot[T any](v *T) *Snapshot[T] {
	s := &Snapshot[T]{}
	s.p.Store(v)
	return s
}

// Load returns the currently published version.
func (s *Snapshot[T]) Load() *T { return s.p.Load() }

// Publish atomically replaces the current version with v. v must not be
// mutated afterwards.
func (s *Snapshot[T]) Publish(v *T) {
	s.p.Store(v)
	s.v.Add(1)
}

// Swap publishes v and returns the previously published version. The
// caller may recycle the returned value as the next writer-side scratch
// ONLY once no reader can still hold it (e.g. after a barrier that joins
// every in-flight reader).
func (s *Snapshot[T]) Swap(v *T) *T {
	old := s.p.Swap(v)
	s.v.Add(1)
	return old
}

// Version counts publishes since construction (the initial value is
// version 0). Monotonic and safe from any goroutine; serving telemetry
// diffs it across a round window to report how many predictor versions a
// window was served behind.
func (s *Snapshot[T]) Version() uint64 { return s.v.Load() }
