package parallel

import (
	"sync"
	"testing"
	"testing/quick"
)

// ringModel is the reference implementation the property test compares
// against: a plain slice that keeps the last cap un-drained entries.
type ringModel struct {
	cap     int
	pending []int
	dropped uint64
}

func (m *ringModel) push(v int) {
	m.pending = append(m.pending, v)
	if len(m.pending) > m.cap {
		m.dropped += uint64(len(m.pending) - m.cap)
		m.pending = m.pending[len(m.pending)-m.cap:]
	}
}

func (m *ringModel) drain() []int {
	out := append([]int(nil), m.pending...)
	m.pending = m.pending[:0]
	return out
}

// TestRingMatchesModel drives a ring and the reference model through the
// same randomized push/drain schedule (single producer, so order is exact)
// across a spread of capacities, including heavy wraparound, and asserts
// identical drained sequences and drop counts at every step.
func TestRingMatchesModel(t *testing.T) {
	check := func(capRaw uint8, ops []uint16) bool {
		capacity := int(capRaw)%13 + 1
		ring := NewRing[int](capacity)
		model := &ringModel{cap: capacity}
		next := 0
		var got []int
		for _, op := range ops {
			if op%7 == 0 {
				got = ring.Drain(got[:0])
				want := model.drain()
				if len(got) != len(want) {
					return false
				}
				for i := range got {
					if got[i] != want[i] {
						return false
					}
				}
				continue
			}
			// Push a burst, often long enough to lap the ring repeatedly.
			burst := int(op % 37)
			for b := 0; b < burst; b++ {
				ring.Push(next)
				model.push(next)
				next++
			}
		}
		got = ring.Drain(got[:0])
		want := model.drain()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return ring.Dropped() == model.dropped
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRingWraparoundKeepsNewest(t *testing.T) {
	const capacity = 8
	r := NewRing[int](capacity)
	for i := 0; i < 3*capacity+5; i++ {
		r.Push(i)
	}
	if r.Len() != capacity {
		t.Fatalf("Len=%d want %d", r.Len(), capacity)
	}
	out := r.Drain(nil)
	if len(out) != capacity {
		t.Fatalf("drained %d entries, want %d", len(out), capacity)
	}
	for k, v := range out {
		if want := 3*capacity + 5 - capacity + k; v != want {
			t.Fatalf("out[%d]=%d want %d (oldest-drop violated)", k, v, want)
		}
	}
	if r.Dropped() != uint64(2*capacity+5) {
		t.Fatalf("Dropped=%d want %d", r.Dropped(), 2*capacity+5)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d", r.Len())
	}
}

// TestRingConcurrentProducers hammers Push from many goroutines with
// capacity large enough to hold everything, then drains after the join and
// checks every item arrived exactly once. Run under -race this also proves
// the producer path needs no mutex.
func TestRingConcurrentProducers(t *testing.T) {
	const producers, each = 8, 500
	r := NewRing[int](producers * each)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Push(p*each + i)
			}
		}(p)
	}
	wg.Wait()
	out := r.Drain(nil)
	if len(out) != producers*each {
		t.Fatalf("drained %d, want %d", len(out), producers*each)
	}
	seen := make(map[int]bool, len(out))
	for _, v := range out {
		if seen[v] {
			t.Fatalf("item %d drained twice", v)
		}
		seen[v] = true
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped %d with sufficient capacity", r.Dropped())
	}
}

// TestRingConcurrentOverflow overflows a small ring from many goroutines —
// exercising the lap-handoff spin — and checks the survivors are exactly
// capacity distinct pushed values with consistent drop accounting.
func TestRingConcurrentOverflow(t *testing.T) {
	const producers, each, capacity = 8, 400, 64
	r := NewRing[int](capacity)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Push(p*each + i)
			}
		}(p)
	}
	wg.Wait()
	out := r.Drain(nil)
	if len(out) != capacity {
		t.Fatalf("drained %d, want %d", len(out), capacity)
	}
	seen := make(map[int]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= producers*each {
			t.Fatalf("drained value %d was never pushed", v)
		}
		if seen[v] {
			t.Fatalf("item %d drained twice", v)
		}
		seen[v] = true
	}
	if got, want := r.Dropped(), uint64(producers*each-capacity); got != want {
		t.Fatalf("Dropped=%d want %d", got, want)
	}
	if r.Pushed() != producers*each {
		t.Fatalf("Pushed=%d want %d", r.Pushed(), producers*each)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing[string](0)
	if r.Cap() != 1 {
		t.Fatalf("Cap=%d want 1", r.Cap())
	}
	r.Push("a")
	r.Push("b")
	out := r.Drain(nil)
	if len(out) != 1 || out[0] != "b" {
		t.Fatalf("out=%v want [b]", out)
	}
}
