package parallel

import (
	"runtime"
	"sync/atomic"
)

// Ring is a fixed-capacity multi-producer / single-consumer ring buffer
// with oldest-drop semantics: Push never fails and never takes a lock —
// when the ring is full the oldest unconsumed entry is overwritten. It is
// the ingest side of the platform's observation pipeline: many matching
// shards record observations concurrently, and a single consumer (the
// refit loop) drains them in one pass at a quiescent point.
//
// Implementation: a Vyukov-style sequenced ring. Producers claim a ticket
// with one atomic fetch-add on head; ticket t owns slot t mod capacity and
// publishes by storing seq = t+1 into the slot's sequence word. A producer
// that laps the ring (t >= capacity) first waits for the slot's previous
// writer (ticket t-capacity) to publish, so writes to one slot are ordered
// by the seq acquire/release chain and never race. The consumer owns tail
// and the drop accounting.
//
// Concurrency contract:
//   - Push is safe from any number of goroutines and is lock-free (the
//     only wait is the same-slot handoff when a producer laps a producer
//     that claimed the covering ticket exactly capacity pushes earlier).
//   - Drain/Len/Dropped are consumer-side: one goroutine at a time, and
//     the caller must establish happens-before with completed producers
//     (e.g. drain after a sync.WaitGroup join or a round barrier). The
//     platform drains at refit boundaries, where all shards have joined.
type Ring[T any] struct {
	capacity uint64
	head     atomic.Uint64 // next ticket to claim (producers)
	tail     uint64        // next ticket to consume (consumer-owned)
	dropped  uint64        // overwritten-entry count (consumer-owned)
	slots    []ringSlot[T]
}

type ringSlot[T any] struct {
	seq atomic.Uint64 // ticket+1 of the last published write; 0 = empty
	val T
}

// NewRing returns a ring holding at most capacity entries (min 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{capacity: uint64(capacity), slots: make([]ringSlot[T], capacity)}
}

// Cap returns the fixed capacity.
func (r *Ring[T]) Cap() int { return int(r.capacity) }

// Push records v, overwriting the oldest unconsumed entry when the ring is
// full. Safe for concurrent producers; never blocks on the consumer.
func (r *Ring[T]) Push(v T) {
	t := r.head.Add(1) - 1
	s := &r.slots[t%r.capacity]
	if t >= r.capacity {
		// Lap handoff: ticket t-capacity wrote this slot last; its release
		// store of seq orders that write before ours. Until it lands we
		// spin — the owner is mid-Push, so the wait is bounded by one
		// descheduling, not by consumer progress.
		prev := t - r.capacity + 1
		for s.seq.Load() < prev {
			runtime.Gosched()
		}
	}
	s.val = v
	s.seq.Store(t + 1)
}

// Pushed returns the total number of Push calls so far (including entries
// since overwritten). Safe from any goroutine.
func (r *Ring[T]) Pushed() uint64 { return r.head.Load() }

// Len returns the number of entries a Drain would yield now. Consumer-side.
func (r *Ring[T]) Len() int {
	h := r.head.Load()
	if n := h - r.tail; n < r.capacity {
		return int(n)
	}
	return int(r.capacity)
}

// Dropped returns the total number of entries lost to overwriting so far,
// counting entries currently pending overwrite accounting. Consumer-side.
func (r *Ring[T]) Dropped() uint64 {
	d := r.dropped
	if h := r.head.Load(); h > r.capacity && r.tail < h-r.capacity {
		d += (h - r.capacity) - r.tail
	}
	return d
}

// Drain appends every live entry to dst in push order (oldest first),
// consumes them, and returns dst. Entries overwritten since the last drain
// are counted in Dropped. Consumer-side: the caller must have joined all
// producers whose entries it expects to observe.
func (r *Ring[T]) Drain(dst []T) []T {
	h := r.head.Load()
	lo := r.tail
	if h > r.capacity && lo < h-r.capacity {
		r.dropped += (h - r.capacity) - lo
		lo = h - r.capacity
	}
	for p := lo; p < h; p++ {
		s := &r.slots[p%r.capacity]
		if s.seq.Load() != p+1 {
			// Defensive: under the quiescent-drain contract every ticket in
			// [h-capacity, h) owns a distinct published slot, so this skip
			// only fires if a producer raced the drain; the overwriting
			// entry then surfaces on the next drain under its own ticket.
			r.dropped++
			continue
		}
		dst = append(dst, s.val)
	}
	r.tail = h
	return dst
}
