// Package parallel provides small, dependency-free primitives for data
// parallelism: a chunked parallel for-loop and a bounded worker pool.
//
// The repository's hot paths — dense matrix multiply, batched neural-network
// prediction, zeroth-order gradient sampling, and experiment replication —
// all fan out through this package, so parallel policy (worker counts, chunk
// sizing) lives in exactly one place. Following the HPC guide, workers share
// memory only through disjoint index ranges; there are no locks on the data
// path.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workersOverride, when positive, pins the worker count. Tests and
// benchmarks set it through SetWorkers; zero means "track the runtime".
var workersOverride atomic.Int64

// Workers returns the current degree of parallelism: the SetWorkers
// override when one is pinned, otherwise runtime.GOMAXPROCS(0) read at call
// time — so GOMAXPROCS changes (and `go test -cpu` sweeps) take effect
// immediately instead of being frozen at package init. The result is always
// at least 1.
func Workers() int {
	if n := workersOverride.Load(); n > 0 {
		return int(n)
	}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// SetWorkers pins the worker count to n (when n > 0) or restores GOMAXPROCS
// tracking (when n <= 0). It returns the previous override (0 = unpinned) so
// callers can restore it:
//
//	defer parallel.SetWorkers(parallel.SetWorkers(1))
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workersOverride.Swap(int64(n)))
}

// minChunk is the smallest index range worth shipping to a worker; below it
// the scheduling overhead dominates and we run serially.
const minChunk = 256

// For runs body(i) for every i in [0, n), splitting the range across
// Workers goroutines in contiguous chunks. It blocks until all iterations
// complete. Iterations must be independent: body must not write to memory
// another iteration reads.
func For(n int, body func(i int)) {
	ForChunked(n, minChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked runs body(lo, hi) over disjoint contiguous chunks covering
// [0, n). grain is the minimum chunk size; pass 1 when each iteration is
// expensive (e.g. one experiment replicate per index).
func ForChunked(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := Workers()
	if workers == 1 || n <= grain {
		body(0, n)
		return
	}
	// Aim for a few chunks per worker so stragglers rebalance, but never
	// below the grain.
	chunk := n / (workers * 4)
	if chunk < grain {
		chunk = grain
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Map applies f to every index in [0, n) and collects the results in order.
// Each f(i) runs on its own worker slot; use it for coarse-grained work such
// as experiment replicates.
func Map[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	ForChunked(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(i)
		}
	})
	return out
}

// Do runs the given thunks concurrently (bounded by Workers) and waits for
// all of them.
func Do(thunks ...func()) {
	ForChunked(len(thunks), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			thunks[i]()
		}
	})
}
