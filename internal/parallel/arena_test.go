package parallel

import (
	"sync/atomic"
	"testing"
)

// TestArenaReuse checks the basic contract: Put-then-Get hands a cached
// value back instead of constructing a fresh one. Under -race sync.Pool
// deliberately drops a fraction of Puts to shake out lifetime bugs, so one
// Put-then-Get cycle is nondeterministic there; reuse must instead show up
// within a bounded number of cycles.
func TestArenaReuse(t *testing.T) {
	var built int32
	a := NewArena(func() *[]float64 {
		atomic.AddInt32(&built, 1)
		buf := make([]float64, 8)
		return &buf
	})
	x := a.Get()
	for i := 0; i < 50; i++ {
		a.Put(x)
		y := a.Get()
		if y == x {
			return
		}
		x = y
	}
	t.Fatalf("arena never reused a cached value in 50 Put/Get cycles (%d built)", built)
}

// TestArenaConcurrent hammers Get/Put from the pool's worker fan-out so the
// race detector can observe any unsynchronized sharing. Each checkout
// mutates its buffer; exclusivity means no write is ever observed torn.
func TestArenaConcurrent(t *testing.T) {
	type scratch struct {
		id    int64
		stamp [64]float64
	}
	var next int64
	a := NewArena(func() *scratch {
		return &scratch{id: atomic.AddInt64(&next, 1)}
	})
	For(10000, func(i int) {
		s := a.Get()
		v := float64(i)
		for k := range s.stamp {
			s.stamp[k] = v
		}
		for k := range s.stamp {
			if s.stamp[k] != v {
				t.Errorf("buffer shared between workers: stamp[%d]=%v want %v", k, s.stamp[k], v)
				break
			}
		}
		a.Put(s)
	})
	if int(next) > Workers()+1 {
		t.Logf("note: %d scratches built for %d workers (pool churn is allowed)", next, Workers())
	}
}
