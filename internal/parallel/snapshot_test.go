package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSnapshotPublishLoad(t *testing.T) {
	a, b := 1, 2
	s := NewSnapshot(&a)
	if s.Load() != &a {
		t.Fatal("initial version not visible")
	}
	if prev := s.Swap(&b); prev != &a {
		t.Fatal("Swap did not return the previous version")
	}
	if s.Load() != &b {
		t.Fatal("published version not visible")
	}
	s.Publish(nil)
	if s.Load() != nil {
		t.Fatal("nil publish not visible")
	}
}

// TestSnapshotConcurrentReaders runs writers publishing fresh versions
// against readers loading them; under -race this proves the holder itself
// introduces no races, and each loaded version is internally consistent
// (both fields written before publication are seen together).
func TestSnapshotConcurrentReaders(t *testing.T) {
	type version struct{ x, y int }
	s := NewSnapshot(&version{0, 0})
	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 1; !stop.Load(); i++ {
				s.Publish(&version{x: i, y: -i})
			}
		}()
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 10000; i++ {
				v := s.Load()
				if v.x != -v.y {
					t.Errorf("torn version: %+v", *v)
					return
				}
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	writers.Wait()
}
