package parallel

import "sync"

// Arena is a typed wrapper over sync.Pool: a cache of per-worker scratch
// buffers (solver workspaces, perturbation shadows, direction vectors) that
// parallel samplers reuse across work items instead of allocating fresh
// state per item. A worker Gets a value at the start of its chunk, owns it
// exclusively until Put, and returns it for a later chunk — so at most
// Workers values are ever live, regardless of how many items run.
//
// Like sync.Pool, the arena is safe for concurrent use and may drop cached
// values under GC pressure; cached state must therefore be re-initializable
// from scratch (the constructor) and never hold results a caller depends on
// after Put.
type Arena[T any] struct {
	pool sync.Pool
}

// NewArena returns an Arena whose Get constructs a fresh value with newT
// when no cached one is available.
func NewArena[T any](newT func() T) *Arena[T] {
	a := &Arena[T]{}
	a.pool.New = func() any { return newT() }
	return a
}

// Get returns a cached value or constructs a fresh one. The caller owns it
// exclusively until Put.
func (a *Arena[T]) Get() T { return a.pool.Get().(T) }

// Put returns x to the arena for reuse by a later Get. The caller must not
// touch x afterwards.
func (a *Arena[T]) Put(x T) { a.pool.Put(x) }
