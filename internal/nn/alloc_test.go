package nn

import (
	"testing"

	"mfcp/internal/mat"
	"mfcp/internal/rng"
)

// These tests pin the workspace contract from the fast-predictor-pipeline
// rewrite: once a Tape (and Grads) has warmed to the batch shape,
// ForwardTape, Backward, PredictBatch, PredictInto, and the TrainMSE epoch
// loop must not allocate at all.

func allocFixture() (*MLP, *mat.Dense, *mat.Dense, *Tape, *Grads) {
	r := rng.New(41)
	net := NewMLP([]int{16, 32, 32, 1}, ReLU, Softplus, r)
	X := mat.NewDense(64, 16)
	for i := range X.Data {
		X.Data[i] = r.Norm()
	}
	dOut := mat.NewDense(64, 1)
	dOut.Fill(1)
	tape := NewTape()
	g := net.NewGrads()
	// Warm-up: first pass sizes the tape and backward scratch.
	net.ForwardTape(X, tape)
	net.Backward(tape, dOut, g)
	return net, X, dOut, tape, g
}

func TestForwardTapeZeroAllocs(t *testing.T) {
	net, X, _, tape, _ := allocFixture()
	if a := testing.AllocsPerRun(100, func() { net.ForwardTape(X, tape) }); a != 0 {
		t.Fatalf("ForwardTape allocates %.1f per run on a warm tape", a)
	}
}

func TestBackwardZeroAllocs(t *testing.T) {
	net, X, dOut, tape, g := allocFixture()
	net.ForwardTape(X, tape)
	if a := testing.AllocsPerRun(100, func() {
		g.Zero()
		net.Backward(tape, dOut, g)
	}); a != 0 {
		t.Fatalf("Backward allocates %.1f per run on a warm tape", a)
	}
}

func TestPredictBatchZeroAllocs(t *testing.T) {
	net, X, _, tape, _ := allocFixture()
	if a := testing.AllocsPerRun(100, func() { net.PredictBatch(X, tape) }); a != 0 {
		t.Fatalf("PredictBatch allocates %.1f per run on a warm tape", a)
	}
}

func TestPredictIntoZeroAllocs(t *testing.T) {
	net, _, _, _, _ := allocFixture()
	r := rng.New(5)
	x := mat.Vec(r.NormVec(make([]float64, 16)))
	tape := NewTape()
	dst := mat.NewVec(1)
	net.PredictInto(x, tape, dst) // warm
	if a := testing.AllocsPerRun(100, func() { net.PredictInto(x, tape, dst) }); a != 0 {
		t.Fatalf("PredictInto allocates %.1f per run on a warm tape", a)
	}
}

// TestTapeReshapesAcrossBatchSizes checks a single tape survives alternating
// batch shapes (the TrainMSE tail-batch pattern) and still yields correct,
// independent outputs.
func TestTapeReshapesAcrossBatchSizes(t *testing.T) {
	r := rng.New(42)
	net := NewMLP([]int{4, 8, 2}, Tanh, Identity, r)
	tape := NewTape()
	for _, n := range []int{16, 3, 16, 1, 7} {
		X := mat.NewDense(n, 4)
		for i := range X.Data {
			X.Data[i] = r.Norm()
		}
		got := net.PredictBatch(X, tape)
		want := net.Forward(X).Out()
		if !got.Equal(want, 0) {
			t.Fatalf("batch %d: tape-reused output differs from fresh forward", n)
		}
	}
}
