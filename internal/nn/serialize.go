package nn

import (
	"mfcp/internal/binenc"
	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
)

// mlpCodecVersion is the wire version of the MLP encoding below. Bump it on
// any layout change; ReadMLP rejects versions it does not know.
const mlpCodecVersion = 1

// mlpMaxDim bounds decoded layer widths: anything past it is a corrupt
// length field, not a real network (the largest predictor in the repo is
// two orders of magnitude smaller).
const mlpMaxDim = 1 << 20

// AppendBinary appends a versioned binary encoding of the network to buf
// and returns the extended slice: version byte, layer widths, per-layer
// activations, then each layer's weight matrix and bias vector as raw
// float64 images. The encoding captures exactly the state CopyFrom copies,
// so decode(encode(m)) predicts bit-identically to m.
func (m *MLP) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendU8(buf, mlpCodecVersion)
	buf = binenc.AppendU32(buf, uint32(len(m.Dims)))
	for _, d := range m.Dims {
		buf = binenc.AppendU32(buf, uint32(d))
	}
	for _, a := range m.Acts {
		buf = binenc.AppendU8(buf, uint8(a))
	}
	for l := range m.W {
		buf = binenc.AppendF64s(buf, m.W[l].Data)
		buf = binenc.AppendF64s(buf, m.B[l])
	}
	return buf
}

// ReadMLP decodes one network from r, validating every structural field
// (version, widths, activations, weight lengths) before building it; any
// violation returns an mfcperr.ErrCorruptCheckpoint-wrapped error.
func ReadMLP(r *binenc.Reader) (*MLP, error) {
	if v := r.U8(); r.Err() == nil && v != mlpCodecVersion {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "nn: MLP codec version %d, want %d", v, mlpCodecVersion)
	}
	nd := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nd < 2 || nd > 1024 {
		return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "nn: MLP with %d dims", nd)
	}
	dims := make([]int, nd)
	for i := range dims {
		dims[i] = int(r.U32())
		if r.Err() == nil && (dims[i] < 1 || dims[i] > mlpMaxDim) {
			return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "nn: MLP layer width %d", dims[i])
		}
	}
	L := nd - 1
	m := &MLP{
		Dims: dims,
		Acts: make([]Activation, L),
		W:    make([]*mat.Dense, L),
		B:    make([]mat.Vec, L),
	}
	for l := 0; l < L; l++ {
		a := Activation(r.U8())
		if r.Err() == nil && (a < Identity || a > Softplus) {
			return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "nn: unknown activation %d", int(a))
		}
		m.Acts[l] = a
	}
	for l := 0; l < L; l++ {
		w := r.F64s()
		b := r.F64s()
		if r.Err() != nil {
			return nil, r.Err()
		}
		rows, cols := dims[l+1], dims[l]
		if len(w) != rows*cols || len(b) != rows {
			return nil, mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint,
				"nn: layer %d has %d weights and %d biases, want %dx%d and %d", l, len(w), len(b), rows, cols, rows)
		}
		m.W[l] = &mat.Dense{Rows: rows, Cols: cols, Data: w}
		m.B[l] = mat.Vec(b)
	}
	return m, r.Err()
}
