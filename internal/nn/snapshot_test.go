package nn

import (
	"testing"

	"mfcp/internal/mat"
	"mfcp/internal/rng"
)

func TestCopyFromMatchesClone(t *testing.T) {
	r := rng.New(7)
	src := NewMLP([]int{6, 8, 1}, ReLU, Softplus, r.Split("src"))
	dst := NewMLP([]int{6, 8, 1}, ReLU, Softplus, r.Split("dst"))
	dst.CopyFrom(src)
	for l := range src.W {
		if !dst.W[l].Equal(src.W[l], 0) {
			t.Fatalf("layer %d weights differ after CopyFrom", l)
		}
		for j := range src.B[l] {
			if dst.B[l][j] != src.B[l][j] {
				t.Fatalf("layer %d bias %d differs", l, j)
			}
		}
	}
	// The copy must be deep: training-style mutation of src must not leak.
	src.W[0].Set(0, 0, 1234.5)
	if dst.W[0].At(0, 0) == 1234.5 {
		t.Fatal("CopyFrom aliased weight storage")
	}

	X := mat.NewDense(3, 6)
	for i := range X.Data {
		X.Data[i] = float64(i%5) - 2
	}
	src.W[0].Set(0, 0, dst.W[0].At(0, 0)) // undo the probe
	a := src.Forward(X).Out()
	b := dst.Forward(X).Out()
	if !a.Equal(b, 0) {
		t.Fatal("outputs differ after CopyFrom")
	}
}

func TestCopyFromAllocationFree(t *testing.T) {
	r := rng.New(8)
	src := NewMLP([]int{6, 8, 1}, ReLU, Softplus, r.Split("src"))
	dst := src.Clone()
	if n := testing.AllocsPerRun(50, func() { dst.CopyFrom(src) }); n != 0 {
		t.Fatalf("CopyFrom allocated %v objects per run", n)
	}
}

func TestCopyFromRejectsShapeMismatch(t *testing.T) {
	r := rng.New(9)
	src := NewMLP([]int{6, 8, 1}, ReLU, Softplus, r.Split("a"))
	for _, bad := range []*MLP{
		NewMLP([]int{6, 4, 1}, ReLU, Softplus, r.Split("b")),
		NewMLP([]int{6, 8, 2, 1}, ReLU, Softplus, r.Split("c")),
		NewMLP([]int{6, 8, 1}, Tanh, Softplus, r.Split("d")),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("CopyFrom accepted mismatched network %v", bad.Dims)
				}
			}()
			bad.CopyFrom(src)
		}()
	}
}
