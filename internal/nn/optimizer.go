package nn

import "math"

// Optimizer updates network parameters from accumulated gradients.
type Optimizer interface {
	// Step applies one update of m's parameters using gradients g.
	Step(m *MLP, g *Grads)
	// Reset clears optimizer state (momenta), e.g. between training phases.
	Reset()
}

// SGD is stochastic gradient descent with classical momentum and optional
// decoupled weight decay.
type SGD struct {
	LR       float64
	Momentum float64
	// WeightDecay applies p -= LR·wd·p before the gradient step (decoupled
	// L2; 0 disables). Biases are not decayed.
	WeightDecay float64
	vel         *Grads
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (o *SGD) Step(m *MLP, g *Grads) {
	if o.vel == nil {
		o.vel = m.NewGrads()
	}
	for l := range m.W {
		for k := range m.W[l].Data {
			if o.WeightDecay > 0 {
				m.W[l].Data[k] -= o.LR * o.WeightDecay * m.W[l].Data[k]
			}
			o.vel.W[l].Data[k] = o.Momentum*o.vel.W[l].Data[k] - o.LR*g.W[l].Data[k]
			m.W[l].Data[k] += o.vel.W[l].Data[k]
		}
		for k := range m.B[l] {
			o.vel.B[l][k] = o.Momentum*o.vel.B[l][k] - o.LR*g.B[l][k]
			m.B[l][k] += o.vel.B[l][k]
		}
	}
}

// Reset implements Optimizer.
func (o *SGD) Reset() { o.vel = nil }

// Adam is the Adam optimizer (Kingma & Ba, 2015), with optional decoupled
// weight decay (AdamW; Loshchilov & Hutter, 2019) and an optional learning
// rate schedule.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	// WeightDecay is applied decoupled from the adaptive step (AdamW);
	// biases are not decayed. 0 disables.
	WeightDecay float64
	// Schedule, when non-nil, maps the 1-based step counter to a learning
	// rate multiplier (e.g. CosineDecay).
	Schedule func(step int) float64
	m, v     *Grads
	t        int
}

// NewAdam returns an Adam optimizer with standard defaults for the moment
// decay rates.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(net *MLP, g *Grads) {
	if o.m == nil {
		o.m = net.NewGrads()
		o.v = net.NewGrads()
	}
	o.t++
	lr := o.LR
	if o.Schedule != nil {
		lr *= o.Schedule(o.t)
	}
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	upd := func(p, gd, mo, ve []float64, decay bool) {
		for k := range p {
			if decay && o.WeightDecay > 0 {
				p[k] -= lr * o.WeightDecay * p[k]
			}
			mo[k] = o.Beta1*mo[k] + (1-o.Beta1)*gd[k]
			ve[k] = o.Beta2*ve[k] + (1-o.Beta2)*gd[k]*gd[k]
			mHat := mo[k] / c1
			vHat := ve[k] / c2
			p[k] -= lr * mHat / (math.Sqrt(vHat) + o.Eps)
		}
	}
	for l := range net.W {
		upd(net.W[l].Data, g.W[l].Data, o.m.W[l].Data, o.v.W[l].Data, true)
		upd(net.B[l], g.B[l], o.m.B[l], o.v.B[l], false)
	}
}

// CosineDecay returns a schedule decaying the learning rate multiplier from
// 1 to floor over totalSteps by a half cosine, then holding at floor.
func CosineDecay(totalSteps int, floor float64) func(step int) float64 {
	if totalSteps < 1 {
		totalSteps = 1
	}
	return func(step int) float64 {
		if step >= totalSteps {
			return floor
		}
		frac := float64(step) / float64(totalSteps)
		return floor + (1-floor)*0.5*(1+math.Cos(math.Pi*frac))
	}
}

// Reset implements Optimizer.
func (o *Adam) Reset() { o.m, o.v, o.t = nil, nil, 0 }

// ClipGrads scales g in place so its max-abs entry does not exceed clip.
// Returns the scale applied (1 when no clipping was needed). Gradient
// clipping keeps regret-loss training stable when the matching Jacobian
// spikes near assignment boundary crossings.
func ClipGrads(g *Grads, clip float64) float64 {
	if clip <= 0 {
		return 1
	}
	m := g.MaxAbs()
	if m <= clip {
		return 1
	}
	s := clip / m
	g.AddScaled(s-1, g) // g = s*g
	return s
}
