package nn

import (
	"fmt"
	"math"

	"mfcp/internal/mat"
	"mfcp/internal/rng"
)

// MLP is a fully connected feed-forward network. Weights are owned by the
// network; forward-pass state lives in a Tape so concurrent evaluations of
// one network are safe as long as Step is not called concurrently.
type MLP struct {
	Dims []int        // layer widths, Dims[0] = input, Dims[len-1] = output
	Acts []Activation // Acts[l] applies after layer l (len = len(Dims)-1)
	W    []*mat.Dense // W[l] is Dims[l+1] × Dims[l]
	B    []mat.Vec    // B[l] is Dims[l+1]
}

// NewMLP builds a network with the given layer widths, hidden activation
// and output activation, with He/Xavier-style initialization drawn from r.
func NewMLP(dims []int, hidden, out Activation, r *rng.Source) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims")
	}
	L := len(dims) - 1
	m := &MLP{Dims: append([]int(nil), dims...)}
	m.Acts = make([]Activation, L)
	m.W = make([]*mat.Dense, L)
	m.B = make([]mat.Vec, L)
	for l := 0; l < L; l++ {
		if l == L-1 {
			m.Acts[l] = out
		} else {
			m.Acts[l] = hidden
		}
		fanIn, fanOut := dims[l], dims[l+1]
		scale := math.Sqrt(2 / float64(fanIn))
		if m.Acts[l] == Tanh || m.Acts[l] == Sigmoid {
			scale = math.Sqrt(1 / float64(fanIn))
		}
		w := mat.NewDense(fanOut, fanIn)
		for i := range w.Data {
			w.Data[i] = r.Normal(0, scale)
		}
		m.W[l] = w
		m.B[l] = mat.NewVec(fanOut)
	}
	return m
}

// Clone returns a deep copy of the network.
func (m *MLP) Clone() *MLP {
	out := &MLP{
		Dims: append([]int(nil), m.Dims...),
		Acts: append([]Activation(nil), m.Acts...),
		W:    make([]*mat.Dense, len(m.W)),
		B:    make([]mat.Vec, len(m.B)),
	}
	for l := range m.W {
		out.W[l] = m.W[l].Clone()
		out.B[l] = m.B[l].Clone()
	}
	return out
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		n += len(m.W[l].Data) + len(m.B[l])
	}
	return n
}

// Tape holds the forward-pass intermediates needed for backprop: the input
// and, per layer, pre-activations and post-activations for every sample.
type Tape struct {
	X    *mat.Dense   // input batch (n × Dims[0])
	Pre  []*mat.Dense // Pre[l]: n × Dims[l+1], pre-activation
	Post []*mat.Dense // Post[l]: n × Dims[l+1], post-activation
}

// Out returns the network output recorded on the tape (n × Dims[last]).
func (t *Tape) Out() *mat.Dense { return t.Post[len(t.Post)-1] }

// Forward runs the batch X (n × Dims[0]) through the network, returning the
// tape. The input matrix is referenced, not copied; do not mutate it before
// the corresponding Backward.
func (m *MLP) Forward(X *mat.Dense) *Tape {
	if X.Cols != m.Dims[0] {
		panic(fmt.Sprintf("nn: Forward input dim %d, want %d", X.Cols, m.Dims[0]))
	}
	L := len(m.W)
	t := &Tape{X: X, Pre: make([]*mat.Dense, L), Post: make([]*mat.Dense, L)}
	cur := X
	for l := 0; l < L; l++ {
		n := cur.Rows
		pre := mat.NewDense(n, m.Dims[l+1])
		// pre = cur · W[l]ᵀ + b
		for i := 0; i < n; i++ {
			row := cur.Row(i)
			prow := pre.Row(i)
			for j := 0; j < m.Dims[l+1]; j++ {
				prow[j] = m.W[l].Row(j).Dot(row) + m.B[l][j]
			}
		}
		post := mat.NewDense(n, m.Dims[l+1])
		act := m.Acts[l]
		for k, z := range pre.Data {
			post.Data[k] = act.apply(z)
		}
		t.Pre[l] = pre
		t.Post[l] = post
		cur = post
	}
	return t
}

// Predict is Forward for a single feature vector, returning the output
// vector (allocating).
func (m *MLP) Predict(x mat.Vec) mat.Vec {
	X := mat.NewDense(1, len(x))
	copy(X.Row(0), x)
	return m.Forward(X).Out().Row(0).Clone()
}

// PredictBatch runs the batch and returns only the output matrix.
func (m *MLP) PredictBatch(X *mat.Dense) *mat.Dense { return m.Forward(X).Out() }

// Grads holds parameter gradients with the same shapes as the network.
type Grads struct {
	W []*mat.Dense
	B []mat.Vec
}

// NewGrads allocates zero gradients shaped like m.
func (m *MLP) NewGrads() *Grads {
	g := &Grads{W: make([]*mat.Dense, len(m.W)), B: make([]mat.Vec, len(m.B))}
	for l := range m.W {
		g.W[l] = mat.NewDense(m.W[l].Rows, m.W[l].Cols)
		g.B[l] = mat.NewVec(len(m.B[l]))
	}
	return g
}

// Zero resets all gradients in place.
func (g *Grads) Zero() {
	for l := range g.W {
		g.W[l].Fill(0)
		g.B[l].Fill(0)
	}
}

// AddScaled accumulates alpha·other into g.
func (g *Grads) AddScaled(alpha float64, other *Grads) {
	for l := range g.W {
		g.W[l].AddScaled(alpha, other.W[l])
		g.B[l].AddScaled(alpha, other.B[l])
	}
}

// MaxAbs returns the largest absolute gradient entry.
func (g *Grads) MaxAbs() float64 {
	m := 0.0
	for l := range g.W {
		if v := g.W[l].MaxAbs(); v > m {
			m = v
		}
		if v := g.B[l].NormInf(); v > m {
			m = v
		}
	}
	return m
}

// Backward computes parameter gradients for the batch recorded on tape,
// given dOut = ∂L/∂output (n × Dims[last]). It accumulates into g
// (allocating when nil) and returns it. Gradients are summed over the
// batch; divide dOut by n upstream for means.
func (m *MLP) Backward(tape *Tape, dOut *mat.Dense, g *Grads) *Grads {
	if g == nil {
		g = m.NewGrads()
	}
	L := len(m.W)
	n := tape.X.Rows
	if dOut.Rows != n || dOut.Cols != m.Dims[L] {
		panic("nn: Backward dOut shape mismatch")
	}
	// delta starts as dL/dPost[L-1]; walk layers backwards.
	delta := dOut.Clone()
	for l := L - 1; l >= 0; l-- {
		// dL/dPre[l] = delta ⊙ act'(Pre[l])
		act := m.Acts[l]
		pre := tape.Pre[l]
		for k := range delta.Data {
			delta.Data[k] *= act.deriv(pre.Data[k])
		}
		// input to layer l
		var in *mat.Dense
		if l == 0 {
			in = tape.X
		} else {
			in = tape.Post[l-1]
		}
		// dW[l] += deltaᵀ · in ; dB[l] += column sums of delta
		for i := 0; i < n; i++ {
			drow := delta.Row(i)
			irow := in.Row(i)
			for j, dj := range drow {
				if dj == 0 {
					continue
				}
				grow := g.W[l].Row(j)
				for c, ic := range irow {
					grow[c] += dj * ic
				}
				g.B[l][j] += dj
			}
		}
		if l > 0 {
			// propagate: dL/dPost[l-1] = delta · W[l]
			next := mat.NewDense(n, m.Dims[l])
			for i := 0; i < n; i++ {
				drow := delta.Row(i)
				nrow := next.Row(i)
				for j, dj := range drow {
					if dj == 0 {
						continue
					}
					wrow := m.W[l].Row(j)
					for c, wc := range wrow {
						nrow[c] += dj * wc
					}
				}
			}
			delta = next
		}
	}
	return g
}

// InputGradient returns ∂(sum of outputs weighted by dOut)/∂X for the batch
// on tape — the Jacobian-vector product through the network with respect to
// its inputs. Needed by tests and by sensitivity analyses.
func (m *MLP) InputGradient(tape *Tape, dOut *mat.Dense) *mat.Dense {
	L := len(m.W)
	n := tape.X.Rows
	delta := dOut.Clone()
	for l := L - 1; l >= 0; l-- {
		act := m.Acts[l]
		pre := tape.Pre[l]
		for k := range delta.Data {
			delta.Data[k] *= act.deriv(pre.Data[k])
		}
		next := mat.NewDense(n, m.Dims[l])
		for i := 0; i < n; i++ {
			drow := delta.Row(i)
			nrow := next.Row(i)
			for j, dj := range drow {
				if dj == 0 {
					continue
				}
				wrow := m.W[l].Row(j)
				for c, wc := range wrow {
					nrow[c] += dj * wc
				}
			}
		}
		delta = next
	}
	return delta
}
