package nn

import (
	"fmt"
	"math"

	"mfcp/internal/mat"
	"mfcp/internal/rng"
)

// MLP is a fully connected feed-forward network. Weights are owned by the
// network; forward-pass state lives in a Tape so concurrent evaluations of
// one network are safe as long as Step is not called concurrently.
type MLP struct {
	Dims []int        // layer widths, Dims[0] = input, Dims[len-1] = output
	Acts []Activation // Acts[l] applies after layer l (len = len(Dims)-1)
	W    []*mat.Dense // W[l] is Dims[l+1] × Dims[l]
	B    []mat.Vec    // B[l] is Dims[l+1]
}

// NewMLP builds a network with the given layer widths, hidden activation
// and output activation, with He/Xavier-style initialization drawn from r.
func NewMLP(dims []int, hidden, out Activation, r *rng.Source) *MLP {
	if len(dims) < 2 {
		// invariant: architectures are literals chosen by trainers, never user input.
		panic("nn: MLP needs at least input and output dims")
	}
	L := len(dims) - 1
	m := &MLP{Dims: append([]int(nil), dims...)}
	m.Acts = make([]Activation, L)
	m.W = make([]*mat.Dense, L)
	m.B = make([]mat.Vec, L)
	for l := 0; l < L; l++ {
		if l == L-1 {
			m.Acts[l] = out
		} else {
			m.Acts[l] = hidden
		}
		fanIn, fanOut := dims[l], dims[l+1]
		scale := math.Sqrt(2 / float64(fanIn))
		if m.Acts[l] == Tanh || m.Acts[l] == Sigmoid {
			scale = math.Sqrt(1 / float64(fanIn))
		}
		w := mat.NewDense(fanOut, fanIn)
		for i := range w.Data {
			w.Data[i] = r.Normal(0, scale)
		}
		m.W[l] = w
		m.B[l] = mat.NewVec(fanOut)
	}
	return m
}

// Clone returns a deep copy of the network.
func (m *MLP) Clone() *MLP {
	out := &MLP{
		Dims: append([]int(nil), m.Dims...),
		Acts: append([]Activation(nil), m.Acts...),
		W:    make([]*mat.Dense, len(m.W)),
		B:    make([]mat.Vec, len(m.B)),
	}
	for l := range m.W {
		out.W[l] = m.W[l].Clone()
		out.B[l] = m.B[l].Clone()
	}
	return out
}

// CopyFrom copies src's weights and biases into m in place. The two
// networks must share an architecture (dims and activations); the method
// panics otherwise. Unlike Clone it allocates nothing, which makes
// repeated snapshotting of a serving network cheap: keep one spare clone
// and CopyFrom into it before each refit.
func (m *MLP) CopyFrom(src *MLP) {
	if len(m.Dims) != len(src.Dims) {
		// invariant: CopyFrom targets are prior Clones of this network.
		panic("nn: CopyFrom across different architectures")
	}
	for l, d := range m.Dims {
		if src.Dims[l] != d {
			// invariant: CopyFrom targets are prior Clones of this network.
			panic("nn: CopyFrom across different architectures")
		}
	}
	for l := range m.W {
		if m.Acts[l] != src.Acts[l] {
			// invariant: CopyFrom targets are prior Clones of this network.
			panic("nn: CopyFrom across different activations")
		}
		copy(m.W[l].Data, src.W[l].Data)
		copy(m.B[l], src.B[l])
	}
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		n += len(m.W[l].Data) + len(m.B[l])
	}
	return n
}

// Tape is the reusable forward/backward workspace for one network (the NN
// counterpart of matching.Workspace): the input reference and, per layer,
// pre-activations and post-activations for every sample, plus the backward
// pass's delta scratch. A zero Tape is ready to use; ForwardTape sizes it on
// first touch and Reshape recycles the backing arrays across batches, so
// steady-state passes allocate nothing. A Tape serves one (network, goroutine)
// pair at a time; distinct tapes make concurrent evaluations of a shared
// network safe.
type Tape struct {
	X    *mat.Dense   // input batch (n × Dims[0]); referenced, not copied
	Pre  []*mat.Dense // Pre[l]: n × Dims[l+1], pre-activation (with bias)
	Post []*mat.Dense // Post[l]: n × Dims[l+1], post-activation
	// delta ping-pong buffers for Backward.
	d0, d1 *mat.Dense
	// xbuf backs single-sample Predict calls routed through the tape.
	xbuf *mat.Dense
}

// NewTape returns an empty workspace; ForwardTape sizes it lazily.
func NewTape() *Tape { return &Tape{} }

// Out returns the network output recorded on the tape (n × Dims[last]).
func (t *Tape) Out() *mat.Dense { return t.Post[len(t.Post)-1] }

// ensure sizes the tape for a batch of n samples through m, reusing backing
// arrays whenever they have capacity.
func (t *Tape) ensure(m *MLP, n int) {
	L := len(m.W)
	if cap(t.Pre) < L {
		t.Pre = make([]*mat.Dense, L)
		t.Post = make([]*mat.Dense, L)
	} else {
		t.Pre = t.Pre[:L]
		t.Post = t.Post[:L]
	}
	for l := 0; l < L; l++ {
		if t.Pre[l] == nil {
			t.Pre[l] = new(mat.Dense)
			t.Post[l] = new(mat.Dense)
		}
		t.Pre[l].Reshape(n, m.Dims[l+1])
		t.Post[l].Reshape(n, m.Dims[l+1])
	}
}

// ForwardTape runs the batch X (n × Dims[0]) through the network, recording
// intermediates on t (allocated when nil) and returning it. After the tape
// has warmed to the batch shape the pass performs zero allocations. The input
// matrix is referenced, not copied; do not mutate it before the
// corresponding Backward.
func (m *MLP) ForwardTape(X *mat.Dense, t *Tape) *Tape {
	if X.Cols != m.Dims[0] {
		// invariant: the input width is pinned by the scenario's feature matrix.
		panic(fmt.Sprintf("nn: Forward input dim %d, want %d", X.Cols, m.Dims[0]))
	}
	if t == nil {
		t = NewTape()
	}
	t.X = X
	t.ensure(m, X.Rows)
	cur := X
	for l := range m.W {
		pre, post := t.Pre[l], t.Post[l]
		// pre = cur · W[l]ᵀ + b, without materializing the transpose.
		mat.MulT(cur, m.W[l], pre)
		b := m.B[l]
		for i := 0; i < pre.Rows; i++ {
			row := pre.Row(i)
			for j := range row {
				row[j] += b[j]
			}
		}
		act := m.Acts[l]
		for k, z := range pre.Data {
			post.Data[k] = act.apply(z)
		}
		cur = post
	}
	return t
}

// Forward is ForwardTape with a freshly allocated tape, for callers that
// keep no workspace.
func (m *MLP) Forward(X *mat.Dense) *Tape { return m.ForwardTape(X, nil) }

// Predict is Forward for a single feature vector, returning the output
// vector (allocating).
func (m *MLP) Predict(x mat.Vec) mat.Vec {
	X := mat.NewDense(1, len(x))
	copy(X.Row(0), x)
	return m.Forward(X).Out().Row(0).Clone()
}

// PredictInto evaluates a single feature vector through tape t, writing the
// outputs into dst (allocated when nil) and returning it. Zero allocations
// once t is warm and dst is provided.
func (m *MLP) PredictInto(x mat.Vec, t *Tape, dst mat.Vec) mat.Vec {
	if t.xbuf == nil {
		t.xbuf = new(mat.Dense)
	}
	X := t.xbuf.Reshape(1, len(x))
	copy(X.Row(0), x)
	m.ForwardTape(X, t)
	out := t.Out().Row(0)
	if dst == nil {
		dst = mat.NewVec(len(out))
	}
	copy(dst, out)
	return dst
}

// PredictBatch runs the batch through tape t (allocated when nil) and
// returns the output matrix, which aliases the tape. Passing a reused tape
// makes the call allocation-free after warm-up.
func (m *MLP) PredictBatch(X *mat.Dense, t *Tape) *mat.Dense {
	return m.ForwardTape(X, t).Out()
}

// Grads holds parameter gradients with the same shapes as the network.
type Grads struct {
	W []*mat.Dense
	B []mat.Vec
}

// NewGrads allocates zero gradients shaped like m.
func (m *MLP) NewGrads() *Grads {
	g := &Grads{W: make([]*mat.Dense, len(m.W)), B: make([]mat.Vec, len(m.B))}
	for l := range m.W {
		g.W[l] = mat.NewDense(m.W[l].Rows, m.W[l].Cols)
		g.B[l] = mat.NewVec(len(m.B[l]))
	}
	return g
}

// Zero resets all gradients in place.
func (g *Grads) Zero() {
	for l := range g.W {
		g.W[l].Fill(0)
		g.B[l].Fill(0)
	}
}

// AddScaled accumulates alpha·other into g.
func (g *Grads) AddScaled(alpha float64, other *Grads) {
	for l := range g.W {
		g.W[l].AddScaled(alpha, other.W[l])
		g.B[l].AddScaled(alpha, other.B[l])
	}
}

// MaxAbs returns the largest absolute gradient entry.
func (g *Grads) MaxAbs() float64 {
	m := 0.0
	for l := range g.W {
		if v := g.W[l].MaxAbs(); v > m {
			m = v
		}
		if v := g.B[l].NormInf(); v > m {
			m = v
		}
	}
	return m
}

// Backward computes parameter gradients for the batch recorded on tape,
// given dOut = ∂L/∂output (n × Dims[last]). It accumulates into g
// (allocating when nil) and returns it. Gradients are summed over the
// batch; divide dOut by n upstream for means. The delta scratch lives on
// the tape, so a warm tape makes the pass allocation-free; dOut itself is
// never mutated.
func (m *MLP) Backward(tape *Tape, dOut *mat.Dense, g *Grads) *Grads {
	if g == nil {
		g = m.NewGrads()
	}
	L := len(m.W)
	n := tape.X.Rows
	if dOut.Rows != n || dOut.Cols != m.Dims[L] {
		// invariant: dOut mirrors the forward output recorded on the tape.
		panic("nn: Backward dOut shape mismatch")
	}
	if tape.d0 == nil {
		tape.d0, tape.d1 = new(mat.Dense), new(mat.Dense)
	}
	// delta starts as dL/dPost[L-1]; walk layers backwards, ping-ponging
	// between the two tape scratch buffers.
	delta, next := tape.d0, tape.d1
	delta.Reshape(n, m.Dims[L]).CopyFrom(dOut)
	for l := L - 1; l >= 0; l-- {
		// dL/dPre[l] = delta ⊙ act'(Pre[l])
		act := m.Acts[l]
		pre := tape.Pre[l]
		for k := range delta.Data {
			delta.Data[k] *= act.deriv(pre.Data[k])
		}
		// input to layer l
		in := tape.X
		if l > 0 {
			in = tape.Post[l-1]
		}
		// dW[l] += deltaᵀ · in, without materializing the transpose;
		// dB[l] += column sums of delta.
		mat.MulATAdd(delta, in, g.W[l])
		gb := g.B[l]
		for i := 0; i < n; i++ {
			for j, dj := range delta.Row(i) {
				gb[j] += dj
			}
		}
		if l > 0 {
			// propagate: dL/dPost[l-1] = delta · W[l]
			mat.Mul(delta, m.W[l], next.Reshape(n, m.Dims[l]))
			delta, next = next, delta
		}
	}
	return g
}

// InputGradient returns ∂(sum of outputs weighted by dOut)/∂X for the batch
// on tape — the Jacobian-vector product through the network with respect to
// its inputs. Needed by tests and by sensitivity analyses; not a hot path,
// so it allocates its own delta chain.
func (m *MLP) InputGradient(tape *Tape, dOut *mat.Dense) *mat.Dense {
	delta := dOut.Clone()
	for l := len(m.W) - 1; l >= 0; l-- {
		act := m.Acts[l]
		pre := tape.Pre[l]
		for k := range delta.Data {
			delta.Data[k] *= act.deriv(pre.Data[k])
		}
		delta = mat.Mul(delta, m.W[l], nil)
	}
	return delta
}
