package nn

import (
	"math"

	"mfcp/internal/mat"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
)

// MSE returns the mean squared error between predictions (n × 1) and
// targets.
func MSE(pred *mat.Dense, y mat.Vec) float64 {
	if pred.Rows != len(y) || pred.Cols != 1 {
		// invariant: pred and target come from the same forward pass, so shapes agree by construction.
		panic("nn: MSE shape mismatch")
	}
	s := 0.0
	for i, t := range y {
		d := pred.At(i, 0) - t
		s += d * d
	}
	return s / float64(len(y))
}

// TrainMSEConfig parameterizes supervised MSE training.
type TrainMSEConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
}

func (c *TrainMSEConfig) fillDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 300
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.Optimizer == nil {
		c.Optimizer = NewAdam(1e-2)
	}
}

// TrainMSE fits net to (X, y) by minibatch MSE minimization — the
// conventional predictor training of the paper's two-stage baseline
// (Equation 1). It returns the final full-batch MSE.
func TrainMSE(net *MLP, X *mat.Dense, y mat.Vec, cfg TrainMSEConfig, r *rng.Source) float64 {
	cfg.fillDefaults()
	n := X.Rows
	if n != len(y) {
		// invariant: X and Y are rows of one dataset split, built together.
		panic("nn: TrainMSE sample count mismatch")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// All minibatch state is hoisted out of the loop: the batch copy, the
	// loss gradient, the forward tape, and the parameter gradients are
	// reshaped in place each step, so the epoch loop runs allocation-free.
	bx := mat.NewDense(cfg.BatchSize, X.Cols)
	by := mat.NewVec(cfg.BatchSize)
	dOut := mat.NewDense(cfg.BatchSize, 1)
	tape := NewTape()
	g := net.NewGrads()
	for e := 0; e < cfg.Epochs; e++ {
		r.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for off := 0; off < n; off += cfg.BatchSize {
			b := cfg.BatchSize
			if off+b > n {
				b = n - off
			}
			XB := bx.Reshape(b, X.Cols)
			YB := by[:b]
			DB := dOut.Reshape(b, 1)
			for k := 0; k < b; k++ {
				copy(XB.Row(k), X.Row(idx[off+k]))
				YB[k] = y[idx[off+k]]
			}
			net.ForwardTape(XB, tape)
			out := tape.Out()
			for k := 0; k < b; k++ {
				DB.Set(k, 0, 2*(out.At(k, 0)-YB[k])/float64(b))
			}
			g.Zero()
			net.Backward(tape, DB, g)
			cfg.Optimizer.Step(net, g)
		}
	}
	return MSE(net.PredictBatch(X, tape), y)
}

// Ensemble is a bag of networks trained on bootstrap resamples; its spread
// estimates predictive uncertainty (the UCB baseline's confidence source).
type Ensemble struct {
	Members []*MLP
}

// TrainEnsemble trains k networks with architecture dims on bootstrap
// resamples of (X, y). Members train in parallel; each gets an independent
// initialization and resample stream derived from r's snapshot.
func TrainEnsemble(k int, dims []int, hidden, out Activation, X *mat.Dense, y mat.Vec, cfg TrainMSEConfig, r *rng.Source) *Ensemble {
	members := parallel.Map(k, func(i int) *MLP {
		mr := r.SplitIndexed("member", i)
		net := NewMLP(dims, hidden, out, mr.Split("init"))
		n := X.Rows
		// Bootstrap resample.
		XB := mat.NewDense(n, X.Cols)
		YB := mat.NewVec(n)
		br := mr.Split("bootstrap")
		for j := 0; j < n; j++ {
			s := br.Intn(n)
			copy(XB.Row(j), X.Row(s))
			YB[j] = y[s]
		}
		local := cfg
		local.Optimizer = nil // per-member optimizer state
		TrainMSE(net, XB, YB, local, mr.Split("train"))
		return net
	})
	return &Ensemble{Members: members}
}

// ForwardMembers runs every member over X through the caller's warm tapes
// (one per member, in member order) — the allocation-free half of Predict.
// Callers read member outputs from tapes[m].Out() and reduce them with the
// exact accumulation Predict uses (see Ensemble.Predict) when bit-identical
// means and spreads matter. tapes must have len(e.Members) entries.
func (e *Ensemble) ForwardMembers(X *mat.Dense, tapes []*Tape) {
	if len(tapes) != len(e.Members) {
		// invariant: tapes come from a workspace sized off this ensemble.
		panic("nn: ForwardMembers tape count mismatch")
	}
	for m, net := range e.Members {
		net.ForwardTape(X, tapes[m])
	}
}

// Predict returns the ensemble mean and standard deviation for each row of
// X (both length X.Rows).
func (e *Ensemble) Predict(X *mat.Dense) (mean, std mat.Vec) {
	n := X.Rows
	mean = mat.NewVec(n)
	std = mat.NewVec(n)
	k := float64(len(e.Members))
	preds := make([]*mat.Dense, len(e.Members))
	parallel.ForChunked(len(e.Members), 1, func(lo, hi int) {
		for m := lo; m < hi; m++ {
			preds[m] = e.Members[m].PredictBatch(X, nil)
		}
	})
	for i := 0; i < n; i++ {
		s, ss := 0.0, 0.0
		for m := range e.Members {
			v := preds[m].At(i, 0)
			s += v
			ss += v * v
		}
		mu := s / k
		mean[i] = mu
		variance := ss/k - mu*mu
		if variance < 0 {
			variance = 0
		}
		std[i] = math.Sqrt(variance)
	}
	return mean, std
}
