package nn

import (
	"errors"
	"testing"

	"mfcp/internal/binenc"
	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
	"mfcp/internal/rng"
)

func TestMLPCodecRoundTrip(t *testing.T) {
	r := rng.New(61)
	cases := []*MLP{
		NewMLP([]int{6, 8, 1}, ReLU, Softplus, r.Split("a")),
		NewMLP([]int{12, 16, 8, 1}, Tanh, Sigmoid, r.Split("b")),
		NewMLP([]int{3, 1}, ReLU, Identity, r.Split("c")),
	}
	for ci, m := range cases {
		got, err := ReadMLP(binenc.NewReader(m.AppendBinary(nil)))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if len(got.Dims) != len(m.Dims) {
			t.Fatalf("case %d dims: %v", ci, got.Dims)
		}
		for l := range m.Dims {
			if got.Dims[l] != m.Dims[l] {
				t.Fatalf("case %d dim %d: %d != %d", ci, l, got.Dims[l], m.Dims[l])
			}
		}
		for l := range m.Acts {
			if got.Acts[l] != m.Acts[l] {
				t.Fatalf("case %d activation %d differs", ci, l)
			}
		}
		X := mat.NewDense(4, m.Dims[0])
		for i := range X.Data {
			X.Data[i] = float64(i%7)*0.3 - 1
		}
		want := m.Forward(X).Out()
		back := got.Forward(X).Out()
		if !want.Equal(back, 0) {
			t.Fatalf("case %d: decoded network predicts differently", ci)
		}
	}
}

func TestMLPCodecMultipleInOneBuffer(t *testing.T) {
	r := rng.New(62)
	a := NewMLP([]int{5, 4, 1}, ReLU, Softplus, r.Split("a"))
	b := NewMLP([]int{5, 6, 1}, ReLU, Sigmoid, r.Split("b"))
	buf := b.AppendBinary(a.AppendBinary(nil))
	rd := binenc.NewReader(buf)
	ga, err := ReadMLP(rd)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := ReadMLP(rd)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Len() != 0 {
		t.Fatalf("%d bytes left over", rd.Len())
	}
	if ga.Dims[1] != 4 || gb.Dims[1] != 6 {
		t.Fatal("networks decoded out of order")
	}
}

func TestMLPCodecRejectsCorruption(t *testing.T) {
	r := rng.New(63)
	m := NewMLP([]int{6, 8, 1}, ReLU, Softplus, r.Split("x"))
	buf := m.AppendBinary(nil)

	// Bad version byte.
	bad := append([]byte(nil), buf...)
	bad[0] = 200
	if _, err := ReadMLP(binenc.NewReader(bad)); !errors.Is(err, mfcperr.ErrCorruptCheckpoint) {
		t.Fatalf("bad version: %v", err)
	}
	// Truncation anywhere must surface as corruption, never a panic.
	for cut := 0; cut < len(buf); cut += 13 {
		if _, err := ReadMLP(binenc.NewReader(buf[:cut])); !errors.Is(err, mfcperr.ErrCorruptCheckpoint) {
			t.Fatalf("truncation at %d: %v", cut, err)
		}
	}
	// An absurd layer width is corruption, not an allocation request.
	bad = append([]byte(nil), buf...)
	bad[5] = 0xff // high byte of the first layer width
	bad[6] = 0xff
	bad[7] = 0xff
	if _, err := ReadMLP(binenc.NewReader(bad)); !errors.Is(err, mfcperr.ErrCorruptCheckpoint) {
		t.Fatalf("huge width: %v", err)
	}
}
