// Package nn implements the fully connected neural networks the platform
// uses as cluster performance predictors (§4.1.1 of the paper trains plain
// MLP heads on frozen GNN features), with manual backpropagation, SGD and
// Adam optimizers, MSE training for the two-stage baseline, and bootstrap
// ensembles for the UCB baseline.
//
// The design splits forward state into an explicit Tape so that a single
// network can run concurrent forward/backward passes (zeroth-order gradient
// estimation perturbs and re-evaluates in parallel) without data races.
package nn

import "math"

// Activation selects a layer's elementwise nonlinearity.
type Activation int

// Supported activations. Softplus is the standard positive-output head for
// execution-time predictors; Sigmoid bounds reliability predictions to (0,1).
const (
	Identity Activation = iota
	ReLU
	Tanh
	Sigmoid
	Softplus
)

// String returns the activation name.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	case Softplus:
		return "softplus"
	default:
		return "unknown"
	}
}

// apply evaluates the activation at pre-activation z.
func (a Activation) apply(z float64) float64 {
	switch a {
	case ReLU:
		if z < 0 {
			return 0
		}
		return z
	case Tanh:
		return math.Tanh(z)
	case Sigmoid:
		return 1 / (1 + math.Exp(-z))
	case Softplus:
		// Numerically stable softplus: log(1+e^z) = max(z,0) + log1p(e^-|z|).
		return math.Max(z, 0) + math.Log1p(math.Exp(-math.Abs(z)))
	default:
		return z
	}
}

// deriv evaluates the activation derivative at pre-activation z.
func (a Activation) deriv(z float64) float64 {
	switch a {
	case ReLU:
		if z <= 0 {
			return 0
		}
		return 1
	case Tanh:
		t := math.Tanh(z)
		return 1 - t*t
	case Sigmoid:
		s := 1 / (1 + math.Exp(-z))
		return s * (1 - s)
	case Softplus:
		return 1 / (1 + math.Exp(-z))
	default:
		return 1
	}
}
