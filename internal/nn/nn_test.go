package nn

import (
	"math"
	"testing"
	"testing/quick"

	"mfcp/internal/mat"
	"mfcp/internal/rng"
)

func TestActivationDerivsMatchFiniteDiff(t *testing.T) {
	acts := []Activation{Identity, ReLU, Tanh, Sigmoid, Softplus}
	zs := []float64{-3, -1, -0.1, 0.1, 0.5, 2, 5}
	for _, a := range acts {
		for _, z := range zs {
			h := 1e-6
			fd := (a.apply(z+h) - a.apply(z-h)) / (2 * h)
			if math.Abs(fd-a.deriv(z)) > 1e-5 {
				t.Fatalf("%v deriv at %v: analytic %v, fd %v", a, z, a.deriv(z), fd)
			}
		}
	}
}

func TestSoftplusStableAtExtremes(t *testing.T) {
	if v := Softplus.apply(1000); math.IsInf(v, 0) || math.Abs(v-1000) > 1e-9 {
		t.Fatalf("softplus(1000)=%v", v)
	}
	if v := Softplus.apply(-1000); v != 0 {
		t.Fatalf("softplus(-1000)=%v", v)
	}
}

func TestForwardShapes(t *testing.T) {
	r := rng.New(1)
	net := NewMLP([]int{5, 8, 3}, ReLU, Identity, r)
	X := mat.NewDense(7, 5)
	for i := range X.Data {
		X.Data[i] = r.Norm()
	}
	tape := net.Forward(X)
	if out := tape.Out(); out.Rows != 7 || out.Cols != 3 {
		t.Fatalf("out shape %dx%d", out.Rows, out.Cols)
	}
	if len(tape.Pre) != 2 || len(tape.Post) != 2 {
		t.Fatalf("tape layers %d", len(tape.Pre))
	}
}

func TestPredictMatchesForward(t *testing.T) {
	r := rng.New(2)
	net := NewMLP([]int{4, 6, 1}, Tanh, Identity, r)
	x := mat.Vec(r.NormVec(make([]float64, 4)))
	single := net.Predict(x)
	X := mat.NewDense(1, 4)
	copy(X.Row(0), x)
	batch := net.PredictBatch(X, nil).Row(0)
	if !single.Equal(batch, 1e-12) {
		t.Fatal("Predict and PredictBatch disagree")
	}
}

// numericalParamGrad perturbs every parameter and finite-differences the
// scalar loss L = sum(out ⊙ dOut).
func numericalParamGrad(net *MLP, X, dOut *mat.Dense) *Grads {
	g := net.NewGrads()
	loss := func() float64 {
		out := net.PredictBatch(X, nil)
		s := 0.0
		for k := range out.Data {
			s += out.Data[k] * dOut.Data[k]
		}
		return s
	}
	const h = 1e-6
	for l := range net.W {
		for k := range net.W[l].Data {
			orig := net.W[l].Data[k]
			net.W[l].Data[k] = orig + h
			up := loss()
			net.W[l].Data[k] = orig - h
			down := loss()
			net.W[l].Data[k] = orig
			g.W[l].Data[k] = (up - down) / (2 * h)
		}
		for k := range net.B[l] {
			orig := net.B[l][k]
			net.B[l][k] = orig + h
			up := loss()
			net.B[l][k] = orig - h
			down := loss()
			net.B[l][k] = orig
			g.B[l][k] = (up - down) / (2 * h)
		}
	}
	return g
}

func TestBackwardMatchesFiniteDiff(t *testing.T) {
	r := rng.New(3)
	// Smooth activations so finite differences are clean.
	for _, arch := range [][]int{{3, 5, 1}, {4, 6, 5, 2}} {
		net := NewMLP(arch, Tanh, Identity, r)
		n := 4
		X := mat.NewDense(n, arch[0])
		for i := range X.Data {
			X.Data[i] = r.Norm()
		}
		dOut := mat.NewDense(n, arch[len(arch)-1])
		for i := range dOut.Data {
			dOut.Data[i] = r.Norm()
		}
		analytic := net.Backward(net.Forward(X), dOut, nil)
		numeric := numericalParamGrad(net, X, dOut)
		for l := range analytic.W {
			if !analytic.W[l].Equal(numeric.W[l], 1e-4) {
				t.Fatalf("arch %v layer %d W grads differ:\n%v\nvs\n%v", arch, l, analytic.W[l], numeric.W[l])
			}
			if !analytic.B[l].Equal(numeric.B[l], 1e-4) {
				t.Fatalf("arch %v layer %d B grads differ", arch, l)
			}
		}
	}
}

func TestBackwardSigmoidSoftplusHeads(t *testing.T) {
	r := rng.New(4)
	for _, out := range []Activation{Sigmoid, Softplus} {
		net := NewMLP([]int{3, 4, 1}, Tanh, out, r)
		X := mat.NewDense(3, 3)
		for i := range X.Data {
			X.Data[i] = r.Norm()
		}
		dOut := mat.NewDense(3, 1)
		dOut.Fill(1)
		analytic := net.Backward(net.Forward(X), dOut, nil)
		numeric := numericalParamGrad(net, X, dOut)
		for l := range analytic.W {
			if !analytic.W[l].Equal(numeric.W[l], 1e-4) {
				t.Fatalf("%v head: layer %d grads differ", out, l)
			}
		}
	}
}

func TestInputGradientMatchesFiniteDiff(t *testing.T) {
	r := rng.New(5)
	net := NewMLP([]int{4, 6, 2}, Tanh, Sigmoid, r)
	X := mat.NewDense(2, 4)
	for i := range X.Data {
		X.Data[i] = r.Norm()
	}
	dOut := mat.NewDense(2, 2)
	for i := range dOut.Data {
		dOut.Data[i] = r.Norm()
	}
	analytic := net.InputGradient(net.Forward(X), dOut)
	loss := func() float64 {
		out := net.PredictBatch(X, nil)
		s := 0.0
		for k := range out.Data {
			s += out.Data[k] * dOut.Data[k]
		}
		return s
	}
	const h = 1e-6
	for k := range X.Data {
		orig := X.Data[k]
		X.Data[k] = orig + h
		up := loss()
		X.Data[k] = orig - h
		down := loss()
		X.Data[k] = orig
		fd := (up - down) / (2 * h)
		if math.Abs(fd-analytic.Data[k]) > 1e-5 {
			t.Fatalf("input grad %d: analytic %v fd %v", k, analytic.Data[k], fd)
		}
	}
}

func TestBackwardAccumulates(t *testing.T) {
	r := rng.New(6)
	net := NewMLP([]int{2, 3, 1}, ReLU, Identity, r)
	X := mat.NewDense(2, 2)
	X.Data = []float64{1, 2, 3, 4}
	dOut := mat.NewDense(2, 1)
	dOut.Fill(1)
	g := net.Backward(net.Forward(X), dOut, nil)
	g2 := net.Backward(net.Forward(X), dOut, g.Zero2())
	_ = g2
}

// Zero2 is a test helper alias so the accumulate test reads naturally.
func (g *Grads) Zero2() *Grads { g.Zero(); return g }

func TestGradsAddScaledAndClip(t *testing.T) {
	r := rng.New(7)
	net := NewMLP([]int{2, 2, 1}, ReLU, Identity, r)
	g := net.NewGrads()
	g.W[0].Fill(4)
	before := g.MaxAbs()
	if before != 4 {
		t.Fatalf("MaxAbs=%v", before)
	}
	s := ClipGrads(g, 1)
	if math.Abs(s-0.25) > 1e-12 || math.Abs(g.MaxAbs()-1) > 1e-12 {
		t.Fatalf("clip scale=%v maxabs=%v", s, g.MaxAbs())
	}
	if ClipGrads(g, 10) != 1 {
		t.Fatal("unnecessary clip applied")
	}
}

func TestSGDReducesQuadratic(t *testing.T) {
	// Minimizing MSE to a constant target: a 1-parameter sanity check that
	// Step moves in the right direction.
	r := rng.New(8)
	net := NewMLP([]int{1, 1}, Identity, Identity, r)
	X := mat.NewDense(1, 1)
	X.Set(0, 0, 1)
	y := mat.Vec{3}
	opt := NewSGD(0.1, 0.0)
	lossBefore := MSE(net.PredictBatch(X, nil), y)
	for i := 0; i < 100; i++ {
		tape := net.Forward(X)
		dOut := mat.NewDense(1, 1)
		dOut.Set(0, 0, 2*(tape.Out().At(0, 0)-y[0]))
		opt.Step(net, net.Backward(tape, dOut, nil))
	}
	lossAfter := MSE(net.PredictBatch(X, nil), y)
	if lossAfter > lossBefore/100 {
		t.Fatalf("SGD barely reduced loss: %v -> %v", lossBefore, lossAfter)
	}
}

func TestTrainMSEFitsNonlinearFunction(t *testing.T) {
	r := rng.New(9)
	n := 200
	X := mat.NewDense(n, 1)
	y := mat.NewVec(n)
	for i := 0; i < n; i++ {
		x := r.Uniform(-2, 2)
		X.Set(i, 0, x)
		y[i] = math.Sin(x) + 0.5*x
	}
	net := NewMLP([]int{1, 16, 16, 1}, Tanh, Identity, r)
	final := TrainMSE(net, X, y, TrainMSEConfig{Epochs: 400, BatchSize: 32}, r)
	if final > 0.01 {
		t.Fatalf("MSE after training %v", final)
	}
}

func TestTrainMSEDeterministic(t *testing.T) {
	build := func() float64 {
		r := rng.New(11)
		n := 50
		X := mat.NewDense(n, 2)
		y := mat.NewVec(n)
		for i := 0; i < n; i++ {
			X.Set(i, 0, r.Norm())
			X.Set(i, 1, r.Norm())
			y[i] = X.At(i, 0) * X.At(i, 1)
		}
		net := NewMLP([]int{2, 8, 1}, Tanh, Identity, r.Split("init"))
		return TrainMSE(net, X, y, TrainMSEConfig{Epochs: 50, BatchSize: 10}, r.Split("train"))
	}
	if build() != build() {
		t.Fatal("training not deterministic")
	}
}

func TestAdamConverges(t *testing.T) {
	r := rng.New(12)
	n := 100
	X := mat.NewDense(n, 3)
	y := mat.NewVec(n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			X.Set(i, j, r.Norm())
		}
		y[i] = 2*X.At(i, 0) - X.At(i, 1) + 0.5
	}
	net := NewMLP([]int{3, 8, 1}, ReLU, Identity, r)
	final := TrainMSE(net, X, y, TrainMSEConfig{Epochs: 400, BatchSize: 25, Optimizer: NewAdam(5e-3)}, r)
	if final > 0.01 {
		t.Fatalf("Adam failed to fit linear target: MSE %v", final)
	}
}

func TestCloneIndependent(t *testing.T) {
	r := rng.New(13)
	net := NewMLP([]int{2, 3, 1}, ReLU, Identity, r)
	cl := net.Clone()
	net.W[0].Set(0, 0, 999)
	if cl.W[0].At(0, 0) == 999 {
		t.Fatal("clone shares storage")
	}
}

func TestNumParams(t *testing.T) {
	net := NewMLP([]int{3, 5, 2}, ReLU, Identity, rng.New(1))
	want := 3*5 + 5 + 5*2 + 2
	if net.NumParams() != want {
		t.Fatalf("NumParams=%d want %d", net.NumParams(), want)
	}
}

func TestEnsemblePredict(t *testing.T) {
	r := rng.New(14)
	n := 80
	X := mat.NewDense(n, 1)
	y := mat.NewVec(n)
	for i := 0; i < n; i++ {
		x := r.Uniform(-1, 1)
		X.Set(i, 0, x)
		y[i] = 2 * x
	}
	ens := TrainEnsemble(5, []int{1, 8, 1}, Tanh, Identity, X, y, TrainMSEConfig{Epochs: 100, BatchSize: 20}, r)
	if len(ens.Members) != 5 {
		t.Fatalf("ensemble size %d", len(ens.Members))
	}
	mean, std := ens.Predict(X)
	for i := 0; i < n; i++ {
		if std[i] < 0 || math.IsNaN(std[i]) {
			t.Fatalf("std[%d]=%v", i, std[i])
		}
		if math.Abs(mean[i]-y[i]) > 0.5 {
			t.Fatalf("ensemble mean off target: %v vs %v", mean[i], y[i])
		}
	}
}

func TestEnsembleUncertaintyGrowsOffData(t *testing.T) {
	r := rng.New(15)
	n := 60
	X := mat.NewDense(n, 1)
	y := mat.NewVec(n)
	for i := 0; i < n; i++ {
		x := r.Uniform(-1, 1)
		X.Set(i, 0, x)
		y[i] = x * x
	}
	ens := TrainEnsemble(8, []int{1, 12, 1}, Tanh, Identity, X, y, TrainMSEConfig{Epochs: 150, BatchSize: 16}, r)
	onData := mat.NewDense(1, 1)
	onData.Set(0, 0, 0.5)
	offData := mat.NewDense(1, 1)
	offData.Set(0, 0, 4.0)
	_, stdOn := ens.Predict(onData)
	_, stdOff := ens.Predict(offData)
	if stdOff[0] <= stdOn[0] {
		t.Logf("warning: extrapolation std %v not larger than interpolation %v", stdOff[0], stdOn[0])
	}
}

func TestMLPQuickOutputFinite(t *testing.T) {
	r := rng.New(16)
	net := NewMLP([]int{6, 10, 1}, ReLU, Softplus, r)
	check := func(raw [6]float64) bool {
		x := mat.NewVec(6)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			x[i] = math.Mod(v, 10)
		}
		out := net.Predict(x)
		return len(out) == 1 && !math.IsNaN(out[0]) && !math.IsInf(out[0], 0) && out[0] >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForwardBatch64(b *testing.B) {
	r := rng.New(1)
	net := NewMLP([]int{16, 32, 32, 1}, ReLU, Softplus, r)
	X := mat.NewDense(64, 16)
	for i := range X.Data {
		X.Data[i] = r.Norm()
	}
	tape := NewTape()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardTape(X, tape)
	}
}

func BenchmarkBackwardBatch64(b *testing.B) {
	r := rng.New(1)
	net := NewMLP([]int{16, 32, 32, 1}, ReLU, Softplus, r)
	X := mat.NewDense(64, 16)
	for i := range X.Data {
		X.Data[i] = r.Norm()
	}
	dOut := mat.NewDense(64, 1)
	dOut.Fill(1)
	g := net.NewGrads()
	tape := NewTape()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Zero()
		net.Backward(net.ForwardTape(X, tape), dOut, g)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	r := rng.New(80)
	net := NewMLP([]int{2, 4, 1}, Tanh, Identity, r)
	clone := net.Clone()
	g := net.NewGrads() // zero gradients: only decay acts
	decayed := NewAdam(0.1)
	decayed.WeightDecay = 0.5
	plain := NewAdam(0.1)
	for i := 0; i < 20; i++ {
		decayed.Step(net, g)
		plain.Step(clone, g)
	}
	normDecayed := 0.0
	normPlain := 0.0
	for l := range net.W {
		normDecayed += net.W[l].FrobeniusNorm()
		normPlain += clone.W[l].FrobeniusNorm()
	}
	if normDecayed >= normPlain {
		t.Fatalf("weight decay did not shrink weights: %v vs %v", normDecayed, normPlain)
	}
	// Biases must NOT be decayed: with zero grads and zero-initialized
	// biases they stay zero either way; check they match exactly.
	for l := range net.B {
		if !net.B[l].Equal(clone.B[l], 0) {
			t.Fatal("biases diverged under decay")
		}
	}
}

func TestSGDWeightDecay(t *testing.T) {
	r := rng.New(81)
	net := NewMLP([]int{2, 2, 1}, ReLU, Identity, r)
	before := net.W[0].FrobeniusNorm()
	opt := NewSGD(0.1, 0)
	opt.WeightDecay = 0.5
	g := net.NewGrads()
	for i := 0; i < 10; i++ {
		opt.Step(net, g)
	}
	if net.W[0].FrobeniusNorm() >= before {
		t.Fatal("SGD weight decay inert")
	}
}

func TestCosineDecaySchedule(t *testing.T) {
	s := CosineDecay(100, 0.1)
	if v := s(1); v < 0.99 || v > 1.0 {
		t.Fatalf("schedule start %v", v)
	}
	if v := s(100); math.Abs(v-0.1) > 1e-12 {
		t.Fatalf("schedule end %v", v)
	}
	if v := s(500); v != 0.1 {
		t.Fatalf("schedule floor %v", v)
	}
	prev := 2.0
	for step := 1; step <= 100; step += 9 {
		v := s(step)
		if v > prev+1e-12 {
			t.Fatalf("schedule not monotone at %d", step)
		}
		prev = v
	}
}

func TestAdamScheduleApplied(t *testing.T) {
	// With a schedule that zeroes the LR, parameters must not move.
	r := rng.New(82)
	net := NewMLP([]int{2, 2, 1}, ReLU, Identity, r)
	snapshot := net.Clone()
	opt := NewAdam(0.1)
	opt.Schedule = func(int) float64 { return 0 }
	g := net.NewGrads()
	g.W[0].Fill(1)
	opt.Step(net, g)
	if !net.W[0].Equal(snapshot.W[0], 0) {
		t.Fatal("zero-LR schedule still moved weights")
	}
}
