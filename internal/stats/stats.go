// Package stats provides the summary statistics used by the experiment
// harness: numerically stable accumulators (Welford), mean/std/stderr
// summaries, percentiles, and the "mean ± std" cells the paper reports.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator is a numerically stable online mean/variance accumulator
// (Welford's algorithm). The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll folds every observation in xs.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// Merge folds another accumulator into a (Chan et al. parallel variant),
// allowing per-worker accumulators to combine without locks.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.mean += delta * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the unbiased sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Var()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.Std() / math.Sqrt(float64(a.n))
}

// Min returns the smallest observation (0 for an empty accumulator).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 for an empty accumulator).
func (a *Accumulator) Max() float64 { return a.max }

// Summary is an immutable snapshot of a sample's statistics.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	StdErr float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	var a Accumulator
	a.AddAll(xs)
	return Summary{N: a.N(), Mean: a.Mean(), Std: a.Std(), StdErr: a.StdErr(), Min: a.Min(), Max: a.Max()}
}

// String renders the paper-style "mean ± std" cell.
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.Std)
}

// CI95 returns the half-width of a ~95%% confidence interval on the mean,
// using the normal approximation (1.96 · stderr).
func (s Summary) CI95() float64 { return 1.96 * s.StdErr }

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the unbiased standard deviation of xs.
func Std(xs []float64) float64 { return Summarize(xs).Std }

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		// invariant: aggregation runs only after at least one round is recorded.
		panic("stats: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram bins xs into n equal-width bins over [min, max] and returns the
// bin edges (n+1 values) and counts (n values). Degenerate ranges collapse
// to a single bin.
func Histogram(xs []float64, n int) (edges []float64, counts []int) {
	if n < 1 {
		n = 1
	}
	s := Summarize(xs)
	lo, hi := s.Min, s.Max
	if len(xs) == 0 || lo == hi {
		return []float64{lo, hi}, []int{len(xs)}
	}
	edges = make([]float64, n+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	counts = make([]int, n)
	width := (hi - lo) / float64(n)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}
