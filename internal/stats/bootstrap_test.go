package stats

import (
	"testing"

	"mfcp/internal/rng"
)

func TestPairedBootstrapClearDifference(t *testing.T) {
	r := rng.New(1)
	n := 40
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := r.Normal(1, 0.5)
		a[i] = base - 0.4 + r.Normal(0, 0.05) // a clearly lower
		b[i] = base + r.Normal(0, 0.05)
	}
	c := PairedBootstrap(a, b, 4000, r)
	if !c.Significant() || c.CIHigh >= 0 {
		t.Fatalf("clear difference not significant: %+v", c)
	}
	if c.PBetter < 0.99 {
		t.Fatalf("PBetter=%v", c.PBetter)
	}
	if c.N != n {
		t.Fatalf("N=%d", c.N)
	}
}

func TestPairedBootstrapNoDifference(t *testing.T) {
	r := rng.New(2)
	n := 30
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.Normal(0, 1)
		b[i] = r.Normal(0, 1)
	}
	c := PairedBootstrap(a, b, 4000, r)
	if c.Significant() && (c.CILow > 0.3 || c.CIHigh < -0.3) {
		t.Fatalf("null case strongly significant: %+v", c)
	}
	if c.CILow > c.CIHigh {
		t.Fatal("inverted interval")
	}
}

func TestPairedBootstrapPairingMatters(t *testing.T) {
	// Massive shared variance, tiny consistent difference: only a PAIRED
	// test can detect it.
	r := rng.New(3)
	n := 25
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := r.Normal(0, 10)
		a[i] = base - 0.2
		b[i] = base
	}
	c := PairedBootstrap(a, b, 4000, r)
	if !c.Significant() {
		t.Fatalf("paired structure not exploited: %+v", c)
	}
}

func TestPairedBootstrapEmptyAndMismatch(t *testing.T) {
	r := rng.New(4)
	c := PairedBootstrap(nil, nil, 100, r)
	if c.N != 0 || c.Significant() {
		t.Fatalf("empty comparison: %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	PairedBootstrap([]float64{1}, []float64{1, 2}, 100, r)
}
