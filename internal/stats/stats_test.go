package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if a.N() != 8 {
		t.Fatalf("N=%d", a.N())
	}
	if !almost(a.Mean(), 5, 1e-12) {
		t.Fatalf("mean=%v", a.Mean())
	}
	// population variance is 4; unbiased sample variance is 32/7.
	if !almost(a.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("var=%v", a.Var())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min=%v max=%v", a.Min(), a.Max())
	}
}

func TestEmptyAccumulator(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Var() != 0 || a.Std() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	check := func(xs, ys []float64) bool {
		for _, v := range append(append([]float64{}, xs...), ys...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				return true // skip pathological inputs
			}
		}
		var seq Accumulator
		seq.AddAll(xs)
		seq.AddAll(ys)
		var a, b Accumulator
		a.AddAll(xs)
		b.AddAll(ys)
		a.Merge(b)
		if a.N() != seq.N() {
			return false
		}
		if seq.N() == 0 {
			return true
		}
		scale := 1e-9 * (1 + math.Abs(seq.Mean()))
		return almost(a.Mean(), seq.Mean(), scale) && almost(a.Var(), seq.Var(), 1e-6*(1+seq.Var()))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEmptySides(t *testing.T) {
	var a, b Accumulator
	b.AddAll([]float64{1, 2, 3})
	a.Merge(b)
	if a.N() != 3 || !almost(a.Mean(), 2, 1e-12) {
		t.Fatalf("merge into empty failed: n=%d mean=%v", a.N(), a.Mean())
	}
	var c Accumulator
	a.Merge(c)
	if a.N() != 3 {
		t.Fatal("merging empty changed N")
	}
}

func TestSummarizeString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.String() != "2.000 ± 1.000" {
		t.Fatalf("String()=%q", s.String())
	}
}

func TestCI95(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	want := 1.96 * s.StdErr
	if !almost(s.CI95(), want, 1e-12) {
		t.Fatalf("CI95=%v want %v", s.CI95(), want)
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 3}), 2, 1e-12) {
		t.Fatal("Mean wrong")
	}
	if !almost(Std([]float64{1, 3}), math.Sqrt2, 1e-12) {
		t.Fatal("Std wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extreme percentiles wrong")
	}
	if !almost(Percentile(xs, 50), 3, 1e-12) {
		t.Fatalf("median=%v", Percentile(xs, 50))
	}
	if !almost(Percentile(xs, 25), 2, 1e-12) {
		t.Fatalf("p25=%v", Percentile(xs, 25))
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestPercentilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty slice")
		}
	}()
	Percentile(nil, 50)
}

func TestPercentileMonotone(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.5, 0.9, 1.0}
	edges, counts := Histogram(xs, 2)
	if len(edges) != 3 || len(counts) != 2 {
		t.Fatalf("edges=%v counts=%v", edges, counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram lost samples: %v", counts)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	_, counts := Histogram([]float64{3, 3, 3}, 4)
	if len(counts) != 1 || counts[0] != 3 {
		t.Fatalf("degenerate histogram: %v", counts)
	}
	_, counts = Histogram(nil, 4)
	if counts[0] != 0 {
		t.Fatalf("empty histogram: %v", counts)
	}
}
