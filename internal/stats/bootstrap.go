package stats

import "mfcp/internal/rng"

// PairedComparison summarizes a paired difference between two methods
// measured on the same replicates (e.g. regret of TSM vs MFCP on identical
// scenarios and evaluation rounds).
type PairedComparison struct {
	// MeanDiff is mean(a − b); negative means a is better when lower is
	// better.
	MeanDiff float64
	// CILow and CIHigh bound the bootstrap 95% confidence interval of the
	// mean difference.
	CILow, CIHigh float64
	// PBetter is the bootstrap probability that mean(a) < mean(b).
	PBetter float64
	// N is the number of pairs.
	N int
}

// Significant reports whether the 95% interval excludes zero.
func (c PairedComparison) Significant() bool {
	return c.CILow > 0 || c.CIHigh < 0
}

// PairedBootstrap compares paired samples a and b (equal length) with B
// bootstrap resamples (B <= 0 uses 10000). It is the significance test the
// experiment write-up uses: replicates are paired by construction, so
// resampling pairs preserves the correlation structure.
func PairedBootstrap(a, b []float64, B int, r *rng.Source) PairedComparison {
	if len(a) != len(b) {
		// invariant: paired samples come from the same evaluation loop.
		panic("stats: PairedBootstrap length mismatch")
	}
	n := len(a)
	out := PairedComparison{N: n}
	if n == 0 {
		return out
	}
	if B <= 0 {
		B = 10000
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	out.MeanDiff = Mean(diffs)

	means := make([]float64, B)
	better := 0
	for rep := 0; rep < B; rep++ {
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += diffs[r.Intn(n)]
		}
		m := sum / float64(n)
		means[rep] = m
		if m < 0 {
			better++
		}
	}
	out.CILow = Percentile(means, 2.5)
	out.CIHigh = Percentile(means, 97.5)
	out.PBetter = float64(better) / float64(B)
	return out
}
