// Package sched simulates executing a matched round of tasks on the fleet:
// per-cluster busy times under sequential-exclusive or parallel-sharing
// scheduling, Bernoulli task-failure draws from the ground-truth
// reliability model, and the utilization accounting behind the paper's
// third metric.
package sched

import (
	"fmt"

	"mfcp/internal/cluster"
	"mfcp/internal/rng"
	"mfcp/internal/taskgraph"
)

// Mode selects the within-cluster scheduling discipline.
type Mode int

const (
	// Sequential is the paper's convex setting: tasks run one at a time
	// with exclusive access (§2.1).
	Sequential Mode = iota
	// Parallel is the resource-sharing setting of §3.4: a cluster's batch
	// finishes in ζ(k)·Σ t, the speedup curve being the cluster's own.
	Parallel
)

// Result reports one executed round.
type Result struct {
	// Busy[i] is cluster i's total busy time (seconds, same normalization
	// as the input times).
	Busy []float64
	// TaskSeconds[j] is task j's standalone realized duration (before any
	// parallel speedup adjustment) — the observation an online learner can
	// collect for the assigned pair.
	TaskSeconds []float64
	// Makespan is the maximum busy time.
	Makespan float64
	// Success[j] reports whether task j completed.
	Success []bool
	// SuccessRate is the fraction of completed tasks.
	SuccessRate float64
	// Utilization is Σ busy / (M · makespan) — how evenly the round kept
	// the fleet working. 1 means perfectly balanced.
	Utilization float64
}

// Execute simulates one round: tasks[j] runs on fleet[assign[j]]. Times are
// the ground-truth durations perturbed by each cluster's run-to-run noise;
// failures are Bernoulli draws from the ground-truth reliability.
func Execute(fleet []*cluster.Profile, tasks []*taskgraph.Task, assign []int, mode Mode, r *rng.Source) Result {
	if len(tasks) != len(assign) {
		// invariant: the matcher emits exactly one assignment per task.
		panic(fmt.Sprintf("sched: %d tasks but %d assignments", len(tasks), len(assign)))
	}
	m := len(fleet)
	res := Result{
		Busy:        make([]float64, m),
		TaskSeconds: make([]float64, len(tasks)),
		Success:     make([]bool, len(tasks)),
	}
	counts := make([]int, m)
	for j, i := range assign {
		if i < 0 || i >= m {
			// invariant: rounding maps every task to an in-range fleet index.
			panic(fmt.Sprintf("sched: task %d assigned to cluster %d of %d", j, i, m))
		}
		p := fleet[i]
		dur := p.TrueTime(tasks[j]) * r.LogNormal(0, p.NoiseSigma)
		res.TaskSeconds[j] = dur
		res.Busy[i] += dur
		counts[i]++
		res.Success[j] = r.Bernoulli(p.TrueReliability(tasks[j]))
	}
	if mode == Parallel {
		for i := range res.Busy {
			res.Busy[i] *= fleet[i].Speedup.Zeta(float64(counts[i]))
		}
	}
	succ := 0
	for _, ok := range res.Success {
		if ok {
			succ++
		}
	}
	if len(tasks) > 0 {
		res.SuccessRate = float64(succ) / float64(len(tasks))
	}
	for _, b := range res.Busy {
		if b > res.Makespan {
			res.Makespan = b
		}
	}
	if res.Makespan > 0 {
		sum := 0.0
		for _, b := range res.Busy {
			sum += b
		}
		res.Utilization = sum / (float64(m) * res.Makespan)
	}
	return res
}
