package sched

import (
	"math"
	"testing"

	"mfcp/internal/cluster"
	"mfcp/internal/rng"
	"mfcp/internal/taskgraph"
)

func fixture() ([]*cluster.Profile, []*taskgraph.Task) {
	fleet := cluster.MustFleet(cluster.SettingA)
	tasks := taskgraph.GenerateMix(6, nil, rng.New(1))
	return fleet, tasks
}

func TestExecuteAccounting(t *testing.T) {
	fleet, tasks := fixture()
	assign := []int{0, 1, 2, 0, 1, 2}
	res := Execute(fleet, tasks, assign, Sequential, rng.New(2))
	if len(res.Busy) != 3 || len(res.Success) != 6 {
		t.Fatalf("shapes: busy=%d success=%d", len(res.Busy), len(res.Success))
	}
	maxBusy := 0.0
	sum := 0.0
	for _, b := range res.Busy {
		if b < 0 {
			t.Fatalf("negative busy time %v", b)
		}
		if b > maxBusy {
			maxBusy = b
		}
		sum += b
	}
	if res.Makespan != maxBusy {
		t.Fatalf("makespan %v != max busy %v", res.Makespan, maxBusy)
	}
	if want := sum / (3 * maxBusy); math.Abs(res.Utilization-want) > 1e-12 {
		t.Fatalf("utilization %v want %v", res.Utilization, want)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization out of range: %v", res.Utilization)
	}
}

func TestExecuteDeterministicPerStream(t *testing.T) {
	fleet, tasks := fixture()
	assign := []int{0, 0, 1, 1, 2, 2}
	a := Execute(fleet, tasks, assign, Sequential, rng.New(7))
	b := Execute(fleet, tasks, assign, Sequential, rng.New(7))
	for i := range a.Busy {
		if a.Busy[i] != b.Busy[i] {
			t.Fatal("execution not deterministic")
		}
	}
}

func TestParallelModeAppliesSpeedup(t *testing.T) {
	fleet, tasks := fixture()
	// Everything on cluster 0 — parallel mode must shrink busy time by ζ(6).
	assign := []int{0, 0, 0, 0, 0, 0}
	seq := Execute(fleet, tasks, assign, Sequential, rng.New(9))
	par := Execute(fleet, tasks, assign, Parallel, rng.New(9))
	want := seq.Busy[0] * fleet[0].Speedup.Zeta(6)
	if math.Abs(par.Busy[0]-want) > 1e-9*want {
		t.Fatalf("parallel busy %v want %v", par.Busy[0], want)
	}
	if par.Busy[0] >= seq.Busy[0] {
		t.Fatal("parallel execution not faster")
	}
}

func TestSuccessRateTracksReliability(t *testing.T) {
	fleet, tasks := fixture()
	// Put everything on the most reliable cluster and average over many
	// seeds: the success rate must approximate the mean true reliability.
	assign := []int{0, 0, 0, 0, 0, 0}
	wantMean := 0.0
	for _, task := range tasks {
		wantMean += fleet[0].TrueReliability(task)
	}
	wantMean /= float64(len(tasks))
	r := rng.New(11)
	acc := 0.0
	const reps = 400
	for k := 0; k < reps; k++ {
		acc += Execute(fleet, tasks, assign, Sequential, r.SplitIndexed("rep", k)).SuccessRate
	}
	got := acc / reps
	if math.Abs(got-wantMean) > 0.03 {
		t.Fatalf("success rate %v, want ≈%v", got, wantMean)
	}
}

func TestExecutePanicsOnBadAssign(t *testing.T) {
	fleet, tasks := fixture()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range cluster")
		}
	}()
	Execute(fleet, tasks, []int{0, 0, 0, 0, 0, 5}, Sequential, rng.New(1))
}

func TestExecutePanicsOnLengthMismatch(t *testing.T) {
	fleet, tasks := fixture()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Execute(fleet, tasks, []int{0}, Sequential, rng.New(1))
}
