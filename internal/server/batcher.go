package server

import (
	"errors"
	"sort"
	"time"

	"mfcp/internal/obs"
	"mfcp/internal/platform"
)

// errShortServe guards the one-round contract of serveBatch; it maps to
// 500 (internal) — the session broke its own API, not the tenant.
var errShortServe = errors.New("server: session returned no round report")

// run is the batcher: the only goroutine that touches the Matcher. It
// pulls admitted requests off the queue, coalesces them into composed
// rounds under the deadline/size policy, serves each round through the
// session, and fans the per-slot results back out to the waiting handlers.
// When the queue closes (Drain), it flushes what remains, checkpoints, and
// exits.
//
// Rounds are packed in deadline priority, not arrival order: requests
// carrying a client deadline go first, earliest deadline first, so a
// tight-deadline request is never starved behind a large earlier
// submission that fills the round. Requests are never split across rounds
// — every tenant's batch is placed by one predictor version in one solve —
// so whatever does not fit under MaxBatchTasks stays pending, in priority
// order, for the next round.
func (s *Server) run() {
	defer close(s.done)
	var pending []*request
	for {
		if len(pending) == 0 {
			rq, ok := <-s.submit
			if !ok {
				break
			}
			pending = append(pending, rq)
		}
		total := 0
		for _, rq := range pending {
			total += len(rq.tasks)
		}
		flush := flushImmediate

		// Window-bounded coalescing: wait for more tenants, flushing early
		// once the pending tasks can fill a round. A receive from the closed
		// queue falls through immediately, so drain never waits the window.
		if s.cfg.Window > 0 && total < s.cfg.MaxBatchTasks {
			timer := time.NewTimer(s.cfg.Window)
		collect:
			for {
				select {
				case rq, ok := <-s.submit:
					if !ok {
						break collect
					}
					pending = append(pending, rq)
					total += len(rq.tasks)
					if total >= s.cfg.MaxBatchTasks {
						flush = flushBySize
						break collect
					}
				case <-timer.C:
					flush = flushByDeadline
					break collect
				}
			}
			timer.Stop()
		}
		var batch []*request
		batch, pending = packBatch(pending, s.cfg.MaxBatchTasks)
		total = 0
		for _, rq := range batch {
			total += len(rq.tasks)
		}
		s.serveBatch(batch, total, flush)
	}
	// Queue closed and fully drained: every accepted request has been
	// answered. Persist the session so the drained state is resumable.
	_ = s.m.Checkpoint()
}

// packBatch orders the pending requests by placement priority — client
// deadlines first, earliest first, deadline-less requests after in arrival
// order — then fills one round up to maxTasks, stopping at the first
// request that does not fit so equal-priority requests keep their FIFO
// order. Returns the packed batch and what stays pending. With no
// deadlines in play the sort is a stable no-op and packing reproduces the
// historical FIFO-with-carry batches exactly.
func packBatch(pending []*request, maxTasks int) (batch, rest []*request) {
	sort.SliceStable(pending, func(i, j int) bool {
		a, b := pending[i], pending[j]
		switch {
		case a.deadline.IsZero():
			return false
		case b.deadline.IsZero():
			return true
		default:
			return a.deadline.Before(b.deadline)
		}
	})
	total := 0
	for k, rq := range pending {
		if total+len(rq.tasks) > maxTasks {
			return pending[:k], pending[k:]
		}
		total += len(rq.tasks)
	}
	return pending, nil
}

// serveBatch composes one round from the batch, serves it, and answers
// every request in it. On a serving error the whole batch fails with that
// error — per-request validation already ran at admission, so a failure
// here is the engine's, not one tenant's.
func (s *Server) serveBatch(batch []*request, total int, flush flushReason) {
	round := make([]int, 0, total)
	for _, rq := range batch {
		round = append(round, rq.tasks...)
	}
	serveStart := time.Now()
	// Reset the phase-timing slot before the serve: the session's trace
	// hook (wired in New) fills it on this goroutine during ServeComposed.
	// A matcher without a hook leaves it zero, and the traces simply carry
	// no phase breakdown.
	s.curTrace = platform.RoundTrace{}
	reports, err := s.m.ServeComposed([][]int{round})
	s.ringDepth.Store(int64(s.m.RingDepth()))
	s.met.ringDepth.Set(float64(s.m.RingDepth()))
	s.served.Store(int64(s.m.Served()))
	if err == nil && len(reports) != 1 {
		err = errShortServe
	}
	if err != nil {
		s.traceBatch(batch, nil, serveStart, err)
		for _, rq := range batch {
			rq.reply <- reply{err: err}
		}
		return
	}
	rr := &reports[0]
	s.met.observeBatch(len(batch), total, flush)
	s.traceBatch(batch, rr, serveStart, nil)
	off := 0
	for _, rq := range batch {
		resp := &MatchResponse{
			RequestID:  rq.id,
			Round:      rr.Round,
			Coalesced:  len(batch),
			BatchTasks: total,
			Sparse:     rr.Sparse,
			AutoSparse: rr.AutoSparse,
			Regret:     rr.Eval.Regret,
		}
		resp.Assignments = make([]TaskAssignment, len(rq.tasks))
		for i := range rq.tasks {
			slot := off + i
			resp.Assignments[i] = TaskAssignment{
				Task:    rr.TaskIdx[slot],
				Cluster: rr.Assignment[slot],
				Seconds: rr.Execution.TaskSeconds[slot],
				Success: rr.Execution.Success[slot],
			}
		}
		off += len(rq.tasks)
		rq.reply <- reply{resp: resp}
	}
}

// traceBatch records one RequestTrace per coalesced request. All requests
// in the batch share the round's phase timings (the round WAS shared); the
// queue wait and total span are each request's own. Runs on the batcher
// goroutine, where curTrace was just written.
func (s *Server) traceBatch(batch []*request, rr *platform.RoundReport, serveStart time.Time, err error) {
	now := time.Now()
	status := "ok"
	if err != nil {
		status = kindFor(err)
	}
	for _, rq := range batch {
		t := obs.RequestTrace{
			ID:        rq.id,
			Tenant:    rq.tenant,
			Tasks:     len(rq.tasks),
			Round:     -1,
			Coalesced: len(batch),
			Start:     rq.enqueued.UnixNano(),
			QueueNs:   serveStart.Sub(rq.enqueued).Nanoseconds(),
			PredictNs: s.curTrace.PredictNs,
			ScreenNs:  s.curTrace.ScreenNs,
			SolveNs:   s.curTrace.SolveNs,
			ExecNs:    s.curTrace.ExecNs,
			IngestNs:  s.curTrace.IngestNs,
			TotalNs:   now.Sub(rq.enqueued).Nanoseconds(),
			Status:    status,
		}
		if rr != nil {
			t.Round = rr.Round
		}
		s.traces.Put(t)
	}
}
