package server

import (
	"errors"
	"time"

	"mfcp/internal/obs"
	"mfcp/internal/platform"
)

// errShortServe guards the one-round contract of serveBatch; it maps to
// 500 (internal) — the session broke its own API, not the tenant.
var errShortServe = errors.New("server: session returned no round report")

// run is the batcher: the only goroutine that touches the Matcher. It
// pulls admitted requests off the queue, coalesces them into composed
// rounds under the deadline/size policy, serves each round through the
// session, and fans the per-slot results back out to the waiting handlers.
// When the queue closes (Drain), it flushes what remains, checkpoints, and
// exits.
func (s *Server) run() {
	defer close(s.done)
	var carry *request
	for {
		first := carry
		carry = nil
		if first == nil {
			rq, ok := <-s.submit
			if !ok {
				break
			}
			first = rq
		}
		batch := append(make([]*request, 0, 8), first)
		total := len(first.tasks)
		flush := flushImmediate

		// Deadline-aware coalescing: wait up to Window for more tenants,
		// flushing early once the composed round reaches MaxBatchTasks. A
		// request that would overflow the cap is carried into the next
		// round — requests are never split across rounds, so every tenant's
		// batch is placed by one predictor version in one solve.
		if s.cfg.Window > 0 && total < s.cfg.MaxBatchTasks {
			timer := time.NewTimer(s.cfg.Window)
		collect:
			for {
				select {
				case rq, ok := <-s.submit:
					if !ok {
						break collect
					}
					if total+len(rq.tasks) > s.cfg.MaxBatchTasks {
						carry = rq
						flush = flushBySize
						break collect
					}
					batch = append(batch, rq)
					total += len(rq.tasks)
					if total >= s.cfg.MaxBatchTasks {
						flush = flushBySize
						break collect
					}
				case <-timer.C:
					flush = flushByDeadline
					break collect
				}
			}
			timer.Stop()
		}
		s.serveBatch(batch, total, flush)
	}
	// Queue closed and fully drained: every accepted request has been
	// answered. Persist the session so the drained state is resumable.
	_ = s.m.Checkpoint()
}

// serveBatch composes one round from the batch, serves it, and answers
// every request in it. On a serving error the whole batch fails with that
// error — per-request validation already ran at admission, so a failure
// here is the engine's, not one tenant's.
func (s *Server) serveBatch(batch []*request, total int, flush flushReason) {
	round := make([]int, 0, total)
	for _, rq := range batch {
		round = append(round, rq.tasks...)
	}
	serveStart := time.Now()
	// Reset the phase-timing slot before the serve: the session's trace
	// hook (wired in New) fills it on this goroutine during ServeComposed.
	// A matcher without a hook leaves it zero, and the traces simply carry
	// no phase breakdown.
	s.curTrace = platform.RoundTrace{}
	reports, err := s.m.ServeComposed([][]int{round})
	s.ringDepth.Store(int64(s.m.RingDepth()))
	s.met.ringDepth.Set(float64(s.m.RingDepth()))
	s.served.Store(int64(s.m.Served()))
	if err == nil && len(reports) != 1 {
		err = errShortServe
	}
	if err != nil {
		s.traceBatch(batch, nil, serveStart, err)
		for _, rq := range batch {
			rq.reply <- reply{err: err}
		}
		return
	}
	rr := &reports[0]
	s.met.observeBatch(len(batch), total, flush)
	s.traceBatch(batch, rr, serveStart, nil)
	off := 0
	for _, rq := range batch {
		resp := &MatchResponse{
			RequestID:  rq.id,
			Round:      rr.Round,
			Coalesced:  len(batch),
			BatchTasks: total,
			Sparse:     rr.Sparse,
			AutoSparse: rr.AutoSparse,
			Regret:     rr.Eval.Regret,
		}
		resp.Assignments = make([]TaskAssignment, len(rq.tasks))
		for i := range rq.tasks {
			slot := off + i
			resp.Assignments[i] = TaskAssignment{
				Task:    rr.TaskIdx[slot],
				Cluster: rr.Assignment[slot],
				Seconds: rr.Execution.TaskSeconds[slot],
				Success: rr.Execution.Success[slot],
			}
		}
		off += len(rq.tasks)
		rq.reply <- reply{resp: resp}
	}
}

// traceBatch records one RequestTrace per coalesced request. All requests
// in the batch share the round's phase timings (the round WAS shared); the
// queue wait and total span are each request's own. Runs on the batcher
// goroutine, where curTrace was just written.
func (s *Server) traceBatch(batch []*request, rr *platform.RoundReport, serveStart time.Time, err error) {
	now := time.Now()
	status := "ok"
	if err != nil {
		status = kindFor(err)
	}
	for _, rq := range batch {
		t := obs.RequestTrace{
			ID:        rq.id,
			Tenant:    rq.tenant,
			Tasks:     len(rq.tasks),
			Round:     -1,
			Coalesced: len(batch),
			Start:     rq.enqueued.UnixNano(),
			QueueNs:   serveStart.Sub(rq.enqueued).Nanoseconds(),
			PredictNs: s.curTrace.PredictNs,
			ScreenNs:  s.curTrace.ScreenNs,
			SolveNs:   s.curTrace.SolveNs,
			ExecNs:    s.curTrace.ExecNs,
			IngestNs:  s.curTrace.IngestNs,
			TotalNs:   now.Sub(rq.enqueued).Nanoseconds(),
			Status:    status,
		}
		if rr != nil {
			t.Round = rr.Round
		}
		s.traces.Put(t)
	}
}
