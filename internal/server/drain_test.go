package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDrainUnderLoadAnswersEverythingAccepted is the shutdown contract:
// with concurrent tenants mid-flight, Drain stops admission, flushes and
// answers every accepted request, checkpoints the session, and leaves no
// goroutines behind. Run under -race this also exercises the
// handler/batcher handoff and the drain gate.
func TestDrainUnderLoadAnswersEverythingAccepted(t *testing.T) {
	before := runtime.NumGoroutine()

	f := newFakeMatcher()
	f.delay = time.Millisecond // keep a few requests in flight at drain time
	s := New(f, Config{Window: 500 * time.Microsecond, MaxBatchTasks: 16})
	ts := httptest.NewServer(s.Handler())

	const tenants = 8
	var (
		wg       sync.WaitGroup
		ok       atomic.Int64
		shed     atomic.Int64
		badCodes sync.Map
		stop     atomic.Bool
	)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", i)
			for j := 0; !stop.Load(); j++ {
				resp, _ := postMatch(t, ts, tenant, []int{i, tenants + j%10})
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					shed.Add(1)
				default:
					badCodes.Store(resp.StatusCode, true)
				}
			}
		}(i)
	}

	time.Sleep(30 * time.Millisecond) // let load build
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	stop.Store(true)
	wg.Wait()
	ts.Close()

	badCodes.Range(func(code, _ any) bool {
		t.Errorf("request answered with unexpected status %v", code)
		return true
	})
	if ok.Load() == 0 {
		t.Fatal("no request succeeded before the drain")
	}
	// Every accepted request was answered — nothing hung or was dropped.
	if acc, ans := s.accepted.Load(), s.answered.Load(); acc != ans {
		t.Fatalf("accepted %d requests but answered %d", acc, ans)
	}
	if f.checkpoints == 0 {
		t.Fatal("drain did not checkpoint the session")
	}

	// The batcher and every handler must be gone; poll briefly to let the
	// scheduler retire finished goroutines (HTTP keep-alive workers close
	// with the test server).
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestDrainIdempotentAndImmediateWhenIdle pins that Drain with nothing in
// flight returns promptly and that calling it twice is safe.
func TestDrainIdempotentAndImmediateWhenIdle(t *testing.T) {
	f := newFakeMatcher()
	s := New(f, Config{Window: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("first drain: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if f.checkpoints != 1 {
		t.Fatalf("checkpoints %d, want exactly 1", f.checkpoints)
	}
}

// TestDrainRejectsNewWork pins the admission side of the gate: after Drain
// begins, /v1/match sheds with 503 and the body says so.
func TestDrainRejectsNewWork(t *testing.T) {
	f := newFakeMatcher()
	s := New(f, Config{Window: 0})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	drain(t, s)

	resp, raw := postMatch(t, ts, "late", []int{1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, raw)
	}
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil || eb.RetryAfter == 0 {
		t.Fatalf("shed body %s (err %v)", raw, err)
	}
}
