package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// mkreq builds a batcher-side request with n tasks and an optional
// deadline offset (0 = none) against a fixed epoch, so packBatch tests
// are wall-clock free.
func mkreq(id uint64, n int, deadlineMs int64) *request {
	epoch := time.Unix(1_700_000_000, 0)
	rq := &request{id: id, tasks: make([]int, n), enqueued: epoch}
	if deadlineMs > 0 {
		rq.deadline = epoch.Add(time.Duration(deadlineMs) * time.Millisecond)
	}
	return rq
}

func ids(rqs []*request) []uint64 {
	out := make([]uint64, len(rqs))
	for i, rq := range rqs {
		out[i] = rq.id
	}
	return out
}

func sameIDs(a []uint64, b ...uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPackBatchFIFOWithoutDeadlines pins the legacy behavior: with no
// deadlines in play, packing is FIFO with the first non-fitting request
// (and everything after it) carried whole.
func TestPackBatchFIFOWithoutDeadlines(t *testing.T) {
	pending := []*request{mkreq(1, 3, 0), mkreq(2, 3, 0), mkreq(3, 4, 0), mkreq(4, 1, 0)}
	batch, rest := packBatch(pending, 8)
	if !sameIDs(ids(batch), 1, 2) {
		t.Fatalf("batch %v, want FIFO prefix [1 2]", ids(batch))
	}
	// Request 4 would fit (3+3+1 ≤ 8) but packing must not leapfrog an
	// equal-priority request — that would starve large submissions forever.
	if !sameIDs(ids(rest), 3, 4) {
		t.Fatalf("rest %v, want [3 4]", ids(rest))
	}
}

// TestPackBatchDeadlinesFirst pins the priority order: deadline-carrying
// requests pack before deadline-less ones, earliest first, FIFO within
// ties.
func TestPackBatchDeadlinesFirst(t *testing.T) {
	pending := []*request{mkreq(1, 6, 0), mkreq(2, 2, 50), mkreq(3, 2, 10), mkreq(4, 2, 50)}
	batch, rest := packBatch(pending, 8)
	if !sameIDs(ids(batch), 3, 2, 4) {
		t.Fatalf("batch %v, want deadline order [3 2 4]", ids(batch))
	}
	if !sameIDs(ids(rest), 1) {
		t.Fatalf("rest %v, want the deadline-less [1] carried", ids(rest))
	}
}

func postMatchDeadline(t *testing.T, ts *httptest.Server, tenant string, tasks []int, deadlineMs int64) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(MatchRequest{Tenant: tenant, Tasks: tasks, DeadlineMillis: deadlineMs})
	resp, err := http.Post(ts.URL+"/v1/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/match: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestTightDeadlineNotStarvedByLargeRequest is the end-to-end starvation
// pin: a large request arrives first and cannot share a round with the
// small tight-deadline request that follows; the batcher must serve the
// deadline request in the earlier round instead of making it wait behind
// the bigger FIFO predecessor.
func TestTightDeadlineNotStarvedByLargeRequest(t *testing.T) {
	f := newFakeMatcher()
	s := New(f, Config{Window: time.Second, MaxBatchTasks: 8})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	var large, tight MatchResponse
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, raw := postMatch(t, ts, "bulk", []int{0, 1, 2, 3, 4, 5})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("large request: status %d: %s", resp.StatusCode, raw)
			return
		}
		large = decodeMatch(t, raw)
	}()
	// Let the batcher pick up the large request and open its window, then
	// submit the urgent one: 6+4 > 8 forces a size flush with both pending.
	time.Sleep(100 * time.Millisecond)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, raw := postMatchDeadline(t, ts, "urgent", []int{6, 7, 8, 9}, 5)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("tight request: status %d: %s", resp.StatusCode, raw)
			return
		}
		tight = decodeMatch(t, raw)
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if tight.Round >= large.Round {
		t.Fatalf("tight-deadline request served round %d, large FIFO predecessor round %d — deadline request was starved",
			tight.Round, large.Round)
	}
	if tight.Coalesced != 1 || tight.BatchTasks != 4 {
		t.Fatalf("tight-deadline response %+v, want its own 4-task round", tight)
	}
}

// TestNegativeDeadlineRejected pins validation: deadline_ms < 0 is a 400
// at the door, never a queued request.
func TestNegativeDeadlineRejected(t *testing.T) {
	f := newFakeMatcher()
	s := New(f, Config{Window: 0})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postMatchDeadline(t, ts, "t", []int{1}, -7)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if len(f.servedRounds()) != 0 {
		t.Fatal("rejected request reached the batcher")
	}
}

// backendFake layers the optional Backend surface over the fake matcher,
// as *platform.Session does.
type backendFake struct {
	*fakeMatcher
	name string
}

func (b *backendFake) Backend() string { return b.name }

// TestStatsReportBackend pins the /v1/stats backend field: present when
// the matcher names its predictor family, absent otherwise.
func TestStatsReportBackend(t *testing.T) {
	s := New(&backendFake{fakeMatcher: newFakeMatcher(), name: "ensemble"}, Config{Window: 0})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sb statsBody
	if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sb.Backend != "ensemble" {
		t.Fatalf("stats backend %q, want %q", sb.Backend, "ensemble")
	}

	plain := New(newFakeMatcher(), Config{Window: 0})
	defer drain(t, plain)
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	resp, err = http.Get(tsPlain.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(json.RawMessage(mustReadAll(t, resp)))
	if bytes.Contains(raw, []byte(`"backend"`)) {
		t.Fatalf("backend field present for a matcher without one: %s", raw)
	}
}

func mustReadAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
