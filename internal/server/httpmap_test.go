package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"mfcp/internal/matching"
	"mfcp/internal/mfcperr"
)

// TestStatusMapping pins the mfcperr → HTTP contract: validation errors
// are the caller's (4xx), infeasibility is 422, shutdown is 503, and
// everything the client cannot fix is 500.
func TestStatusMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
		kind   string
	}{
		{mfcperr.Wrap(mfcperr.ErrBadShape, "ragged"), http.StatusBadRequest, "bad_shape"},
		{mfcperr.Wrap(mfcperr.ErrBadConfig, "bad gamma"), http.StatusBadRequest, "bad_config"},
		{mfcperr.Wrap(mfcperr.ErrInfeasible, "starved"), http.StatusUnprocessableEntity, "infeasible"},
		{mfcperr.Canceled("platform.serve", nil), http.StatusServiceUnavailable, "canceled"},
		{mfcperr.Wrap(mfcperr.ErrNotConverged, "budget"), http.StatusInternalServerError, "not_converged"},
		{mfcperr.Wrap(mfcperr.ErrCorruptCheckpoint, "crc"), http.StatusInternalServerError, "corrupt_checkpoint"},
		{errors.New("disk on fire"), http.StatusInternalServerError, "internal"},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeError(rec, tc.err)
		if rec.Code != tc.status {
			t.Fatalf("%v: status %d, want %d", tc.err, rec.Code, tc.status)
		}
		var eb errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
			t.Fatalf("%v: body %s: %v", tc.err, rec.Body.Bytes(), err)
		}
		if eb.Kind != tc.kind {
			t.Fatalf("%v: kind %q, want %q", tc.err, eb.Kind, tc.kind)
		}
		if eb.Error == "" {
			t.Fatalf("%v: empty error message", tc.err)
		}
	}
}

// TestInfeasibleCarriesHallCertificate pins the 422 body: when the error
// chain holds a matching.HallViolation, the response carries the full
// structured certificate so the client can see the rejection is
// structural.
func TestInfeasibleCarriesHallCertificate(t *testing.T) {
	hall := &matching.HallViolation{
		Source: 2, Clusters: []int{0, 2, 5}, Demand: 9, Capacity: 6,
	}
	err := fmt.Errorf("server: batch rejected: %w", hall)
	if !errors.Is(err, mfcperr.ErrInfeasible) {
		t.Fatal("certificate lost ErrInfeasible through wrapping")
	}
	rec := httptest.NewRecorder()
	writeError(rec, err)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", rec.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Kind != "infeasible" || eb.Hall == nil {
		t.Fatalf("body %+v lacks the certificate", eb)
	}
	h := eb.Hall
	if h.Source != 2 || len(h.Clusters) != 3 || h.Demand != 9 || h.Capacity != 6 {
		t.Fatalf("certificate %+v does not round-trip", h)
	}
}

// TestEngineErrorFailsBatchWithMappedStatus runs an erroring matcher
// end-to-end: a serving failure is answered to every request in the batch
// with the mapped status, and an infeasibility failure carries its Hall
// certificate through the HTTP layer.
func TestEngineErrorFailsBatchWithMappedStatus(t *testing.T) {
	f := newFakeMatcher()
	f.serveErr = fmt.Errorf("reconcile: %w", &matching.HallViolation{
		Source: 0, Clusters: []int{0}, Demand: 3, Capacity: 1,
	})
	s := New(f, Config{Window: 0})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postMatch(t, ts, "t", []int{1, 2})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, raw)
	}
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Hall == nil || eb.Hall.Demand != 3 {
		t.Fatalf("422 body %s lost the certificate (err %v)", raw, err)
	}
}
