// Package server is the exchange platform's multi-tenant HTTP front-end:
// the promotion of the internal/platform serving engine from a library
// loop to a long-lived service (ROADMAP item 1). Tenants POST task batches
// to /v1/match and receive assignments; a deadline-aware micro-batcher
// coalesces concurrent tenants' tasks into one shared screen+solve round,
// amortizing the fixed per-round cost (problem build, workspace resets,
// oracle scoring, execution setup) across every tenant in the window.
//
// The serving session is single-owner: exactly one batcher goroutine calls
// into the platform.Session, so the engine's determinism contract — a
// round's result is a pure function of (round index, predictor version) —
// survives the network hop. A single tenant submitting sequentially
// replays the in-process RunOnline trajectory bit for bit.
//
// Admission control front-runs the queue: requests are rejected with
// Retry-After when the batch queue is full (503), when the observation
// ring is deep (503 — refits are falling behind ingest), or when the
// tenant exceeds its pending-task quota (429). Validation errors map
// through the mfcperr taxonomy (httpmap.go), so a malformed request can
// never poison a coalesced round that carries other tenants' tasks.
package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mfcp/internal/mfcperr"
	"mfcp/internal/obs"
	"mfcp/internal/platform"
)

// Matcher is the serving surface the front-end drives, implemented by
// *platform.Session. All methods are called from the single batcher
// goroutine.
type Matcher interface {
	// ServeComposed serves externally composed rounds of task pool indices.
	ServeComposed(rounds [][]int) ([]platform.RoundReport, error)
	// Checkpoint persists a resumable snapshot (no-op without a path).
	Checkpoint() error
	// PoolLen bounds valid task indices; Served is the absolute round count.
	PoolLen() int
	Served() int
	// RingDepth/RingCap expose observation-ring occupancy for backpressure.
	RingDepth() int
	RingCap() int
}

// Config parameterizes the front-end.
type Config struct {
	// Window bounds how long the batcher waits for more tenants after the
	// first request of a batch arrives. 0 disables coalescing entirely:
	// every request is served as its own round (the per-request baseline —
	// and the mode that preserves single-tenant replay determinism exactly).
	Window time.Duration
	// MaxBatchTasks flushes a batch once its composed round reaches this
	// many tasks, and bounds a single request's size. Must not exceed the
	// session's MaxRoundTasks (the observation ring is sized by it).
	// Default 64.
	MaxBatchTasks int
	// QueueCap bounds requests queued for batching; a full queue sheds with
	// 503 + Retry-After (default 128).
	QueueCap int
	// TenantMaxPending caps one tenant's queued-but-unanswered tasks; more
	// sheds with 429 + Retry-After (default 4 * MaxBatchTasks).
	TenantMaxPending int
	// RingHighWater sheds new work with 503 once the observation ring is
	// this full (fraction of capacity; default 0.9). The ring drains at
	// refit boundaries, so depth near capacity means refits are falling
	// behind ingest and further rounds risk dropping learning signal.
	RingHighWater float64
	// RetryAfterSeconds is the hint attached to 503/429 rejections
	// (default 1).
	RetryAfterSeconds int
	// Telemetry, when non-nil, receives the request/batch instruments and
	// is mounted at /metrics (with /debug/pprof) on the server's mux.
	Telemetry *obs.Registry
	// TraceCap sizes the request-trace ring served at /debug/traces: the
	// last TraceCap answered requests keep their per-phase timing records.
	// Default 256. The ring is always on — it is a fixed-size buffer with a
	// lock-free write path, cheap enough to leave running in production.
	TraceCap int
}

func (c *Config) fillDefaults() {
	if c.MaxBatchTasks == 0 {
		c.MaxBatchTasks = 64
	}
	if c.QueueCap == 0 {
		c.QueueCap = 128
	}
	if c.TenantMaxPending == 0 {
		c.TenantMaxPending = 4 * c.MaxBatchTasks
	}
	if c.RingHighWater == 0 {
		c.RingHighWater = 0.9
	}
	if c.RetryAfterSeconds == 0 {
		c.RetryAfterSeconds = 1
	}
	if c.TraceCap == 0 {
		c.TraceCap = 256
	}
}

// MatchRequest is the /v1/match request body: a tenant name and the task
// pool indices to place this round.
type MatchRequest struct {
	Tenant string `json:"tenant"`
	Tasks  []int  `json:"tasks"`
	// DeadlineMillis is the client's soft latency budget in milliseconds
	// from submission. The batcher packs tighter deadlines into rounds
	// first, so a small urgent request is not starved behind a large earlier
	// one when both cannot share a round. 0 means no deadline (packed after
	// every deadline-carrying request, FIFO among themselves). A scheduling
	// hint, not an SLA: the request is answered regardless.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// TaskAssignment is one task's placement and realized execution.
type TaskAssignment struct {
	Task    int     `json:"task"`
	Cluster int     `json:"cluster"`
	Seconds float64 `json:"seconds"`
	Success bool    `json:"success"`
}

// MatchResponse is the /v1/match response body. RequestID is the server's
// id for this submission — the key to find its timing record at
// /debug/traces. Round is the absolute round index that served this
// request; Coalesced and BatchTasks describe the shared round
// (Coalesced == 1 means no other tenant rode along).
type MatchResponse struct {
	RequestID   uint64           `json:"request_id"`
	Round       int              `json:"round"`
	Coalesced   int              `json:"coalesced"`
	BatchTasks  int              `json:"batch_tasks"`
	Sparse      bool             `json:"sparse"`
	AutoSparse  bool             `json:"auto_sparse"`
	Regret      float64          `json:"regret"`
	Assignments []TaskAssignment `json:"assignments"`
}

// request is one admitted submission traveling handler → batcher.
type request struct {
	id       uint64
	tenant   string
	tasks    []int
	enqueued time.Time
	// deadline is the absolute client deadline (enqueued + DeadlineMillis);
	// zero when the client sent none. Read only by the batcher's packing.
	deadline time.Time
	reply    chan reply
}

type reply struct {
	resp *MatchResponse
	err  error
}

// Server owns the batcher goroutine and the HTTP surface. Construct with
// New, mount Handler, and Drain on shutdown.
type Server struct {
	cfg Config
	m   Matcher
	met serverMetrics
	mux *http.ServeMux

	// backend is the matcher's predictor family name, captured once at
	// construction for /v1/stats; empty when the matcher exposes none.
	backend string

	submit chan *request

	// mu orders handler admissions against the drain transition: enqueues
	// register with enqueueWG under the read lock while draining is false,
	// and Drain flips the flag under the write lock, waits the group out,
	// and only then closes submit — so no handler can send on a closed
	// channel.
	mu        sync.RWMutex
	draining  bool
	enqueueWG sync.WaitGroup
	drainOnce sync.Once
	done      chan struct{}

	// Owner-goroutine session state mirrored for handlers and /v1/stats.
	ringDepth atomic.Int64
	served    atomic.Int64
	accepted  atomic.Int64
	answered  atomic.Int64

	// quotaMu guards the exact per-tenant quota ledger (pending) and the
	// bounded per-tenant stats digest (tstats). The two maps are deliberately
	// separate: pending is admission-control state and must stay exact per
	// tenant, while tstats is an observability surface and folds past
	// tenantStatsCap distinct names into obs.OverflowLabel.
	quotaMu sync.Mutex
	pending map[string]int
	tstats  map[string]*tenantStat

	// traces is the request-trace ring behind /debug/traces; traceSeq mints
	// request ids. curTrace is the engine's phase-timing record for the round
	// in flight, written by the session's trace hook during ServeComposed and
	// read right after it returns — both on the batcher goroutine, so the
	// field needs no lock.
	traces   *obs.TraceRing
	traceSeq atomic.Uint64
	curTrace platform.RoundTrace
}

// New wires a front-end around m and starts its batcher goroutine. The
// caller serves s.Handler() and must Drain before discarding the session.
func New(m Matcher, cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:     cfg,
		m:       m,
		met:     newServerMetrics(cfg.Telemetry),
		submit:  make(chan *request, cfg.QueueCap),
		done:    make(chan struct{}),
		pending: make(map[string]int),
		tstats:  make(map[string]*tenantStat),
		traces:  obs.NewTraceRing(cfg.TraceCap),
	}
	s.served.Store(int64(m.Served()))
	// The backend family is fixed for a session's lifetime (refits publish
	// new weights, never a new family), so one capture at construction is
	// enough for the stats surface.
	if bk, ok := m.(interface{ Backend() string }); ok {
		s.backend = bk.Backend()
	}
	// When the matcher exposes a trace hook (as *platform.Session does),
	// capture each served round's phase timings for the request traces. The
	// hook is installed before the batcher goroutine starts, so the write
	// happens-before every ServeComposed call; the hook itself fires on the
	// batcher goroutine (the session's owner), so plain assignment is safe.
	if th, ok := m.(interface {
		SetTraceHook(func(platform.RoundTrace))
	}); ok {
		th.SetTraceHook(func(rt platform.RoundTrace) { s.curTrace = rt })
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/match", s.handleMatch)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	// The trace ring is always mounted: it exists with or without a
	// registry, and the more specific pattern wins over the /debug/
	// catch-all below.
	s.mux.Handle("GET /debug/traces", obs.TraceHandler(s.traces))
	if cfg.Telemetry != nil {
		oh := obs.Handler(cfg.Telemetry)
		s.mux.Handle("/metrics", oh)
		s.mux.Handle("/debug/", oh)
	}
	go s.run()
	return s
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting new requests, flushes and answers everything
// already accepted, checkpoints the session, and returns. Safe to call
// more than once. The context bounds the wait; on expiry the batcher keeps
// draining in the background.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.met.draining.Set(1)
		go func() {
			// Handlers that passed the draining check are either queued or
			// about to be; wait them out before closing the channel.
			s.enqueueWG.Wait()
			close(s.submit)
		}()
	})
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// statusRecorder captures the final status code written by the handler so
// the deferred accounting can attribute the response to a class. The
// zero-write case (client gone) is stamped explicitly with 499.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// statusClientGone is nginx's convention for "client closed the connection
// before the answer"; nothing is written to the wire, the code exists only
// for the class counters and the trace ring.
const statusClientGone = 499

// handleMatch validates, admits, enqueues, and waits for the batcher's
// answer.
func (s *Server) handleMatch(hw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &statusRecorder{ResponseWriter: hw, status: http.StatusOK}
	tenant := ""
	defer func() {
		d := time.Since(start)
		s.met.latency.Observe(d)
		s.met.observeStatus(w.status)
		if tenant != "" {
			s.met.tenantLatency.With(tenant).Observe(d.Seconds())
		}
	}()
	s.met.requests.Inc()

	var req MatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.met.clientErrs.Inc()
		writeError(w, mfcperr.Wrap(mfcperr.ErrBadShape, "server: malformed request body: %v", err))
		return
	}
	if tenant = req.Tenant; tenant != "" {
		s.met.tenantReqs.With(tenant).Inc()
		s.noteTenant(tenant, func(st *tenantStat) { st.Requests++ })
	}
	if err := s.validate(&req); err != nil {
		s.met.clientErrs.Inc()
		writeError(w, err)
		return
	}
	// Admission: backpressure first (cheapest signal of systemic overload),
	// then the per-tenant quota, then the queue itself.
	if cap := s.m.RingCap(); cap > 0 {
		if float64(s.ringDepth.Load()) >= s.cfg.RingHighWater*float64(cap) {
			s.met.rejectRing.Inc()
			s.rejectTenant(tenant)
			writeReject(w, http.StatusServiceUnavailable, "backpressure",
				"server: observation ring near capacity; retry shortly", s.cfg.RetryAfterSeconds)
			return
		}
	}
	if !s.quotaAcquire(req.Tenant, len(req.Tasks)) {
		s.met.rejectQuota.Inc()
		s.rejectTenant(tenant)
		writeReject(w, http.StatusTooManyRequests, "quota",
			"server: tenant pending-task quota exceeded; retry shortly", s.cfg.RetryAfterSeconds)
		return
	}
	defer s.quotaRelease(req.Tenant, len(req.Tasks))

	rq := &request{
		id:       s.traceSeq.Add(1),
		tenant:   req.Tenant,
		tasks:    req.Tasks,
		enqueued: time.Now(),
		reply:    make(chan reply, 1),
	}
	if req.DeadlineMillis > 0 {
		rq.deadline = rq.enqueued.Add(time.Duration(req.DeadlineMillis) * time.Millisecond)
	}
	if !s.enqueue(rq) {
		s.met.rejectQueue.Inc()
		s.rejectTenant(tenant)
		writeReject(w, http.StatusServiceUnavailable, "overloaded",
			"server: batch queue full or draining; retry shortly", s.cfg.RetryAfterSeconds)
		return
	}
	s.accepted.Add(1)
	if tenant != "" {
		s.met.tenantTasks.With(tenant).Add(uint64(len(req.Tasks)))
		s.noteTenant(tenant, func(st *tenantStat) { st.Tasks += uint64(len(req.Tasks)) })
	}

	select {
	case rep := <-rq.reply:
		s.answered.Add(1)
		if tenant != "" {
			s.noteTenant(tenant, func(st *tenantStat) { st.Answered++ })
		}
		if rep.err != nil {
			if statusFor(rep.err) >= 500 {
				s.met.serverErrs.Inc()
			} else {
				s.met.clientErrs.Inc()
			}
			writeError(w, rep.err)
			return
		}
		s.met.okResp.Inc()
		writeJSON(w, http.StatusOK, rep.resp)
	case <-r.Context().Done():
		// The client went away; the batcher's answer lands in the buffered
		// reply channel and is dropped. The round is still served — accepted
		// work is never abandoned server-side.
		w.status = statusClientGone
		s.answered.Add(1)
		if tenant != "" {
			s.noteTenant(tenant, func(st *tenantStat) { st.Answered++ })
		}
	}
}

// validate checks a request against the session's pool so a bad request is
// rejected at its own door and can never fail a coalesced round carrying
// other tenants' tasks.
func (s *Server) validate(req *MatchRequest) error {
	if len(req.Tasks) == 0 {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "server: request carries no tasks")
	}
	if len(req.Tasks) > s.cfg.MaxBatchTasks {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "server: %d tasks exceeds the %d per-request cap", len(req.Tasks), s.cfg.MaxBatchTasks)
	}
	if req.DeadlineMillis < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "server: negative deadline_ms %d", req.DeadlineMillis)
	}
	n := s.m.PoolLen()
	for _, idx := range req.Tasks {
		if idx < 0 || idx >= n {
			return mfcperr.Wrap(mfcperr.ErrBadShape, "server: task index %d outside pool [0,%d)", idx, n)
		}
	}
	return nil
}

// enqueue registers with the drain gate and queues the request; false
// means draining or queue full.
func (s *Server) enqueue(rq *request) bool {
	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		return false
	}
	s.enqueueWG.Add(1)
	s.mu.RUnlock()
	defer s.enqueueWG.Done()
	select {
	case s.submit <- rq:
		return true
	default:
		return false
	}
}

func (s *Server) quotaAcquire(tenant string, n int) bool {
	s.quotaMu.Lock()
	defer s.quotaMu.Unlock()
	if s.pending[tenant]+n > s.cfg.TenantMaxPending {
		return false
	}
	s.pending[tenant] += n
	if tenant != "" {
		s.met.tenantPending.With(tenant).Set(float64(s.pending[tenant]))
	}
	return true
}

func (s *Server) quotaRelease(tenant string, n int) {
	s.quotaMu.Lock()
	defer s.quotaMu.Unlock()
	if s.pending[tenant] -= n; s.pending[tenant] <= 0 {
		delete(s.pending, tenant)
	}
	if tenant != "" {
		s.met.tenantPending.With(tenant).Set(float64(s.pending[tenant]))
	}
}

// tenantStat is one tenant's row in the /v1/stats digest.
type tenantStat struct {
	Requests uint64 `json:"requests"`
	Answered uint64 `json:"answered"`
	Rejected uint64 `json:"rejected"`
	Tasks    uint64 `json:"tasks"`
	Pending  int    `json:"pending"`
}

// tenantStatsCap bounds the digest the same way the labeled metric
// families are bounded: past this many distinct tenant names, new ones
// share the obs.OverflowLabel row. The quota ledger is NOT folded — only
// the reporting surface is.
const tenantStatsCap = 32

// statRow returns the digest row for tenant, folding past the cap. Caller
// holds quotaMu.
func (s *Server) statRow(tenant string) *tenantStat {
	if st, ok := s.tstats[tenant]; ok {
		return st
	}
	if len(s.tstats) >= tenantStatsCap {
		tenant = obs.OverflowLabel
		if st, ok := s.tstats[tenant]; ok {
			return st
		}
	}
	st := &tenantStat{}
	s.tstats[tenant] = st
	return st
}

// noteTenant applies f to tenant's digest row under the lock.
func (s *Server) noteTenant(tenant string, f func(*tenantStat)) {
	s.quotaMu.Lock()
	f(s.statRow(tenant))
	s.quotaMu.Unlock()
}

// rejectTenant records one shed request against the tenant, in both the
// labeled counter family and the stats digest. No-op for anonymous
// requests.
func (s *Server) rejectTenant(tenant string) {
	if tenant == "" {
		return
	}
	s.met.tenantRejects.With(tenant).Inc()
	s.noteTenant(tenant, func(st *tenantStat) { st.Rejected++ })
}

// tenantDigest copies the per-tenant rows and overlays live pending counts
// from the quota ledger. Pending for tenants whose row folded to the
// overflow key accumulates there.
func (s *Server) tenantDigest() map[string]tenantStat {
	s.quotaMu.Lock()
	defer s.quotaMu.Unlock()
	out := make(map[string]tenantStat, len(s.tstats))
	for name, st := range s.tstats {
		row := *st
		row.Pending = 0
		out[name] = row
	}
	for name, n := range s.pending {
		key := name
		if _, ok := out[key]; !ok {
			key = obs.OverflowLabel
			if _, ok := out[key]; !ok {
				continue // anonymous tenant: quota tracked, no digest row
			}
		}
		row := out[key]
		row.Pending += n
		out[key] = row
	}
	return out
}

// statsBody is the /v1/stats response. Backend names the predictor family
// serving the matches (omitted when the matcher does not expose one).
type statsBody struct {
	Served    int64                 `json:"rounds_served"`
	Accepted  int64                 `json:"requests_accepted"`
	Answered  int64                 `json:"requests_answered"`
	Backend   string                `json:"backend,omitempty"`
	RingDepth int64                 `json:"ring_depth"`
	RingCap   int                   `json:"ring_cap"`
	QueueLen  int                   `json:"queue_len"`
	QueueCap  int                   `json:"queue_cap"`
	Draining  bool                  `json:"draining"`
	Tenants   map[string]tenantStat `json:"tenants"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, statsBody{
		Served:    s.served.Load(),
		Accepted:  s.accepted.Load(),
		Answered:  s.answered.Load(),
		Backend:   s.backend,
		RingDepth: s.ringDepth.Load(),
		RingCap:   s.m.RingCap(),
		QueueLen:  len(s.submit),
		QueueCap:  s.cfg.QueueCap,
		Draining:  draining,
		Tenants:   s.tenantDigest(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		writeReject(w, http.StatusServiceUnavailable, "draining", "server: draining", s.cfg.RetryAfterSeconds)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
