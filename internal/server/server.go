// Package server is the exchange platform's multi-tenant HTTP front-end:
// the promotion of the internal/platform serving engine from a library
// loop to a long-lived service (ROADMAP item 1). Tenants POST task batches
// to /v1/match and receive assignments; a deadline-aware micro-batcher
// coalesces concurrent tenants' tasks into one shared screen+solve round,
// amortizing the fixed per-round cost (problem build, workspace resets,
// oracle scoring, execution setup) across every tenant in the window.
//
// The serving session is single-owner: exactly one batcher goroutine calls
// into the platform.Session, so the engine's determinism contract — a
// round's result is a pure function of (round index, predictor version) —
// survives the network hop. A single tenant submitting sequentially
// replays the in-process RunOnline trajectory bit for bit.
//
// Admission control front-runs the queue: requests are rejected with
// Retry-After when the batch queue is full (503), when the observation
// ring is deep (503 — refits are falling behind ingest), or when the
// tenant exceeds its pending-task quota (429). Validation errors map
// through the mfcperr taxonomy (httpmap.go), so a malformed request can
// never poison a coalesced round that carries other tenants' tasks.
package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mfcp/internal/mfcperr"
	"mfcp/internal/obs"
	"mfcp/internal/platform"
)

// Matcher is the serving surface the front-end drives, implemented by
// *platform.Session. All methods are called from the single batcher
// goroutine.
type Matcher interface {
	// ServeComposed serves externally composed rounds of task pool indices.
	ServeComposed(rounds [][]int) ([]platform.RoundReport, error)
	// Checkpoint persists a resumable snapshot (no-op without a path).
	Checkpoint() error
	// PoolLen bounds valid task indices; Served is the absolute round count.
	PoolLen() int
	Served() int
	// RingDepth/RingCap expose observation-ring occupancy for backpressure.
	RingDepth() int
	RingCap() int
}

// Config parameterizes the front-end.
type Config struct {
	// Window bounds how long the batcher waits for more tenants after the
	// first request of a batch arrives. 0 disables coalescing entirely:
	// every request is served as its own round (the per-request baseline —
	// and the mode that preserves single-tenant replay determinism exactly).
	Window time.Duration
	// MaxBatchTasks flushes a batch once its composed round reaches this
	// many tasks, and bounds a single request's size. Must not exceed the
	// session's MaxRoundTasks (the observation ring is sized by it).
	// Default 64.
	MaxBatchTasks int
	// QueueCap bounds requests queued for batching; a full queue sheds with
	// 503 + Retry-After (default 128).
	QueueCap int
	// TenantMaxPending caps one tenant's queued-but-unanswered tasks; more
	// sheds with 429 + Retry-After (default 4 * MaxBatchTasks).
	TenantMaxPending int
	// RingHighWater sheds new work with 503 once the observation ring is
	// this full (fraction of capacity; default 0.9). The ring drains at
	// refit boundaries, so depth near capacity means refits are falling
	// behind ingest and further rounds risk dropping learning signal.
	RingHighWater float64
	// RetryAfterSeconds is the hint attached to 503/429 rejections
	// (default 1).
	RetryAfterSeconds int
	// Telemetry, when non-nil, receives the request/batch instruments and
	// is mounted at /metrics (with /debug/pprof) on the server's mux.
	Telemetry *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.MaxBatchTasks == 0 {
		c.MaxBatchTasks = 64
	}
	if c.QueueCap == 0 {
		c.QueueCap = 128
	}
	if c.TenantMaxPending == 0 {
		c.TenantMaxPending = 4 * c.MaxBatchTasks
	}
	if c.RingHighWater == 0 {
		c.RingHighWater = 0.9
	}
	if c.RetryAfterSeconds == 0 {
		c.RetryAfterSeconds = 1
	}
}

// MatchRequest is the /v1/match request body: a tenant name and the task
// pool indices to place this round.
type MatchRequest struct {
	Tenant string `json:"tenant"`
	Tasks  []int  `json:"tasks"`
}

// TaskAssignment is one task's placement and realized execution.
type TaskAssignment struct {
	Task    int     `json:"task"`
	Cluster int     `json:"cluster"`
	Seconds float64 `json:"seconds"`
	Success bool    `json:"success"`
}

// MatchResponse is the /v1/match response body. Round is the absolute
// round index that served this request; Coalesced and BatchTasks describe
// the shared round (Coalesced == 1 means no other tenant rode along).
type MatchResponse struct {
	Round       int              `json:"round"`
	Coalesced   int              `json:"coalesced"`
	BatchTasks  int              `json:"batch_tasks"`
	Sparse      bool             `json:"sparse"`
	AutoSparse  bool             `json:"auto_sparse"`
	Regret      float64          `json:"regret"`
	Assignments []TaskAssignment `json:"assignments"`
}

// request is one admitted submission traveling handler → batcher.
type request struct {
	tenant string
	tasks  []int
	reply  chan reply
}

type reply struct {
	resp *MatchResponse
	err  error
}

// Server owns the batcher goroutine and the HTTP surface. Construct with
// New, mount Handler, and Drain on shutdown.
type Server struct {
	cfg Config
	m   Matcher
	met serverMetrics
	mux *http.ServeMux

	submit chan *request

	// mu orders handler admissions against the drain transition: enqueues
	// register with enqueueWG under the read lock while draining is false,
	// and Drain flips the flag under the write lock, waits the group out,
	// and only then closes submit — so no handler can send on a closed
	// channel.
	mu        sync.RWMutex
	draining  bool
	enqueueWG sync.WaitGroup
	drainOnce sync.Once
	done      chan struct{}

	// Owner-goroutine session state mirrored for handlers and /v1/stats.
	ringDepth atomic.Int64
	served    atomic.Int64
	accepted  atomic.Int64
	answered  atomic.Int64

	quotaMu sync.Mutex
	pending map[string]int
}

// New wires a front-end around m and starts its batcher goroutine. The
// caller serves s.Handler() and must Drain before discarding the session.
func New(m Matcher, cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:     cfg,
		m:       m,
		met:     newServerMetrics(cfg.Telemetry),
		submit:  make(chan *request, cfg.QueueCap),
		done:    make(chan struct{}),
		pending: make(map[string]int),
	}
	s.served.Store(int64(m.Served()))
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/match", s.handleMatch)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if cfg.Telemetry != nil {
		oh := obs.Handler(cfg.Telemetry)
		s.mux.Handle("/metrics", oh)
		s.mux.Handle("/debug/", oh)
	}
	go s.run()
	return s
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting new requests, flushes and answers everything
// already accepted, checkpoints the session, and returns. Safe to call
// more than once. The context bounds the wait; on expiry the batcher keeps
// draining in the background.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.met.draining.Set(1)
		go func() {
			// Handlers that passed the draining check are either queued or
			// about to be; wait them out before closing the channel.
			s.enqueueWG.Wait()
			close(s.submit)
		}()
	})
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// handleMatch validates, admits, enqueues, and waits for the batcher's
// answer.
func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	sp := s.met.latency.Start()
	defer sp.End()
	s.met.requests.Inc()

	var req MatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.met.clientErrs.Inc()
		writeError(w, mfcperr.Wrap(mfcperr.ErrBadShape, "server: malformed request body: %v", err))
		return
	}
	if err := s.validate(&req); err != nil {
		s.met.clientErrs.Inc()
		writeError(w, err)
		return
	}
	// Admission: backpressure first (cheapest signal of systemic overload),
	// then the per-tenant quota, then the queue itself.
	if cap := s.m.RingCap(); cap > 0 {
		if float64(s.ringDepth.Load()) >= s.cfg.RingHighWater*float64(cap) {
			s.met.rejectRing.Inc()
			writeReject(w, http.StatusServiceUnavailable, "backpressure",
				"server: observation ring near capacity; retry shortly", s.cfg.RetryAfterSeconds)
			return
		}
	}
	if !s.quotaAcquire(req.Tenant, len(req.Tasks)) {
		s.met.rejectQuota.Inc()
		writeReject(w, http.StatusTooManyRequests, "quota",
			"server: tenant pending-task quota exceeded; retry shortly", s.cfg.RetryAfterSeconds)
		return
	}
	defer s.quotaRelease(req.Tenant, len(req.Tasks))

	rq := &request{tenant: req.Tenant, tasks: req.Tasks, reply: make(chan reply, 1)}
	if !s.enqueue(rq) {
		s.met.rejectQueue.Inc()
		writeReject(w, http.StatusServiceUnavailable, "overloaded",
			"server: batch queue full or draining; retry shortly", s.cfg.RetryAfterSeconds)
		return
	}
	s.accepted.Add(1)

	select {
	case rep := <-rq.reply:
		s.answered.Add(1)
		if rep.err != nil {
			if statusFor(rep.err) >= 500 {
				s.met.serverErrs.Inc()
			} else {
				s.met.clientErrs.Inc()
			}
			writeError(w, rep.err)
			return
		}
		s.met.okResp.Inc()
		writeJSON(w, http.StatusOK, rep.resp)
	case <-r.Context().Done():
		// The client went away; the batcher's answer lands in the buffered
		// reply channel and is dropped. The round is still served — accepted
		// work is never abandoned server-side.
		s.answered.Add(1)
	}
}

// validate checks a request against the session's pool so a bad request is
// rejected at its own door and can never fail a coalesced round carrying
// other tenants' tasks.
func (s *Server) validate(req *MatchRequest) error {
	if len(req.Tasks) == 0 {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "server: request carries no tasks")
	}
	if len(req.Tasks) > s.cfg.MaxBatchTasks {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "server: %d tasks exceeds the %d per-request cap", len(req.Tasks), s.cfg.MaxBatchTasks)
	}
	n := s.m.PoolLen()
	for _, idx := range req.Tasks {
		if idx < 0 || idx >= n {
			return mfcperr.Wrap(mfcperr.ErrBadShape, "server: task index %d outside pool [0,%d)", idx, n)
		}
	}
	return nil
}

// enqueue registers with the drain gate and queues the request; false
// means draining or queue full.
func (s *Server) enqueue(rq *request) bool {
	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		return false
	}
	s.enqueueWG.Add(1)
	s.mu.RUnlock()
	defer s.enqueueWG.Done()
	select {
	case s.submit <- rq:
		return true
	default:
		return false
	}
}

func (s *Server) quotaAcquire(tenant string, n int) bool {
	s.quotaMu.Lock()
	defer s.quotaMu.Unlock()
	if s.pending[tenant]+n > s.cfg.TenantMaxPending {
		return false
	}
	s.pending[tenant] += n
	return true
}

func (s *Server) quotaRelease(tenant string, n int) {
	s.quotaMu.Lock()
	defer s.quotaMu.Unlock()
	if s.pending[tenant] -= n; s.pending[tenant] <= 0 {
		delete(s.pending, tenant)
	}
}

// statsBody is the /v1/stats response.
type statsBody struct {
	Served    int64 `json:"rounds_served"`
	Accepted  int64 `json:"requests_accepted"`
	Answered  int64 `json:"requests_answered"`
	RingDepth int64 `json:"ring_depth"`
	RingCap   int   `json:"ring_cap"`
	QueueLen  int   `json:"queue_len"`
	QueueCap  int   `json:"queue_cap"`
	Draining  bool  `json:"draining"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, statsBody{
		Served:    s.served.Load(),
		Accepted:  s.accepted.Load(),
		Answered:  s.answered.Load(),
		RingDepth: s.ringDepth.Load(),
		RingCap:   s.m.RingCap(),
		QueueLen:  len(s.submit),
		QueueCap:  s.cfg.QueueCap,
		Draining:  draining,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		writeReject(w, http.StatusServiceUnavailable, "draining", "server: draining", s.cfg.RetryAfterSeconds)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
