package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mfcp/internal/mfcperr"
	"mfcp/internal/obs"
)

// getTraces fetches /debug/traces (with optional query) and decodes it.
func getTraces(t *testing.T, ts *httptest.Server, query string) (int, []obs.RequestTrace) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/traces" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces%s: status %d", query, resp.StatusCode)
	}
	var dump struct {
		Capacity int                `json:"capacity"`
		Count    int                `json:"count"`
		Traces   []obs.RequestTrace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Count != len(dump.Traces) {
		t.Fatalf("count %d != len(traces) %d", dump.Count, len(dump.Traces))
	}
	return dump.Capacity, dump.Traces
}

// TestDebugTracesEndpoint pins the request-tracing contract: every served
// request leaves a trace carrying its id (echoed in the response), tenant,
// queue wait, and the phase timings delivered by the matcher's trace hook.
func TestDebugTracesEndpoint(t *testing.T) {
	f := newFakeMatcher()
	s := New(f, Config{Window: 0, TraceCap: 8})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postMatch(t, ts, "alpha", []int{1, 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	mr := decodeMatch(t, raw)
	if mr.RequestID == 0 {
		t.Fatal("response carries no request_id")
	}
	if resp, _ := postMatch(t, ts, "beta", []int{3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d", resp.StatusCode)
	}

	capacity, traces := getTraces(t, ts, "")
	if capacity != 8 {
		t.Fatalf("capacity %d, want configured 8", capacity)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2: %+v", len(traces), traces)
	}
	if traces[0].ID != mr.RequestID || traces[0].Tenant != "alpha" || traces[0].Tasks != 2 {
		t.Fatalf("first trace does not match first request: %+v", traces[0])
	}
	if traces[1].Tenant != "beta" || traces[1].ID <= traces[0].ID {
		t.Fatalf("traces not oldest-first with increasing ids: %+v", traces)
	}
	for i, tr := range traces {
		if tr.Status != "ok" || tr.Round != i || tr.Coalesced != 1 {
			t.Fatalf("trace %d: %+v", i, tr)
		}
		if tr.QueueNs < 0 || tr.TotalNs <= 0 || tr.Start <= 0 {
			t.Fatalf("trace %d timing: %+v", i, tr)
		}
		// Phase timings are the fake hook's synthetic values, proving the
		// hook→curTrace→ring path.
		if tr.PredictNs != 1_000 || tr.SolveNs != 2_000 || tr.ExecNs != 3_000 || tr.IngestNs != 400 {
			t.Fatalf("trace %d phase timings did not ride the hook: %+v", i, tr)
		}
	}

	// The slow filter keeps only traces at least that old end-to-end.
	if _, slow := getTraces(t, ts, "?slow=10m"); len(slow) != 0 {
		t.Fatalf("?slow=10m kept %d traces", len(slow))
	}
	if _, all := getTraces(t, ts, "?slow=1ns"); len(all) != 2 {
		t.Fatalf("?slow=1ns kept %d traces, want 2", len(all))
	}
	r, err := http.Get(ts.URL + "/debug/traces?slow=bogus")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus slow threshold: status %d, want 400", r.StatusCode)
	}
}

// TestTracesRecordServeErrors pins that a failed round still leaves traces,
// carrying the error kind and no round index.
func TestTracesRecordServeErrors(t *testing.T) {
	f := newFakeMatcher()
	f.serveErr = mfcperr.Wrap(mfcperr.ErrInfeasible, "no feasible assignment")
	s := New(f, Config{Window: 0})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, _ := postMatch(t, ts, "alpha", []int{1}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	_, traces := getTraces(t, ts, "")
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	if traces[0].Status != "infeasible" || traces[0].Round != -1 {
		t.Fatalf("error trace: %+v", traces[0])
	}
}

// TestDebugTracesWithoutTelemetry pins that the trace ring is mounted even
// with no registry configured — tracing is not gated on metrics.
func TestDebugTracesWithoutTelemetry(t *testing.T) {
	f := newFakeMatcher()
	s := New(f, Config{Window: 0})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postMatch(t, ts, "solo", []int{5})
	if _, traces := getTraces(t, ts, ""); len(traces) != 1 || traces[0].Tenant != "solo" {
		t.Fatalf("traces without telemetry: %+v", traces)
	}
}

// TestTenantDigestAndLabeledSeries pins the per-tenant observability
// surfaces: the /v1/stats digest rows and the labeled Prometheus families,
// including rejection attribution and live pending counts.
func TestTenantDigestAndLabeledSeries(t *testing.T) {
	f := newFakeMatcher()
	reg := obs.NewRegistry()
	s := New(f, Config{Window: 0, TenantMaxPending: 4, Telemetry: reg})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		if resp, raw := postMatch(t, ts, "alpha", []int{i}); resp.StatusCode != http.StatusOK {
			t.Fatalf("alpha request %d: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	// Saturate greedy's quota out-of-band, then get shed with 429.
	if !s.quotaAcquire("greedy", 4) {
		t.Fatal("quota refused within limit")
	}
	if resp, _ := postMatch(t, ts, "greedy", []int{9}); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("greedy not shed")
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sb statsBody
	if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	alpha, greedy := sb.Tenants["alpha"], sb.Tenants["greedy"]
	if alpha.Requests != 2 || alpha.Answered != 2 || alpha.Rejected != 0 || alpha.Tasks != 2 || alpha.Pending != 0 {
		t.Fatalf("alpha digest %+v", alpha)
	}
	if greedy.Requests != 1 || greedy.Rejected != 1 || greedy.Answered != 0 || greedy.Pending != 4 {
		t.Fatalf("greedy digest %+v", greedy)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`mfcp_tenant_requests_total{tenant="alpha"} 2`,
		`mfcp_tenant_requests_total{tenant="greedy"} 1`,
		`mfcp_tenant_tasks_total{tenant="alpha"} 2`,
		`mfcp_tenant_rejected_total{tenant="greedy"} 1`,
		`mfcp_tenant_request_seconds_count{tenant="alpha"} 2`,
		`mfcp_tenant_pending_tasks{tenant="alpha"} 0`,
		`mfcp_tenant_pending_tasks{tenant="greedy"} 4`,
		`mfcp_http_responses_total{class="2xx"} 2`,
		`mfcp_http_responses_total{class="4xx"} 1`,
		`mfcp_http_responses_total{class="5xx"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full export:\n%s", out)
	}
	s.quotaRelease("greedy", 4)
}

// TestTenantDigestBounded pins the digest's cardinality cap: past
// tenantStatsCap distinct names the rows fold into the overflow key, while
// every request is still counted somewhere.
func TestTenantDigestBounded(t *testing.T) {
	f := newFakeMatcher()
	s := New(f, Config{Window: 0})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = tenantStatsCap + 8
	for i := 0; i < n; i++ {
		name := "tenant-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if resp, _ := postMatch(t, ts, name, []int{i}); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sb statsBody
	if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sb.Tenants) > tenantStatsCap+1 {
		t.Fatalf("digest grew to %d rows, cap is %d+overflow", len(sb.Tenants), tenantStatsCap)
	}
	other, ok := sb.Tenants[obs.OverflowLabel]
	if !ok || other.Requests == 0 {
		t.Fatalf("overflow row missing or empty: %+v", sb.Tenants)
	}
	var total uint64
	for _, st := range sb.Tenants {
		total += st.Requests
	}
	if total != n {
		t.Fatalf("digest rows sum to %d requests, want %d", total, n)
	}
}
