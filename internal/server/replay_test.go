package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mfcp/internal/core"
	"mfcp/internal/platform"
	"mfcp/internal/workload"
)

func errorf(format string, args ...any) error { return fmt.Errorf(format, args...) }

func replayOnlineCfg() platform.OnlineConfig {
	return platform.OnlineConfig{
		Config: platform.Config{
			Scenario:       workload.Config{PoolSize: 48, FeatureDim: 12, Seed: 11},
			Method:         platform.MethodTSM,
			Rounds:         12,
			RoundSize:      4,
			PretrainEpochs: 40,
			RegretEpochs:   4,
			Hidden:         []int{8},
		},
		RefitEvery:  3,
		RefitEpochs: 5,
	}
}

// TestReplayMatchesRunOnline is the determinism acceptance criterion: a
// single tenant submitting the sampled round compositions sequentially
// through the HTTP path reproduces the in-process RunOnline trajectory bit
// for bit — same assignments, same realized executions, same regret —
// because the batcher drives the identical Session machinery (sweep, ring
// drain, refit at the same absolute round boundaries) and a round's result
// is a pure function of (round index, predictor version).
func TestReplayMatchesRunOnline(t *testing.T) {
	cfg := replayOnlineCfg()
	full, err := platform.RunOnline(cfg)
	if err != nil {
		t.Fatalf("reference RunOnline: %v", err)
	}
	if len(full.Rounds) != cfg.Rounds {
		t.Fatalf("reference served %d rounds", len(full.Rounds))
	}

	// Recompute the compositions RunOnline sampled: the round stream is
	// consumed serially in round order, so a fresh scenario replays it.
	sc, err := workload.New(cfg.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	_, live, err := sc.SplitChecked(0.75)
	if err != nil {
		t.Fatal(err)
	}
	stream := sc.Stream("platform-rounds")
	compositions := make([][]int, cfg.Rounds)
	for i := range compositions {
		compositions[i] = sc.SampleRound(live, cfg.RoundSize, stream)
	}

	sess, err := platform.NewSession(context.Background(), cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s := New(sess, Config{Window: 0})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for k, tasks := range compositions {
		resp, raw := postMatch(t, ts, "replayer", tasks)
		if resp.StatusCode != 200 {
			t.Fatalf("round %d: status %d: %s", k, resp.StatusCode, raw)
		}
		mr := decodeMatch(t, raw)
		ref := full.Rounds[k]
		if mr.Round != ref.Round {
			t.Fatalf("round index %d, want %d", mr.Round, ref.Round)
		}
		if mr.Coalesced != 1 {
			t.Fatalf("round %d coalesced %d-way in a sequential replay", k, mr.Coalesced)
		}
		if mr.Regret != ref.Eval.Regret {
			t.Fatalf("round %d regret %v, want %v (trajectory diverged)", k, mr.Regret, ref.Eval.Regret)
		}
		if len(mr.Assignments) != len(ref.Assignment) {
			t.Fatalf("round %d: %d assignments, want %d", k, len(mr.Assignments), len(ref.Assignment))
		}
		for j, a := range mr.Assignments {
			if a.Task != ref.TaskIdx[j] || a.Cluster != ref.Assignment[j] {
				t.Fatalf("round %d slot %d: (task %d, cluster %d), want (%d, %d)",
					k, j, a.Task, a.Cluster, ref.TaskIdx[j], ref.Assignment[j])
			}
			if a.Seconds != ref.Execution.TaskSeconds[j] || a.Success != ref.Execution.Success[j] {
				t.Fatalf("round %d slot %d execution diverged: (%v,%v) want (%v,%v)",
					k, j, a.Seconds, a.Success, ref.Execution.TaskSeconds[j], ref.Execution.Success[j])
			}
		}
	}
	if got := sess.Served(); got != cfg.Rounds {
		t.Fatalf("session served %d rounds, want %d", got, cfg.Rounds)
	}
	if got := sess.Refits(); got != full.Refits {
		t.Fatalf("session refits %d, want %d", got, full.Refits)
	}
}

// TestConcurrentTenantsRealSession pushes concurrent tenants through a
// real Session with coalescing on — the race gate for the full HTTP →
// batcher → engine path. Correctness here is structural (every response
// well-formed and every task answered with a valid cluster); coalesced
// trajectories are load-dependent by design (DESIGN.md §10).
func TestConcurrentTenantsRealSession(t *testing.T) {
	cfg := replayOnlineCfg()
	cfg.Rounds = 0 // unused by the session's composed path
	cfg.MaxRoundTasks = 16
	sess, err := platform.NewSession(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sess.M()
	s := New(sess, Config{Window: 2 * time.Millisecond, MaxBatchTasks: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			for j := 0; j < 6; j++ {
				tasks := []int{(i*7 + j) % 36, (i*11 + j + 1) % 36}
				resp, raw := postMatch(t, ts, "t", tasks)
				if resp.StatusCode != 200 {
					done <- errorf("tenant %d round %d: status %d: %s", i, j, resp.StatusCode, raw)
					return
				}
				mr := decodeMatch(t, raw)
				if len(mr.Assignments) != 2 {
					done <- errorf("tenant %d: %d assignments", i, len(mr.Assignments))
					return
				}
				for _, a := range mr.Assignments {
					if a.Cluster < 0 || a.Cluster >= m {
						done <- errorf("tenant %d: cluster %d out of range", i, a.Cluster)
						return
					}
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	drain(t, s)
}

// TestEnsembleRiskServingEndToEnd is the uncertainty-serving race gate: a
// real Session on the ensemble backend with RiskAversion > 0 and
// asynchronous refits, driven by concurrent tenants through the full
// HTTP → batcher → engine path. Enough rounds are pushed to cross several
// refit boundaries, so background ensemble refits race live risk-shifted
// predictions. Correctness is structural (valid clusters, well-formed
// responses, the stats surface naming the backend); coalesced trajectories
// are load-dependent by design.
func TestEnsembleRiskServingEndToEnd(t *testing.T) {
	cfg := replayOnlineCfg()
	cfg.Rounds = 0 // unused by the session's composed path
	cfg.MaxRoundTasks = 16
	cfg.Backend = core.BackendEnsemble
	cfg.Match.RiskAversion = 0.5
	cfg.AsyncRefit = true
	cfg.PretrainEpochs = 8
	cfg.RefitEpochs = 2
	sess, err := platform.NewSession(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Backend(); got != core.BackendEnsemble {
		t.Fatalf("session backend %q, want %q", got, core.BackendEnsemble)
	}
	m := sess.M()
	s := New(sess, Config{Window: 2 * time.Millisecond, MaxBatchTasks: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan error, 6)
	for i := 0; i < 6; i++ {
		go func(i int) {
			for j := 0; j < 5; j++ {
				tasks := []int{(i*5 + j) % 36, (i*13 + j + 2) % 36}
				resp, raw := postMatch(t, ts, "risk-tenant", tasks)
				if resp.StatusCode != 200 {
					done <- errorf("tenant %d round %d: status %d: %s", i, j, resp.StatusCode, raw)
					return
				}
				mr := decodeMatch(t, raw)
				if len(mr.Assignments) != 2 {
					done <- errorf("tenant %d: %d assignments", i, len(mr.Assignments))
					return
				}
				for _, a := range mr.Assignments {
					if a.Cluster < 0 || a.Cluster >= m {
						done <- errorf("tenant %d: cluster %d out of range", i, a.Cluster)
						return
					}
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 6; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sb statsBody
	if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sb.Backend != core.BackendEnsemble {
		t.Fatalf("stats backend %q, want %q", sb.Backend, core.BackendEnsemble)
	}
	drain(t, s)
	if sess.Refits() == 0 {
		t.Fatal("no refits triggered; the test is not racing the ensemble refit path")
	}
}
