package server

import "mfcp/internal/obs"

// serverMetrics are the front-end's pre-bound instruments. Like the
// engine's, they follow the obs nil-instrument contract: with no registry
// configured every op is a no-op and the handler code stays unconditional.
type serverMetrics struct {
	// Request accounting, recorded by the handlers.
	requests   *obs.Counter
	okResp     *obs.Counter
	clientErrs *obs.Counter
	serverErrs *obs.Counter
	latency    *obs.Timer

	// Status-class counters: pre-bound children of one labeled family, so
	// the answer path records with a single atomic increment.
	resp2xx   *obs.Counter
	resp4xx   *obs.Counter
	resp5xx   *obs.Counter
	respOther *obs.Counter

	// Per-tenant attribution. Tenant names arrive from the network, so
	// these families lean on the obs cardinality cap: past
	// obs.DefaultMaxChildren distinct tenants, new names share the "other"
	// child. The handlers call With per request — a read-locked map hit,
	// no allocation.
	tenantReqs    *obs.CounterVec
	tenantTasks   *obs.CounterVec
	tenantRejects *obs.CounterVec
	tenantLatency *obs.HistogramVec
	tenantPending *obs.GaugeVec

	// Admission rejections by cause, recorded before a request is queued.
	rejectQueue *obs.Counter
	rejectRing  *obs.Counter
	rejectQuota *obs.Counter

	// Batch shape, recorded by the batcher (single goroutine). The
	// coalesce-factor gauge is an EWMA of requests-per-batch — the
	// amortization the micro-batcher is buying.
	batches       *obs.Counter
	batchTasks    *obs.Histogram
	batchRequests *obs.Histogram
	coalesce      *obs.Gauge
	emaCoalesce   float64
	emaInit       bool
	flushSize     *obs.Counter
	flushDeadline *obs.Counter
	flushSolo     *obs.Counter

	// Backpressure surfaces mirrored from the serving session.
	ringDepth *obs.Gauge
	draining  *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	classes := reg.CounterVec("mfcp_http_responses_total",
		"match responses by status class (499 = client gone before the answer)", "class")
	return serverMetrics{
		requests:   reg.Counter("mfcp_http_requests_total", "match requests received"),
		okResp:     reg.Counter("mfcp_http_ok_total", "match requests answered 200"),
		clientErrs: reg.Counter("mfcp_http_client_errors_total", "match requests answered 4xx"),
		serverErrs: reg.Counter("mfcp_http_server_errors_total", "match requests answered 5xx"),
		latency: obs.NewTimer(reg.Histogram("mfcp_http_request_seconds",
			"end-to-end match request latency", obs.LatencyBuckets)),

		resp2xx:   classes.With("2xx"),
		resp4xx:   classes.With("4xx"),
		resp5xx:   classes.With("5xx"),
		respOther: classes.With("other"),

		tenantReqs: reg.CounterVec("mfcp_tenant_requests_total",
			"match requests received by tenant", "tenant"),
		tenantTasks: reg.CounterVec("mfcp_tenant_tasks_total",
			"tasks admitted to the batch queue by tenant", "tenant"),
		tenantRejects: reg.CounterVec("mfcp_tenant_rejected_total",
			"requests shed by admission control (backpressure, quota, queue) by tenant", "tenant"),
		tenantLatency: reg.HistogramVec("mfcp_tenant_request_seconds",
			"end-to-end match request latency by tenant", "tenant", obs.LatencyBuckets),
		tenantPending: reg.GaugeVec("mfcp_tenant_pending_tasks",
			"queued-but-unanswered tasks held against the tenant quota", "tenant"),

		rejectQueue: reg.Counter("mfcp_admission_queue_rejected_total",
			"requests shed because the batch queue was full"),
		rejectRing: reg.Counter("mfcp_admission_backpressure_rejected_total",
			"requests shed because the observation ring was deep"),
		rejectQuota: reg.Counter("mfcp_admission_quota_rejected_total",
			"requests shed because the tenant exceeded its pending-task quota"),

		batches: reg.Counter("mfcp_batches_total", "coalesced rounds served"),
		batchTasks: reg.Histogram("mfcp_batch_tasks",
			"tasks per coalesced round", obs.ExpBuckets(1, 2, 12)),
		batchRequests: reg.Histogram("mfcp_batch_requests",
			"tenant requests per coalesced round", obs.ExpBuckets(1, 2, 8)),
		coalesce: reg.Gauge("mfcp_batch_coalesce_factor",
			"EWMA of requests coalesced per round"),
		flushSize: reg.Counter("mfcp_batch_flush_size_total",
			"batches flushed by reaching MaxTasks"),
		flushDeadline: reg.Counter("mfcp_batch_flush_deadline_total",
			"batches flushed by the window deadline"),
		flushSolo: reg.Counter("mfcp_batch_flush_solo_total",
			"batches flushed immediately (window 0 or drain)"),

		ringDepth: reg.Gauge("mfcp_server_ring_depth",
			"observation-ring depth after the last served batch"),
		draining: reg.Gauge("mfcp_server_draining", "1 while the server is draining"),
	}
}

// observeStatus folds a final HTTP status code into the class counters.
// 499 (client gone before the answer) lands in "other" — it is neither a
// client mistake nor a server fault.
func (m *serverMetrics) observeStatus(code int) {
	switch code / 100 {
	case 2:
		m.resp2xx.Inc()
	case 4:
		if code == 499 {
			m.respOther.Inc()
			return
		}
		m.resp4xx.Inc()
	case 5:
		m.resp5xx.Inc()
	default:
		m.respOther.Inc()
	}
}

// observeBatch folds one served batch into the shape instruments. Called
// only from the batcher goroutine (the EWMA fields are unsynchronized).
func (m *serverMetrics) observeBatch(requests, tasks int, flush flushReason) {
	m.batches.Inc()
	m.batchTasks.Observe(float64(tasks))
	m.batchRequests.Observe(float64(requests))
	if !m.emaInit {
		m.emaCoalesce, m.emaInit = float64(requests), true
	} else {
		m.emaCoalesce += coalesceAlpha * (float64(requests) - m.emaCoalesce)
	}
	m.coalesce.Set(m.emaCoalesce)
	switch flush {
	case flushBySize:
		m.flushSize.Inc()
	case flushByDeadline:
		m.flushDeadline.Inc()
	default:
		m.flushSolo.Inc()
	}
}

// coalesceAlpha smooths the coalesce-factor gauge (~20-batch memory),
// matching the engine's rolling-quality EWMA convention.
const coalesceAlpha = 0.05

type flushReason int

const (
	flushImmediate flushReason = iota
	flushBySize
	flushByDeadline
)
