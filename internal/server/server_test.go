package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mfcp/internal/platform"
	"mfcp/internal/sched"
)

// fakeMatcher is a deterministic in-memory Matcher: task j goes to cluster
// j%3 and runs for float64(j) seconds. It lets the front-end tests cover
// batching, admission, drain, and error mapping without training a model.
type fakeMatcher struct {
	mu          sync.Mutex
	served      int
	rounds      [][]int
	serveErr    error
	delay       time.Duration
	checkpoints int
	ringDepth   int
	ringCap     int
	poolLen     int
	traceHook   func(platform.RoundTrace)
}

// SetTraceHook mimics *platform.Session's optional trace surface so the
// front-end tests cover the hook wiring end to end.
func (f *fakeMatcher) SetTraceHook(fn func(platform.RoundTrace)) { f.traceHook = fn }

func newFakeMatcher() *fakeMatcher {
	return &fakeMatcher{ringCap: 100, poolLen: 1000}
}

func (f *fakeMatcher) ServeComposed(rounds [][]int) ([]platform.RoundReport, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.serveErr != nil {
		return nil, f.serveErr
	}
	out := make([]platform.RoundReport, len(rounds))
	for i, round := range rounds {
		rr := platform.RoundReport{
			Round:      f.served,
			TaskIdx:    append([]int(nil), round...),
			Assignment: make([]int, len(round)),
		}
		rr.Execution = sched.Result{
			TaskSeconds: make([]float64, len(round)),
			Success:     make([]bool, len(round)),
		}
		for j, task := range round {
			rr.Assignment[j] = task % 3
			rr.Execution.TaskSeconds[j] = float64(task)
			rr.Execution.Success[j] = true
		}
		f.served++
		f.rounds = append(f.rounds, append([]int(nil), round...))
		out[i] = rr
		if f.traceHook != nil {
			f.traceHook(platform.RoundTrace{
				Round: rr.Round, Tasks: len(round),
				PredictNs: 1_000, SolveNs: 2_000, ExecNs: 3_000, IngestNs: 400, RoundNs: 6_400,
			})
		}
	}
	return out, nil
}

func (f *fakeMatcher) Checkpoint() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.checkpoints++
	return nil
}

func (f *fakeMatcher) PoolLen() int { return f.poolLen }
func (f *fakeMatcher) Served() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.served
}
func (f *fakeMatcher) RingDepth() int { return f.ringDepth }
func (f *fakeMatcher) RingCap() int   { return f.ringCap }

func (f *fakeMatcher) servedRounds() [][]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([][]int(nil), f.rounds...)
}

func postMatch(t *testing.T, ts *httptest.Server, tenant string, tasks []int) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(MatchRequest{Tenant: tenant, Tasks: tasks})
	resp, err := http.Post(ts.URL+"/v1/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/match: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decodeMatch(t *testing.T, raw []byte) MatchResponse {
	t.Helper()
	var mr MatchResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatalf("decode response %s: %v", raw, err)
	}
	return mr
}

// TestMatchSingleRequest pins the happy path: one request, one round, the
// fake's deterministic placement echoed per task.
func TestMatchSingleRequest(t *testing.T) {
	f := newFakeMatcher()
	s := New(f, Config{Window: 0})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postMatch(t, ts, "tenant-a", []int{7, 8, 9})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	mr := decodeMatch(t, raw)
	if mr.Coalesced != 1 || mr.BatchTasks != 3 || len(mr.Assignments) != 3 {
		t.Fatalf("response shape: %+v", mr)
	}
	for i, a := range mr.Assignments {
		want := []int{7, 8, 9}[i]
		if a.Task != want || a.Cluster != want%3 || a.Seconds != float64(want) || !a.Success {
			t.Fatalf("assignment %d: %+v", i, a)
		}
	}
}

// TestCoalescingSharesRound pins the tentpole behavior: with a batching
// window open, concurrent tenants land in one composed round and each gets
// back exactly its own slice of the assignment.
func TestCoalescingSharesRound(t *testing.T) {
	f := newFakeMatcher()
	// A long window with a size cap exactly matching the offered load: the
	// batch flushes on size, so the test does not depend on timing.
	s := New(f, Config{Window: time.Second, MaxBatchTasks: 8})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const tenants = 4
	var wg sync.WaitGroup
	responses := make([]MatchResponse, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postMatch(t, ts, fmt.Sprintf("tenant-%d", i), []int{2 * i, 2*i + 1})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("tenant %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			responses[i] = decodeMatch(t, raw)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	rounds := f.servedRounds()
	if len(rounds) != 1 {
		t.Fatalf("served %d rounds, want 1 coalesced round: %v", len(rounds), rounds)
	}
	if len(rounds[0]) != 2*tenants {
		t.Fatalf("coalesced round has %d tasks, want %d", len(rounds[0]), 2*tenants)
	}
	for i, mr := range responses {
		if mr.Coalesced != tenants || mr.BatchTasks != 2*tenants {
			t.Fatalf("tenant %d response %+v, want coalesced=%d", i, mr, tenants)
		}
		for j, a := range mr.Assignments {
			want := 2*i + j
			if a.Task != want || a.Cluster != want%3 {
				t.Fatalf("tenant %d slot %d got task %d cluster %d", i, j, a.Task, a.Cluster)
			}
		}
	}
}

// TestWindowZeroServesPerRequest pins the per-request baseline: with
// Window == 0 coalescing is off and every request is its own round even
// when submitted together.
func TestWindowZeroServesPerRequest(t *testing.T) {
	f := newFakeMatcher()
	f.delay = 2 * time.Millisecond // let requests pile up in the queue
	s := New(f, Config{Window: 0})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postMatch(t, ts, "t", []int{i})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, raw)
				return
			}
			if mr := decodeMatch(t, raw); mr.Coalesced != 1 {
				t.Errorf("request coalesced %d-way with window 0", mr.Coalesced)
			}
		}(i)
	}
	wg.Wait()
	if got := len(f.servedRounds()); got != n {
		t.Fatalf("served %d rounds, want %d (one per request)", got, n)
	}
}

// TestValidationRejectsBeforeQueue pins that malformed requests are
// rejected 400 at the door — they must never reach the batcher where they
// could fail other tenants' coalesced round.
func TestValidationRejectsBeforeQueue(t *testing.T) {
	f := newFakeMatcher()
	f.poolLen = 10
	s := New(f, Config{Window: 0, MaxBatchTasks: 4})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name  string
		tasks []int
	}{
		{"empty", []int{}},
		{"out of range", []int{3, 99}},
		{"negative", []int{-1}},
		{"oversize", []int{0, 1, 2, 3, 4}},
	}
	for _, tc := range cases {
		resp, raw := postMatch(t, ts, "t", tc.tasks)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, raw)
		}
		var eb errorBody
		if err := json.Unmarshal(raw, &eb); err != nil || eb.Kind != "bad_shape" {
			t.Fatalf("%s: error body %s (err %v)", tc.name, raw, err)
		}
	}
	// Malformed JSON is also a 400, not a 500.
	resp, err := http.Post(ts.URL+"/v1/match", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	if got := len(f.servedRounds()); got != 0 {
		t.Fatalf("%d rounds reached the matcher from invalid requests", got)
	}
}

// TestBackpressureRejectsWithRetryAfter pins the admission contract: a
// deep observation ring sheds new work with 503 + Retry-After before it
// reaches the queue.
func TestBackpressureRejectsWithRetryAfter(t *testing.T) {
	f := newFakeMatcher()
	f.ringDepth = 95 // ≥ 0.9 × ringCap(100)
	s := New(f, Config{Window: 0, RetryAfterSeconds: 3})
	defer drain(t, s)
	// Seed the published ring depth the way the batcher would.
	s.ringDepth.Store(int64(f.ringDepth))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postMatch(t, ts, "t", []int{1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want 3", ra)
	}
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Kind != "backpressure" || eb.RetryAfter != 3 {
		t.Fatalf("error body %s (err %v)", raw, err)
	}
}

// TestTenantQuotaRejects429 pins per-tenant isolation: one tenant
// saturating its pending-task quota is shed with 429 while another tenant
// still gets through.
func TestTenantQuotaRejects429(t *testing.T) {
	f := newFakeMatcher()
	s := New(f, Config{Window: 0, TenantMaxPending: 4})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Hold the quota without involving the batcher: 4 pending tasks.
	if !s.quotaAcquire("greedy", 4) {
		t.Fatal("quota refused within limit")
	}
	resp, raw := postMatch(t, ts, "greedy", []int{1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if resp, _ := postMatch(t, ts, "modest", []int{1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant shed too: status %d", resp.StatusCode)
	}
	s.quotaRelease("greedy", 4)
	if resp, _ := postMatch(t, ts, "greedy", []int{1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("quota not released: status %d", resp.StatusCode)
	}
}

// TestQueueFullSheds503 fills the batch queue behind a slow solve and
// asserts overflow requests shed with 503 rather than blocking.
func TestQueueFullSheds503(t *testing.T) {
	f := newFakeMatcher()
	f.delay = 50 * time.Millisecond
	s := New(f, Config{Window: 0, QueueCap: 1})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First request occupies the batcher; more fill the depth-1 queue.
	var wg sync.WaitGroup
	shed := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postMatch(t, ts, "t", []int{i})
			shed <- resp.StatusCode
		}(i)
	}
	wg.Wait()
	close(shed)
	counts := map[int]int{}
	for code := range shed {
		counts[code]++
	}
	if counts[http.StatusServiceUnavailable] == 0 {
		t.Fatalf("no request shed on a full queue: %v", counts)
	}
	if counts[http.StatusOK] == 0 {
		t.Fatalf("every request shed: %v", counts)
	}
}

// TestStatsAndHealth pins the operational surface.
func TestStatsAndHealth(t *testing.T) {
	f := newFakeMatcher()
	s := New(f, Config{Window: 0})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postMatch(t, ts, "t", []int{1, 2})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sb statsBody
	if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sb.Served != 1 || sb.Accepted != 1 || sb.Answered != 1 || sb.Draining {
		t.Fatalf("stats %+v", sb)
	}
	if resp, err = http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	drain(t, s)
	if resp, err = http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}

func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
