package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"mfcp/internal/matching"
	"mfcp/internal/mfcperr"
)

// errorBody is the JSON error envelope. Kind is the stable, machine-
// readable name of the mfcperr sentinel behind the failure; Error is the
// human-readable chain. Hall carries the structured infeasibility
// certificate when one exists (422 responses).
type errorBody struct {
	Error      string    `json:"error"`
	Kind       string    `json:"kind"`
	RetryAfter int       `json:"retry_after_seconds,omitempty"`
	Hall       *hallBody `json:"hall,omitempty"`
}

// hallBody is the wire form of matching.HallViolation: the saturated
// cluster set whose assigned tasks exceed its capacity. A client holding
// this certificate knows the rejection is structural — retrying the same
// candidate set cannot succeed.
type hallBody struct {
	Source   int   `json:"source"`
	Clusters []int `json:"clusters"`
	Demand   int   `json:"demand"`
	Capacity int   `json:"capacity"`
}

// statusFor maps the mfcperr taxonomy onto HTTP status codes: caller
// mistakes (shape, config) are 4xx, structural infeasibility is 422
// Unprocessable Entity, shutdown is 503, everything else — including
// ErrNotConverged and corrupt state, which the client cannot fix — is 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, mfcperr.ErrBadShape), errors.Is(err, mfcperr.ErrBadConfig):
		return http.StatusBadRequest
	case errors.Is(err, mfcperr.ErrInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, mfcperr.ErrCanceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// kindFor names the sentinel for the error body.
func kindFor(err error) string {
	switch {
	case errors.Is(err, mfcperr.ErrBadShape):
		return "bad_shape"
	case errors.Is(err, mfcperr.ErrBadConfig):
		return "bad_config"
	case errors.Is(err, mfcperr.ErrInfeasible):
		return "infeasible"
	case errors.Is(err, mfcperr.ErrCanceled):
		return "canceled"
	case errors.Is(err, mfcperr.ErrNotConverged):
		return "not_converged"
	case errors.Is(err, mfcperr.ErrCorruptCheckpoint):
		return "corrupt_checkpoint"
	default:
		return "internal"
	}
}

// writeError renders err as its mapped status with the JSON envelope,
// attaching the Hall certificate when the chain carries one.
func writeError(w http.ResponseWriter, err error) {
	body := errorBody{Error: err.Error(), Kind: kindFor(err)}
	var hv *matching.HallViolation
	if errors.As(err, &hv) {
		body.Hall = &hallBody{
			Source: hv.Source, Clusters: hv.Clusters,
			Demand: hv.Demand, Capacity: hv.Capacity,
		}
	}
	writeJSON(w, statusFor(err), body)
}

// writeReject renders an admission rejection (503 for load shedding, 429
// for quota) with a Retry-After hint in both the header and the body.
func writeReject(w http.ResponseWriter, status int, kind, msg string, retryAfter int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, status, errorBody{Error: msg, Kind: kind, RetryAfter: retryAfter})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
