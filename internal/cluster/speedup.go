package cluster

import "math"

// SpeedupCurve is the time-adjustment function ζ of §3.4: given the number
// of tasks k assigned to a cluster, ζ(k) multiplies the summed execution
// time to model parallel-sharing gains. The paper's evaluation uses an
// exponential decay from 1 down to a floor of 0.6.
//
// ζ must be positive, non-increasing, and ζ(k) = 1 for k ≤ 1 (a single
// exclusive task gains nothing).
type SpeedupCurve struct {
	// Floor is the asymptotic speedup ratio (paper: 0.6).
	Floor float64
	// Rate is the exponential decay rate per additional task.
	Rate float64
}

// DefaultSpeedup is the paper's evaluation curve: exponential decay 1 → 0.6.
func DefaultSpeedup() SpeedupCurve { return SpeedupCurve{Floor: 0.6, Rate: 0.5} }

// NoSpeedup models strictly sequential exclusive execution (ζ ≡ 1),
// the paper's convex setting.
func NoSpeedup() SpeedupCurve { return SpeedupCurve{Floor: 1, Rate: 0} }

// Zeta evaluates ζ at a (possibly fractional, during continuous relaxation)
// task count k.
func (s SpeedupCurve) Zeta(k float64) float64 {
	if k <= 1 {
		return 1
	}
	return s.Floor + (1-s.Floor)*math.Exp(-s.Rate*(k-1))
}

// ZetaDeriv evaluates dζ/dk, needed by the gradient of the non-convex
// objective (17).
func (s SpeedupCurve) ZetaDeriv(k float64) float64 {
	if k <= 1 {
		return 0
	}
	return -s.Rate * (1 - s.Floor) * math.Exp(-s.Rate*(k-1))
}

// IsTrivial reports whether the curve is identically 1 (sequential setting).
func (s SpeedupCurve) IsTrivial() bool { return s.Floor >= 1 || s.Rate == 0 }
