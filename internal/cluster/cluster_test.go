package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"mfcp/internal/rng"
	"mfcp/internal/taskgraph"
)

func TestInventoryValid(t *testing.T) {
	inv := Inventory()
	if len(inv) < 9 {
		t.Fatalf("inventory has %d profiles", len(inv))
	}
	names := map[string]bool{}
	for _, p := range inv {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if names[p.Name] {
			t.Fatalf("duplicate profile name %q", p.Name)
		}
		names[p.Name] = true
	}
}

func TestFleetSettings(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range []Setting{SettingA, SettingB, SettingC} {
		fleet, err := Fleet(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(fleet) != 3 {
			t.Fatalf("setting %s fleet size %d", s, len(fleet))
		}
		for _, p := range fleet {
			if p == nil {
				t.Fatalf("setting %s has nil profile", s)
			}
			if seen[p.Name] {
				t.Fatalf("profile %q reused across settings", p.Name)
			}
			seen[p.Name] = true
		}
	}
	if _, err := Fleet("Z"); err == nil {
		t.Fatal("unknown setting accepted")
	}
}

func TestTrueTimePositiveAndDeterministic(t *testing.T) {
	r := rng.New(1)
	tasks := taskgraph.GenerateMix(20, nil, r)
	for _, p := range Inventory() {
		for _, task := range tasks {
			t1 := p.TrueTime(task)
			t2 := p.TrueTime(task)
			if t1 <= 0 || math.IsNaN(t1) || math.IsInf(t1, 0) {
				t.Fatalf("%s/%s time=%v", p.Name, task.Name, t1)
			}
			if t1 != t2 {
				t.Fatalf("TrueTime not deterministic")
			}
		}
	}
}

func TestTrueTimeMonotoneInWork(t *testing.T) {
	// More steps on the same graph must take longer.
	r := rng.New(2)
	task := taskgraph.Generate(taskgraph.FamilyCNN, r)
	p := Inventory()[0]
	t1 := p.TrueTime(task)
	task2 := *task
	task2.StepsPerEpoch *= 2
	if p.TrueTime(&task2) <= t1 {
		t.Fatal("doubling steps did not increase time")
	}
}

func TestHeterogeneityCreatesPreferenceStructure(t *testing.T) {
	// Core premise of the paper: cluster orderings differ by task. Find two
	// tasks and two clusters with opposite orderings.
	r := rng.New(3)
	fleet := MustFleet(SettingA)
	tasks := taskgraph.GenerateMix(60, nil, r)
	found := false
	for i := 0; i < len(tasks) && !found; i++ {
		for j := i + 1; j < len(tasks) && !found; j++ {
			for a := 0; a < len(fleet) && !found; a++ {
				for b := a + 1; b < len(fleet); b++ {
					d1 := fleet[a].TrueTime(tasks[i]) - fleet[b].TrueTime(tasks[i])
					d2 := fleet[a].TrueTime(tasks[j]) - fleet[b].TrueTime(tasks[j])
					if d1*d2 < 0 {
						found = true
						break
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no preference reversal across 60 tasks — fleet not heterogeneous enough")
	}
}

func TestReliabilityRangeAndDecay(t *testing.T) {
	r := rng.New(4)
	for _, p := range Inventory() {
		for i := 0; i < 20; i++ {
			task := taskgraph.Generate(taskgraph.Family(i%taskgraph.NumFamilies), r)
			a := p.TrueReliability(task)
			if a < 0.05 || a > 0.999 {
				t.Fatalf("%s reliability %v outside clamp", p.Name, a)
			}
		}
	}
	// Longer tasks on a flaky cluster must be (weakly) less reliable.
	p := Inventory()[6] // spot-pool, high failure rate
	task := taskgraph.Generate(taskgraph.FamilyCNN, rng.New(5))
	long := *task
	long.StepsPerEpoch = task.StepsPerEpoch * 8
	if p.TrueReliability(&long) > p.TrueReliability(task) {
		t.Fatal("longer task more reliable")
	}
}

func TestReliabilitySpreadAcrossClusters(t *testing.T) {
	// Setting C is designed to have a wide reliability spread.
	fleet := MustFleet(SettingC)
	task := taskgraph.Generate(taskgraph.FamilyCNN, rng.New(6))
	lo, hi := 1.0, 0.0
	for _, p := range fleet {
		a := p.TrueReliability(task)
		lo = math.Min(lo, a)
		hi = math.Max(hi, a)
	}
	if hi-lo < 0.02 {
		t.Fatalf("setting C reliability spread only %v", hi-lo)
	}
}

func TestMeasureNoisyButUnbiasedish(t *testing.T) {
	p := Inventory()[0]
	task := taskgraph.Generate(taskgraph.FamilyMLP, rng.New(7))
	r := rng.New(8)
	trueT := p.TrueTime(task)
	sum := 0.0
	n := 2000
	for i := 0; i < n; i++ {
		m, a := p.Measure(task, 20, r)
		if m <= 0 || a <= 0 || a >= 1 {
			t.Fatalf("measurement out of range: t=%v a=%v", m, a)
		}
		sum += m
	}
	mean := sum / float64(n)
	// lognormal(0, σ) has mean exp(σ²/2) ≈ 1.00125 for σ=0.05
	if math.Abs(mean/trueT-1) > 0.02 {
		t.Fatalf("measured mean %v vs true %v", mean, trueT)
	}
}

func TestMeasureReliabilityFrequency(t *testing.T) {
	p := Inventory()[0]
	task := taskgraph.Generate(taskgraph.FamilyCNN, rng.New(9))
	r := rng.New(10)
	trueA := p.TrueReliability(task)
	var acc float64
	n := 500
	for i := 0; i < n; i++ {
		_, a := p.Measure(task, 50, r)
		acc += a
	}
	if est := acc / float64(n); math.Abs(est-trueA) > 0.05 {
		t.Fatalf("reliability frequency %v vs true %v", est, trueA)
	}
}

func TestMemPressure(t *testing.T) {
	if memPressure(1, 10) != 1 {
		t.Fatal("low occupancy should be penalty-free")
	}
	if memPressure(9, 10) <= 1 {
		t.Fatal("90% occupancy should be penalized")
	}
	if memPressure(15, 10) < memPressure(9, 10) {
		t.Fatal("pressure not monotone past capacity")
	}
	// Continuity at the boundary occ=1.
	below := memPressure(0.999999*10, 10)
	above := memPressure(1.000001*10, 10)
	if math.Abs(below-above) > 0.01 {
		t.Fatalf("memPressure discontinuous at capacity: %v vs %v", below, above)
	}
}

func TestZetaProperties(t *testing.T) {
	curves := []SpeedupCurve{DefaultSpeedup(), {Floor: 0.7, Rate: 0.3}, NoSpeedup()}
	check := func(raw uint8) bool {
		k := float64(raw%40) + 0.5
		for _, s := range curves {
			z := s.Zeta(k)
			if z <= 0 || z > 1 {
				return false
			}
			if s.Zeta(k+1) > z+1e-12 { // non-increasing
				return false
			}
			if z < s.Floor-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	if DefaultSpeedup().Zeta(1) != 1 || DefaultSpeedup().Zeta(0.3) != 1 {
		t.Fatal("ζ(k≤1) must be 1")
	}
}

func TestZetaDerivMatchesFiniteDiff(t *testing.T) {
	s := DefaultSpeedup()
	for _, k := range []float64{1.5, 2, 3.7, 10} {
		h := 1e-6
		fd := (s.Zeta(k+h) - s.Zeta(k-h)) / (2 * h)
		if math.Abs(fd-s.ZetaDeriv(k)) > 1e-5 {
			t.Fatalf("ZetaDeriv(%v)=%v, fd=%v", k, s.ZetaDeriv(k), fd)
		}
	}
}

func TestZetaConvergesToFloor(t *testing.T) {
	s := DefaultSpeedup()
	if math.Abs(s.Zeta(50)-0.6) > 1e-6 {
		t.Fatalf("ζ(50)=%v, want ≈0.6", s.Zeta(50))
	}
}

func TestNoSpeedupTrivial(t *testing.T) {
	if !NoSpeedup().IsTrivial() {
		t.Fatal("NoSpeedup not trivial")
	}
	if DefaultSpeedup().IsTrivial() {
		t.Fatal("DefaultSpeedup reported trivial")
	}
}

func BenchmarkTrueTime(b *testing.B) {
	p := Inventory()[0]
	task := taskgraph.Generate(taskgraph.FamilyTransformer, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.TrueTime(task)
	}
}

func TestDriftFactor(t *testing.T) {
	var zero Drift
	if !zero.IsZero() || zero.Factor(100) != 1 {
		t.Fatal("zero drift not identity")
	}
	aging := Drift{Trend: 0.01}
	if aging.Factor(0) != 1 || math.Abs(aging.Factor(50)-1.5) > 1e-12 {
		t.Fatalf("trend factors: %v %v", aging.Factor(0), aging.Factor(50))
	}
	osc := Drift{Amplitude: 0.4, Period: 20}
	// One full period must return to ~1 and peak near 1.4.
	if math.Abs(osc.Factor(20)-1) > 1e-9 {
		t.Fatalf("periodic factor at full period: %v", osc.Factor(20))
	}
	if math.Abs(osc.Factor(5)-1.4) > 1e-9 {
		t.Fatalf("peak factor: %v", osc.Factor(5))
	}
	// Clamped positive even under absurd parameters.
	crazy := Drift{Trend: -10}
	if crazy.Factor(100) <= 0 {
		t.Fatal("factor not clamped positive")
	}
}

func TestDefaultDriftsHeterogeneous(t *testing.T) {
	ds := DefaultDrifts(3)
	if len(ds) != 3 {
		t.Fatalf("len %d", len(ds))
	}
	// The three clusters must drift differently at some round.
	same := true
	for r := 1; r < 50; r += 7 {
		f0, f1, f2 := ds[0].Factor(r), ds[1].Factor(r), ds[2].Factor(r)
		if f0 != f1 || f1 != f2 {
			same = false
		}
	}
	if same {
		t.Fatal("default drifts identical across clusters")
	}
}
