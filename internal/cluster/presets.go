package cluster

import (
	"fmt"

	"mfcp/internal/taskgraph"
)

// Preset fleet construction. The paper evaluates three randomly selected
// 3-cluster combinations ("settings A, B, C") drawn from its platform's
// heterogeneous inventory. We define a nine-cluster inventory spanning the
// realistic axes of heterogeneity — datacenter-grade tensor monsters,
// memory-rich but compute-modest nodes, consumer cards with flaky hosting,
// CPU-heavy enterprise clusters — and fix which three each setting uses.

// aff builds a family-affinity array in CNN, Transformer, RNN, MLP, UNet,
// GNN order.
func aff(cnn, xfmr, rnn, mlp, unet, gnn float64) [taskgraph.NumFamilies]float64 {
	return [taskgraph.NumFamilies]float64{cnn, xfmr, rnn, mlp, unet, gnn}
}

// Inventory returns the full nine-profile cluster inventory. Callers may
// mutate the returned profiles freely; each call builds fresh copies.
func Inventory() []*Profile {
	return []*Profile{
		{
			// Modern datacenter accelerators: huge tensor throughput,
			// mature conv and attention kernels, reliable hosting.
			Name:        "dc-tensor-a",
			TensorFLOPS: 60e12, VectorFLOPS: 3.0e12, MemoryFLOPS: 0.9e12,
			FamilyAffinity:    aff(0.8, 2.0, 1.6, 1.0, 0.85, 1.7),
			KernelOverheadSec: 6e-6, BatchHalfSat: 48,
			MemoryGB: 80, NetworkMBps: 1200,
			FailuresPerHour: 0.15, NoiseSigma: 0.05,
			Speedup: DefaultSpeedup(),
		},
		{
			// Previous-gen datacenter: strong convs, attention kernels
			// unfused (transformers run disproportionately slow).
			Name:        "dc-tensor-b",
			TensorFLOPS: 40e12, VectorFLOPS: 2.2e12, MemoryFLOPS: 0.7e12,
			FamilyAffinity:    aff(0.85, 2.6, 1.3, 1.0, 0.9, 1.8),
			KernelOverheadSec: 9e-6, BatchHalfSat: 32,
			MemoryGB: 32, NetworkMBps: 900,
			FailuresPerHour: 0.05, NoiseSigma: 0.07,
			Speedup: DefaultSpeedup(),
		},
		{
			// Memory-rich inference boxes repurposed for training: modest
			// math, generous memory, excellent embedding throughput.
			Name:        "mem-rich",
			TensorFLOPS: 18e12, VectorFLOPS: 2.6e12, MemoryFLOPS: 1.6e12,
			FamilyAffinity:    aff(1.4, 1.0, 0.8, 0.9, 1.2, 0.7),
			KernelOverheadSec: 8e-6, BatchHalfSat: 24,
			MemoryGB: 160, NetworkMBps: 800,
			FailuresPerHour: 0.28, NoiseSigma: 0.08,
			Speedup: DefaultSpeedup(),
		},
		{
			// University cluster of consumer cards: decent tensor rate,
			// tiny memory (pressure bites), flaky power/network.
			Name:        "uni-consumer",
			TensorFLOPS: 30e12, VectorFLOPS: 1.8e12, MemoryFLOPS: 0.5e12,
			FamilyAffinity:    aff(1.0, 1.5, 1.1, 0.9, 1.05, 1.4),
			KernelOverheadSec: 12e-6, BatchHalfSat: 20,
			MemoryGB: 12, NetworkMBps: 250,
			FailuresPerHour: 0.20, NoiseSigma: 0.14,
			Speedup: SpeedupCurve{Floor: 0.6, Rate: 0.35},
		},
		{
			// Enterprise CPU-heavy cluster: weak tensor math, wide vector
			// units, very stable operations.
			Name:        "ent-cpu",
			TensorFLOPS: 6e12, VectorFLOPS: 3.5e12, MemoryFLOPS: 1.1e12,
			FamilyAffinity:    aff(1.6, 1.2, 0.7, 0.75, 1.5, 0.8),
			KernelOverheadSec: 3e-6, BatchHalfSat: 8,
			MemoryGB: 256, NetworkMBps: 600,
			FailuresPerHour: 0.015, NoiseSigma: 0.04,
			Speedup: SpeedupCurve{Floor: 0.7, Rate: 0.6},
		},
		{
			// Edge aggregation site: cheap, slow, small, unreliable.
			Name:        "edge-agg",
			TensorFLOPS: 9e12, VectorFLOPS: 1.0e12, MemoryFLOPS: 0.35e12,
			FamilyAffinity:    aff(1.1, 1.7, 1.1, 0.95, 1.15, 1.3),
			KernelOverheadSec: 20e-6, BatchHalfSat: 16,
			MemoryGB: 16, NetworkMBps: 120,
			FailuresPerHour: 0.35, NoiseSigma: 0.18,
			Speedup: SpeedupCurve{Floor: 0.65, Rate: 0.4},
		},
		{
			// Startup's spot-instance pool: fast when alive, preemptible.
			Name:        "spot-pool",
			TensorFLOPS: 32e12, VectorFLOPS: 2.4e12, MemoryFLOPS: 0.8e12,
			FamilyAffinity:    aff(0.95, 1.1, 1.3, 1.0, 1.0, 1.2),
			KernelOverheadSec: 7e-6, BatchHalfSat: 40,
			MemoryGB: 40, NetworkMBps: 1000,
			FailuresPerHour: 0.30, NoiseSigma: 0.10,
			Speedup: DefaultSpeedup(),
		},
		{
			// NLP-tuned pods: fused attention, fast embeddings, convs poor.
			Name:        "nlp-pods",
			TensorFLOPS: 26e12, VectorFLOPS: 2.0e12, MemoryFLOPS: 1.4e12,
			FamilyAffinity:    aff(1.9, 0.55, 0.8, 1.05, 1.6, 0.9),
			KernelOverheadSec: 8e-6, BatchHalfSat: 24,
			MemoryGB: 48, NetworkMBps: 700,
			FailuresPerHour: 0.32, NoiseSigma: 0.09,
			Speedup: DefaultSpeedup(),
		},
		{
			// Telco regional DC: balanced mid-range, good network.
			Name:        "telco-regional",
			TensorFLOPS: 22e12, VectorFLOPS: 2.1e12, MemoryFLOPS: 0.9e12,
			FamilyAffinity:    aff(1.1, 1.1, 1.0, 0.95, 1.1, 1.0),
			KernelOverheadSec: 9e-6, BatchHalfSat: 28,
			MemoryGB: 64, NetworkMBps: 1500,
			FailuresPerHour: 0.10, NoiseSigma: 0.08,
			Speedup: DefaultSpeedup(),
		},
	}
}

// Setting names the paper's three evaluation fleets.
type Setting string

// The three cluster combinations used in Fig. 4 (and Setting A for the
// other experiments).
const (
	SettingA Setting = "A"
	SettingB Setting = "B"
	SettingC Setting = "C"
)

// Fleet returns the three-cluster fleet for the given setting. The
// compositions are fixed (the paper fixes its random selections too) and
// chosen to span distinct heterogeneity regimes:
//
//	A: tensor monster vs NLP-tuned vs memory-rich — strong per-family
//	   preference structure (the regime MFCP exploits best);
//	B: modern vs previous-gen vs consumer — graded quality plus
//	   reliability differences;
//	C: CPU-heavy vs spot pool vs edge — extreme reliability spread.
func Fleet(s Setting) ([]*Profile, error) {
	inv := Inventory()
	byName := map[string]*Profile{}
	for _, p := range inv {
		byName[p.Name] = p
	}
	var names []string
	switch s {
	case SettingA:
		names = []string{"dc-tensor-a", "nlp-pods", "mem-rich"}
	case SettingB:
		names = []string{"dc-tensor-b", "uni-consumer", "telco-regional"}
	case SettingC:
		names = []string{"ent-cpu", "spot-pool", "edge-agg"}
	default:
		return nil, fmt.Errorf("cluster: unknown setting %q", s)
	}
	fleet := make([]*Profile, len(names))
	for i, n := range names {
		fleet[i] = byName[n]
	}
	return fleet, nil
}

// MustFleet is Fleet for the three known settings; it panics otherwise.
func MustFleet(s Setting) []*Profile {
	f, err := Fleet(s)
	if err != nil {
		// invariant: MustFleet serves the three literal settings in tests and examples.
		panic(err)
	}
	return f
}
