package cluster

import "math"

// Drift models slow multiplicative change in a cluster's effective speed
// over platform rounds — co-tenancy waves, thermal throttling, gradual
// degradation. The factor multiplies execution times:
//
//	factor(r) = 1 + Trend·r + Amplitude·sin(2π·(r/Period + Phase))
//
// clamped to stay positive. A zero Drift is the identity.
type Drift struct {
	// Amplitude is the peak fractional slowdown/speedup of the cyclic
	// component (e.g. 0.3 = ±30%).
	Amplitude float64
	// Period is the cycle length in rounds (ignored when Amplitude is 0).
	Period float64
	// Phase offsets the cycle (fraction of a period).
	Phase float64
	// Trend is the per-round secular slowdown (positive = aging).
	Trend float64
}

// IsZero reports whether the drift is the identity.
func (d Drift) IsZero() bool { return d.Amplitude == 0 && d.Trend == 0 }

// Factor returns the multiplicative time factor at round r.
func (d Drift) Factor(r int) float64 {
	f := 1 + d.Trend*float64(r)
	if d.Amplitude != 0 && d.Period > 0 {
		f += d.Amplitude * math.Sin(2*math.Pi*(float64(r)/d.Period+d.Phase))
	}
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// DefaultDrifts returns a heterogeneous drift assignment for an m-cluster
// fleet: cluster 0 ages linearly, cluster 1 oscillates (diurnal
// co-tenancy), the rest alternate milder versions. Used by the adaptation
// study.
func DefaultDrifts(m int) []Drift {
	out := make([]Drift, m)
	for i := range out {
		switch i % 3 {
		case 0:
			// Steady aging: ×2.2 slower by round 60.
			out[i] = Drift{Trend: 0.02}
		case 1:
			// Strong co-tenancy wave: ±50% on a 30-round cycle.
			out[i] = Drift{Amplitude: 0.5, Period: 30, Phase: float64(i) * 0.17}
		default:
			out[i] = Drift{Amplitude: 0.25, Period: 20, Phase: float64(i) * 0.29, Trend: 0.005}
		}
	}
	return out
}
