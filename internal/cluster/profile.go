// Package cluster models the third-party computing clusters an exchange
// platform acquires: their hardware profiles, the ground-truth execution
// time and reliability of deep-learning tasks on them, and the speedup
// behaviour when tasks share a cluster.
//
// This is the stand-in for the paper's physical Xirang clusters. The model
// is analytic but deliberately heterogeneous and nonlinear:
//
//   - each cluster prices tensor / vector / memory work differently
//     (per-class throughputs) and carries per-family kernel-maturity
//     multipliers — reproducing the "Cluster B is exponential where Cluster
//     A is linear" misspecification in the paper's Fig. 2;
//   - memory pressure kicks in superlinearly once a task's working set
//     approaches capacity;
//   - reliability decays with execution time (longer jobs see more failure
//     opportunities, per the paper's footnote 1) and with memory pressure.
//
// Predictors never see these internals — only (feature, noisy measurement)
// pairs — so the learning problem downstream is genuinely hard.
package cluster

import (
	"fmt"
	"math"

	"mfcp/internal/rng"
	"mfcp/internal/taskgraph"
)

// Profile describes one cluster's hardware and operational characteristics.
type Profile struct {
	Name string

	// Effective training throughput (FLOP/s) per compute class. These fold
	// together peak rate and achievable efficiency.
	TensorFLOPS float64
	VectorFLOPS float64
	MemoryFLOPS float64

	// FamilyAffinity multiplies execution time per task family, modeling
	// kernel/library maturity differences (e.g. excellent cuDNN convs but
	// unfused attention). 1 means neutral; >1 slower.
	FamilyAffinity [taskgraph.NumFamilies]float64

	// KernelOverheadSec is the fixed cost per operator launch per step.
	KernelOverheadSec float64

	// BatchHalfSat is the batch size at which the tensor units reach half
	// of peak utilization; small batches underutilize wide accelerators.
	BatchHalfSat float64

	// MemoryGB is accelerator memory capacity. Working sets near or above
	// it trigger superlinear slowdown and reliability loss.
	MemoryGB float64

	// NetworkMBps is the staging bandwidth for dataset transfer.
	NetworkMBps float64

	// FailuresPerHour is the base interruption rate (hardware, network,
	// preemption) of this third-party site.
	FailuresPerHour float64

	// NoiseSigma is the lognormal sigma of run-to-run time variation.
	NoiseSigma float64

	// Speedup governs parallel task execution on this cluster (§3.4).
	Speedup SpeedupCurve
}

// Validate checks that the profile is physically sensible.
func (p *Profile) Validate() error {
	if p.TensorFLOPS <= 0 || p.VectorFLOPS <= 0 || p.MemoryFLOPS <= 0 {
		return fmt.Errorf("cluster %q: non-positive throughput", p.Name)
	}
	for f, a := range p.FamilyAffinity {
		if a <= 0 {
			return fmt.Errorf("cluster %q: non-positive affinity for %v", p.Name, taskgraph.Family(f))
		}
	}
	if p.MemoryGB <= 0 || p.NetworkMBps <= 0 {
		return fmt.Errorf("cluster %q: non-positive capacity", p.Name)
	}
	if p.FailuresPerHour < 0 || p.NoiseSigma < 0 {
		return fmt.Errorf("cluster %q: negative rate", p.Name)
	}
	return nil
}

// memPressure returns the superlinear slowdown multiplier for a working set
// of usedGB on capacity capGB. Below ~70% occupancy it is 1; it grows
// quadratically after that and steeply past capacity (paging/offload).
func memPressure(usedGB, capGB float64) float64 {
	occ := usedGB / capGB
	switch {
	case occ <= 0.7:
		return 1
	case occ <= 1.0:
		d := (occ - 0.7) / 0.3
		return 1 + 0.8*d*d
	default:
		return 1.8 * math.Exp(2*(occ-1))
	}
}

// workingSetGB estimates a task's accelerator working set: parameters,
// gradients and optimizer state (3x params) plus activations.
func workingSetGB(c taskgraph.GraphCost) float64 {
	paramBytes := 4 * c.Params * 3
	return (paramBytes + c.ActivationBytes) / 1e9
}

// TrueTime returns the ground-truth execution time (seconds) of the whole
// task — all epochs plus one-time dataset staging — on this cluster,
// excluding run-to-run noise. This is the t the platform's matcher
// optimizes over.
func (p *Profile) TrueTime(t *taskgraph.Task) float64 {
	epochs := float64(t.Epochs)
	if epochs < 1 {
		epochs = 1
	}
	return p.EpochTime(t)*epochs + t.DatasetMB/p.NetworkMBps
}

// EpochTime returns the ground-truth single-epoch execution time (seconds)
// excluding staging — the quantity a profiling run measures directly.
func (p *Profile) EpochTime(t *taskgraph.Task) float64 {
	c := t.Cost()
	steps := float64(t.StepsPerEpoch)

	// Batch-dependent tensor utilization: wide accelerators starve on small
	// batches. This is one of the nonlinearities that defeats linear
	// predictors on some clusters but not others.
	util := float64(t.BatchSize) / (float64(t.BatchSize) + p.BatchHalfSat)

	tensor := c.FLOPsByClass[taskgraph.ClassTensor] * taskgraph.TrainFLOPsMultiplier / (p.TensorFLOPS * util)
	vector := c.FLOPsByClass[taskgraph.ClassVector] * taskgraph.TrainFLOPsMultiplier / p.VectorFLOPS
	memory := c.FLOPsByClass[taskgraph.ClassMemory] * taskgraph.TrainFLOPsMultiplier / p.MemoryFLOPS
	compute := (tensor + vector + memory) * steps

	overhead := float64(c.Nodes) * p.KernelOverheadSec * steps
	return (compute + overhead) * p.FamilyAffinity[t.Family] * memPressure(workingSetGB(c), p.MemoryGB)
}

// TrueReliability returns the ground-truth probability that the task
// completes successfully on this cluster.
func (p *Profile) TrueReliability(t *taskgraph.Task) float64 {
	hours := p.TrueTime(t) / 3600
	// Survival of a Poisson interruption process over the run...
	surv := math.Exp(-p.FailuresPerHour * hours)
	// ...times a memory-safety factor: jobs near capacity OOM-crash.
	occ := workingSetGB(t.Cost()) / p.MemoryGB
	memSafe := 1.0
	if occ > 0.8 {
		memSafe = math.Exp(-2.5 * (occ - 0.8))
	}
	// ...times a staging-fragility factor for huge datasets on thin pipes.
	stagingHours := t.DatasetMB / p.NetworkMBps / 3600
	netSafe := math.Exp(-0.5 * p.FailuresPerHour * stagingHours)
	a := surv * memSafe * netSafe
	return clamp(a, 0.05, 0.999)
}

// Measure returns one noisy observation of (time, success-probability
// estimate) for the task, as the platform's profiling runs would produce.
// Time noise is multiplicative lognormal; the reliability observation is a
// frequency estimate from `trials` Bernoulli runs (trials <= 0 uses 20).
func (p *Profile) Measure(t *taskgraph.Task, trials int, r *rng.Source) (timeSec, reliability float64) {
	timeSec = p.TrueTime(t) * r.LogNormal(0, p.NoiseSigma)
	if trials <= 0 {
		trials = 20
	}
	a := p.TrueReliability(t)
	succ := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(a) {
			succ++
		}
	}
	// Laplace smoothing keeps the observation off the {0,1} boundary.
	reliability = (float64(succ) + 1) / (float64(trials) + 2)
	return timeSec, reliability
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
