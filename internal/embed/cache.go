package embed

import (
	"sync"
	"sync/atomic"

	"mfcp/internal/mat"
	"mfcp/internal/taskgraph"
)

// The embedding cache memoizes Embedder.Embed across the whole process.
// Embedder weights are a pure function of (seed, dim) and Embed is a pure
// function of the task's content, so the cache key (seed, dim, task
// fingerprint) fully determines the output vector. Experiment replicates and
// scenario rebuilds regenerate content-identical task pools from the same
// seeds; with the cache they pay for the fixed-weight message passing once.
//
// Invariants (see DESIGN.md):
//   - keyed by content, not pointer: taskgraph.Task.Fingerprint digests the
//     graph and hyperparameters, so equal tasks hit regardless of identity;
//   - cached vectors are immutable: lookups copy into the caller's
//     destination, never hand out the stored slice;
//   - bounded: at most embedCacheMax entries are retained; inserting beyond
//     that evicts the oldest entry (FIFO), so long multi-scenario processes
//     keep caching fresh pools instead of freezing on the first one.
var embedCacheMax = 1 << 15 // var, not const: eviction tests shrink it

type embedKey struct {
	seed uint64
	dim  int
	fp   [16]byte
}

var (
	embedMu    sync.RWMutex
	embedCache = make(map[embedKey][]float64)
	// embedOrder tracks insertion order for FIFO eviction.
	embedOrder []embedKey
	// Hit/miss/eviction counters are atomics, not mutex-guarded: lookups on
	// the embedding hot path record them lock-free, and the telemetry
	// registry reads them live (RegisterMetrics).
	embedHits      atomic.Uint64
	embedMisses    atomic.Uint64
	embedEvictions atomic.Uint64
)

// cacheLookup copies the cached embedding for k into dst and reports whether
// it was present.
func cacheLookup(k embedKey, dst mat.Vec) bool {
	embedMu.RLock()
	v, ok := embedCache[k]
	embedMu.RUnlock()
	if ok {
		copy(dst, v)
	}
	return ok
}

func cacheStore(k embedKey, v mat.Vec) {
	embedMu.Lock()
	defer embedMu.Unlock()
	if _, dup := embedCache[k]; dup {
		return // a concurrent embed of the same task got here first
	}
	if len(embedCache) >= embedCacheMax {
		old := embedOrder[0]
		embedOrder = embedOrder[1:]
		delete(embedCache, old)
		embedEvictions.Add(1)
	}
	embedCache[k] = append([]float64(nil), v...)
	embedOrder = append(embedOrder, k)
}

// Stats is a point-in-time snapshot of the embedding cache counters.
type Stats struct {
	// Hits and Misses count lookups since process start (or ResetCache).
	Hits, Misses uint64
	// Evictions counts FIFO evictions after the cache filled.
	Evictions uint64
	// Size is the current number of cached embeddings.
	Size int
}

// CacheStatsFull returns the full embedding cache counter snapshot.
func CacheStatsFull() Stats {
	embedMu.RLock()
	size := len(embedCache)
	embedMu.RUnlock()
	return Stats{Hits: embedHits.Load(), Misses: embedMisses.Load(), Evictions: embedEvictions.Load(), Size: size}
}

// CacheStats returns the process-wide embedding cache hit/miss counters.
func CacheStats() (hits, misses uint64) {
	s := CacheStatsFull()
	return s.Hits, s.Misses
}

// ResetCache clears the embedding cache and its counters (tests only).
func ResetCache() {
	embedMu.Lock()
	embedCache = make(map[embedKey][]float64)
	embedOrder = nil
	embedMu.Unlock()
	embedHits.Store(0)
	embedMisses.Store(0)
	embedEvictions.Store(0)
}

func (e *Embedder) key(t *taskgraph.Task) embedKey {
	return embedKey{seed: e.seed, dim: e.Dim, fp: t.Fingerprint()}
}

func recordHit()  { embedHits.Add(1) }
func recordMiss() { embedMisses.Add(1) }
