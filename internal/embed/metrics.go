package embed

import "mfcp/internal/obs"

// RegisterMetrics exposes the process-wide embedding cache counters on reg.
// The instruments are read-through (CounterFunc/GaugeFunc): exports read the
// live atomics, so registration costs nothing on the embedding hot path.
// Safe to call more than once per registry and a no-op when reg is nil.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("mfcp_embed_cache_hits_total",
		"embedding cache lookups served from cache", embedHits.Load)
	reg.CounterFunc("mfcp_embed_cache_misses_total",
		"embedding cache lookups that recomputed the embedding", embedMisses.Load)
	reg.CounterFunc("mfcp_embed_cache_evictions_total",
		"embedding cache FIFO evictions after the cache filled", embedEvictions.Load)
	reg.GaugeFunc("mfcp_embed_cache_size",
		"current number of cached embeddings", func() float64 {
			embedMu.RLock()
			n := len(embedCache)
			embedMu.RUnlock()
			return float64(n)
		})
}
