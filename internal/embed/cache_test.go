package embed

import (
	"testing"

	"mfcp/internal/rng"
	"mfcp/internal/taskgraph"
)

// regen builds a content-identical copy of a task pool by replaying the
// generator stream — the same thing scenario rebuilds and experiment
// replicates do.
func regen(n int, seed uint64) []*taskgraph.Task {
	return taskgraph.GenerateMix(n, nil, rng.New(seed))
}

func TestCacheHitsOnContentIdenticalTasks(t *testing.T) {
	ResetCache()
	defer ResetCache()
	e := New(12, 7)
	first := e.EmbedAll(regen(6, 3))
	h0, m0 := CacheStats()
	if h0 != 0 || m0 != 6 {
		t.Fatalf("cold pass: hits=%d misses=%d, want 0/6", h0, m0)
	}
	// Distinct *Task pointers, identical content: everything must hit.
	second := e.EmbedAll(regen(6, 3))
	h1, m1 := CacheStats()
	if h1 != 6 || m1 != 6 {
		t.Fatalf("warm pass: hits=%d misses=%d, want 6/6", h1, m1)
	}
	if !first.Equal(second, 0) {
		t.Fatal("cached embeddings differ from computed ones")
	}
}

func TestCacheKeySeparatesSeedAndDim(t *testing.T) {
	ResetCache()
	defer ResetCache()
	task := taskgraph.Generate(taskgraph.FamilyCNN, rng.New(1))
	a := New(12, 7).Embed(task)
	b := New(12, 8).Embed(task) // different weight seed
	c := New(10, 7).Embed(task) // different output dim
	if _, misses := CacheStats(); misses != 3 {
		t.Fatalf("expected 3 misses across distinct keys, got %d", misses)
	}
	if a.Equal(b, 1e-12) {
		t.Fatal("different seeds produced equal embeddings (key collision?)")
	}
	if len(c) != 10 {
		t.Fatalf("dim-10 embedder returned %d values", len(c))
	}
}

func TestCachedVectorsAreIsolated(t *testing.T) {
	ResetCache()
	defer ResetCache()
	e := New(12, 7)
	task := taskgraph.Generate(taskgraph.FamilyMLP, rng.New(2))
	v1 := e.Embed(task)
	v1[0] = 1e9 // caller mutates its copy
	v2 := e.Embed(task)
	if v2[0] == 1e9 {
		t.Fatal("cache handed out shared storage: caller mutation leaked")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := taskgraph.Generate(taskgraph.FamilyTransformer, rng.New(4))
	same := taskgraph.Generate(taskgraph.FamilyTransformer, rng.New(4))
	if base.Fingerprint() != same.Fingerprint() {
		t.Fatal("content-identical tasks fingerprint differently")
	}
	mutants := []func(c *taskgraph.Task){
		func(c *taskgraph.Task) { c.BatchSize++ },
		func(c *taskgraph.Task) { c.StepsPerEpoch++ },
		func(c *taskgraph.Task) { c.Epochs++ },
		func(c *taskgraph.Task) { c.DatasetMB += 0.5 },
		func(c *taskgraph.Task) { c.Name += "x" },
		func(c *taskgraph.Task) { c.Graph.Nodes[1].Out++ },
	}
	for i, mutate := range mutants {
		c := taskgraph.Generate(taskgraph.FamilyTransformer, rng.New(4))
		mutate(c)
		if c.Fingerprint() == base.Fingerprint() {
			t.Fatalf("mutation %d did not change the fingerprint", i)
		}
	}
}

func TestCacheEvictsOldestWhenFull(t *testing.T) {
	ResetCache()
	defer ResetCache()
	oldMax := embedCacheMax
	embedCacheMax = 4
	defer func() { embedCacheMax = oldMax }()

	e := New(12, 7)
	tasks := regen(6, 9)
	for _, task := range tasks {
		e.Embed(task)
	}
	st := CacheStatsFull()
	if st.Misses != 6 || st.Evictions != 2 || st.Size != 4 {
		t.Fatalf("after overfilling: %+v, want 6 misses, 2 evictions, size 4", st)
	}

	// The four newest survive; the two oldest were evicted FIFO.
	e.Embed(tasks[5])
	if st = CacheStatsFull(); st.Hits != 1 {
		t.Fatalf("recent entry did not hit: %+v", st)
	}
	e.Embed(tasks[0])
	if st = CacheStatsFull(); st.Misses != 7 || st.Evictions != 3 || st.Size != 4 {
		t.Fatalf("evicted entry did not miss and re-insert: %+v", st)
	}
}

func BenchmarkEmbedCacheHit(b *testing.B) {
	ResetCache()
	defer ResetCache()
	e := New(16, 1)
	task := taskgraph.Generate(taskgraph.FamilyTransformer, rng.New(1))
	e.Embed(task) // populate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Embed(task)
	}
}
