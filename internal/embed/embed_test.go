package embed

import (
	"math"
	"testing"

	"mfcp/internal/rng"
	"mfcp/internal/taskgraph"
)

func TestEmbedDeterministic(t *testing.T) {
	task := taskgraph.Generate(taskgraph.FamilyCNN, rng.New(1))
	e1 := New(16, 7)
	e2 := New(16, 7)
	a := e1.Embed(task)
	b := e2.Embed(task)
	if !a.Equal(b, 0) {
		t.Fatal("same seed embedders disagree")
	}
}

func TestEmbedSeedMatters(t *testing.T) {
	task := taskgraph.Generate(taskgraph.FamilyCNN, rng.New(1))
	a := New(16, 7).Embed(task)
	b := New(16, 8).Embed(task)
	if a.Equal(b, 1e-9) {
		t.Fatal("different seeds gave identical embeddings")
	}
}

func TestEmbedDimAndRange(t *testing.T) {
	r := rng.New(3)
	e := New(12, 1)
	for i := 0; i < 40; i++ {
		task := taskgraph.Generate(taskgraph.Family(i%taskgraph.NumFamilies), r)
		v := e.Embed(task)
		if len(v) != 12 {
			t.Fatalf("dim=%d", len(v))
		}
		for j, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("embedding[%d]=%v", j, x)
			}
			if math.Abs(x) > 3 {
				t.Fatalf("embedding[%d]=%v outside expected O(1) range", j, x)
			}
		}
	}
}

func TestEmbedSeparatesTasks(t *testing.T) {
	// Distinct tasks should land on distinct embeddings — injectivity is
	// what makes prediction possible at all.
	r := rng.New(5)
	e := New(16, 2)
	seen := map[string]bool{}
	dup := 0
	for i := 0; i < 60; i++ {
		task := taskgraph.Generate(taskgraph.Family(i%taskgraph.NumFamilies), r)
		v := e.Embed(task)
		key := ""
		for _, x := range v {
			key += string(rune(int(x*1e6) % 1114111))
		}
		if seen[key] {
			dup++
		}
		seen[key] = true
	}
	if dup > 3 {
		t.Fatalf("%d/60 embedding collisions", dup)
	}
}

func TestEmbedScaleSignal(t *testing.T) {
	// The reserved last slot tracks total work: a much bigger task must get
	// a larger value there.
	e := New(16, 2)
	small := taskgraph.Generate(taskgraph.FamilyMLP, rng.New(10))
	big := taskgraph.Generate(taskgraph.FamilyTransformer, rng.New(10))
	if big.EpochFLOPs() < 10*small.EpochFLOPs() {
		t.Skip("sampled tasks not sufficiently different in scale")
	}
	vs := e.Embed(small)
	vb := e.Embed(big)
	if vb[14] <= vs[14] {
		t.Fatalf("FLOPs passthrough not monotone: big=%v small=%v", vb[14], vs[14])
	}
}

func TestEmbedAllShape(t *testing.T) {
	r := rng.New(9)
	tasks := taskgraph.GenerateMix(5, nil, r)
	m := New(8, 1).EmbedAll(tasks)
	if m.Rows != 5 || m.Cols != 8 {
		t.Fatalf("EmbedAll shape %dx%d", m.Rows, m.Cols)
	}
	for i := 0; i < 5; i++ {
		if !m.Row(i).Equal(New(8, 1).Embed(tasks[i]), 1e-12) {
			t.Fatalf("EmbedAll row %d differs from Embed", i)
		}
	}
}

func BenchmarkEmbedTransformer(b *testing.B) {
	task := taskgraph.Generate(taskgraph.FamilyTransformer, rng.New(1))
	e := New(16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Embed(task)
	}
}

func TestStatsEmbedderBasics(t *testing.T) {
	r := rng.New(99)
	e := NewStats(10)
	for i := 0; i < 20; i++ {
		task := taskgraph.Generate(taskgraph.Family(i%taskgraph.NumFamilies), r)
		v := e.Embed(task)
		if len(v) != 10 {
			t.Fatalf("dim %d", len(v))
		}
		for _, x := range v {
			if math.IsNaN(x) || x < 0 {
				t.Fatalf("stats feature %v", x)
			}
		}
	}
	// Deterministic and structure-blind: tasks with identical costs embed
	// identically regardless of seed (no random weights involved).
	task := taskgraph.Generate(taskgraph.FamilyCNN, rng.New(5))
	if !NewStats(10).Embed(task).Equal(NewStats(10).Embed(task), 0) {
		t.Fatal("stats embedder not deterministic")
	}
}

func TestStatsEmbedderTruncation(t *testing.T) {
	task := taskgraph.Generate(taskgraph.FamilyMLP, rng.New(6))
	small := NewStats(3).Embed(task)
	big := NewStats(10).Embed(task)
	for i := range small {
		if small[i] != big[i] {
			t.Fatal("truncation changed leading features")
		}
	}
	// Over-wide dims are zero-padded.
	wide := NewStats(16).Embed(task)
	for _, x := range wide[10:] {
		if x != 0 {
			t.Fatal("padding not zero")
		}
	}
}
