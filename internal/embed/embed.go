// Package embed turns task computation graphs into fixed-length feature
// vectors.
//
// The paper front-ends its predictors with a GNN task embedder and then
// "omits the distinction between tasks and features" — the embedder is a
// frozen preprocessing stage, not a trained component. We reproduce that
// role with a randomly initialized, fixed-weight message-passing network:
// per-node features (operator one-hot + log-scaled dimensions) are mixed
// over the DAG for a few rounds, pooled (mean and max), and concatenated
// with global cost summaries (log FLOPs per compute class, parameters,
// depth, steps). The weights are a pure function of a seed, so the mapping
// is deterministic and shared between training and evaluation.
package embed

import (
	"math"

	"mfcp/internal/mat"
	"mfcp/internal/rng"
	"mfcp/internal/taskgraph"
)

// nodeFeatDim is the raw per-node feature width: operator one-hot, compute
// class one-hot, and 8 log-scaled dimension fields.
const nodeFeatDim = taskgraph.NumOpKinds + taskgraph.NumComputeClasses + 8

// globalFeatDim is the number of whole-graph summary features appended to
// the pooled node representation.
const globalFeatDim = 9

// Embedder maps task graphs to ℝ^Dim feature vectors. Construct with New;
// the zero value is not usable.
type Embedder struct {
	Hidden int // message-passing width
	Rounds int // number of propagation rounds
	Dim    int // output feature dimension

	seed  uint64     // weight seed; part of the cache key (cache.go)
	wIn   *mat.Dense // nodeFeatDim -> Hidden
	wSelf *mat.Dense // Hidden -> Hidden
	wAgg  *mat.Dense // Hidden -> Hidden
	wOut  *mat.Dense // 2*Hidden + globalFeatDim -> Dim
}

// New returns an Embedder with the given output dimension. All weights are
// derived deterministically from seed.
func New(dim int, seed uint64) *Embedder {
	const hidden = 24
	const rounds = 3
	r := rng.New(seed)
	e := &Embedder{
		Hidden: hidden,
		Rounds: rounds,
		Dim:    dim,
		seed:   seed,
		wIn:    randomWeights(r.Split("in"), hidden, nodeFeatDim),
		wSelf:  randomWeights(r.Split("self"), hidden, hidden),
		wAgg:   randomWeights(r.Split("agg"), hidden, hidden),
		wOut:   randomWeights(r.Split("out"), dim, 2*hidden+globalFeatDim),
	}
	return e
}

// randomWeights draws a rows×cols matrix with Xavier-style scaling so
// activations neither explode nor die across rounds.
func randomWeights(r *rng.Source, rows, cols int) *mat.Dense {
	w := mat.NewDense(rows, cols)
	scale := math.Sqrt(2.0 / float64(rows+cols))
	for i := range w.Data {
		w.Data[i] = r.Normal(0, scale)
	}
	return w
}

// log1p compresses a non-negative magnitude to a small dynamic range.
func log1p(x float64) float64 { return math.Log1p(math.Max(x, 0)) }

// nodeFeatures writes the raw feature vector of node n into dst.
func nodeFeatures(n taskgraph.Node, dst mat.Vec) {
	dst.Fill(0)
	dst[int(n.Kind)] = 1
	dst[taskgraph.NumOpKinds+int(n.Kind.Class())] = 1
	base := taskgraph.NumOpKinds + taskgraph.NumComputeClasses
	dims := [...]int{n.Batch, n.Spatial, n.Seq, n.In, n.Out, n.Kernel, n.Heads, n.Vocab}
	for i, d := range dims {
		dst[base+i] = log1p(float64(d)) / 12 // log(1e5) ≈ 11.5 → keep O(1)
	}
}

// Embed maps the task to its feature vector. The same task always maps to
// the same features. Results are memoized process-wide by (seed, dim, task
// fingerprint) — see cache.go — so re-embedding a content-identical task
// costs a hash plus a map lookup instead of the full message passing.
func (e *Embedder) Embed(t *taskgraph.Task) mat.Vec {
	out := mat.NewVec(e.Dim)
	k := e.key(t)
	if cacheLookup(k, out) {
		recordHit()
		return out
	}
	recordMiss()
	e.embedInto(t, out)
	cacheStore(k, out)
	return out
}

// embedInto runs the fixed-weight message passing for t, writing the feature
// vector into out.
func (e *Embedder) embedInto(t *taskgraph.Task, out mat.Vec) {
	g := t.Graph
	n := g.Len()
	// h holds the current node states; hNext the next round's.
	h := make([]mat.Vec, n)
	hNext := make([]mat.Vec, n)
	raw := mat.NewVec(nodeFeatDim)
	for i := 0; i < n; i++ {
		nodeFeatures(g.Nodes[i], raw)
		h[i] = e.wIn.MulVec(raw, nil)
		tanhInPlace(h[i])
		hNext[i] = mat.NewVec(e.Hidden)
	}
	// Build the reverse adjacency once: messages flow along edges
	// producer -> consumer, so each node aggregates its producers.
	producers := make([][]int, n)
	for from, outs := range g.Edges {
		for _, to := range outs {
			producers[to] = append(producers[to], from)
		}
	}
	agg := mat.NewVec(e.Hidden)
	msg := mat.NewVec(e.Hidden)
	selfPart := mat.NewVec(e.Hidden)
	for round := 0; round < e.Rounds; round++ {
		for i := 0; i < n; i++ {
			agg.Fill(0)
			if ps := producers[i]; len(ps) > 0 {
				for _, p := range ps {
					agg.AddScaled(1/float64(len(ps)), h[p])
				}
			}
			e.wAgg.MulVec(agg, msg)
			e.wSelf.MulVec(h[i], selfPart)
			for j := range hNext[i] {
				hNext[i][j] = math.Tanh(selfPart[j] + msg[j])
			}
		}
		h, hNext = hNext, h
	}
	// Readout: mean-pool ++ max-pool ++ global summaries.
	readout := mat.NewVec(2*e.Hidden + globalFeatDim)
	meanPart := readout[:e.Hidden]
	maxPart := readout[e.Hidden : 2*e.Hidden]
	copy(maxPart, h[0])
	for i := 0; i < n; i++ {
		meanPart.AddScaled(1/float64(n), h[i])
		for j, v := range h[i] {
			if v > maxPart[j] {
				maxPart[j] = v
			}
		}
	}
	cost := t.Cost()
	globals := readout[2*e.Hidden:]
	globals[0] = log1p(cost.FLOPsByClass[taskgraph.ClassTensor]) / 30
	globals[1] = log1p(cost.FLOPsByClass[taskgraph.ClassVector]) / 30
	globals[2] = log1p(cost.FLOPsByClass[taskgraph.ClassMemory]) / 30
	globals[3] = log1p(cost.Params) / 25
	globals[4] = log1p(cost.ActivationBytes) / 30
	globals[5] = log1p(float64(cost.Depth)) / 6
	globals[6] = log1p(float64(cost.Nodes)) / 6
	globals[7] = log1p(float64(t.StepsPerEpoch)) / 12
	globals[8] = log1p(t.DatasetMB) / 15

	e.wOut.MulVec(readout, out)
	tanhInPlace(out)
	// Reserve the last two output slots for undistorted global cost signal:
	// the predictors downstream are deliberately small, and the paper's
	// embedders likewise pass through headline scale features.
	if e.Dim >= 2 {
		out[e.Dim-2] = log1p(t.EpochFLOPs()) / 35
		out[e.Dim-1] = globals[3]
	}
}

// EmbedAll maps a slice of tasks to a len(tasks)×Dim feature matrix,
// embedding straight into the rows (cache hits are a copy, misses run the
// message passing once and populate the cache).
func (e *Embedder) EmbedAll(tasks []*taskgraph.Task) *mat.Dense {
	out := mat.NewDense(len(tasks), e.Dim)
	for i, t := range tasks {
		row := out.Row(i)
		k := e.key(t)
		if cacheLookup(k, row) {
			recordHit()
			continue
		}
		recordMiss()
		e.embedInto(t, row)
		cacheStore(k, row)
	}
	return out
}

func tanhInPlace(v mat.Vec) {
	for i, x := range v {
		v[i] = math.Tanh(x)
	}
}

// StatsEmbedder is a deliberately weaker, message-passing-free alternative
// embedder: it exposes only the whole-graph cost summaries (the `globals`
// block) tiled/truncated to the requested dimension, discarding all
// structural information. The embedding-ablation study (X11) uses it to
// quantify how much of downstream matching quality the graph-aware
// embedder actually buys.
type StatsEmbedder struct {
	Dim int
}

// NewStats returns a StatsEmbedder with the given output dimension.
func NewStats(dim int) *StatsEmbedder { return &StatsEmbedder{Dim: dim} }

// Embed maps the task to its global-statistics feature vector.
func (e *StatsEmbedder) Embed(t *taskgraph.Task) mat.Vec {
	cost := t.Cost()
	raw := []float64{
		log1p(cost.FLOPsByClass[taskgraph.ClassTensor]) / 30,
		log1p(cost.FLOPsByClass[taskgraph.ClassVector]) / 30,
		log1p(cost.FLOPsByClass[taskgraph.ClassMemory]) / 30,
		log1p(cost.Params) / 25,
		log1p(cost.ActivationBytes) / 30,
		log1p(float64(cost.Depth)) / 6,
		log1p(float64(cost.Nodes)) / 6,
		log1p(float64(t.StepsPerEpoch)) / 12,
		log1p(t.DatasetMB) / 15,
		log1p(t.EpochFLOPs()) / 35,
	}
	out := mat.NewVec(e.Dim)
	for i := 0; i < e.Dim && i < len(raw); i++ {
		out[i] = raw[i]
	}
	return out
}

// EmbedAll maps a slice of tasks to a len(tasks)×Dim feature matrix.
func (e *StatsEmbedder) EmbedAll(tasks []*taskgraph.Task) *mat.Dense {
	out := mat.NewDense(len(tasks), e.Dim)
	for i, t := range tasks {
		copy(out.Row(i), e.Embed(t))
	}
	return out
}
