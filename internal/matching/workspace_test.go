package matching

import (
	"testing"

	"mfcp/internal/rng"
)

// TestSolveRelaxedWSMatchesNoWS checks the workspace path is bit-identical
// to the allocating path for both solver methods: same arithmetic, only the
// buffer provenance differs.
func TestSolveRelaxedWSMatchesNoWS(t *testing.T) {
	r := rng.New(5)
	for _, method := range []Method{MethodMirror, MethodPGD} {
		for trial := 0; trial < 10; trial++ {
			s := r.SplitIndexed("trial", int(method)*100+trial)
			m := 2 + s.Intn(5)
			n := 3 + s.Intn(12)
			p := randomProblem(s, m, n)
			if trial%3 == 1 {
				p.Objective = LinearSum
			}
			if trial%3 == 2 {
				p.Entropy = 0.05
			}
			opts := SolveOptions{Method: method, Iters: 120}
			want := SolveRelaxed(p, opts)
			ws := NewWorkspace(m, n)
			got := SolveRelaxedWS(p, opts, ws)
			if !want.Equal(got, 0) {
				t.Fatalf("method %v trial %d: workspace solve diverged from allocating solve", method, trial)
			}
			if got != ws.X {
				t.Fatalf("workspace solve must return ws.X")
			}
		}
	}
}

// TestSolveRelaxedZeroAllocs asserts the zero-allocation contract: with a
// workspace supplied, a full SolveRelaxedWS call — and therefore every
// steady-state mirror-descent (and PGD) iteration inside it — allocates
// zero heap objects.
func TestSolveRelaxedZeroAllocs(t *testing.T) {
	p := randomProblem(rng.New(9), 4, 12)
	init := SolveRelaxed(p, SolveOptions{Iters: 10})
	for _, tc := range []struct {
		name string
		opts SolveOptions
	}{
		{"mirror", SolveOptions{Iters: 50}},
		{"mirror-warmstart", SolveOptions{Iters: 50, Init: init}},
		{"pgd", SolveOptions{Method: MethodPGD, Iters: 50}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ws := NewWorkspace(p.M(), p.N())
			SolveRelaxedWS(p, tc.opts, ws) // warm the workspace
			if n := testing.AllocsPerRun(20, func() {
				SolveRelaxedWS(p, tc.opts, ws)
			}); n != 0 {
				t.Fatalf("SolveRelaxedWS allocated %v objects per run, want 0", n)
			}
		})
	}
}

// TestGradXZeroAllocs asserts the same contract for the gradient alone —
// the kernel the solver iterates on.
func TestGradXZeroAllocs(t *testing.T) {
	p := randomProblem(rng.New(10), 3, 8)
	X := p.UniformX()
	ws := NewWorkspace(3, 8)
	dst := p.GradXWS(X, nil, ws)
	if n := testing.AllocsPerRun(50, func() {
		p.GradXWS(X, dst, ws)
		p.SmoothTimeCostWS(X, ws)
		p.FWS(X, ws)
	}); n != 0 {
		t.Fatalf("workspace gradient/objective path allocated %v objects per run, want 0", n)
	}
}

// TestWorkspaceResetReuse checks Reset resizes across problems without
// losing the zero-allocation property once capacity has grown.
func TestWorkspaceResetReuse(t *testing.T) {
	ws := NewWorkspace(2, 3)
	big := randomProblem(rng.New(3), 6, 20)
	small := randomProblem(rng.New(4), 3, 7)
	// Growing re-allocates; afterwards both sizes must be allocation-free.
	SolveRelaxedWS(big, SolveOptions{Iters: 20}, ws)
	for _, p := range []*Problem{big, small, big} {
		p := p
		if n := testing.AllocsPerRun(10, func() {
			SolveRelaxedWS(p, SolveOptions{Iters: 20}, ws)
		}); n != 0 {
			t.Fatalf("%dx%d solve after warmup allocated %v objects per run", p.M(), p.N(), n)
		}
	}
	// Sanity: the shrunken solve still matches the allocating path.
	got := SolveRelaxedWS(small, SolveOptions{Iters: 20}, ws)
	if want := SolveRelaxed(small, SolveOptions{Iters: 20}); !want.Equal(got, 0) {
		t.Fatal("reused workspace solve diverged after resize")
	}
}
