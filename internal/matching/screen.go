package matching

import (
	"math"
	"sync/atomic"

	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
	"mfcp/internal/parallel"
)

// screenBlockTasks is the task-block granularity of the parallel screen:
// candidate selection, validation counts, and the CSR/CSC scatter all
// shard on contiguous blocks of this many tasks. Large enough that the
// per-block row-count vectors (nblocks×M int32) stay small next to the
// candidate arrays, small enough that production task counts split into
// enough blocks to feed every worker.
const screenBlockTasks = 1024

// ScreenWorkspace is the reusable scratch for the parallel screen: a
// slotted candidate buffer (one fixed-stride slot per task) plus the
// per-block counters a two-pass count/prefix-sum CSR+CSC build needs.
// Unlike SparseBuilder it allocates nothing once warmed
// (TestScreenWorkspaceZeroAllocs): the fork/join bodies are pre-bound
// closures over the workspace itself, and every array reuses backing
// storage across rounds.
//
// The produced *SparseProblem aliases the workspace and stays valid only
// until the next Begin; callers that pipeline rounds keep one workspace
// per in-flight round.
//
// Not safe for concurrent use by multiple screens; a single screen call
// shards its own work across parallel.Workers().
type ScreenWorkspace struct {
	m, n    int
	stride  int // slot width: max candidates per task (k+1)
	nblocks int

	// Slotted candidate buffer: task j's candidates occupy
	// keep/keepT/keepA[j*stride : j*stride+cnt[j]], sorted by cluster.
	keep  []int32
	keepT []float64
	keepA []float64
	cnt   []int32

	sel         []int32 // nblocks×m selection scratch (top-k paths only)
	rowCnt      []int32 // nblocks×m per-block row counts
	rowCur      []int32 // nblocks×m scatter cursors
	blockReused []int32 // per-block reused-task counts (incremental path)

	// badTask is the lowest task index that failed validation, -1 when
	// clean; blocks race to lower it with a CAS min so diagnostics are
	// deterministic regardless of worker count.
	badTask int64

	// Per-call parameters for the pre-bound parallel bodies. Binding the
	// closures once (they capture only the workspace) keeps the screen
	// allocation-free: a closure passed to ForChunked escapes, so a fresh
	// one per round would cost a heap allocation.
	p   *Problem
	k   int
	tol float64
	ref *ScreenRef

	fillFull  func(lo, hi int)
	fillIncr  func(lo, hi int)
	countBody func(lo, hi int)
	scatBody  func(lo, hi int)

	sp SparseProblem
}

// NewScreenWorkspace returns an empty workspace; arrays are sized lazily
// by Begin.
func NewScreenWorkspace() *ScreenWorkspace {
	ws := &ScreenWorkspace{}
	ws.fillFull = ws.runFillFull
	ws.fillIncr = ws.runFillIncr
	ws.countBody = ws.runCount
	ws.scatBody = ws.runScatter
	return ws
}

// Begin sizes the workspace for an m×n screen whose tasks commit at most
// kmax candidates each, reusing backing storage when it has capacity.
func (ws *ScreenWorkspace) Begin(m, n, kmax int) {
	ws.m, ws.n, ws.stride = m, n, kmax
	ws.nblocks = (n + screenBlockTasks - 1) / screenBlockTasks
	ws.keep = growInt32(ws.keep, n*kmax)
	ws.keepT = growFloats(ws.keepT, n*kmax)
	ws.keepA = growFloats(ws.keepA, n*kmax)
	ws.cnt = growInt32(ws.cnt, n)
	ws.rowCnt = growInt32(ws.rowCnt, ws.nblocks*m)
	ws.rowCur = growInt32(ws.rowCur, ws.nblocks*m)
	ws.blockReused = growInt32(ws.blockReused, ws.nblocks)
	for b := range ws.blockReused {
		ws.blockReused[b] = 0
	}
	ws.badTask = -1
}

// Slot returns task j's candidate buffers: write up to the Begin kmax
// (cluster, time, reliability) triples — clusters strictly increasing —
// then Commit the count.
func (ws *ScreenWorkspace) Slot(j int) (idx []int32, t, a []float64) {
	lo, hi := j*ws.stride, (j+1)*ws.stride
	return ws.keep[lo:hi], ws.keepT[lo:hi], ws.keepA[lo:hi]
}

// Commit records that task j's slot holds cnt candidates.
func (ws *ScreenWorkspace) Commit(j, cnt int) { ws.cnt[j] = int32(cnt) }

// blockRange returns block b's task interval [j0, j1).
func (ws *ScreenWorkspace) blockRange(b int) (int, int) {
	j0 := b * screenBlockTasks
	j1 := j0 + screenBlockTasks
	if j1 > ws.n {
		j1 = ws.n
	}
	return j0, j1
}

// noteBad lowers the workspace's bad-task watermark to j (CAS min).
func (ws *ScreenWorkspace) noteBad(j int) {
	for {
		old := atomic.LoadInt64(&ws.badTask)
		if old >= 0 && old <= int64(j) {
			return
		}
		if atomic.CompareAndSwapInt64(&ws.badTask, old, int64(j)) {
			return
		}
	}
}

// runCount validates each committed slot and accumulates per-block row
// counts. Counts of a block containing an invalid task are abandoned
// mid-way; Finish never reads them because the bad watermark aborts the
// build first.
func (ws *ScreenWorkspace) runCount(lo, hi int) {
	m := ws.m
	for b := lo; b < hi; b++ {
		rc := ws.rowCnt[b*m : (b+1)*m]
		for i := range rc {
			rc[i] = 0
		}
		j0, j1 := ws.blockRange(b)
		for j := j0; j < j1; j++ {
			c := int(ws.cnt[j])
			if c < 1 || c > ws.stride {
				ws.noteBad(j)
				continue
			}
			base := j * ws.stride
			prev := int32(-1)
			for s := 0; s < c; s++ {
				i := ws.keep[base+s]
				t, a := ws.keepT[base+s], ws.keepA[base+s]
				if i <= prev || int(i) >= m ||
					math.IsNaN(t) || math.IsInf(t, 0) ||
					math.IsNaN(a) || math.IsInf(a, 0) {
					ws.noteBad(j)
					break
				}
				prev = i
				rc[i]++
			}
		}
	}
}

// runScatter writes each block's candidates into the CSR arrays through
// the block's row cursors and into the CSC arrays at ColStart[j]+slot —
// both destinations are disjoint across blocks, so the pass is
// deterministic under any partition.
func (ws *ScreenWorkspace) runScatter(lo, hi int) {
	m, sp := ws.m, &ws.sp
	for b := lo; b < hi; b++ {
		cur := ws.rowCur[b*m : (b+1)*m]
		j0, j1 := ws.blockRange(b)
		for j := j0; j < j1; j++ {
			base := j * ws.stride
			cb := int(sp.ColStart[j])
			c := int(ws.cnt[j])
			for s := 0; s < c; s++ {
				i := ws.keep[base+s]
				e := cur[i]
				cur[i] = e + 1
				sp.ColIdx[e] = int32(j)
				sp.T[e] = ws.keepT[base+s]
				sp.A[e] = ws.keepA[base+s]
				sp.ColEntry[cb+s] = e
				sp.ColRow[cb+s] = i
			}
		}
	}
}

// Finish validates the committed slots and assembles the dual-view
// CSR/CSC problem: parallel per-block counts, a serial prefix sum that
// also derives per-block scatter cursors, then a parallel scatter filling
// both views in one pass. The result carries the builder-default
// hyperparameters (SparseBuilder's contract); callers with a source
// Problem overwrite them.
//
// The returned problem aliases the workspace: it is valid until the next
// Begin.
func (ws *ScreenWorkspace) Finish() (*SparseProblem, error) {
	parallel.ForChunked(ws.nblocks, 1, ws.countBody)
	if bad := atomic.LoadInt64(&ws.badTask); bad >= 0 {
		return nil, ws.diagnose(int(bad))
	}
	m, n := ws.m, ws.n
	sp := &ws.sp
	sp.Mdim, sp.Ndim = m, n
	sp.Gamma, sp.Beta, sp.Lambda = 0.8, 10, 0.05
	sp.Objective, sp.Barrier, sp.Norm = SmoothMakespan, LogBarrier, NormPerTask
	sp.Speedups, sp.Entropy, sp.Cap = nil, 0, nil

	sp.ColStart = growInt32(sp.ColStart, n+1)
	tot := int32(0)
	for j := 0; j < n; j++ {
		sp.ColStart[j] = tot
		tot += ws.cnt[j]
	}
	sp.ColStart[n] = tot
	nnz := int(tot)

	sp.RowStart = growInt32(sp.RowStart, m+1)
	run := int32(0)
	for i := 0; i < m; i++ {
		sp.RowStart[i] = run
		for b := 0; b < ws.nblocks; b++ {
			ws.rowCur[b*m+i] = run
			run += ws.rowCnt[b*m+i]
		}
	}
	sp.RowStart[m] = run

	sp.ColIdx = growInt32(sp.ColIdx, nnz)
	sp.T = growFloats(sp.T, nnz)
	sp.A = growFloats(sp.A, nnz)
	sp.ColEntry = growInt32(sp.ColEntry, nnz)
	sp.ColRow = growInt32(sp.ColRow, nnz)
	parallel.ForChunked(ws.nblocks, 1, ws.scatBody)
	return sp, nil
}

// diagnose re-walks the lowest invalid task's slot serially and returns
// the specific typed error.
func (ws *ScreenWorkspace) diagnose(j int) error {
	c := int(ws.cnt[j])
	if c < 1 {
		return mfcperr.Wrap(mfcperr.ErrInfeasible, "matching: task %d has no candidate clusters", j)
	}
	if c > ws.stride {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "matching: task %d commits %d candidates over slot width %d", j, c, ws.stride)
	}
	base := j * ws.stride
	prev := int32(-1)
	for s := 0; s < c; s++ {
		i := ws.keep[base+s]
		if int(i) >= ws.m || i < 0 {
			return mfcperr.Wrap(mfcperr.ErrBadShape, "matching: task %d names cluster %d outside [0,%d)", j, i, ws.m)
		}
		if i <= prev {
			return mfcperr.Wrap(mfcperr.ErrBadShape, "matching: task %d candidate list not strictly increasing at slot %d", j, s)
		}
		prev = i
		t, a := ws.keepT[base+s], ws.keepA[base+s]
		if math.IsNaN(t) || math.IsInf(t, 0) || math.IsNaN(a) || math.IsInf(a, 0) {
			return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: task %d cluster %d has non-finite screening values (%g, %g)", j, i, t, a)
		}
	}
	// invariant: noteBad fires only for one of the conditions above.
	return mfcperr.Wrap(mfcperr.ErrBadShape, "matching: task %d failed screen validation", j)
}

// selectTask runs the exact serial PruneTopKChecked selection for task j
// using block b's scratch and writes the sorted slot; it returns the
// candidate count. Bit-identical to the serial path: same selection-sort
// tie-breaks, same strict argmax-reliability scan, same final sort.
func (ws *ScreenWorkspace) selectTask(b, j int) int {
	p, k, m := ws.p, ws.k, ws.m
	idx := ws.sel[b*m : (b+1)*m]
	for i := range idx {
		idx[i] = int32(i)
	}
	for s := 0; s < k; s++ {
		best := s
		for t := s + 1; t < m; t++ {
			ti := p.T.At(int(idx[t]), j)
			tb := p.T.At(int(idx[best]), j)
			if ti < tb || (ti == tb && idx[t] < idx[best]) {
				best = t
			}
		}
		idx[s], idx[best] = idx[best], idx[s]
	}
	relBest := 0
	for i := 1; i < m; i++ {
		if p.A.At(i, j) > p.A.At(relBest, j) {
			relBest = i
		}
	}
	have := false
	for _, i := range idx[:k] {
		if int(i) == relBest {
			have = true
			break
		}
	}
	base := j * ws.stride
	copy(ws.keep[base:base+k], idx[:k])
	cnt := k
	if !have {
		ws.keep[base+k] = int32(relBest)
		cnt = k + 1
	}
	sortInt32(ws.keep[base : base+cnt])
	for s := 0; s < cnt; s++ {
		i := int(ws.keep[base+s])
		ws.keepT[base+s] = p.T.At(i, j)
		ws.keepA[base+s] = p.A.At(i, j)
	}
	ws.cnt[j] = int32(cnt)
	return cnt
}

// runFillFull screens every task in the blocks [lo, hi) from scratch.
func (ws *ScreenWorkspace) runFillFull(lo, hi int) {
	for b := lo; b < hi; b++ {
		j0, j1 := ws.blockRange(b)
		for j := j0; j < j1; j++ {
			ws.selectTask(b, j)
		}
	}
}

// runFillIncr screens blocks [lo, hi) against the reference: a task whose
// prediction columns both stayed within the ∞-norm tolerance reuses its
// reference candidate set (revalued at the current predictions); a task
// that moved is re-screened from scratch and its reference slot —
// candidate set and both prediction columns — is refreshed in place.
// Tasks are disjoint across blocks, so the reference mutation is
// race-free and the outcome is independent of the block partition.
func (ws *ScreenWorkspace) runFillIncr(lo, hi int) {
	p, tol, ref, m := ws.p, ws.tol, ws.ref, ws.m
	for b := lo; b < hi; b++ {
		j0, j1 := ws.blockRange(b)
		for j := j0; j < j1; j++ {
			moved := 0.0
			for i := 0; i < m; i++ {
				if d := math.Abs(p.T.At(i, j) - ref.that.At(i, j)); d > moved {
					moved = d
				}
				if d := math.Abs(p.A.At(i, j) - ref.ahat.At(i, j)); d > moved {
					moved = d
				}
				if moved > tol {
					break
				}
			}
			base := j * ws.stride
			rb := j * ref.stride
			if moved <= tol {
				c := int(ref.cnt[j])
				copy(ws.keep[base:base+c], ref.keep[rb:rb+c])
				for s := 0; s < c; s++ {
					i := int(ws.keep[base+s])
					ws.keepT[base+s] = p.T.At(i, j)
					ws.keepA[base+s] = p.A.At(i, j)
				}
				ws.cnt[j] = int32(c)
				ws.blockReused[b]++
				continue
			}
			c := ws.selectTask(b, j)
			copy(ref.keep[rb:rb+c], ws.keep[base:base+c])
			ref.cnt[j] = int32(c)
			for i := 0; i < m; i++ {
				ref.that.Set(i, j, p.T.At(i, j))
				ref.ahat.Set(i, j, p.A.At(i, j))
			}
		}
	}
}

// ScreenRef carries one screen's candidate sets and the predictions they
// were selected from, so the next round can skip re-screening tasks whose
// predictions barely moved. Owned by a single serial screener; see
// PruneTopKIncrementalWS for the staleness contract.
type ScreenRef struct {
	valid   bool
	m, n, k int
	stride  int
	that    *mat.Dense
	ahat    *mat.Dense
	keep    []int32
	cnt     []int32
}

// NewScreenRef returns an empty, invalid reference.
func NewScreenRef() *ScreenRef {
	return &ScreenRef{that: new(mat.Dense), ahat: new(mat.Dense)}
}

// Valid reports whether the reference holds a usable previous screen.
func (r *ScreenRef) Valid() bool { return r.valid }

// Invalidate drops the reference; the next screen is a full re-screen.
// Callers invalidate whenever the predictor producing the screened
// matrices changes version — reuse tolerates small drift within one
// predictor, not a retrain.
func (r *ScreenRef) Invalidate() { r.valid = false }

// usable reports whether the reference matches the (m, n, k) geometry.
func (r *ScreenRef) usable(m, n, k int) bool {
	return r.valid && r.m == m && r.n == n && r.k == k
}

// capture snapshots the workspace's freshly screened sets and the source
// predictions into the reference.
func (r *ScreenRef) capture(ws *ScreenWorkspace, p *Problem, k int) {
	r.m, r.n, r.k, r.stride = ws.m, ws.n, k, ws.stride
	r.keep = growInt32(r.keep, ws.n*ws.stride)
	r.cnt = growInt32(r.cnt, ws.n)
	copy(r.keep, ws.keep[:ws.n*ws.stride])
	copy(r.cnt, ws.cnt[:ws.n])
	r.that.Reshape(ws.m, ws.n).CopyFrom(p.T)
	r.ahat.Reshape(ws.m, ws.n).CopyFrom(p.A)
	r.valid = true
}

// PruneTopKWS is PruneTopKChecked through a reusable workspace: the
// selection shards per-task-block across parallel.Workers() and the
// CSR/CSC build is a two-pass count/prefix-sum scatter, producing
// bit-identical candidate sets, values, and array layouts to the serial
// path at any worker count (TestPruneTopKWSMatchesSerial). Allocates
// nothing once the workspace is warmed.
func PruneTopKWS(p *Problem, k int, ws *ScreenWorkspace) (*SparseProblem, error) {
	sp, _, err := PruneTopKIncrementalWS(p, k, 0, nil, ws)
	return sp, err
}

// PruneTopKIncrementalWS screens p against a reference of the previous
// screen. A task is re-screened from scratch when either of its
// prediction columns moved by more than tol (∞-norm) since its reference
// set was selected; otherwise its reference candidate set is reused,
// revalued at the current predictions. reused reports how many tasks took
// the reuse path.
//
// tol = 0 (or a nil/invalid reference) degrades to the exact full screen;
// a full screen refreshes the whole reference. The staleness guarantee is
// per task: every served candidate set was selected from predictions
// within tol of the ones being served, so a dropped cluster can beat the
// worst kept one by at most 2·tol. Entry values are always current —
// only the set membership tolerates staleness.
func PruneTopKIncrementalWS(p *Problem, k int, tol float64, ref *ScreenRef, ws *ScreenWorkspace) (*SparseProblem, int, error) {
	if ws == nil {
		ws = NewScreenWorkspace()
	}
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if k < 1 {
		return nil, 0, mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: top-k %d must be at least 1", k)
	}
	if tol < 0 || math.IsNaN(tol) || math.IsInf(tol, 0) {
		return nil, 0, mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: screen staleness tolerance %g must be finite and non-negative", tol)
	}
	m, n := p.M(), p.N()
	if k > m {
		k = m
	}
	ws.Begin(m, n, k+1)
	ws.sel = growInt32(ws.sel, ws.nblocks*m)
	ws.p, ws.k = p, k
	reused := 0
	if tol > 0 && ref != nil && ref.usable(m, n, k) {
		ws.tol, ws.ref = tol, ref
		parallel.ForChunked(ws.nblocks, 1, ws.fillIncr)
		ws.ref = nil
		for b := 0; b < ws.nblocks; b++ {
			reused += int(ws.blockReused[b])
		}
	} else {
		parallel.ForChunked(ws.nblocks, 1, ws.fillFull)
		if tol > 0 && ref != nil {
			ref.capture(ws, p, k)
		}
	}
	sp, err := ws.Finish()
	ws.p = nil
	if err != nil {
		return nil, 0, err
	}
	sp.Gamma, sp.Beta, sp.Lambda = p.Gamma, p.Beta, p.Lambda
	sp.Objective, sp.Barrier, sp.Norm = p.Objective, p.Barrier, p.Norm
	sp.Speedups, sp.Entropy = p.Speedups, p.Entropy
	return sp, reused, nil
}

// growInt32 returns v resliced to length n, reallocating only when the
// backing array is too small.
func growInt32(v []int32, n int) []int32 {
	if cap(v) < n {
		return make([]int32, n)
	}
	return v[:n]
}
