package matching

import "mfcp/internal/mat"

// Workspace bundles every scratch buffer the matching kernel needs so the
// hot paths — the mirror-descent/PGD inner loop, gradient evaluation, and
// the zeroth-order perturbation solves built on top of them — run without
// heap allocation. A Workspace is sized for an M×N problem and resized
// lazily by Reset, reusing backing storage whenever it has capacity.
//
// The zero-allocation contract: once a Workspace has been Reset to a
// problem's dimensions, SolveRelaxedWS, GradXWS, SmoothTimeCostWS, and FWS
// perform zero heap allocations (asserted by TestSolveRelaxedZeroAllocs).
//
// A Workspace is NOT safe for concurrent use. Parallel samplers keep one
// per worker (see the parallel.Arena in internal/diffopt).
type Workspace struct {
	// X is the solver iterate. SolveRelaxedWS returns it directly, so the
	// result of a workspace-backed solve is valid only until the
	// workspace's next use; callers needing persistence must Clone.
	X *mat.Dense
	// Grad and Prev are the gradient and convergence-check scratch.
	Grad *mat.Dense
	Prev *mat.Dense
	// TShadow and AShadow are M×N staging buffers for perturbed copies of
	// a problem's T/A matrices; internal/diffopt writes perturbations into
	// them instead of cloning fresh matrices per zeroth-order sample.
	TShadow *mat.Dense
	AShadow *mat.Dense

	// Col and Col2 are length-M column scratch vectors (multiplicative
	// updates, PGD softmax re-projection).
	Col  mat.Vec
	Col2 mat.Vec
	// Loads and Weights are the length-M per-cluster load and softmax
	// weight scratch used by Loads/GradX/SmoothTimeCost.
	Loads   mat.Vec
	Weights mat.Vec

	// Info is the convergence record of the last SolveRelaxedWS run against
	// this workspace — read it before the workspace's next solve. Serving
	// telemetry turns it into iterations-to-convergence histograms.
	Info SolveInfo
}

// NewWorkspace returns a Workspace sized for an m×n problem.
func NewWorkspace(m, n int) *Workspace {
	w := &Workspace{
		X:       mat.NewDense(m, n),
		Grad:    mat.NewDense(m, n),
		Prev:    mat.NewDense(m, n),
		TShadow: mat.NewDense(m, n),
		AShadow: mat.NewDense(m, n),
		Col:     mat.NewVec(m),
		Col2:    mat.NewVec(m),
		Loads:   mat.NewVec(m),
		Weights: mat.NewVec(m),
	}
	return w
}

// Reset sizes the workspace for an m×n problem, reusing backing storage
// when it has capacity and growing it otherwise. Buffer contents are
// unspecified afterwards except when the dimensions are unchanged, in
// which case they are preserved (so shadows staged before a solve survive
// the solver's own Reset).
func (w *Workspace) Reset(m, n int) {
	w.X.Reshape(m, n)
	w.Grad.Reshape(m, n)
	w.Prev.Reshape(m, n)
	w.TShadow.Reshape(m, n)
	w.AShadow.Reshape(m, n)
	w.Col = growVec(w.Col, m)
	w.Col2 = growVec(w.Col2, m)
	w.Loads = growVec(w.Loads, m)
	w.Weights = growVec(w.Weights, m)
}

// ResetFor is Reset with the dimensions taken from p.
func (w *Workspace) ResetFor(p *Problem) { w.Reset(p.M(), p.N()) }

// growVec returns v resliced to length n, reallocating only when the
// backing array is too small.
func growVec(v mat.Vec, n int) mat.Vec {
	if cap(v) < n {
		return mat.NewVec(n)
	}
	return v[:n]
}
