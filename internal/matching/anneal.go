package matching

import (
	"math"

	"mfcp/internal/rng"
)

// AnnealOptions configures the simulated-annealing discrete solver.
type AnnealOptions struct {
	// Iters is the number of proposal steps (default 4000).
	Iters int
	// T0 and T1 are the initial and final temperatures of the geometric
	// cooling schedule (defaults 1.0 and 1e-3), in units of the
	// penalized-cost objective.
	T0, T1 float64
	// Penalty is the weight on reliability-constraint violation added to
	// the cost during the search (default 10).
	Penalty float64
	// Restarts runs that many independent chains and keeps the best
	// (default 3).
	Restarts int
}

func (o *AnnealOptions) fillDefaults() {
	if o.Iters == 0 {
		o.Iters = 4000
	}
	if o.T0 == 0 {
		o.T0 = 1
	}
	if o.T1 == 0 {
		o.T1 = 1e-3
	}
	if o.Penalty == 0 {
		o.Penalty = 10
	}
	if o.Restarts == 0 {
		o.Restarts = 3
	}
}

// SolveAnneal searches the discrete assignment space directly by simulated
// annealing: single-task move proposals against a penalized objective
//
//	cost(assign) = f(assign) + Penalty·max(0, γ − reliability(assign)),
//
// with geometric cooling and multiple restarts. Unlike the relaxation
// pipeline it involves no gradients at all, which makes it a useful
// solver-ablation reference (it handles the non-convex ζ objective
// natively) — and a fallback for objectives with no useful relaxation.
// It is randomized; pass a dedicated stream for reproducibility.
func SolveAnneal(p *Problem, opts AnnealOptions, r *rng.Source) []int {
	opts.fillDefaults()
	m, n := p.M(), p.N()
	cost := func(assign []int) float64 {
		c := p.DiscreteCost(assign)
		if rel := p.DiscreteReliability(assign); rel < p.Gamma {
			c += opts.Penalty * (p.Gamma - rel)
		}
		return c
	}
	var best []int
	bestCost := math.Inf(1)
	for restart := 0; restart < opts.Restarts; restart++ {
		cr := r.SplitIndexed("chain", restart)
		cur := make([]int, n)
		for j := range cur {
			cur[j] = cr.Intn(m)
		}
		curCost := cost(cur)
		localBest := append([]int(nil), cur...)
		localBestCost := curCost
		cool := math.Pow(opts.T1/opts.T0, 1/float64(opts.Iters))
		temp := opts.T0
		for it := 0; it < opts.Iters; it++ {
			j := cr.Intn(n)
			old := cur[j]
			next := cr.Intn(m)
			if next == old {
				temp *= cool
				continue
			}
			cur[j] = next
			nextCost := cost(cur)
			delta := nextCost - curCost
			if delta <= 0 || cr.Float64() < math.Exp(-delta/temp) {
				curCost = nextCost
				if curCost < localBestCost {
					localBestCost = curCost
					copy(localBest, cur)
				}
			} else {
				cur[j] = old
			}
			temp *= cool
		}
		if localBestCost < bestCost {
			bestCost = localBestCost
			best = localBest
		}
	}
	// Polish with the deterministic local search (also restores hard
	// feasibility where achievable).
	return Repair(p, best)
}
