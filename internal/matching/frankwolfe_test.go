package matching

import (
	"math"
	"testing"

	"mfcp/internal/mat"
	"mfcp/internal/rng"
)

func TestFrankWolfeStaysOnSimplex(t *testing.T) {
	r := rng.New(61)
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(r, 3, 6)
		X := SolveFrankWolfe(p, SolveOptions{Iters: 100})
		for j := 0; j < p.N(); j++ {
			sum := 0.0
			for i := 0; i < p.M(); i++ {
				v := X.At(i, j)
				if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
					t.Fatalf("X[%d,%d]=%v", i, j, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("column %d sum %v", j, sum)
			}
		}
	}
}

func TestFrankWolfeDecreasesF(t *testing.T) {
	r := rng.New(62)
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(r, 3, 7)
		start := p.F(p.UniformX())
		X := SolveFrankWolfe(p, SolveOptions{Iters: 150})
		if end := p.F(X); end > start+1e-9 {
			t.Fatalf("FW increased F: %v -> %v", start, end)
		}
	}
}

func TestFrankWolfeMatchesMirrorQuality(t *testing.T) {
	// On convex instances both solvers should reach near-identical F and
	// equally good discrete matchings.
	r := rng.New(63)
	for trial := 0; trial < 15; trial++ {
		p := randomProblem(r, 3, 6)
		Xfw := SolveFrankWolfe(p, SolveOptions{Iters: 400, Tol: 1e-10})
		Xm := SolveRelaxed(p, SolveOptions{Iters: 400})
		ffw, fm := p.F(Xfw), p.F(Xm)
		if ffw > fm+0.05*(1+math.Abs(fm)) {
			t.Fatalf("FW F=%v far above mirror F=%v", ffw, fm)
		}
		fwCost := p.DiscreteCost(Repair(p, Round(Xfw)))
		mCost := p.DiscreteCost(Repair(p, Round(Xm)))
		if fwCost > 1.3*mCost+1e-9 {
			t.Fatalf("FW pipeline cost %v vs mirror %v", fwCost, mCost)
		}
	}
}

func TestFrankWolfeObviousOptimum(t *testing.T) {
	T := mat.FromRows([][]float64{{0.1}, {5}, {5}})
	A := mat.NewDense(3, 1).Fill(0.95)
	p := NewProblem(T, A)
	p.Gamma = 0.8
	X := SolveFrankWolfe(p, SolveOptions{Iters: 300})
	if X.At(0, 0) < 0.9 {
		t.Fatalf("FW missed the obvious optimum: %v", X)
	}
}

func TestFrankWolfeGapTermination(t *testing.T) {
	// A generous tolerance must terminate well before the iteration cap
	// (checked indirectly: the solution is still simplex-feasible and F is
	// finite; mostly a no-crash test for the early-exit path).
	r := rng.New(64)
	p := randomProblem(r, 3, 5)
	X := SolveFrankWolfe(p, SolveOptions{Iters: 100000, Tol: 0.5})
	if v := p.F(X); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("F=%v", v)
	}
}

func TestFrankWolfeWarmStart(t *testing.T) {
	r := rng.New(65)
	p := randomProblem(r, 3, 5)
	base := SolveFrankWolfe(p, SolveOptions{Iters: 300})
	warm := SolveFrankWolfe(p, SolveOptions{Iters: 50, Init: base})
	// Restarting at a converged point must not degrade it.
	if p.F(warm) > p.F(base)+1e-9 {
		t.Fatalf("warm start degraded: %v -> %v", p.F(base), p.F(warm))
	}
}

func BenchmarkFrankWolfe3x10(b *testing.B) {
	p := randomProblem(rng.New(1), 3, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveFrankWolfe(p, SolveOptions{Iters: 100})
	}
}
