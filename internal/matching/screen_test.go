package matching

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
	"mfcp/internal/parallel"
	"mfcp/internal/rng"
)

// sameSparse asserts two sparse problems are bit-identical in every array
// and hyperparameter.
func sameSparse(t *testing.T, label string, a, b *SparseProblem) {
	t.Helper()
	if a.Mdim != b.Mdim || a.Ndim != b.Ndim {
		t.Fatalf("%s: dims (%d,%d) vs (%d,%d)", label, a.Mdim, a.Ndim, b.Mdim, b.Ndim)
	}
	pairs := []struct {
		name string
		x, y any
	}{
		{"RowStart", a.RowStart, b.RowStart},
		{"ColIdx", a.ColIdx, b.ColIdx},
		{"T", a.T, b.T},
		{"A", a.A, b.A},
		{"ColStart", a.ColStart, b.ColStart},
		{"ColEntry", a.ColEntry, b.ColEntry},
		{"ColRow", a.ColRow, b.ColRow},
	}
	for _, p := range pairs {
		if !reflect.DeepEqual(p.x, p.y) {
			t.Fatalf("%s: %s diverged:\n%v\nvs\n%v", label, p.name, p.x, p.y)
		}
	}
	if a.Gamma != b.Gamma || a.Beta != b.Beta || a.Lambda != b.Lambda ||
		a.Objective != b.Objective || a.Barrier != b.Barrier || a.Norm != b.Norm ||
		a.Entropy != b.Entropy {
		t.Fatalf("%s: hyperparameters diverged", label)
	}
}

// cloneSparse deep-copies sp (workspace-backed problems alias scratch that
// the next screen overwrites).
func cloneSparse(sp *SparseProblem) *SparseProblem {
	c := *sp
	c.RowStart = append([]int32(nil), sp.RowStart...)
	c.ColIdx = append([]int32(nil), sp.ColIdx...)
	c.T = append([]float64(nil), sp.T...)
	c.A = append([]float64(nil), sp.A...)
	c.ColStart = append([]int32(nil), sp.ColStart...)
	c.ColEntry = append([]int32(nil), sp.ColEntry...)
	c.ColRow = append([]int32(nil), sp.ColRow...)
	return &c
}

// TestPruneTopKWSMatchesSerial is the parallel-screen proof obligation:
// over random instances — including n large enough to span several
// screen blocks — the workspace path reproduces PruneTopKChecked
// bit-for-bit (candidate sets, values, and both CSR/CSC layouts) at any
// worker count.
func TestPruneTopKWSMatchesSerial(t *testing.T) {
	r := rng.New(51)
	ws := NewScreenWorkspace()
	for _, workers := range []int{1, 2, 8} {
		defer parallel.SetWorkers(parallel.SetWorkers(workers))
		for trial := 0; trial < 30; trial++ {
			m := 2 + r.Intn(9)
			n := 2 + r.Intn(40)
			if trial%9 == 0 {
				n = screenBlockTasks + 1 + r.Intn(screenBlockTasks) // multi-block
			}
			p := randomProblem(r, m, n)
			if trial%4 == 1 {
				p.Objective, p.Barrier, p.Norm = LinearSum, HardPenalty, NormPerClusterTask
				p.Entropy = 0.01
			}
			if trial%5 == 2 {
				// Cost ties: screening tie-breaks must match the serial path.
				for k := range p.T.Data {
					p.T.Data[k] = float64(1+k%3) / 2
				}
			}
			k := 1 + r.Intn(m+2) // includes k = m and the clamped k > m
			want, err := PruneTopKChecked(p, k)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			got, err := PruneTopKWS(p, k, ws)
			if err != nil {
				t.Fatalf("workspace: %v", err)
			}
			sameSparse(t, "parallel vs serial", got, want)
		}
	}
}

// TestPruneTopKCheckedEdgeCases pins the screening contract at its
// corners: k=1, k≥M, exact cost ties, and uniformly unreliable rows.
func TestPruneTopKCheckedEdgeCases(t *testing.T) {
	t.Run("k1", func(t *testing.T) {
		// Task 0: cluster 2 fastest, cluster 1 most reliable → both kept.
		// Task 1: cluster 0 fastest AND most reliable → kept alone.
		T := mat.FromRows([][]float64{{3, 1}, {2, 2}, {1, 3}})
		A := mat.FromRows([][]float64{{0.8, 0.99}, {0.99, 0.9}, {0.9, 0.8}})
		sp, err := PruneTopKChecked(NewProblem(T, A), 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := sp.CandCount(0); got != 2 {
			t.Fatalf("task 0 candidates = %d, want fastest + most reliable", got)
		}
		if got := sp.CandCount(1); got != 1 {
			t.Fatalf("task 1 candidates = %d, want the double-winner alone", got)
		}
	})
	t.Run("kAtLeastM", func(t *testing.T) {
		r := rng.New(52)
		p := randomProblem(r, 5, 9)
		atM, err := PruneTopKChecked(p, 5)
		if err != nil {
			t.Fatal(err)
		}
		over, err := PruneTopKChecked(p, 100) // clamps to M
		if err != nil {
			t.Fatal(err)
		}
		if atM.NNZ() != 5*9 || over.NNZ() != 5*9 {
			t.Fatalf("k≥M must keep every pair: %d, %d", atM.NNZ(), over.NNZ())
		}
		sameSparse(t, "k=M vs k>M", over, atM)
	})
	t.Run("costTies", func(t *testing.T) {
		// All times equal: the k smallest must be the k lowest indices.
		T := mat.NewDense(6, 4).Fill(1)
		A := mat.NewDense(6, 4).Fill(0.9)
		sp, err := PruneTopKChecked(NewProblem(T, A), 3)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			lo, hi := int(sp.ColStart[j]), int(sp.ColStart[j+1])
			if hi-lo != 3 {
				t.Fatalf("task %d kept %d", j, hi-lo)
			}
			for s := lo; s < hi; s++ {
				if int(sp.ColRow[s]) != s-lo {
					t.Fatalf("task %d tie-break kept cluster %d at slot %d, want lowest indices", j, sp.ColRow[s], s-lo)
				}
			}
		}
	})
	t.Run("allUnreliable", func(t *testing.T) {
		// Uniform (terrible) reliability: the argmax scan must settle on
		// cluster 0, which then rides along with each task's top-k.
		T := mat.FromRows([][]float64{{5, 5}, {4, 4}, {3, 3}, {1, 1}})
		A := mat.NewDense(4, 2).Fill(0.01)
		sp, err := PruneTopKChecked(NewProblem(T, A), 1)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			lo, hi := int(sp.ColStart[j]), int(sp.ColStart[j+1])
			if hi-lo != 2 || int(sp.ColRow[lo]) != 0 || int(sp.ColRow[hi-1]) != 3 {
				t.Fatalf("task %d kept %v, want {0 (reliability tie-break), 3 (fastest)}", j, sp.ColRow[lo:hi])
			}
		}
	})
}

// TestScreenWorkspaceZeroAllocs pins the steady-state screen at zero
// allocations per round. Measured at one worker, where ForChunked runs
// the pre-bound bodies inline — the multi-worker path pays only the
// fork/join goroutine machinery, never per-task allocations.
func TestScreenWorkspaceZeroAllocs(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	r := rng.New(53)
	p := randomProblem(r, 8, 2000)
	ws := NewScreenWorkspace()
	ref := NewScreenRef()
	if _, err := PruneTopKWS(p, 3, ws); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := PruneTopKWS(p, 3, ws); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("full screen allocates %v/op after warmup, want 0", allocs)
	}
	if _, _, err := PruneTopKIncrementalWS(p, 3, 0.05, ref, ws); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := PruneTopKIncrementalWS(p, 3, 0.05, ref, ws); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("incremental screen allocates %v/op after warmup, want 0", allocs)
	}
}

// TestPruneTopKIncremental pins the staleness-tolerance semantics: exact
// reuse under tol, per-task re-screen and in-place reference refresh over
// tol, current values on reused sets, and invalidation.
func TestPruneTopKIncremental(t *testing.T) {
	r := rng.New(54)
	m, n, k := 6, 30, 2
	p := randomProblem(r, m, n)
	ws := NewScreenWorkspace()
	ref := NewScreenRef()
	const tol = 0.01

	// First screen: nothing to reuse; captures the reference.
	sp0, reused, err := PruneTopKIncrementalWS(p, k, tol, ref, ws)
	if err != nil {
		t.Fatal(err)
	}
	if reused != 0 || !ref.Valid() {
		t.Fatalf("first screen: reused=%d valid=%v", reused, ref.Valid())
	}
	base := cloneSparse(sp0)

	// Unchanged predictions: every task reuses, problem is bit-identical.
	sp1, reused, err := PruneTopKIncrementalWS(p, k, tol, ref, ws)
	if err != nil {
		t.Fatal(err)
	}
	if reused != n {
		t.Fatalf("unchanged predictions reused %d/%d", reused, n)
	}
	sameSparse(t, "full reuse", sp1, base)

	// Perturb one task's column past tol: exactly that task re-screens,
	// and its set matches a from-scratch screen of the new matrices.
	moved := 7
	for i := 0; i < m; i++ {
		p.T.Set(i, moved, p.T.At(i, moved)+3*tol)
	}
	sp2, reused, err := PruneTopKIncrementalWS(p, k, tol, ref, ws)
	if err != nil {
		t.Fatal(err)
	}
	if reused != n-1 {
		t.Fatalf("one moved task: reused %d, want %d", reused, n-1)
	}
	fresh, err := PruneTopKChecked(p, k)
	if err != nil {
		t.Fatal(err)
	}
	sameSparse(t, "re-screened task matches full screen", cloneSparse(sp2), fresh)

	// Perturb within tol: sets stay (possibly stale) but values must be
	// the CURRENT predictions — only membership tolerates staleness.
	delta := tol / 4
	for i := 0; i < m; i++ {
		p.T.Set(i, 3, p.T.At(i, 3)+delta)
	}
	sp3, reused, err := PruneTopKIncrementalWS(p, k, tol, ref, ws)
	if err != nil {
		t.Fatal(err)
	}
	if reused != n {
		t.Fatalf("within-tol drift re-screened: reused %d/%d", reused, n)
	}
	for s := int(sp3.ColStart[3]); s < int(sp3.ColStart[4]); s++ {
		i := int(sp3.ColRow[s])
		if got := sp3.T[int(sp3.ColEntry[s])]; got != p.T.At(i, 3) {
			t.Fatalf("reused set served stale value %g for cluster %d, want current %g", got, i, p.T.At(i, 3))
		}
	}

	// Invalidation: the next screen is full (reused = 0) and re-captures.
	ref.Invalidate()
	sp4, reused, err := PruneTopKIncrementalWS(p, k, tol, ref, ws)
	if err != nil {
		t.Fatal(err)
	}
	if reused != 0 || !ref.Valid() {
		t.Fatalf("post-invalidate: reused=%d valid=%v", reused, ref.Valid())
	}
	sameSparse(t, "post-invalidate matches full screen", cloneSparse(sp4), fresh2(t, p, k))

	// tol = 0 is the exact path and never touches the reference.
	if _, reused, err = PruneTopKIncrementalWS(p, k, 0, ref, ws); err != nil || reused != 0 {
		t.Fatalf("tol=0: reused=%d err=%v", reused, err)
	}
}

func fresh2(t *testing.T, p *Problem, k int) *SparseProblem {
	t.Helper()
	sp, err := PruneTopKChecked(p, k)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestScreenWorkspaceRejectsBadValues: non-finite predictions surface as
// typed errors (the condition the engine's old panic guarded).
func TestScreenWorkspaceRejectsBadValues(t *testing.T) {
	T := mat.NewDense(3, 4).Fill(1)
	A := mat.NewDense(3, 4).Fill(0.9)
	T.Set(1, 2, math.NaN())
	ws := NewScreenWorkspace()
	_, err := PruneTopKWS(NewProblem(T, A), 2, ws)
	if err == nil {
		t.Fatal("NaN prediction screened without error")
	}
	if !errors.Is(err, mfcperr.ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
	if _, err := PruneTopKWS(NewProblem(T, A), 0, ws); !errors.Is(err, mfcperr.ErrBadConfig) {
		t.Fatalf("k=0 must be ErrBadConfig, got %v", err)
	}
	if _, _, err := PruneTopKIncrementalWS(NewProblem(T, A), 2, math.Inf(1), nil, ws); !errors.Is(err, mfcperr.ErrBadConfig) {
		t.Fatalf("infinite tol must be ErrBadConfig, got %v", err)
	}
}

// TestReconcileHallCertificate exercises both exits of the BFS
// chain-search: a multi-hop overflow chain that reaches slack through an
// intermediate full cluster, and the certificate branch where the
// reachable set is jointly under-capacitated while slack exists outside
// it.
func TestReconcileHallCertificate(t *testing.T) {
	build := func(edges [][3]float64, m, n int) *SparseProblem {
		b := NewSparseBuilder(m, n)
		for _, e := range edges {
			b.AddCandidate(int(e[0]), int(e[1]), 1, e[2])
		}
		sp, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return sp
	}
	t.Run("multiHopChain", func(t *testing.T) {
		// Tasks 0,1 → {c0,c1}; task 2 → {c1,c2}. Caps 1/1/5 with everyone
		// on c0: the overflow unit must hop c0→c1→c2 by moving task 2 out
		// of the way.
		sp := build([][3]float64{
			{0, 0, .9}, {0, 1, .9},
			{1, 0, .9}, {1, 1, .9},
			{2, 1, .9}, {2, 2, .9},
		}, 3, 3)
		sp.Cap = []int{1, 1, 5}
		assign := []int{0, 0, 1}
		info := ReconcileCapacities(sp, assign)
		if !info.Feasible {
			t.Fatalf("multi-hop chain not found: %+v assign=%v", info, assign)
		}
		counts := make([]int, 3)
		for _, i := range assign {
			counts[i]++
		}
		for i, c := range counts {
			if c > sp.Cap[i] {
				t.Fatalf("cluster %d over cap: %d > %d", i, c, sp.Cap[i])
			}
		}
	})
	t.Run("certificate", func(t *testing.T) {
		// Tasks 0,1,2 → {c0,c1} only; c2 has slack but no edges into the
		// overflow's reachable set {c0,c1}, whose joint capacity is 2 < 3.
		sp := build([][3]float64{
			{0, 0, .9}, {0, 1, .9},
			{1, 0, .9}, {1, 1, .9},
			{2, 0, .9}, {2, 1, .9},
			{3, 2, .9}, // c2 exists and has capacity, unreachable from the overflow
		}, 3, 4)
		sp.Cap = []int{1, 1, 5}
		assign := []int{0, 0, 0, 2}
		info := ReconcileCapacities(sp, assign)
		if info.Feasible {
			t.Fatal("reconciler missed the Hall violation over the reachable set")
		}
	})
}
