package matching

import (
	"math"

	"mfcp/internal/cluster"
	"mfcp/internal/mfcperr"
)

// SparseProblem is a matching instance restricted to a per-task candidate
// set: task j may only be assigned to the clusters screening kept for it.
// It is the production-dimension representation — at M clusters × N tasks
// with k candidates per task the solver walks k·N entries instead of M·N,
// which is what makes 1k×100k rounds tractable (see DESIGN.md §8).
//
// Storage is CSR by cluster (row-major over candidate entries), the same
// iteration order as the dense kernels: entry e in [RowStart[i],
// RowStart[i+1]) is the candidate pair (cluster i, task ColIdx[e]) with
// predicted time T[e] and reliability A[e]. Column indices are strictly
// increasing within a row. A parallel CSC view (ColStart/ColEntry) indexes
// the same entries by task for rounding, reconciliation, and repair.
//
// The row-major layout is deliberate: with k = M (every cluster a candidate
// for every task) the solver's accumulation sequences — row sums, row dot
// products, column sums over increasing cluster index — replay the dense
// solver's float operations in the identical order, so SolveRelaxedSparseWS
// is bit-for-bit equal to SolveRelaxedWS there
// (TestSparseDenseEquivalence).
type SparseProblem struct {
	// Mdim and Ndim are the full problem dimensions (cluster and task
	// counts); candidate lists index into [0, Mdim).
	Mdim, Ndim int

	// RowStart has length Mdim+1; ColIdx, T, A have length NNZ().
	RowStart []int32
	ColIdx   []int32
	T        []float64
	A        []float64

	// ColStart (length Ndim+1), ColEntry, and ColRow (length NNZ) form the
	// CSC view: ColEntry[ColStart[j]:ColStart[j+1]] lists the CSR entry
	// indices of task j's candidates in increasing cluster order, and
	// ColRow[c] is the cluster index of CSC slot c.
	ColStart []int32
	ColEntry []int32
	ColRow   []int32

	// Cap optionally bounds how many tasks each cluster may hold; the
	// hierarchical reconciler enforces it. nil means uncapacitated.
	Cap []int

	// Hyperparameters, with the same meaning as Problem's.
	Gamma  float64
	Beta   float64
	Lambda float64

	Objective ObjectiveKind
	Barrier   BarrierKind
	Norm      NormKind

	Speedups []cluster.SpeedupCurve

	Entropy float64
}

// M returns the cluster count.
func (sp *SparseProblem) M() int { return sp.Mdim }

// N returns the task count.
func (sp *SparseProblem) N() int { return sp.Ndim }

// NNZ returns the number of stored candidate pairs.
func (sp *SparseProblem) NNZ() int { return len(sp.ColIdx) }

// CandCount returns the number of candidate clusters kept for task j.
func (sp *SparseProblem) CandCount(j int) int {
	return int(sp.ColStart[j+1] - sp.ColStart[j])
}

// row returns the CSR entry range of cluster i.
func (sp *SparseProblem) row(i int) (lo, hi int) {
	return int(sp.RowStart[i]), int(sp.RowStart[i+1])
}

// zeta and zetaDeriv mirror Problem's speedup accessors.
func (sp *SparseProblem) zeta(i int, k float64) float64 {
	if sp.Speedups == nil {
		return 1
	}
	return sp.Speedups[i].Zeta(k)
}

func (sp *SparseProblem) zetaDeriv(i int, k float64) float64 {
	if sp.Speedups == nil {
		return 0
	}
	return sp.Speedups[i].ZetaDeriv(k)
}

// normConst returns the constant c in g(X,A) = c·Σ xᵀa − γ.
func (sp *SparseProblem) normConst() float64 {
	switch sp.Norm {
	case NormPerClusterTask:
		return 1 / float64(sp.Mdim*sp.Ndim)
	default:
		return 1 / float64(sp.Ndim)
	}
}

// barrierGradU mirrors Problem.barrierGradU.
func (sp *SparseProblem) barrierGradU(u float64) float64 {
	switch sp.Barrier {
	case HardPenalty:
		if u < 0 {
			return -sp.Lambda
		}
		return 0
	default:
		if u >= barrierEps {
			return -sp.Lambda / u
		}
		return -sp.Lambda / barrierEps
	}
}

// Validate rejects a sparse problem whose structure or hyperparameters are
// outside their admissible ranges; the sparse solvers assume a validated
// problem.
func (sp *SparseProblem) Validate() error {
	if sp.Mdim < 1 || sp.Ndim < 1 {
		return mfcperr.Wrap(mfcperr.ErrInfeasible, "matching: empty sparse problem %dx%d", sp.Mdim, sp.Ndim)
	}
	if len(sp.RowStart) != sp.Mdim+1 || len(sp.ColStart) != sp.Ndim+1 {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "matching: sparse index arrays sized %d/%d for %dx%d", len(sp.RowStart), len(sp.ColStart), sp.Mdim, sp.Ndim)
	}
	nnz := sp.NNZ()
	if len(sp.T) != nnz || len(sp.A) != nnz || len(sp.ColEntry) != nnz || len(sp.ColRow) != nnz {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "matching: sparse value arrays sized %d/%d/%d/%d for %d entries", len(sp.T), len(sp.A), len(sp.ColEntry), len(sp.ColRow), nnz)
	}
	for j := 0; j < sp.Ndim; j++ {
		if sp.CandCount(j) < 1 {
			return mfcperr.Wrap(mfcperr.ErrInfeasible, "matching: task %d has no candidate clusters", j)
		}
	}
	if sp.Cap != nil {
		if len(sp.Cap) != sp.Mdim {
			return mfcperr.Wrap(mfcperr.ErrBadShape, "matching: %d capacities for %d clusters", len(sp.Cap), sp.Mdim)
		}
		total := 0
		for i, c := range sp.Cap {
			if c < 0 {
				return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: negative capacity %d on cluster %d", c, i)
			}
			total += c
		}
		if total < sp.Ndim {
			return mfcperr.Wrap(mfcperr.ErrInfeasible, "matching: total capacity %d below %d tasks", total, sp.Ndim)
		}
	}
	if sp.Gamma <= 0 || sp.Gamma > 1 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Gamma %g outside (0,1]", sp.Gamma)
	}
	if sp.Beta <= 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Beta %g must be positive", sp.Beta)
	}
	if sp.Lambda < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Lambda %g must be non-negative", sp.Lambda)
	}
	if sp.Speedups != nil && len(sp.Speedups) != sp.Mdim {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "matching: %d speedup curves for %d clusters", len(sp.Speedups), sp.Mdim)
	}
	return nil
}

// SparseBuilder accumulates per-task candidate lists and finalizes them
// into a SparseProblem without ever materializing the dense M×N matrices —
// the construction path for production-dimension instances where the dense
// matrices would not fit (1k×100k is 800 MB per matrix).
//
// Usage: AddCandidate(j, i, t, a) for every kept pair, tasks in any order,
// then Build. Duplicate (i, j) pairs are rejected at Build.
type SparseBuilder struct {
	m, n  int
	cands [][]sparseCand
	nnz   int
}

type sparseCand struct {
	i    int32
	t, a float64
}

// NewSparseBuilder starts a builder for an m-cluster, n-task instance.
func NewSparseBuilder(m, n int) *SparseBuilder {
	return &SparseBuilder{m: m, n: n, cands: make([][]sparseCand, n)}
}

// AddCandidate records (cluster i, task j) as a kept pair with predicted
// time t and reliability a.
func (b *SparseBuilder) AddCandidate(j, i int, t, a float64) {
	if j < 0 || j >= b.n || i < 0 || i >= b.m {
		// invariant: screening loops run over the instance's own dimensions.
		panic("matching: sparse candidate out of range")
	}
	b.cands[j] = append(b.cands[j], sparseCand{i: int32(i), t: t, a: a})
	b.nnz++
}

// Build finalizes the builder into a validated SparseProblem with the
// paper's default hyperparameters (γ=0.8, β=10, λ=0.05). Candidate lists
// are sorted by cluster index; tasks with no candidates, duplicate pairs,
// or non-finite values return an error.
func (b *SparseBuilder) Build() (*SparseProblem, error) {
	sp := &SparseProblem{
		Mdim: b.m, Ndim: b.n,
		Gamma: 0.8, Beta: 10, Lambda: 0.05,
		RowStart: make([]int32, b.m+1),
		ColIdx:   make([]int32, 0, b.nnz),
		T:        make([]float64, 0, b.nnz),
		A:        make([]float64, 0, b.nnz),
		ColStart: make([]int32, b.n+1),
		ColEntry: make([]int32, b.nnz),
	}
	// Count row occupancies, then emit rows in (cluster, task) order so the
	// CSR arrays end up row-major with increasing column indices.
	rowCnt := make([]int32, b.m)
	for j, cs := range b.cands {
		if len(cs) == 0 {
			return nil, mfcperr.Wrap(mfcperr.ErrInfeasible, "matching: task %d has no candidate clusters", j)
		}
		seen := make(map[int32]bool, len(cs))
		for _, c := range cs {
			if seen[c.i] {
				return nil, mfcperr.Wrap(mfcperr.ErrBadShape, "matching: duplicate candidate (cluster %d, task %d)", c.i, j)
			}
			seen[c.i] = true
			if math.IsNaN(c.t) || math.IsInf(c.t, 0) || math.IsNaN(c.a) || math.IsInf(c.a, 0) {
				return nil, mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: non-finite candidate values for (cluster %d, task %d)", c.i, j)
			}
			rowCnt[c.i]++
		}
	}
	for i := 0; i < b.m; i++ {
		sp.RowStart[i+1] = sp.RowStart[i] + rowCnt[i]
	}
	nnz := int(sp.RowStart[b.m])
	sp.ColIdx = sp.ColIdx[:nnz]
	sp.T = sp.T[:nnz]
	sp.A = sp.A[:nnz]
	next := make([]int32, b.m)
	copy(next, sp.RowStart[:b.m])
	// Tasks in increasing j per row gives strictly increasing ColIdx.
	for j := 0; j < b.n; j++ {
		for _, c := range b.cands[j] {
			e := next[c.i]
			next[c.i]++
			sp.ColIdx[e] = int32(j)
			sp.T[e] = c.t
			sp.A[e] = c.a
		}
	}
	buildCSC(sp)
	return sp, nil
}

// buildCSC derives the by-task entry index from the finished CSR arrays.
func buildCSC(sp *SparseProblem) {
	colCnt := make([]int32, sp.Ndim)
	for _, j := range sp.ColIdx {
		colCnt[j]++
	}
	sp.ColStart = make([]int32, sp.Ndim+1)
	for j := 0; j < sp.Ndim; j++ {
		sp.ColStart[j+1] = sp.ColStart[j] + colCnt[j]
	}
	if len(sp.ColEntry) != sp.NNZ() {
		sp.ColEntry = make([]int32, sp.NNZ())
	}
	sp.ColRow = make([]int32, sp.NNZ())
	next := make([]int32, sp.Ndim)
	copy(next, sp.ColStart[:sp.Ndim])
	// Walking CSR rows in order fills each column's entries in increasing
	// cluster order.
	for i := 0; i < sp.Mdim; i++ {
		lo, hi := sp.row(i)
		for e := lo; e < hi; e++ {
			j := sp.ColIdx[e]
			c := next[j]
			next[j]++
			sp.ColEntry[c] = int32(e)
			sp.ColRow[c] = int32(i)
		}
	}
}

// PruneTopK screens a dense problem down to a SparseProblem keeping, per
// task, the k candidate clusters with the smallest predicted time — plus,
// always, the task's highest-reliability cluster, so the repair phase can
// still trade cost for reliability when the γ constraint binds (without it
// a tight top-k could make feasibility unreachable; see the pruning
// contract in DESIGN.md §8). k ≥ M keeps every cluster and the sparse
// solve reproduces the dense one bit-for-bit.
func PruneTopK(p *Problem, k int) *SparseProblem {
	sp, err := PruneTopKChecked(p, k)
	if err != nil {
		// invariant: internal callers prune problems they just built from
		// same-shape matrices with k ≥ 1.
		panic(err)
	}
	return sp
}

// PruneTopKChecked is PruneTopK returning validation errors instead of
// panicking — the path for externally supplied problems.
func PruneTopKChecked(p *Problem, k int) (*SparseProblem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: top-k %d must be at least 1", k)
	}
	m, n := p.M(), p.N()
	if k > m {
		k = m
	}
	sp := &SparseProblem{
		Mdim: m, Ndim: n,
		Gamma: p.Gamma, Beta: p.Beta, Lambda: p.Lambda,
		Objective: p.Objective, Barrier: p.Barrier, Norm: p.Norm,
		Speedups: p.Speedups, Entropy: p.Entropy,
	}
	// Select per task: k smallest times plus the argmax-reliability cluster.
	// keep[j] is the sorted candidate set for task j, reused across tasks.
	keep := make([][]int32, n)
	rowCnt := make([]int32, m)
	idx := make([]int, m)
	nnz := 0
	for j := 0; j < n; j++ {
		for i := range idx {
			idx[i] = i
		}
		// Partial selection: k smallest T(:, j). Selection sort over the
		// first k slots is O(M·k); fine for the dense-backed path (the
		// scale path screens through SparseBuilder instead).
		for s := 0; s < k; s++ {
			best := s
			for t := s + 1; t < m; t++ {
				ti := p.T.At(idx[t], j)
				tb := p.T.At(idx[best], j)
				if ti < tb || (ti == tb && idx[t] < idx[best]) {
					best = t
				}
			}
			idx[s], idx[best] = idx[best], idx[s]
		}
		// Highest-reliability cluster (lowest index wins ties, matching
		// Repair's scan order).
		relBest := 0
		for i := 1; i < m; i++ {
			if p.A.At(i, j) > p.A.At(relBest, j) {
				relBest = i
			}
		}
		kept := idx[:k]
		have := false
		for _, i := range kept {
			if i == relBest {
				have = true
				break
			}
		}
		cands := make([]int32, 0, k+1)
		for _, i := range kept {
			cands = append(cands, int32(i))
		}
		if !have {
			cands = append(cands, int32(relBest))
		}
		sortInt32(cands)
		keep[j] = cands
		for _, i := range cands {
			rowCnt[i]++
		}
		nnz += len(cands)
	}
	sp.RowStart = make([]int32, m+1)
	for i := 0; i < m; i++ {
		sp.RowStart[i+1] = sp.RowStart[i] + rowCnt[i]
	}
	sp.ColIdx = make([]int32, nnz)
	sp.T = make([]float64, nnz)
	sp.A = make([]float64, nnz)
	next := make([]int32, m)
	copy(next, sp.RowStart[:m])
	for j := 0; j < n; j++ {
		for _, i := range keep[j] {
			e := next[i]
			next[i]++
			sp.ColIdx[e] = int32(j)
			sp.T[e] = p.T.At(int(i), j)
			sp.A[e] = p.A.At(int(i), j)
		}
	}
	buildCSC(sp)
	return sp, nil
}

// sortInt32 is an insertion sort: candidate lists are tiny (k+1 entries).
func sortInt32(v []int32) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// DiscreteCostSparse returns the sparse analogue of Problem.DiscreteCost:
// the max (or sum, for LinearSum) of speedup-adjusted cluster loads under a
// discrete assignment. assign[j] must be a candidate of task j.
func (sp *SparseProblem) DiscreteCostSparse(assign []int) float64 {
	loads := make([]float64, sp.Mdim)
	counts := make([]int, sp.Mdim)
	for j, i := range assign {
		e, ok := sp.entryOf(i, j)
		if !ok {
			// invariant: sparse assignments are produced from candidate lists.
			panic("matching: assignment outside candidate set")
		}
		loads[i] += sp.T[e]
		counts[i]++
	}
	if sp.Objective == LinearSum {
		s := 0.0
		for i, l := range loads {
			s += sp.zeta(i, float64(counts[i])) * l
		}
		return s
	}
	max := math.Inf(-1)
	for i, l := range loads {
		if v := sp.zeta(i, float64(counts[i])) * l; v > max {
			max = v
		}
	}
	return max
}

// DiscreteReliabilitySparse returns the mean reliability of the assigned
// candidate pairs.
func (sp *SparseProblem) DiscreteReliabilitySparse(assign []int) float64 {
	s := 0.0
	for j, i := range assign {
		e, ok := sp.entryOf(i, j)
		if !ok {
			// invariant: sparse assignments are produced from candidate lists.
			panic("matching: assignment outside candidate set")
		}
		s += sp.A[e]
	}
	return s / float64(len(assign))
}

// entryOf finds the CSR entry of pair (cluster i, task j) via binary search
// over task j's (cluster-sorted) candidate list.
func (sp *SparseProblem) entryOf(i, j int) (int, bool) {
	lo, hi := int(sp.ColStart[j]), int(sp.ColStart[j+1])
	for lo < hi {
		mid := (lo + hi) / 2
		ci := int(sp.ColRow[mid])
		switch {
		case ci == i:
			return int(sp.ColEntry[mid]), true
		case ci < i:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return -1, false
}
