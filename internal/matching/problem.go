// Package matching implements the cluster–task matching optimization of the
// paper (problem 2): assign N tasks to M clusters minimizing the makespan
// (execution time of the slowest cluster) subject to a mean-reliability
// constraint.
//
// It provides the continuously relaxed, smoothed, barrier-augmented
// objective F(X, T, A) of equations (8)–(10) — including the non-convex
// parallel-execution variant of §3.4 (equations 16–17) — projected
// gradient / mirror-descent solvers (Algorithm 1), rounding with greedy
// feasibility repair, and an exact branch-and-bound oracle for small
// instances used by tests and ground-truth evaluation.
package matching

import (
	"fmt"
	"math"

	"mfcp/internal/cluster"
	"mfcp/internal/mat"
	"mfcp/internal/mfcperr"
)

// ObjectiveKind selects the time cost function f(X, T).
type ObjectiveKind int

const (
	// SmoothMakespan is the paper's objective (3)/(8): the (smoothed)
	// maximum per-cluster execution time.
	SmoothMakespan ObjectiveKind = iota
	// LinearSum replaces the max with the sum of all cluster loads — the
	// simplification evaluated in ablation row (1) of Table 1.
	LinearSum
)

// BarrierKind selects how the reliability constraint enters F.
type BarrierKind int

const (
	// LogBarrier is the interior-point logarithmic barrier of equation (9).
	LogBarrier BarrierKind = iota
	// HardPenalty is the hinge penalty λ·max(0, γ−ḡ) of ablation row (2).
	HardPenalty
)

// NormKind selects the reliability normalization in g(X, A).
type NormKind int

const (
	// NormPerTask divides the assigned-reliability sum by N, so g compares
	// the mean success probability of the chosen assignment against γ.
	// This matches the paper's reported "Reliability" metric and is the
	// default (see DESIGN.md on the 1/(MN) caveat).
	NormPerTask NormKind = iota
	// NormPerClusterTask divides by M·N, the paper's literal equation (4).
	NormPerClusterTask
)

// Problem is one matching instance. T and A are M×N matrices of (predicted
// or true) execution times and reliabilities; times are assumed normalized
// to O(1) by the workload layer.
type Problem struct {
	T *mat.Dense
	A *mat.Dense

	// Gamma is the reliability threshold γ.
	Gamma float64
	// Beta is the log-sum-exp smoothing sharpness β of equation (8).
	Beta float64
	// Lambda is the barrier weight λ of equation (9).
	Lambda float64

	Objective ObjectiveKind
	Barrier   BarrierKind
	Norm      NormKind

	// Speedups holds each cluster's ζ curve for the parallel-execution
	// setting (§3.4). nil or all-trivial curves give the convex sequential
	// setting.
	Speedups []cluster.SpeedupCurve

	// Entropy is an optional regularizer weight ρ adding ρ·Σ x log x to F.
	// The paper's smoothed objective is convex but not strongly convex, so
	// the reduced KKT system used by analytical differentiation (eq. 15,
	// with box constraints disregarded as in §3.3) can be singular at
	// boundary optima. A small ρ keeps the argmin strictly interior and the
	// Hessian positive definite — the standard decision-focused-learning
	// device (cf. Wilder et al. 2019, who add a quadratic term). Trainers
	// set ρ > 0 while differentiating; solving and evaluation use ρ = 0.
	Entropy float64
}

// NewProblem returns a Problem over (T, A) with the paper's default
// hyperparameters: β=10, λ=0.05, γ=0.8, per-task normalization.
func NewProblem(T, A *mat.Dense) *Problem {
	if T.Rows != A.Rows || T.Cols != A.Cols {
		// invariant: internal callers derive T and A from the same round, so
		// their shapes agree by construction; external matrices go through
		// NewProblemChecked.
		panic("matching: T and A shapes differ")
	}
	return &Problem{T: T, A: A, Gamma: 0.8, Beta: 10, Lambda: 0.05}
}

// NewProblemChecked is NewProblem for externally supplied matrices: a shape
// mismatch returns an mfcperr.ErrBadShape-wrapped error instead of
// panicking.
func NewProblemChecked(T, A *mat.Dense) (*Problem, error) {
	if T.Rows != A.Rows || T.Cols != A.Cols {
		return nil, mfcperr.Wrap(mfcperr.ErrBadShape, "matching: T is %dx%d but A is %dx%d", T.Rows, T.Cols, A.Rows, A.Cols)
	}
	return NewProblem(T, A), nil
}

// Validate rejects a problem whose hyperparameters or matrices are outside
// their admissible ranges; the solvers assume a validated problem.
func (p *Problem) Validate() error {
	if p.T == nil || p.A == nil {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "matching: problem with nil cost matrices")
	}
	if p.T.Rows != p.A.Rows || p.T.Cols != p.A.Cols {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "matching: T is %dx%d but A is %dx%d", p.T.Rows, p.T.Cols, p.A.Rows, p.A.Cols)
	}
	if p.M() < 1 || p.N() < 1 {
		return mfcperr.Wrap(mfcperr.ErrInfeasible, "matching: empty problem %dx%d", p.M(), p.N())
	}
	if p.Gamma <= 0 || p.Gamma > 1 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Gamma %g outside (0,1]", p.Gamma)
	}
	if p.Beta <= 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Beta %g must be positive", p.Beta)
	}
	if p.Lambda < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Lambda %g must be non-negative", p.Lambda)
	}
	if p.Entropy < 0 {
		return mfcperr.Wrap(mfcperr.ErrBadConfig, "matching: Entropy %g must be non-negative", p.Entropy)
	}
	if p.Speedups != nil && len(p.Speedups) != p.M() {
		return mfcperr.Wrap(mfcperr.ErrBadShape, "matching: %d speedup curves for %d clusters", len(p.Speedups), p.M())
	}
	return nil
}

// M returns the cluster count.
func (p *Problem) M() int { return p.T.Rows }

// N returns the task count.
func (p *Problem) N() int { return p.T.Cols }

// WithPrediction returns a copy of p whose cost matrices are (T, A); all
// hyperparameters carry over. Used to evaluate the same instance under
// predicted versus true values.
func (p *Problem) WithPrediction(T, A *mat.Dense) *Problem {
	q := *p
	if T != nil {
		q.T = T
	}
	if A != nil {
		q.A = A
	}
	if q.T.Rows != q.A.Rows || q.T.Cols != q.A.Cols {
		// invariant: predictions are produced for exactly the instance's
		// round, so the shapes agree by construction.
		panic("matching: WithPrediction shape mismatch")
	}
	return &q
}

// zeta returns cluster i's ζ evaluated at task mass k.
func (p *Problem) zeta(i int, k float64) float64 {
	if p.Speedups == nil {
		return 1
	}
	return p.Speedups[i].Zeta(k)
}

// zetaDeriv returns dζ_i/dk.
func (p *Problem) zetaDeriv(i int, k float64) float64 {
	if p.Speedups == nil {
		return 0
	}
	return p.Speedups[i].ZetaDeriv(k)
}

// IsConvex reports whether the relaxed objective is convex (sequential
// execution; ζ ≡ 1). The parallel setting of §3.4 is non-convex.
func (p *Problem) IsConvex() bool {
	if p.Speedups == nil {
		return true
	}
	for _, s := range p.Speedups {
		if !s.IsTrivial() {
			return false
		}
	}
	return true
}

// normConst returns the constant c in g(X,A) = c·Σ xᵀa − γ.
func (p *Problem) normConst() float64 {
	switch p.Norm {
	case NormPerClusterTask:
		return 1 / float64(p.M()*p.N())
	default:
		return 1 / float64(p.N())
	}
}

// Loads writes each cluster's (speedup-adjusted) load s_i = ζ_i(k_i)·x_iᵀt_i
// into dst (allocating when nil) and returns it.
func (p *Problem) Loads(X *mat.Dense, dst mat.Vec) mat.Vec {
	p.checkX(X)
	if dst == nil {
		dst = mat.NewVec(p.M())
	}
	for i := 0; i < p.M(); i++ {
		xi := X.Row(i)
		k := xi.Sum()
		dst[i] = p.zeta(i, k) * xi.Dot(p.T.Row(i))
	}
	return dst
}

// TimeCost evaluates the exact (unsmoothed) cost f(X, T): the max load for
// SmoothMakespan, the total load for LinearSum.
func (p *Problem) TimeCost(X *mat.Dense) float64 {
	loads := p.Loads(X, nil)
	if p.Objective == LinearSum {
		return loads.Sum()
	}
	m, _ := loads.Max()
	return m
}

// SmoothTimeCost evaluates the smoothed objective f̃ (equation 8 / 17), or
// the linear sum which needs no smoothing.
func (p *Problem) SmoothTimeCost(X *mat.Dense) float64 {
	return p.SmoothTimeCostWS(X, nil)
}

// SmoothTimeCostWS is SmoothTimeCost with the loads scratch taken from ws
// (allocation-free when ws is non-nil and sized for p; nil falls back to
// allocating).
func (p *Problem) SmoothTimeCostWS(X *mat.Dense, ws *Workspace) float64 {
	var loads mat.Vec
	if ws != nil {
		loads = ws.Loads
	}
	loads = p.Loads(X, loads)
	if p.Objective == LinearSum {
		return loads.Sum()
	}
	return mat.LogSumExp(loads, p.Beta)
}

// ReliabilityMargin evaluates g(X, A) = c·Σ x_iᵀa_i − γ. Positive means the
// constraint is satisfied.
func (p *Problem) ReliabilityMargin(X *mat.Dense) float64 {
	p.checkX(X)
	s := 0.0
	for i := 0; i < p.M(); i++ {
		s += X.Row(i).Dot(p.A.Row(i))
	}
	return s*p.normConst() - p.Gamma
}

// barrierEps is where the log barrier switches to its linear extension, so
// F and its gradient stay finite when iterates brush the boundary.
const barrierEps = 1e-3

// barrierValue evaluates the constraint term of F at margin u.
func (p *Problem) barrierValue(u float64) float64 {
	switch p.Barrier {
	case HardPenalty:
		// λ·max(0, γ−ḡ) of ablation row (2), expressed via u = ḡ−γ.
		if u < 0 {
			return -p.Lambda * u
		}
		return 0
	default:
		if u >= barrierEps {
			return -p.Lambda * math.Log(u)
		}
		// Linear extension: continuous and C¹ at u = ε.
		return -p.Lambda * (math.Log(barrierEps) + (u-barrierEps)/barrierEps)
	}
}

// barrierGradU evaluates d(barrier)/du at margin u.
func (p *Problem) barrierGradU(u float64) float64 {
	switch p.Barrier {
	case HardPenalty:
		if u < 0 {
			return -p.Lambda
		}
		return 0
	default:
		if u >= barrierEps {
			return -p.Lambda / u
		}
		return -p.Lambda / barrierEps
	}
}

// BarrierDeriv returns the first and second derivatives of the constraint
// term with respect to the margin u — the coefficients differentiable
// optimization (internal/diffopt) needs to linearize the barrier. In the
// log-barrier interior these are −λ/u and λ/u²; in the linear extension
// region (u < ε) and for the hard penalty the curvature is zero.
func (p *Problem) BarrierDeriv(u float64) (first, second float64) {
	switch p.Barrier {
	case HardPenalty:
		if u < 0 {
			return -p.Lambda, 0
		}
		return 0, 0
	default:
		if u >= barrierEps {
			return -p.Lambda / u, p.Lambda / (u * u)
		}
		return -p.Lambda / barrierEps, 0
	}
}

// NormConst returns the constant c in g(X, A) = c·Σ x_iᵀa_i − γ.
func (p *Problem) NormConst() float64 { return p.normConst() }

// entropyFloor keeps x log x and its derivatives finite at the boundary.
const entropyFloor = 1e-12

// F evaluates the full relaxed objective F(X, T, A) of equation (9), plus
// the optional entropy regularizer.
func (p *Problem) F(X *mat.Dense) float64 {
	return p.FWS(X, nil)
}

// FWS is F with scratch taken from ws (allocation-free when ws is non-nil
// and sized for p).
func (p *Problem) FWS(X *mat.Dense, ws *Workspace) float64 {
	v := p.SmoothTimeCostWS(X, ws) + p.barrierValue(p.ReliabilityMargin(X))
	if p.Entropy > 0 {
		for _, x := range X.Data {
			if x > entropyFloor {
				v += p.Entropy * x * math.Log(x)
			}
		}
	}
	return v
}

// GradX writes ∇_X F into dst (allocating when nil) and returns it.
//
// For the smoothed makespan with speedups (equation 17):
//
//	∂f̃/∂x_ij = p_i · (ζ_i(k_i)·t_ij + ζ'_i(k_i)·x_iᵀt_i),
//
// where p = softmax(β·s) are the log-sum-exp weights. The barrier adds
// barrierGradU(u) · c · a_ij.
func (p *Problem) GradX(X *mat.Dense, dst *mat.Dense) *mat.Dense {
	return p.GradXWS(X, dst, nil)
}

// GradXWS is GradX with the loads/weights scratch taken from ws, so the
// call is allocation-free when both dst and ws are supplied (ws must be
// sized for p, e.g. via ResetFor; the per-row sum/dot caches borrow ws.Col
// and ws.Col2, which no caller holds across a gradient evaluation). A nil
// ws falls back to allocating.
func (p *Problem) GradXWS(X, dst *mat.Dense, ws *Workspace) *mat.Dense {
	p.checkX(X)
	m, n := p.M(), p.N()
	if dst == nil {
		dst = mat.NewDense(m, n)
	}
	var loads, weights, rowK, rowDot mat.Vec
	if ws != nil {
		loads, weights = ws.Loads, ws.Weights
		rowK, rowDot = ws.Col, ws.Col2
	} else {
		loads, weights = mat.NewVec(m), mat.NewVec(m)
		rowK, rowDot = mat.NewVec(m), mat.NewVec(m)
	}
	// One pass computes each row's mass and time dot product; both the
	// loads (for the softmax weights) and the per-row gradient terms reuse
	// them instead of re-walking the row.
	for i := 0; i < m; i++ {
		xi := X.Row(i)
		k := xi.Sum()
		dot := xi.Dot(p.T.Row(i))
		rowK[i] = k
		rowDot[i] = dot
		loads[i] = p.zeta(i, k) * dot
	}
	if p.Objective == LinearSum {
		weights.Fill(1)
	} else {
		weights = mat.SoftmaxWeights(loads, p.Beta, weights)
	}
	u := p.ReliabilityMargin(X)
	bg := p.barrierGradU(u) * p.normConst()
	for i := 0; i < m; i++ {
		ti := p.T.Row(i)
		ai := p.A.Row(i)
		k, dot := rowK[i], rowDot[i]
		z := p.zeta(i, k)
		dz := p.zetaDeriv(i, k)
		drow := dst.Row(i)
		wi := weights[i]
		switch {
		case p.Entropy > 0:
			xi := X.Row(i)
			for j, t := range ti {
				x := xi[j]
				if x < entropyFloor {
					x = entropyFloor
				}
				drow[j] = wi*(z*t+dz*dot) + bg*ai[j] + p.Entropy*(1+math.Log(x))
			}
		case z == 1 && dz == 0:
			// Trivial speedup curve: wi·(1·t + 0·dot) is bitwise wi·t (the
			// 1· and +0· fold away exactly in IEEE arithmetic), so the
			// common sequential-execution case skips two multiplies and an
			// add per entry.
			for j, t := range ti {
				drow[j] = wi*t + bg*ai[j]
			}
		default:
			for j, t := range ti {
				drow[j] = wi*(z*t+dz*dot) + bg*ai[j]
			}
		}
	}
	return dst
}

// checkX panics when X is not an M×N matrix.
func (p *Problem) checkX(X *mat.Dense) {
	if X.Rows != p.M() || X.Cols != p.N() {
		// invariant: every iterate originates from this problem's solver or
		// UniformX, so its shape matches by construction.
		panic(fmt.Sprintf("matching: X is %dx%d, want %dx%d", X.Rows, X.Cols, p.M(), p.N()))
	}
}

// UniformX returns the barycentric starting point X_ij = 1/M.
func (p *Problem) UniformX() *mat.Dense {
	X := mat.NewDense(p.M(), p.N())
	X.Fill(1 / float64(p.M()))
	return X
}
