package matching

import (
	"math"
	"sort"
)

// sparseRepairState tracks the incremental quantities the sparse repair
// pass needs: per-cluster raw and speedup-adjusted loads, assignment
// counts, the reliability sum, and each task's current CSR entry.
type sparseRepairState struct {
	sp       *SparseProblem
	assign   []int
	curEntry []int32 // task → CSR entry of its current assignment
	raw      []float64
	scaled   []float64
	counts   []int
	relSum   float64
}

func newSparseRepairState(sp *SparseProblem, assign []int) *sparseRepairState {
	st := &sparseRepairState{
		sp:       sp,
		assign:   assign,
		curEntry: make([]int32, sp.Ndim),
		raw:      make([]float64, sp.Mdim),
		scaled:   make([]float64, sp.Mdim),
		counts:   make([]int, sp.Mdim),
	}
	for j, i := range assign {
		e, ok := sp.entryOf(i, j)
		if !ok {
			// invariant: repair inputs come from candidate-list rounding or
			// reconciliation, which only assign stored pairs.
			panic("matching: repair assignment outside candidate set")
		}
		st.curEntry[j] = int32(e)
		st.raw[i] += sp.T[e]
		st.counts[i]++
		st.relSum += sp.A[e]
	}
	for i := range st.scaled {
		st.scaled[i] = sp.zeta(i, float64(st.counts[i])) * st.raw[i]
	}
	return st
}

// cost returns the discrete objective under the current assignment.
func (st *sparseRepairState) cost() float64 {
	if st.sp.Objective == LinearSum {
		s := 0.0
		for _, v := range st.scaled {
			s += v
		}
		return s
	}
	max := math.Inf(-1)
	for _, v := range st.scaled {
		if v > max {
			max = v
		}
	}
	return max
}

func (st *sparseRepairState) rel() float64 { return st.relSum / float64(st.sp.Ndim) }

// apply moves task j to cluster v via CSR entry e (a candidate of j).
func (st *sparseRepairState) apply(j, v, e int) {
	sp := st.sp
	u := st.assign[j]
	old := int(st.curEntry[j])
	st.raw[u] -= sp.T[old]
	st.counts[u]--
	st.scaled[u] = sp.zeta(u, float64(st.counts[u])) * st.raw[u]
	st.relSum += sp.A[e] - sp.A[old]
	st.assign[j] = v
	st.curEntry[j] = int32(e)
	st.raw[v] += sp.T[e]
	st.counts[v]++
	st.scaled[v] = sp.zeta(v, float64(st.counts[v])) * st.raw[v]
}

// hasCap reports whether cluster v can take one more task.
func (st *sparseRepairState) hasCap(v int) bool {
	return st.sp.Cap == nil || st.counts[v] < st.sp.Cap[v]
}

// RepairSparse is the production-dimension repair: bounded single-task
// moves over candidate lists only, never the O(M·N) scans or O(N²) swap
// search of the dense Repair. Phase 1 restores reliability feasibility by
// applying the highest-gain per-task moves until the γ constraint holds
// (one move per task at most, so at worst the assignment lands on every
// task's best-reliability candidate — which PruneTopK always retains, so
// whenever any assignment over the candidate lists meets γ, phase 1
// reaches it; TestRepairSparseReliability). Phase 2 is bottleneck descent
// on the makespan: repeatedly move a task off the most-loaded cluster when
// that strictly lowers the global maximum, up to a move budget. All moves
// respect sp.Cap when set, so capacity feasibility established by
// reconciliation survives repair.
//
// Returns a new slice; assign is not mutated.
func RepairSparse(sp *SparseProblem, assign []int) ([]int, RepairInfo) {
	var info RepairInfo
	out := append([]int(nil), assign...)
	n := sp.Ndim
	if n == 0 {
		return out, info
	}
	st := newSparseRepairState(sp, out)
	info.CostBefore = st.cost()
	info.RelBefore = st.rel()

	// Phase 1: reliability. Rank each task's best admissible reliability
	// gain once, then apply from the top until the mean meets γ.
	if st.rel() < sp.Gamma {
		type relMove struct {
			j, v, e int
			gain    float64
		}
		moves := make([]relMove, 0, n)
		for j := 0; j < n; j++ {
			cur := int(st.curEntry[j])
			lo, hi := int(sp.ColStart[j]), int(sp.ColStart[j+1])
			best := relMove{j: j, v: -1}
			for c := lo; c < hi; c++ {
				e := int(sp.ColEntry[c])
				if e == cur {
					continue
				}
				if g := sp.A[e] - sp.A[cur]; g > best.gain {
					best.gain, best.v, best.e = g, int(sp.ColRow[c]), e
				}
			}
			if best.v >= 0 {
				moves = append(moves, best)
			}
		}
		sort.Slice(moves, func(a, b int) bool { return moves[a].gain > moves[b].gain })
		for _, mv := range moves {
			if st.rel() >= sp.Gamma {
				break
			}
			if !st.hasCap(mv.v) {
				continue
			}
			st.apply(mv.j, mv.v, mv.e)
			info.FeasMoves++
		}
	}

	// Phase 2: bottleneck descent (makespan objectives only — the linear
	// sum has no bottleneck to unload).
	if sp.Objective != LinearSum {
		budget := sp.Mdim
		if budget < 64 {
			budget = 64
		}
		feasible := st.rel() >= sp.Gamma
		tasksOn := make([][]int32, sp.Mdim)
		for j, i := range out {
			tasksOn[i] = append(tasksOn[i], int32(j))
		}
		for info.Moves < budget {
			// Current bottleneck and the two largest loads excluding it.
			u, max1 := -1, math.Inf(-1)
			for i, v := range st.scaled {
				if v > max1 {
					max1, u = v, i
				}
			}
			o1, o2 := math.Inf(-1), math.Inf(-1) // largest and runner-up over i ≠ u
			o1i := -1
			for i, v := range st.scaled {
				if i == u {
					continue
				}
				if v > o1 {
					o2, o1, o1i = o1, v, i
				} else if v > o2 {
					o2 = v
				}
			}
			bestJ, bestV, bestE, bestTop := -1, -1, -1, max1
			for _, j32 := range tasksOn[u] {
				j := int(j32)
				cur := int(st.curEntry[j])
				tU := sp.T[cur]
				newU := sp.zeta(u, float64(st.counts[u]-1)) * (st.raw[u] - tU)
				lo, hi := int(sp.ColStart[j]), int(sp.ColStart[j+1])
				for c := lo; c < hi; c++ {
					v := int(sp.ColRow[c])
					if v == u {
						continue
					}
					e := int(sp.ColEntry[c])
					if !st.hasCap(v) {
						continue
					}
					dRel := sp.A[e] - sp.A[cur]
					if feasible && st.relSum+dRel < sp.Gamma*float64(n)-1e-12 {
						continue
					}
					newV := sp.zeta(v, float64(st.counts[v]+1)) * (st.raw[v] + sp.T[e])
					other := o1
					if v == o1i {
						other = o2
					}
					top := newU
					if newV > top {
						top = newV
					}
					if other > top {
						top = other
					}
					if top < bestTop-1e-12 {
						bestTop, bestJ, bestV, bestE = top, j, v, e
					}
				}
			}
			if bestJ < 0 {
				break
			}
			st.apply(bestJ, bestV, bestE)
			feasible = st.rel() >= sp.Gamma
			// Maintain the per-cluster task lists for the next iteration.
			lst := tasksOn[u]
			for k, t := range lst {
				if int(t) == bestJ {
					lst[k] = lst[len(lst)-1]
					tasksOn[u] = lst[:len(lst)-1]
					break
				}
			}
			tasksOn[bestV] = append(tasksOn[bestV], int32(bestJ))
			info.Moves++
		}
	}

	info.CostAfter = st.cost()
	info.RelAfter = st.rel()
	return out, info
}
