package matching

import (
	"math"

	"mfcp/internal/mat"
)

// SolveFrankWolfe minimizes the relaxed objective F by the Frank–Wolfe
// (conditional gradient) method. The assignment polytope is a product of
// column simplices, so the linear minimization oracle is simply a
// per-column argmin of the gradient — each step moves toward a vertex
// (an integral assignment), which makes the iterates naturally sparse and
// the final rounding gap small.
//
// With the exact line search below on a convex F, Frank–Wolfe enjoys the
// classic O(1/k) primal gap; it is exposed as an alternative to the mirror
// and PGD solvers for the solver ablation, and as the preferred method
// when very sparse relaxed solutions are wanted.
func SolveFrankWolfe(p *Problem, opts SolveOptions) *mat.Dense {
	opts.fillDefaults()
	var X *mat.Dense
	if opts.Init != nil {
		X = opts.Init.Clone()
		normalizeColumns(X)
	} else {
		X = p.UniformX()
	}
	m, n := p.M(), p.N()
	grad := mat.NewDense(m, n)
	vertex := mat.NewDense(m, n)
	dir := mat.NewDense(m, n)
	for it := 0; it < opts.Iters; it++ {
		p.GradX(X, grad)
		// Linear minimization oracle: for each task column pick the cluster
		// with the smallest gradient entry.
		vertex.Fill(0)
		for j := 0; j < n; j++ {
			best, bi := math.Inf(1), 0
			for i := 0; i < m; i++ {
				if g := grad.At(i, j); g < best {
					best, bi = g, i
				}
			}
			vertex.Set(bi, j, 1)
		}
		// Direction and duality gap: gap = ⟨grad, X − vertex⟩ ≥ 0 certifies
		// proximity to optimality for convex F.
		gap := 0.0
		for k := range dir.Data {
			dir.Data[k] = vertex.Data[k] - X.Data[k]
			gap -= grad.Data[k] * dir.Data[k]
		}
		if gap < opts.Tol {
			break
		}
		// Backtracking line search along X + γ·dir, γ ∈ (0, 1].
		gamma := frankWolfeStep(p, X, dir, grad, gap)
		X.AddScaled(gamma, dir)
	}
	return X
}

// frankWolfeStep picks the step size by backtracking from the classic
// 2/(k+2)-style full step: halve γ until F decreases (or accept the
// smallest probe). F evaluations are cheap (O(MN)).
func frankWolfeStep(p *Problem, X, dir, grad *mat.Dense, gap float64) float64 {
	base := p.F(X)
	probe := X.Clone()
	gamma := 1.0
	for t := 0; t < 12; t++ {
		probe.CopyFrom(X)
		probe.AddScaled(gamma, dir)
		// Sufficient decrease: an Armijo-style fraction of the linear model.
		if p.F(probe) <= base-0.25*gamma*gap {
			return gamma
		}
		gamma /= 2
	}
	return gamma
}
