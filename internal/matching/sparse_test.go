package matching

import (
	"errors"
	"math"
	"testing"

	"mfcp/internal/cluster"
	"mfcp/internal/mfcperr"
	"mfcp/internal/rng"
)

// sparseFromDense builds the full-sparsity representation (k = M) of p.
func sparseFromDense(t *testing.T, p *Problem) *SparseProblem {
	t.Helper()
	sp, err := PruneTopKChecked(p, p.M())
	if err != nil {
		t.Fatalf("PruneTopKChecked: %v", err)
	}
	if sp.NNZ() != p.M()*p.N() {
		t.Fatalf("full-sparsity NNZ %d, want %d", sp.NNZ(), p.M()*p.N())
	}
	return sp
}

// TestSparseDenseEquivalence is the tentpole proof obligation: over ≥100
// random instances, the sparse solver at k = M (and the hierarchical
// driver at 1 cell) reproduces the dense SolveRelaxedWS solution
// bit-for-bit — same float bits in every coordinate, same convergence
// record, same rounded assignment.
func TestSparseDenseEquivalence(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 120; trial++ {
		m := 2 + r.Intn(9)
		n := 2 + r.Intn(24)
		p := randomProblem(r, m, n)
		// Exercise hyperparameter and structural variety: speedup curves
		// (non-convex path), entropy, barrier/objective/norm variants.
		switch trial % 5 {
		case 1:
			sp := make([]cluster.SpeedupCurve, m)
			for i := range sp {
				sp[i] = cluster.DefaultSpeedup()
			}
			p.Speedups = sp
		case 2:
			p.Entropy = 0.01
		case 3:
			p.Barrier = HardPenalty
			p.Norm = NormPerClusterTask
		case 4:
			p.Objective = LinearSum
		}
		opts := SolveOptions{Iters: 60}
		if trial%7 == 0 {
			opts.Method = MethodPGD
		}
		sp := sparseFromDense(t, p)

		dws := NewWorkspace(m, n)
		X := SolveRelaxedWS(p, opts, dws)
		sws := NewSparseWorkspace(sp)
		xs := SolveRelaxedSparseWS(sp, opts, sws, nil)

		checkSparseMatchesDense(t, trial, sp, xs, X)
		if dws.Info != sws.Info {
			t.Fatalf("trial %d: dense Info %+v, sparse Info %+v", trial, dws.Info, sws.Info)
		}
		da := Round(X)
		sa := RoundSparse(sp, xs)
		for j := range da {
			if da[j] != sa[j] {
				t.Fatalf("trial %d: assignment differs at task %d: dense %d sparse %d", trial, j, da[j], sa[j])
			}
		}

		// The hierarchical driver with 1 cell is the same solve.
		res := SolveHierarchical(sp, HierOptions{Cells: 1, Solve: opts}, nil)
		checkSparseMatchesDense(t, trial, sp, res.X, X)
		if res.Info != dws.Info {
			t.Fatalf("trial %d: hier Info %+v, dense Info %+v", trial, res.Info, dws.Info)
		}
	}
}

// checkSparseMatchesDense asserts bit equality of a sparse iterate against
// a dense matrix over every stored entry.
func checkSparseMatchesDense(t *testing.T, trial int, sp *SparseProblem, xs []float64, X interface {
	At(i, j int) float64
}) {
	t.Helper()
	for i := 0; i < sp.Mdim; i++ {
		lo, hi := int(sp.RowStart[i]), int(sp.RowStart[i+1])
		for e := lo; e < hi; e++ {
			j := int(sp.ColIdx[e])
			dv, sv := X.At(i, j), xs[e]
			if math.Float64bits(dv) != math.Float64bits(sv) {
				t.Fatalf("trial %d: X[%d,%d] dense %x sparse %x (%g vs %g)",
					trial, i, j, math.Float64bits(dv), math.Float64bits(sv), dv, sv)
			}
		}
	}
}

// TestSparseWarmInitMatchesDenseInit pins the warm-start path to the dense
// solver's Init path: seeding both with the same (unnormalized) matrix
// must still agree bit-for-bit at k = M.
func TestSparseWarmInitMatchesDenseInit(t *testing.T) {
	r := rng.New(43)
	for trial := 0; trial < 30; trial++ {
		m, n := 2+r.Intn(6), 2+r.Intn(12)
		p := randomProblem(r, m, n)
		sp := sparseFromDense(t, p)
		// A messy init: negatives and zero columns exercise the clamp and
		// uniform-fallback branches of both normalizers.
		init := p.UniformX()
		for k := range init.Data {
			init.Data[k] = r.Uniform(-0.2, 1)
		}
		for i := 0; i < m; i++ {
			init.Set(i, 0, 0)
		}
		sInit := make([]float64, sp.NNZ())
		for i := 0; i < m; i++ {
			lo, hi := int(sp.RowStart[i]), int(sp.RowStart[i+1])
			for e := lo; e < hi; e++ {
				sInit[e] = init.At(i, int(sp.ColIdx[e]))
			}
		}
		opts := SolveOptions{Iters: 40, Init: init}
		X := SolveRelaxedWS(p, opts, nil)
		xs := SolveRelaxedSparseWS(sp, SolveOptions{Iters: 40}, nil, sInit)
		checkSparseMatchesDense(t, trial, sp, xs, X)
	}
}

// TestPruneTopKStructure checks the pruning contract: per task, the k
// smallest-time clusters survive, the best-reliability cluster always
// survives, and candidate lists are sorted and duplicate-free.
func TestPruneTopKStructure(t *testing.T) {
	r := rng.New(44)
	for trial := 0; trial < 50; trial++ {
		m, n := 3+r.Intn(10), 2+r.Intn(15)
		k := 1 + r.Intn(m)
		p := randomProblem(r, m, n)
		sp, err := PruneTopKChecked(p, k)
		if err != nil {
			t.Fatalf("PruneTopKChecked: %v", err)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("pruned problem invalid: %v", err)
		}
		for j := 0; j < n; j++ {
			lo, hi := int(sp.ColStart[j]), int(sp.ColStart[j+1])
			cnt := hi - lo
			if cnt < k || cnt > k+1 {
				t.Fatalf("task %d kept %d candidates, want %d or %d", j, cnt, k, k+1)
			}
			inSet := make(map[int]bool, cnt)
			prev := int32(-1)
			for c := lo; c < hi; c++ {
				i := sp.ColRow[c]
				if i <= prev {
					t.Fatalf("task %d candidates not strictly increasing", j)
				}
				prev = i
				inSet[int(i)] = true
			}
			// The best-reliability cluster must be a candidate.
			relBest := 0
			for i := 1; i < m; i++ {
				if p.A.At(i, j) > p.A.At(relBest, j) {
					relBest = i
				}
			}
			if !inSet[relBest] {
				t.Fatalf("task %d dropped its best-reliability cluster %d", j, relBest)
			}
			// Every non-candidate must be at least as slow as the slowest
			// kept time-candidate (ignoring the reliability extra).
			times := make([]float64, 0, m)
			for i := 0; i < m; i++ {
				times = append(times, p.T.At(i, j))
			}
			sorted := append([]float64(nil), times...)
			insertionSort(sorted)
			kthTime := sorted[k-1]
			for i := 0; i < m; i++ {
				if !inSet[i] && times[i] < kthTime {
					t.Fatalf("task %d dropped cluster %d with t=%g below k-th time %g", j, i, times[i], kthTime)
				}
			}
		}
	}
}

func insertionSort(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// TestHierarchicalFeasible is the reconciliation proof obligation: over
// ≥100 random capacitated instances, the hierarchical solve (cells > 1)
// followed by reconciliation and sparse repair always lands within
// capacity, with every task on one of its candidates.
func TestHierarchicalFeasible(t *testing.T) {
	r := rng.New(45)
	for trial := 0; trial < 120; trial++ {
		m := 4 + r.Intn(12)
		n := 8 + r.Intn(40)
		k := 2 + r.Intn(3)
		p := randomProblem(r, m, n)
		sp, err := PruneTopKChecked(p, k)
		if err != nil {
			t.Fatalf("PruneTopKChecked: %v", err)
		}
		// Loose-but-binding caps: ~1.5× the balanced load.
		cap := (3*n)/(2*m) + 1
		sp.Cap = make([]int, m)
		for i := range sp.Cap {
			sp.Cap[i] = cap
		}
		cells := 2 + r.Intn(3)
		res := SolveHierarchical(sp, HierOptions{
			Cells: cells, Solve: SolveOptions{Iters: 40}, Repair: true,
		}, NewHierWorkspace())
		if !res.Reconcile.Feasible {
			t.Fatalf("trial %d: reconciler reported infeasible (m=%d n=%d k=%d cap=%d)", trial, m, n, k, cap)
		}
		counts := make([]int, m)
		for j, i := range res.Assign {
			counts[i]++
			if _, ok := sp.entryOf(i, j); !ok {
				t.Fatalf("trial %d: task %d assigned to non-candidate %d", trial, j, i)
			}
		}
		for i, c := range counts {
			if c > sp.Cap[i] {
				t.Fatalf("trial %d: cluster %d holds %d tasks over cap %d", trial, i, c, sp.Cap[i])
			}
		}
	}
}

// TestReconcileTerminates drives the reconciler from a maximally skewed
// start (everything piled on one cluster) and checks it resolves within
// the chain bound.
func TestReconcileTerminates(t *testing.T) {
	r := rng.New(46)
	for trial := 0; trial < 40; trial++ {
		m, n := 3+r.Intn(8), 5+r.Intn(30)
		p := randomProblem(r, m, n)
		sp := sparseFromDense(t, p)
		cap := n/m + 1
		sp.Cap = make([]int, m)
		for i := range sp.Cap {
			sp.Cap[i] = cap
		}
		assign := make([]int, n)
		info := ReconcileCapacities(sp, assign)
		if !info.Feasible {
			t.Fatalf("trial %d: full candidate structure must be feasible", trial)
		}
		counts := make([]int, m)
		for _, i := range assign {
			counts[i]++
		}
		for i, c := range counts {
			if c > sp.Cap[i] {
				t.Fatalf("trial %d: cluster %d over cap after reconcile", trial, i)
			}
		}
		if info.Chains > n {
			t.Fatalf("trial %d: %d chains for %d tasks", trial, info.Chains, n)
		}
	}
}

// TestReconcileDetectsInfeasible: when a task set's candidate clusters are
// jointly under-capacitated, the reconciler must report infeasibility
// rather than loop or panic.
func TestReconcileDetectsInfeasible(t *testing.T) {
	// 2 clusters, 3 tasks, every task's only candidate is cluster 0 with
	// cap 1: overflow can never reach cluster 1.
	b := NewSparseBuilder(2, 3)
	for j := 0; j < 3; j++ {
		b.AddCandidate(j, 0, 1, 0.9)
	}
	sp, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sp.Cap = []int{1, 3}
	assign := []int{0, 0, 0}
	info := ReconcileCapacities(sp, assign)
	if info.Feasible {
		t.Fatal("reconciler claimed feasibility on a Hall-violating instance")
	}
	hall := info.Hall
	if hall == nil {
		t.Fatal("infeasible reconcile carried no Hall certificate")
	}
	// The violating set is {0} alone: every task's only candidate is
	// cluster 0, so the BFS never reaches cluster 1.
	if hall.Source != 0 {
		t.Fatalf("certificate source %d, want 0", hall.Source)
	}
	if len(hall.Clusters) != 1 || hall.Clusters[0] != 0 {
		t.Fatalf("certificate set %v, want [0]", hall.Clusters)
	}
	if hall.Demand != 3 || hall.Capacity != 1 {
		t.Fatalf("certificate demand/capacity %d/%d, want 3/1", hall.Demand, hall.Capacity)
	}
	if hall.Demand <= hall.Capacity {
		t.Fatal("certificate does not witness a violation")
	}
	if !errors.Is(hall, mfcperr.ErrInfeasible) {
		t.Fatalf("certificate %v does not wrap ErrInfeasible", hall)
	}
}

// TestHallCertificateChecks property-tests the certificate on random
// under-capacitated instances: whenever reconciliation reports
// infeasibility, the returned set must be a genuine Hall violation —
// closed under candidacy for its assigned tasks and over-demanded.
func TestHallCertificateChecks(t *testing.T) {
	r := rng.New(93)
	for trial := 0; trial < 60; trial++ {
		m, n := 3+r.Intn(6), 6+r.Intn(18)
		b := NewSparseBuilder(m, n)
		assign := make([]int, n)
		for j := 0; j < n; j++ {
			// 1-2 candidates per task: sparse enough to starve regularly.
			c0 := r.Intn(m)
			b.AddCandidate(j, c0, 1+r.Float64(), 0.9)
			if r.Intn(2) == 0 {
				b.AddCandidate(j, (c0+1)%m, 1+r.Float64(), 0.9)
			}
			assign[j] = c0
		}
		sp, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		sp.Cap = make([]int, m)
		for i := range sp.Cap {
			sp.Cap[i] = 1 // n > m guarantees frequent overflow
		}
		info := ReconcileCapacities(sp, append([]int(nil), assign...))
		if info.Feasible {
			if info.Hall != nil {
				t.Fatalf("trial %d: feasible reconcile carried a certificate", trial)
			}
			continue
		}
		hall := info.Hall
		if hall == nil {
			t.Fatalf("trial %d: infeasible without certificate", trial)
		}
		if hall.Demand <= hall.Capacity {
			t.Fatalf("trial %d: demand %d ≤ capacity %d", trial, hall.Demand, hall.Capacity)
		}
		inSet := make([]bool, m)
		capSum := 0
		for _, c := range hall.Clusters {
			inSet[c] = true
			capSum += sp.Cap[c]
		}
		if capSum != hall.Capacity {
			t.Fatalf("trial %d: capacity %d ≠ set sum %d", trial, hall.Capacity, capSum)
		}
		if !inSet[hall.Source] {
			t.Fatalf("trial %d: source %d outside its own set", trial, hall.Source)
		}
	}
}

// TestRepairSparseReliability: whenever the candidate structure admits a
// γ-feasible assignment (the mean of per-task best reliabilities meets γ),
// phase 1 of the sparse repair reaches feasibility.
func TestRepairSparseReliability(t *testing.T) {
	r := rng.New(47)
	for trial := 0; trial < 80; trial++ {
		m, n := 3+r.Intn(8), 4+r.Intn(20)
		k := 2 + r.Intn(m-1)
		p := randomProblem(r, m, n)
		sp, err := PruneTopKChecked(p, k)
		if err != nil {
			t.Fatalf("PruneTopKChecked: %v", err)
		}
		// Best achievable mean reliability over the candidate lists.
		bestSum := 0.0
		for j := 0; j < n; j++ {
			lo, hi := int(sp.ColStart[j]), int(sp.ColStart[j+1])
			best := 0.0
			for c := lo; c < hi; c++ {
				if a := sp.A[sp.ColEntry[c]]; a > best {
					best = a
				}
			}
			bestSum += best
		}
		achievable := bestSum/float64(n) >= sp.Gamma
		// Start from the worst-reliability candidate per task.
		assign := make([]int, n)
		for j := 0; j < n; j++ {
			lo, hi := int(sp.ColStart[j]), int(sp.ColStart[j+1])
			worst, wi := math.Inf(1), 0
			for c := lo; c < hi; c++ {
				if a := sp.A[sp.ColEntry[c]]; a < worst {
					worst, wi = a, int(sp.ColRow[c])
				}
			}
			assign[j] = wi
		}
		out, info := RepairSparse(sp, assign)
		if achievable && info.RelAfter < sp.Gamma-1e-12 {
			t.Fatalf("trial %d: achievable γ=%g but repair ended at %g", trial, sp.Gamma, info.RelAfter)
		}
		if info.CostAfter > info.CostBefore+1e-9 && info.FeasMoves == 0 {
			t.Fatalf("trial %d: phase-2-only repair worsened cost %g → %g", trial, info.CostBefore, info.CostAfter)
		}
		for j, i := range out {
			if _, ok := sp.entryOf(i, j); !ok {
				t.Fatalf("trial %d: repair moved task %d off its candidate list", trial, j)
			}
		}
	}
}

// TestSparseBuilderRejects checks builder-level validation errors.
func TestSparseBuilderRejects(t *testing.T) {
	b := NewSparseBuilder(2, 2)
	b.AddCandidate(0, 0, 1, 0.9)
	b.AddCandidate(0, 0, 2, 0.8) // duplicate pair
	b.AddCandidate(1, 1, 1, 0.9)
	if _, err := b.Build(); !errors.Is(err, mfcperr.ErrBadShape) {
		t.Fatalf("duplicate pair: got %v, want ErrBadShape", err)
	}
	b2 := NewSparseBuilder(2, 2)
	b2.AddCandidate(0, 0, 1, 0.9)
	if _, err := b2.Build(); !errors.Is(err, mfcperr.ErrInfeasible) {
		t.Fatalf("empty task: got %v, want ErrInfeasible", err)
	}
	b3 := NewSparseBuilder(2, 1)
	b3.AddCandidate(0, 0, math.NaN(), 0.9)
	if _, err := b3.Build(); !errors.Is(err, mfcperr.ErrBadConfig) {
		t.Fatalf("NaN value: got %v, want ErrBadConfig", err)
	}
}

// TestSolveRelaxedSparseZeroAllocs pins the sparse zero-allocation
// contract: after workspace warmup, a solve allocates nothing.
func TestSolveRelaxedSparseZeroAllocs(t *testing.T) {
	r := rng.New(48)
	p := randomProblem(r, 8, 40)
	sp, err := PruneTopKChecked(p, 4)
	if err != nil {
		t.Fatalf("PruneTopKChecked: %v", err)
	}
	ws := NewSparseWorkspace(sp)
	SolveRelaxedSparseWS(sp, SolveOptions{Iters: 10}, ws, nil)
	allocs := testing.AllocsPerRun(10, func() {
		SolveRelaxedSparseWS(sp, SolveOptions{Iters: 10}, ws, nil)
	})
	if allocs != 0 {
		t.Fatalf("sparse solve allocates %v objects per run, want 0", allocs)
	}
}
