package matching

import (
	"math"
	"testing"

	"mfcp/internal/cluster"
	"mfcp/internal/mat"
	"mfcp/internal/rng"
)

func TestAnnealValidAssignment(t *testing.T) {
	r := rng.New(101)
	p := randomProblem(r, 3, 8)
	assign := SolveAnneal(p, AnnealOptions{Iters: 1500}, r.Split("sa"))
	if len(assign) != 8 {
		t.Fatalf("len %d", len(assign))
	}
	for _, a := range assign {
		if a < 0 || a >= 3 {
			t.Fatalf("cluster %d out of range", a)
		}
	}
}

func TestAnnealNearExact(t *testing.T) {
	r := rng.New(102)
	worst := 0.0
	for trial := 0; trial < 15; trial++ {
		p := randomProblem(r, 3, 7)
		_, exactCost, feasible := SolveExact(p)
		if !feasible {
			continue
		}
		assign := SolveAnneal(p, AnnealOptions{}, r.SplitIndexed("sa", trial))
		if ratio := p.DiscreteCost(assign) / exactCost; ratio > worst {
			worst = ratio
		}
	}
	if worst > 1.25 {
		t.Fatalf("annealing/exact ratio up to %v", worst)
	}
}

func TestAnnealRespectsReliabilityWhenAchievable(t *testing.T) {
	T := mat.FromRows([][]float64{{1, 1, 1, 1}, {1.5, 1.5, 1.5, 1.5}})
	A := mat.FromRows([][]float64{{0.6, 0.6, 0.6, 0.6}, {0.99, 0.99, 0.99, 0.99}})
	p := NewProblem(T, A)
	p.Gamma = 0.9
	assign := SolveAnneal(p, AnnealOptions{}, rng.New(103))
	if p.DiscreteReliability(assign) < p.Gamma {
		t.Fatalf("annealing ignored achievable γ: rel=%v", p.DiscreteReliability(assign))
	}
}

func TestAnnealHandlesNonConvex(t *testing.T) {
	// Strong parallel speedups: packing can beat spreading; annealing
	// searches the discrete space natively. Verify against brute force.
	T := mat.FromRows([][]float64{{1, 1, 1}, {1.05, 1.05, 1.05}})
	A := mat.NewDense(2, 3).Fill(0.95)
	p := NewProblem(T, A)
	p.Gamma = 0.5
	p.Speedups = []cluster.SpeedupCurve{{Floor: 0.3, Rate: 3}, {Floor: 0.3, Rate: 3}}
	assign := SolveAnneal(p, AnnealOptions{}, rng.New(104))
	got := p.DiscreteCost(assign)
	_, exactCost, _ := SolveExact(p)
	if got > exactCost+1e-9 {
		t.Fatalf("annealing cost %v above exact %v", got, exactCost)
	}
}

func TestAnnealDeterministicPerStream(t *testing.T) {
	r1 := rng.New(105)
	r2 := rng.New(105)
	p := randomProblem(rng.New(106), 3, 6)
	a := SolveAnneal(p, AnnealOptions{Iters: 800}, r1)
	b := SolveAnneal(p, AnnealOptions{Iters: 800}, r2)
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("annealing not reproducible for identical streams")
		}
	}
}

func TestAnnealCostFinite(t *testing.T) {
	r := rng.New(107)
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(r, 4, 9)
		assign := SolveAnneal(p, AnnealOptions{Iters: 500, Restarts: 1}, r.SplitIndexed("sa", trial))
		if c := p.DiscreteCost(assign); math.IsNaN(c) || math.IsInf(c, 0) || c <= 0 {
			t.Fatalf("cost %v", c)
		}
	}
}

func BenchmarkAnneal3x10(b *testing.B) {
	p := randomProblem(rng.New(1), 3, 10)
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveAnneal(p, AnnealOptions{Iters: 2000, Restarts: 2}, r.SplitIndexed("b", i))
	}
}
