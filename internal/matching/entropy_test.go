package matching

import (
	"math"
	"testing"

	"mfcp/internal/mat"
	"mfcp/internal/rng"
)

func TestEntropyGradientMatchesFiniteDiff(t *testing.T) {
	r := rng.New(21)
	p := randomProblem(r, 3, 4)
	p.Entropy = 0.07
	X := p.UniformX()
	for k := range X.Data {
		X.Data[k] += r.Uniform(-0.05, 0.05)
	}
	normalizeColumns(X)
	analytic := p.GradX(X, nil)
	const h = 1e-6
	for k := range X.Data {
		orig := X.Data[k]
		X.Data[k] = orig + h
		up := p.F(X)
		X.Data[k] = orig - h
		down := p.F(X)
		X.Data[k] = orig
		fd := (up - down) / (2 * h)
		if math.Abs(fd-analytic.Data[k]) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("entropy grad[%d]: analytic %v fd %v", k, analytic.Data[k], fd)
		}
	}
}

func TestEntropyKeepsOptimumInterior(t *testing.T) {
	// With entropy the relaxed optimum must stay strictly inside the
	// simplex even when one cluster dominates.
	T := mat.FromRows([][]float64{{0.1}, {5}, {5}})
	A := mat.NewDense(3, 1).Fill(0.95)
	p := NewProblem(T, A)
	p.Entropy = 0.1
	X := SolveRelaxed(p, SolveOptions{Iters: 800})
	for i := 0; i < 3; i++ {
		v := X.At(i, 0)
		if v <= 1e-6 || v >= 1-1e-6 {
			t.Fatalf("entropy-regularized optimum pinned to boundary: %v", X)
		}
	}
	// And it must still prefer the fast cluster.
	if X.At(0, 0) < X.At(1, 0) || X.At(0, 0) < X.At(2, 0) {
		t.Fatalf("entropy destroyed the preference ordering: %v", X)
	}
}

func TestEntropyVanishingRecoversOriginal(t *testing.T) {
	r := rng.New(22)
	p := randomProblem(r, 3, 5)
	base := SolveRelaxed(p, SolveOptions{Iters: 500})
	small := *p
	small.Entropy = 1e-6
	reg := SolveRelaxed(&small, SolveOptions{Iters: 500})
	// Rounded decisions must agree when the regularizer is negligible.
	a, b := Round(base), Round(reg)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("tiny entropy changed the rounded matching: %v vs %v", a, b)
		}
	}
}

func TestWithPredictionPreservesEntropy(t *testing.T) {
	r := rng.New(23)
	p := randomProblem(r, 2, 3)
	p.Entropy = 0.05
	q := p.WithPrediction(p.T.Clone(), nil)
	if q.Entropy != 0.05 {
		t.Fatal("WithPrediction dropped entropy")
	}
}

func TestPGDMethodProducesCompetitiveMatchings(t *testing.T) {
	// Algorithm 1 as printed (Euclidean step + column softmax) is not a
	// monotone descent method — the softmax re-projection can raise F — but
	// after rounding and repair its matchings must stay competitive with
	// the mirror-descent pipeline.
	r := rng.New(24)
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(r, 3, 6)
		Xp := SolveRelaxed(p, SolveOptions{Method: MethodPGD, Iters: 300, LR: 0.5})
		pgd := Repair(p, Round(Xp))
		Xm := SolveRelaxed(p, SolveOptions{Method: MethodMirror, Iters: 300})
		mirror := Repair(p, Round(Xm))
		// Algorithm 1's printed form is markedly weaker than mirror descent
		// (its softmax re-projection pulls iterates toward uniform); assert
		// only that the pipeline stays within a small constant factor.
		if p.DiscreteCost(pgd) > 2.2*p.DiscreteCost(mirror)+1e-9 {
			t.Fatalf("PGD pipeline cost %v far above mirror %v",
				p.DiscreteCost(pgd), p.DiscreteCost(mirror))
		}
	}
}

func TestRepairIdempotentOnOptimal(t *testing.T) {
	r := rng.New(25)
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(r, 3, 6)
		exact, _, feasible := SolveExact(p)
		if !feasible {
			continue
		}
		repaired := Repair(p, exact)
		if p.DiscreteCost(repaired) > p.DiscreteCost(exact)+1e-12 {
			t.Fatal("Repair worsened the exact optimum")
		}
	}
}

func TestDiscreteLoadsMatchManual(t *testing.T) {
	T := mat.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	A := mat.NewDense(2, 3).Fill(0.9)
	p := NewProblem(T, A)
	loads := p.DiscreteLoads([]int{0, 1, 0})
	if !loads.Equal(mat.Vec{4, 5}, 1e-12) {
		t.Fatalf("loads=%v", loads)
	}
}
