package matching

import (
	"math"
	"testing"

	"mfcp/internal/cluster"
	"mfcp/internal/rng"
)

// repairReference is the seed (pre-incremental) Repair implementation,
// kept verbatim as the ground truth for the equivalence tests: it rescores
// every candidate with a from-scratch DiscreteCost/DiscreteReliability.
func repairReference(p *Problem, assign []int) []int {
	out := append([]int(nil), assign...)
	n := len(out)
	for iter := 0; iter < 2*n; iter++ {
		if p.DiscreteReliability(out) >= p.Gamma {
			break
		}
		bestJ, bestI, bestScore := -1, -1, 0.0
		baseCost := p.DiscreteCost(out)
		for j := 0; j < n; j++ {
			cur := out[j]
			for i := 0; i < p.M(); i++ {
				if i == cur {
					continue
				}
				dRel := p.A.At(i, j) - p.A.At(cur, j)
				if dRel <= 0 {
					continue
				}
				out[j] = i
				dCost := p.DiscreteCost(out) - baseCost
				out[j] = cur
				score := dRel / (1 + math.Max(dCost, 0))
				if score > bestScore {
					bestScore, bestJ, bestI = score, j, i
				}
			}
		}
		if bestJ < 0 {
			break
		}
		out[bestJ] = bestI
	}
	improved := true
	for pass := 0; improved && pass < 3*n; pass++ {
		improved = false
		baseCost := p.DiscreteCost(out)
		feasible := p.DiscreteReliability(out) >= p.Gamma
		accept := func(newCost float64, newFeasible bool) bool {
			return newCost < baseCost-1e-12 && (newFeasible || !feasible)
		}
		for j := 0; j < n; j++ {
			cur := out[j]
			for i := 0; i < p.M(); i++ {
				if i == cur {
					continue
				}
				out[j] = i
				newCost := p.DiscreteCost(out)
				if accept(newCost, p.DiscreteReliability(out) >= p.Gamma) {
					baseCost = newCost
					feasible = p.DiscreteReliability(out) >= p.Gamma
					cur = i
					improved = true
				} else {
					out[j] = cur
				}
			}
		}
		for j1 := 0; j1 < n; j1++ {
			for j2 := j1 + 1; j2 < n; j2++ {
				if out[j1] == out[j2] {
					continue
				}
				out[j1], out[j2] = out[j2], out[j1]
				newCost := p.DiscreteCost(out)
				if accept(newCost, p.DiscreteReliability(out) >= p.Gamma) {
					baseCost = newCost
					feasible = p.DiscreteReliability(out) >= p.Gamma
					improved = true
				} else {
					out[j1], out[j2] = out[j2], out[j1]
				}
			}
		}
	}
	return out
}

// repairInstance draws one randomized repair scenario: problem, objective
// variant, optional speedup curves, reliability threshold, and a starting
// assignment ranging from uniform-random to adversarially clustered.
func repairInstance(s *rng.Source) (*Problem, []int) {
	m := 2 + s.Intn(5)
	n := 3 + s.Intn(12)
	p := randomProblem(s, m, n)
	switch s.Intn(3) {
	case 1:
		p.Objective = LinearSum
	case 2:
		sp := make([]cluster.SpeedupCurve, m)
		for i := range sp {
			sp[i] = cluster.SpeedupCurve{Floor: s.Uniform(0.4, 0.9), Rate: s.Uniform(0.1, 1)}
		}
		p.Speedups = sp
	}
	// Mix easy and hard thresholds so both repair phases get exercised.
	p.Gamma = s.Uniform(0.75, 0.95)
	start := make([]int, n)
	if s.Bernoulli(0.3) {
		cram := s.Intn(m)
		for j := range start {
			start[j] = cram // worst case: everything on one cluster
		}
	} else {
		for j := range start {
			start[j] = s.Intn(m)
		}
	}
	return p, start
}

// TestRepairMatchesReference runs the incremental Repair against the seed
// recompute-everything implementation on 150 seeded random instances and
// requires the identical final assignment — i.e. the identical sequence of
// accepted moves — on every one.
func TestRepairMatchesReference(t *testing.T) {
	r := rng.New(424242)
	for k := 0; k < 150; k++ {
		s := r.SplitIndexed("inst", k)
		p, start := repairInstance(s)
		want := repairReference(p, start)
		got := Repair(p, start)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("instance %d (%dx%d, obj=%v, γ=%.3f): assignment diverged at task %d: got %v want %v",
					k, p.M(), p.N(), p.Objective, p.Gamma, j, got, want)
			}
		}
	}
}

// TestRepairStateStaysInSync is the invariant property test: after long
// random sequences of incremental moves and swaps, the maintained loads,
// counts, and reliability sum must agree with a from-scratch recomputation.
func TestRepairStateStaysInSync(t *testing.T) {
	r := rng.New(77)
	for k := 0; k < 30; k++ {
		s := r.SplitIndexed("sync", k)
		p, start := repairInstance(s)
		m, n := p.M(), p.N()
		st := newRepairState(p, start)
		for step := 0; step < 500; step++ {
			if s.Bernoulli(0.5) {
				j := s.Intn(n)
				i := s.Intn(m)
				if i == st.assign[j] {
					continue
				}
				st.applyMove(j, i)
			} else {
				j1, j2 := s.Intn(n), s.Intn(n)
				if j1 == j2 || st.assign[j1] == st.assign[j2] {
					continue
				}
				st.applySwap(j1, j2)
			}
		}
		fresh := newRepairState(p, st.assign)
		const tol = 1e-9
		for i := 0; i < m; i++ {
			if st.counts[i] != fresh.counts[i] {
				t.Fatalf("instance %d: counts[%d] drifted: %d vs %d", k, i, st.counts[i], fresh.counts[i])
			}
			if math.Abs(st.raw[i]-fresh.raw[i]) > tol {
				t.Fatalf("instance %d: raw[%d] drifted by %g", k, i, st.raw[i]-fresh.raw[i])
			}
			if math.Abs(st.scaled[i]-fresh.scaled[i]) > tol {
				t.Fatalf("instance %d: scaled[%d] drifted by %g", k, i, st.scaled[i]-fresh.scaled[i])
			}
		}
		if math.Abs(st.relSum-fresh.relSum) > tol {
			t.Fatalf("instance %d: relSum drifted by %g", k, st.relSum-fresh.relSum)
		}
		if math.Abs(st.cost()-p.DiscreteCost(st.assign)) > tol {
			t.Fatalf("instance %d: incremental cost drifted from DiscreteCost", k)
		}
	}
}

// TestRepairDeltaMatchesRecompute checks candidate scoring directly: every
// moveDelta/swapDelta must equal the cost and reliability of mutating a
// copy and recomputing from scratch.
func TestRepairDeltaMatchesRecompute(t *testing.T) {
	r := rng.New(31)
	for k := 0; k < 40; k++ {
		s := r.SplitIndexed("delta", k)
		p, start := repairInstance(s)
		m, n := p.M(), p.N()
		st := newRepairState(p, start)
		const tol = 1e-10
		for trial := 0; trial < 50; trial++ {
			j := s.Intn(n)
			i := s.Intn(m)
			if i != st.assign[j] {
				cost, rel := st.moveDelta(j, i)
				mut := append([]int(nil), start...)
				mut[j] = i
				if math.Abs(cost-p.DiscreteCost(mut)) > tol || math.Abs(rel-p.DiscreteReliability(mut)) > tol {
					t.Fatalf("instance %d: moveDelta(%d,%d) mismatch", k, j, i)
				}
			}
			j2 := s.Intn(n)
			if j != j2 && st.assign[j] != st.assign[j2] {
				cost, rel := st.swapDelta(j, j2)
				mut := append([]int(nil), start...)
				mut[j], mut[j2] = mut[j2], mut[j]
				if math.Abs(cost-p.DiscreteCost(mut)) > tol || math.Abs(rel-p.DiscreteReliability(mut)) > tol {
					t.Fatalf("instance %d: swapDelta(%d,%d) mismatch", k, j, j2)
				}
			}
		}
	}
}
