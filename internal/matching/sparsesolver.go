package matching

import (
	"math"

	"mfcp/internal/mat"
)

// SparseWorkspace bundles the scratch a sparse solve needs, sized by entry
// count rather than M×N. The iterate, gradient, and convergence scratch are
// flat CSR-ordered entry arrays; per-column and per-row scratch are sized N
// and M. Like Workspace, it reuses backing storage across Resets, and once
// warmed the sparse solve paths allocate nothing
// (TestSolveRelaxedSparseZeroAllocs).
//
// Not safe for concurrent use; the hierarchical solver keeps one per cell
// shard.
type SparseWorkspace struct {
	// X is the iterate over CSR entries; SolveRelaxedSparseWS returns it
	// directly, valid until the workspace's next use.
	X []float64
	// Grad and Prev are the gradient and convergence-check scratch.
	Grad []float64
	Prev []float64

	// ColSum and Uniform are length-N column scratch: running column sums
	// for renormalization and the 1/|cand(j)| fallback values.
	ColSum  []float64
	Uniform []float64

	// Loads and Weights are length-M per-cluster scratch; Col and Col2 are
	// the PGD softmax gather/scatter scratch (sized to the widest column).
	Loads   mat.Vec
	Weights mat.Vec
	Col     mat.Vec
	Col2    mat.Vec

	// Info is the convergence record of the last solve against this
	// workspace — the same contract as Workspace.Info.
	Info SolveInfo
}

// NewSparseWorkspace returns a workspace sized for sp.
func NewSparseWorkspace(sp *SparseProblem) *SparseWorkspace {
	w := &SparseWorkspace{}
	w.ResetFor(sp)
	return w
}

// ResetFor sizes the workspace for sp, reusing backing storage when it has
// capacity, and recomputes the per-column uniform fallbacks.
func (w *SparseWorkspace) ResetFor(sp *SparseProblem) {
	nnz, n, m := sp.NNZ(), sp.Ndim, sp.Mdim
	w.X = growFloats(w.X, nnz)
	w.Grad = growFloats(w.Grad, nnz)
	w.Prev = growFloats(w.Prev, nnz)
	w.ColSum = growFloats(w.ColSum, n)
	w.Uniform = growFloats(w.Uniform, n)
	w.Loads = growVec(w.Loads, m)
	w.Weights = growVec(w.Weights, m)
	maxCand := 0
	for j := 0; j < n; j++ {
		c := sp.CandCount(j)
		w.Uniform[j] = 1 / float64(c)
		if c > maxCand {
			maxCand = c
		}
	}
	w.Col = growVec(w.Col, maxCand)
	w.Col2 = growVec(w.Col2, maxCand)
}

// growFloats returns v resliced to length n, reallocating only when the
// backing array is too small.
func growFloats(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

// LoadsSparse writes each cluster's speedup-adjusted load into dst
// (allocating when nil) and returns it — the sparse analogue of
// Problem.Loads, walking candidate entries in CSR order so the float
// accumulation sequence matches the dense row walk when every pair is
// stored.
func (sp *SparseProblem) LoadsSparse(x []float64, dst mat.Vec) mat.Vec {
	if dst == nil {
		dst = mat.NewVec(sp.Mdim)
	}
	for i := 0; i < sp.Mdim; i++ {
		lo, hi := sp.row(i)
		sum := 0.0
		for e := lo; e < hi; e++ {
			sum += x[e]
		}
		dot := 0.0
		for e := lo; e < hi; e++ {
			dot += x[e] * sp.T[e]
		}
		dst[i] = sp.zeta(i, sum) * dot
	}
	return dst
}

// ReliabilityMarginSparse evaluates g(X, A) = c·Σ xᵀa − γ over the stored
// entries, accumulating per row and then across rows in increasing cluster
// order (Problem.ReliabilityMargin's exact sequence at full sparsity).
func (sp *SparseProblem) ReliabilityMarginSparse(x []float64) float64 {
	s := 0.0
	for i := 0; i < sp.Mdim; i++ {
		lo, hi := sp.row(i)
		rowDot := 0.0
		for e := lo; e < hi; e++ {
			rowDot += x[e] * sp.A[e]
		}
		s += rowDot
	}
	return s*sp.normConst() - sp.Gamma
}

// GradSparseWS writes ∇F over the stored entries into gd, drawing scratch
// from ws. Per-entry formula and per-row accumulation order are identical
// to Problem.GradXWS — including computing the full wi·(ζ·t + ζ'·dot) even
// when ζ≡1, so no float sequence diverges from the dense path.
func (sp *SparseProblem) GradSparseWS(x, gd []float64, ws *SparseWorkspace) {
	loads := sp.LoadsSparse(x, ws.Loads)
	var weights mat.Vec
	if sp.Objective == LinearSum {
		weights = ws.Weights
		weights.Fill(1)
	} else {
		weights = mat.SoftmaxWeights(loads, sp.Beta, ws.Weights)
	}
	u := sp.ReliabilityMarginSparse(x)
	bg := sp.barrierGradU(u) * sp.normConst()
	for i := 0; i < sp.Mdim; i++ {
		lo, hi := sp.row(i)
		k := 0.0
		for e := lo; e < hi; e++ {
			k += x[e]
		}
		z := sp.zeta(i, k)
		dz := sp.zetaDeriv(i, k)
		dot := 0.0
		for e := lo; e < hi; e++ {
			dot += x[e] * sp.T[e]
		}
		wi := weights[i]
		for e := lo; e < hi; e++ {
			gd[e] = wi*(z*sp.T[e]+dz*dot) + bg*sp.A[e]
			if sp.Entropy > 0 {
				xv := x[e]
				if xv < entropyFloor {
					xv = entropyFloor
				}
				gd[e] += sp.Entropy * (1 + math.Log(xv))
			}
		}
	}
}

// SolveRelaxedSparse minimizes the relaxed objective over the candidate
// entries with fresh buffers. See SolveRelaxedSparseWS.
func SolveRelaxedSparse(sp *SparseProblem, opts SolveOptions) []float64 {
	return SolveRelaxedSparseWS(sp, opts, nil, nil)
}

// SolveRelaxedSparseWS runs the mirror-descent (or PGD) solve over the
// candidate entries only: per iteration it walks NNZ entries instead of
// M·N. The returned slice is ws.X in CSR entry order — x[e] is the mass
// task ColIdx[e] places on entry e's cluster; each task's candidate masses
// sum to 1.
//
// init optionally seeds the iterate in CSR entry order (the warm-start
// path); it is column-normalized like the dense solver's Init, with
// negative entries clamped, and nil starts each task uniform over its
// candidates.
//
// With every cluster stored as a candidate for every task (k = M) the
// entry walks visit the same (i, j) pairs in the same order as the dense
// kernels, so the result is bit-for-bit equal to SolveRelaxedWS
// (TestSparseDenseEquivalence). A nil ws allocates fresh buffers.
func SolveRelaxedSparseWS(sp *SparseProblem, opts SolveOptions, ws *SparseWorkspace, init []float64) []float64 {
	opts.fillDefaults()
	if ws == nil {
		ws = NewSparseWorkspace(sp)
	} else {
		ws.ResetFor(sp)
	}
	nnz := sp.NNZ()
	x, gd, prev := ws.X, ws.Grad, ws.Prev
	colSum := ws.ColSum
	if init != nil {
		copy(x, init[:nnz])
		normalizeSparseColumns(sp, x, ws)
	} else {
		for e := range x {
			x[e] = ws.Uniform[sp.ColIdx[e]]
		}
	}
	copy(prev, x)
	ws.Info = SolveInfo{Iters: opts.Iters}
	for it := 0; it < opts.Iters; it++ {
		sp.GradSparseWS(x, gd, ws)
		switch opts.Method {
		case MethodPGD:
			// Euclidean step, then per-column softmax over the candidates
			// (gather → softmax → scatter through the CSC view).
			for e := range x {
				x[e] -= opts.LR * gd[e]
			}
			for j := 0; j < sp.Ndim; j++ {
				lo, hi := int(sp.ColStart[j]), int(sp.ColStart[j+1])
				col := ws.Col[:hi-lo]
				for c := lo; c < hi; c++ {
					col[c-lo] = x[sp.ColEntry[c]]
				}
				sm := col.Softmax(1, ws.Col2[:hi-lo])
				for c := lo; c < hi; c++ {
					x[sp.ColEntry[c]] = sm[c-lo]
				}
			}
		default:
			// Exponentiated gradient, fused with the column sums: entries
			// run in CSR order, so each column's sum accumulates over
			// increasing cluster index — the dense solver's exact sequence.
			for j := range colSum {
				colSum[j] = 0
			}
			for e := range x {
				v := x[e] * math.Exp(-opts.LR*gd[e])
				x[e] = v
				colSum[sp.ColIdx[e]] += v
			}
			for e := range x {
				j := sp.ColIdx[e]
				sum := colSum[j]
				if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
					// Blown-up exponent: reset the column to uniform over
					// its candidates rather than propagating NaNs.
					x[e] = ws.Uniform[j]
				} else {
					x[e] /= sum
				}
			}
		}
		if it%5 == 4 {
			maxDelta := 0.0
			for e := range x {
				if d := math.Abs(x[e] - prev[e]); d > maxDelta {
					maxDelta = d
				}
			}
			ws.Info.FinalDelta = maxDelta
			if maxDelta < opts.Tol {
				ws.Info.Iters = it + 1
				ws.Info.Converged = true
				break
			}
			copy(prev, x)
		}
	}
	return x
}

// normalizeSparseColumns projects each task's candidate masses onto the
// simplex: clamp negatives, divide by the column sum, uniform fallback —
// normalizeColumns over candidate lists (CSC order accumulates over
// increasing cluster index, matching the dense column walk).
func normalizeSparseColumns(sp *SparseProblem, x []float64, ws *SparseWorkspace) {
	for j := 0; j < sp.Ndim; j++ {
		lo, hi := int(sp.ColStart[j]), int(sp.ColStart[j+1])
		sum := 0.0
		for c := lo; c < hi; c++ {
			e := sp.ColEntry[c]
			v := x[e]
			if v < 0 {
				v = 0
				x[e] = 0
			}
			sum += v
		}
		if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
			for c := lo; c < hi; c++ {
				x[sp.ColEntry[c]] = ws.Uniform[j]
			}
			continue
		}
		for c := lo; c < hi; c++ {
			x[sp.ColEntry[c]] /= sum
		}
	}
}

// RoundSparse converts a relaxed sparse solution to a discrete assignment
// by per-task argmax over the candidate entries. Ties break toward the
// lowest cluster index, matching Round.
func RoundSparse(sp *SparseProblem, x []float64) []int {
	assign := make([]int, sp.Ndim)
	RoundSparseInto(sp, x, assign)
	return assign
}

// RoundSparseInto is RoundSparse writing into assign (len N).
func RoundSparseInto(sp *SparseProblem, x []float64, assign []int) {
	for j := 0; j < sp.Ndim; j++ {
		lo, hi := int(sp.ColStart[j]), int(sp.ColStart[j+1])
		best, bi := math.Inf(-1), 0
		for c := lo; c < hi; c++ {
			if v := x[sp.ColEntry[c]]; v > best {
				best, bi = v, int(sp.ColRow[c])
			}
		}
		assign[j] = bi
	}
}
