package matching

import (
	"math"
	"sort"
)

// SolveExact finds the optimal discrete assignment by depth-first branch
// and bound. It minimizes the (speedup-adjusted) makespan subject to the
// mean-reliability constraint, using the problem's T and A as ground truth.
//
// It returns the best assignment, its cost, and whether any
// reliability-feasible assignment exists (when none does, it returns the
// reliability-maximizing assignment among cost-minimal ones found and
// feasible=false).
//
// Complexity is O(M^N) worst case; pruning makes M=3, N≤15 fast. Callers
// should gate on instance size.
func SolveExact(p *Problem) (assign []int, cost float64, feasible bool) {
	m, n := p.M(), p.N()
	// Branch on tasks in decreasing max-time order: placing the heaviest
	// tasks first makes the load lower bound bite early.
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	maxT := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			if v := p.T.At(i, j); v > maxT[j] {
				maxT[j] = v
			}
		}
	}
	sort.Slice(order, func(a, b int) bool { return maxT[order[a]] > maxT[order[b]] })

	// bestRel[k] = sum over the last k tasks (in branch order) of their
	// maximum reliability — the optimistic completion used for pruning.
	bestRelSuffix := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		j := order[k]
		best := 0.0
		for i := 0; i < m; i++ {
			if v := p.A.At(i, j); v > best {
				best = v
			}
		}
		bestRelSuffix[k] = bestRelSuffix[k+1] + best
	}
	relNeeded := p.Gamma * float64(n)

	cur := make([]int, n)
	counts := make([]int, m)
	loads := make([]float64, m) // raw (un-ζ'd) load sums
	var best []int
	bestCost := math.Inf(1)
	bestFeasible := false
	bestRelValue := -1.0

	adjustedMax := func() float64 {
		mx := 0.0
		for i := 0; i < m; i++ {
			v := p.zeta(i, float64(counts[i])) * loads[i]
			if v > mx {
				mx = v
			}
		}
		return mx
	}

	var dfs func(k int, relSum float64)
	dfs = func(k int, relSum float64) {
		if k == n {
			c := adjustedMax()
			if p.Objective == LinearSum {
				c = 0
				for i := 0; i < m; i++ {
					c += p.zeta(i, float64(counts[i])) * loads[i]
				}
			}
			feas := relSum >= relNeeded-1e-12
			better := false
			switch {
			case feas && !bestFeasible:
				better = true
			case feas == bestFeasible && c < bestCost-1e-15:
				better = true
			case feas == bestFeasible && math.Abs(c-bestCost) <= 1e-15 && relSum > bestRelValue:
				better = true
			}
			if better {
				bestCost = c
				bestFeasible = feas
				bestRelValue = relSum
				best = append(best[:0], cur...)
			}
			return
		}
		// Reliability pruning: even assigning every remaining task to its
		// most reliable cluster cannot reach γ, and we already have a
		// feasible incumbent — prune.
		if bestFeasible && relSum+bestRelSuffix[k] < relNeeded-1e-12 {
			return
		}
		j := order[k]
		for i := 0; i < m; i++ {
			loads[i] += p.T.At(i, j)
			counts[i]++
			// Load lower bound: ζ is non-increasing in count, so the
			// current adjusted max only grows as more tasks arrive on the
			// same cluster ONLY in the sequential case. With speedups the
			// adjusted load can shrink; the bound below remains valid
			// because ζ ≥ Floor: use Floor-discounted loads.
			lb := 0.0
			for q := 0; q < m; q++ {
				floor := 1.0
				if p.Speedups != nil {
					floor = p.Speedups[q].Floor
				}
				if v := floor * loads[q]; v > lb {
					lb = v
				}
			}
			prune := bestFeasible && p.Objective == SmoothMakespan && lb >= bestCost-1e-15
			if !prune {
				cur[j] = i
				dfs(k+1, relSum+p.A.At(i, j))
			}
			loads[i] -= p.T.At(i, j)
			counts[i]--
		}
	}
	dfs(0, 0)
	return best, bestCost, bestFeasible
}

// ExactTractable reports whether an instance is small enough for SolveExact
// within interactive budgets.
func ExactTractable(m, n int) bool {
	return math.Pow(float64(m), float64(n)) <= 2e6
}

// BestAssignment picks the ground-truth optimal assignment for evaluation:
// exact branch and bound when tractable, otherwise the continuous solver
// pipeline with a high iteration budget.
func BestAssignment(p *Problem) []int {
	if ExactTractable(p.M(), p.N()) {
		assign, _, _ := SolveExact(p)
		return assign
	}
	_, assign := Solve(p, SolveOptions{Iters: 600})
	return assign
}
