package matching

import (
	"math"

	"mfcp/internal/mat"
)

// repairState maintains the per-cluster quantities Repair's local search
// scores candidates against, so a candidate move or swap is evaluated in
// O(1) deltas plus one O(M) scan instead of recomputing DiscreteCost and
// DiscreteReliability from scratch. Invariants (see the Repair doc comment
// and TestRepairStateStaysInSync):
//
//	raw[i]    = Σ_{j: assign[j]=i} T[i][j]
//	counts[i] = |{j: assign[j]=i}|
//	scaled[i] = ζ_i(counts[i]) · raw[i]
//	relSum    = Σ_j A[assign[j]][j]
//
// The state aliases the assignment slice it was built over: applyMove and
// applySwap mutate it in place and update the invariants incrementally.
type repairState struct {
	p      *Problem
	assign []int
	raw    mat.Vec
	scaled mat.Vec
	counts []int
	relSum float64
}

// newRepairState builds the state for assign (which it aliases, not copies).
func newRepairState(p *Problem, assign []int) *repairState {
	st := &repairState{
		p:      p,
		assign: assign,
		raw:    mat.NewVec(p.M()),
		scaled: mat.NewVec(p.M()),
		counts: make([]int, p.M()),
	}
	st.recompute()
	return st
}

// recompute rebuilds every maintained quantity from the assignment, summing
// in ascending task order exactly like DiscreteLoads/DiscreteReliability.
func (st *repairState) recompute() {
	st.raw.Fill(0)
	for i := range st.counts {
		st.counts[i] = 0
	}
	st.relSum = 0
	for j, i := range st.assign {
		st.raw[i] += st.p.T.At(i, j)
		st.counts[i]++
		st.relSum += st.p.A.At(i, j)
	}
	for i := range st.scaled {
		st.scaled[i] = st.p.zeta(i, float64(st.counts[i])) * st.raw[i]
	}
}

// cost returns the discrete objective of the current assignment: the max
// (or sum, for LinearSum) of the speedup-adjusted loads.
func (st *repairState) cost() float64 {
	if st.p.Objective == LinearSum {
		return st.scaled.Sum()
	}
	m, _ := st.scaled.Max()
	return m
}

// feasible reports whether the mean reliability meets γ.
func (st *repairState) feasible() bool {
	return st.relSum/float64(len(st.assign)) >= st.p.Gamma
}

// costWith evaluates the objective with clusters i1 and i2 overridden to
// loads v1 and v2 — the O(M) scan shared by move and swap scoring. Pass
// i1 == i2 to override a single cluster (v2 is then ignored).
func (st *repairState) costWith(i1 int, v1 float64, i2 int, v2 float64) float64 {
	if st.p.Objective == LinearSum {
		s := 0.0
		for k, v := range st.scaled {
			if k == i1 {
				v = v1
			} else if k == i2 {
				v = v2
			}
			s += v
		}
		return s
	}
	m := math.Inf(-1)
	for k, v := range st.scaled {
		if k == i1 {
			v = v1
		} else if k == i2 {
			v = v2
		}
		if v > m {
			m = v
		}
	}
	return m
}

// moveDelta scores reassigning task j to cluster i without mutating state,
// returning the resulting cost and mean reliability. i must differ from the
// task's current cluster.
func (st *repairState) moveDelta(j, i int) (cost, rel float64) {
	p, cur := st.p, st.assign[j]
	newCur := p.zeta(cur, float64(st.counts[cur]-1)) * (st.raw[cur] - p.T.At(cur, j))
	newI := p.zeta(i, float64(st.counts[i]+1)) * (st.raw[i] + p.T.At(i, j))
	cost = st.costWith(cur, newCur, i, newI)
	rel = (st.relSum - p.A.At(cur, j) + p.A.At(i, j)) / float64(len(st.assign))
	return cost, rel
}

// swapDelta scores exchanging the clusters of tasks j1 and j2 without
// mutating state. The tasks must sit on different clusters.
func (st *repairState) swapDelta(j1, j2 int) (cost, rel float64) {
	p := st.p
	i1, i2 := st.assign[j1], st.assign[j2]
	newI1 := p.zeta(i1, float64(st.counts[i1])) * (st.raw[i1] - p.T.At(i1, j1) + p.T.At(i1, j2))
	newI2 := p.zeta(i2, float64(st.counts[i2])) * (st.raw[i2] - p.T.At(i2, j2) + p.T.At(i2, j1))
	cost = st.costWith(i1, newI1, i2, newI2)
	rel = (st.relSum - p.A.At(i1, j1) - p.A.At(i2, j2) + p.A.At(i2, j1) + p.A.At(i1, j2)) /
		float64(len(st.assign))
	return cost, rel
}

// applyMove reassigns task j to cluster i and updates the invariants
// incrementally (only the two touched clusters change).
func (st *repairState) applyMove(j, i int) {
	p, cur := st.p, st.assign[j]
	st.assign[j] = i
	st.raw[cur] -= p.T.At(cur, j)
	st.raw[i] += p.T.At(i, j)
	st.counts[cur]--
	st.counts[i]++
	st.scaled[cur] = p.zeta(cur, float64(st.counts[cur])) * st.raw[cur]
	st.scaled[i] = p.zeta(i, float64(st.counts[i])) * st.raw[i]
	st.relSum += p.A.At(i, j) - p.A.At(cur, j)
}

// applySwap exchanges the clusters of tasks j1 and j2 and updates the
// invariants incrementally. Counts are unchanged by a swap.
func (st *repairState) applySwap(j1, j2 int) {
	p := st.p
	i1, i2 := st.assign[j1], st.assign[j2]
	st.assign[j1], st.assign[j2] = i2, i1
	st.raw[i1] += p.T.At(i1, j2) - p.T.At(i1, j1)
	st.raw[i2] += p.T.At(i2, j1) - p.T.At(i2, j2)
	st.scaled[i1] = p.zeta(i1, float64(st.counts[i1])) * st.raw[i1]
	st.scaled[i2] = p.zeta(i2, float64(st.counts[i2])) * st.raw[i2]
	st.relSum += p.A.At(i2, j1) + p.A.At(i1, j2) - p.A.At(i1, j1) - p.A.At(i2, j2)
}
