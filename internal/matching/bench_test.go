package matching

import (
	"fmt"
	"testing"

	"mfcp/internal/rng"
)

// Micro-benchmarks for the matching kernel hot paths. BENCH_matching.json at
// the repository root records before/after numbers for the allocation-free
// workspace rewrite; reproduce with
//
//	go test ./internal/matching -run '^$' -bench 'SolveRelaxed|Repair' -benchmem

var benchSizes = []struct{ m, n int }{{3, 10}, {8, 40}}

// BenchmarkSolveRelaxed measures the mirror-descent solver as the hot paths
// call it: with a reusable Workspace supplied, so the steady-state inner
// loop is allocation-free.
func BenchmarkSolveRelaxed(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(fmt.Sprintf("%dx%d", sz.m, sz.n), func(b *testing.B) {
			p := randomProblem(rng.New(7), sz.m, sz.n)
			ws := NewWorkspace(sz.m, sz.n)
			opts := SolveOptions{Iters: 200}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				SolveRelaxedWS(p, opts, ws)
			}
		})
	}
}

// BenchmarkSolveRelaxedNoWS measures the legacy nil-workspace wrapper, which
// allocates its scratch per call (and per iteration before the rewrite).
func BenchmarkSolveRelaxedNoWS(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(fmt.Sprintf("%dx%d", sz.m, sz.n), func(b *testing.B) {
			p := randomProblem(rng.New(7), sz.m, sz.n)
			opts := SolveOptions{Iters: 200}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				SolveRelaxed(p, opts)
			}
		})
	}
}

// BenchmarkRepair measures rounding repair from a deliberately infeasible,
// unbalanced start so both the feasibility and local-search phases run.
func BenchmarkRepair(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(fmt.Sprintf("%dx%d", sz.m, sz.n), func(b *testing.B) {
			r := rng.New(11)
			p := randomProblem(r, sz.m, sz.n)
			p.Gamma = 0.9 // above the start's mean reliability: phase 1 must work
			start := make([]int, sz.n)
			for j := range start {
				start[j] = j % 2 // cram everything onto two clusters
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Repair(p, start)
			}
		})
	}
}
