package matching

import (
	"fmt"
	"math"
	"time"

	"mfcp/internal/mfcperr"
	"mfcp/internal/parallel"
)

// HierOptions configures SolveHierarchical.
type HierOptions struct {
	// Cells is the number of cluster cells solved independently (default 1
	// = plain sparse solve, which is bit-identical to SolveRelaxedSparseWS).
	Cells int
	// Solve configures the per-cell relaxed solves.
	Solve SolveOptions
	// Init optionally warm-starts the solve in CSR entry order of the full
	// problem (cells slice the relevant entries out).
	Init []float64
	// Repair enables the bounded sparse repair pass after reconciliation.
	Repair bool
}

// HierResult is the outcome of one hierarchical solve.
type HierResult struct {
	// Assign is the final discrete assignment (global cluster indices).
	Assign []int
	// X is the relaxed iterate in CSR entry order of the full problem —
	// the warm-start carrier for the next round. With Cells > 1 it is the
	// concatenation of the cell solutions (entries outside the routed cell
	// stay at their init/uniform values). Aliases workspace storage: valid
	// until the workspace's next use.
	X []float64
	// Info aggregates solver convergence: Iters is the max cell iteration
	// count (the critical path), Converged requires every cell to converge.
	Info SolveInfo
	// Cells is the number of cells actually used (≤ requested when M is
	// small).
	Cells int
	// Reconcile reports the capacity-reconciliation pass.
	Reconcile ReconcileInfo
	// RepairInfo reports the bounded sparse repair pass (zero when
	// disabled).
	RepairInfo RepairInfo
	// Timings breaks the call into phase wall-times. Observational only:
	// it feeds telemetry and the scale bench, and never influences the
	// solve itself.
	Timings HierTimings
}

// HierTimings is the per-phase wall-clock breakdown of one hierarchical
// solve, in nanoseconds.
type HierTimings struct {
	// SolveNs covers the relaxed cell solves and rounding.
	SolveNs int64
	// ReconcileNs covers the capacity-reconciliation pass (0 without Cap).
	ReconcileNs int64
	// RepairNs covers the bounded repair pass (0 when disabled).
	RepairNs int64
}

// ReconcileInfo accounts the capacity-reconciliation pass.
type ReconcileInfo struct {
	// Moved is the number of task reassignments applied (including
	// intermediate hops of multi-step chains).
	Moved int
	// Chains is the number of overflow units resolved.
	Chains int
	// Feasible reports whether every cluster ended within capacity. False
	// only when the candidate structure itself makes the overflow
	// unresolvable (a Hall-condition violation over the reachable set).
	Feasible bool
	// Hall, non-nil exactly when Feasible is false, is the structured
	// certificate of that violation.
	Hall *HallViolation
}

// HallViolation is a checkable certificate that a capacity overflow is
// unresolvable under the current candidate structure: the BFS from Source
// closed over a saturated cluster set W (Clusters) such that every
// candidate cluster of every task assigned in W is itself in W, and those
// tasks outnumber W's total capacity — Hall's condition fails on W. It is
// an error wrapping mfcperr.ErrInfeasible, so it travels intact through
// error chains up to API responses.
type HallViolation struct {
	// Source is the overflowing cluster the search started from.
	Source int
	// Clusters is the saturated reachable set W, ascending.
	Clusters []int
	// Demand is the number of tasks assigned within W (all of whose
	// candidates lie in W); Capacity is W's summed capacity. Demand >
	// Capacity is the violation.
	Demand   int
	Capacity int
}

func (h *HallViolation) Error() string {
	return fmt.Sprintf("matching: Hall violation at cluster %d: %d tasks confined to %d clusters with capacity %d: %v",
		h.Source, h.Demand, len(h.Clusters), h.Capacity, mfcperr.ErrInfeasible)
}

// Unwrap ties the certificate into the typed-error taxonomy:
// errors.Is(h, mfcperr.ErrInfeasible) holds.
func (h *HallViolation) Unwrap() error { return mfcperr.ErrInfeasible }

// HierWorkspace caches the per-cell solver workspaces and routing scratch
// across rounds. The per-cell sub-problems are rebuilt each call (their
// values change every round) but the mirror-descent inner loops draw from
// the cached workspaces, so the solve hot path stays allocation-free.
type HierWorkspace struct {
	cells []SparseWorkspace
	route []int32 // task → cell
	x     []float64
}

// NewHierWorkspace returns an empty workspace; it sizes itself on first
// use.
func NewHierWorkspace() *HierWorkspace { return &HierWorkspace{} }

// SolveHierarchical runs the scalable three-stage solve on a (typically
// pruned) sparse problem: partition clusters into contiguous cells, route
// each task to the cell holding its fastest candidate, solve the cells
// independently in parallel across parallel.Workers() goroutines, then
// reconcile capacity overflow across cell boundaries and (optionally)
// repair. With Cells ≤ 1 the solve degenerates to a single
// SolveRelaxedSparseWS over the whole problem — the regime the equivalence
// property test pins to the dense solver.
//
// A nil hw allocates fresh buffers.
func SolveHierarchical(sp *SparseProblem, o HierOptions, hw *HierWorkspace) HierResult {
	if hw == nil {
		hw = NewHierWorkspace()
	}
	cells := o.Cells
	if cells < 1 {
		cells = 1
	}
	if cells > sp.Mdim {
		cells = sp.Mdim
	}
	res := HierResult{Cells: cells, Reconcile: ReconcileInfo{Feasible: true}}
	t0 := time.Now()
	if cells == 1 {
		if len(hw.cells) == 0 {
			hw.cells = make([]SparseWorkspace, 1)
		}
		ws := &hw.cells[0]
		x := SolveRelaxedSparseWS(sp, o.Solve, ws, o.Init)
		res.X = x
		res.Info = ws.Info
		res.Assign = RoundSparse(sp, x)
	} else {
		res.Assign, res.X, res.Info = solveCells(sp, o, hw, cells)
	}
	t1 := time.Now()
	res.Timings.SolveNs = t1.Sub(t0).Nanoseconds()
	if sp.Cap != nil {
		res.Reconcile = ReconcileCapacities(sp, res.Assign)
		t2 := time.Now()
		res.Timings.ReconcileNs = t2.Sub(t1).Nanoseconds()
		t1 = t2
	}
	if o.Repair {
		res.Assign, res.RepairInfo = RepairSparse(sp, res.Assign)
		res.Timings.RepairNs = time.Since(t1).Nanoseconds()
	}
	return res
}

// solveCells partitions clusters into contiguous cells, routes tasks,
// builds the per-cell sub-problems, and solves them on the worker pool.
func solveCells(sp *SparseProblem, o HierOptions, hw *HierWorkspace, cells int) ([]int, []float64, SolveInfo) {
	m, n := sp.Mdim, sp.Ndim
	// Cell c owns clusters [bounds[c], bounds[c+1]).
	bounds := make([]int, cells+1)
	for c := 0; c <= cells; c++ {
		bounds[c] = c * m / cells
	}
	cellOf := make([]int32, m)
	for c := 0; c < cells; c++ {
		for i := bounds[c]; i < bounds[c+1]; i++ {
			cellOf[i] = int32(c)
		}
	}
	// Route each task to the cell of its fastest candidate (lowest cluster
	// index on ties, matching the solver's tie-break direction).
	if cap(hw.route) < n {
		hw.route = make([]int32, n)
	}
	route := hw.route[:n]
	for j := 0; j < n; j++ {
		lo, hi := int(sp.ColStart[j]), int(sp.ColStart[j+1])
		bestT, bestI := math.Inf(1), int32(0)
		for c := lo; c < hi; c++ {
			e := sp.ColEntry[c]
			if t := sp.T[e]; t < bestT {
				bestT, bestI = t, sp.ColRow[c]
			}
		}
		route[j] = cellOf[bestI]
	}
	// Build the per-cell sub-problems: local cluster indices are offsets
	// into the cell's range; candidate lists are the intersection of the
	// task's candidates with the cell (non-empty by routing).
	subs := make([]*SparseProblem, cells)
	taskOf := make([][]int32, cells) // local task → global task
	for c := 0; c < cells; c++ {
		subs[c] = &SparseProblem{
			Gamma: sp.Gamma, Beta: sp.Beta, Lambda: sp.Lambda,
			Objective: sp.Objective, Barrier: sp.Barrier, Norm: sp.Norm,
			Entropy: sp.Entropy,
		}
		if sp.Speedups != nil {
			subs[c].Speedups = sp.Speedups[bounds[c]:bounds[c+1]]
		}
	}
	for j := 0; j < n; j++ {
		taskOf[route[j]] = append(taskOf[route[j]], int32(j))
	}
	if len(hw.cells) < cells {
		hw.cells = make([]SparseWorkspace, cells)
	}
	hw.x = growFloats(hw.x, sp.NNZ())
	x := hw.x
	if o.Init != nil {
		copy(x, o.Init[:sp.NNZ()])
	} else {
		for e := range x {
			x[e] = 0
		}
	}
	assign := make([]int, n)
	var infos = make([]SolveInfo, cells)
	parallel.ForChunked(cells, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			sub := subs[c]
			entMap := buildCell(sp, sub, taskOf[c], bounds[c], bounds[c+1])
			if sub.Ndim == 0 {
				continue
			}
			var init []float64
			if o.Init != nil {
				init = make([]float64, len(entMap))
				for le, ge := range entMap {
					init[le] = o.Init[ge]
				}
			}
			xs := SolveRelaxedSparseWS(sub, o.Solve, &hw.cells[c], init)
			infos[c] = hw.cells[c].Info
			// Scatter the relaxed entries back to global coordinates (cells
			// write disjoint entry sets, so no synchronization is needed),
			// then round each routed task locally.
			for le, ge := range entMap {
				x[ge] = xs[le]
			}
			for lj, gj := range taskOf[c] {
				llo, lhi := int(sub.ColStart[lj]), int(sub.ColStart[lj+1])
				best, bi := math.Inf(-1), 0
				for lc := llo; lc < lhi; lc++ {
					if v := xs[sub.ColEntry[lc]]; v > best {
						best, bi = v, bounds[c]+int(sub.ColRow[lc])
					}
				}
				assign[gj] = bi
			}
		}
	})
	agg := SolveInfo{Converged: true}
	for c := 0; c < cells; c++ {
		if len(taskOf[c]) == 0 {
			continue
		}
		if infos[c].Iters > agg.Iters {
			agg.Iters = infos[c].Iters
		}
		if infos[c].FinalDelta > agg.FinalDelta {
			agg.FinalDelta = infos[c].FinalDelta
		}
		agg.Converged = agg.Converged && infos[c].Converged
	}
	return assign, x, agg
}

// buildCell fills sub with the restriction of sp to clusters [c0, c1) and
// the given global tasks, returning the local→global CSR entry map.
func buildCell(sp *SparseProblem, sub *SparseProblem, tasks []int32, c0, c1 int) []int32 {
	mc := c1 - c0
	sub.Mdim, sub.Ndim = mc, len(tasks)
	sub.RowStart = make([]int32, mc+1)
	nnz := 0
	// Count entries per local row via each task's candidate slice.
	rowCnt := make([]int32, mc)
	for _, gj := range tasks {
		lo, hi := int(sp.ColStart[gj]), int(sp.ColStart[gj+1])
		for c := lo; c < hi; c++ {
			gi := int(sp.ColRow[c])
			if gi >= c0 && gi < c1 {
				rowCnt[gi-c0]++
				nnz++
			}
		}
	}
	for i := 0; i < mc; i++ {
		sub.RowStart[i+1] = sub.RowStart[i] + rowCnt[i]
	}
	sub.ColIdx = make([]int32, nnz)
	sub.T = make([]float64, nnz)
	sub.A = make([]float64, nnz)
	entMap := make([]int32, nnz)
	next := make([]int32, mc)
	copy(next, sub.RowStart[:mc])
	// Local tasks in increasing order per row keeps ColIdx increasing.
	for lj, gj := range tasks {
		lo, hi := int(sp.ColStart[gj]), int(sp.ColStart[gj+1])
		for c := lo; c < hi; c++ {
			gi := int(sp.ColRow[c])
			if gi < c0 || gi >= c1 {
				continue
			}
			li := gi - c0
			e := next[li]
			next[li]++
			ge := sp.ColEntry[c]
			sub.ColIdx[e] = int32(lj)
			sub.T[e] = sp.T[ge]
			sub.A[e] = sp.A[ge]
			entMap[e] = ge
		}
	}
	buildCSC(sub)
	return entMap
}

// ReconcileCapacities moves overflow tasks off over-capacity clusters via
// shortest reassignment chains until every cluster is within sp.Cap, or
// reports infeasibility when some overflow cannot reach slack through the
// candidate structure (a Hall-condition violation: the set of clusters
// reachable from the overloaded one has total capacity below its assigned
// task count, so no assignment over these candidate lists can be
// feasible). assign is modified in place.
//
// Each resolved overflow unit is one chain: the overloaded cluster sheds a
// task to a neighbor, which (if itself full) sheds one of its own tasks
// further, terminating at a cluster with slack. Chains are found by BFS, so
// they are shortest; every unit strictly reduces total overflow, bounding
// the pass at Σ overflow chains (TestReconcileTerminates).
func ReconcileCapacities(sp *SparseProblem, assign []int) ReconcileInfo {
	info := ReconcileInfo{Feasible: true}
	if sp.Cap == nil {
		return info
	}
	m := sp.Mdim
	counts := make([]int, m)
	for _, i := range assign {
		counts[i]++
	}
	// tasksOn[i] lists tasks currently assigned to cluster i (indices into
	// assign); rebuilt lazily as moves are applied.
	tasksOn := make([][]int32, m)
	for j, i := range assign {
		tasksOn[i] = append(tasksOn[i], int32(j))
	}
	// BFS scratch.
	parentCluster := make([]int32, m) // predecessor cluster in the chain
	parentTask := make([]int32, m)    // task moved along the edge into this cluster
	visited := make([]bool, m)
	queue := make([]int32, 0, m)

	for src := 0; src < m; src++ {
		for counts[src] > sp.Cap[src] {
			// BFS from src over "some task on u has v as a candidate" edges
			// to the nearest cluster with slack.
			for i := range visited {
				visited[i] = false
			}
			queue = queue[:0]
			queue = append(queue, int32(src))
			visited[src] = true
			dst := -1
		bfs:
			for qi := 0; qi < len(queue); qi++ {
				u := int(queue[qi])
				for _, j := range tasksOn[u] {
					lo, hi := int(sp.ColStart[j]), int(sp.ColStart[j+1])
					for c := lo; c < hi; c++ {
						v := int(sp.ColRow[c])
						if visited[v] {
							continue
						}
						visited[v] = true
						parentCluster[v] = int32(u)
						parentTask[v] = j
						if counts[v] < sp.Cap[v] {
							dst = v
							break bfs
						}
						queue = append(queue, int32(v))
					}
				}
			}
			if dst < 0 {
				// No slack reachable: the visited set is saturated and src
				// still overflows — infeasible under this candidate
				// structure. The visited set is the certificate: BFS closure
				// means every candidate of every task assigned inside it
				// stays inside it, and its assigned tasks exceed its
				// capacity.
				hall := &HallViolation{Source: src}
				for v := 0; v < m; v++ {
					if visited[v] {
						hall.Clusters = append(hall.Clusters, v)
						hall.Demand += counts[v]
						hall.Capacity += sp.Cap[v]
					}
				}
				info.Feasible = false
				info.Hall = hall
				return info
			}
			// Unwind the chain from dst back to src, moving one task across
			// each edge. Each intermediate cluster loses and gains one task;
			// src loses one, dst gains one.
			for v := dst; v != src; {
				u := int(parentCluster[v])
				j := int(parentTask[v])
				moveTask(sp, assign, counts, tasksOn, j, u, v)
				info.Moved++
				v = u
			}
			info.Chains++
		}
	}
	return info
}

// moveTask reassigns task j from cluster u to v, maintaining counts and
// the per-cluster task lists.
func moveTask(sp *SparseProblem, assign []int, counts []int, tasksOn [][]int32, j, u, v int) {
	assign[j] = v
	counts[u]--
	counts[v]++
	lst := tasksOn[u]
	for k, t := range lst {
		if int(t) == j {
			lst[k] = lst[len(lst)-1]
			tasksOn[u] = lst[:len(lst)-1]
			break
		}
	}
	tasksOn[v] = append(tasksOn[v], int32(j))
}
